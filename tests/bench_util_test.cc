// Tests for the shared bench flag parser and CSV path helpers.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "bench_util.h"

namespace jtp::bench {
namespace {

ParseResult parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  return parse_args(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()));
}

TEST(ParseArgs, Defaults) {
  const auto r = parse({});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.options.full);
  EXPECT_EQ(r.options.seed, 1u);
  EXPECT_FALSE(r.options.runs.has_value());
  EXPECT_TRUE(r.options.csv_path.empty());
  EXPECT_EQ(r.options.jobs, 0u);
}

TEST(ParseArgs, AllFlags) {
  const auto r =
      parse({"--full", "--seed", "42", "--runs", "7", "--jobs", "3", "--csv",
             "out.csv"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.options.full);
  EXPECT_EQ(r.options.seed, 42u);
  EXPECT_EQ(r.options.runs, std::optional<std::size_t>(7));
  EXPECT_EQ(r.options.jobs, 3u);
  EXPECT_EQ(r.options.csv_path, "out.csv");
}

TEST(ParseArgs, HelpRequested) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
}

TEST(ParseArgs, UnknownFlagIsError) {
  const auto r = parse({"--bogus"});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("--bogus"), std::string::npos);
}

TEST(ParseArgs, MissingValueIsError) {
  EXPECT_FALSE(parse({"--seed"}).ok());
  EXPECT_FALSE(parse({"--runs"}).ok());
  EXPECT_FALSE(parse({"--jobs"}).ok());
  EXPECT_FALSE(parse({"--csv"}).ok());
}

TEST(ParseArgs, NonNumericValueIsError) {
  EXPECT_FALSE(parse({"--seed", "abc"}).ok());
  EXPECT_FALSE(parse({"--runs", "3x"}).ok());
  EXPECT_FALSE(parse({"--jobs", ""}).ok());
}

TEST(ParseArgs, NegativeValueIsError) {
  // strtoull would silently wrap "-1" to 2^64-1 (and then e.g.
  // vector(n_runs) aborts); the parser must reject the sign up front.
  EXPECT_FALSE(parse({"--runs", "-1"}).ok());
  EXPECT_FALSE(parse({"--seed", "-7"}).ok());
  EXPECT_FALSE(parse({"--jobs", "-4"}).ok());
  EXPECT_FALSE(parse({"--runs", "+3"}).ok());
  EXPECT_FALSE(parse({"--runs", " 3"}).ok());
}

TEST(ParseArgs, ZeroRunsIsError) {
  EXPECT_FALSE(parse({"--runs", "0"}).ok());
}

TEST(ParseArgs, PositionalArgumentIsError) {
  EXPECT_FALSE(parse({"quick"}).ok());
}

TEST(ParseArgs, ProtoFlagParsesKnownNames) {
  const auto r = parse({"--proto", "atp"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.options.proto.has_value());
  EXPECT_EQ(*r.options.proto, exp::Proto::kAtp);
  EXPECT_FALSE(parse({}).options.proto.has_value());  // default: unset
}

TEST(ParseArgs, ProtoFlagRejectsUnknownNames) {
  const auto r = parse({"--proto", "quic"});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("quic"), std::string::npos);
  EXPECT_FALSE(parse({"--proto"}).ok());  // missing value
}

TEST(ParseArgs, ScenarioFlagValidatesTokens) {
  const auto ok = parse({"--scenario", "net_size=8,loss_good=0.1"});
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.options.scenario, "net_size=8,loss_good=0.1");

  EXPECT_FALSE(parse({"--scenario", "bogus_key=1"}).ok());
  EXPECT_FALSE(parse({"--scenario", "net_size=zero"}).ok());
  EXPECT_FALSE(parse({"--scenario"}).ok());  // missing value
}

TEST(ParseArgs, ScenarioFlagRejectsProtoAndSeedKeys) {
  // proto= would bypass per-bench protocol guards; seed= would be
  // silently overwritten by the per-run seed derivation.
  const auto p = parse({"--scenario", "proto=tcp"});
  EXPECT_FALSE(p.ok());
  EXPECT_NE(p.error.find("--proto"), std::string::npos);
  const auto s = parse({"--scenario", "net_size=5,seed=9"});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.error.find("--seed"), std::string::npos);
}

TEST(SweepOr, CollapsesOnlyWhenOverridden) {
  const std::vector<std::size_t> sweep{2, 4, 8};
  EXPECT_EQ(sweep_or<std::size_t>(5, 5, sweep), sweep);  // untouched
  EXPECT_EQ(sweep_or<std::size_t>(12, 5, sweep),
            std::vector<std::size_t>{12});  // override wins
}

TEST(Options, ProtoHelpers) {
  Options o;
  const std::vector<exp::Proto> defaults{exp::Proto::kJtp, exp::Proto::kTcp};
  EXPECT_EQ(o.protos_or(defaults), defaults);
  EXPECT_EQ(o.proto_or(exp::Proto::kJtp), exp::Proto::kJtp);
  o.proto = exp::Proto::kAtp;
  EXPECT_EQ(o.protos_or(defaults),
            std::vector<exp::Proto>{exp::Proto::kAtp});
  EXPECT_EQ(o.proto_or(exp::Proto::kJtp), exp::Proto::kAtp);
}

TEST(Options, PickRunsPrecedence) {
  Options o;
  EXPECT_EQ(o.pick_runs(3, 20), 3u);
  o.full = true;
  EXPECT_EQ(o.pick_runs(3, 20), 20u);
  o.runs = 7;
  EXPECT_EQ(o.pick_runs(3, 20), 7u);  // --runs wins over --full
}

TEST(CsvSectionPath, InsertsBeforeExtension) {
  EXPECT_EQ(csv_section_path("out.csv", "a"), "out.a.csv");
  EXPECT_EQ(csv_section_path("dir/out.csv", "b"), "dir/out.b.csv");
}

TEST(CsvSectionPath, EmptySectionKeepsBase) {
  EXPECT_EQ(csv_section_path("out.csv", ""), "out.csv");
}

TEST(CsvSectionPath, NoExtensionAppends) {
  EXPECT_EQ(csv_section_path("out", "a"), "out.a");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(csv_section_path("some.dir/out", "a"), "some.dir/out.a");
}

}  // namespace
}  // namespace jtp::bench
