// Tests for the adjustable-reliability math (paper §3, eqs. 1-4).
#include "core/reliability.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace jtp::core {
namespace {

TEST(PerLinkTarget, FullReliabilityNeedsPerfectLinks) {
  EXPECT_DOUBLE_EQ(per_link_success_target(0.0, 4), 1.0);
}

TEST(PerLinkTarget, SingleHopEqualsTolerance) {
  EXPECT_DOUBLE_EQ(per_link_success_target(0.1, 1), 0.9);
}

TEST(PerLinkTarget, EqualSplitAcrossHops) {
  // q^H = 1 - lt must hold exactly (eq. 4 inverts eq. 1).
  const double q = per_link_success_target(0.2, 5);
  EXPECT_NEAR(std::pow(q, 5), 0.8, 1e-12);
}

TEST(PerLinkTarget, MoreHopsNeedHigherQ) {
  EXPECT_GT(per_link_success_target(0.1, 8),
            per_link_success_target(0.1, 2));
}

TEST(PerLinkTarget, RejectsZeroHops) {
  EXPECT_THROW(per_link_success_target(0.1, 0), std::invalid_argument);
}

TEST(PerLinkTarget, ClampsOutOfRangeTolerance) {
  EXPECT_DOUBLE_EQ(per_link_success_target(-0.5, 3), 1.0);
  EXPECT_DOUBLE_EQ(per_link_success_target(1.5, 3), 0.0);
}

TEST(AttemptBudget, LosslessLinkNeedsOneAttempt) {
  EXPECT_EQ(attempt_budget(0.99, 0.0, 5), 1);
}

TEST(AttemptBudget, FullReliabilitySpendsCap) {
  EXPECT_EQ(attempt_budget(1.0, 0.3, 5), 5);
}

TEST(AttemptBudget, MatchesClosedForm) {
  // q = 0.99, p = 0.1: M = log(0.01)/log(0.1) = 2.
  EXPECT_EQ(attempt_budget(0.99, 0.1, 5), 2);
  // q = 0.999, p = 0.1: M = 3.
  EXPECT_EQ(attempt_budget(0.999, 0.1, 5), 3);
}

TEST(AttemptBudget, CapsAtMaxAttempts) {
  EXPECT_EQ(attempt_budget(0.999999, 0.5, 5), 5);
}

TEST(AttemptBudget, AtLeastOne) {
  EXPECT_EQ(attempt_budget(0.1, 0.9, 5), 1);
}

TEST(AttemptBudget, RejectsBadCap) {
  EXPECT_THROW(attempt_budget(0.9, 0.1, 0), std::invalid_argument);
}

TEST(AchievedSuccess, OneMinusPtoM) {
  EXPECT_DOUBLE_EQ(achieved_link_success(0.1, 2), 1.0 - 0.01);
  EXPECT_DOUBLE_EQ(achieved_link_success(0.5, 3), 1.0 - 0.125);
  EXPECT_DOUBLE_EQ(achieved_link_success(0.0, 1), 1.0);
}

TEST(AchievedSuccess, BudgetAchievesTarget) {
  // The computed budget must meet or exceed the requested q.
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    for (double p : {0.05, 0.1, 0.3, 0.5}) {
      const int m = attempt_budget(q, p, 50);
      EXPECT_GE(achieved_link_success(p, m) + 1e-12, q)
          << "q=" << q << " p=" << p << " M=" << m;
    }
  }
}

TEST(UpdateLossTolerance, ExactAchievementKeepsBudgetConsistent) {
  // If the link achieves exactly the per-link target, the remaining
  // tolerance must satisfy (1-lt') = (1-lt)/q.
  const double lt = 0.2;
  const double q = per_link_success_target(lt, 4);
  const double lt2 = update_loss_tolerance(lt, q);
  EXPECT_NEAR(1.0 - lt2, (1.0 - lt) / q, 1e-12);
}

TEST(UpdateLossTolerance, PerfectLinkLeavesBudgetUntouched) {
  // q = 1: the link spent none of the loss budget (eq. 3 with q=1).
  EXPECT_NEAR(update_loss_tolerance(0.05, 1.0), 0.05, 1e-12);
}

TEST(UpdateLossTolerance, SevereUnderachievementClampsToZero) {
  // The link achieved less than the entire remaining end-to-end budget
  // (q < 1 - lt): raw eq. 3 goes negative; downstream owes full
  // reliability, not a negative tolerance.
  EXPECT_DOUBLE_EQ(update_loss_tolerance(0.05, 0.9), 0.0);
}

TEST(UpdateLossTolerance, HopelessLinkWaivesRest) {
  EXPECT_DOUBLE_EQ(update_loss_tolerance(0.3, 0.0), 1.0);
}

TEST(UpdateLossTolerance, ZeroToleranceStaysZero) {
  EXPECT_DOUBLE_EQ(update_loss_tolerance(0.0, 0.97), 0.0);
}

// Property: iterating the per-hop computation down a path of equal-loss
// links meets the end-to-end target (the heart of §3).
class PathPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(PathPropertyTest, EndToEndToleranceIsMet) {
  const auto [le2e, p_link, hops] = GetParam();
  double lt = le2e;
  double e2e_success = 1.0;
  for (int i = 0; i < hops; ++i) {
    const int remaining = hops - i;
    const double q_target = per_link_success_target(lt, remaining);
    const int m = attempt_budget(q_target, p_link, 50);  // generous cap
    const double q = achieved_link_success(p_link, m);
    e2e_success *= q;
    lt = update_loss_tolerance(lt, q);
  }
  // Achieved end-to-end loss must be <= requested tolerance.
  EXPECT_LE(1.0 - e2e_success, le2e + 1e-9)
      << "le2e=" << le2e << " p=" << p_link << " H=" << hops;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathPropertyTest,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.1, 0.2, 0.3),
                       ::testing::Values(0.02, 0.1, 0.25, 0.45),
                       ::testing::Values(1, 2, 4, 7, 10)));

// With the MAC cap (MAX_ATTEMPTS=5), very bad links may not meet the
// target; the loss-tolerance rewrite must then ask *more* from downstream.
TEST(UpdateLossTolerance, UnderachievementTightensDownstream) {
  const double lt = 0.1;
  const double q_target = per_link_success_target(lt, 4);
  const double q_badly = q_target - 0.05;  // link fell short
  const double lt2 = update_loss_tolerance(lt, q_badly);
  const double lt_exact = update_loss_tolerance(lt, q_target);
  EXPECT_LT(lt2, lt_exact);
}

TEST(EndToEndSuccess, PowerLaw) {
  EXPECT_DOUBLE_EQ(end_to_end_success(0.9, 2), 0.81);
  EXPECT_DOUBLE_EQ(end_to_end_success(1.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(end_to_end_success(0.5, 0), 1.0);
}

}  // namespace
}  // namespace jtp::core
