// Tests for the application module: fragmentation & reassembly (§2.2.1).
#include "core/fragmentation.h"

#include <gtest/gtest.h>

namespace jtp::core {
namespace {

TEST(Fragmenter, RejectsTooSmallPayload) {
  EXPECT_THROW(Fragmenter{kFragMetaBytes}, std::invalid_argument);
  EXPECT_NO_THROW(Fragmenter{kFragMetaBytes + 1});
}

TEST(Fragmenter, SingleFragmentForSmallMessage) {
  Fragmenter f(800);
  const auto frags = f.fragment(1, 100);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].payload_bytes, 100u);
  EXPECT_EQ(frags[0].count, 1u);
}

TEST(Fragmenter, SplitsLargeMessage) {
  Fragmenter f(800);  // 784 app bytes per fragment
  const auto frags = f.fragment(1, 784 * 3 + 10);
  ASSERT_EQ(frags.size(), 4u);
  EXPECT_EQ(frags[3].payload_bytes, 10u);
  std::uint64_t total = 0;
  for (const auto& fr : frags) {
    total += fr.payload_bytes;
    EXPECT_EQ(fr.count, 4u);
  }
  EXPECT_EQ(total, 784u * 3 + 10);
}

TEST(Fragmenter, ExactMultipleHasNoRunt) {
  Fragmenter f(800);
  const auto frags = f.fragment(1, 784 * 2);
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[1].payload_bytes, 784u);
}

TEST(Fragmenter, RejectsEmptyMessage) {
  Fragmenter f(800);
  EXPECT_THROW(f.fragment(1, 0), std::invalid_argument);
}

TEST(Reassembler, CompletesInOrder) {
  Fragmenter f(800);
  Reassembler r;
  const auto frags = f.fragment(42, 2000);
  std::optional<Reassembler::Completed> done;
  for (const auto& fr : frags) done = r.add(fr);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->message_id, 42u);
  EXPECT_EQ(done->bytes_received, 2000u);
  EXPECT_EQ(done->fragments_waived, 0u);
  EXPECT_EQ(r.messages_completed(), 1u);
}

TEST(Reassembler, CompletesOutOfOrder) {
  Fragmenter f(100);
  Reassembler r;
  auto frags = f.fragment(1, 500);
  ASSERT_GE(frags.size(), 3u);
  std::optional<Reassembler::Completed> done;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it) done = r.add(*it);
  EXPECT_TRUE(done.has_value());
}

TEST(Reassembler, DuplicateFragmentIgnored) {
  Fragmenter f(100);
  Reassembler r;
  const auto frags = f.fragment(1, 200);
  r.add(frags[0]);
  EXPECT_FALSE(r.add(frags[0]).has_value());
  EXPECT_EQ(r.messages_in_progress(), 1u);
}

TEST(Reassembler, WaivedFragmentCompletesMessage) {
  Fragmenter f(100);
  Reassembler r;
  const auto frags = f.fragment(1, 250);
  ASSERT_EQ(frags.size(), 3u);
  r.add(frags[0]);
  r.add(frags[2]);
  const auto done = r.waive(1, frags[1].index, frags[1].count);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->fragments_received, 2u);
  EXPECT_EQ(done->fragments_waived, 1u);
}

TEST(Reassembler, WaiveBeforeArrivalAlsoWorks) {
  Reassembler r;
  EXPECT_FALSE(r.waive(5, 0, 2).has_value());
  Fragment f2{5, 1, 2, 84};
  const auto done = r.add(f2);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->fragments_waived, 1u);
}

TEST(Reassembler, InterleavedMessages) {
  Fragmenter f(100);
  Reassembler r;
  const auto a = f.fragment(1, 160);
  const auto b = f.fragment(2, 160);
  r.add(a[0]);
  r.add(b[0]);
  EXPECT_EQ(r.messages_in_progress(), 2u);
  EXPECT_TRUE(r.add(b[1]).has_value());
  EXPECT_TRUE(r.add(a[1]).has_value());
  EXPECT_EQ(r.messages_in_progress(), 0u);
}

TEST(Reassembler, MalformedInputsThrow) {
  Reassembler r;
  Fragment bad{1, 2, 2, 10};  // index >= count
  EXPECT_THROW(r.add(bad), std::invalid_argument);
  EXPECT_THROW(r.waive(1, 0, 0), std::invalid_argument);
}

TEST(Reassembler, CountMismatchThrows) {
  Reassembler r;
  r.add(Fragment{1, 0, 3, 10});
  EXPECT_THROW(r.add(Fragment{1, 1, 4, 10}), std::invalid_argument);
}

}  // namespace
}  // namespace jtp::core
