// End-to-end integration tests: full stacks over simulated networks.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/workload.h"
#include "net/network.h"

namespace jtp {
namespace {

using exp::FlowManager;
using exp::FlowOptions;
using exp::Proto;
using exp::ScenarioConfig;

ScenarioConfig quiet(std::uint64_t seed = 1, Proto proto = Proto::kJtp) {
  ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = proto;
  sc.fading = false;   // deterministic-ish substrate for unit-style checks
  sc.loss_good = 0.0;  // lossless unless a test opts in
  return sc;
}

TEST(Integration, JtpDeliversBulkOverLosslessChain) {
  auto net = exp::make_linear(4, quiet());
  FlowManager fm(*net, Proto::kJtp);
  auto& flow = fm.create(0, 3, /*total_packets=*/50);
  net->run_until(600.0);
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.delivered_packets(), 50u);
  EXPECT_EQ(flow.source_rtx(), 0u);  // lossless: nothing to recover
}

TEST(Integration, JtpSurvivesLossyChain) {
  auto sc = quiet(3);
  sc.loss_good = 0.15;
  auto net = exp::make_linear(4, sc);
  FlowManager fm(*net, Proto::kJtp);
  auto& flow = fm.create(0, 3, 100);
  net->run_until(2000.0);
  EXPECT_TRUE(flow.finished()) << "delivered=" << flow.delivered_packets();
  EXPECT_EQ(flow.delivered_packets(), 100u);  // 0% tolerance: all arrive
}

TEST(Integration, CachesRecoverLossesBeforeTheSource) {
  // Loss high enough that the 5-attempt MAC budget is sometimes exhausted
  // (p^5 ≈ 1.8% at p=0.45), so SNACK-driven recovery actually engages.
  auto sc = quiet(5);
  sc.loss_good = 0.45;
  auto net = exp::make_linear(6, sc);
  FlowManager fm(*net, Proto::kJtp);
  auto& flow = fm.create(0, 5, 200);
  net->run_until(6000.0);
  EXPECT_TRUE(flow.finished());
  const auto m = fm.collect(6000.0);
  // With per-hop attempts plus caches, in-network recovery should do the
  // bulk of the repair work; the source sees only what caches missed.
  EXPECT_GT(m.cache_retransmissions + m.source_retransmissions, 0u);
  EXPECT_LE(m.source_retransmissions, m.cache_retransmissions)
      << "cache=" << m.cache_retransmissions
      << " source=" << m.source_retransmissions;
}

TEST(Integration, JncFallsBackToSourceRetransmissions) {
  auto sc = quiet(5, Proto::kJnc);
  sc.loss_good = 0.3;  // loss beyond the attempt budget's reach
  auto net = exp::make_linear(6, sc);
  FlowManager fm(*net, Proto::kJnc);
  auto& flow = fm.create(0, 5, 100);
  net->run_until(4000.0);
  const auto m = fm.collect(4000.0);
  EXPECT_EQ(m.cache_retransmissions, 0u);
  EXPECT_GT(flow.delivered_packets(), 0u);
}

TEST(Integration, LossToleranceReducesEffortButMeetsTarget) {
  auto sc = quiet(7);
  sc.loss_good = 0.2;
  auto net_full = exp::make_linear(5, sc);
  auto net_tol = exp::make_linear(5, sc);
  FlowManager fm_full(*net_full, Proto::kJtp);
  FlowManager fm_tol(*net_tol, Proto::kJtp);
  FlowOptions tol;
  tol.loss_tolerance = 0.2;
  auto& f_full = fm_full.create(0, 4, 300);
  auto& f_tol = fm_tol.create(0, 4, 300, 0.0, tol);
  net_full->run_until(4000.0);
  net_tol->run_until(4000.0);
  EXPECT_TRUE(f_full.finished());
  EXPECT_TRUE(f_tol.finished());
  // Tolerant flow must still deliver >= 80% of the data...
  EXPECT_GE(f_tol.delivered_packets(), 240u);
  // ...while spending less energy than the full-reliability flow.
  EXPECT_LT(net_tol->energy().total_energy(),
            net_full->energy().total_energy());
}

TEST(Integration, TcpDeliversOverChain) {
  auto net = exp::make_linear(4, quiet(9, Proto::kTcp));
  FlowManager fm(*net, Proto::kTcp);
  auto& flow = fm.create(0, 3, 50);
  net->run_until(600.0);
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.delivered_packets(), 50u);
}

TEST(Integration, AtpDeliversOverChain) {
  auto net = exp::make_linear(4, quiet(11, Proto::kAtp));
  FlowManager fm(*net, Proto::kAtp);
  auto& flow = fm.create(0, 3, 50);
  net->run_until(600.0);
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.delivered_packets(), 50u);
}

TEST(Integration, JtpBeatsTcpOnEnergyPerBitOverLossyChain) {
  auto sc_jtp = quiet(13);
  sc_jtp.loss_good = 0.1;
  sc_jtp.fading = true;
  auto sc_tcp = sc_jtp;
  sc_tcp.proto = Proto::kTcp;
  auto net_jtp = exp::make_linear(6, sc_jtp);
  auto net_tcp = exp::make_linear(6, sc_tcp);
  FlowManager fm_jtp(*net_jtp, Proto::kJtp);
  FlowManager fm_tcp(*net_tcp, Proto::kTcp);
  fm_jtp.create(0, 5, 0);  // long-lived
  fm_tcp.create(0, 5, 0);
  net_jtp->run_until(2000.0);
  net_tcp->run_until(2000.0);
  const auto mj = fm_jtp.collect(2000.0);
  const auto mt = fm_tcp.collect(2000.0);
  ASSERT_GT(mj.delivered_payload_bits, 0.0);
  ASSERT_GT(mt.delivered_payload_bits, 0.0);
  EXPECT_LT(mj.energy_per_bit_uj(), mt.energy_per_bit_uj());
}

TEST(Integration, QueueDropsCountedUnderOverload) {
  auto sc = quiet(15);
  auto net = exp::make_linear(3, sc);
  FlowManager fm(*net, Proto::kJtp);
  FlowOptions opt;
  opt.initial_rate_pps = 50.0;  // way beyond TDMA capacity
  fm.create(0, 2, 0, 0.0, opt);
  net->run_until(300.0);
  const auto m = fm.collect(300.0);
  EXPECT_GT(m.queue_drops, 0u);
}

TEST(Integration, EnergyBudgetDropsLoopingPackets) {
  // A tiny explicit budget means packets die after a couple of hops.
  auto sc = quiet(17);
  auto net = exp::make_linear(6, sc);
  FlowManager fm(*net, Proto::kJtp);
  FlowOptions opt;
  const double one_hop_energy =
      net->energy().tx_energy(8.0 * (800 + 28));
  opt.initial_energy_budget = 1.5 * one_hop_energy;  // < 5 hops' worth
  auto& flow = fm.create(0, 5, 20, 0.0, opt);
  net->run_until(300.0);
  const auto m = fm.collect(300.0);
  EXPECT_GT(m.energy_budget_drops, 0u);
  EXPECT_EQ(flow.delivered_packets(), 0u);  // budget too small to cross
}

TEST(Integration, TwoCompetingJtpFlowsShareCapacity) {
  auto sc = quiet(19);
  auto net = exp::make_linear(5, sc);
  FlowManager fm(*net, Proto::kJtp);
  auto& f1 = fm.create(0, 4, 0);
  auto& f2 = fm.create(4, 0, 0);
  net->run_until(2500.0);
  const double b1 = f1.delivered_bits();
  const double b2 = f2.delivered_bits();
  ASSERT_GT(b1, 0.0);
  ASSERT_GT(b2, 0.0);
  // Symmetric flows on a symmetric chain: within 2x of each other.
  EXPECT_LT(std::max(b1, b2) / std::min(b1, b2), 2.0);
}

TEST(Integration, MobileNetworkStillDelivers) {
  ScenarioConfig sc = quiet(21);
  sc.fading = false;
  sc.loss_good = 0.02;
  auto net = exp::make_mobile(10, 1.0, sc);
  FlowManager fm(*net, Proto::kJtp);
  fm.create(0, 9, 0);
  net->run_until(1500.0);
  const auto m = fm.collect(1500.0);
  EXPECT_GT(m.delivered_payload_bits, 0.0);
}

TEST(Integration, RandomTopologyMultiFlow) {
  ScenarioConfig sc = quiet(23);
  sc.loss_good = 0.05;
  auto net = exp::make_random(15, sc);
  FlowManager fm(*net, Proto::kJtp);
  auto& rng = net->rng();
  for (int i = 0; i < 5; ++i) {
    core::NodeId a = rng.integer(15);
    core::NodeId b = rng.integer(15);
    if (a == b) b = (b + 1) % 15;
    fm.create(a, b, 0);
  }
  net->run_until(1000.0);
  const auto m = fm.collect(1000.0);
  EXPECT_GT(m.delivered_payload_bits, 0.0);
  EXPECT_GT(m.per_flow_goodput_kbps_mean, 0.0);
}

TEST(Integration, TestbedScenarioRuns) {
  ScenarioConfig sc = quiet(25);
  auto net = exp::make_testbed(sc);
  EXPECT_EQ(net->size(), 14u);
  EXPECT_TRUE(net->topology().connected());
  FlowManager fm(*net, Proto::kJtp);
  auto& flow = fm.create(0, 13, 30);
  net->run_until(600.0);
  EXPECT_TRUE(flow.finished());
}

TEST(Integration, SameSeedSameResult) {
  auto run_once = [] {
    auto net = exp::make_linear(4, quiet(31));
    FlowManager fm(*net, Proto::kJtp);
    fm.create(0, 3, 0);
    net->run_until(500.0);
    return fm.collect(500.0);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_DOUBLE_EQ(a.delivered_payload_bits, b.delivered_payload_bits);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

}  // namespace
}  // namespace jtp
