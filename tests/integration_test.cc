// End-to-end integration tests: full stacks over simulated networks,
// built through the declarative ScenarioSpec API.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/workload.h"
#include "net/network.h"

namespace jtp {
namespace {

using exp::FlowManager;
using exp::FlowOptions;
using exp::Proto;
using exp::Scenario;
using exp::ScenarioSpec;
using exp::TopologyKind;

ScenarioSpec quiet(std::uint64_t seed = 1, Proto proto = Proto::kJtp,
                   std::size_t net_size = 4) {
  ScenarioSpec sc;
  sc.seed = seed;
  sc.proto = proto;
  sc.net_size = net_size;
  sc.fading = false;   // deterministic-ish substrate for unit-style checks
  sc.loss_good = 0.0;  // lossless unless a test opts in
  return sc;
}

TEST(Integration, JtpDeliversBulkOverLosslessChain) {
  auto s = exp::build(quiet());
  auto& flow = s.flows->create(0, 3, /*total_packets=*/50);
  s.network->run_until(600.0);
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.delivered_packets(), 50u);
  EXPECT_EQ(flow.source_rtx(), 0u);  // lossless: nothing to recover
}

TEST(Integration, JtpSurvivesLossyChain) {
  auto sc = quiet(3);
  sc.loss_good = 0.15;
  auto s = exp::build(sc);
  auto& flow = s.flows->create(0, 3, 100);
  s.network->run_until(2000.0);
  EXPECT_TRUE(flow.finished()) << "delivered=" << flow.delivered_packets();
  EXPECT_EQ(flow.delivered_packets(), 100u);  // 0% tolerance: all arrive
}

TEST(Integration, CachesRecoverLossesBeforeTheSource) {
  // Loss high enough that the 5-attempt MAC budget is sometimes exhausted
  // (p^5 ≈ 1.8% at p=0.45), so SNACK-driven recovery actually engages.
  auto sc = quiet(5, Proto::kJtp, 6);
  sc.loss_good = 0.45;
  auto s = exp::build(sc);
  auto& flow = s.flows->create(0, 5, 200);
  s.network->run_until(6000.0);
  EXPECT_TRUE(flow.finished());
  const auto m = s.flows->collect(6000.0);
  // With per-hop attempts plus caches, in-network recovery should do the
  // bulk of the repair work; the source sees only what caches missed.
  EXPECT_GT(m.cache_retransmissions + m.source_retransmissions, 0u);
  EXPECT_LE(m.source_retransmissions, m.cache_retransmissions)
      << "cache=" << m.cache_retransmissions
      << " source=" << m.source_retransmissions;
}

TEST(Integration, JncFallsBackToSourceRetransmissions) {
  auto sc = quiet(5, Proto::kJnc, 6);
  sc.loss_good = 0.3;  // loss beyond the attempt budget's reach
  auto s = exp::build(sc);
  auto& flow = s.flows->create(0, 5, 100);
  s.network->run_until(4000.0);
  const auto m = s.flows->collect(4000.0);
  EXPECT_EQ(m.cache_retransmissions, 0u);
  EXPECT_GT(flow.delivered_packets(), 0u);
}

TEST(Integration, LossToleranceReducesEffortButMeetsTarget) {
  auto sc = quiet(7, Proto::kJtp, 5);
  sc.loss_good = 0.2;
  auto s_full = exp::build(sc);
  auto s_tol = exp::build(sc);
  FlowOptions tol;
  tol.loss_tolerance = 0.2;
  auto& f_full = s_full.flows->create(0, 4, 300);
  auto& f_tol = s_tol.flows->create(0, 4, 300, 0.0, tol);
  s_full.network->run_until(4000.0);
  s_tol.network->run_until(4000.0);
  EXPECT_TRUE(f_full.finished());
  EXPECT_TRUE(f_tol.finished());
  // Tolerant flow must still deliver >= 80% of the data...
  EXPECT_GE(f_tol.delivered_packets(), 240u);
  // ...while spending less energy than the full-reliability flow.
  EXPECT_LT(s_tol.network->energy().total_energy(),
            s_full.network->energy().total_energy());
}

TEST(Integration, TcpDeliversOverChain) {
  auto s = exp::build(quiet(9, Proto::kTcp));
  auto& flow = s.flows->create(0, 3, 50);
  s.network->run_until(600.0);
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.delivered_packets(), 50u);
}

TEST(Integration, AtpDeliversOverChain) {
  auto s = exp::build(quiet(11, Proto::kAtp));
  auto& flow = s.flows->create(0, 3, 50);
  s.network->run_until(600.0);
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.delivered_packets(), 50u);
}

TEST(Integration, JtpBeatsTcpOnEnergyPerBitOverLossyChain) {
  auto sc_jtp = quiet(13, Proto::kJtp, 6);
  sc_jtp.loss_good = 0.1;
  sc_jtp.fading = true;
  auto sc_tcp = sc_jtp;
  sc_tcp.proto = Proto::kTcp;
  auto s_jtp = exp::build(sc_jtp);
  auto s_tcp = exp::build(sc_tcp);
  s_jtp.flows->create(0, 5, 0);  // long-lived
  s_tcp.flows->create(0, 5, 0);
  s_jtp.network->run_until(2000.0);
  s_tcp.network->run_until(2000.0);
  const auto mj = s_jtp.flows->collect(2000.0);
  const auto mt = s_tcp.flows->collect(2000.0);
  ASSERT_GT(mj.delivered_payload_bits, 0.0);
  ASSERT_GT(mt.delivered_payload_bits, 0.0);
  EXPECT_LT(mj.energy_per_bit_uj(), mt.energy_per_bit_uj());
}

TEST(Integration, QueueDropsCountedUnderOverload) {
  auto s = exp::build(quiet(15, Proto::kJtp, 3));
  FlowOptions opt;
  opt.initial_rate_pps = 50.0;  // way beyond TDMA capacity
  s.flows->create(0, 2, 0, 0.0, opt);
  s.network->run_until(300.0);
  const auto m = s.flows->collect(300.0);
  EXPECT_GT(m.queue_drops, 0u);
}

TEST(Integration, EnergyBudgetDropsLoopingPackets) {
  // A tiny explicit budget means packets die after a couple of hops.
  auto s = exp::build(quiet(17, Proto::kJtp, 6));
  FlowOptions opt;
  const double one_hop_energy =
      s.network->energy().tx_energy(8.0 * (800 + 28));
  opt.initial_energy_budget = 1.5 * one_hop_energy;  // < 5 hops' worth
  auto& flow = s.flows->create(0, 5, 20, 0.0, opt);
  s.network->run_until(300.0);
  const auto m = s.flows->collect(300.0);
  EXPECT_GT(m.energy_budget_drops, 0u);
  EXPECT_EQ(flow.delivered_packets(), 0u);  // budget too small to cross
}

TEST(Integration, TwoCompetingFlowsShareCapacity) {
  auto s = exp::build(quiet(19, Proto::kJtp, 5));
  auto& f1 = s.flows->create(0, 4, 0);
  auto& f2 = s.flows->create(4, 0, 0);
  s.network->run_until(2500.0);
  const double b1 = f1.delivered_bits();
  const double b2 = f2.delivered_bits();
  ASSERT_GT(b1, 0.0);
  ASSERT_GT(b2, 0.0);
  // Symmetric flows on a symmetric chain: within 2x of each other.
  EXPECT_LT(std::max(b1, b2) / std::min(b1, b2), 2.0);
}

TEST(Integration, MobileNetworkStillDelivers) {
  auto sc = quiet(21, Proto::kJtp, 10);
  sc.topology = TopologyKind::kRandom;
  sc.speed_mps = 1.0;
  sc.loss_good = 0.02;
  auto s = exp::build(sc);
  s.flows->create(0, 9, 0);
  s.network->run_until(1500.0);
  const auto m = s.flows->collect(1500.0);
  EXPECT_GT(m.delivered_payload_bits, 0.0);
}

TEST(Integration, RandomTopologyMultiFlow) {
  auto sc = quiet(23, Proto::kJtp, 15);
  sc.topology = TopologyKind::kRandom;
  sc.loss_good = 0.05;
  auto s = exp::build(sc);
  auto& rng = s.network->rng();
  for (int i = 0; i < 5; ++i) {
    core::NodeId a = rng.integer(15);
    core::NodeId b = rng.integer(15);
    if (a == b) b = (b + 1) % 15;
    s.flows->create(a, b, 0);
  }
  s.network->run_until(1000.0);
  const auto m = s.flows->collect(1000.0);
  EXPECT_GT(m.delivered_payload_bits, 0.0);
  EXPECT_GT(m.per_flow_goodput_kbps_mean, 0.0);
}

TEST(Integration, TestbedScenarioRuns) {
  auto sc = exp::preset("testbed");
  sc.seed = 25;
  sc.loss_good = 0.0;
  sc.workload.kind = exp::WorkloadKind::kManual;  // one bespoke flow
  auto s = exp::build(sc);
  EXPECT_EQ(s.network->size(), 14u);
  EXPECT_TRUE(s.network->topology().connected());
  auto& flow = s.flows->create(0, 13, 30);
  s.network->run_until(600.0);
  EXPECT_TRUE(flow.finished());
}

TEST(Integration, SameSeedSameResult) {
  auto run_once = [] {
    auto s = exp::build(quiet(31));
    s.flows->create(0, 3, 0);
    s.network->run_until(500.0);
    return s.flows->collect(500.0);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_DOUBLE_EQ(a.delivered_payload_bits, b.delivered_payload_bits);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

}  // namespace
}  // namespace jtp
