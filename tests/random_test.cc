#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace jtp::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DeriveIsDeterministic) {
  Rng a(7), b(7);
  Rng da = a.derive("mac", 3);
  Rng db = b.derive("mac", 3);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(da.uniform(), db.uniform());
}

TEST(Rng, DerivedStreamsAreIndependentOfConsumption) {
  // Consuming from the parent must not perturb an already-derived child.
  Rng a(7);
  Rng child1 = a.derive("x");
  const double first = child1.uniform();
  Rng b(7);
  for (int i = 0; i < 10; ++i) b.uniform();
  Rng child2 = b.derive("x");
  EXPECT_DOUBLE_EQ(child2.uniform(), first);
}

TEST(Rng, DifferentLabelsGiveDifferentStreams) {
  Rng a(7);
  Rng x = a.derive("x");
  Rng y = a.derive("y");
  EXPECT_NE(x.uniform(), y.uniform());
}

TEST(Rng, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, GeometricMeanMatches) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.geometric(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.2);  // mean 1/p
}

TEST(Rng, GeometricAlwaysAtLeastOne) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.geometric(0.9), 1);
}

TEST(Rng, IntegerBounded) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.integer(10), 10u);
  EXPECT_THROW(r.integer(0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Splitmix, AvalanchesAdjacentInputs) {
  // Hamming distance of outputs for adjacent inputs should be near 32.
  int total = 0;
  for (std::uint64_t x = 0; x < 100; ++x) {
    const std::uint64_t d = splitmix64(x) ^ splitmix64(x + 1);
    total += static_cast<int>(__builtin_popcountll(d));
  }
  EXPECT_NEAR(total / 100.0, 32.0, 6.0);
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("alpha"), hash_label("beta"));
  EXPECT_NE(hash_label(""), hash_label("a"));
  EXPECT_EQ(hash_label("mac"), hash_label("mac"));
}

}  // namespace
}  // namespace jtp::sim
