// Safety and accounting of the 2-hop interference coloring behind the
// spatial-reuse TDMA MAC.
//
// The property that makes slot reuse collision-free: no two nodes that
// could interfere at any receiver share a color. The tests pin it with a
// brute-force conflict oracle on random fields (including translated
// fields with negative coordinates and post-churn layouts), plus the two
// analytic extremes — a clique needs n colors (reuse factor exactly 1)
// and a sparse chain needs exactly 3 (reuse > 1).
#include "mac/interference.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "mac/reuse_tdma.h"
#include "phy/topology.h"
#include "sim/random.h"

namespace jtp::mac {
namespace {

// Brute-force oracle for the conflict relation the coloring must respect.
bool conflicts_bf(const phy::Topology& topo, core::NodeId a, core::NodeId b,
                  double margin) {
  const double r = topo.radio_range();
  if (phy::distance(topo.position(a), topo.position(b)) <=
      std::max(margin, 1.0) * r)
    return true;
  for (core::NodeId w = 0; w < topo.size(); ++w) {
    if (w == a || w == b) continue;
    if (phy::distance(topo.position(a), topo.position(w)) <= r &&
        phy::distance(topo.position(b), topo.position(w)) <= r)
      return true;
  }
  return false;
}

void expect_proper(const phy::Topology& topo, const Coloring& c,
                   double margin) {
  ASSERT_EQ(c.color.size(), topo.size());
  std::uint32_t max_seen = 0;
  for (core::NodeId a = 0; a < topo.size(); ++a) {
    max_seen = std::max(max_seen, c.color[a]);
    for (core::NodeId b = a + 1; b < topo.size(); ++b) {
      if (conflicts_bf(topo, a, b, margin)) {
        EXPECT_NE(c.color[a], c.color[b])
            << "nodes " << a << " and " << b << " interfere yet share color "
            << c.color[a];
      }
    }
  }
  EXPECT_EQ(c.colors_used, static_cast<std::size_t>(max_seen) + 1);
}

phy::Topology random_field(std::size_t n, double side, std::uint64_t seed) {
  sim::Rng rng(seed);
  auto prng = rng.derive("placement");
  return phy::Topology::random_connected(n, side, 40.0, prng);
}

TEST(InterferenceColoring, SafeOnRandomFields) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    auto topo = random_field(60, 250.0, seed);
    expect_proper(topo, color_interference(topo, 1.0), 1.0);
  }
}

TEST(InterferenceColoring, SafeUnderWidenedCarrierMargin) {
  auto topo = random_field(50, 220.0, 9);
  for (double margin : {1.0, 1.5, 2.0, 3.0})
    expect_proper(topo, color_interference(topo, margin), margin);
}

TEST(InterferenceColoring, TranslationInvariantAcrossNegativeCoords) {
  // The conflict graph only depends on pairwise distances, so shifting
  // the whole field — across the origin, into negative coordinates —
  // must reproduce the identical coloring (this also pins the grid's
  // negative-coordinate cell packing).
  auto topo = random_field(40, 200.0, 5);
  phy::Topology shifted = topo;
  for (core::NodeId i = 0; i < topo.size(); ++i) {
    const auto p = topo.position(i);
    shifted.set_position(i, {p.x - 137.5, p.y - 212.25});
  }
  const auto a = color_interference(topo, 1.0);
  const auto b = color_interference(shifted, 1.0);
  expect_proper(shifted, b, 1.0);
  EXPECT_EQ(a.color, b.color);
  EXPECT_EQ(a.colors_used, b.colors_used);
}

TEST(InterferenceColoring, SafeAfterChurn) {
  auto topo = random_field(50, 220.0, 11);
  sim::Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    for (int moves = 0; moves < 10; ++moves) {
      const auto id =
          static_cast<core::NodeId>(rng.integer(topo.size()));
      const auto p = topo.position(id);
      topo.set_position(id, {p.x + rng.uniform(-30.0, 30.0),
                             p.y + rng.uniform(-30.0, 30.0)});
    }
    expect_proper(topo, color_interference(topo, 1.0), 1.0);
  }
}

TEST(InterferenceColoring, CliqueNeedsNColors) {
  // Everyone within everyone's range: no reuse is possible, the frame
  // degenerates to classic TDMA and the reuse factor is exactly 1.
  constexpr std::size_t kN = 12;
  phy::Topology topo(kN, 40.0);
  sim::Rng rng(3);
  for (core::NodeId i = 0; i < kN; ++i)
    topo.set_position(i, {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  const auto c = color_interference(topo, 1.0);
  expect_proper(topo, c, 1.0);
  EXPECT_EQ(c.colors_used, kN);

  ReuseSchedule sched(topo, 0.01, 7, 1.0);
  const MacStats st = sched.stats();
  EXPECT_EQ(st.colors_used, kN);
  EXPECT_EQ(st.max_color, kN - 1);
  EXPECT_DOUBLE_EQ(st.reuse_factor, 1.0);
}

TEST(InterferenceColoring, SparseChainNeedsThreeColors) {
  // 30 m spacing, 40 m range: only adjacent nodes hear each other, and
  // nodes two apart share a witness — the conflict graph is the cube of
  // a path, which greedy colors with exactly 3. Far-apart nodes reuse
  // slots, so the reuse factor beats 1.
  const auto topo = phy::Topology::linear(12, 30.0, 40.0);
  const auto c = color_interference(topo, 1.0);
  expect_proper(topo, c, 1.0);
  EXPECT_EQ(c.colors_used, 3u);

  ReuseSchedule sched(topo, 0.01, 7, 1.0);
  const MacStats st = sched.stats();
  EXPECT_EQ(st.colors_used, 3u);
  EXPECT_DOUBLE_EQ(st.reuse_factor, 4.0);
  EXPECT_GT(st.reuse_factor, 1.0);
}

TEST(ReuseSchedule, RecolorsOnlyWhenTopologyGenerationChanges) {
  auto topo = random_field(30, 180.0, 21);
  ReuseSchedule sched(topo, 0.01, 7, 1.0);
  EXPECT_EQ(sched.stats().recolors, 1u);  // the construction-time coloring
  sched.ensure();
  sched.ensure();
  EXPECT_EQ(sched.stats().recolors, 1u);  // no churn => no recolor
  const auto p = topo.position(4);
  topo.set_position(4, {p.x + 5.0, p.y});
  EXPECT_EQ(sched.stats().recolors, 2u);  // stats() itself ensures
  EXPECT_EQ(sched.stats().recolors, 2u);
}

TEST(ReuseSchedule, SlotTimesAreFrameIndependent) {
  // slot_start is pure slot arithmetic: a recolor that changes the frame
  // length must not move slot boundaries (in-flight MAC timers rely on
  // this).
  auto topo = random_field(30, 180.0, 23);
  ReuseSchedule sched(topo, 0.01, 7, 1.0);
  EXPECT_DOUBLE_EQ(sched.slot_start(17), 0.17);
  const auto p = topo.position(2);
  topo.set_position(2, {p.x + 40.0, p.y});
  sched.ensure();
  EXPECT_DOUBLE_EQ(sched.slot_start(17), 0.17);
  EXPECT_EQ(sched.slot_at(0.171), 17u);
  EXPECT_THROW(sched.slot_at(-0.01), std::invalid_argument);
}

TEST(ReuseSchedule, OwnedSlotsFollowColors) {
  const auto topo = phy::Topology::linear(9, 30.0, 40.0);
  ReuseSchedule sched(topo, 0.01, 7, 1.0);
  // Nodes 0 and 3 are 90 m apart — independent, same color under the
  // 3-coloring of the chain; they own exactly the same slots.
  EXPECT_EQ(sched.color_of(0), sched.color_of(3));
  for (std::uint64_t from : {0ULL, 5ULL, 100ULL})
    EXPECT_EQ(sched.next_owned_slot_from(0, from),
              sched.next_owned_slot_from(3, from));
  // Conflicting neighbors never share a slot.
  EXPECT_NE(sched.color_of(0), sched.color_of(1));
  EXPECT_THROW(sched.color_of(99), std::out_of_range);
}

}  // namespace
}  // namespace jtp::mac
