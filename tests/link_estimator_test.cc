#include "mac/link_estimator.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace jtp::mac {
namespace {

LinkEstimatorConfig cfg() {
  LinkEstimatorConfig c;
  c.loss_alpha = 0.1;
  c.attempts_alpha = 0.1;
  c.initial_loss = 0.1;
  c.utilization_window_s = 10.0;
  c.node_capacity_pps = 2.0;
  return c;
}

TEST(LinkEstimator, PriorLossBeforeSamples) {
  LinkEstimator e(cfg());
  EXPECT_DOUBLE_EQ(e.loss_rate(3), 0.1);
}

TEST(LinkEstimator, FirstSampleBlendsWithPrior) {
  LinkEstimator e(cfg());
  e.record_attempt(3, /*lost=*/true);
  EXPECT_DOUBLE_EQ(e.loss_rate(3), 0.55);  // (0.1 + 1.0)/2
  LinkEstimator e2(cfg());
  e2.record_attempt(3, /*lost=*/false);
  EXPECT_DOUBLE_EQ(e2.loss_rate(3), 0.05);
}

TEST(LinkEstimator, LossConvergesToTrueRate) {
  LinkEstimator e(cfg());
  sim::Rng rng(5);
  // EWMA over Bernoulli(0.3) samples: expectation 0.3, stddev of the
  // estimate ~ sqrt(alpha/(2-alpha))·sigma ≈ 0.10 at alpha=0.1; average a
  // few independent readings to tighten the check.
  double sum = 0.0;
  int readings = 0;
  for (int i = 0; i < 5000; ++i) {
    e.record_attempt(1, rng.bernoulli(0.3));
    if (i >= 1000 && i % 100 == 0) {
      sum += e.loss_rate(1);
      ++readings;
    }
  }
  EXPECT_NEAR(sum / readings, 0.3, 0.05);
}

TEST(LinkEstimator, LinksTrackedIndependently) {
  LinkEstimator e(cfg());
  for (int i = 0; i < 500; ++i) {
    e.record_attempt(1, true);
    e.record_attempt(2, false);
  }
  EXPECT_GT(e.loss_rate(1), 0.9);
  EXPECT_LT(e.loss_rate(2), 0.1);
}

TEST(LinkEstimator, AttemptsDefaultIsOne) {
  LinkEstimator e(cfg());
  EXPECT_DOUBLE_EQ(e.avg_attempts(1), 1.0);
}

TEST(LinkEstimator, AttemptsEwmaTracks) {
  LinkEstimator e(cfg());
  for (int i = 0; i < 500; ++i) e.record_packet(1, 3);
  EXPECT_NEAR(e.avg_attempts(1), 3.0, 0.01);
}

TEST(LinkEstimator, RecordPacketRejectsZero) {
  LinkEstimator e(cfg());
  EXPECT_THROW(e.record_packet(1, 0), std::invalid_argument);
}

TEST(LinkEstimator, IdleNodeHasFullAvailableRate) {
  LinkEstimator e(cfg());
  EXPECT_DOUBLE_EQ(e.available_rate_pps(100.0), 2.0);
  EXPECT_DOUBLE_EQ(e.utilization(100.0), 0.0);
}

TEST(LinkEstimator, SaturatedNodeHasZeroAvailableRate) {
  LinkEstimator e(cfg());
  // capacity 2 pps over a 10 s window = 20 owned slots; use all of them.
  for (int i = 0; i < 20; ++i) e.record_slot_used(90.0 + i * 0.5);
  EXPECT_NEAR(e.utilization(100.0), 1.0, 1e-9);
  EXPECT_NEAR(e.available_rate_pps(100.0), 0.0, 1e-9);
}

TEST(LinkEstimator, HalfLoadHalfAvailable) {
  LinkEstimator e(cfg());
  for (int i = 0; i < 10; ++i) e.record_slot_used(90.0 + i);
  EXPECT_NEAR(e.utilization(100.0), 0.5, 1e-9);
  EXPECT_NEAR(e.available_rate_pps(100.0), 1.0, 1e-9);
}

TEST(LinkEstimator, OldUsageAgesOut) {
  LinkEstimator e(cfg());
  for (int i = 0; i < 20; ++i) e.record_slot_used(i * 0.5);  // all in [0,10)
  EXPECT_GT(e.utilization(10.0), 0.9);
  EXPECT_NEAR(e.utilization(25.0), 0.0, 1e-9);  // window slid past
}

TEST(LinkEstimator, ViewBundlesAllThree) {
  LinkEstimator e(cfg());
  for (int i = 0; i < 100; ++i) {
    e.record_attempt(4, i % 2 == 0);
    e.record_packet(4, 2);
  }
  e.record_slot_used(99.0);
  const auto v = e.view(4, 100.0);
  EXPECT_NEAR(v.loss_rate, 0.5, 0.15);
  EXPECT_NEAR(v.avg_attempts, 2.0, 0.1);
  EXPECT_LT(v.available_rate_pps, 2.0);
}

TEST(LinkEstimator, RejectsBadConfig) {
  auto c = cfg();
  c.loss_alpha = 0.0;
  EXPECT_THROW(LinkEstimator{c}, std::invalid_argument);
  c = cfg();
  c.utilization_window_s = 0.0;
  EXPECT_THROW(LinkEstimator{c}, std::invalid_argument);
}

}  // namespace
}  // namespace jtp::mac
