// Tests for the energy-budget controller (paper §5.2.4, eq. 13).
#include "core/energy_controller.h"

#include <gtest/gtest.h>

namespace jtp::core {
namespace {

TEST(EnergyBudget, RejectsBetaNotAboveOne) {
  EXPECT_THROW(EnergyBudgetController(1.0), std::invalid_argument);
  EXPECT_THROW(EnergyBudgetController(0.5), std::invalid_argument);
  EXPECT_NO_THROW(EnergyBudgetController(1.5));
}

TEST(EnergyBudget, ZeroBeforeAnySample) {
  EnergyBudgetController c(2.0);
  EXPECT_DOUBLE_EQ(c.budget(), 0.0);
}

TEST(EnergyBudget, BudgetIsBetaTimesUcl) {
  EnergyBudgetController c(2.0);
  c.observe(0.010);
  // After one sample: x̄ = 0.01, R̄ = 0.005, UCL = 0.01 + 3·0.005/1.128.
  const double ucl = 0.010 + 3.0 * 0.005 / 1.128;
  EXPECT_NEAR(c.budget(), 2.0 * ucl, 1e-12);
}

TEST(EnergyBudget, BudgetAboveTypicalConsumption) {
  EnergyBudgetController c(2.0);
  for (int i = 0; i < 200; ++i) c.observe(0.010 + 0.001 * (i % 3));
  // Budget must exceed every observed value, giving headroom for
  // transients (that's its purpose).
  EXPECT_GT(c.budget(), 0.012);
}

TEST(EnergyBudget, SurgeTriggersMonitor) {
  EnergyBudgetController c(2.0);
  for (int i = 0; i < 100; ++i) c.observe(0.010);
  bool triggered = false;
  for (int i = 0; i < 10; ++i) triggered |= c.observe(0.080);
  EXPECT_TRUE(triggered);
}

TEST(EnergyBudget, BudgetTracksConsumptionLevel) {
  EnergyBudgetController lo(2.0), hi(2.0);
  for (int i = 0; i < 100; ++i) {
    lo.observe(0.005);
    hi.observe(0.050);
  }
  EXPECT_GT(hi.budget(), lo.budget());
}

TEST(EnergyBudget, HigherBetaGivesMoreHeadroom) {
  EnergyBudgetController small(1.5), big(4.0);
  for (int i = 0; i < 50; ++i) {
    small.observe(0.02);
    big.observe(0.02);
  }
  EXPECT_GT(big.budget(), small.budget());
}

}  // namespace
}  // namespace jtp::core
