#include "phy/topology.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace jtp::phy {
namespace {

TEST(Topology, LinearChainIsConnectedAndMultiHop) {
  const auto t = Topology::linear(5, 30.0, 40.0);
  EXPECT_TRUE(t.connected());
  // Neighbors only: no hop-skipping.
  EXPECT_TRUE(t.in_range(0, 1));
  EXPECT_FALSE(t.in_range(0, 2));
  EXPECT_EQ(t.neighbors(2), (std::vector<core::NodeId>{1, 3}));
  EXPECT_EQ(t.neighbors(0), (std::vector<core::NodeId>{1}));
}

TEST(Topology, LinearRejectsDegenerateSpacing) {
  EXPECT_THROW(Topology::linear(5, 45.0, 40.0), std::invalid_argument);
  // range >= 2*spacing would let the chain skip hops
  EXPECT_THROW(Topology::linear(5, 15.0, 40.0), std::invalid_argument);
}

TEST(Topology, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Topology, InRangeIsSymmetricAndIrreflexive) {
  const auto t = Topology::linear(4, 30.0, 40.0);
  for (core::NodeId a = 0; a < 4; ++a) {
    EXPECT_FALSE(t.in_range(a, a));
    for (core::NodeId b = 0; b < 4; ++b)
      EXPECT_EQ(t.in_range(a, b), t.in_range(b, a));
  }
}

TEST(Topology, RandomConnectedIsConnected) {
  sim::Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const auto t = Topology::random_connected(15, 150.0, 40.0, rng);
    EXPECT_TRUE(t.connected());
    EXPECT_EQ(t.size(), 15u);
  }
}

TEST(Topology, RandomConnectedImpossibleFieldThrows) {
  sim::Rng rng(5);
  // Nodes cannot stay connected w.h.p. in an enormous sparse field.
  EXPECT_THROW(Topology::random_connected(10, 100000.0, 40.0, rng, 5),
               std::runtime_error);
}

TEST(Topology, MovingNodeChangesConnectivity) {
  auto t = Topology::linear(3, 30.0, 40.0);
  EXPECT_TRUE(t.in_range(0, 1));
  t.set_position(1, {500.0, 0.0});
  EXPECT_FALSE(t.in_range(0, 1));
  EXPECT_FALSE(t.connected());
}

TEST(Topology, RejectsBadConstruction) {
  EXPECT_THROW(Topology(0, 10.0), std::invalid_argument);
  EXPECT_THROW(Topology(3, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace jtp::phy
