#include "phy/topology.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"

namespace jtp::phy {
namespace {

TEST(Topology, LinearChainIsConnectedAndMultiHop) {
  const auto t = Topology::linear(5, 30.0, 40.0);
  EXPECT_TRUE(t.connected());
  // Neighbors only: no hop-skipping.
  EXPECT_TRUE(t.in_range(0, 1));
  EXPECT_FALSE(t.in_range(0, 2));
  EXPECT_EQ(t.neighbors(2), (std::vector<core::NodeId>{1, 3}));
  EXPECT_EQ(t.neighbors(0), (std::vector<core::NodeId>{1}));
}

TEST(Topology, LinearRejectsDegenerateSpacing) {
  EXPECT_THROW(Topology::linear(5, 45.0, 40.0), std::invalid_argument);
  // range >= 2*spacing would let the chain skip hops
  EXPECT_THROW(Topology::linear(5, 15.0, 40.0), std::invalid_argument);
}

TEST(Topology, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Topology, InRangeIsSymmetricAndIrreflexive) {
  const auto t = Topology::linear(4, 30.0, 40.0);
  for (core::NodeId a = 0; a < 4; ++a) {
    EXPECT_FALSE(t.in_range(a, a));
    for (core::NodeId b = 0; b < 4; ++b)
      EXPECT_EQ(t.in_range(a, b), t.in_range(b, a));
  }
}

TEST(Topology, RandomConnectedIsConnected) {
  sim::Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const auto t = Topology::random_connected(15, 150.0, 40.0, rng);
    EXPECT_TRUE(t.connected());
    EXPECT_EQ(t.size(), 15u);
  }
}

TEST(Topology, RandomConnectedImpossibleFieldThrows) {
  sim::Rng rng(5);
  // Nodes cannot stay connected w.h.p. in an enormous sparse field.
  EXPECT_THROW(Topology::random_connected(10, 100000.0, 40.0, rng, 5),
               std::runtime_error);
}

TEST(Topology, MovingNodeChangesConnectivity) {
  auto t = Topology::linear(3, 30.0, 40.0);
  EXPECT_TRUE(t.in_range(0, 1));
  t.set_position(1, {500.0, 0.0});
  EXPECT_FALSE(t.in_range(0, 1));
  EXPECT_FALSE(t.connected());
}

TEST(Topology, RejectsBadConstruction) {
  EXPECT_THROW(Topology(0, 10.0), std::invalid_argument);
  EXPECT_THROW(Topology(3, 0.0), std::invalid_argument);
}

TEST(Topology, GenerationBumpsOnEverySetPosition) {
  auto t = Topology::linear(3, 30.0, 40.0);
  const auto g0 = t.generation();
  t.set_position(1, {31.0, 0.0});
  EXPECT_EQ(t.generation(), g0 + 1);
  // Same position again still counts: generation tracks writes, and
  // in-range state depends on exact coordinates, not grid cells.
  t.set_position(1, {31.0, 0.0});
  EXPECT_EQ(t.generation(), g0 + 2);
}

// --- grid-index properties -------------------------------------------------
// The spatial index must be invisible: neighbors() has to agree with the
// O(n^2) definition (all in_range ids, ascending) on any placement,
// including after mobility-style churn and on negative coordinates.

std::vector<core::NodeId> brute_force_neighbors(const Topology& t,
                                                core::NodeId id) {
  std::vector<core::NodeId> out;
  for (core::NodeId j = 0; j < t.size(); ++j)
    if (t.in_range(id, j)) out.push_back(j);
  return out;
}

void expect_index_matches_brute_force(const Topology& t,
                                      const char* context) {
  std::vector<core::NodeId> scratch;
  for (core::NodeId i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.neighbors(i), brute_force_neighbors(t, i))
        << context << ": node " << i;
    t.neighbors_into(i, scratch);
    EXPECT_EQ(scratch, brute_force_neighbors(t, i))
        << context << " (into): node " << i;
  }
}

TEST(TopologyGridIndex, NeighborsMatchBruteForceOnRandomFields) {
  sim::Rng rng(42);
  for (const std::size_t n : {2u, 7u, 40u, 150u}) {
    Topology t(n, 40.0);
    const double side = 40.0 * std::sqrt(static_cast<double>(n));
    for (core::NodeId i = 0; i < n; ++i)
      t.set_position(i, {rng.uniform(0.0, side), rng.uniform(0.0, side)});
    expect_index_matches_brute_force(t, "fresh placement");
  }
}

TEST(TopologyGridIndex, NeighborsMatchBruteForceAfterChurn) {
  sim::Rng rng(7);
  const std::size_t n = 60;
  Topology t(n, 40.0);
  for (core::NodeId i = 0; i < n; ++i)
    t.set_position(i, {rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
  // Mobility-style churn: small steps, long jumps, and excursions to
  // negative coordinates (cells left, emptied, re-entered).
  for (int round = 0; round < 200; ++round) {
    const auto id = static_cast<core::NodeId>(rng.integer(n));
    const auto& p = t.position(id);
    if (round % 5 == 0) {
      t.set_position(id, {rng.uniform(-120.0, 420.0),
                          rng.uniform(-120.0, 420.0)});
    } else {
      t.set_position(id, {p.x + rng.uniform(-10.0, 10.0),
                          p.y + rng.uniform(-10.0, 10.0)});
    }
  }
  expect_index_matches_brute_force(t, "after churn");
}

TEST(TopologyMovedSince, ReportsDistinctMoversAscending) {
  Topology t(10, 40.0);
  const std::uint64_t gen = t.generation();
  t.set_position(5, {10.0, 0.0});
  t.set_position(2, {20.0, 0.0});
  t.set_position(5, {30.0, 0.0});  // repeat mover: reported once
  std::vector<core::NodeId> moved;
  ASSERT_TRUE(t.moved_since(gen, moved));
  EXPECT_EQ(moved, (std::vector<core::NodeId>{2, 5}));
}

TEST(TopologyMovedSince, CurrentGenerationYieldsEmptySet) {
  Topology t(4, 40.0);
  t.set_position(1, {5.0, 5.0});
  std::vector<core::NodeId> moved{99};
  ASSERT_TRUE(t.moved_since(t.generation(), moved));
  EXPECT_TRUE(moved.empty());
}

TEST(TopologyMovedSince, FutureGenerationIsUnanswerable) {
  Topology t(4, 40.0);
  std::vector<core::NodeId> moved;
  EXPECT_FALSE(t.moved_since(t.generation() + 1, moved));
}

TEST(TopologyMovedSince, OverflowReturnsFalseAtExactBoundary) {
  Topology t(4, 40.0);
  const std::size_t cap = t.move_history_capacity();
  const std::uint64_t gen = t.generation();
  std::vector<core::NodeId> moved;
  // Fill the ring exactly: still answerable.
  for (std::size_t i = 0; i < cap; ++i)
    t.set_position(static_cast<core::NodeId>(i % 4),
                   {static_cast<double>(i), 0.0});
  ASSERT_TRUE(t.moved_since(gen, moved));
  EXPECT_EQ(moved.size(), 4u);
  // One more move pushes the window past the ring: unanswerable.
  t.set_position(0, {1.0, 1.0});
  EXPECT_FALSE(t.moved_since(gen, moved));
  // A narrower window inside the ring still works.
  ASSERT_TRUE(t.moved_since(t.generation() - 1, moved));
  EXPECT_EQ(moved, (std::vector<core::NodeId>{0}));
}

TEST(TopologyMovedSince, CopyCarriesItsOwnHistory) {
  Topology t(4, 40.0);
  t.set_position(3, {10.0, 0.0});
  const Topology copy = t;
  const std::uint64_t gen = copy.generation();
  t.set_position(1, {20.0, 0.0});  // original moves on; copy is frozen
  std::vector<core::NodeId> moved;
  ASSERT_TRUE(copy.moved_since(gen, moved));
  EXPECT_TRUE(moved.empty());
  std::vector<core::NodeId> orig_moved;
  ASSERT_TRUE(t.moved_since(gen, orig_moved));
  EXPECT_EQ(orig_moved, (std::vector<core::NodeId>{1}));
}

TEST(TopologyGridIndex, RangeBoundaryIsInclusiveAcrossCells) {
  // Two nodes exactly one range apart land in different cells; the index
  // must keep the <= boundary the scan had.
  Topology t(2, 40.0);
  t.set_position(0, {0.0, 0.0});
  t.set_position(1, {40.0, 0.0});
  EXPECT_TRUE(t.in_range(0, 1));
  EXPECT_EQ(t.neighbors(0), (std::vector<core::NodeId>{1}));
  t.set_position(1, {40.0000001, 0.0});
  EXPECT_TRUE(t.neighbors(0).empty());
}

}  // namespace
}  // namespace jtp::phy
