// Tests for the tabular output layer: CSV escaping, Cell rendering,
// Series schema enforcement and serialization, CsvWriter streaming.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/trace.h"

namespace jtp::sim {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("abc"), "abc");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithSeparators) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

TEST(Cell, NumberRendering) {
  Cell c(1.23456);
  EXPECT_EQ(c.kind(), Cell::Kind::kNumber);
  EXPECT_EQ(c.table_text(2), "1.23");
  EXPECT_EQ(c.csv_value(4), "1.2346");
}

TEST(Cell, IntegralTypesConvert) {
  EXPECT_EQ(Cell(std::size_t{7}).table_text(0), "7");
  EXPECT_EQ(Cell(-3).table_text(0), "-3");
}

TEST(Cell, CiRendering) {
  Cell c(2.5, 0.25);
  EXPECT_EQ(c.kind(), Cell::Kind::kCi);
  EXPECT_EQ(c.table_text(2), "2.50 ±0.25");
  EXPECT_EQ(c.csv_value(2), "2.50");
  EXPECT_EQ(c.csv_ci_value(2), "0.25");
}

TEST(Cell, TextRendersVerbatimInTableEscapedInCsv) {
  Cell c("with, comma");
  EXPECT_EQ(c.table_text(3), "with, comma");
  EXPECT_EQ(c.csv_value(3), "\"with, comma\"");
}

TEST(Cell, PlainNumberInCiColumnHasZeroHalfwidth) {
  Cell c(4.0);
  EXPECT_EQ(c.csv_ci_value(1), "0.0");
}

TEST(Series, RejectsEmptySchema) {
  EXPECT_THROW(Series(std::vector<Column>{}), std::invalid_argument);
}

TEST(Series, RejectsArityMismatch) {
  Series s({{"a"}, {"b"}});
  EXPECT_THROW(s.append({1.0}), std::invalid_argument);
  EXPECT_THROW(s.append({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Series, RejectsCiCellInPlainColumn) {
  Series s({{"a"}, {"b", 3, /*with_ci=*/true}});
  EXPECT_THROW(s.append({Cell(1.0, 0.1), Cell(2.0, 0.2)}),
               std::invalid_argument);
  s.append({1.0, Cell(2.0, 0.2)});  // CI cell in the CI column is fine
  EXPECT_EQ(s.rows().size(), 1u);
}

TEST(Series, CsvExpandsCiColumns) {
  Series s({{"x", 0}, {"y", 2, /*with_ci=*/true}});
  s.append({1, Cell(2.0, 0.5)});
  s.append({2, 3.0});  // plain value in a CI column: half-width 0
  std::ostringstream os;
  s.write_csv(os);
  EXPECT_EQ(os.str(),
            "x,y,y_ci95\n"
            "1,2.00,0.50\n"
            "2,3.00,0.00\n");
}

TEST(Series, CsvEscapesHeaderAndTextCells) {
  Series s({{"name, first", 0}, {"v", 1}});
  s.append({Cell("a \"quoted\" one"), 1.5});
  std::ostringstream os;
  s.write_csv(os);
  EXPECT_EQ(os.str(),
            "\"name, first\",v\n"
            "\"a \"\"quoted\"\" one\",1.5\n");
}

TEST(Series, WriteCsvFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "trace_test_series.csv";
  Series s({{"a", 1}});
  s.append({1.0});
  ASSERT_TRUE(s.write_csv_file(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "a\n1.0\n");
  std::remove(path.c_str());
}

TEST(Series, WriteCsvFileFailsOnBadPath) {
  Series s({{"a", 1}});
  EXPECT_FALSE(s.write_csv_file("/nonexistent-dir/x/y.csv"));
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "trace_test_writer.csv";
  {
    CsvWriter w(path, {"t", "v"});
    ASSERT_TRUE(w.ok());
    w.row({1.0, 2.5});
    w.row(std::vector<std::string>{"x,y", "ok"});
    EXPECT_THROW(w.row({1.0}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "t,v\n1,2.5\n\"x,y\",ok\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jtp::sim
