#include "phy/link_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/random.h"

namespace jtp::phy {
namespace {

TEST(PackedLinkTable, InsertThenFind) {
  PackedLinkTable<int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(42), nullptr);
  int& v = t.find_or_create(42, [] { return 7; });
  EXPECT_EQ(v, 7);
  EXPECT_EQ(t.size(), 1u);
  ASSERT_NE(t.find(42), nullptr);
  EXPECT_EQ(*t.find(42), 7);
  // Second sight: the factory must not run again.
  int calls = 0;
  int& again = t.find_or_create(42, [&] {
    ++calls;
    return -1;
  });
  EXPECT_EQ(again, 7);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(t.stats().inserts, 1u);
}

TEST(PackedLinkTable, MatchesReferenceMapUnderChurn) {
  PackedLinkTable<std::uint64_t> t;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  sim::Rng rng(3);
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t key = rng.integer(512);  // dense keyspace: collisions
    const int op = static_cast<int>(rng.integer(3));
    if (op == 0) {
      const std::uint64_t val = key * 1000003u;
      t.find_or_create(key, [&] { return val; });
      ref.emplace(key, val);
    } else if (op == 1) {
      EXPECT_EQ(t.erase(key), ref.erase(key) > 0) << "key " << key;
    } else {
      const auto* got = t.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(got != nullptr, it != ref.end()) << "key " << key;
      if (got) {
        EXPECT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
}

TEST(PackedLinkTable, GrowsPastReserveAndRehashes) {
  PackedLinkTable<std::uint64_t> t(64);  // minimum reserve
  const std::size_t buckets_before = t.bucket_count();
  for (std::uint64_t k = 0; k < 4096; ++k)
    t.find_or_create(k, [&] { return k; });
  EXPECT_EQ(t.size(), 4096u);
  EXPECT_GT(t.bucket_count(), buckets_before);
  EXPECT_GT(t.stats().rehashes, 0u);
  // Load factor bound survived every doubling.
  EXPECT_LE(10 * t.size(), 7 * t.bucket_count());
  for (std::uint64_t k = 0; k < 4096; ++k) {
    ASSERT_NE(t.find(k), nullptr);
    EXPECT_EQ(*t.find(k), k);
  }
}

TEST(PackedLinkTable, ReserveSizedTableNeverRehashes) {
  PackedLinkTable<std::uint64_t> t(4096);
  for (std::uint64_t k = 0; k < 4096; ++k)
    t.find_or_create(k, [&] { return k; });
  EXPECT_EQ(t.stats().rehashes, 0u);
}

TEST(PackedLinkTable, ErasedSlotsAreReused) {
  PackedLinkTable<std::uint64_t> t(64);
  for (std::uint64_t k = 0; k < 60; ++k)
    t.find_or_create(k, [&] { return k; });
  for (std::uint64_t k = 0; k < 60; ++k) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size(), 0u);
  // Refill: the freelist recycles the slab, no rehash and no growth.
  for (std::uint64_t k = 100; k < 160; ++k)
    t.find_or_create(k, [&] { return k; });
  EXPECT_EQ(t.size(), 60u);
  EXPECT_EQ(t.stats().rehashes, 0u);
  for (std::uint64_t k = 100; k < 160; ++k) {
    ASSERT_NE(t.find(k), nullptr);
    EXPECT_EQ(*t.find(k), k);
  }
}

TEST(PackedLinkTable, ProbeHighWaterStaysSmallAtPlannedLoad) {
  PackedLinkTable<std::uint64_t> t(1600);
  sim::Rng rng(9);
  for (int i = 0; i < 1600; ++i) {
    const std::uint64_t key =
        (rng.integer(400) << 32) | rng.integer(400);
    t.find_or_create(key, [&] { return key; });
  }
  // At load <= 0.7 with a well-mixed hash, linear-probe runs are short;
  // a high-water anywhere near the bucket count means clustering.
  EXPECT_LT(t.stats().probe_hw, 64u);
  EXPECT_EQ(t.stats().rehashes, 0u);
}

TEST(PackedLinkTable, BackwardShiftKeepsCollidersReachable) {
  // Force one probe run: keys chosen so several land on the same home
  // bucket (same hash mod pow2 is hard to construct through splitmix64,
  // so just hammer a tiny table where runs are guaranteed).
  PackedLinkTable<std::uint64_t> t;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 120; ++k) keys.push_back(k * 7919u);
  for (const auto k : keys) t.find_or_create(k, [&] { return k + 1; });
  // Erase every third key, then every survivor must still resolve.
  for (std::size_t i = 0; i < keys.size(); i += 3) EXPECT_TRUE(t.erase(keys[i]));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(t.find(keys[i]), nullptr);
    } else {
      ASSERT_NE(t.find(keys[i]), nullptr) << "lost key index " << i;
      EXPECT_EQ(*t.find(keys[i]), keys[i] + 1);
    }
  }
}

}  // namespace
}  // namespace jtp::phy
