// Tests for iJTP (paper Algorithms 1 and 2).
#include "core/ijtp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace jtp::core {
namespace {

Packet data(FlowId flow, SeqNo seq, double lt = 0.0, Joules budget = 0.0) {
  Packet p;
  p.type = PacketType::kData;
  p.flow = flow;
  p.seq = seq;
  p.loss_tolerance = lt;
  p.energy_budget = budget;
  return p;
}

Packet ack_with_snack(FlowId flow, std::vector<SeqNo> missing) {
  Packet p;
  p.type = PacketType::kAck;
  p.flow = flow;
  AckHeader h;
  h.snack.missing = std::move(missing);
  p.ack = std::move(h);
  return p;
}

LinkView link(double loss = 0.1, double avail = 5.0, double attempts = 1.0) {
  return LinkView{loss, avail, attempts};
}

// ---------------- PreXmit (Algorithm 1) ----------------

TEST(IjtpPreXmit, ChargesEnergyToPacket) {
  IjtpModule m;
  Packet p = data(1, 0);
  m.pre_xmit(p, link(), 3, 0.002, true);
  EXPECT_DOUBLE_EQ(p.energy_used, 0.002);
  m.pre_xmit(p, link(), 3, 0.002, false);
  EXPECT_DOUBLE_EQ(p.energy_used, 0.004);
}

TEST(IjtpPreXmit, DropsWhenOverBudget) {
  IjtpModule m;
  Packet p = data(1, 0, 0.0, /*budget=*/0.005);
  EXPECT_FALSE(m.pre_xmit(p, link(), 3, 0.003, true).drop);
  EXPECT_TRUE(m.pre_xmit(p, link(), 3, 0.003, false).drop);
  EXPECT_EQ(m.energy_drops(), 1u);
}

TEST(IjtpPreXmit, ZeroBudgetMeansUnbudgeted) {
  IjtpModule m;
  Packet p = data(1, 0, 0.0, 0.0);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(m.pre_xmit(p, link(), 3, 1.0, i == 0).drop);
}

TEST(IjtpPreXmit, FullReliabilityGetsMaxAttempts) {
  IjtpConfig cfg;
  cfg.max_attempts = 5;
  IjtpModule m(cfg);
  Packet p = data(1, 0, /*lt=*/0.0);
  const auto r = m.pre_xmit(p, link(0.3), 4, 0.0, true);
  EXPECT_EQ(r.max_attempts, 5);
}

TEST(IjtpPreXmit, TolerantPacketGetsFewerAttempts) {
  IjtpConfig cfg;
  cfg.max_attempts = 5;
  IjtpModule m(cfg);
  Packet tolerant = data(1, 0, /*lt=*/0.2);
  Packet strict = data(1, 1, /*lt=*/0.0);
  const auto rt = m.pre_xmit(tolerant, link(0.3), 2, 0.0, true);
  const auto rs = m.pre_xmit(strict, link(0.3), 2, 0.0, true);
  EXPECT_LT(rt.max_attempts, rs.max_attempts);
}

TEST(IjtpPreXmit, UpdatesLossToleranceField) {
  IjtpModule m;
  Packet p = data(1, 0, /*lt=*/0.2);
  const double before = p.loss_tolerance;
  m.pre_xmit(p, link(0.1), 4, 0.0, true);
  EXPECT_NE(p.loss_tolerance, before);
  EXPECT_GE(p.loss_tolerance, 0.0);
  EXPECT_LE(p.loss_tolerance, 1.0);
}

TEST(IjtpPreXmit, RetriesSkipBudgetRecomputation) {
  IjtpModule m;
  Packet p = data(1, 0, /*lt=*/0.2);
  m.pre_xmit(p, link(0.1), 4, 0.0, true);
  const double lt_after_first = p.loss_tolerance;
  m.pre_xmit(p, link(0.1), 4, 0.0, false);  // retry
  EXPECT_DOUBLE_EQ(p.loss_tolerance, lt_after_first);
}

TEST(IjtpPreXmit, StampsMinimumAvailableRate) {
  IjtpModule m;
  Packet p = data(1, 0);
  EXPECT_TRUE(std::isinf(p.available_rate_pps));  // starts unstamped
  m.pre_xmit(p, link(0.1, /*avail=*/8.0, /*attempts=*/2.0), 3, 0.0, true);
  EXPECT_DOUBLE_EQ(p.available_rate_pps, 4.0);  // normalized by attempts
  m.pre_xmit(p, link(0.1, /*avail=*/10.0, /*attempts=*/1.0), 2, 0.0, true);
  EXPECT_DOUBLE_EQ(p.available_rate_pps, 4.0);  // min so far wins
  m.pre_xmit(p, link(0.1, /*avail=*/2.0, /*attempts=*/1.0), 1, 0.0, true);
  EXPECT_DOUBLE_EQ(p.available_rate_pps, 2.0);
}

TEST(IjtpPreXmit, SaturatedNodeZeroStampSurvivesDownstream) {
  // Regression: a zero stamp means "saturated node", and a later node
  // with idle capacity must not overwrite it.
  IjtpModule m;
  Packet p = data(1, 0);
  m.pre_xmit(p, link(0.1, /*avail=*/0.0), 3, 0.0, true);
  EXPECT_DOUBLE_EQ(p.available_rate_pps, 0.0);
  m.pre_xmit(p, link(0.1, /*avail=*/9.0), 2, 0.0, true);
  EXPECT_DOUBLE_EQ(p.available_rate_pps, 0.0);
}

TEST(IjtpPreXmit, AckPacketsAreNotRateStamped) {
  IjtpModule m;
  Packet p = ack_with_snack(1, {});
  m.pre_xmit(p, link(0.1, 8.0), 3, 0.001, true);
  EXPECT_TRUE(std::isinf(p.available_rate_pps));  // untouched
  EXPECT_DOUBLE_EQ(p.energy_used, 0.001);         // but energy is charged
}

// ---------------- PostRcv (Algorithm 2) ----------------

TEST(IjtpPostRcv, CachesTraversingData) {
  IjtpModule m;
  Packet p = data(1, 7);
  m.post_rcv(p);
  EXPECT_TRUE(m.cache().contains(1, 7));
}

TEST(IjtpPostRcv, CachingDisabledSkipsInsert) {
  IjtpConfig cfg;
  cfg.caching_enabled = false;
  IjtpModule m(cfg);
  Packet p = data(1, 7);
  m.post_rcv(p);
  EXPECT_EQ(m.cache().size(), 0u);
}

// Collects forwarded retransmissions; can be told to refuse.
struct Collector {
  std::vector<Packet> out;
  bool accept = true;
  IjtpModule::ForwardFn fn() {
    return [this](Packet&& p) {
      if (!accept) return false;
      out.push_back(std::move(p));
      return true;
    };
  }
};

TEST(IjtpPostRcv, ServesSnackFromCache) {
  IjtpModule m;
  Packet d = data(1, 3);
  m.post_rcv(d);
  Packet a = ack_with_snack(1, {3});
  Collector c;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 1u);
  ASSERT_EQ(c.out.size(), 1u);
  EXPECT_EQ(c.out[0].seq, 3u);
  EXPECT_TRUE(c.out[0].is_cache_retransmission);
  EXPECT_EQ(m.cache_retransmissions(), 1u);
}

TEST(IjtpPostRcv, RewritesAckOnLocalRecovery) {
  IjtpModule m;
  Packet d = data(1, 3);
  m.post_rcv(d);
  Packet a = ack_with_snack(1, {2, 3, 4});
  Collector c;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 1u);
  EXPECT_EQ(a.ack->snack.missing, (std::vector<SeqNo>{2, 4}));
  EXPECT_EQ(a.ack->snack.locally_recovered, (std::vector<SeqNo>{3}));
}

TEST(IjtpPostRcv, RefusedForwardLeavesSeqMissing) {
  // If the local queue refuses the copy, the recovery did not happen and
  // the seq must stay in SNACK.missing for upstream nodes / the source.
  IjtpModule m;
  Packet d = data(1, 3);
  m.post_rcv(d);
  Packet a = ack_with_snack(1, {3});
  Collector c;
  c.accept = false;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 0u);
  EXPECT_EQ(a.ack->snack.missing, (std::vector<SeqNo>{3}));
  EXPECT_TRUE(a.ack->snack.locally_recovered.empty());
  EXPECT_EQ(m.cache_retransmissions(), 0u);
}

TEST(IjtpPostRcv, BurstCapLimitsRetransmissionsPerAck) {
  IjtpConfig cfg;
  cfg.max_cache_rtx_per_ack = 2;
  IjtpModule m(cfg);
  for (SeqNo s = 0; s < 6; ++s) {
    Packet d = data(1, s);
    m.post_rcv(d);
  }
  Packet a = ack_with_snack(1, {0, 1, 2, 3, 4, 5});
  Collector c;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 2u);
  EXPECT_EQ(c.out.size(), 2u);
  EXPECT_EQ(a.ack->snack.locally_recovered.size(), 2u);
  EXPECT_EQ(a.ack->snack.missing.size(), 4u);  // rest left for upstream
}

TEST(IjtpPostRcv, AblationKeepsSnackIntact) {
  IjtpConfig cfg;
  cfg.rewrite_locally_recovered = false;
  IjtpModule m(cfg);
  Packet d = data(1, 3);
  m.post_rcv(d);
  Packet a = ack_with_snack(1, {3});
  Collector c;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 1u);  // still retransmits...
  EXPECT_EQ(a.ack->snack.missing, (std::vector<SeqNo>{3}));  // ...but the
  EXPECT_TRUE(a.ack->snack.locally_recovered.empty());  // source will too
}

TEST(IjtpPostRcv, CacheRetransmissionResetsRateStamp) {
  IjtpModule m;
  Packet d = data(1, 3);
  d.available_rate_pps = 1.5;  // stamped on the original path
  m.post_rcv(d);
  Packet a = ack_with_snack(1, {3});
  Collector c;
  m.post_rcv(a, c.fn());
  ASSERT_EQ(c.out.size(), 1u);
  EXPECT_TRUE(std::isinf(c.out[0].available_rate_pps));
}

TEST(IjtpPostRcv, MissDoesNotTouchAck) {
  IjtpModule m;
  Packet a = ack_with_snack(1, {9});
  Collector c;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 0u);
  EXPECT_TRUE(c.out.empty());
  EXPECT_EQ(a.ack->snack.missing, (std::vector<SeqNo>{9}));
}

TEST(IjtpPostRcv, DifferentFlowNotServed) {
  IjtpModule m;
  Packet d = data(2, 3);
  m.post_rcv(d);
  Packet a = ack_with_snack(1, {3});
  Collector c;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 0u);
}

TEST(IjtpPostRcv, CachingDisabledIgnoresSnack) {
  IjtpConfig cfg;
  cfg.caching_enabled = false;
  IjtpModule m(cfg);
  Packet a = ack_with_snack(1, {1});
  Collector c;
  EXPECT_EQ(m.post_rcv(a, c.fn()), 0u);
  EXPECT_EQ(a.ack->snack.missing.size(), 1u);
}

}  // namespace
}  // namespace jtp::core
