// Tests for the PI^2/MD controller (paper §5.2.1-§5.2.2).
#include "core/rate_controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/stats.h"

namespace jtp::core {
namespace {

RateControllerConfig base() {
  RateControllerConfig c;
  c.ki = 0.5;
  c.kd = 0.75;
  c.delta_pps = 0.25;
  c.initial_rate_pps = 1.0;
  c.min_rate_pps = 0.01;
  c.max_rate_pps = 1e6;
  return c;
}

TEST(RateController, IncreasesWhenHeadroom) {
  RateController c(base());
  const double before = c.rate();
  c.update(10.0);  // plenty of available rate
  EXPECT_GT(c.rate(), before);
}

TEST(RateController, IncreaseIsInverselyProportionalToRate) {
  auto cfg = base();
  cfg.initial_rate_pps = 1.0;
  RateController slow(cfg);
  cfg.initial_rate_pps = 10.0;
  RateController fast(cfg);
  const double d_slow = slow.update(5.0) - 1.0;
  const double d_fast = fast.update(5.0) - 10.0;
  EXPECT_NEAR(d_slow / d_fast, 10.0, 1e-9);  // Δr = KI·Ā/r
}

TEST(RateController, DecreasesMultiplicativelyWhenStarved) {
  RateController c(base());
  c.update(10.0);
  const double before = c.rate();
  c.update(0.0);  // below δ
  EXPECT_NEAR(c.rate(), before * 0.75, 1e-12);
}

TEST(RateController, BackoffUsesKd) {
  RateController c(base());
  const double before = c.rate();
  c.backoff();
  EXPECT_NEAR(c.rate(), before * 0.75, 1e-12);
}

TEST(RateController, RespectsFloorAndCap) {
  auto cfg = base();
  cfg.min_rate_pps = 0.5;
  cfg.max_rate_pps = 2.0;
  RateController c(cfg);
  for (int i = 0; i < 100; ++i) c.update(0.0);
  EXPECT_DOUBLE_EQ(c.rate(), 0.5);
  for (int i = 0; i < 100; ++i) c.update(1000.0);
  EXPECT_DOUBLE_EQ(c.rate(), 2.0);
}

TEST(RateController, SetRateCapClampsCurrent) {
  RateController c(base());
  for (int i = 0; i < 50; ++i) c.update(100.0);
  c.set_rate_cap(1.5);
  EXPECT_LE(c.rate(), 1.5);
}

TEST(RateController, RejectsBadGains) {
  auto cfg = base();
  cfg.ki = 0.0;
  EXPECT_THROW(RateController{cfg}, std::invalid_argument);
  cfg = base();
  cfg.ki = 1.0;
  EXPECT_THROW(RateController{cfg}, std::invalid_argument);
  cfg = base();
  cfg.kd = 1.0;
  EXPECT_THROW(RateController{cfg}, std::invalid_argument);
  cfg = base();
  cfg.kd = 0.0;
  EXPECT_THROW(RateController{cfg}, std::invalid_argument);
}

// §5.2.2 stability: iterating against a fixed capacity C converges to C
// (Lyapunov argument: V decreases in both regions).
class ConvergenceTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ConvergenceTest, ConvergesToCapacity) {
  const auto [ki, kd, capacity] = GetParam();
  auto cfg = base();
  cfg.ki = ki;
  cfg.kd = kd;
  RateController c(cfg);
  // Closed loop: available = C - r (never negative), δ small. Steady
  // state oscillates around C (MD drops to KD·C, PI² climbs back); judge
  // by the time-average of the tail and by the oscillation envelope.
  sim::Summary tail;
  double tail_min = 1e18, tail_max = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const double avail = std::max(0.0, capacity - c.rate());
    c.update(avail);
    if (i >= 2500) {
      tail.add(c.rate());
      tail_min = std::min(tail_min, c.rate());
      tail_max = std::max(tail_max, c.rate());
    }
  }
  EXPECT_NEAR(tail.mean(), capacity, 0.35 * capacity + 1.0)
      << "ki=" << ki << " kd=" << kd << " C=" << capacity;
  EXPECT_GE(tail_min, 0.5 * kd * capacity - 1.0);
  EXPECT_LE(tail_max, 1.6 * capacity + 1.0);
}

TEST_P(ConvergenceTest, LyapunovDecreasesBelowCapacity) {
  const auto [ki, kd, capacity] = GetParam();
  (void)kd;
  auto cfg = base();
  cfg.ki = ki;
  cfg.initial_rate_pps = 0.1;
  RateController c(cfg);
  double v_prev = capacity - c.rate();
  // While the controller is in its increase region (available rate above
  // δ), V(r) = C - r must strictly decrease each iteration.
  for (int i = 0; i < 200; ++i) {
    const double avail = capacity - c.rate();
    if (avail <= cfg.delta_pps) break;  // entered the MD region
    c.update(avail);
    const double v = capacity - c.rate();
    EXPECT_LT(v, v_prev + 1e-12);
    v_prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GainSweep, ConvergenceTest,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.9),
                       ::testing::Values(0.5, 0.75, 0.9),
                       ::testing::Values(2.0, 10.0, 40.0)));

}  // namespace
}  // namespace jtp::core
