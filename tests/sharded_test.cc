// Tests for the sharded event loop: the spatial partitioner, the keyed
// deterministic event ordering it relies on, and the ShardedRunner's
// conservative-lookahead protocol — including the horizon-boundary case
// where a cross-shard event lands exactly at the earliest time the
// lookahead contract allows.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "phy/partition.h"
#include "phy/topology.h"
#include "sim/random.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace jtp {
namespace {

// --------------------------- partitioner -------------------------------

TEST(Partition, SingleShardIsIdentity) {
  auto topo = phy::Topology::linear(10, 30.0, 40.0);
  const auto p = phy::partition_strips(topo, 1);
  EXPECT_EQ(p.shard_count, 1u);
  for (core::NodeId i = 0; i < 10; ++i) EXPECT_EQ(p.shard_of(i), 0u);
}

TEST(Partition, ZeroShardsTreatedAsOne) {
  auto topo = phy::Topology::linear(4, 30.0, 40.0);
  const auto p = phy::partition_strips(topo, 0);
  EXPECT_EQ(p.shard_count, 1u);
}

TEST(Partition, StripsAreContiguousLeftToRight) {
  sim::Rng rng(7);
  auto prng = rng.derive("placement");
  auto topo = phy::Topology::random_connected(100, 300.0, 40.0, prng);
  const auto p = phy::partition_strips(topo, 4);
  ASSERT_GE(p.shard_count, 2u);
  ASSERT_LE(p.shard_count, 4u);

  // Every node lands in a shard; nodes in the same x-strip share one, and
  // shard ids never decrease as strips move left to right.
  const double w = topo.radio_range();
  std::vector<long> strip_shard;  // strip index -> shard (-1 = unseen)
  for (core::NodeId i = 0; i < topo.size(); ++i) {
    ASSERT_LT(p.shard_of(i), p.shard_count);
    const auto strip =
        static_cast<std::size_t>(std::floor(topo.position(i).x / w));
    if (strip_shard.size() <= strip) strip_shard.resize(strip + 1, -1);
    if (strip_shard[strip] < 0)
      strip_shard[strip] = static_cast<long>(p.shard_of(i));
    EXPECT_EQ(static_cast<std::size_t>(strip_shard[strip]), p.shard_of(i));
  }
  long prev = 0;
  for (const long s : strip_shard) {
    if (s < 0) continue;  // unoccupied strip
    EXPECT_GE(s, prev);
    EXPECT_LE(s, prev + 1);  // contiguous run of ids, no gaps
    prev = s;
  }

  // Every shard is non-empty and no shard hoards the field.
  std::vector<std::size_t> sizes(p.shard_count, 0);
  for (core::NodeId i = 0; i < topo.size(); ++i) ++sizes[p.shard_of(i)];
  for (const auto s : sizes) {
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, topo.size() - (p.shard_count - 1));
  }
}

TEST(Partition, DeterministicInTheTopology) {
  sim::Rng a(42), b(42);
  auto ra = a.derive("placement");
  auto rb = b.derive("placement");
  auto ta = phy::Topology::random_connected(60, 250.0, 40.0, ra);
  auto tb = phy::Topology::random_connected(60, 250.0, 40.0, rb);
  const auto pa = phy::partition_strips(ta, 4);
  const auto pb = phy::partition_strips(tb, 4);
  EXPECT_EQ(pa.shard_count, pb.shard_count);
  EXPECT_EQ(pa.assignment, pb.assignment);
}

TEST(Partition, ClampsToOccupiedStrips) {
  // 5 nodes spaced 30 m with a 40 m range occupy 4 strips (x = 0, 30,
  // 60, 90, 120 -> strips 0, 0, 1, 2, 3): asking for 8 shards must clamp.
  auto topo = phy::Topology::linear(5, 30.0, 40.0);
  const auto p = phy::partition_strips(topo, 8);
  EXPECT_LE(p.shard_count, 4u);
  EXPECT_GE(p.shard_count, 2u);
  std::vector<std::size_t> sizes(p.shard_count, 0);
  for (core::NodeId i = 0; i < topo.size(); ++i) ++sizes[p.shard_of(i)];
  for (const auto s : sizes) EXPECT_GE(s, 1u);
}

// ------------------------ keyed event ordering -------------------------

TEST(KeyedOrdering, EqualTimesRunInTieOrderNotInsertionOrder) {
  sim::Simulator sim;
  std::string order;
  // Owner 2 draws its key first but is inserted last; owner order (high
  // bits of the tie) must win over both insertion order and draw order.
  const auto tie_b = sim.draw_tie(2);
  const auto tie_a = sim.draw_tie(1);
  sim.at_keyed(1.0, tie_b, 2, [&] { order += 'b'; });
  sim.at_keyed(1.0, tie_a, 1, [&] { order += 'a'; });
  sim.run();
  EXPECT_EQ(order, "ab");
}

TEST(KeyedOrdering, DrawsAreAFunctionOfTheOwnerStreamAlone) {
  // Interleaving other owners' draws must not disturb owner 1's keys:
  // that independence is what makes keys shard-invariant.
  sim::Simulator a, b;
  const auto k0 = a.draw_tie(1);
  const auto k1 = a.draw_tie(1);
  (void)b.draw_tie(7);
  const auto m0 = b.draw_tie(1);
  (void)b.draw_tie(3);
  const auto m1 = b.draw_tie(1);
  EXPECT_EQ(k0, m0);
  EXPECT_EQ(k1, m1);
}

TEST(KeyedOrdering, ExecutionContextFollowsTheRunningEvent) {
  sim::Simulator sim;
  std::uint32_t seen = 0;
  sim.at_keyed(1.0, sim.draw_tie(5), 5, [&] { seen = sim.context(); });
  sim.run();
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(sim.context(), 0u);  // restored outside the loop
}

// --------------------------- sharded runner ----------------------------

// Reference harness: the same logical workload executed two ways — on
// one merged Simulator (the K=1 semantics) and on two Simulators under
// the ShardedRunner — recording the execution order of labelled events.
// The sequences must match exactly, including every tie at equal
// timestamps.
struct TwoShardRig {
  static constexpr double kLookahead = 1.0;

  // Single-simulator reference. Owner 1 lives on "shard 0", owner 2 on
  // "shard 1"; every owner-1 event at time s spawns an owner-2 event at
  // s + L (the minimum the lookahead contract allows).
  static std::vector<std::string> reference(int chain) {
    std::vector<std::string> log;
    sim::Simulator sim;
    for (int i = 0; i < chain; ++i) {
      const double s = static_cast<double>(i);
      sim.at_keyed(s, sim.draw_tie(1), 1, [&log, &sim, s, i] {
        log.push_back("tx" + std::to_string(i));
        sim.at_keyed(s + kLookahead, sim.draw_tie(1), 2,
                     [&log, i] { log.push_back("rx" + std::to_string(i)); });
      });
      // A local owner-2 event at exactly the cross event's timestamp:
      // the tie (owner 2 > owner 1) must order it after the delivery.
      sim.at_keyed(s + kLookahead, sim.draw_tie(2), 2,
                   [&log, i] { log.push_back("local" + std::to_string(i)); });
    }
    sim.run_until(static_cast<double>(chain) + kLookahead);
    return log;
  }

  // Sharded execution of the same workload. The cross event is posted
  // through the runner stamped exactly at sender-now + lookahead — the
  // horizon boundary — with the tie drawn from the sender's simulator,
  // exactly as net::Network does it.
  static std::vector<std::string> sharded(int chain) {
    std::vector<std::string> log;  // only shard 1 writes: no data race
    sim::Simulator s0, s1;
    sim::ShardedRunner runner({&s0, &s1}, {/*lookahead=*/kLookahead,
                                           /*ring_capacity=*/8});
    for (int i = 0; i < chain; ++i) {
      const double s = static_cast<double>(i);
      s0.at_keyed(s, s0.draw_tie(1), 1, [&, s, i] {
        runner.post(0, 1, s + kLookahead, s0.draw_tie(1), 2,
                    [&log, i] { log.push_back("rx" + std::to_string(i)); });
      });
      s1.at_keyed(s + kLookahead, s1.draw_tie(2), 2,
                  [&log, i] { log.push_back("local" + std::to_string(i)); });
    }
    runner.run_until(static_cast<double>(chain) + kLookahead);
    EXPECT_EQ(runner.messages_posted(), static_cast<std::uint64_t>(chain));
    return log;
  }
};

TEST(ShardedRunner, HorizonBoundaryDeliveryMatchesSingleSimOrder) {
  const auto ref = TwoShardRig::reference(16);
  const auto got = TwoShardRig::sharded(16);
  // The reference interleaves tx/rx/local; the sharded log holds shard
  // 1's events only, so compare against the reference restricted to
  // owner 2 (same node, same order — the determinism contract).
  std::vector<std::string> ref_rx;
  for (const auto& e : ref)
    if (e.rfind("tx", 0) != 0) ref_rx.push_back(e);
  EXPECT_EQ(got, ref_rx);
  // And the boundary really is contested: rx_i and local_i share a
  // timestamp, decided by tie alone (owner 1 draws rx, owner 2 local).
  ASSERT_GE(ref_rx.size(), 2u);
  EXPECT_EQ(ref_rx[0], "rx0");
  EXPECT_EQ(ref_rx[1], "local0");
}

TEST(ShardedRunner, RepeatedRunUntilIsSerializable) {
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 8});
  std::vector<int> hits;  // shard 1 only
  s0.at_keyed(0.5, s0.draw_tie(1), 1, [&] {
    runner.post(0, 1, 1.5, s0.draw_tie(1), 2, [&] { hits.push_back(1); });
  });
  s0.at_keyed(4.0, s0.draw_tie(1), 1, [&] {
    runner.post(0, 1, 5.0, s0.draw_tie(1), 2, [&] { hits.push_back(2); });
  });
  runner.run_until(2.0);
  EXPECT_EQ(hits, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(s0.now(), 2.0);
  EXPECT_DOUBLE_EQ(s1.now(), 2.0);
  runner.run_until(6.0);
  EXPECT_EQ(hits, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(s0.now(), 6.0);
  EXPECT_DOUBLE_EQ(s1.now(), 6.0);
}

TEST(ShardedRunner, TinyRingBackpressuresWithoutLossOrReorder) {
  // Capacity 2 with a 32-message burst: the producer must spin-and-drain
  // its way through, never dropping or reordering.
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 2});
  std::vector<int> got;
  s0.at_keyed(0.0, s0.draw_tie(1), 1, [&] {
    for (int i = 0; i < 32; ++i)
      runner.post(0, 1, 1.0 + i * 1e-3, s0.draw_tie(1), 2,
                  [&got, i] { got.push_back(i); });
  });
  runner.run_until(2.0);
  ASSERT_EQ(got.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(got[i], i);
}

TEST(ShardedRunner, PostAfterReceiverExitLandsOnNextRun) {
  // Shard 1 has nothing below t and exits immediately; shard 0 then
  // posts past t. The message must survive into the next run_until.
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 8});
  bool landed = false;
  s0.at_keyed(1.0, s0.draw_tie(1), 1, [&] {
    runner.post(0, 1, 2.0, s0.draw_tie(1), 2, [&] { landed = true; });
  });
  runner.run_until(1.0);
  EXPECT_FALSE(landed);
  runner.run_until(2.0);
  EXPECT_TRUE(landed);
}

TEST(ShardedRunner, WorkerExceptionPropagatesToCaller) {
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 8});
  s0.at_keyed(0.5, s0.draw_tie(1), 1,
              [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(runner.run_until(1.0), std::runtime_error);
}

}  // namespace
}  // namespace jtp
