// Tests for the sharded event loop: the spatial partitioner, the keyed
// deterministic event ordering it relies on, and the ShardedRunner's
// conservative-lookahead protocol — including the horizon-boundary case
// where a cross-shard event lands exactly at the earliest time the
// lookahead contract allows.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "net/network.h"
#include "phy/mobility.h"
#include "phy/partition.h"
#include "phy/topology.h"
#include "sim/random.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace jtp {
namespace {

// --------------------------- partitioner -------------------------------

TEST(Partition, SingleShardIsIdentity) {
  auto topo = phy::Topology::linear(10, 30.0, 40.0);
  const auto p = phy::partition_strips(topo, 1);
  EXPECT_EQ(p.shard_count, 1u);
  for (core::NodeId i = 0; i < 10; ++i) EXPECT_EQ(p.shard_of(i), 0u);
}

TEST(Partition, ZeroShardsTreatedAsOne) {
  auto topo = phy::Topology::linear(4, 30.0, 40.0);
  const auto p = phy::partition_strips(topo, 0);
  EXPECT_EQ(p.shard_count, 1u);
}

TEST(Partition, StripsAreContiguousLeftToRight) {
  sim::Rng rng(7);
  auto prng = rng.derive("placement");
  auto topo = phy::Topology::random_connected(100, 300.0, 40.0, prng);
  const auto p = phy::partition_strips(topo, 4);
  ASSERT_GE(p.shard_count, 2u);
  ASSERT_LE(p.shard_count, 4u);

  // Every node lands in a shard; nodes in the same x-strip share one, and
  // shard ids never decrease as strips move left to right.
  const double w = topo.radio_range();
  std::vector<long> strip_shard;  // strip index -> shard (-1 = unseen)
  for (core::NodeId i = 0; i < topo.size(); ++i) {
    ASSERT_LT(p.shard_of(i), p.shard_count);
    const auto strip =
        static_cast<std::size_t>(std::floor(topo.position(i).x / w));
    if (strip_shard.size() <= strip) strip_shard.resize(strip + 1, -1);
    if (strip_shard[strip] < 0)
      strip_shard[strip] = static_cast<long>(p.shard_of(i));
    EXPECT_EQ(static_cast<std::size_t>(strip_shard[strip]), p.shard_of(i));
  }
  long prev = 0;
  for (const long s : strip_shard) {
    if (s < 0) continue;  // unoccupied strip
    EXPECT_GE(s, prev);
    EXPECT_LE(s, prev + 1);  // contiguous run of ids, no gaps
    prev = s;
  }

  // Every shard is non-empty and no shard hoards the field.
  std::vector<std::size_t> sizes(p.shard_count, 0);
  for (core::NodeId i = 0; i < topo.size(); ++i) ++sizes[p.shard_of(i)];
  for (const auto s : sizes) {
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, topo.size() - (p.shard_count - 1));
  }
}

TEST(Partition, DeterministicInTheTopology) {
  sim::Rng a(42), b(42);
  auto ra = a.derive("placement");
  auto rb = b.derive("placement");
  auto ta = phy::Topology::random_connected(60, 250.0, 40.0, ra);
  auto tb = phy::Topology::random_connected(60, 250.0, 40.0, rb);
  const auto pa = phy::partition_strips(ta, 4);
  const auto pb = phy::partition_strips(tb, 4);
  EXPECT_EQ(pa.shard_count, pb.shard_count);
  EXPECT_EQ(pa.assignment, pb.assignment);
}

TEST(Partition, ClampsToOccupiedStrips) {
  // 5 nodes spaced 30 m with a 40 m range occupy 4 strips (x = 0, 30,
  // 60, 90, 120 -> strips 0, 0, 1, 2, 3): asking for 8 shards must clamp.
  auto topo = phy::Topology::linear(5, 30.0, 40.0);
  const auto p = phy::partition_strips(topo, 8);
  EXPECT_LE(p.shard_count, 4u);
  EXPECT_GE(p.shard_count, 2u);
  std::vector<std::size_t> sizes(p.shard_count, 0);
  for (core::NodeId i = 0; i < topo.size(); ++i) ++sizes[p.shard_of(i)];
  for (const auto s : sizes) EXPECT_GE(s, 1u);
}

// ------------------------ keyed event ordering -------------------------

TEST(KeyedOrdering, EqualTimesRunInTieOrderNotInsertionOrder) {
  sim::Simulator sim;
  std::string order;
  // Owner 2 draws its key first but is inserted last; owner order (high
  // bits of the tie) must win over both insertion order and draw order.
  const auto tie_b = sim.draw_tie(2);
  const auto tie_a = sim.draw_tie(1);
  sim.at_keyed(1.0, tie_b, 2, [&] { order += 'b'; });
  sim.at_keyed(1.0, tie_a, 1, [&] { order += 'a'; });
  sim.run();
  EXPECT_EQ(order, "ab");
}

TEST(KeyedOrdering, DrawsAreAFunctionOfTheOwnerStreamAlone) {
  // Interleaving other owners' draws must not disturb owner 1's keys:
  // that independence is what makes keys shard-invariant.
  sim::Simulator a, b;
  const auto k0 = a.draw_tie(1);
  const auto k1 = a.draw_tie(1);
  (void)b.draw_tie(7);
  const auto m0 = b.draw_tie(1);
  (void)b.draw_tie(3);
  const auto m1 = b.draw_tie(1);
  EXPECT_EQ(k0, m0);
  EXPECT_EQ(k1, m1);
}

TEST(KeyedOrdering, ExecutionContextFollowsTheRunningEvent) {
  sim::Simulator sim;
  std::uint32_t seen = 0;
  sim.at_keyed(1.0, sim.draw_tie(5), 5, [&] { seen = sim.context(); });
  sim.run();
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(sim.context(), 0u);  // restored outside the loop
}

// --------------------------- sharded runner ----------------------------

// Reference harness: the same logical workload executed two ways — on
// one merged Simulator (the K=1 semantics) and on two Simulators under
// the ShardedRunner — recording the execution order of labelled events.
// The sequences must match exactly, including every tie at equal
// timestamps.
struct TwoShardRig {
  static constexpr double kLookahead = 1.0;

  // Single-simulator reference. Owner 1 lives on "shard 0", owner 2 on
  // "shard 1"; every owner-1 event at time s spawns an owner-2 event at
  // s + L (the minimum the lookahead contract allows).
  static std::vector<std::string> reference(int chain) {
    std::vector<std::string> log;
    sim::Simulator sim;
    for (int i = 0; i < chain; ++i) {
      const double s = static_cast<double>(i);
      sim.at_keyed(s, sim.draw_tie(1), 1, [&log, &sim, s, i] {
        log.push_back("tx" + std::to_string(i));
        sim.at_keyed(s + kLookahead, sim.draw_tie(1), 2,
                     [&log, i] { log.push_back("rx" + std::to_string(i)); });
      });
      // A local owner-2 event at exactly the cross event's timestamp:
      // the tie (owner 2 > owner 1) must order it after the delivery.
      sim.at_keyed(s + kLookahead, sim.draw_tie(2), 2,
                   [&log, i] { log.push_back("local" + std::to_string(i)); });
    }
    sim.run_until(static_cast<double>(chain) + kLookahead);
    return log;
  }

  // Sharded execution of the same workload. The cross event is posted
  // through the runner stamped exactly at sender-now + lookahead — the
  // horizon boundary — with the tie drawn from the sender's simulator,
  // exactly as net::Network does it.
  static std::vector<std::string> sharded(int chain) {
    std::vector<std::string> log;  // only shard 1 writes: no data race
    sim::Simulator s0, s1;
    sim::ShardedRunner runner({&s0, &s1}, {/*lookahead=*/kLookahead,
                                           /*ring_capacity=*/8});
    for (int i = 0; i < chain; ++i) {
      const double s = static_cast<double>(i);
      s0.at_keyed(s, s0.draw_tie(1), 1, [&, s, i] {
        runner.post(0, 1, s + kLookahead, s0.draw_tie(1), 2,
                    [&log, i] { log.push_back("rx" + std::to_string(i)); });
      });
      s1.at_keyed(s + kLookahead, s1.draw_tie(2), 2,
                  [&log, i] { log.push_back("local" + std::to_string(i)); });
    }
    runner.run_until(static_cast<double>(chain) + kLookahead);
    EXPECT_EQ(runner.messages_posted(), static_cast<std::uint64_t>(chain));
    return log;
  }
};

TEST(ShardedRunner, HorizonBoundaryDeliveryMatchesSingleSimOrder) {
  const auto ref = TwoShardRig::reference(16);
  const auto got = TwoShardRig::sharded(16);
  // The reference interleaves tx/rx/local; the sharded log holds shard
  // 1's events only, so compare against the reference restricted to
  // owner 2 (same node, same order — the determinism contract).
  std::vector<std::string> ref_rx;
  for (const auto& e : ref)
    if (e.rfind("tx", 0) != 0) ref_rx.push_back(e);
  EXPECT_EQ(got, ref_rx);
  // And the boundary really is contested: rx_i and local_i share a
  // timestamp, decided by tie alone (owner 1 draws rx, owner 2 local).
  ASSERT_GE(ref_rx.size(), 2u);
  EXPECT_EQ(ref_rx[0], "rx0");
  EXPECT_EQ(ref_rx[1], "local0");
}

TEST(ShardedRunner, RepeatedRunUntilIsSerializable) {
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 8});
  std::vector<int> hits;  // shard 1 only
  s0.at_keyed(0.5, s0.draw_tie(1), 1, [&] {
    runner.post(0, 1, 1.5, s0.draw_tie(1), 2, [&] { hits.push_back(1); });
  });
  s0.at_keyed(4.0, s0.draw_tie(1), 1, [&] {
    runner.post(0, 1, 5.0, s0.draw_tie(1), 2, [&] { hits.push_back(2); });
  });
  runner.run_until(2.0);
  EXPECT_EQ(hits, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(s0.now(), 2.0);
  EXPECT_DOUBLE_EQ(s1.now(), 2.0);
  runner.run_until(6.0);
  EXPECT_EQ(hits, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(s0.now(), 6.0);
  EXPECT_DOUBLE_EQ(s1.now(), 6.0);
}

TEST(ShardedRunner, TinyRingBackpressuresWithoutLossOrReorder) {
  // Capacity 2 with a 32-message burst: the producer must spin-and-drain
  // its way through, never dropping or reordering.
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 2});
  std::vector<int> got;
  s0.at_keyed(0.0, s0.draw_tie(1), 1, [&] {
    for (int i = 0; i < 32; ++i)
      runner.post(0, 1, 1.0 + i * 1e-3, s0.draw_tie(1), 2,
                  [&got, i] { got.push_back(i); });
  });
  runner.run_until(2.0);
  ASSERT_EQ(got.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(got[i], i);
}

TEST(ShardedRunner, PostAfterReceiverExitLandsOnNextRun) {
  // Shard 1 has nothing below t and exits immediately; shard 0 then
  // posts past t. The message must survive into the next run_until.
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 8});
  bool landed = false;
  s0.at_keyed(1.0, s0.draw_tie(1), 1, [&] {
    runner.post(0, 1, 2.0, s0.draw_tie(1), 2, [&] { landed = true; });
  });
  runner.run_until(1.0);
  EXPECT_FALSE(landed);
  runner.run_until(2.0);
  EXPECT_TRUE(landed);
}

TEST(ShardedRunner, WorkerExceptionPropagatesToCaller) {
  sim::Simulator s0, s1;
  sim::ShardedRunner runner({&s0, &s1}, {1.0, 8});
  s0.at_keyed(0.5, s0.draw_tie(1), 1,
              [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(runner.run_until(1.0), std::runtime_error);
}

// --- halo migration (shard-aware mobility) ----------------------------------
//
// Network-level tests for the migration machinery: nodes really cross
// strip boundaries mid-run, hand-over really fires, and none of it is
// allowed to perturb a single counter relative to the K = 1 loop. The
// configs below force the machinery hard: fast waypoints, a barrier
// every lookahead horizon, and a zero halo threshold so every barrier
// with any out-of-strip node runs a hand-over pass.

net::NetworkConfig churny_config(mac::Mac mac_kind, std::size_t shards,
                                 double field_m) {
  net::NetworkConfig cfg;
  cfg.seed = 9;
  cfg.mac_kind = mac_kind;
  cfg.shards = shards;
  cfg.mobility = phy::MobilityConfig{};
  cfg.mobility->speed_mps = 8.0;     // fast: nodes cross strips constantly
  cfg.mobility->mean_leg_m = 120.0;  // long legs: real boundary crossings
  cfg.mobility->mean_pause_s = 0.5;
  cfg.mobility->field_m = field_m;
  cfg.migration_epoch_s = cfg.slot_duration_s;  // barrier every horizon
  cfg.halo_threshold = 0.0;  // any drift at all triggers a hand-over pass
  return cfg;
}

TEST(HaloMigration, NodesCrossBoundariesMidFlightWithoutPerturbingResults) {
  sim::Rng rng(9);
  const double side = exp::random_field_side_m(200);
  const auto topo = phy::Topology::random_connected(200, side, 40.0, rng);
  struct Result {
    std::uint64_t delivered = 0, transmissions = 0, migrations = 0;
    std::vector<core::Joules> energy;
  };
  const auto run = [&](std::size_t shards) {
    net::Network net(topo,
                     churny_config(mac::Mac::kTdmaReuse, shards, side));
    auto f1 = net.add_flow(net::Proto::kJtp, 0, 199);
    auto f2 = net.add_flow(net::Proto::kJtp, 100, 3);
    const auto src_home = net.shard_of(0);
    const auto dst_home = net.shard_of(199);
    f1.sender->start(0);  // unbounded: traffic in flight the whole run
    f2.sender->start(0);
    net.run_until(30.0);
    // Flow endpoints are pinned: their transports hold their home
    // shard's Env, so hand-over must never move them.
    EXPECT_EQ(net.shard_of(0), src_home);
    EXPECT_EQ(net.shard_of(199), dst_home);
    Result r;
    r.delivered =
        f1.receiver->delivered_packets() + f2.receiver->delivered_packets();
    r.transmissions = net.total_transmissions();
    r.migrations = net.migration_stats().migrations;
    r.energy = net.per_node_energy();
    return r;
  };
  const auto ref = run(1);
  EXPECT_GT(ref.delivered, 0u);
  EXPECT_EQ(ref.migrations, 0u);  // K = 1: nothing to migrate
  const auto got = run(4);
  // The machinery actually engaged: deliveries were in flight toward
  // receivers that changed owner mid-run.
  EXPECT_GT(got.migrations, 0u);
  EXPECT_EQ(got.delivered, ref.delivered);
  EXPECT_EQ(got.transmissions, ref.transmissions);
  ASSERT_EQ(got.energy.size(), ref.energy.size());
  for (std::size_t i = 0; i < ref.energy.size(); ++i)
    ASSERT_DOUBLE_EQ(got.energy[i], ref.energy[i]) << "node " << i;
}

TEST(HaloMigration, CsmaCcaHearsBoundaryTransmittersAcrossShards) {
  // A static chain through the strip boundary: every transmission near
  // the cut must appear in both carrier domains (mirrors), or CCA and
  // collision verdicts diverge from the shared-medium loop.
  const auto topo = phy::Topology::linear(20, 30.0, 40.0);
  struct Result {
    std::uint64_t delivered = 0, transmissions = 0;
    std::vector<core::Joules> energy;
  };
  const auto run = [&](std::size_t shards) {
    net::NetworkConfig cfg;
    cfg.seed = 9;
    cfg.mac_kind = mac::Mac::kCsma;
    cfg.shards = shards;
    net::Network net(topo, cfg);
    if (shards > 1) {
      EXPECT_EQ(net.shard_count(), shards);
    }
    auto f1 = net.add_flow(net::Proto::kJtp, 0, 19);
    auto f2 = net.add_flow(net::Proto::kJtp, 19, 0);  // contention both ways
    f1.sender->start(0);
    f2.sender->start(0);
    net.run_until(60.0);
    if (shards > 1) {
      EXPECT_GT(net.cross_shard_messages(), 0u);
    }
    Result r;
    r.delivered =
        f1.receiver->delivered_packets() + f2.receiver->delivered_packets();
    r.transmissions = net.total_transmissions();
    r.energy = net.per_node_energy();
    return r;
  };
  const auto ref = run(1);
  EXPECT_GT(ref.delivered, 0u);
  const auto got = run(2);
  EXPECT_EQ(got.delivered, ref.delivered);
  EXPECT_EQ(got.transmissions, ref.transmissions);
  ASSERT_EQ(got.energy.size(), ref.energy.size());
  for (std::size_t i = 0; i < ref.energy.size(); ++i)
    ASSERT_DOUBLE_EQ(got.energy[i], ref.energy[i]) << "node " << i;
}

TEST(HaloMigration, MigrationSurvivesCombinedCsmaMirrorAndRingPressure) {
  // The worst case at once: per-strip CSMA domains stream boundary
  // mirrors through the same rings the migration barriers must drain,
  // while fast mobility keeps the halo populated. Any quiescence bug
  // (migrating a node whose MAC still owns in-flight state, or whose
  // ring slot is still queued) shows up here as a counter diff.
  sim::Rng rng(11);
  const double side = exp::random_field_side_m(150);
  const auto topo = phy::Topology::random_connected(150, side, 40.0, rng);
  struct Result {
    std::uint64_t delivered = 0, transmissions = 0;
    double energy = 0.0;
  };
  const auto run = [&](std::size_t shards) {
    net::Network net(topo, churny_config(mac::Mac::kCsma, shards, side));
    auto f1 = net.add_flow(net::Proto::kJtp, 0, 149);
    auto f2 = net.add_flow(net::Proto::kJtp, 75, 5);
    f1.sender->start(0);
    f2.sender->start(0);
    net.run_until(25.0);
    Result r;
    r.delivered =
        f1.receiver->delivered_packets() + f2.receiver->delivered_packets();
    r.transmissions = net.total_transmissions();
    r.energy = net.total_energy();
    return r;
  };
  const auto ref = run(1);
  EXPECT_GT(ref.transmissions, 0u);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(k));
    const auto got = run(k);
    EXPECT_EQ(got.delivered, ref.delivered);
    EXPECT_EQ(got.transmissions, ref.transmissions);
    EXPECT_DOUBLE_EQ(got.energy, ref.energy);
  }
}

}  // namespace
}  // namespace jtp
