#include "phy/channel.h"

#include <gtest/gtest.h>

namespace jtp::phy {
namespace {

ChannelConfig cfg(double bad_frac = 0.10, double bad_dwell = 3.0) {
  ChannelConfig c;
  c.loss_good = 0.02;
  c.loss_bad = 0.45;
  c.bad_fraction = bad_frac;
  c.mean_bad_dwell_s = bad_dwell;
  return c;
}

TEST(Channel, GoodDwellMatchesBadFraction) {
  Channel ch(cfg(0.10, 3.0), sim::Rng(1));
  // bad 10% of time, mean bad dwell 3s => mean good dwell 27s.
  EXPECT_NEAR(ch.mean_good_dwell_s(), 27.0, 1e-9);
}

TEST(Channel, FadingDisabledAlwaysGood) {
  auto c = cfg();
  c.fading_enabled = false;
  Channel ch(c, sim::Rng(1));
  for (double t = 0; t < 1000; t += 10) {
    EXPECT_FALSE(ch.in_bad_state(0, 1, t));
    EXPECT_DOUBLE_EQ(ch.loss_probability(0, 1, t), 0.02);
  }
}

TEST(Channel, LongRunBadFractionApproximatelyHolds) {
  Channel ch(cfg(), sim::Rng(7));
  int bad = 0;
  const int samples = 40000;
  for (int i = 0; i < samples; ++i)
    if (ch.in_bad_state(0, 1, i * 0.5)) ++bad;
  EXPECT_NEAR(static_cast<double>(bad) / samples, 0.10, 0.03);
}

TEST(Channel, LossProbabilityMatchesState) {
  Channel ch(cfg(), sim::Rng(3));
  for (double t = 0; t < 500; t += 0.7) {
    const double p = ch.loss_probability(0, 1, t);
    if (ch.in_bad_state(0, 1, t))
      EXPECT_DOUBLE_EQ(p, 0.45);
    else
      EXPECT_DOUBLE_EQ(p, 0.02);
  }
}

TEST(Channel, LinksFadeIndependently) {
  Channel ch(cfg(0.4, 5.0), sim::Rng(11));
  int differ = 0;
  for (int i = 0; i < 1000; ++i)
    if (ch.in_bad_state(0, 1, i * 1.0) != ch.in_bad_state(2, 3, i * 1.0))
      ++differ;
  EXPECT_GT(differ, 50);
}

TEST(Channel, LinkIsUndirected) {
  Channel ch(cfg(0.5, 5.0), sim::Rng(13));
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(ch.in_bad_state(0, 1, i * 2.0), ch.in_bad_state(1, 0, i * 2.0));
}

TEST(Channel, TransmissionLossFrequencyInGoodState) {
  auto c = cfg();
  c.fading_enabled = false;
  c.loss_good = 0.1;
  Channel ch(c, sim::Rng(17));
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (ch.transmission_lost(0, 1, 0.0)) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.02);
}

TEST(Channel, TimeMovesForwardLazily) {
  Channel ch(cfg(), sim::Rng(19));
  ch.in_bad_state(0, 1, 1.0);
  // Querying far in the future advances through many flips safely.
  EXPECT_NO_THROW(ch.in_bad_state(0, 1, 100000.0));
}

TEST(Channel, RejectsBadConfig) {
  auto c = cfg();
  c.bad_fraction = 1.0;
  EXPECT_THROW(Channel(c, sim::Rng(1)), std::invalid_argument);
  c = cfg();
  c.mean_bad_dwell_s = 0.0;
  EXPECT_THROW(Channel(c, sim::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace jtp::phy
