#include "phy/channel.h"

#include <gtest/gtest.h>

namespace jtp::phy {
namespace {

ChannelConfig cfg(double bad_frac = 0.10, double bad_dwell = 3.0) {
  ChannelConfig c;
  c.loss_good = 0.02;
  c.loss_bad = 0.45;
  c.bad_fraction = bad_frac;
  c.mean_bad_dwell_s = bad_dwell;
  return c;
}

TEST(Channel, GoodDwellMatchesBadFraction) {
  Channel ch(cfg(0.10, 3.0), sim::Rng(1));
  // bad 10% of time, mean bad dwell 3s => mean good dwell 27s.
  EXPECT_NEAR(ch.mean_good_dwell_s(), 27.0, 1e-9);
}

TEST(Channel, FadingDisabledAlwaysGood) {
  auto c = cfg();
  c.fading_enabled = false;
  Channel ch(c, sim::Rng(1));
  for (double t = 0; t < 1000; t += 10) {
    EXPECT_FALSE(ch.in_bad_state(0, 1, t));
    EXPECT_DOUBLE_EQ(ch.loss_probability(0, 1, t), 0.02);
  }
}

TEST(Channel, LongRunBadFractionApproximatelyHolds) {
  Channel ch(cfg(), sim::Rng(7));
  int bad = 0;
  const int samples = 40000;
  for (int i = 0; i < samples; ++i)
    if (ch.in_bad_state(0, 1, i * 0.5)) ++bad;
  EXPECT_NEAR(static_cast<double>(bad) / samples, 0.10, 0.03);
}

TEST(Channel, LossProbabilityMatchesState) {
  Channel ch(cfg(), sim::Rng(3));
  for (double t = 0; t < 500; t += 0.7) {
    const double p = ch.loss_probability(0, 1, t);
    if (ch.in_bad_state(0, 1, t))
      EXPECT_DOUBLE_EQ(p, 0.45);
    else
      EXPECT_DOUBLE_EQ(p, 0.02);
  }
}

TEST(Channel, LinksFadeIndependently) {
  Channel ch(cfg(0.4, 5.0), sim::Rng(11));
  int differ = 0;
  for (int i = 0; i < 1000; ++i)
    if (ch.in_bad_state(0, 1, i * 1.0) != ch.in_bad_state(2, 3, i * 1.0))
      ++differ;
  EXPECT_GT(differ, 50);
}

TEST(Channel, LinkIsUndirected) {
  Channel ch(cfg(0.5, 5.0), sim::Rng(13));
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(ch.in_bad_state(0, 1, i * 2.0), ch.in_bad_state(1, 0, i * 2.0));
}

TEST(Channel, TransmissionLossFrequencyInGoodState) {
  auto c = cfg();
  c.fading_enabled = false;
  c.loss_good = 0.1;
  Channel ch(c, sim::Rng(17));
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (ch.transmission_lost(0, 1, 0.0)) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.02);
}

TEST(Channel, TimeMovesForwardLazily) {
  Channel ch(cfg(), sim::Rng(19));
  ch.in_bad_state(0, 1, 1.0);
  // Querying far in the future advances through many flips safely.
  EXPECT_NO_THROW(ch.in_bad_state(0, 1, 100000.0));
}

TEST(Channel, StatsCountLinksAndLookups) {
  auto c = cfg();
  c.expected_links = 256;
  Channel ch(c, sim::Rng(5));
  // 8 undirected links, both directions exercised.
  for (core::NodeId a = 0; a < 8; ++a) {
    (void)ch.transmission_lost(a, a + 1, 1.0);
    (void)ch.transmission_lost(a + 1, a, 1.0);
  }
  const ChannelStats st = ch.stats();
  EXPECT_EQ(st.dwell_links, 8u);    // (a,b) and (b,a) share dwell state
  EXPECT_EQ(st.loss_streams, 16u);  // but draw from directed streams
  EXPECT_EQ(st.dwell.inserts, 8u);
  EXPECT_EQ(st.loss.inserts, 16u);
  EXPECT_EQ(st.dwell.lookups, 16u);
  EXPECT_EQ(st.loss.lookups, 16u);
  // The reserve held: no rehash, short probe runs.
  EXPECT_EQ(st.dwell.rehashes, 0u);
  EXPECT_EQ(st.loss.rehashes, 0u);
  EXPECT_LT(st.dwell.probe_hw, 16u);
}

TEST(Channel, DeterministicUnderPermutedCreationOrder) {
  // Two replicas of the same channel touch the same links in opposite
  // orders. Every per-link stream is derived from the master rng by key,
  // so neither dwell timelines nor loss draws may depend on creation
  // order — the property the sharded runner's per-shard replicas and the
  // committed baselines rest on.
  Channel fwd(cfg(), sim::Rng(11));
  Channel rev(cfg(), sim::Rng(11));
  const int kLinks = 12;
  for (int i = 0; i < kLinks; ++i)
    (void)fwd.in_bad_state(i, i + 1, 0.0);
  for (int i = kLinks - 1; i >= 0; --i)
    (void)rev.in_bad_state(i, i + 1, 0.0);
  // Dwell timelines agree at arbitrary later times.
  for (int i = 0; i < kLinks; ++i)
    for (double t : {1.0, 17.0, 250.0, 4000.0})
      EXPECT_EQ(fwd.in_bad_state(i, i + 1, t), rev.in_bad_state(i, i + 1, t))
          << "link " << i << " at t=" << t;
  // Loss draws agree per directed stream when the interleaving differs:
  // fwd drains link 0 then link 5; rev alternates.
  Channel f2(cfg(), sim::Rng(13));
  Channel r2(cfg(), sim::Rng(13));
  std::vector<bool> f0, f5, r0, r5;
  for (int k = 0; k < 64; ++k) f0.push_back(f2.transmission_lost(0, 1, 5.0));
  for (int k = 0; k < 64; ++k) f5.push_back(f2.transmission_lost(5, 6, 5.0));
  for (int k = 0; k < 64; ++k) {
    r5.push_back(r2.transmission_lost(5, 6, 5.0));
    r0.push_back(r2.transmission_lost(0, 1, 5.0));
  }
  EXPECT_EQ(f0, r0);
  EXPECT_EQ(f5, r5);
}

TEST(Channel, RejectsBadConfig) {
  auto c = cfg();
  c.bad_fraction = 1.0;
  EXPECT_THROW(Channel(c, sim::Rng(1)), std::invalid_argument);
  c = cfg();
  c.mean_bad_dwell_s = 0.0;
  EXPECT_THROW(Channel(c, sim::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace jtp::phy
