// Tests for receiver sequence bookkeeping with loss-tolerance waiving.
#include "core/seq_tracker.h"

#include <gtest/gtest.h>

namespace jtp::core {
namespace {

TEST(SeqTracker, InOrderAdvancesBase) {
  SeqTracker t;
  for (SeqNo s = 0; s < 5; ++s) EXPECT_TRUE(t.receive(s));
  EXPECT_EQ(t.cumulative_ack(), 5u);
  EXPECT_EQ(t.received_count(), 5u);
  EXPECT_TRUE(t.missing().empty());
}

TEST(SeqTracker, GapHoldsBase) {
  SeqTracker t;
  t.receive(0);
  t.receive(2);
  EXPECT_EQ(t.cumulative_ack(), 1u);
  EXPECT_EQ(t.missing(), (std::vector<SeqNo>{1}));
  t.receive(1);
  EXPECT_EQ(t.cumulative_ack(), 3u);
}

TEST(SeqTracker, DuplicatesCounted) {
  SeqTracker t;
  t.receive(0);
  EXPECT_FALSE(t.receive(0));
  EXPECT_EQ(t.duplicate_count(), 1u);
  EXPECT_EQ(t.received_count(), 1u);
}

TEST(SeqTracker, RejectsBadTolerance) {
  EXPECT_THROW(SeqTracker(-0.1), std::invalid_argument);
  EXPECT_THROW(SeqTracker(1.1), std::invalid_argument);
}

TEST(SeqTracker, ZeroToleranceNeverWaives) {
  SeqTracker t(0.0);
  t.receive(0);
  t.receive(5);
  const auto missing = t.missing_after_waive(100);
  EXPECT_EQ(missing.size(), 4u);
  EXPECT_EQ(t.waived_count(), 0u);
}

TEST(SeqTracker, ToleranceWaivesWithinQuota) {
  SeqTracker t(0.10);
  // 18 received, 2 holes: waiving both keeps the waived share at 10%.
  for (SeqNo s = 0; s < 20; ++s)
    if (s != 4 && s != 13) t.receive(s);
  const auto missing = t.missing_after_waive(100);
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(t.waived_count(), 2u);
  EXPECT_EQ(t.cumulative_ack(), 20u);  // waived seqs advance the base
}

TEST(SeqTracker, QuotaExhaustedRequestsRest) {
  SeqTracker t(0.10);
  // 10 received, 5 holes: only ~1 can be waived at 10%.
  for (SeqNo s = 0; s < 15; ++s)
    if (s % 3 != 1) t.receive(s);
  const auto missing = t.missing_after_waive(100);
  EXPECT_GE(missing.size(), 4u);
  EXPECT_LE(t.waived_count(), 1u);
}

TEST(SeqTracker, WaivedFractionNeverExceedsTolerance) {
  for (double tol : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    SeqTracker t(tol);
    // Every 4th packet missing.
    for (SeqNo s = 0; s < 400; ++s)
      if (s % 4 != 0) t.receive(s);
    t.missing_after_waive(1000);
    const double total =
        static_cast<double>(t.received_count() + t.waived_count());
    if (total > 0) {
      EXPECT_LE(static_cast<double>(t.waived_count()) / total, tol + 1e-9)
          << "tol=" << tol;
    }
  }
}

TEST(SeqTracker, MaxCountCapsSnackList) {
  SeqTracker t;
  t.receive(100);  // 100 holes below
  const auto missing = t.missing_after_waive(16);
  EXPECT_EQ(missing.size(), 16u);
  EXPECT_EQ(missing.front(), 0u);
}

TEST(SeqTracker, WaivedSeqTreatedAsDuplicateOnLateArrival) {
  SeqTracker t(0.5);
  for (SeqNo s = 0; s < 10; ++s)
    if (s != 3) t.receive(s);
  t.missing_after_waive(100);  // waives 3
  EXPECT_EQ(t.waived_count(), 1u);
  EXPECT_EQ(t.cumulative_ack(), 10u);
  EXPECT_FALSE(t.receive(3));  // arrives late: duplicate, not fresh
}

TEST(SeqTracker, HorizonTracksMax) {
  SeqTracker t;
  t.receive(7);
  EXPECT_EQ(t.horizon(), 8u);
  t.receive(3);
  EXPECT_EQ(t.horizon(), 8u);
}

TEST(SeqTracker, MissingAfterWaiveIsIdempotentWhenNothingChanges) {
  SeqTracker t(0.0);
  t.receive(0);
  t.receive(3);
  const auto a = t.missing_after_waive(10);
  const auto b = t.missing_after_waive(10);
  EXPECT_EQ(a, b);
}

// --- reorder gating (in-flight packets must not be requested) ---

TEST(SeqTrackerReorder, FreshGapIsNotRequestableUnderThreshold) {
  SeqTracker t(0.0);
  t.receive(0);
  t.receive(2);  // gap at 1, noticed by this arrival
  // Only 0 later arrivals since the gap appeared: K=3 hides it.
  EXPECT_TRUE(t.missing_after_waive(10, 3).empty());
  // K=0 (quiet-flow bypass) exposes it.
  EXPECT_EQ(t.missing_after_waive(10, 0), (std::vector<SeqNo>{1}));
}

TEST(SeqTrackerReorder, GapBecomesRequestableAfterKArrivals) {
  SeqTracker t(0.0);
  t.receive(0);
  t.receive(2);  // gap at 1
  t.receive(3);
  EXPECT_TRUE(t.missing_after_waive(10, 3).empty());  // 1 later arrival
  t.receive(4);
  EXPECT_TRUE(t.missing_after_waive(10, 3).empty());  // 2 later arrivals
  t.receive(5);
  EXPECT_EQ(t.missing_after_waive(10, 3), (std::vector<SeqNo>{1}));
}

TEST(SeqTrackerReorder, LateArrivalClearsGapBeforeThreshold) {
  SeqTracker t(0.0);
  t.receive(0);
  t.receive(2);
  t.receive(1);  // in-flight packet shows up: no longer a gap
  t.receive(3);
  t.receive(4);
  t.receive(5);
  EXPECT_TRUE(t.missing_after_waive(10, 3).empty());
  EXPECT_EQ(t.cumulative_ack(), 6u);
}

TEST(SeqTrackerReorder, WaiveQuotaOnlyConsultedForMatureGaps) {
  SeqTracker t(1.0);  // tolerate everything
  t.receive(0);
  t.receive(2);  // fresh gap at 1
  // Under threshold the gap is neither requested NOR waived yet.
  EXPECT_TRUE(t.missing_after_waive(10, 3).empty());
  EXPECT_EQ(t.waived_count(), 0u);
  t.receive(3);
  t.receive(4);
  t.receive(5);
  EXPECT_TRUE(t.missing_after_waive(10, 3).empty());  // now waived
  EXPECT_EQ(t.waived_count(), 1u);
}

TEST(SeqTrackerReorder, MultiPacketJumpStampsAllGaps) {
  SeqTracker t(0.0);
  t.receive(5);  // gaps 0..4 all noticed at once
  t.receive(6);
  t.receive(7);
  t.receive(8);  // 3 arrivals after the jump
  const auto m = t.missing_after_waive(10, 3);
  EXPECT_EQ(m, (std::vector<SeqNo>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace jtp::core
