// Tests for the hot-path memory pools: PacketPool freelist/high-water
// accounting, SmallVec SBO-vs-spill behavior, pool reuse across
// Simulator::reset, and the steady-state zero-allocation contract of the
// whole delivery pipeline (pinned by pool high-water marks).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/packet.h"
#include "core/packet_pool.h"
#include "core/small_vec.h"
#include "exp/scenario.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace jtp {
namespace {

using core::PacketPool;
using core::PacketPtr;
using core::SeqNo;

// --------------------------- PacketPool ---------------------------

TEST(PacketPool, HandlesRecycleThroughTheFreelist) {
  PacketPool pool;
  {
    PacketPtr a = pool.make();
    a->seq = 7;
    EXPECT_EQ(pool.stats().in_use, 1u);
  }
  EXPECT_EQ(pool.stats().in_use, 0u);
  // The recycled slot comes back reset to defaults.
  PacketPtr b = pool.make();
  EXPECT_EQ(b->seq, 0u);
  EXPECT_FALSE(b->ack);
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);  // still the first chunk
}

TEST(PacketPool, HighWaterTracksPeakNotTotal) {
  PacketPool pool;
  for (int round = 0; round < 10; ++round) {
    std::vector<PacketPtr> batch;
    for (int i = 0; i < 5; ++i) batch.push_back(pool.make());
  }
  EXPECT_EQ(pool.stats().high_water, 5u);
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);  // 5 < one chunk: no growth
}

TEST(PacketPool, GrowsByChunkWhenExhausted) {
  PacketPool pool;
  std::vector<PacketPtr> held;
  const std::size_t first_cap = [&] {
    held.push_back(pool.make());
    return pool.stats().capacity;
  }();
  while (pool.stats().capacity == first_cap) held.push_back(pool.make());
  EXPECT_EQ(pool.stats().heap_allocs, 2u);
  EXPECT_EQ(pool.stats().high_water, first_cap + 1);
}

TEST(PacketPool, MoveIntoPoolPreservesContentAndAck) {
  PacketPool pool;
  core::Packet stack_pkt;
  stack_pkt.type = core::PacketType::kAck;
  stack_pkt.flow = 3;
  core::AckHeader h;
  h.cumulative_ack = 41;
  h.snack.missing = {1, 2, 3};
  stack_pkt.ack = std::move(h);
  PacketPtr p = pool.make(std::move(stack_pkt));
  ASSERT_TRUE(p->ack);
  EXPECT_EQ(p->ack->cumulative_ack, 41u);
  EXPECT_EQ(p->ack->snack.missing, (std::vector<SeqNo>{1, 2, 3}));
}

TEST(PacketPool, MakeFromHeaderDropsAnyAckState) {
  PacketPool pool;
  {
    PacketPtr a = pool.make();
    a->ack.emplace().cumulative_ack = 9;  // dirty the slot
  }
  core::PacketHeader hdr;
  hdr.seq = 5;
  PacketPtr b = pool.make(hdr);
  EXPECT_EQ(b->seq, 5u);
  EXPECT_FALSE(b->ack);
}

// --------------------------- SmallVec ---------------------------

TEST(SmallVec, StaysInlineUpToCapacity) {
  core::SmallVec<SeqNo, 4> v;
  const std::uint64_t spills_before = core::small_vec_spill_count();
  for (SeqNo s = 0; s < 4; ++s) v.push_back(s);
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(core::small_vec_spill_count(), spills_before);
  EXPECT_EQ(v, (std::vector<SeqNo>{0, 1, 2, 3}));
}

TEST(SmallVec, SpillsExactlyAtCapacityPlusOne) {
  core::SmallVec<SeqNo, 4> v;
  for (SeqNo s = 0; s < 4; ++s) v.push_back(s);
  const std::uint64_t spills_before = core::small_vec_spill_count();
  v.push_back(4);  // the boundary
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(core::small_vec_spill_count(), spills_before + 1);
  EXPECT_EQ(v, (std::vector<SeqNo>{0, 1, 2, 3, 4}));
}

TEST(SmallVec, MoveStealsSpilledBufferButCopiesInline) {
  core::SmallVec<SeqNo, 4> inline_v;
  inline_v.push_back(1);
  core::SmallVec<SeqNo, 4> a(std::move(inline_v));
  EXPECT_FALSE(a.spilled());
  EXPECT_EQ(a, (std::vector<SeqNo>{1}));
  EXPECT_TRUE(inline_v.empty());

  core::SmallVec<SeqNo, 4> spilled_v;
  for (SeqNo s = 0; s < 6; ++s) spilled_v.push_back(s);
  const SeqNo* buf = spilled_v.data();
  core::SmallVec<SeqNo, 4> b(std::move(spilled_v));
  EXPECT_TRUE(b.spilled());
  EXPECT_EQ(b.data(), buf);  // pointer steal, no copy
  EXPECT_TRUE(spilled_v.empty());
  EXPECT_FALSE(spilled_v.spilled());
}

TEST(SmallVec, SnackInlineCapacityCoversTheProtocolCaps) {
  // eJTP caps SNACKs at 32 entries and TCP-SACK at 16; the inline
  // capacity must cover both so in-tree ACK traffic never allocates.
  static_assert(core::kSnackInlineEntries >= 32, "snack cap must fit inline");
  core::Snack s;
  const std::uint64_t spills_before = core::small_vec_spill_count();
  for (SeqNo i = 0; i < 32; ++i) s.missing.push_back(i);
  for (SeqNo i = 0; i < 32; ++i) s.locally_recovered.push_back(i);
  EXPECT_EQ(core::small_vec_spill_count(), spills_before);
}

// --------------------------- Simulator reset ---------------------------

TEST(SimulatorReset, ReusesEventPoolCapacityAcrossRuns) {
  sim::Simulator sim;
  int fired = 0;
  for (int i = 0; i < 50; ++i) sim.schedule(i * 0.1, [&] { ++fired; });
  sim.run();
  const auto first = sim.event_pool_stats();
  EXPECT_EQ(first.capacity, 50u);

  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
  for (int i = 0; i < 50; ++i) sim.schedule(i * 0.1, [&] { ++fired; });
  sim.run();
  const auto second = sim.event_pool_stats();
  EXPECT_EQ(second.capacity, 50u);  // no new slots: same pool, reused
  EXPECT_GE(second.reuses, 50u);
  EXPECT_EQ(fired, 100);
}

TEST(SimulatorReset, DropsPendingEventsWithoutFiringThem) {
  sim::Simulator sim;
  bool fired = false;
  sim.schedule(1.0, [&] { fired = true; });
  sim.reset();
  EXPECT_FALSE(sim.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

// --------------------- steady-state zero allocation ---------------------

// The acceptance test for the pooling refactor: drive a real multi-hop
// JTP scenario to a warmed-up steady state, then keep running and assert
// that every pool has stopped growing — event slots, callback spill
// blocks, packet slots, and SNACK inline storage. Traffic continues
// (reuse counters keep climbing) while capacity and high-water marks
// stay frozen: the pipeline runs allocation-free.
TEST(SteadyState, DeliveryPipelinePerformsZeroPoolGrowth) {
  exp::ScenarioSpec spec;  // linear chain defaults
  spec.net_size = 5;
  spec.fading = true;  // losses exercise SNACKs and cache repair
  spec.seed = 3;
  net::Network net(exp::make_topology(spec), exp::make_network_config(spec));
  net::FlowOptions opt;
  opt.initial_rate_pps = 20.0;
  opt.loss_tolerance = 0.05;
  auto flow = net.add_flow(core::Proto::kJtp, 0, 4, opt);
  flow.receiver->start();
  flow.sender->start(0);  // long-lived

  net.run_until(150.0);  // warm-up: pools reach their working set
  const auto ev_warm = net.simulator().event_pool_stats();
  const auto sp_warm = net.simulator().callback_spill_stats();
  const auto pk_warm = net.packet_pool().stats();
  const std::uint64_t sv_warm = core::small_vec_spill_count();
  const std::uint64_t delivered_warm = flow.delivered_packets();

  net.run_until(400.0);  // steady state: 2.5x more traffic
  const auto ev = net.simulator().event_pool_stats();
  const auto sp = net.simulator().callback_spill_stats();
  const auto pk = net.packet_pool().stats();

  // Traffic really flowed in the measured window...
  EXPECT_GT(flow.delivered_packets(), delivered_warm + 100);
  EXPECT_GT(ev.reuses, ev_warm.reuses);
  EXPECT_GT(pk.reuses, pk_warm.reuses);
  // ...yet no pool grew and nothing escaped to the heap.
  EXPECT_EQ(ev.capacity, ev_warm.capacity);
  EXPECT_EQ(ev.high_water, ev_warm.high_water);
  EXPECT_EQ(ev.heap_allocs, ev_warm.heap_allocs);
  EXPECT_EQ(sp.capacity, sp_warm.capacity);
  EXPECT_EQ(sp.heap_allocs, sp_warm.heap_allocs);
  EXPECT_EQ(sp.oversize_allocs, 0u);
  // Stronger than "stopped growing": with Env::schedule forwarding
  // straight into SmallFn (no std::function detour), every timer closure
  // in the transport stack fits the 48-byte inline buffer — the spill
  // pool never allocates a single block over the whole run.
  EXPECT_EQ(sp.capacity, 0u);
  EXPECT_EQ(sp.high_water, 0u);
  EXPECT_EQ(sp.heap_allocs, 0u);
  EXPECT_EQ(pk.capacity, pk_warm.capacity);
  EXPECT_EQ(pk.high_water, pk_warm.high_water);
  EXPECT_EQ(pk.heap_allocs, pk_warm.heap_allocs);
  EXPECT_EQ(core::small_vec_spill_count(), sv_warm);

  flow.stop();
}

}  // namespace
}  // namespace jtp
