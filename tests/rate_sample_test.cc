// Tests for the delivery-rate estimation substrate (core/rate_sample.h):
// RateSampler against hand-computed send/deliver timelines, and the
// BandwidthEstimator / MinRttTracker windowed filters. Every expected
// value below is derived by hand from the tcp_rate.c sampling rules
// stated in the header: bw = delivered / max(send interval, ack
// interval), probe = most recently sent packet the ACK delivered.
#include <gtest/gtest.h>

#include "core/rate_sample.h"

namespace jtp::core {
namespace {

RateSample synthetic(double bw_pps, bool app_limited) {
  RateSample s;
  s.valid = true;
  s.bw_pps = bw_pps;
  s.app_limited = app_limited;
  return s;
}

// Four packets paced out at 1 packet/s, their ACKs arriving compressed
// into a burst. The ack interval alone would claim 2 pkt/s; the
// max(send, ack) rule clamps the sample to the 1 pkt/s send rate.
TEST(RateSampler, AckCompressionClampsToSendRate) {
  RateSampler rs;
  rs.on_sent(0, 0.0);
  rs.on_sent(1, 1.0);
  rs.on_sent(2, 2.0);

  // First ACK covers seq 0 only and seeds delivered_time = 2.5.
  rs.on_delivered(0, 2.5);
  auto first = rs.take_sample(2.5);
  ASSERT_TRUE(first.valid);
  EXPECT_DOUBLE_EQ(first.rtt_s, 2.5);

  rs.on_sent(3, 3.0);

  // Compressed burst: one ACK delivers seqs 1..3 at t=4. Probe = seq 3
  // (most recently sent). Send interval: 3.0 - 0.0 = 3 s for 3 packets;
  // ack interval: 4.0 - 2.5 = 1.5 s. The compressed ack interval would
  // fake 2 pkt/s — the sample must report the 1 pkt/s send rate.
  rs.on_delivered(1, 4.0);
  rs.on_delivered(2, 4.0);
  rs.on_delivered(3, 4.0);
  const auto s = rs.take_sample(4.0);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.delivered, 3u);
  EXPECT_DOUBLE_EQ(s.send_interval_s, 3.0);
  EXPECT_DOUBLE_EQ(s.ack_interval_s, 1.5);
  EXPECT_DOUBLE_EQ(s.interval_s, 3.0);
  EXPECT_DOUBLE_EQ(s.bw_pps, 1.0);
  EXPECT_DOUBLE_EQ(s.rtt_s, 1.0);  // seq 3: sent 3.0, delivered 4.0
}

// A SNACK closes a hole; a later cumulative advance sweeps the same seq.
// Crediting consumes the transmit record, so the second report is a
// no-op and delivered_count stays honest.
TEST(RateSampler, SnackPartialDeliveryCreditsEachSeqOnce) {
  RateSampler rs;
  rs.on_sent(0, 0.0);
  rs.on_sent(1, 0.5);
  rs.on_sent(2, 1.0);
  rs.on_sent(3, 1.5);

  // SNACK at t=2: seqs 0,1,3 delivered, seq 2 is the hole.
  rs.on_delivered(0, 2.0);
  rs.on_delivered(1, 2.0);
  rs.on_delivered(3, 2.0);
  const auto partial = rs.take_sample(2.0);
  ASSERT_TRUE(partial.valid);
  EXPECT_EQ(partial.delivered, 3u);
  // Probe = seq 3: send interval 1.5 - 0 = 1.5, ack interval 2.0 - 0 =
  // 2.0 (delivered_time still at the window start) => bw = 3 / 2.
  EXPECT_DOUBLE_EQ(partial.bw_pps, 1.5);
  EXPECT_EQ(rs.delivered_count(), 3u);
  EXPECT_EQ(rs.packets_in_flight(), 1u);  // only the hole remains

  // Retransmit the hole; the record is overwritten (Karn's rule), so
  // the eventual sample measures the second flight, not the lost one.
  rs.on_sent(2, 2.5);

  // Cumulative advance to 4 at t=3: the decoder reports every newly
  // covered seq, including the three already credited via the SNACK.
  rs.on_delivered(0, 3.0);  // no-op: record consumed at t=2
  rs.on_delivered(1, 3.0);  // no-op
  rs.on_delivered(2, 3.0);  // the hole, finally delivered
  rs.on_delivered(3, 3.0);  // no-op
  EXPECT_EQ(rs.delivered_count(), 4u);  // not 7: once per seq

  const auto s = rs.take_sample(3.0);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.delivered, 1u);
  // Probe = retransmitted seq 2: send interval 2.5 - 1.5 = 1.0, ack
  // interval 3.0 - 2.0 = 1.0, rtt measured on the retransmission.
  EXPECT_DOUBLE_EQ(s.interval_s, 1.0);
  EXPECT_DOUBLE_EQ(s.bw_pps, 1.0);
  EXPECT_DOUBLE_EQ(s.rtt_s, 0.5);
  EXPECT_EQ(rs.packets_in_flight(), 0u);
}

// After everything in flight drains, a long idle gap must not be billed
// to the path: the window restarts at the next transmit.
TEST(RateSampler, IdleGapResetsTheSamplingWindow) {
  RateSampler rs;
  rs.on_sent(0, 0.0);
  rs.on_delivered(0, 1.0);
  ASSERT_TRUE(rs.take_sample(1.0).valid);

  // 99 seconds of silence, then one more exchange.
  rs.on_sent(1, 100.0);
  rs.on_delivered(1, 101.0);
  const auto s = rs.take_sample(101.0);
  ASSERT_TRUE(s.valid);
  // Window restarted at t=100: interval is the 1-second ack interval,
  // not the 100-second span since the previous delivery.
  EXPECT_DOUBLE_EQ(s.ack_interval_s, 1.0);
  EXPECT_DOUBLE_EQ(s.interval_s, 1.0);
  EXPECT_DOUBLE_EQ(s.bw_pps, 1.0);
}

// The app-limited mark taints packets sent while it is up and clears
// once everything outstanding at the mark has been delivered.
TEST(RateSampler, AppLimitedMarkTaintsAndExpires) {
  RateSampler rs;
  rs.on_sent(0, 0.0);
  rs.mark_app_limited(1);  // seq 0 in flight, nothing delivered yet
  EXPECT_TRUE(rs.app_limited());

  rs.on_sent(1, 0.5);  // snapshotted under the mark

  rs.on_delivered(0, 1.0);
  auto s0 = rs.take_sample(1.0);
  ASSERT_TRUE(s0.valid);
  // Seq 0 was snapshotted *before* the mark: its window is clean.
  EXPECT_FALSE(s0.app_limited);
  EXPECT_TRUE(rs.app_limited());  // mark expires at delivered > 1

  rs.on_delivered(1, 1.5);
  auto s1 = rs.take_sample(1.5);
  ASSERT_TRUE(s1.valid);
  EXPECT_TRUE(s1.app_limited);   // sent under the mark
  EXPECT_FALSE(rs.app_limited());  // delivered = 2 > mark

  rs.on_sent(2, 2.0);  // post-expiry sends are clean again
  rs.on_delivered(2, 2.5);
  EXPECT_FALSE(rs.take_sample(2.5).app_limited);
}

TEST(RateSampler, NoNewDeliveryYieldsInvalidSample) {
  RateSampler rs;
  EXPECT_FALSE(rs.take_sample(1.0).valid);  // nothing ever delivered
  rs.on_sent(0, 0.0);
  rs.on_delivered(0, 1.0);
  EXPECT_TRUE(rs.take_sample(1.0).valid);
  // A duplicate ACK delivering nothing new: invalid, not a zero rate.
  EXPECT_FALSE(rs.take_sample(2.0).valid);
  EXPECT_EQ(rs.samples_taken(), 1u);
}

// ---------------------------------------------------------------------------

TEST(BandwidthEstimator, AppLimitedSamplesNeverRaiseTheEstimate) {
  BandwidthEstimator bw(10);
  EXPECT_FALSE(bw.has_estimate());

  // With no estimate yet, even an app-limited sample seeds the filter
  // (some signal beats none).
  bw.on_sample(synthetic(1.0, true), 0);
  EXPECT_DOUBLE_EQ(bw.bw_pps(), 1.0);

  // An app-limited sample above the estimate measures the application,
  // not the path: discarded.
  bw.on_sample(synthetic(5.0, true), 1);
  EXPECT_DOUBLE_EQ(bw.bw_pps(), 1.0);
  EXPECT_EQ(bw.app_limited_discards(), 1u);

  // The same rate from a non-limited window is believed.
  bw.on_sample(synthetic(5.0, false), 1);
  EXPECT_DOUBLE_EQ(bw.bw_pps(), 5.0);

  // App-limited below the estimate is admitted (it may only lower).
  bw.on_sample(synthetic(0.5, true), 2);
  EXPECT_DOUBLE_EQ(bw.bw_pps(), 5.0);  // max filter still holds 5
  EXPECT_EQ(bw.app_limited_discards(), 1u);

  // Invalid samples are ignored outright.
  bw.on_sample(RateSample{}, 3);
  EXPECT_DOUBLE_EQ(bw.bw_pps(), 5.0);
}

TEST(BandwidthEstimator, SpikeAgesOutAfterWindowRounds) {
  BandwidthEstimator bw(10);
  bw.on_sample(synthetic(5.0, false), 1);
  bw.on_sample(synthetic(2.0, false), 5);
  EXPECT_DOUBLE_EQ(bw.bw_pps(), 5.0);
  // Round 12: the round-1 spike is now > 10 rounds old and expires; the
  // round-5 runner-up and the fresh sample compete for the max.
  bw.on_sample(synthetic(1.0, false), 12);
  EXPECT_DOUBLE_EQ(bw.bw_pps(), 2.0);
}

TEST(MinRttTracker, WindowedMinimumExpiresOldFloors) {
  MinRttTracker rtt(10.0);
  EXPECT_FALSE(rtt.has_estimate());
  EXPECT_DOUBLE_EQ(rtt.min_rtt_s(), -1.0);

  rtt.update(0.5, 0.0);
  rtt.update(0.3, 1.0);
  rtt.update(0.4, 2.0);
  EXPECT_DOUBLE_EQ(rtt.min_rtt_s(), 0.3);

  rtt.update(0.0, 3.0);   // non-positive samples are ignored
  rtt.update(-1.0, 3.0);
  EXPECT_DOUBLE_EQ(rtt.min_rtt_s(), 0.3);

  // t=12: the t=1 floor is > 10 s old; the surviving minimum is the
  // t=2 sample.
  rtt.update(0.6, 12.0);
  EXPECT_DOUBLE_EQ(rtt.min_rtt_s(), 0.4);
}

}  // namespace
}  // namespace jtp::core
