#include "routing/link_state.h"

#include <gtest/gtest.h>

#include "phy/topology.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::routing {
namespace {

TEST(LinkStateRouting, LinearChainNextHops) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(5, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.next_hop(0, 4), 1u);
  EXPECT_EQ(r.next_hop(1, 4), 2u);
  EXPECT_EQ(r.next_hop(4, 0), 3u);
  EXPECT_EQ(r.hops(0, 4), 4);
  EXPECT_EQ(r.hops(2, 4), 2);
  EXPECT_EQ(r.hops(3, 3), 0);
}

TEST(LinkStateRouting, PathIsHopByHopConsistent) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(6, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  const auto p = r.path(0, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<core::NodeId>{0, 1, 2, 3, 4, 5}));
}

TEST(LinkStateRouting, SymmetricRoutesOnChain) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(7, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  auto fwd = r.path(0, 6);
  auto rev = r.path(6, 0);
  ASSERT_TRUE(fwd && rev);
  std::reverse(rev->begin(), rev->end());
  EXPECT_EQ(*fwd, *rev);
}

TEST(LinkStateRouting, UnreachableReturnsNullopt) {
  sim::Simulator sim;
  phy::Topology topo(3, 40.0);
  topo.set_position(0, {0, 0});
  topo.set_position(1, {30, 0});
  topo.set_position(2, {500, 0});  // isolated
  LinkStateRouting r(sim, topo);
  EXPECT_FALSE(r.next_hop(0, 2).has_value());
  EXPECT_FALSE(r.hops(0, 2).has_value());
  EXPECT_FALSE(r.path(0, 2).has_value());
}

TEST(LinkStateRouting, StaleViewUntilRefresh) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 10.0;
  LinkStateRouting r(sim, topo, cfg);
  r.start();
  EXPECT_EQ(r.hops(0, 2), 2);
  // Break the chain; the view must not notice until the next refresh.
  topo.set_position(1, {1000, 0});
  EXPECT_EQ(r.hops(0, 2), 2);  // stale
  sim.run_until(10.5);         // refresh fired
  EXPECT_FALSE(r.hops(0, 2).has_value());
}

TEST(LinkStateRouting, OracleModeSeesChangesImmediately) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.oracle = true;
  LinkStateRouting r(sim, topo, cfg);
  topo.set_position(1, {1000, 0});
  EXPECT_FALSE(r.hops(0, 2).has_value());
}

TEST(LinkStateRouting, PeriodicRefreshKeepsRunning) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 1.0;
  LinkStateRouting r(sim, topo, cfg);
  r.start();
  sim.run_until(10.5);
  EXPECT_GE(r.refreshes(), 10u);
}

TEST(LinkStateRouting, GridShortestPaths) {
  sim::Simulator sim;
  // 3x3 grid, spacing 30, range 40 (no diagonals: 42.4 > 40).
  phy::Topology topo(9, 40.0);
  for (core::NodeId i = 0; i < 9; ++i)
    topo.set_position(i, {30.0 * (i % 3), 30.0 * (i / 3)});
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.hops(0, 8), 4);  // manhattan distance in hops
  EXPECT_EQ(r.hops(0, 2), 2);
  const auto next = r.next_hop(0, 8);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(*next == 1 || *next == 3);
}

TEST(LinkStateRouting, NextHopToSelfIsNull) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_FALSE(r.next_hop(1, 1).has_value());
}

TEST(LinkStateRouting, RejectsBadRefresh) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 0.0;
  EXPECT_THROW(LinkStateRouting(sim, topo, cfg), std::invalid_argument);
}

// --- lazy/incremental equivalence ------------------------------------------

phy::Topology random_field(std::size_t n, double side, sim::Rng& rng) {
  phy::Topology t(n, 40.0);
  for (core::NodeId i = 0; i < n; ++i)
    t.set_position(i, {rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return t;
}

// The oracle: a freshly constructed router answers every query from an
// up-to-date view, with rows built in plain query order. The lazy router
// must agree on next_hop/hops/path for every pair, no matter which rows
// its past interleavings already materialized.
void expect_matches_fresh(const LinkStateRouting& r,
                          const phy::Topology& topo, const char* context) {
  sim::Simulator fresh_sim;
  LinkStateRouting fresh(fresh_sim, topo);
  const auto n = topo.size();
  for (core::NodeId s = 0; s < n; ++s) {
    for (core::NodeId d = 0; d < n; ++d) {
      EXPECT_EQ(r.next_hop(s, d), fresh.next_hop(s, d))
          << context << ": next_hop(" << s << "," << d << ")";
      EXPECT_EQ(r.hops(s, d), fresh.hops(s, d))
          << context << ": hops(" << s << "," << d << ")";
      EXPECT_EQ(r.path(s, d), fresh.path(s, d))
          << context << ": path(" << s << "," << d << ")";
    }
  }
}

TEST(LinkStateRouting, LazyRowsMatchFullRecomputeAcrossChurn) {
  sim::Rng rng(11);
  sim::Simulator sim;
  auto topo = random_field(30, 180.0, rng);
  LinkStateRouting r(sim, topo);
  expect_matches_fresh(r, topo, "initial");
  for (int round = 0; round < 20; ++round) {
    // Churn: move a few nodes, interleaved with queries that partially
    // materialize rows against the *stale* view (they must not leak into
    // the post-refresh answers).
    for (int m = 0; m < 3; ++m) {
      const auto id = static_cast<core::NodeId>(rng.integer(topo.size()));
      topo.set_position(id, {rng.uniform(0.0, 180.0),
                             rng.uniform(0.0, 180.0)});
      (void)r.next_hop(static_cast<core::NodeId>(rng.integer(topo.size())),
                       static_cast<core::NodeId>(rng.integer(topo.size())));
      (void)r.path(static_cast<core::NodeId>(rng.integer(topo.size())),
                   static_cast<core::NodeId>(rng.integer(topo.size())));
    }
    r.refresh();
    expect_matches_fresh(r, topo, "after refresh");
  }
}

TEST(LinkStateRouting, RowsBuildOnlyForQueriedSources) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(50, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.stats().rows_built, 0u);  // construction computes nothing
  (void)r.next_hop(0, 49);
  (void)r.hops(0, 49);
  EXPECT_EQ(r.stats().rows_built, 1u);
  EXPECT_EQ(r.stats().row_reuses, 1u);
  (void)r.next_hop(7, 3);
  EXPECT_EQ(r.stats().rows_built, 2u);
  // Refresh on an unchanged topology must keep every row.
  r.refresh();
  r.refresh();
  (void)r.next_hop(0, 49);
  (void)r.next_hop(7, 3);
  EXPECT_EQ(r.stats().rows_built, 2u);
  EXPECT_EQ(r.stats().snapshots, 1u);
  // A position write invalidates: the next refresh re-snapshots and the
  // next query rebuilds only its own row.
  topo.set_position(10, {10.0 * 30.0, 1.0});
  r.refresh();
  EXPECT_EQ(r.stats().snapshots, 2u);
  (void)r.next_hop(0, 49);
  EXPECT_EQ(r.stats().rows_built, 3u);
}

TEST(LinkStateRouting, OracleUnchangedTopologyNeverRecomputes) {
  // The standing perf bug this PR retires: oracle mode used to do a full
  // all-pairs recompute on *every* query. Now an unchanged topology is a
  // counter bump.
  sim::Simulator sim;
  auto topo = phy::Topology::linear(10, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.oracle = true;
  LinkStateRouting r(sim, topo, cfg);
  for (int i = 0; i < 100; ++i) (void)r.next_hop(0, 9);
  EXPECT_EQ(r.stats().snapshots, 1u);   // construction only
  EXPECT_EQ(r.stats().rows_built, 1u);  // one row, once
  EXPECT_EQ(r.stats().oracle_skips, 100u);
  // A real change still shows up immediately (oracle contract).
  topo.set_position(5, {1000.0, 0.0});
  EXPECT_FALSE(r.next_hop(0, 9).has_value());
  EXPECT_EQ(r.stats().snapshots, 2u);
}

}  // namespace
}  // namespace jtp::routing
