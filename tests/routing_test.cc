#include "routing/link_state.h"

#include <gtest/gtest.h>

#include "phy/topology.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::routing {
namespace {

TEST(LinkStateRouting, LinearChainNextHops) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(5, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.next_hop(0, 4), 1u);
  EXPECT_EQ(r.next_hop(1, 4), 2u);
  EXPECT_EQ(r.next_hop(4, 0), 3u);
  EXPECT_EQ(r.hops(0, 4), 4);
  EXPECT_EQ(r.hops(2, 4), 2);
  EXPECT_EQ(r.hops(3, 3), 0);
}

TEST(LinkStateRouting, PathIsHopByHopConsistent) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(6, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  const auto p = r.path(0, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<core::NodeId>{0, 1, 2, 3, 4, 5}));
}

TEST(LinkStateRouting, SymmetricRoutesOnChain) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(7, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  auto fwd = r.path(0, 6);
  auto rev = r.path(6, 0);
  ASSERT_TRUE(fwd && rev);
  std::reverse(rev->begin(), rev->end());
  EXPECT_EQ(*fwd, *rev);
}

TEST(LinkStateRouting, UnreachableReturnsNullopt) {
  sim::Simulator sim;
  phy::Topology topo(3, 40.0);
  topo.set_position(0, {0, 0});
  topo.set_position(1, {30, 0});
  topo.set_position(2, {500, 0});  // isolated
  LinkStateRouting r(sim, topo);
  EXPECT_FALSE(r.next_hop(0, 2).has_value());
  EXPECT_FALSE(r.hops(0, 2).has_value());
  EXPECT_FALSE(r.path(0, 2).has_value());
}

TEST(LinkStateRouting, StaleViewUntilRefresh) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 10.0;
  LinkStateRouting r(sim, topo, cfg);
  r.start();
  EXPECT_EQ(r.hops(0, 2), 2);
  // Break the chain; the view must not notice until the next refresh.
  topo.set_position(1, {1000, 0});
  EXPECT_EQ(r.hops(0, 2), 2);  // stale
  sim.run_until(10.5);         // refresh fired
  EXPECT_FALSE(r.hops(0, 2).has_value());
}

TEST(LinkStateRouting, OracleModeSeesChangesImmediately) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.oracle = true;
  LinkStateRouting r(sim, topo, cfg);
  topo.set_position(1, {1000, 0});
  EXPECT_FALSE(r.hops(0, 2).has_value());
}

TEST(LinkStateRouting, PeriodicRefreshKeepsRunning) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 1.0;
  LinkStateRouting r(sim, topo, cfg);
  r.start();
  sim.run_until(10.5);
  EXPECT_GE(r.refreshes(), 10u);
}

TEST(LinkStateRouting, GridShortestPaths) {
  sim::Simulator sim;
  // 3x3 grid, spacing 30, range 40 (no diagonals: 42.4 > 40).
  phy::Topology topo(9, 40.0);
  for (core::NodeId i = 0; i < 9; ++i)
    topo.set_position(i, {30.0 * (i % 3), 30.0 * (i / 3)});
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.hops(0, 8), 4);  // manhattan distance in hops
  EXPECT_EQ(r.hops(0, 2), 2);
  const auto next = r.next_hop(0, 8);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(*next == 1 || *next == 3);
}

TEST(LinkStateRouting, NextHopToSelfIsNull) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_FALSE(r.next_hop(1, 1).has_value());
}

TEST(LinkStateRouting, RejectsBadRefresh) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 0.0;
  EXPECT_THROW(LinkStateRouting(sim, topo, cfg), std::invalid_argument);
}

// --- lazy/incremental equivalence ------------------------------------------

phy::Topology random_field(std::size_t n, double side, sim::Rng& rng) {
  phy::Topology t(n, 40.0);
  for (core::NodeId i = 0; i < n; ++i)
    t.set_position(i, {rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return t;
}

// The oracle: a freshly constructed router answers every query from an
// up-to-date view, with rows built in plain query order. The lazy router
// must agree on next_hop/hops/path for every pair, no matter which rows
// its past interleavings already materialized.
void expect_matches_fresh(const LinkStateRouting& r,
                          const phy::Topology& topo, const char* context) {
  sim::Simulator fresh_sim;
  LinkStateRouting fresh(fresh_sim, topo);
  const auto n = topo.size();
  for (core::NodeId s = 0; s < n; ++s) {
    for (core::NodeId d = 0; d < n; ++d) {
      EXPECT_EQ(r.next_hop(s, d), fresh.next_hop(s, d))
          << context << ": next_hop(" << s << "," << d << ")";
      EXPECT_EQ(r.hops(s, d), fresh.hops(s, d))
          << context << ": hops(" << s << "," << d << ")";
      EXPECT_EQ(r.path(s, d), fresh.path(s, d))
          << context << ": path(" << s << "," << d << ")";
    }
  }
}

TEST(LinkStateRouting, LazyRowsMatchFullRecomputeAcrossChurn) {
  sim::Rng rng(11);
  sim::Simulator sim;
  auto topo = random_field(30, 180.0, rng);
  LinkStateRouting r(sim, topo);
  expect_matches_fresh(r, topo, "initial");
  for (int round = 0; round < 20; ++round) {
    // Churn: move a few nodes, interleaved with queries that partially
    // materialize rows against the *stale* view (they must not leak into
    // the post-refresh answers).
    for (int m = 0; m < 3; ++m) {
      const auto id = static_cast<core::NodeId>(rng.integer(topo.size()));
      topo.set_position(id, {rng.uniform(0.0, 180.0),
                             rng.uniform(0.0, 180.0)});
      (void)r.next_hop(static_cast<core::NodeId>(rng.integer(topo.size())),
                       static_cast<core::NodeId>(rng.integer(topo.size())));
      (void)r.path(static_cast<core::NodeId>(rng.integer(topo.size())),
                   static_cast<core::NodeId>(rng.integer(topo.size())));
    }
    r.refresh();
    expect_matches_fresh(r, topo, "after refresh");
  }
}

TEST(LinkStateRouting, RowsBuildOnlyForQueriedSources) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(50, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.stats().rows_built, 0u);  // construction computes nothing
  (void)r.next_hop(0, 49);
  (void)r.hops(0, 49);
  EXPECT_EQ(r.stats().rows_built, 1u);
  EXPECT_EQ(r.stats().row_reuses, 1u);
  (void)r.next_hop(7, 3);
  EXPECT_EQ(r.stats().rows_built, 2u);
  // Refresh on an unchanged topology must keep every row.
  r.refresh();
  r.refresh();
  (void)r.next_hop(0, 49);
  (void)r.next_hop(7, 3);
  EXPECT_EQ(r.stats().rows_built, 2u);
  EXPECT_EQ(r.stats().snapshots, 1u);
  // A small position write (no range boundary crossed, so no edge
  // changed) syncs the view but keeps every cached row verbatim.
  topo.set_position(10, {10.0 * 30.0, 1.0});
  r.refresh();
  EXPECT_EQ(r.stats().snapshots, 2u);
  EXPECT_EQ(r.stats().rows_kept, 2u);
  (void)r.next_hop(0, 49);
  (void)r.next_hop(7, 3);
  EXPECT_EQ(r.stats().rows_built, 2u);  // both rows survived the move
  // Breaking the chain near its end changes edges, but the reset region
  // (the few nodes past the break) is small: both rows are repaired in
  // place, and answers in the kept region are untouched.
  topo.set_position(45, {45.0 * 30.0, 500.0});
  r.refresh();
  EXPECT_EQ(r.stats().rows_repaired, 2u);
  EXPECT_FALSE(r.next_hop(0, 49).has_value());
  EXPECT_EQ(r.next_hop(7, 3), 6u);
  EXPECT_EQ(r.stats().rows_built, 2u);  // still no from-scratch build
  EXPECT_LE(r.stats().repair_visits, 2u * 8u);  // bounded by the subtrees
}

// --- incremental repair ----------------------------------------------------

// The central equivalence oracle for incremental repair: random
// interleavings of small moves (wiggles that rarely change adjacency),
// range-crossing moves, teleports, mass churn, queries against stale
// views, and refreshes — after every refresh the repaired/kept/rebuilt
// rows must agree with a freshly built router on every pair.
TEST(LinkStateRouting, IncrementalRepairMatchesFreshAcrossInterleavings) {
  sim::Rng rng(23);
  sim::Simulator sim;
  const double side = 200.0;
  auto topo = random_field(40, side, rng);
  LinkStateRouting r(sim, topo);
  auto pick = [&] { return static_cast<core::NodeId>(rng.integer(40)); };
  for (int round = 0; round < 60; ++round) {
    const int kind = static_cast<int>(rng.integer(4));
    const int moves = kind == 3 ? 25 : 3;  // kind 3 = mass churn round
    for (int m = 0; m < moves; ++m) {
      const auto id = pick();
      const auto p = topo.position(id);
      switch (kind) {
        case 0:  // wiggle: usually no adjacency change
          topo.set_position(id, {p.x + rng.uniform(-2.0, 2.0),
                                 p.y + rng.uniform(-2.0, 2.0)});
          break;
        case 1:  // one-cell hop: adjacency changes at the boundary
          topo.set_position(
              id, {p.x + (rng.bernoulli(0.5) ? 40.0 : -40.0), p.y});
          break;
        default:  // teleport
          topo.set_position(
              id, {rng.uniform(0.0, side), rng.uniform(0.0, side)});
          break;
      }
      // Queries against the stale view partially materialize rows that
      // the next sync must then keep, repair, or drop correctly.
      (void)r.next_hop(pick(), pick());
      (void)r.hops(pick(), pick());
    }
    r.refresh();
    expect_matches_fresh(r, topo, "after incremental refresh");
  }
  // The sweep must actually have exercised the repair machinery.
  EXPECT_GT(r.stats().rows_kept + r.stats().rows_repaired, 0u);
  EXPECT_GT(r.stats().rows_repaired, 0u);
}

// Same interleavings with repair disabled: the PR 5 full-invalidation
// path must still be selectable and correct (it is also the fallback).
TEST(LinkStateRouting, FullRebuildModeStaysCorrect) {
  sim::Rng rng(29);
  sim::Simulator sim;
  auto topo = random_field(25, 160.0, rng);
  RoutingConfig cfg;
  cfg.incremental = false;
  LinkStateRouting r(sim, topo, cfg);
  for (int round = 0; round < 10; ++round) {
    for (int m = 0; m < 3; ++m) {
      const auto id = static_cast<core::NodeId>(rng.integer(25));
      const auto p = topo.position(id);
      topo.set_position(id, {p.x + rng.uniform(-5.0, 5.0),
                             p.y + rng.uniform(-5.0, 5.0)});
      (void)r.next_hop(static_cast<core::NodeId>(rng.integer(25)),
                       static_cast<core::NodeId>(rng.integer(25)));
    }
    r.refresh();
    expect_matches_fresh(r, topo, "full-rebuild mode");
  }
  EXPECT_EQ(r.stats().rows_kept, 0u);
  EXPECT_EQ(r.stats().rows_repaired, 0u);
}

// repair_fraction = 0 forces the drop/full-invalidate fallback on every
// change; correctness must not depend on repair ever running.
TEST(LinkStateRouting, ZeroRepairFractionAlwaysFallsBack) {
  sim::Rng rng(31);
  sim::Simulator sim;
  auto topo = random_field(25, 160.0, rng);
  RoutingConfig cfg;
  cfg.repair_fraction = 0.0;
  LinkStateRouting r(sim, topo, cfg);
  for (int round = 0; round < 10; ++round) {
    const auto id = static_cast<core::NodeId>(rng.integer(25));
    topo.set_position(id, {rng.uniform(0.0, 160.0), rng.uniform(0.0, 160.0)});
    (void)r.next_hop(static_cast<core::NodeId>(rng.integer(25)),
                     static_cast<core::NodeId>(rng.integer(25)));
    r.refresh();
    expect_matches_fresh(r, topo, "zero repair fraction");
  }
  EXPECT_EQ(r.stats().rows_repaired, 0u);
}

// Overflowing the topology's bounded move ring between refreshes must
// not force a full re-snapshot: the mover list is only a locator hint,
// so the router widens it to every node and lets the changed-edge diff
// price the actual rewiring. Small wiggles that overflow the log by
// sheer count still keep or repair the cached rows — and still match a
// fresh router exactly.
TEST(LinkStateRouting, MoveRingOverflowStillRepairsIncrementally) {
  sim::Rng rng(37);
  sim::Simulator sim;
  auto topo = random_field(20, 140.0, rng);
  LinkStateRouting r(sim, topo);
  (void)r.next_hop(0, 19);
  const auto cap = topo.move_history_capacity();
  for (std::size_t i = 0; i < cap + 5; ++i) {
    const auto id = static_cast<core::NodeId>(rng.integer(20));
    const auto p = topo.position(id);
    topo.set_position(id, {p.x + rng.uniform(-1.0, 1.0), p.y});
  }
  r.refresh();
  expect_matches_fresh(r, topo, "after ring overflow");
  EXPECT_GT(r.stats().rows_kept + r.stats().rows_repaired, 0u);
}

// The acceptance gate at production scale: 8 active sources on a 400-node
// field, one node takes one small waypoint step — the cached rows must
// survive (kept or repaired), never be rebuilt from scratch.
TEST(LinkStateRouting, SingleNodeMovesAt400KeepOrRepairRows) {
  sim::Rng rng(41);
  sim::Simulator sim;
  auto topo = random_field(400, 600.0, rng);
  LinkStateRouting r(sim, topo);
  for (core::NodeId s = 1; s <= 8; ++s) (void)r.next_hop(s, 0);
  const auto built = r.stats().rows_built;
  EXPECT_EQ(built, 8u);
  for (int i = 0; i < 20; ++i) {
    const auto id = static_cast<core::NodeId>(rng.integer(400));
    const auto p = topo.position(id);
    topo.set_position(id, {p.x + rng.uniform(-1.0, 1.0),
                           p.y + rng.uniform(-1.0, 1.0)});
    r.refresh();
    for (core::NodeId s = 1; s <= 8; ++s) (void)r.next_hop(s, 0);
  }
  EXPECT_GT(r.stats().rows_kept + r.stats().rows_repaired, 0u);
  // No move may force a from-scratch rebuild of a surviving row; at most
  // the rare dropped row (oversized reset region) rebuilds on query.
  EXPECT_LE(r.stats().rows_built, built + 2);
  // Repairs stay bounded: on average under half a full row's n visits
  // (the no-op edge filter keeps the cheap cases out of the mean, so the
  // repairs that remain are the genuinely affected subtrees).
  if (r.stats().rows_repaired > 0) {
    EXPECT_LT(r.stats().repair_visits / r.stats().rows_repaired, 400u / 2);
  }
}

// Batched scattered churn: one refresh sees most of the field marked as
// moved (a 5 s refresh over a 1 m/s waypoint field batches five update
// ticks of nearly every node) while almost no adjacency changes. The
// fallback gate must read the edge diff, not the mover count — tripping
// on movers would forfeit the cache on exactly the syncs repair exists
// for.
TEST(LinkStateRouting, BatchedScatteredChurnKeepsRows) {
  sim::Rng rng(43);
  sim::Simulator sim;
  auto topo = random_field(400, 600.0, rng);
  LinkStateRouting r(sim, topo);
  for (core::NodeId s = 1; s <= 8; ++s) (void)r.next_hop(s, 0);
  const auto built = r.stats().rows_built;
  for (int round = 0; round < 5; ++round) {
    // 350 movers per sync: far past any mover-count gate at 0.75 * n.
    // Small steps keep the *edge* diff scattered and sparse — the
    // realistic shape of a batched waypoint tick, and the shape the
    // edge-count gate must wave through.
    for (int i = 0; i < 350; ++i) {
      const auto id = static_cast<core::NodeId>(rng.integer(400));
      const auto p = topo.position(id);
      topo.set_position(id, {p.x + rng.uniform(-0.02, 0.02),
                             p.y + rng.uniform(-0.02, 0.02)});
    }
    r.refresh();
    for (core::NodeId s = 1; s <= 8; ++s) (void)r.next_hop(s, 0);
  }
  // Every sync kept or repaired the live rows instead of invalidating:
  // 8 rows x 5 syncs, allowing the rare dropped row to rebuild on query.
  // (Stats snapshot taken before the oracle sweep below, which builds
  // every remaining row.)
  const auto st = r.stats();
  EXPECT_GE(st.rows_kept + st.rows_repaired, 8u * 5u - 5u);
  EXPECT_LE(st.rows_built, built + 5);
  expect_matches_fresh(r, topo, "after batched churn");
}

TEST(LinkStateRouting, RejectsBadRepairFraction) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.repair_fraction = 1.5;
  EXPECT_THROW(LinkStateRouting(sim, topo, cfg), std::invalid_argument);
}

TEST(LinkStateRouting, OracleUnchangedTopologyNeverRecomputes) {
  // The standing perf bug this PR retires: oracle mode used to do a full
  // all-pairs recompute on *every* query. Now an unchanged topology is a
  // counter bump.
  sim::Simulator sim;
  auto topo = phy::Topology::linear(10, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.oracle = true;
  LinkStateRouting r(sim, topo, cfg);
  for (int i = 0; i < 100; ++i) (void)r.next_hop(0, 9);
  EXPECT_EQ(r.stats().snapshots, 1u);   // construction only
  EXPECT_EQ(r.stats().rows_built, 1u);  // one row, once
  EXPECT_EQ(r.stats().oracle_skips, 100u);
  // A real change still shows up immediately (oracle contract).
  topo.set_position(5, {1000.0, 0.0});
  EXPECT_FALSE(r.next_hop(0, 9).has_value());
  EXPECT_EQ(r.stats().snapshots, 2u);
}

}  // namespace
}  // namespace jtp::routing
