#include "routing/link_state.h"

#include <gtest/gtest.h>

#include "phy/topology.h"
#include "sim/simulator.h"

namespace jtp::routing {
namespace {

TEST(LinkStateRouting, LinearChainNextHops) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(5, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.next_hop(0, 4), 1u);
  EXPECT_EQ(r.next_hop(1, 4), 2u);
  EXPECT_EQ(r.next_hop(4, 0), 3u);
  EXPECT_EQ(r.hops(0, 4), 4);
  EXPECT_EQ(r.hops(2, 4), 2);
  EXPECT_EQ(r.hops(3, 3), 0);
}

TEST(LinkStateRouting, PathIsHopByHopConsistent) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(6, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  const auto p = r.path(0, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<core::NodeId>{0, 1, 2, 3, 4, 5}));
}

TEST(LinkStateRouting, SymmetricRoutesOnChain) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(7, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  auto fwd = r.path(0, 6);
  auto rev = r.path(6, 0);
  ASSERT_TRUE(fwd && rev);
  std::reverse(rev->begin(), rev->end());
  EXPECT_EQ(*fwd, *rev);
}

TEST(LinkStateRouting, UnreachableReturnsNullopt) {
  sim::Simulator sim;
  phy::Topology topo(3, 40.0);
  topo.set_position(0, {0, 0});
  topo.set_position(1, {30, 0});
  topo.set_position(2, {500, 0});  // isolated
  LinkStateRouting r(sim, topo);
  EXPECT_FALSE(r.next_hop(0, 2).has_value());
  EXPECT_FALSE(r.hops(0, 2).has_value());
  EXPECT_FALSE(r.path(0, 2).has_value());
}

TEST(LinkStateRouting, StaleViewUntilRefresh) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 10.0;
  LinkStateRouting r(sim, topo, cfg);
  r.start();
  EXPECT_EQ(r.hops(0, 2), 2);
  // Break the chain; the view must not notice until the next refresh.
  topo.set_position(1, {1000, 0});
  EXPECT_EQ(r.hops(0, 2), 2);  // stale
  sim.run_until(10.5);         // refresh fired
  EXPECT_FALSE(r.hops(0, 2).has_value());
}

TEST(LinkStateRouting, OracleModeSeesChangesImmediately) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.oracle = true;
  LinkStateRouting r(sim, topo, cfg);
  topo.set_position(1, {1000, 0});
  EXPECT_FALSE(r.hops(0, 2).has_value());
}

TEST(LinkStateRouting, PeriodicRefreshKeepsRunning) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 1.0;
  LinkStateRouting r(sim, topo, cfg);
  r.start();
  sim.run_until(10.5);
  EXPECT_GE(r.refreshes(), 10u);
}

TEST(LinkStateRouting, GridShortestPaths) {
  sim::Simulator sim;
  // 3x3 grid, spacing 30, range 40 (no diagonals: 42.4 > 40).
  phy::Topology topo(9, 40.0);
  for (core::NodeId i = 0; i < 9; ++i)
    topo.set_position(i, {30.0 * (i % 3), 30.0 * (i / 3)});
  LinkStateRouting r(sim, topo);
  EXPECT_EQ(r.hops(0, 8), 4);  // manhattan distance in hops
  EXPECT_EQ(r.hops(0, 2), 2);
  const auto next = r.next_hop(0, 8);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(*next == 1 || *next == 3);
}

TEST(LinkStateRouting, NextHopToSelfIsNull) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  LinkStateRouting r(sim, topo);
  EXPECT_FALSE(r.next_hop(1, 1).has_value());
}

TEST(LinkStateRouting, RejectsBadRefresh) {
  sim::Simulator sim;
  auto topo = phy::Topology::linear(3, 30.0, 40.0);
  RoutingConfig cfg;
  cfg.refresh_interval_s = 0.0;
  EXPECT_THROW(LinkStateRouting(sim, topo, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace jtp::routing
