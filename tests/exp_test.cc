// Tests for the experiment harness: scenarios, workloads, runner, metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

namespace jtp::exp {
namespace {

ScenarioConfig quiet() {
  ScenarioConfig sc;
  sc.fading = false;
  sc.loss_good = 0.0;
  return sc;
}

TEST(Scenario, LinearBuildsChain) {
  auto net = make_linear(6, quiet());
  EXPECT_EQ(net->size(), 6u);
  EXPECT_TRUE(net->topology().connected());
  EXPECT_EQ(net->routing().hops(0, 5), 5);
}

TEST(Scenario, RandomIsConnectedAndSeedStable) {
  auto sc = quiet();
  sc.seed = 77;
  auto a = make_random(12, sc);
  auto b = make_random(12, sc);
  EXPECT_TRUE(a->topology().connected());
  for (core::NodeId i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(a->topology().position(i).x,
                     b->topology().position(i).x);
    EXPECT_DOUBLE_EQ(a->topology().position(i).y,
                     b->topology().position(i).y);
  }
}

TEST(Scenario, FieldSideGrowsWithNodes) {
  EXPECT_GT(random_field_side_m(25), random_field_side_m(10));
}

TEST(Scenario, TestbedIs14NodesStableLinks) {
  auto net = make_testbed(quiet());
  EXPECT_EQ(net->size(), 14u);
  EXPECT_FALSE(net->channel().config().fading_enabled);
}

TEST(Scenario, JncDisablesCaching) {
  auto sc = quiet();
  sc.proto = Proto::kJnc;
  const auto cfg = make_network_config(sc);
  EXPECT_FALSE(cfg.node.ijtp.caching_enabled);
  sc.proto = Proto::kJtp;
  EXPECT_TRUE(make_network_config(sc).node.ijtp.caching_enabled);
}

TEST(FlowManager, RejectsJncOnCachingNetwork) {
  auto net = make_linear(3, quiet());  // caching enabled
  EXPECT_THROW(FlowManager(*net, Proto::kJnc), std::invalid_argument);
}

TEST(FlowManager, ProtoNames) {
  EXPECT_EQ(proto_name(Proto::kJtp), "jtp");
  EXPECT_EQ(proto_name(Proto::kJnc), "jnc");
  EXPECT_EQ(proto_name(Proto::kTcp), "tcp");
  EXPECT_EQ(proto_name(Proto::kAtp), "atp");
}

TEST(FlowManager, CompletionTimeRecorded) {
  auto net = make_linear(3, quiet());
  FlowManager fm(*net, Proto::kJtp);
  auto& flow = fm.create(0, 2, 20);
  net->run_until(500.0);
  ASSERT_TRUE(flow.finished());
  EXPECT_GT(flow.completed_at, 0.0);
  EXPECT_LT(flow.completed_at, 500.0);
}

TEST(FlowManager, GoodputUsesCompletionTime) {
  auto net = make_linear(3, quiet());
  FlowManager fm(*net, Proto::kJtp);
  auto& flow = fm.create(0, 2, 20);
  net->run_until(10000.0);  // long horizon must not dilute goodput
  ASSERT_TRUE(flow.finished());
  const auto m = fm.collect(10000.0);
  const double expect_kbps =
      flow.delivered_bits() / flow.completed_at / 1e3;
  EXPECT_NEAR(m.per_flow_goodput_kbps_mean, expect_kbps, 1e-9);
}

TEST(FlowManager, DelayedStartHonored) {
  auto net = make_linear(3, quiet());
  FlowManager fm(*net, Proto::kJtp);
  auto& flow = fm.create(0, 2, 0, /*start_delay_s=*/100.0);
  net->run_until(50.0);
  EXPECT_EQ(flow.data_sent(), 0u);
  net->run_until(200.0);
  EXPECT_GT(flow.data_sent(), 0u);
}

TEST(Runner, RunSeedsUsesDistinctSeeds) {
  std::vector<std::uint64_t> seen;
  run_seeds(4, 10, [&](std::uint64_t s) {
    seen.push_back(s);
    return RunMetrics{};
  });
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t i = 1; i < seen.size(); ++i)
    EXPECT_NE(seen[i], seen[i - 1]);
}

TEST(Runner, AggregateMeanAndCi) {
  std::vector<RunMetrics> runs(4);
  for (std::size_t i = 0; i < 4; ++i) runs[i].total_energy_j = 1.0 + i;
  const auto a = aggregate(
      runs, [](const RunMetrics& m) { return m.total_energy_j; });
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_GT(a.ci95, 0.0);
  EXPECT_EQ(a.runs, 4u);
}

TEST(Metrics, EnergyPerBitGuardsZeroDelivery) {
  RunMetrics m;
  m.total_energy_j = 5.0;
  EXPECT_DOUBLE_EQ(m.energy_per_bit_uj(), 0.0);
  m.delivered_payload_bits = 1e6;
  EXPECT_DOUBLE_EQ(m.energy_per_bit_uj(), 5.0);
  EXPECT_DOUBLE_EQ(m.energy_per_bit_mj(), 5e-3);
  EXPECT_DOUBLE_EQ(m.delivered_kbit(), 1e3);
}

TEST(Runner, FormatHelpers) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  Aggregate a{2.5, 0.5, 3};
  const auto s = with_ci(a, 1);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(Runner, SeedForRunIsOrderIndependent) {
  EXPECT_EQ(seed_for_run(1, 0), 1001u);
  EXPECT_EQ(seed_for_run(1, 3), 4001u);
  // The same derivation the serial runner has always used.
  std::vector<std::uint64_t> seen;
  run_seeds(3, 7, [&](std::uint64_t s) {
    seen.push_back(s);
    return RunMetrics{};
  });
  ASSERT_EQ(seen.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(seen[i], seed_for_run(7, i));
}

TEST(Runner, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(3), 3u);
  EXPECT_GE(resolve_jobs(0), 1u);  // auto: at least one job
}

// The headline property of the parallel runner: any job count produces the
// exact RunMetrics vector of a serial run, element by element, on a real
// lossy scenario.
TEST(Runner, ParallelMatchesSerialOnRealScenario) {
  auto body = [](std::uint64_t s) {
    ScenarioConfig sc;
    sc.seed = s;
    sc.proto = Proto::kJtp;
    sc.loss_good = 0.05;
    auto net = make_linear(4, sc);
    FlowManager fm(*net, Proto::kJtp);
    fm.create(0, 3, 0);
    net->run_until(300.0);
    return fm.collect(300.0);
  };
  const auto serial = run_seeds(6, 9, body, /*jobs=*/1);
  const auto parallel = run_seeds(6, 9, body, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].total_energy_j, parallel[i].total_energy_j);
    EXPECT_DOUBLE_EQ(serial[i].delivered_payload_bits,
                     parallel[i].delivered_payload_bits);
    EXPECT_EQ(serial[i].delivered_packets, parallel[i].delivered_packets);
    EXPECT_EQ(serial[i].data_packets_sent, parallel[i].data_packets_sent);
    EXPECT_EQ(serial[i].source_retransmissions,
              parallel[i].source_retransmissions);
    EXPECT_EQ(serial[i].cache_retransmissions,
              parallel[i].cache_retransmissions);
    EXPECT_EQ(serial[i].acks_sent, parallel[i].acks_sent);
    EXPECT_EQ(serial[i].transmissions, parallel[i].transmissions);
    EXPECT_EQ(serial[i].per_node_energy_j, parallel[i].per_node_energy_j);
  }
}

TEST(Runner, RunSeedsAsCustomTypeKeepsSeedOrder) {
  auto out = run_seeds_as(
      8, 100, [](std::uint64_t s) { return s * 2; }, /*jobs=*/4);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(out[i], seed_for_run(100, i) * 2);
}

TEST(Runner, ParallelRunsAllIndices) {
  std::atomic<int> calls{0};
  run_seeds_as(
      16, 1,
      [&](std::uint64_t) {
        calls.fetch_add(1);
        return 0;
      },
      /*jobs=*/4);
  EXPECT_EQ(calls.load(), 16);
}

TEST(Runner, ParallelPropagatesExceptions) {
  auto boom = [](std::uint64_t s) -> RunMetrics {
    if (s == seed_for_run(1, 2)) throw std::runtime_error("boom");
    return RunMetrics{};
  };
  EXPECT_THROW(run_seeds(8, 1, boom, /*jobs=*/4), std::runtime_error);
  EXPECT_THROW(run_seeds(8, 1, boom, /*jobs=*/1), std::runtime_error);
}

TEST(Report, PrintsTableAndMirrorsCsv) {
  const std::string path = ::testing::TempDir() + "exp_test_report.csv";
  std::ostringstream os;
  {
    Report rep(os, "demo", {{"n", 0}, {"e", 2, /*with_ci=*/true}}, 10);
    ASSERT_TRUE(rep.to_csv(path));
    rep.begin();
    rep.row({3, Aggregate{1.5, 0.25, 4}});
    rep.row({4, 2.0}, /*echo=*/false);  // CSV-only row
    EXPECT_TRUE(rep.finish());
    EXPECT_EQ(rep.series().rows().size(), 2u);
  }
  const std::string table = os.str();
  EXPECT_NE(table.find("--- demo ---"), std::string::npos);
  EXPECT_NE(table.find("1.50 ±0.25"), std::string::npos);
  EXPECT_EQ(table.find("2.00"), std::string::npos);  // echo=false not printed
  EXPECT_NE(table.find(path), std::string::npos);    // "written to" note

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(),
            "n,e,e_ci95\n"
            "3,1.50,0.25\n"
            "4,2.00,0.00\n");
  std::remove(path.c_str());
}

TEST(Report, ToCsvFailsFastOnBadPath) {
  std::ostringstream os;
  Report rep(os, "", {{"a", 1}}, 10);
  EXPECT_FALSE(rep.to_csv("/nonexistent-dir/x/y.csv"));
}

TEST(Report, WorksWithoutCsv) {
  std::ostringstream os;
  Report rep(os, "", {{"a", 1}}, 10);
  rep.begin();
  rep.row({1.0});
  EXPECT_TRUE(rep.finish());
  EXPECT_EQ(os.str().find("written to"), std::string::npos);
}

// Property: the same seed gives bit-identical metrics for every protocol
// (the paper's "same conditions in the same run" requirement).
class DeterminismTest : public ::testing::TestWithParam<Proto> {};

TEST_P(DeterminismTest, SameSeedSameMetrics) {
  const Proto proto = GetParam();
  auto run = [&] {
    auto sc = quiet();
    sc.seed = 123;
    sc.proto = proto;
    sc.fading = true;
    sc.loss_good = 0.05;
    auto net = make_linear(4, sc);
    FlowManager fm(*net, proto);
    fm.create(0, 3, 0);
    net->run_until(400.0);
    return fm.collect(400.0);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

INSTANTIATE_TEST_SUITE_P(AllProtos, DeterminismTest,
                         ::testing::Values(Proto::kJtp, Proto::kTcp,
                                           Proto::kAtp));

}  // namespace
}  // namespace jtp::exp
