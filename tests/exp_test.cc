// Tests for the experiment harness: scenarios, workloads, runner, metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

namespace jtp::exp {
namespace {

ScenarioSpec quiet(std::size_t net_size = 3) {
  ScenarioSpec sc;
  sc.net_size = net_size;
  sc.fading = false;
  sc.loss_good = 0.0;
  return sc;
}

TEST(Scenario, LinearBuildsChain) {
  auto s = build(quiet(6));
  EXPECT_EQ(s.network->size(), 6u);
  EXPECT_TRUE(s.network->topology().connected());
  EXPECT_EQ(s.network->routing().hops(0, 5), 5);
  EXPECT_TRUE(s.flows->flows().empty());  // manual workload: none yet
}

TEST(Scenario, RandomIsConnectedAndSeedStable) {
  auto sc = quiet(12);
  sc.topology = TopologyKind::kRandom;
  sc.seed = 77;
  auto a = build(sc);
  auto b = build(sc);
  EXPECT_TRUE(a.network->topology().connected());
  for (core::NodeId i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(a.network->topology().position(i).x,
                     b.network->topology().position(i).x);
    EXPECT_DOUBLE_EQ(a.network->topology().position(i).y,
                     b.network->topology().position(i).y);
  }
}

TEST(Scenario, FieldSideGrowsWithNodes) {
  EXPECT_GT(random_field_side_m(25), random_field_side_m(10));
}

TEST(Scenario, TestbedPresetIs14NodesStableLinksPoisson) {
  auto sc = preset("testbed");
  auto s = build(sc);
  EXPECT_EQ(s.network->size(), 14u);
  EXPECT_TRUE(s.network->topology().connected());
  EXPECT_FALSE(s.network->channel().config().fading_enabled);
  EXPECT_FALSE(s.flows->flows().empty());  // Poisson arrivals attached
  for (const auto& f : s.flows->flows())
    EXPECT_EQ(f->total_packets, 125u);
}

TEST(Scenario, LinearPresetAttachesTwoOpposingFlows) {
  auto s = build(preset("linear"));
  ASSERT_EQ(s.flows->flows().size(), 2u);
  const auto& f1 = *s.flows->flows()[0];
  const auto& f2 = *s.flows->flows()[1];
  EXPECT_EQ(f1.src, 0u);
  EXPECT_EQ(f1.dst, 4u);
  EXPECT_EQ(f2.src, 4u);
  EXPECT_EQ(f2.dst, 0u);
  EXPECT_DOUBLE_EQ(f1.start_time, 10.0);
  EXPECT_DOUBLE_EQ(f2.start_time, 20.0);
}

TEST(Scenario, RandomPairsWorkloadDrawsDistinctEndpoints) {
  auto sc = preset("random");
  sc.fading = false;
  sc.loss_good = 0.0;
  auto s = build(sc);
  ASSERT_EQ(s.flows->flows().size(), 5u);
  for (const auto& f : s.flows->flows()) EXPECT_NE(f->src, f->dst);
}

TEST(Scenario, GridTopologyIsConnected) {
  auto sc = quiet(12);
  sc.topology = TopologyKind::kGrid;
  sc.grid_cols = 4;
  auto s = build(sc);
  EXPECT_EQ(s.network->size(), 12u);
  EXPECT_TRUE(s.network->topology().connected());
}

TEST(Scenario, MobileChainGetsMobility) {
  // A combination the old four builders could not express.
  auto sc = quiet(5);
  sc.speed_mps = 2.0;
  const auto cfg = make_network_config(sc);
  EXPECT_FALSE(cfg.mobility.has_value());  // mobility is added by build()
  auto s = build(sc);
  s.network->run_until(50.0);  // moves nodes; just has to run
  EXPECT_EQ(s.network->size(), 5u);
}

TEST(Scenario, JncDisablesCaching) {
  auto sc = quiet();
  sc.proto = Proto::kJnc;
  const auto cfg = make_network_config(sc);
  EXPECT_FALSE(cfg.node.ijtp.caching_enabled);
  sc.proto = Proto::kJtp;
  EXPECT_TRUE(make_network_config(sc).node.ijtp.caching_enabled);
}

TEST(Scenario, FanInWorkloadConvergesOnSink) {
  auto sc = quiet(8);
  sc.workload.kind = WorkloadKind::kFanIn;
  sc.workload.fan_in = 3;
  sc.workload.start_delay_s = 5.0;
  sc.workload.stagger_s = 2.0;
  auto s = build(sc);
  ASSERT_EQ(s.flows->flows().size(), 3u);
  std::vector<bool> seen(8, false);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& f = *s.flows->flows()[i];
    EXPECT_EQ(f.dst, 0u);
    EXPECT_NE(f.src, 0u);
    EXPECT_FALSE(seen[f.src]) << "duplicate sender " << f.src;
    seen[f.src] = true;
    EXPECT_DOUBLE_EQ(f.start_time, 5.0 + 2.0 * static_cast<double>(i));
  }
}

TEST(Scenario, FanInRejectsMoreSendersThanNodes) {
  auto sc = quiet(4);
  sc.workload.kind = WorkloadKind::kFanIn;
  sc.workload.fan_in = 4;  // only 3 non-sink nodes exist
  EXPECT_THROW(build(sc), std::invalid_argument);
}

TEST(Scenario, OnOffWorkloadFiresBoundedBursts) {
  auto sc = quiet(5);
  sc.workload.kind = WorkloadKind::kOnOff;
  sc.workload.n_flows = 2;
  sc.workload.transfer_packets = 10;
  sc.workload.mean_burst_gap_s = 20.0;
  sc.workload.arrival_window_s = 200.0;
  sc.workload.start_delay_s = 1.0;
  auto s = build(sc);
  ASSERT_FALSE(s.flows->flows().empty());
  // Every burst is a bounded transfer on one of the two source pairs,
  // starting inside the window.
  std::set<std::pair<core::NodeId, core::NodeId>> pairs;
  for (const auto& f : s.flows->flows()) {
    EXPECT_EQ(f->total_packets, 10u);
    EXPECT_NE(f->src, f->dst);
    EXPECT_GE(f->start_time, 1.0);
    EXPECT_LT(f->start_time, 201.0);
    pairs.insert({f->src, f->dst});
  }
  EXPECT_LE(pairs.size(), 2u);
}

TEST(Scenario, OnOffRequiresBurstSize) {
  auto sc = quiet(5);
  sc.workload.kind = WorkloadKind::kOnOff;
  sc.workload.transfer_packets = 0;
  EXPECT_THROW(build(sc), std::invalid_argument);
}

TEST(Scenario, ScalePresetFansIntoNodeZero) {
  auto sc = preset("scale");
  sc.net_size = 30;  // keep the test light; the preset defaults to 100
  sc.fading = false;
  sc.loss_good = 0.0;
  auto s = build(sc);
  EXPECT_TRUE(s.network->topology().connected());
  ASSERT_EQ(s.flows->flows().size(), 8u);
  for (const auto& f : s.flows->flows()) EXPECT_EQ(f->dst, 0u);
}

TEST(Scenario, BuildRejectsTinyNetwork) {
  auto sc = quiet();
  sc.net_size = 1;
  EXPECT_THROW(build(sc), std::invalid_argument);
}

TEST(Scenario, UnknownPresetThrows) {
  EXPECT_THROW(preset("starlink"), std::invalid_argument);
}

TEST(ScenarioSpecParse, PresetThenOverrides) {
  const auto r = parse_scenario("mobile,net_size=25,speed=5,proto=tcp");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec.topology, TopologyKind::kRandom);
  EXPECT_EQ(r.spec.net_size, 25u);
  EXPECT_DOUBLE_EQ(r.spec.speed_mps, 5.0);
  EXPECT_EQ(r.spec.proto, Proto::kTcp);
  EXPECT_EQ(r.spec.workload.kind, WorkloadKind::kRandomPairs);
}

TEST(ScenarioSpecParse, EmptyStringIsDefaults) {
  const auto r = parse_scenario("");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec, ScenarioSpec{});
}

TEST(ScenarioSpecParse, EveryKeyRoundTrips) {
  ScenarioSpec s;
  s.topology = TopologyKind::kGrid;
  s.net_size = 21;
  s.grid_cols = 3;
  s.speed_mps = 2.5;
  s.fading = false;
  s.loss_good = 0.11;
  s.loss_bad = 0.77;
  s.bad_fraction = 0.31;
  s.proto = Proto::kAtp;
  s.cache_size_packets = 17;
  s.queue_capacity_packets = 9;
  s.slot_duration_s = 0.05;
  s.routing_refresh_s = 2.5;
  s.seed = 1234;
  s.mac = mac::Mac::kCsma;
  s.csma_min_be = 2;
  s.csma_max_be = 6;
  s.csma_max_backoffs = 5;
  s.workload.kind = WorkloadKind::kPoisson;
  s.workload.n_flows = 7;
  s.workload.transfer_packets = 33;
  s.workload.start_delay_s = 1.25;
  s.workload.stagger_s = 0.5;
  s.workload.mean_interarrival_s = 123.5;
  s.workload.arrival_window_s = 456.25;
  s.workload.mean_burst_gap_s = 30.5;
  s.workload.fan_in = 6;
  s.workload.loss_tolerance = 0.125;
  const auto r = parse_scenario(to_string(s));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec, s);
}

TEST(ScenarioSpecParse, MacKeysRoundTrip) {
  ScenarioSpec s;
  s.mac = mac::Mac::kTdmaReuse;
  s.reuse_margin = 1.5;
  const auto r = parse_scenario(to_string(s));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec, s);
  EXPECT_EQ(r.spec.mac, mac::Mac::kTdmaReuse);
  EXPECT_DOUBLE_EQ(r.spec.reuse_margin, 1.5);
}

TEST(ScenarioSpecParse, RejectsMacFamilyMismatches) {
  // Unknown (or non-CLI) MAC names.
  EXPECT_FALSE(parse_scenario("mac=aloha").ok());
  EXPECT_FALSE(parse_scenario("mac=ext").ok());  // extension slot: API-only
  // Family cross-talk: tuning a discipline the spec does not select.
  EXPECT_FALSE(parse_scenario("reuse_margin=1.5").ok());
  EXPECT_FALSE(parse_scenario("mac=csma,reuse_margin=1.5").ok());
  EXPECT_FALSE(parse_scenario("mac=tdma,min_be=2").ok());
  EXPECT_FALSE(parse_scenario("mac=tdma_reuse,max_backoffs=2").ok());
  // Internally inconsistent CSMA windows and out-of-range values.
  EXPECT_FALSE(parse_scenario("mac=csma,min_be=6,max_be=4").ok());
  EXPECT_FALSE(parse_scenario("mac=csma,min_be=11").ok());
  EXPECT_FALSE(parse_scenario("reuse_margin=0.5").ok());  // below 1
  // The valid forms of the same keys.
  EXPECT_TRUE(parse_scenario("mac=tdma_reuse,reuse_margin=1.5").ok());
  EXPECT_TRUE(parse_scenario("mac=csma,min_be=2,max_be=6").ok());
  EXPECT_TRUE(parse_scenario("mac=tdma").ok());
}

TEST(ScenarioBuild, RejectsCrossFamilyKnobsFromCode) {
  // build() re-validates: programmatic specs cannot smuggle a tuned knob
  // past the parser.
  auto sc = quiet();
  sc.reuse_margin = 2.0;  // but mac stays kTdma
  EXPECT_THROW(build(sc), std::invalid_argument);
}

TEST(ScenarioSpecParse, PresetsRoundTrip) {
  for (const auto& name : preset_names()) {
    const auto r = parse_scenario(to_string(preset(name)));
    ASSERT_TRUE(r.ok()) << name << ": " << r.error;
    EXPECT_EQ(r.spec, preset(name)) << name;
  }
}

TEST(ScenarioSpecParse, RejectsMalformedInput) {
  EXPECT_FALSE(parse_scenario("definitely_not_a_key=3").ok());
  EXPECT_FALSE(parse_scenario("net_size=abc").ok());
  EXPECT_FALSE(parse_scenario("net_size=-4").ok());
  EXPECT_FALSE(parse_scenario("net_size=1").ok());       // below minimum
  EXPECT_FALSE(parse_scenario("loss_good=1.5").ok());    // out of [0,1]
  EXPECT_FALSE(parse_scenario("proto=quic").ok());
  EXPECT_FALSE(parse_scenario("topology=torus").ok());
  EXPECT_FALSE(parse_scenario("workload=ddos").ok());
  EXPECT_FALSE(parse_scenario("burst_gap=0").ok());    // must be positive
  EXPECT_FALSE(parse_scenario("fan_in=0").ok());
  EXPECT_FALSE(parse_scenario("fading=maybe").ok());
  EXPECT_FALSE(parse_scenario("speed=").ok());           // empty value
  EXPECT_FALSE(parse_scenario("=3").ok());               // empty key
  EXPECT_FALSE(parse_scenario("net_size=4,,seed=1").ok());  // empty token
  EXPECT_FALSE(parse_scenario("no_such_preset").ok());
  EXPECT_FALSE(parse_scenario("net_size=4,linear").ok());  // preset not 1st
  EXPECT_FALSE(parse_scenario("seed=1e4").ok());         // ints are digits
  // strtoull saturation must not slip through as ULLONG_MAX.
  EXPECT_FALSE(parse_scenario("net_size=99999999999999999999999").ok());
  EXPECT_FALSE(parse_scenario("seed=18446744073709551616").ok());  // 2^64
}

TEST(ScenarioSpecParse, ApplyTokensOverlaysOntoBase) {
  auto spec = preset("testbed");
  const auto err = apply_scenario_tokens(spec, "net_size=10,interarrival=50");
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(spec.net_size, 10u);
  EXPECT_DOUBLE_EQ(spec.workload.mean_interarrival_s, 50.0);
  EXPECT_EQ(spec.topology, TopologyKind::kGrid);  // base preserved
}

TEST(FlowManager, RejectsJncOnCachingNetwork) {
  auto sc = quiet();  // caching enabled (proto default kJtp)
  auto s = build(sc);
  EXPECT_THROW(FlowManager(*s.network, Proto::kJnc), std::invalid_argument);
}

TEST(FlowManager, ProtoNames) {
  EXPECT_EQ(proto_name(Proto::kJtp), "jtp");
  EXPECT_EQ(proto_name(Proto::kJnc), "jnc");
  EXPECT_EQ(proto_name(Proto::kTcp), "tcp");
  EXPECT_EQ(proto_name(Proto::kAtp), "atp");
  EXPECT_EQ(proto_name(Proto::kJtpDr), "jtp_dr");
  EXPECT_EQ(proto_name(Proto::kBbr), "bbr");
  EXPECT_EQ(parse_proto("jtp"), Proto::kJtp);
  EXPECT_EQ(parse_proto("atp"), Proto::kAtp);
  EXPECT_EQ(parse_proto("jtp_dr"), Proto::kJtpDr);
  EXPECT_EQ(parse_proto("bbr"), Proto::kBbr);
  EXPECT_FALSE(parse_proto("sctp").has_value());
}

TEST(FlowManager, CompletionTimeRecorded) {
  auto s = build(quiet());
  auto& flow = s.flows->create(0, 2, 20);
  s.network->run_until(500.0);
  ASSERT_TRUE(flow.finished());
  EXPECT_GT(flow.completed_at, 0.0);
  EXPECT_LT(flow.completed_at, 500.0);
}

TEST(FlowManager, GoodputUsesCompletionTime) {
  auto s = build(quiet());
  auto& flow = s.flows->create(0, 2, 20);
  s.network->run_until(10000.0);  // long horizon must not dilute goodput
  ASSERT_TRUE(flow.finished());
  const auto m = s.flows->collect(10000.0);
  const double expect_kbps =
      flow.delivered_bits() / flow.completed_at / 1e3;
  EXPECT_NEAR(m.per_flow_goodput_kbps_mean, expect_kbps, 1e-9);
}

TEST(FlowManager, DelayedStartHonored) {
  auto s = build(quiet());
  auto& flow = s.flows->create(0, 2, 0, /*start_delay_s=*/100.0);
  s.network->run_until(50.0);
  EXPECT_EQ(flow.data_sent(), 0u);
  s.network->run_until(200.0);
  EXPECT_GT(flow.data_sent(), 0u);
}

TEST(Runner, RunSeedsUsesDistinctSeeds) {
  std::vector<std::uint64_t> seen;
  run_seeds(4, 10, [&](std::uint64_t s) {
    seen.push_back(s);
    return RunMetrics{};
  });
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t i = 1; i < seen.size(); ++i)
    EXPECT_NE(seen[i], seen[i - 1]);
}

TEST(Runner, AggregateMeanAndCi) {
  std::vector<RunMetrics> runs(4);
  for (std::size_t i = 0; i < 4; ++i) runs[i].total_energy_j = 1.0 + i;
  const auto a = aggregate(
      runs, [](const RunMetrics& m) { return m.total_energy_j; });
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_GT(a.ci95, 0.0);
  EXPECT_EQ(a.runs, 4u);
}

TEST(Metrics, EnergyPerBitGuardsZeroDelivery) {
  RunMetrics m;
  m.total_energy_j = 5.0;
  EXPECT_DOUBLE_EQ(m.energy_per_bit_uj(), 0.0);
  m.delivered_payload_bits = 1e6;
  EXPECT_DOUBLE_EQ(m.energy_per_bit_uj(), 5.0);
  EXPECT_DOUBLE_EQ(m.energy_per_bit_mj(), 5e-3);
  EXPECT_DOUBLE_EQ(m.delivered_kbit(), 1e3);
}

TEST(Runner, FormatHelpers) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  Aggregate a{2.5, 0.5, 3};
  const auto s = with_ci(a, 1);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(Runner, SeedForRunIsOrderIndependent) {
  EXPECT_EQ(seed_for_run(1, 0), 1001u);
  EXPECT_EQ(seed_for_run(1, 3), 4001u);
  // The same derivation the serial runner has always used.
  std::vector<std::uint64_t> seen;
  run_seeds(3, 7, [&](std::uint64_t s) {
    seen.push_back(s);
    return RunMetrics{};
  });
  ASSERT_EQ(seen.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(seen[i], seed_for_run(7, i));
}

TEST(Runner, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(3), 3u);
  EXPECT_GE(resolve_jobs(0), 1u);  // auto: at least one job
}

// The headline property of the parallel runner: any job count produces the
// exact RunMetrics vector of a serial run, element by element, on a real
// lossy scenario.
TEST(Runner, ParallelMatchesSerialOnRealScenario) {
  auto body = [](std::uint64_t s) {
    ScenarioSpec sc;
    sc.seed = s;
    sc.net_size = 4;
    sc.loss_good = 0.05;
    auto scenario = build(sc);
    scenario.flows->create(0, 3, 0);
    scenario.network->run_until(300.0);
    return scenario.flows->collect(300.0);
  };
  const auto serial = run_seeds(6, 9, body, /*jobs=*/1);
  const auto parallel = run_seeds(6, 9, body, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].total_energy_j, parallel[i].total_energy_j);
    EXPECT_DOUBLE_EQ(serial[i].delivered_payload_bits,
                     parallel[i].delivered_payload_bits);
    EXPECT_EQ(serial[i].delivered_packets, parallel[i].delivered_packets);
    EXPECT_EQ(serial[i].data_packets_sent, parallel[i].data_packets_sent);
    EXPECT_EQ(serial[i].source_retransmissions,
              parallel[i].source_retransmissions);
    EXPECT_EQ(serial[i].cache_retransmissions,
              parallel[i].cache_retransmissions);
    EXPECT_EQ(serial[i].acks_sent, parallel[i].acks_sent);
    EXPECT_EQ(serial[i].transmissions, parallel[i].transmissions);
    EXPECT_EQ(serial[i].per_node_energy_j, parallel[i].per_node_energy_j);
  }
}

TEST(Runner, RunSeedsAsCustomTypeKeepsSeedOrder) {
  auto out = run_seeds_as(
      8, 100, [](std::uint64_t s) { return s * 2; }, /*jobs=*/4);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(out[i], seed_for_run(100, i) * 2);
}

TEST(Runner, ParallelRunsAllIndices) {
  std::atomic<int> calls{0};
  run_seeds_as(
      16, 1,
      [&](std::uint64_t) {
        calls.fetch_add(1);
        return 0;
      },
      /*jobs=*/4);
  EXPECT_EQ(calls.load(), 16);
}

TEST(Runner, ParallelPropagatesExceptions) {
  auto boom = [](std::uint64_t s) -> RunMetrics {
    if (s == seed_for_run(1, 2)) throw std::runtime_error("boom");
    return RunMetrics{};
  };
  EXPECT_THROW(run_seeds(8, 1, boom, /*jobs=*/4), std::runtime_error);
  EXPECT_THROW(run_seeds(8, 1, boom, /*jobs=*/1), std::runtime_error);
}

TEST(Report, PrintsTableAndMirrorsCsv) {
  const std::string path = ::testing::TempDir() + "exp_test_report.csv";
  std::ostringstream os;
  {
    Report rep(os, "demo", {{"n", 0}, {"e", 2, /*with_ci=*/true}}, 10);
    ASSERT_TRUE(rep.to_csv(path));
    rep.begin();
    rep.row({3, Aggregate{1.5, 0.25, 4}});
    rep.row({4, 2.0}, /*echo=*/false);  // CSV-only row
    EXPECT_TRUE(rep.finish());
    EXPECT_EQ(rep.series().rows().size(), 2u);
  }
  const std::string table = os.str();
  EXPECT_NE(table.find("--- demo ---"), std::string::npos);
  EXPECT_NE(table.find("1.50 ±0.25"), std::string::npos);
  EXPECT_EQ(table.find("2.00"), std::string::npos);  // echo=false not printed
  EXPECT_NE(table.find(path), std::string::npos);    // "written to" note

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(),
            "n,e,e_ci95\n"
            "3,1.50,0.25\n"
            "4,2.00,0.00\n");
  std::remove(path.c_str());
}

TEST(Report, ToCsvFailsFastOnBadPath) {
  std::ostringstream os;
  Report rep(os, "", {{"a", 1}}, 10);
  EXPECT_FALSE(rep.to_csv("/nonexistent-dir/x/y.csv"));
}

TEST(Report, WorksWithoutCsv) {
  std::ostringstream os;
  Report rep(os, "", {{"a", 1}}, 10);
  rep.begin();
  rep.row({1.0});
  EXPECT_TRUE(rep.finish());
  EXPECT_EQ(os.str().find("written to"), std::string::npos);
}

// Property: the same seed gives bit-identical metrics for every protocol
// (the paper's "same conditions in the same run" requirement).
class DeterminismTest : public ::testing::TestWithParam<Proto> {};

TEST_P(DeterminismTest, SameSeedSameMetrics) {
  const Proto proto = GetParam();
  auto run = [&] {
    auto sc = quiet(4);
    sc.seed = 123;
    sc.proto = proto;
    sc.fading = true;
    sc.loss_good = 0.05;
    auto s = build(sc);
    s.flows->create(0, 3, 0);
    s.network->run_until(400.0);
    return s.flows->collect(400.0);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

INSTANTIATE_TEST_SUITE_P(AllProtos, DeterminismTest,
                         ::testing::Values(Proto::kJtp, Proto::kTcp,
                                           Proto::kAtp));

// The sharded event loop's headline contract: splitting one run across K
// worker threads must not change a single result bit. A 400-node scale
// field partitions into real shards with busy boundaries (the fan-in
// workload converges on node 0, so traffic crosses every cut), and every
// metric — counts, FP energy sums, per-node energy vectors — must come
// out identical to the single-threaded run.
TEST(ShardDeterminism, ScaleScenarioIsBitIdenticalAcrossShardCounts) {
  auto run = [](std::size_t shards) {
    auto sc = preset("scale");
    sc.net_size = 400;
    sc.seed = 5;
    sc.mac = mac::Mac::kTdmaReuse;  // real throughput => busy boundaries
    sc.shards = shards;
    auto s = build(sc);
    s.network->run_until(40.0);
    auto m = s.flows->collect(40.0);
    return m;
  };
  const auto ref = run(1);
  EXPECT_GT(ref.delivered_packets, 0u);  // the comparison is not vacuous
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(k));
    const auto got = run(k);
    EXPECT_EQ(got.delivered_packets, ref.delivered_packets);
    EXPECT_EQ(got.delivered_payload_bits, ref.delivered_payload_bits);
    EXPECT_EQ(got.data_packets_sent, ref.data_packets_sent);
    EXPECT_EQ(got.source_retransmissions, ref.source_retransmissions);
    EXPECT_EQ(got.acks_sent, ref.acks_sent);
    EXPECT_EQ(got.transmissions, ref.transmissions);
    EXPECT_EQ(got.queue_drops, ref.queue_drops);
    EXPECT_EQ(got.attempt_drops, ref.attempt_drops);
    EXPECT_EQ(got.cache_retransmissions, ref.cache_retransmissions);
    EXPECT_EQ(got.route_drops, ref.route_drops);
    EXPECT_DOUBLE_EQ(got.per_flow_goodput_kbps_mean,
                     ref.per_flow_goodput_kbps_mean);
    EXPECT_DOUBLE_EQ(got.total_energy_j, ref.total_energy_j);
    ASSERT_EQ(got.per_node_energy_j.size(), ref.per_node_energy_j.size());
    for (std::size_t i = 0; i < ref.per_node_energy_j.size(); ++i)
      ASSERT_DOUBLE_EQ(got.per_node_energy_j[i], ref.per_node_energy_j[i])
          << "node " << i;
  }
}

// The delivery-rate transports keep the same contract: their sampler /
// model state lives entirely on the flow endpoints, so sharding the
// event loop under them must not perturb a single sample. A smaller
// field than the kJtp test keeps the added runtime modest while still
// partitioning into real shards at K=4.
TEST(ShardDeterminism, DeliveryRateProtosAreBitIdenticalAcrossShardCounts) {
  for (const auto proto : {Proto::kJtpDr, Proto::kBbr}) {
    SCOPED_TRACE(proto_name(proto));
    auto run = [&](std::size_t shards) {
      auto sc = preset("scale");
      sc.net_size = 100;
      sc.seed = 5;
      sc.proto = proto;
      sc.mac = mac::Mac::kTdmaReuse;
      sc.shards = shards;
      auto s = build(sc);
      s.network->run_until(40.0);
      return s.flows->collect(40.0);
    };
    const auto ref = run(1);
    EXPECT_GT(ref.delivered_packets, 0u);
    for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(k));
      const auto got = run(k);
      EXPECT_EQ(got.delivered_packets, ref.delivered_packets);
      EXPECT_EQ(got.delivered_payload_bits, ref.delivered_payload_bits);
      EXPECT_EQ(got.data_packets_sent, ref.data_packets_sent);
      EXPECT_EQ(got.acks_sent, ref.acks_sent);
      EXPECT_EQ(got.transmissions, ref.transmissions);
      EXPECT_DOUBLE_EQ(got.per_flow_goodput_kbps_mean,
                       ref.per_flow_goodput_kbps_mean);
      EXPECT_DOUBLE_EQ(got.jain_fairness, ref.jain_fairness);
      EXPECT_DOUBLE_EQ(got.p99_completion_s, ref.p99_completion_s);
      EXPECT_DOUBLE_EQ(got.total_energy_j, ref.total_energy_j);
    }
  }
}

// The mobile tier under the same contract: per-shard trajectory
// replicas replay identical motion, and epoch-barrier migration re-homes
// drifted nodes without touching a draw stream — so the full metric
// vector, per-node energy included, is bit-equal for every K. 40
// simulated seconds of 1 m/s waypoint churn over a 400-node field
// crosses routing refreshes, halo growth and (at this speed) migration
// passes.
TEST(ShardDeterminism, MobileScenarioIsBitIdenticalAcrossShardCounts) {
  auto run = [](std::size_t shards) {
    auto sc = preset("scale_mobile");
    sc.net_size = 400;
    sc.seed = 5;
    sc.mac = mac::Mac::kTdmaReuse;
    sc.shards = shards;
    auto s = build(sc);
    s.network->run_until(40.0);
    return s.flows->collect(40.0);
  };
  const auto ref = run(1);
  EXPECT_GT(ref.delivered_packets, 0u);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(k));
    const auto got = run(k);
    EXPECT_EQ(got.delivered_packets, ref.delivered_packets);
    EXPECT_EQ(got.delivered_payload_bits, ref.delivered_payload_bits);
    EXPECT_EQ(got.data_packets_sent, ref.data_packets_sent);
    EXPECT_EQ(got.source_retransmissions, ref.source_retransmissions);
    EXPECT_EQ(got.acks_sent, ref.acks_sent);
    EXPECT_EQ(got.transmissions, ref.transmissions);
    EXPECT_EQ(got.queue_drops, ref.queue_drops);
    EXPECT_EQ(got.attempt_drops, ref.attempt_drops);
    EXPECT_EQ(got.cache_retransmissions, ref.cache_retransmissions);
    EXPECT_EQ(got.route_drops, ref.route_drops);
    EXPECT_DOUBLE_EQ(got.per_flow_goodput_kbps_mean,
                     ref.per_flow_goodput_kbps_mean);
    EXPECT_DOUBLE_EQ(got.total_energy_j, ref.total_energy_j);
    ASSERT_EQ(got.per_node_energy_j.size(), ref.per_node_energy_j.size());
    for (std::size_t i = 0; i < ref.per_node_energy_j.size(); ++i)
      ASSERT_DOUBLE_EQ(got.per_node_energy_j[i], ref.per_node_energy_j[i])
          << "node " << i;
  }
}

// CSMA's carrier splits into per-strip domains coupled by boundary
// mirrors; CCA reads and collision verdicts are computed over captured
// record geometry, so every verdict — and with it every counter and
// energy cell — must be K-invariant. The fan-in sink concentrates
// contention, and a 400-node field puts real traffic on the strip
// boundaries.
TEST(ShardDeterminism, CsmaScenarioIsBitIdenticalAcrossShardCounts) {
  auto run = [](std::size_t shards) {
    auto sc = preset("scale");
    sc.net_size = 400;
    sc.seed = 5;
    sc.mac = mac::Mac::kCsma;
    sc.shards = shards;
    auto s = build(sc);
    s.network->run_until(40.0);
    return s.flows->collect(40.0);
  };
  const auto ref = run(1);
  EXPECT_GT(ref.delivered_packets, 0u);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(k));
    const auto got = run(k);
    EXPECT_EQ(got.delivered_packets, ref.delivered_packets);
    EXPECT_EQ(got.delivered_payload_bits, ref.delivered_payload_bits);
    EXPECT_EQ(got.data_packets_sent, ref.data_packets_sent);
    EXPECT_EQ(got.acks_sent, ref.acks_sent);
    EXPECT_EQ(got.transmissions, ref.transmissions);
    EXPECT_EQ(got.queue_drops, ref.queue_drops);
    EXPECT_EQ(got.attempt_drops, ref.attempt_drops);
    EXPECT_EQ(got.route_drops, ref.route_drops);
    EXPECT_DOUBLE_EQ(got.total_energy_j, ref.total_energy_j);
    ASSERT_EQ(got.per_node_energy_j.size(), ref.per_node_energy_j.size());
    for (std::size_t i = 0; i < ref.per_node_energy_j.size(); ++i)
      ASSERT_DOUBLE_EQ(got.per_node_energy_j[i], ref.per_node_energy_j[i])
          << "node " << i;
  }
}

}  // namespace
}  // namespace jtp::exp
