// Unit tests for the TCP-SACK and ATP baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/atp.h"
#include "baselines/tcp_sack.h"
#include "test_util.h"

namespace jtp::baselines {
namespace {

using jtp::testing::SimHarness;

// ------------------------- PFTK equation -------------------------

TEST(Pftk, DecreasesWithLoss) {
  const double r1 = pftk_rate_pps(0.01, 1.0, 3.0);
  const double r2 = pftk_rate_pps(0.1, 1.0, 3.0);
  EXPECT_GT(r1, r2);
}

TEST(Pftk, DecreasesWithRtt) {
  EXPECT_GT(pftk_rate_pps(0.05, 0.5, 3.0), pftk_rate_pps(0.05, 2.0, 3.0));
}

TEST(Pftk, MatchesSqrtLawAtLowLoss) {
  // For small p the timeout term vanishes: r ≈ 1/(RTT·sqrt(2bp/3)).
  const double p = 1e-4, rtt = 1.0;
  const double expected = 1.0 / (rtt * std::sqrt(2.0 * 2.0 * p / 3.0));
  EXPECT_NEAR(pftk_rate_pps(p, rtt, 3.0) / expected, 1.0, 0.05);
}

TEST(Pftk, ZeroLossIsUncapped) {
  EXPECT_GT(pftk_rate_pps(0.0, 1.0, 3.0), 1e8);
}

// ------------------------- TCP endpoints -------------------------

TcpConfig tcp_cfg() {
  TcpConfig c;
  c.flow = 1;
  c.src = 0;
  c.dst = 2;
  c.initial_rate_pps = 2.0;
  c.initial_rtt_s = 1.0;
  return c;
}

TEST(TcpSender, UsesTcpHeaderSizes) {
  SimHarness h;
  TcpSackSender s(h.env, h.sink, tcp_cfg());
  s.start(0);
  h.sim.run_until(1.0);
  ASSERT_FALSE(h.sink.sent.empty());
  EXPECT_EQ(h.sink.sent[0].header_bytes(), kTcpDataHeaderBytes);
  s.stop();
}

TEST(TcpSender, FullReliabilityStamped) {
  SimHarness h;
  TcpSackSender s(h.env, h.sink, tcp_cfg());
  s.start(0);
  h.sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(h.sink.sent[0].loss_tolerance, 0.0);
  EXPECT_DOUBLE_EQ(h.sink.sent[0].energy_budget, 0.0);
  s.stop();
}

TEST(TcpSender, SackHolesGetRetransmitted) {
  SimHarness h;
  TcpSackSender s(h.env, h.sink, tcp_cfg());
  s.start(0);
  h.sim.run_until(3.0);
  core::Packet ack;
  ack.type = core::PacketType::kAck;
  ack.flow = 1;
  core::AckHeader hh;
  hh.cumulative_ack = 1;
  hh.snack.missing = {2};
  ack.ack = hh;
  s.on_ack(ack);
  h.sim.run_until(4.5);
  EXPECT_GE(s.source_retransmissions(), 1u);
  s.stop();
}

TEST(TcpSender, RtoFiresOnSilence) {
  SimHarness h;
  auto cfg = tcp_cfg();
  cfg.rto_min_s = 1.0;
  TcpSackSender s(h.env, h.sink, cfg);
  s.start(0);
  h.sim.run_until(30.0);
  EXPECT_GT(s.timeouts(), 0u);
  // Loss estimate inflated by timeouts => rate collapses.
  EXPECT_GT(s.loss_estimate(), cfg.initial_loss);
  s.stop();
}

TEST(TcpSender, RttEstimateFollowsEcho) {
  SimHarness h;
  TcpSackSender s(h.env, h.sink, tcp_cfg());
  s.start(0);
  h.sim.run_until(2.0);
  core::Packet ack;
  ack.type = core::PacketType::kAck;
  ack.flow = 1;
  core::AckHeader hh;
  hh.cumulative_ack = 1;
  hh.echo_send_time = h.sim.now() - 0.4;  // 400 ms RTT sample
  ack.ack = hh;
  for (int i = 0; i < 50; ++i) {
    hh.echo_send_time = h.sim.now() - 0.4;
    ack.ack = hh;
    s.on_ack(ack);
  }
  EXPECT_NEAR(s.srtt(), 0.4, 0.1);
  s.stop();
}

TEST(TcpReceiver, DelayedAckEveryTwoPackets) {
  SimHarness h;
  TcpSackReceiver r(h.env, h.sink, tcp_cfg());
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  // In-order stream: ACK every 2nd packet (the first may ack immediately).
  for (core::SeqNo s = 0; s < 20; ++s) {
    p.seq = s;
    r.on_data(p);
  }
  EXPECT_GE(r.acks_sent(), 9u);
  EXPECT_LE(r.acks_sent(), 12u);
  EXPECT_EQ(r.delivered_packets(), 20u);
}

TEST(TcpReceiver, OutOfOrderAcksImmediately) {
  SimHarness h;
  TcpSackReceiver r(h.env, h.sink, tcp_cfg());
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  p.seq = 0;
  r.on_data(p);
  const auto before = r.acks_sent();
  p.seq = 5;  // hole => immediate dup-ack analogue
  r.on_data(p);
  EXPECT_GT(r.acks_sent(), before);
  const auto& ack = h.sink.sent.back();
  ASSERT_TRUE(ack.ack.has_value());
  EXPECT_EQ(ack.ack->cumulative_ack, 1u);
  EXPECT_FALSE(ack.ack->snack.missing.empty());
}

// ------------------------- ATP endpoints -------------------------

AtpConfig atp_cfg() {
  AtpConfig c;
  c.flow = 1;
  c.src = 0;
  c.dst = 2;
  c.initial_rate_pps = 2.0;
  c.feedback_period_s = 2.0;
  return c;
}

TEST(AtpReceiver, ConstantRateFeedback) {
  SimHarness h;
  AtpReceiver r(h.env, h.sink, atp_cfg());
  r.start();
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  p.seq = 0;
  p.available_rate_pps = 4.0;
  r.on_data(p);
  h.sim.run_until(20.5);
  // One ACK per 2 s once data was seen.
  EXPECT_NEAR(static_cast<double>(r.acks_sent()), 10.0, 1.5);
  r.stop();
}

TEST(AtpReceiver, SilentWithoutData) {
  SimHarness h;
  AtpReceiver r(h.env, h.sink, atp_cfg());
  r.start();
  h.sim.run_until(20.0);
  EXPECT_EQ(r.acks_sent(), 0u);
  r.stop();
}

TEST(AtpReceiver, SmoothsStampedRate) {
  SimHarness h;
  AtpReceiver r(h.env, h.sink, atp_cfg());
  r.start();
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  for (core::SeqNo s = 0; s < 100; ++s) {
    p.seq = s;
    p.available_rate_pps = 6.0;
    r.on_data(p);
  }
  EXPECT_NEAR(r.smoothed_rate_pps(), 6.0, 0.5);
  r.stop();
}

TEST(AtpSender, AdoptsLowerReportedRateImmediately) {
  SimHarness h;
  AtpSender s(h.env, h.sink, atp_cfg());
  s.start(0);
  core::Packet ack;
  ack.type = core::PacketType::kAck;
  ack.flow = 1;
  core::AckHeader hh;
  hh.advertised_rate_pps = 0.5;
  ack.ack = hh;
  s.on_ack(ack);
  EXPECT_DOUBLE_EQ(s.rate_pps(), 0.5);
  s.stop();
}

TEST(AtpSender, IncreasesFractionallyTowardHigherRate) {
  SimHarness h;
  auto cfg = atp_cfg();
  cfg.increase_fraction = 0.5;
  AtpSender s(h.env, h.sink, cfg);
  s.start(0);
  core::Packet ack;
  ack.type = core::PacketType::kAck;
  ack.flow = 1;
  core::AckHeader hh;
  hh.advertised_rate_pps = 10.0;
  ack.ack = hh;
  s.on_ack(ack);
  EXPECT_DOUBLE_EQ(s.rate_pps(), 2.0 + 0.5 * 8.0);  // halfway up
  s.stop();
}

TEST(AtpSender, EndToEndRecoveryOnly) {
  SimHarness h;
  AtpSender s(h.env, h.sink, atp_cfg());
  s.start(0);
  h.sim.run_until(3.0);
  core::Packet ack;
  ack.type = core::PacketType::kAck;
  ack.flow = 1;
  core::AckHeader hh;
  hh.cumulative_ack = 1;
  hh.snack.missing = {2, 3};
  ack.ack = hh;
  s.on_ack(ack);
  h.sim.run_until(5.0);
  EXPECT_GE(s.source_retransmissions(), 2u);
  s.stop();
}

TEST(AtpSender, SilenceBacksOffRate) {
  SimHarness h;
  AtpSender s(h.env, h.sink, atp_cfg());
  s.start(0);
  h.sim.run_until(30.0);  // no feedback at all
  EXPECT_LT(s.rate_pps(), 2.0);
  s.stop();
}

}  // namespace
}  // namespace jtp::baselines
