// Shared helpers for protocol endpoint tests: a capturing PacketSink and a
// simulator-backed Env.
#pragma once

#include <utility>
#include <vector>

#include "core/env.h"
#include "core/packet.h"
#include "core/packet_pool.h"
#include "net/sim_env.h"
#include "sim/simulator.h"

namespace jtp::testing {

// Records everything an endpoint hands to the stack. Handles are
// unwrapped into plain Packet values so tests can inspect them after the
// pool slot has been recycled.
class CaptureSink final : public core::PacketSink {
 public:
  void send(core::PacketPtr p) override { sent.push_back(std::move(*p)); }

  std::size_t data_count() const {
    std::size_t n = 0;
    for (const auto& p : sent)
      if (p.is_data()) ++n;
    return n;
  }
  std::size_t ack_count() const {
    std::size_t n = 0;
    for (const auto& p : sent)
      if (p.is_ack()) ++n;
    return n;
  }

  std::vector<core::Packet> sent;
};

// Bundles a simulator and its Env adapter. The pool is declared first:
// pending events may hold packet handles that release into it on
// simulator destruction.
struct SimHarness {
  core::PacketPool pool;
  sim::Simulator sim;
  net::SimEnv env{sim, pool};
  CaptureSink sink;
};

}  // namespace jtp::testing
