// Shared helpers for protocol endpoint tests: a capturing PacketSink and a
// simulator-backed Env.
#pragma once

#include <vector>

#include "core/env.h"
#include "core/packet.h"
#include "net/sim_env.h"
#include "sim/simulator.h"

namespace jtp::testing {

// Records everything an endpoint hands to the stack.
class CaptureSink final : public core::PacketSink {
 public:
  void send(core::Packet p) override { sent.push_back(std::move(p)); }

  std::size_t data_count() const {
    std::size_t n = 0;
    for (const auto& p : sent)
      if (p.is_data()) ++n;
    return n;
  }
  std::size_t ack_count() const {
    std::size_t n = 0;
    for (const auto& p : sent)
      if (p.is_ack()) ++n;
    return n;
  }

  std::vector<core::Packet> sent;
};

// Bundles a simulator and its Env adapter.
struct SimHarness {
  sim::Simulator sim;
  net::SimEnv env{sim};
  CaptureSink sink;
};

}  // namespace jtp::testing
