// Tests for the caching-gain analysis (paper §4.1, eqs. 5-6).
#include "core/analysis.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace jtp::core {
namespace {

TEST(Analysis, CachingExpectationClosedForm) {
  EXPECT_DOUBLE_EQ(expected_tx_with_caching(10, 4, 0.0), 40.0);
  EXPECT_DOUBLE_EQ(expected_tx_with_caching(10, 4, 0.5), 80.0);
}

TEST(Analysis, LinkTxCappedMatchesSeries) {
  // (1-p^n)/(1-p) = 1 + p + ... + p^{n-1}.
  const double p = 0.3;
  const int n = 4;
  double series = 0.0;
  for (int k = 0; k < n; ++k) series += std::pow(p, k);
  EXPECT_NEAR(expected_link_tx_capped(p, n), series, 1e-12);
}

TEST(Analysis, OneHopDegeneratesToCachingForm) {
  // Eq. (6) with H=1 and n→∞ equals eq. (5); with finite n the exact form
  // still must agree for p=0.
  EXPECT_NEAR(expected_tx_without_caching_exact(100, 1, 0.0, 5),
              expected_tx_with_caching(100, 1, 0.0), 1e-9);
}

TEST(Analysis, JncAlwaysCostsAtLeastJtp) {
  for (int h : {1, 2, 4, 8}) {
    for (double p : {0.05, 0.2, 0.4}) {
      for (int n : {1, 2, 5}) {
        EXPECT_GE(expected_tx_without_caching_exact(50, h, p, n) + 1e-9,
                  expected_tx_with_caching(50, h, p))
            << "h=" << h << " p=" << p << " n=" << n;
      }
    }
  }
}

TEST(Analysis, GainGrowsWithHops) {
  EXPECT_GT(caching_gain(8, 0.3, 2), caching_gain(3, 0.3, 2));
  EXPECT_GT(caching_gain(3, 0.3, 2), 1.0);
  EXPECT_DOUBLE_EQ(caching_gain(1, 0.3, 2), 1.0);  // single hop: no gain
}

TEST(Analysis, ApproxTracksExactWhenLossesModerate) {
  for (int h : {2, 4, 6}) {
    const double exact = expected_tx_without_caching_exact(100, h, 0.2, 3);
    const double approx = expected_tx_without_caching_approx(100, h, 0.2, 3);
    EXPECT_NEAR(approx / exact, 1.0, 0.15) << "h=" << h;
  }
}

TEST(Analysis, RejectsBadArguments) {
  EXPECT_THROW(expected_tx_with_caching(-1, 3, 0.1), std::invalid_argument);
  EXPECT_THROW(expected_tx_with_caching(1, 0, 0.1), std::invalid_argument);
  EXPECT_THROW(expected_tx_with_caching(1, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(expected_tx_without_caching_exact(1, 3, 0.1, 0),
               std::invalid_argument);
}

// Monte-Carlo cross-checks of both closed forms (the paper's Fig. 4 rests
// on these expressions).
class CachingGainMc
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(CachingGainMc, SimulationMatchesEq5) {
  const auto [hops, p, attempts] = GetParam();
  (void)attempts;
  sim::Rng rng(1234);
  const int k = 2000;
  const double sim = simulate_tx_with_caching(k, hops, p, rng);
  const double expect = expected_tx_with_caching(k, hops, p);
  EXPECT_NEAR(sim / expect, 1.0, 0.05)
      << "hops=" << hops << " p=" << p;
}

TEST_P(CachingGainMc, SimulationMatchesEq6Exact) {
  const auto [hops, p, attempts] = GetParam();
  sim::Rng rng(4321);
  const int k = 2000;
  const double sim = simulate_tx_without_caching(k, hops, p, attempts, rng);
  const double expect =
      expected_tx_without_caching_exact(k, hops, p, attempts);
  EXPECT_NEAR(sim / expect, 1.0, 0.08)
      << "hops=" << hops << " p=" << p << " n=" << attempts;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CachingGainMc,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values(0.05, 0.2, 0.35),
                       ::testing::Values(1, 2, 5)));

}  // namespace
}  // namespace jtp::core
