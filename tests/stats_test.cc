#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace jtp::sim {
namespace {

TEST(Summary, MeanAndVariance) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summary, SingleValueHasZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summary, Ci95ShrinksWithSamples) {
  Summary small, large;
  for (int i = 0; i < 5; ++i) small.add(i % 2);
  for (int i = 0; i < 500; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(TQuantile, KnownValues) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_975(10), 2.228, 1e-3);
  EXPECT_NEAR(t_quantile_975(1000), 1.96, 1e-3);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.initialized());
  e.add(5.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, BlendsTowardSamples) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(Ewma, ForceSeedsWithoutBlend) {
  Ewma e(0.1);
  e.force(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(TimeWeighted, PiecewiseConstantMean) {
  TimeWeighted tw;
  tw.update(0.0, 2.0);   // value 2 on [0, 10)
  tw.update(10.0, 6.0);  // value 6 on [10, 20)
  EXPECT_DOUBLE_EQ(tw.mean(20.0), 4.0);
}

TEST(TimeWeighted, BeforeStartReturnsCurrent) {
  TimeWeighted tw;
  tw.update(5.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.mean(5.0), 3.0);
}

TEST(TimeSeries, WindowSum) {
  TimeSeries ts;
  ts.add(1.0, 1.0);
  ts.add(2.0, 1.0);
  ts.add(3.0, 1.0);
  ts.add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(ts.sum_in_window(3.0, 2.5), 3.0);  // (0.5, 3]
  EXPECT_DOUBLE_EQ(ts.sum_in_window(10.0, 1.0), 1.0);
}

TEST(TimeSeries, BucketRate) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(i + 0.5, 1.0);  // 1 event/s
  const auto rate = ts.bucket_rate(10.0, 2.0);
  ASSERT_GE(rate.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(rate[i].v, 1.0, 1e-9);
}

TEST(TimeSeries, BucketRateRejectsBadBucket) {
  TimeSeries ts;
  EXPECT_THROW(ts.bucket_rate(10.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace jtp::sim
