#include "phy/energy_model.h"

#include <gtest/gtest.h>

namespace jtp::phy {
namespace {

RadioConfig radio() {
  RadioConfig r;
  r.datarate_bps = 250e3;
  r.tx_power_w = 0.075;
  r.rx_power_w = 0.030;
  r.fixed_overhead_s = 0.0;  // exact-value tests below assume no overhead
  return r;
}

TEST(EnergyModel, AirtimeIsBitsOverRate) {
  EnergyModel e(2, radio());
  EXPECT_DOUBLE_EQ(e.airtime_s(250e3), 1.0);
  EXPECT_DOUBLE_EQ(e.airtime_s(6624), 6624.0 / 250e3);
}

TEST(EnergyModel, TxEnergyIsPowerTimesAirtime) {
  EnergyModel e(2, radio());
  EXPECT_DOUBLE_EQ(e.tx_energy(250e3), 0.075);
  EXPECT_DOUBLE_EQ(e.rx_energy(250e3), 0.030);
}

TEST(EnergyModel, ChargesAccumulatePerNode) {
  EnergyModel e(3, radio());
  e.charge_tx(0, 250e3);
  e.charge_rx(1, 250e3);
  e.charge_tx(0, 250e3);
  EXPECT_DOUBLE_EQ(e.node_energy(0), 0.150);
  EXPECT_DOUBLE_EQ(e.node_energy(1), 0.030);
  EXPECT_DOUBLE_EQ(e.node_energy(2), 0.0);
  EXPECT_DOUBLE_EQ(e.total_energy(), 0.180);
}

TEST(EnergyModel, TotalIsSumOfNodes) {
  EnergyModel e(4, radio());
  for (core::NodeId n = 0; n < 4; ++n) e.charge_tx(n, 1000.0 * (n + 1));
  double sum = 0;
  for (double v : e.per_node()) sum += v;
  EXPECT_DOUBLE_EQ(sum, e.total_energy());
}

TEST(EnergyModel, ResetClears) {
  EnergyModel e(2, radio());
  e.charge_tx(0, 1e6);
  e.reset();
  EXPECT_DOUBLE_EQ(e.total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(e.node_energy(0), 0.0);
}

TEST(EnergyModel, TxCostsMoreThanRx) {
  EnergyModel e(2, radio());
  EXPECT_GT(e.tx_energy(8000), e.rx_energy(8000));
}

TEST(EnergyModel, FixedOverheadMakesShortFramesExpensive) {
  RadioConfig r = radio();
  r.fixed_overhead_s = 0.020;
  EnergyModel e(2, r);
  // A 200 B ACK vs an 828 B data packet: with a 20 ms wake-up overhead
  // the ACK costs more than half a data transmission (the paper's
  // "roughly as much energy as a data transmission").
  const double ack = e.tx_energy(8.0 * 200);
  const double data = e.tx_energy(8.0 * 828);
  EXPECT_GT(ack / data, 0.5);
  // Without overhead the same ratio is just the byte ratio.
  EnergyModel plain(2, radio());
  EXPECT_NEAR(plain.tx_energy(8.0 * 200) / plain.tx_energy(8.0 * 828),
              200.0 / 828.0, 1e-9);
}

TEST(EnergyModel, OverheadChargedPerTransmission) {
  RadioConfig r = radio();
  r.fixed_overhead_s = 0.010;
  EnergyModel e(2, r);
  EXPECT_DOUBLE_EQ(e.tx_energy(0.0), 0.075 * 0.010);
  EXPECT_DOUBLE_EQ(e.rx_energy(0.0), 0.030 * 0.010);
}

TEST(EnergyModel, RejectsBadConfig) {
  RadioConfig r = radio();
  r.datarate_bps = 0;
  EXPECT_THROW(EnergyModel(2, r), std::invalid_argument);
  r = radio();
  r.tx_power_w = -1;
  EXPECT_THROW(EnergyModel(2, r), std::invalid_argument);
}

TEST(EnergyModel, OutOfRangeNodeThrows) {
  EnergyModel e(2, radio());
  EXPECT_THROW(e.charge_tx(5, 100.0), std::out_of_range);
}

}  // namespace
}  // namespace jtp::phy
