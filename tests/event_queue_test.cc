#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace jtp::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.push(5.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(7.5, [] {});
  q.push(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.push(1.0, [] {});
  q.cancel(12345);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelTwiceCountsOnce) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelHeadThenEmpty) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.cancel(a);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedPushPop) {
  EventQueue q;
  double last = -1.0;
  for (int i = 0; i < 1000; ++i) q.push((i * 37) % 101, [] {});
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.at, last);
    last = ev.at;
  }
}

}  // namespace
}  // namespace jtp::sim
