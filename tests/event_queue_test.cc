#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace jtp::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.push(5.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(7.5, [] {});
  q.push(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.push(1.0, [] {});
  q.cancel(12345);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelTwiceCountsOnce) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelHeadThenEmpty) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.cancel(a);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedPushPop) {
  EventQueue q;
  double last = -1.0;
  for (int i = 0; i < 1000; ++i) q.push((i * 37) % 101, [] {});
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.at, last);
    last = ev.at;
  }
}

// Regression for the indexed-heap rewrite: same-instant events must fire
// in insertion order even when cancellations and re-schedules are
// interleaved between them (cancel swaps the heap tail into the hole,
// which must not perturb the FIFO tiebreak of the survivors).
TEST(EventQueue, FifoSurvivesCancelRescheduleInterleavings) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  // 20 same-instant events; cancel every third, re-scheduling a
  // replacement (which must fire *after* all older survivors).
  for (int i = 0; i < 20; ++i)
    ids.push_back(q.push(5.0, [&order, i] { order.push_back(i); }));
  std::vector<int> expected;
  for (int i = 0; i < 20; ++i)
    if (i % 3 != 0) expected.push_back(i);
  for (int i = 0; i < 20; i += 3) q.cancel(ids[i]);
  for (int i = 0; i < 20; i += 3) {
    const int replacement = 100 + i;
    q.push(5.0, [&order, replacement] { order.push_back(replacement); });
    expected.push_back(replacement);
  }
  // A different-time event interleaved mid-stream must not disturb them.
  q.push(4.0, [&order] { order.push_back(-1); });
  expected.insert(expected.begin(), -1);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, FifoSurvivesSlotReuse) {
  // Slots freed by fired events are reused by later pushes; the FIFO
  // tiebreak must follow push order, not slot order.
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.pop().fn();  // frees a slot
  q.push(1.0, [&] { order.push_back(3); });  // reuses it; fires after 2
  q.push(1.0, [&] { order.push_back(4); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, StaleIdAfterSlotReuseIsNoop) {
  EventQueue q;
  bool fired = false;
  const EventId a = q.push(1.0, [] {});
  q.cancel(a);  // frees the slot
  // The next push reuses the slot under a new generation.
  q.push(2.0, [&] { fired = true; });
  q.cancel(a);  // stale id: must NOT cancel the new event
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelByIdIsExactUnderHeavyChurn) {
  // Every scheduled event is either cancelled or fired, never both, with
  // cancels hitting arbitrary heap positions.
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<int> fired(300, 0);
  for (int i = 0; i < 300; ++i)
    ids.push_back(
        q.push((i * 7919) % 97, [&fired, i] { fired[i] = 1; }));
  std::vector<bool> cancelled(300, false);
  for (int i = 0; i < 300; i += 2) {
    q.cancel(ids[(i * 31) % 300]);
    cancelled[(i * 31) % 300] = true;
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 300; ++i)
    EXPECT_EQ(fired[i], cancelled[i] ? 0 : 1) << i;
}

TEST(EventQueue, SlotPoolRecyclesAndTracksHighWater) {
  EventQueue q;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 100; ++i) q.push(i, [] {});
    while (!q.empty()) q.pop();
  }
  const PoolStats st = q.slot_stats();
  EXPECT_EQ(st.capacity, 100u);  // one round's worth, never more
  EXPECT_EQ(st.high_water, 100u);
  EXPECT_EQ(st.in_use, 0u);
  EXPECT_EQ(st.reuses, 300u);  // rounds 2..4 ran entirely on the freelist
  EXPECT_EQ(q.total_scheduled(), 400u);
}

// --- SmallFn storage: SBO boundary and spill-pool reuse ---

TEST(EventQueue, SmallCapturesStayInline) {
  EventQueue q;
  char small[SmallFn::kInlineBytes - 8] = {1};
  int sink = 0;
  q.push(1.0, [small, &sink] { sink += small[0]; });
  EXPECT_EQ(q.spill_stats().capacity, 0u);  // no spill block created
  q.pop().fn();
  EXPECT_EQ(sink, 1);
}

TEST(EventQueue, OversizeCapturesSpillToPoolAndRecycle) {
  EventQueue q;
  char big[SmallFn::kInlineBytes + 16] = {1};
  int sink = 0;
  for (int round = 0; round < 5; ++round) {
    q.push(1.0, [big, &sink] { sink += big[0]; });
    q.pop().fn();
  }
  const PoolStats& sp = q.spill_stats();
  EXPECT_EQ(sp.capacity, 1u);     // one block, recycled every round
  EXPECT_EQ(sp.heap_allocs, 1u);  // allocated exactly once
  EXPECT_EQ(sp.reuses, 4u);
  EXPECT_EQ(sp.in_use, 0u);
  EXPECT_EQ(sp.oversize_allocs, 0u);
  EXPECT_EQ(sink, 5);
}

TEST(EventQueue, BeyondBlockSizeIsCountedAsOversize) {
  EventQueue q;
  char huge[SpillPool::kBlockBytes + 64] = {1};
  int sink = 0;
  q.push(1.0, [huge, &sink] { sink += huge[0]; });
  EXPECT_EQ(q.spill_stats().oversize_allocs, 1u);
  q.pop().fn();
  EXPECT_EQ(q.spill_stats().in_use, 0u);
  EXPECT_EQ(sink, 1);
}

}  // namespace
}  // namespace jtp::sim
