#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace jtp::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulator, ScheduleAdvancesClock) {
  Simulator s;
  double seen = -1.0;
  s.schedule(2.5, [&] { seen = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule(1.0, [&] { ++fired; });
  s.schedule(2.0, [&] { ++fired; });
  s.schedule(3.0, [&] { ++fired; });
  s.run_until(2.0);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(10.0);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(s.now());
    if (times.size() < 5) s.schedule(1.0, chain);
  };
  s.schedule(1.0, chain);
  s.run();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 5.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, AtInPastThrows) {
  Simulator s;
  s.schedule(5.0, [] {});
  s.run();
  EXPECT_THROW(s.at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule(1.0, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator s;
  s.schedule(3.0, [&] {
    s.schedule(0.0, [&] { EXPECT_DOUBLE_EQ(s.now(), 3.0); });
  });
  s.run();
}

TEST(Simulator, PendingReflectsQueue) {
  Simulator s;
  EXPECT_FALSE(s.pending());
  s.schedule(1.0, [] {});
  EXPECT_TRUE(s.pending());
  s.run();
  EXPECT_FALSE(s.pending());
}

}  // namespace
}  // namespace jtp::sim
