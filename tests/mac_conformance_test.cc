// Cross-MAC conformance suite: the behavioural contract every registered
// MAC discipline must honor, parameterized over MacRegistry's contents.
//
// mac/mac.h defines the seam (queue/attempt/retry state machine, pre-xmit
// and delivery hooks, LinkEstimator feed, drop counters); these tests pin
// it once for all registrants — classic TDMA, spatial-reuse TDMA, and
// CSMA/CA today, plus anything registered tomorrow: a new MAC passes this
// suite or it does not ship. The last test exercises the extension seam
// itself by registering a discipline under Mac::kExt at runtime.
#include "mac/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/packet_pool.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "mac/csma_mac.h"
#include "mac/mac.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "phy/topology.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::mac {
namespace {

// A fabric built straight from the registry — the same path Network
// takes — on a small linear field.
struct FabricRig {
  explicit FabricRig(Mac m, double loss = 0.0, std::size_t n = 2,
                     MacConfig mc = {})
      : topo(phy::Topology::linear(n, 30.0, 40.0)),
        channel(make_channel_cfg(loss), sim::Rng(3)),
        energy(n, {}) {
    const MacContext ctx{sim, topo, channel, energy, /*slot=*/0.01,
                         /*seed=*/7, mc};
    fabric = MacRegistry::instance().info(m).factory->make(ctx);
    for (core::NodeId id = 0; id < n; ++id)
      fabric->mac_of(id).set_deliver(
          [](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  }
  static phy::ChannelConfig make_channel_cfg(double loss) {
    phy::ChannelConfig c;
    c.fading_enabled = false;
    c.loss_good = loss;
    return c;
  }
  core::PacketPtr data(core::SeqNo seq = 0) {
    core::PacketPtr p = pool.make();
    p->type = core::PacketType::kData;
    p->flow = 1;
    p->src = 0;
    p->dst = 1;
    p->seq = seq;
    return p;
  }
  core::PacketPtr ack_packet() {
    core::PacketPtr p = pool.make();
    p->type = core::PacketType::kAck;
    p->ack = core::AckHeader{};
    p->flow = 1;
    p->src = 0;
    p->dst = 1;
    return p;
  }

  core::PacketPool pool;  // before sim: pending events hold handles
  sim::Simulator sim;
  phy::Topology topo;
  phy::Channel channel;
  phy::EnergyModel energy;
  std::unique_ptr<MacFabric> fabric;
};

class MacConformance : public ::testing::TestWithParam<Mac> {};

INSTANTIATE_TEST_SUITE_P(
    AllMacs, MacConformance,
    ::testing::ValuesIn(MacRegistry::instance().macs()),
    [](const ::testing::TestParamInfo<Mac>& info) {
      return mac_name(info.param);
    });

TEST_P(MacConformance, DeliversOverLosslessLink) {
  FabricRig r(GetParam());
  int delivered = 0;
  r.fabric->mac_of(0).set_deliver(
      [&](core::PacketPtr&& p, core::NodeId from, core::NodeId to) {
        EXPECT_EQ(from, 0u);
        EXPECT_EQ(to, 1u);
        EXPECT_EQ(p->seq, 0u);
        ++delivered;
      });
  r.fabric->mac_of(0).enqueue(r.data(), 1);
  r.sim.run_until(2.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(r.fabric->mac_of(0).deliveries(), 1u);
  EXPECT_EQ(r.fabric->mac_of(0).transmissions(), 1u);
}

TEST_P(MacConformance, RetryAccountingMatchesEstimatorFeed) {
  // Every transmission fails: each of the k packets must burn exactly the
  // default attempt budget, be counted as an attempt-exhausted drop, and
  // feed the LinkEstimator a per-packet attempt count equal to that
  // budget — the per-link statistics transports rate their hops with.
  constexpr int kPackets = 3;
  FabricRig r(GetParam(), /*loss=*/1.0);
  auto& m = r.fabric->mac_of(0);
  for (core::SeqNo s = 0; s < kPackets; ++s) m.enqueue(r.data(s), 1);
  r.sim.run_until(10.0);
  const auto budget =
      static_cast<std::uint64_t>(MacConfig{}.default_max_attempts);
  EXPECT_EQ(m.transmissions(), kPackets * budget);
  EXPECT_EQ(m.attempt_exhausted_drops(), kPackets);
  EXPECT_EQ(m.deliveries(), 0u);
  EXPECT_DOUBLE_EQ(m.estimator().avg_attempts(1),
                   static_cast<double>(budget));
  EXPECT_GT(m.estimator().loss_rate(1), 0.5);
}

TEST_P(MacConformance, PreXmitDropIsHonored) {
  // A pre-xmit veto (the energy-budget hook) must suppress the
  // transmission entirely: no air time, no sender energy, one
  // energy-budget drop.
  FabricRig r(GetParam());
  auto& m = r.fabric->mac_of(0);
  m.set_pre_xmit([](core::Packet&, core::NodeId, const core::LinkView&,
                    core::Joules, bool) -> PreXmitDecision {
    return {true, 0};
  });
  m.enqueue(r.data(), 1);
  r.sim.run_until(2.0);
  EXPECT_EQ(m.transmissions(), 0u);
  EXPECT_EQ(m.deliveries(), 0u);
  EXPECT_EQ(m.energy_budget_drops(), 1u);
  EXPECT_DOUBLE_EQ(r.energy.total_energy(), 0.0);
}

TEST_P(MacConformance, QueueFullDropsAndReportsFailure) {
  MacConfig mc;
  mc.queue_capacity_packets = 3;
  FabricRig r(GetParam(), 0.0, 2, mc);
  auto& m = r.fabric->mac_of(0);
  for (core::SeqNo s = 0; s < 3; ++s) EXPECT_TRUE(m.enqueue(r.data(s), 1));
  EXPECT_FALSE(m.enqueue(r.data(3), 1));
  EXPECT_FALSE(m.enqueue(r.data(4), 1));
  EXPECT_EQ(m.queue_drops(), 2u);
  EXPECT_EQ(m.queue_length(), 3u);
  // Control traffic has its own queue and must still get in.
  EXPECT_TRUE(m.enqueue(r.ack_packet(), 1));
}

TEST_P(MacConformance, ControlTrafficBypassesDataBacklog) {
  FabricRig r(GetParam());
  std::vector<bool> order;  // true = ack
  r.fabric->mac_of(0).set_deliver(
      [&](core::PacketPtr&& p, core::NodeId, core::NodeId) {
        order.push_back(p->is_ack());
      });
  for (core::SeqNo s = 0; s < 10; ++s)
    r.fabric->mac_of(0).enqueue(r.data(s), 1);
  r.fabric->mac_of(0).enqueue(r.ack_packet(), 1);
  r.sim.run_until(2.0);
  ASSERT_GE(order.size(), 3u);
  EXPECT_TRUE(order[0] || order[1])
      << "ACK queued behind the full data backlog";
}

// ---- end-to-end conformance through the scenario layer -------------------

exp::ScenarioSpec chain_spec(Mac m) {
  auto spec = exp::preset("linear");
  spec.net_size = 4;
  spec.fading = false;
  spec.loss_good = 0.0;
  spec.mac = m;
  spec.workload.kind = exp::WorkloadKind::kEnds;
  spec.workload.n_flows = 1;
  spec.workload.transfer_packets = 30;
  return spec;
}

TEST_P(MacConformance, MultiHopBurstDeliversEndToEnd) {
  // A 30-packet transfer across a 3-hop chain must complete under every
  // discipline: queueing, per-hop retransmission, and delivery hand-off
  // compose across nodes, not just on one link.
  auto s = exp::build(chain_spec(GetParam()));
  s.network->run_until(120.0);
  const auto metrics = s.flows->collect(120.0);
  EXPECT_EQ(metrics.delivered_packets, 30u);
  ASSERT_EQ(s.flows->flows().size(), 1u);
  EXPECT_GE(s.flows->flows()[0]->completed_at, 0.0)
      << "transfer never completed";
  EXPECT_EQ(metrics.queue_drops + metrics.attempt_drops, 0u);
}

TEST_P(MacConformance, PinnedSeedRunsAreBitStable) {
  // Same spec, same seed => byte-identical metrics, per MAC. This is the
  // foundation of the committed-baseline CSVs and the --jobs determinism
  // gate; a MAC that draws from a shared RNG stream breaks it.
  auto spec = chain_spec(GetParam());
  spec.seed = 4242;
  spec.fading = true;  // exercise the channel's random process too
  spec.loss_good = 0.05;
  spec.workload.loss_tolerance = 0.1;
  auto run = [&] {
    auto s = exp::build(spec);
    s.network->run_until(60.0);
    return s.flows->collect(60.0);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.attempt_drops, b.attempt_drops);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.delivered_payload_bits, b.delivered_payload_bits);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);  // exact, not NEAR
}

// ---- the shared medium's collision bookkeeping ---------------------------

// linear(3, 30, 40): 0 and 2 both hear 1 but not each other — the
// canonical hidden-terminal pair.

TEST(CsmaMedium, EarlyEndingHiddenTerminalStillCollides) {
  // Regression: an interferer that started first and left the air before
  // the victim's frame ended used to be pruned from the medium by any
  // intervening CCA, so the victim's end-of-frame verdict missed it.
  phy::Topology topo = phy::Topology::linear(3, 30.0, 40.0);
  ASSERT_TRUE(topo.in_range(2, 1));
  ASSERT_FALSE(topo.in_range(2, 0));  // hidden from the victim's sender
  CsmaMedium medium(topo, 0.0);

  const auto interferer = medium.begin_tx(2, 1, 0.0, 0.4);
  const auto victim = medium.begin_tx(0, 1, 0.2, 1.0);
  // Both frames are garbled at the common receiver, whichever ends first.
  EXPECT_TRUE(medium.finish_tx(interferer));
  EXPECT_FALSE(medium.busy(0, 0.5));  // CCA must not erase the verdict
  EXPECT_TRUE(medium.finish_tx(victim));
}

TEST(CsmaMedium, BackToBackOrInaudibleFramesDoNotCollide) {
  phy::Topology topo = phy::Topology::linear(3, 30.0, 40.0);
  CsmaMedium medium(topo, 0.0);

  // Half-open intervals: a frame ending exactly when the next begins
  // does not overlap it.
  const auto a = medium.begin_tx(2, 1, 0.0, 0.2);
  const auto b = medium.begin_tx(0, 1, 0.2, 0.4);
  EXPECT_FALSE(medium.finish_tx(a));
  EXPECT_FALSE(medium.finish_tx(b));

  // Overlapping but inaudible at the victim's receiver: 2 cannot reach 0.
  const auto victim = medium.begin_tx(1, 0, 1.0, 2.0);
  medium.begin_tx(2, 1, 1.5, 1.8);
  EXPECT_FALSE(medium.finish_tx(victim));
}

TEST(CsmaMedium, CcaTracksAudibleInFlightFramesOnly) {
  phy::Topology topo = phy::Topology::linear(3, 30.0, 40.0);
  CsmaMedium medium(topo, 0.0);
  const auto tx = medium.begin_tx(0, 1, 0.0, 1.0);
  EXPECT_TRUE(medium.busy(1, 0.5));
  EXPECT_FALSE(medium.busy(2, 0.5));  // out of carrier range
  EXPECT_FALSE(medium.busy(1, 1.0));  // half-open: gone at its end time
  medium.finish_tx(tx);
  EXPECT_FALSE(medium.busy(1, 0.5));  // record released with the frame
}

// ---- the extension seam itself -------------------------------------------

TEST(MacRegistryExtension, RuntimeRegistrationUnderExtSlot) {
  auto& reg = MacRegistry::instance();
  // The registry is process-wide, so a prior pass (--gtest_repeat) may
  // already have registered kExt; the fresh-slot assertions only apply
  // the first time through.
  if (!reg.registered(Mac::kExt)) {
    EXPECT_THROW(reg.info(Mac::kExt), std::invalid_argument);
    // Register a discipline under the experiment slot — here TDMA's own
    // factory; a real experiment would supply its own fabric.
    reg.add({Mac::kExt, reg.info(Mac::kTdma).factory});
  }
  EXPECT_TRUE(reg.registered(Mac::kExt));
  EXPECT_THROW(reg.add({Mac::kExt, reg.info(Mac::kTdma).factory}),
               std::invalid_argument);

  // kExt stays off the CLI surface but builds and runs like any builtin.
  EXPECT_FALSE(parse_mac("ext").has_value());
  auto spec = chain_spec(Mac::kExt);
  auto s = exp::build(spec);
  s.network->run_until(120.0);
  EXPECT_EQ(s.flows->collect(120.0).delivered_packets, 30u);
}

}  // namespace
}  // namespace jtp::mac
