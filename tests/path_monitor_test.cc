// Tests for the flip-flop path monitor (paper §5.1, eqs. 7-8).
#include "core/path_monitor.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace jtp::core {
namespace {

TEST(PathMonitor, FirstSampleInitializesPerPaper) {
  PathMonitor m;
  m.add(10.0);
  EXPECT_TRUE(m.initialized());
  EXPECT_DOUBLE_EQ(m.mean(), 10.0);      // x̄ = x0
  EXPECT_DOUBLE_EQ(m.range(), 5.0);      // R̄ = x0/2
}

TEST(PathMonitor, ControlLimitsUseD2Constant) {
  PathMonitor m;
  m.add(10.0);
  EXPECT_NEAR(m.ucl(), 10.0 + 3.0 * 5.0 / 1.128, 1e-9);
  EXPECT_NEAR(m.lcl(), 10.0 - 3.0 * 5.0 / 1.128, 1e-9);
}

TEST(PathMonitor, StableSamplesNoTrigger) {
  PathMonitor m;
  for (int i = 0; i < 100; ++i) {
    const auto obs = m.add(10.0 + 0.1 * ((i % 3) - 1));
    EXPECT_FALSE(obs.trigger);
    EXPECT_FALSE(obs.agile);
  }
  EXPECT_EQ(m.triggers(), 0u);
}

TEST(PathMonitor, PersistentShiftTriggersAfterRun) {
  PathMonitorConfig cfg;
  cfg.outlier_run_to_trigger = 3;
  PathMonitor m(cfg);
  for (int i = 0; i < 50; ++i) m.add(10.0);
  // Range collapses toward 0 => tight control limits; a big jump is an
  // outlier. Two outliers: no trigger; third: trigger.
  EXPECT_TRUE(m.add(100.0).outlier);
  EXPECT_FALSE(m.triggers());
  m.add(100.0);
  const auto obs = m.add(100.0);
  EXPECT_TRUE(obs.trigger);
  EXPECT_TRUE(obs.agile);
  EXPECT_EQ(m.triggers(), 1u);
}

TEST(PathMonitor, AgileFilterCatchesUpFaster) {
  PathMonitorConfig cfg;
  cfg.alpha_stable = 0.1;
  cfg.alpha_agile = 0.6;
  cfg.outlier_run_to_trigger = 2;
  PathMonitor m(cfg);
  for (int i = 0; i < 50; ++i) m.add(10.0);
  // Shift the level; after the trigger, the mean should converge to the
  // new level quickly.
  for (int i = 0; i < 8; ++i) m.add(50.0);
  EXPECT_GT(m.mean(), 35.0);
}

TEST(PathMonitor, FlopsBackToStableInsideLimits) {
  PathMonitorConfig cfg;
  cfg.outlier_run_to_trigger = 2;
  PathMonitor m(cfg);
  for (int i = 0; i < 30; ++i) m.add(10.0);
  for (int i = 0; i < 10; ++i) m.add(60.0);  // trigger + agile catch-up
  EXPECT_TRUE(m.triggers() >= 1);
  // Now feed samples near the new mean: filter should flop back to stable.
  bool stable_again = false;
  for (int i = 0; i < 20; ++i) {
    const auto obs = m.add(60.0);
    if (!obs.agile) stable_again = true;
  }
  EXPECT_TRUE(stable_again);
}

TEST(PathMonitor, IsolatedSpikeDoesNotTrigger) {
  PathMonitorConfig cfg;
  cfg.outlier_run_to_trigger = 3;
  PathMonitor m(cfg);
  for (int i = 0; i < 50; ++i) m.add(10.0);
  m.add(100.0);  // one spike
  for (int i = 0; i < 20; ++i) {
    const auto obs = m.add(10.0);
    EXPECT_FALSE(obs.trigger);
  }
  EXPECT_EQ(m.triggers(), 0u);
}

TEST(PathMonitor, RangeIgnoresOutliers) {
  PathMonitor m;
  for (int i = 0; i < 50; ++i) m.add(10.0);
  const double range_before = m.range();
  m.add(1000.0);  // single outlier must not widen the band
  EXPECT_DOUBLE_EQ(m.range(), range_before);
}

TEST(PathMonitor, ResetClearsState) {
  PathMonitor m;
  m.add(5.0);
  m.reset();
  EXPECT_FALSE(m.initialized());
  EXPECT_EQ(m.samples(), 0u);
}

TEST(PathMonitor, RejectsBadConfig) {
  PathMonitorConfig bad;
  bad.alpha_stable = 0.0;
  EXPECT_THROW(PathMonitor{bad}, std::invalid_argument);
  PathMonitorConfig bad2;
  bad2.outlier_run_to_trigger = 0;
  EXPECT_THROW(PathMonitor{bad2}, std::invalid_argument);
}

// Property sweep: with noisy-but-stationary input, trigger rate stays low;
// with a level shift larger than the noise, a trigger happens quickly.
class MonitorNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(MonitorNoiseTest, StationaryNoiseRarelyTriggers) {
  const double noise = GetParam();
  sim::Rng rng(99);
  PathMonitor m;
  for (int i = 0; i < 2000; ++i)
    m.add(50.0 + rng.normal(0.0, noise));
  // Allow a small false-trigger budget (well under 1% of samples).
  EXPECT_LE(m.triggers(), 10u) << "noise=" << noise;
}

TEST_P(MonitorNoiseTest, LevelShiftTriggersPromptly) {
  const double noise = GetParam();
  sim::Rng rng(7);
  PathMonitorConfig cfg;
  cfg.outlier_run_to_trigger = 3;
  PathMonitor m(cfg);
  for (int i = 0; i < 500; ++i) m.add(50.0 + rng.normal(0.0, noise));
  const auto before = m.triggers();
  int steps_to_trigger = -1;
  for (int i = 0; i < 100; ++i) {
    const auto obs = m.add(50.0 + 20.0 * noise + 30.0 + rng.normal(0.0, noise));
    if (obs.trigger) {
      steps_to_trigger = i;
      break;
    }
  }
  EXPECT_GE(m.triggers(), before);
  ASSERT_NE(steps_to_trigger, -1) << "shift never detected, noise=" << noise;
  EXPECT_LE(steps_to_trigger, 20);
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, MonitorNoiseTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace jtp::core
