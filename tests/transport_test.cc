// Tests for the polymorphic transport layer: the Proto enum helpers, the
// TransportRegistry, Network::add_flow's unified FlowHandle, and the
// protocol-parity contract — every registered transport runs the same
// ScenarioSpec, and the unified accessors report exactly what the
// concrete endpoints' own (pre-refactor) accessors report.
#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/atp.h"
#include "baselines/bbr.h"
#include "baselines/tcp_sack.h"
#include "core/jtp_dr.h"
#include "core/ejtp_receiver.h"
#include "core/ejtp_sender.h"
#include "core/transport.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "net/network.h"
#include "net/transport.h"

namespace jtp {
namespace {

using core::parse_proto;
using core::Proto;
using core::proto_name;
using net::HopPolicy;
using net::TransportRegistry;

TEST(Proto, NamesRoundTrip) {
  for (auto p : {Proto::kJtp, Proto::kJnc, Proto::kTcp, Proto::kAtp,
                 Proto::kJtpFf, Proto::kJtpDr, Proto::kBbr}) {
    const auto back = parse_proto(proto_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  // Legacy spelling from the variant's test-local era stays parseable.
  EXPECT_EQ(parse_proto("jtp-ff"), Proto::kJtpFf);
  EXPECT_FALSE(parse_proto("").has_value());
  EXPECT_FALSE(parse_proto("JTP").has_value());  // names are lowercase
  EXPECT_FALSE(parse_proto("udp").has_value());
}

TEST(Registry, BuiltinsAreRegistered) {
  auto& reg = TransportRegistry::instance();
  for (auto p : {Proto::kJtp, Proto::kJnc, Proto::kTcp, Proto::kAtp,
                 Proto::kJtpFf, Proto::kJtpDr, Proto::kBbr})
    EXPECT_TRUE(reg.registered(p)) << proto_name(p);
  EXPECT_GE(reg.protos().size(), 7u);
}

TEST(Registry, HopPoliciesAndCachingMatchTheProtocols) {
  auto& reg = TransportRegistry::instance();
  EXPECT_EQ(reg.info(Proto::kJtp).hop_policy, HopPolicy::kIjtp);
  EXPECT_EQ(reg.info(Proto::kJnc).hop_policy, HopPolicy::kIjtp);
  EXPECT_EQ(reg.info(Proto::kTcp).hop_policy, HopPolicy::kPlain);
  EXPECT_EQ(reg.info(Proto::kAtp).hop_policy, HopPolicy::kRateStamp);
  // The JTP variants keep full in-network help; BBR rides the plain
  // TCP-style path.
  EXPECT_EQ(reg.info(Proto::kJtpFf).hop_policy, HopPolicy::kIjtp);
  EXPECT_EQ(reg.info(Proto::kJtpDr).hop_policy, HopPolicy::kIjtp);
  EXPECT_EQ(reg.info(Proto::kBbr).hop_policy, HopPolicy::kPlain);
  EXPECT_TRUE(reg.caching_enabled(Proto::kJtp));
  EXPECT_FALSE(reg.caching_enabled(Proto::kJnc));
  EXPECT_TRUE(reg.caching_enabled(Proto::kJtpDr));
}

TEST(Registry, DuplicateRegistrationThrows) {
  auto& reg = TransportRegistry::instance();
  net::TransportInfo dup = reg.info(Proto::kJtp);
  EXPECT_THROW(reg.add(std::move(dup)), std::invalid_argument);
}

TEST(Registry, NullFactoryThrows) {
  net::TransportInfo bad;
  bad.factory = nullptr;
  EXPECT_THROW(TransportRegistry::instance().add(std::move(bad)),
               std::invalid_argument);
}

TEST(FlowTable, DefaultsToIjtpPolicy) {
  net::FlowTable table;
  EXPECT_EQ(table.policy(42), HopPolicy::kIjtp);
  table.register_flow(42, HopPolicy::kRateStamp);
  EXPECT_EQ(table.policy(42), HopPolicy::kRateStamp);
}

TEST(AddFlow, RejectsOutOfRangeEndpoints) {
  auto s = exp::build([] {
    exp::ScenarioSpec sc;
    sc.net_size = 3;
    sc.fading = false;
    sc.loss_good = 0.0;
    return sc;
  }());
  EXPECT_THROW(s.network->add_flow(Proto::kJtp, 0, 7),
               std::invalid_argument);
}

TEST(AddFlow, HandleCarriesIdentityAndEndpoints) {
  exp::ScenarioSpec sc;
  sc.net_size = 3;
  sc.fading = false;
  sc.loss_good = 0.0;
  auto s = exp::build(sc);
  const auto h = s.network->add_flow(Proto::kJtp, 0, 2);
  EXPECT_EQ(h.proto, Proto::kJtp);
  EXPECT_EQ(h.src, 0u);
  EXPECT_EQ(h.dst, 2u);
  EXPECT_GT(h.id, 0u);
  ASSERT_NE(h.sender, nullptr);
  ASSERT_NE(h.receiver, nullptr);
  // Typed accessors resolve to the protocol's concrete endpoints...
  EXPECT_NE(h.sender_as<core::EjtpSender>(), nullptr);
  EXPECT_NE(h.receiver_as<core::EjtpReceiver>(), nullptr);
  // ...and only to them.
  EXPECT_EQ(h.sender_as<baselines::TcpSackSender>(), nullptr);
  EXPECT_EQ(h.receiver_as<baselines::AtpReceiver>(), nullptr);
}

// ---------------------------------------------------------------------------
// Protocol parity: one ScenarioSpec, every registered transport.
// ---------------------------------------------------------------------------

exp::ScenarioSpec parity_spec(Proto proto) {
  exp::ScenarioSpec sc;
  sc.net_size = 4;
  sc.seed = 4242;  // pinned: these runs must be reproducible
  sc.proto = proto;
  // Residual loss without fading dwells: enough to exercise recovery in
  // every protocol, mild enough that ATP's end-to-end-only repair still
  // completes a bounded transfer within the horizon.
  sc.fading = false;
  sc.loss_good = 0.05;
  sc.workload.kind = exp::WorkloadKind::kEnds;
  sc.workload.n_flows = 1;
  sc.workload.transfer_packets = 40;
  return sc;
}

TEST(ProtocolParity, EveryRegisteredProtoRunsTheSameSpec) {
  for (const auto proto : TransportRegistry::instance().protos()) {
    auto s = exp::build(parity_spec(proto));
    s.network->run_until(1500.0);
    const auto& flow = *s.flows->flows().front();
    EXPECT_TRUE(flow.finished()) << proto_name(proto);
    EXPECT_GT(flow.delivered_packets(), 0u) << proto_name(proto);
    const auto m = s.flows->collect(1500.0);
    EXPECT_GT(m.delivered_payload_bits, 0.0) << proto_name(proto);
    EXPECT_GT(m.total_energy_j, 0.0) << proto_name(proto);
  }
}

// The unified FlowHandle accessors must report exactly what the concrete
// endpoints' own accessors report — the refactor moved the dispatch, not
// the numbers.
template <typename Sender, typename Receiver>
void expect_handle_matches_endpoints(const net::FlowHandle& h) {
  const auto* snd = h.sender_as<Sender>();
  const auto* rcv = h.receiver_as<Receiver>();
  ASSERT_NE(snd, nullptr);
  ASSERT_NE(rcv, nullptr);
  EXPECT_EQ(h.finished(), snd->finished());
  EXPECT_EQ(h.data_sent(), snd->data_packets_sent());
  EXPECT_EQ(h.source_rtx(), snd->source_retransmissions());
  EXPECT_DOUBLE_EQ(h.delivered_bits(), rcv->delivered_payload_bits());
  EXPECT_EQ(h.delivered_packets(), rcv->delivered_packets());
  EXPECT_EQ(h.acks_sent(), rcv->acks_sent());
}

TEST(ProtocolParity, JtpHandleMatchesConcreteAccessors) {
  auto s = exp::build(parity_spec(Proto::kJtp));
  s.network->run_until(1500.0);
  const auto& h = *s.flows->flows().front();
  expect_handle_matches_endpoints<core::EjtpSender, core::EjtpReceiver>(h);
  EXPECT_EQ(h.waived_packets(),
            h.receiver_as<core::EjtpReceiver>()->waived_packets());
}

TEST(ProtocolParity, TcpHandleMatchesConcreteAccessors) {
  auto s = exp::build(parity_spec(Proto::kTcp));
  s.network->run_until(1500.0);
  const auto& h = *s.flows->flows().front();
  expect_handle_matches_endpoints<baselines::TcpSackSender,
                                  baselines::TcpSackReceiver>(h);
  EXPECT_EQ(h.waived_packets(), 0u);  // TCP never waives
}

TEST(ProtocolParity, AtpHandleMatchesConcreteAccessors) {
  auto s = exp::build(parity_spec(Proto::kAtp));
  s.network->run_until(1500.0);
  const auto& h = *s.flows->flows().front();
  expect_handle_matches_endpoints<baselines::AtpSender,
                                  baselines::AtpReceiver>(h);
  EXPECT_EQ(h.waived_packets(), 0u);  // ATP never waives
}

// Pinned-seed determinism through the new dispatch path: two identical
// builds produce bit-identical metrics for every protocol.
TEST(ProtocolParity, PinnedSeedIsBitStableForEveryProto) {
  for (const auto proto : TransportRegistry::instance().protos()) {
    auto run = [&] {
      auto s = exp::build(parity_spec(proto));
      s.network->run_until(1500.0);
      return s.flows->collect(1500.0);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j) << proto_name(proto);
    EXPECT_DOUBLE_EQ(a.delivered_payload_bits, b.delivered_payload_bits)
        << proto_name(proto);
    EXPECT_EQ(a.delivered_packets, b.delivered_packets) << proto_name(proto);
    EXPECT_EQ(a.data_packets_sent, b.data_packets_sent) << proto_name(proto);
    EXPECT_EQ(a.acks_sent, b.acks_sent) << proto_name(proto);
    EXPECT_EQ(a.transmissions, b.transmissions) << proto_name(proto);
  }
}

// --- the extension seam -----------------------------------------------------
//
// ROADMAP: "register an experimental protocol variant through the
// registry to prove the extension seam". That proof has since been
// promoted into the production registry three times over: kJtpFf (JTP
// with constant-rate "fixed feedback" ACKing), kJtpDr (JTP's PI²/MD fed
// by a sender-side delivery-rate estimate) and kBbr (model-based pacing
// over the TCP-SACK feedback channel) each became a first-class
// protocol through exactly one TransportRegistry::add() call in the
// registry's own constructor — no edits to Network, Node, FlowManager,
// or any existing factory. The tests below pin down that each variant
// really is reachable through the same ScenarioSpec -> build() ->
// Network::add_flow entry points as the original four, and that the
// endpoints behind the unified FlowHandle are the expected concrete
// types with the expected behavior.

TEST(ExtensionSeam, FixedFeedbackVariantIsABuiltin) {
  ASSERT_TRUE(TransportRegistry::instance().registered(Proto::kJtpFf));

  auto s = exp::build(parity_spec(Proto::kJtpFf));
  s.network->run_until(1500.0);
  const auto& flow = *s.flows->flows().front();
  EXPECT_TRUE(flow.finished());
  EXPECT_GT(flow.delivered_packets(), 0u);

  // And it really is the variant: an eJTP receiver in constant-feedback
  // mode, advertising the fixed 2-second period.
  const auto* rcv = flow.receiver_as<core::EjtpReceiver>();
  ASSERT_NE(rcv, nullptr);
  EXPECT_DOUBLE_EQ(rcv->current_feedback_period(), 2.0);
}

TEST(ExtensionSeam, JtpDrWrapsAnEjtpFlowAndEstimatesBandwidth) {
  auto s = exp::build(parity_spec(Proto::kJtpDr));
  s.network->run_until(1500.0);
  const auto& flow = *s.flows->flows().front();
  EXPECT_TRUE(flow.finished());
  EXPECT_GT(flow.delivered_packets(), 0u);

  // The handle resolves to the wrapper, which exposes both the inner
  // eJTP machinery and the delivery-rate instrumentation.
  const auto* snd = flow.sender_as<core::JtpDrSender>();
  ASSERT_NE(snd, nullptr);
  EXPECT_NE(flow.receiver_as<core::EjtpReceiver>(), nullptr);
  EXPECT_GT(snd->samples_taken(), 0u);
  EXPECT_GT(snd->bw_estimate_pps(), 0.0);
  EXPECT_GT(snd->min_rtt_s(), 0.0);
  EXPECT_GE(snd->delivery_rounds(), 1u);
}

TEST(ExtensionSeam, BbrRunsOverTheTcpSackChannel) {
  auto s = exp::build(parity_spec(Proto::kBbr));
  s.network->run_until(1500.0);
  const auto& flow = *s.flows->flows().front();
  EXPECT_TRUE(flow.finished());
  EXPECT_GT(flow.delivered_packets(), 0u);

  const auto* snd = flow.sender_as<baselines::BbrSender>();
  ASSERT_NE(snd, nullptr);
  EXPECT_NE(flow.receiver_as<baselines::TcpSackReceiver>(), nullptr);
  // A completed 40-packet transfer is more than enough to fill the pipe
  // on a 4-node chain: the model must have left startup behind.
  EXPECT_TRUE(snd->model().filled_pipe());
  EXPECT_NE(snd->model().mode(), baselines::BbrModel::Mode::kStartup);
  EXPECT_GT(snd->model().bw_pps(), 0.0);
}

// --- probe_rtt --------------------------------------------------------------

// Drives the pure model through a queue-inflation episode: the RTT floor
// set early goes a full min_rtt_window_s with every later sample riding
// a standing queue, so the model must drop to the cwnd floor, hold it
// for probe_rtt_duration_s once in-flight drains, adopt the re-measured
// floor and come back to probe_bw.
TEST(BbrModel, ProbeRttFloorsCwndUntilTheFloorRefreshes) {
  baselines::BbrConfig cfg;
  cfg.min_rtt_window_s = 10.0;
  cfg.probe_rtt_duration_s = 0.2;
  cfg.min_cwnd_packets = 4;
  baselines::BbrModel m(cfg);

  double now = 0.0;
  std::uint64_t delivered = 0;
  const auto feed = [&](double bw_pps, double rtt_s,
                        std::uint64_t in_flight) {
    core::RateSample s;
    s.valid = true;
    s.bw_pps = bw_pps;
    s.rtt_s = rtt_s;
    s.delivered = 1;
    ++delivered;
    m.on_sample(s, now, delivered, in_flight);
  };

  // Startup -> drain -> probe_bw: flat bandwidth for full_bw_rounds
  // rounds (each single-delivery sample closes a round here), then one
  // sample with in-flight at the BDP (100 pps x 0.05 s = 5 packets).
  for (int i = 0; i < 5; ++i) {
    feed(100.0, 0.05, 50);
    now += 0.05;
  }
  ASSERT_TRUE(m.filled_pipe());
  feed(100.0, 0.05, 4);
  ASSERT_EQ(m.mode(), baselines::BbrModel::Mode::kProbeBw);
  EXPECT_GT(m.cwnd_packets(), cfg.min_cwnd_packets);

  // A standing queue: every sample for the next window shows 0.25 s.
  // The windowed min self-expires upward, but no sample ever matches the
  // old floor, so the staleness clock keeps running.
  while (now < 10.5) {
    feed(100.0, 0.25, 20);
    EXPECT_EQ(m.probe_rtt_count(), 0u) << "entered early at t=" << now;
    now += 0.5;
  }
  feed(100.0, 0.25, 20);  // > 10 s since the floor was last seen
  ASSERT_EQ(m.mode(), baselines::BbrModel::Mode::kProbeRtt);
  EXPECT_EQ(m.probe_rtt_count(), 1u);
  EXPECT_EQ(m.cwnd_packets(), cfg.min_cwnd_packets);
  EXPECT_DOUBLE_EQ(m.pacing_gain(), 1.0);

  // In-flight still above the floor: the hold clock must not start.
  now += 0.1;
  feed(100.0, 0.25, 10);
  ASSERT_EQ(m.mode(), baselines::BbrModel::Mode::kProbeRtt);

  // Drained to the floor: the hold starts; before it elapses the mode
  // sticks even though the probe already measured a fresh (lower) RTT.
  now += 0.1;
  feed(100.0, 0.06, 4);
  now += 0.1;  // 0.1 s into the 0.2 s hold
  feed(100.0, 0.06, 4);
  ASSERT_EQ(m.mode(), baselines::BbrModel::Mode::kProbeRtt);

  // Hold elapsed: back to probe_bw (pipe was full), cwnd cap restored,
  // and the re-measured floor is the model's min-RTT.
  now += 0.15;
  feed(100.0, 0.06, 4);
  ASSERT_EQ(m.mode(), baselines::BbrModel::Mode::kProbeBw);
  EXPECT_GT(m.cwnd_packets(), cfg.min_cwnd_packets);
  EXPECT_DOUBLE_EQ(m.min_rtt_s(), 0.06);
  EXPECT_EQ(m.probe_rtt_count(), 1u);  // no immediate re-entry
}

}  // namespace
}  // namespace jtp
