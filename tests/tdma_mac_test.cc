#include "mac/tdma_mac.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/packet_pool.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::mac {
namespace {

struct Rig {
  explicit Rig(double loss = 0.0, std::size_t n = 2, MacConfig mc = {})
      : schedule(n, 0.01, 7),
        channel(make_channel_cfg(loss), sim::Rng(3)),
        energy(n, {}),
        macs() {
    for (core::NodeId id = 0; id < n; ++id)
      macs.push_back(std::make_unique<TdmaMac>(sim, schedule, channel, energy,
                                               id, mc));
  }
  static phy::ChannelConfig make_channel_cfg(double loss) {
    phy::ChannelConfig c;
    c.fading_enabled = false;
    c.loss_good = loss;
    return c;
  }
  core::PacketPtr data(core::SeqNo seq = 0) {
    core::PacketPtr p = pool.make();
    p->type = core::PacketType::kData;
    p->flow = 1;
    p->src = 0;
    p->dst = 1;
    p->seq = seq;
    return p;
  }
  core::PacketPtr ack_packet() {
    core::PacketPtr p = pool.make();
    p->type = core::PacketType::kAck;
    p->flow = 1;
    p->src = 1;
    p->dst = 0;
    return p;
  }

  core::PacketPool pool;  // before sim: pending events hold handles
  sim::Simulator sim;
  TdmaSchedule schedule;
  phy::Channel channel;
  phy::EnergyModel energy;
  std::vector<std::unique_ptr<TdmaMac>> macs;
};

TEST(TdmaMac, DeliversOverLosslessLink) {
  Rig r;
  std::vector<core::Packet> delivered;
  r.macs[0]->set_deliver([&](core::PacketPtr&& p, core::NodeId from,
                             core::NodeId to) {
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(to, 1u);
    delivered.push_back(std::move(*p));
  });
  r.macs[0]->enqueue(r.data(), 1);
  r.sim.run_until(1.0);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(r.macs[0]->deliveries(), 1u);
  EXPECT_EQ(r.macs[0]->transmissions(), 1u);
}

TEST(TdmaMac, TransmitsOnlyInOwnedSlots) {
  Rig r;
  double tx_time = -1.0;
  r.macs[0]->set_deliver([&](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  r.macs[0]->set_pre_xmit([&](core::Packet&, core::NodeId,
                              const core::LinkView&, core::Joules,
                              bool) -> PreXmitDecision {
    tx_time = r.sim.now();
    return {false, 1};
  });
  r.macs[0]->enqueue(r.data(), 1);
  r.sim.run_until(1.0);
  ASSERT_GE(tx_time, 0.0);
  const auto slot = r.schedule.slot_at(tx_time);
  EXPECT_EQ(r.schedule.owner(slot), 0u);
  EXPECT_DOUBLE_EQ(r.schedule.slot_start(slot), tx_time);
}

TEST(TdmaMac, QueueOverflowDrops) {
  MacConfig mc;
  mc.queue_capacity_packets = 3;
  Rig r(0.0, 2, mc);
  r.macs[0]->set_deliver([](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  for (core::SeqNo s = 0; s < 5; ++s) r.macs[0]->enqueue(r.data(s), 1);
  EXPECT_EQ(r.macs[0]->queue_drops(), 2u);
  EXPECT_EQ(r.macs[0]->queue_length(), 3u);
}

TEST(TdmaMac, RetriesUntilAttemptBudgetExhausted) {
  Rig r(/*loss=*/1.0);  // every transmission fails
  r.macs[0]->set_pre_xmit([](core::Packet&, core::NodeId,
                             const core::LinkView&, core::Joules,
                             bool) -> PreXmitDecision {
    return {false, 4};
  });
  r.macs[0]->enqueue(r.data(), 1);
  r.sim.run_until(5.0);
  EXPECT_EQ(r.macs[0]->transmissions(), 4u);
  EXPECT_EQ(r.macs[0]->attempt_exhausted_drops(), 1u);
  EXPECT_EQ(r.macs[0]->deliveries(), 0u);
}

TEST(TdmaMac, PreXmitDropConsumesNoTransmission) {
  Rig r;
  r.macs[0]->set_pre_xmit([](core::Packet&, core::NodeId,
                             const core::LinkView&, core::Joules,
                             bool) -> PreXmitDecision {
    return {true, 0};  // drop (energy budget)
  });
  r.macs[0]->enqueue(r.data(), 1);
  r.sim.run_until(1.0);
  EXPECT_EQ(r.macs[0]->transmissions(), 0u);
  EXPECT_EQ(r.macs[0]->energy_budget_drops(), 1u);
  EXPECT_DOUBLE_EQ(r.energy.total_energy(), 0.0);
}

TEST(TdmaMac, FirstAttemptFlagOnlyOnce) {
  Rig r(/*loss=*/1.0);
  int firsts = 0, total = 0;
  r.macs[0]->set_pre_xmit([&](core::Packet&, core::NodeId,
                              const core::LinkView&, core::Joules,
                              bool first) -> PreXmitDecision {
    ++total;
    if (first) ++firsts;
    return {false, 3};
  });
  r.macs[0]->enqueue(r.data(), 1);
  r.sim.run_until(5.0);
  EXPECT_EQ(total, 3);
  EXPECT_EQ(firsts, 1);
}

TEST(TdmaMac, EnergyChargedPerAttemptAtSenderAndOnSuccessAtReceiver) {
  Rig r(/*loss=*/1.0);
  r.macs[0]->set_pre_xmit([](core::Packet&, core::NodeId,
                             const core::LinkView&, core::Joules,
                             bool) -> PreXmitDecision {
    return {false, 2};
  });
  r.macs[0]->enqueue(r.data(), 1);
  r.sim.run_until(5.0);
  const double bits = r.data()->size_bits();
  EXPECT_NEAR(r.energy.node_energy(0), 2 * r.energy.tx_energy(bits), 1e-12);
  EXPECT_DOUBLE_EQ(r.energy.node_energy(1), 0.0);  // never decoded
}

TEST(TdmaMac, FifoOrderPreserved) {
  Rig r;
  std::vector<core::SeqNo> order;
  r.macs[0]->set_deliver([&](core::PacketPtr&& p, core::NodeId, core::NodeId) {
    order.push_back(p->seq);
  });
  for (core::SeqNo s = 0; s < 5; ++s) r.macs[0]->enqueue(r.data(s), 1);
  r.sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<core::SeqNo>{0, 1, 2, 3, 4}));
}

TEST(TdmaMac, LossEstimatorLearnsFromAttempts) {
  Rig r(/*loss=*/0.3, 2);
  r.macs[0]->set_deliver([](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  // Keep feeding packets; after many, the loss estimate approaches 0.3.
  for (core::SeqNo s = 0; s < 2000; ++s) r.macs[0]->enqueue(r.data(s), 1);
  r.sim.run_until(100.0);
  // Only a subset was transmitted (queue is capped at 50), but enough.
  EXPECT_NEAR(r.macs[0]->estimator().loss_rate(1), 0.3, 0.15);
}

TEST(TdmaMac, AttemptTraceFiresOnFirstAttemptOfData) {
  Rig r;
  std::vector<int> budgets;
  r.macs[0]->set_deliver([](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  r.macs[0]->set_pre_xmit([](core::Packet&, core::NodeId,
                             const core::LinkView&, core::Joules,
                             bool) -> PreXmitDecision {
    return {false, 3};
  });
  r.macs[0]->set_attempt_trace(
      [&](sim::Time, const core::Packet&, int m) { budgets.push_back(m); });
  r.macs[0]->enqueue(r.data(0), 1);
  r.macs[0]->enqueue(r.data(1), 1);
  r.sim.run_until(2.0);
  EXPECT_EQ(budgets, (std::vector<int>{3, 3}));
}

TEST(TdmaMac, CapacityIsOnePacketPerOwnedSlot) {
  // Regression: a node must never transmit more than once per owned slot,
  // i.e. at most one packet per frame. Saturate the queue and check the
  // delivery rate equals the TDMA share.
  Rig r;
  int delivered = 0;
  r.macs[0]->set_deliver(
      [&](core::PacketPtr&&, core::NodeId, core::NodeId) { ++delivered; });
  for (core::SeqNo s = 0; s < 50; ++s) r.macs[0]->enqueue(r.data(s), 1);
  // 2 nodes, 0.01 s slots => frame 0.02 s => 50 pps share. In 0.5 s the
  // node may send at most 25+1 packets.
  r.sim.run_until(0.5);
  EXPECT_LE(delivered, 26);
  EXPECT_GE(delivered, 20);
}

TEST(TdmaMac, DistinctSlotsForConsecutivePackets) {
  Rig r;
  std::vector<std::uint64_t> slots;
  r.macs[0]->set_deliver([](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  r.macs[0]->set_pre_xmit([&](core::Packet&, core::NodeId,
                              const core::LinkView&, core::Joules,
                              bool) -> PreXmitDecision {
    slots.push_back(r.schedule.slot_at(r.sim.now()));
    return {false, 1};
  });
  for (core::SeqNo s = 0; s < 10; ++s) r.macs[0]->enqueue(r.data(s), 1);
  r.sim.run_until(1.0);
  ASSERT_EQ(slots.size(), 10u);
  for (std::size_t i = 1; i < slots.size(); ++i)
    EXPECT_GT(slots[i], slots[i - 1]);
}

TEST(TdmaMac, AcksJumpAheadOfDataBacklog) {
  // Control traffic must not queue behind data: an ACK enqueued after 20
  // data packets is still transmitted in the node's next owned slot.
  Rig r;
  std::vector<bool> order;  // true = ack
  r.macs[0]->set_deliver([&](core::PacketPtr&& p, core::NodeId, core::NodeId) {
    order.push_back(p->is_ack());
  });
  for (core::SeqNo s = 0; s < 20; ++s) r.macs[0]->enqueue(r.data(s), 1);
  core::PacketPtr ack = r.ack_packet();
  ack->src = 0;
  ack->dst = 1;
  ack->ack = core::AckHeader{};
  r.macs[0]->enqueue(std::move(ack), 1);
  r.sim.run_until(2.0);
  ASSERT_GE(order.size(), 3u);
  // The ACK must appear among the first couple of deliveries, far before
  // the 21st (FIFO) position.
  bool early_ack = order[0] || order[1];
  EXPECT_TRUE(early_ack);
}

TEST(TdmaMac, SeparateQueueCapacitiesForControlAndData) {
  MacConfig mc;
  mc.queue_capacity_packets = 2;
  Rig r(0.0, 2, mc);
  r.macs[0]->set_deliver([](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  // Fill the data queue.
  for (core::SeqNo s = 0; s < 4; ++s) r.macs[0]->enqueue(r.data(s), 1);
  EXPECT_EQ(r.macs[0]->queue_drops(), 2u);
  // ACKs still get in: they have their own queue.
  core::PacketPtr ack = r.ack_packet();
  ack->ack = core::AckHeader{};
  EXPECT_TRUE(r.macs[0]->enqueue(std::move(ack), 1));
}

TEST(TdmaMac, TwoMacsShareTheMediumFairly) {
  Rig r(0.0, 2);
  int d0 = 0, d1 = 0;
  r.macs[0]->set_deliver(
      [&](core::PacketPtr&&, core::NodeId, core::NodeId) { ++d0; });
  r.macs[1]->set_deliver(
      [&](core::PacketPtr&&, core::NodeId, core::NodeId) { ++d1; });
  for (core::SeqNo s = 0; s < 40; ++s) {
    r.macs[0]->enqueue(r.data(s), 1);
    core::PacketPtr p = r.data(s);
    p->src = 1;
    p->dst = 0;
    r.macs[1]->enqueue(std::move(p), 0);
  }
  r.sim.run_until(0.01 * 2 * 45);  // 45 frames
  EXPECT_EQ(d0, 40);
  EXPECT_EQ(d1, 40);
}

}  // namespace
}  // namespace jtp::mac
