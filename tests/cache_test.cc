// Tests for the in-network LRU packet cache (paper §4).
#include "core/cache.h"

#include <gtest/gtest.h>

namespace jtp::core {
namespace {

Packet data(FlowId flow, SeqNo seq) {
  Packet p;
  p.type = PacketType::kData;
  p.flow = flow;
  p.seq = seq;
  return p;
}

TEST(PacketCache, RejectsZeroCapacity) {
  EXPECT_THROW(PacketCache(0), std::invalid_argument);
}

TEST(PacketCache, InsertThenLookup) {
  PacketCache c(10);
  c.insert(data(1, 5));
  const auto hit = c.lookup(1, 5);
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->seq, 5u);
  EXPECT_EQ(hit->flow, 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(PacketCache, MissReturnsNullopt) {
  PacketCache c(10);
  EXPECT_EQ(c.lookup(1, 5), nullptr);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(PacketCache, IgnoresAcks) {
  PacketCache c(10);
  Packet ack;
  ack.type = PacketType::kAck;
  ack.flow = 1;
  ack.seq = 7;
  c.insert(ack);
  EXPECT_EQ(c.size(), 0u);
}

TEST(PacketCache, FlowsAreDistinct) {
  PacketCache c(10);
  c.insert(data(1, 5));
  c.insert(data(2, 5));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_NE(c.lookup(1, 5), nullptr);
  EXPECT_NE(c.lookup(2, 5), nullptr);
}

TEST(PacketCache, EvictsLeastRecentlyManipulated) {
  PacketCache c(3);
  c.insert(data(1, 0));
  c.insert(data(1, 1));
  c.insert(data(1, 2));
  c.insert(data(1, 3));  // evicts seq 0
  EXPECT_FALSE(c.contains(1, 0));
  EXPECT_TRUE(c.contains(1, 1));
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(PacketCache, LookupRefreshesLru) {
  PacketCache c(3);
  c.insert(data(1, 0));
  c.insert(data(1, 1));
  c.insert(data(1, 2));
  // Touch seq 0: it becomes most recent; inserting evicts seq 1 instead.
  ASSERT_NE(c.lookup(1, 0), nullptr);
  c.insert(data(1, 3));
  EXPECT_TRUE(c.contains(1, 0));
  EXPECT_FALSE(c.contains(1, 1));
}

TEST(PacketCache, ReinsertRefreshesLru) {
  PacketCache c(3);
  c.insert(data(1, 0));
  c.insert(data(1, 1));
  c.insert(data(1, 2));
  c.insert(data(1, 0));  // duplicate: refresh, no growth
  EXPECT_EQ(c.size(), 3u);
  c.insert(data(1, 3));
  EXPECT_TRUE(c.contains(1, 0));
  EXPECT_FALSE(c.contains(1, 1));
}

TEST(PacketCache, ContainsDoesNotRefresh) {
  PacketCache c(2);
  c.insert(data(1, 0));
  c.insert(data(1, 1));
  EXPECT_TRUE(c.contains(1, 0));  // probe only
  c.insert(data(1, 2));           // should evict 0 (not refreshed)
  EXPECT_FALSE(c.contains(1, 0));
}

TEST(PacketCache, CachedCopyStripsRetransmissionMarkers) {
  PacketCache c(4);
  Packet p = data(1, 9);
  p.is_source_retransmission = true;
  p.is_cache_retransmission = true;
  c.insert(p);
  const auto hit = c.lookup(1, 9);
  ASSERT_TRUE(hit != nullptr);
  EXPECT_FALSE(hit->is_source_retransmission);
  EXPECT_FALSE(hit->is_cache_retransmission);
}

TEST(PacketCache, EraseFlowRemovesOnlyThatFlow) {
  PacketCache c(10);
  for (SeqNo s = 0; s < 4; ++s) c.insert(data(1, s));
  for (SeqNo s = 0; s < 3; ++s) c.insert(data(2, s));
  c.erase_flow(1);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.contains(1, 0));
  EXPECT_TRUE(c.contains(2, 0));
}

TEST(PacketCache, CapacityOneWorks) {
  PacketCache c(1);
  c.insert(data(1, 0));
  c.insert(data(1, 1));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.contains(1, 1));
  EXPECT_FALSE(c.contains(1, 0));
}

TEST(PacketCache, StressManyFlows) {
  PacketCache c(100);
  for (FlowId f = 0; f < 20; ++f)
    for (SeqNo s = 0; s < 50; ++s) c.insert(data(f, s));
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(c.insertions(), 1000u);
  EXPECT_EQ(c.evictions(), 900u);
  // The most recent 100 inserts survive.
  for (SeqNo s = 0; s < 50; ++s) EXPECT_TRUE(c.contains(19, s));
  for (SeqNo s = 0; s < 50; ++s) EXPECT_TRUE(c.contains(18, s));
  EXPECT_FALSE(c.contains(17, 49));
}

}  // namespace
}  // namespace jtp::core
