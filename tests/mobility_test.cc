#include "phy/mobility.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::phy {
namespace {

MobilityConfig cfg(double speed = 1.0) {
  MobilityConfig c;
  c.speed_mps = speed;
  c.mean_leg_m = 47.0;
  c.mean_pause_s = 20.0;  // shorter than the paper's 100 s to speed tests
  c.field_m = 200.0;
  c.update_interval_s = 1.0;
  return c;
}

Topology square(std::size_t n) {
  Topology t(n, 40.0);
  for (core::NodeId i = 0; i < n; ++i)
    t.set_position(i, {50.0 + 10.0 * i, 100.0});
  return t;
}

// There is no movement callback any more (positions announce themselves
// via Topology::generation); tests observe motion by sampling at 4x the
// update rate, so at most one step of any node lands between samples.
void sample_every(sim::Simulator& sim, double period,
                  std::function<void()> probe) {
  struct Rearm {
    sim::Simulator* sim;
    double period;
    std::function<void()> probe;
    void operator()() const {
      probe();
      sim->schedule(period, Rearm{sim, period, probe});
    }
  };
  sim.schedule(period, Rearm{&sim, period, std::move(probe)});
}

TEST(RandomWaypoint, NodesStayInField) {
  sim::Simulator sim;
  auto topo = square(5);
  RandomWaypoint rwp(sim, topo, cfg(5.0), sim::Rng(1));
  rwp.start();
  bool ok = true;
  sample_every(sim, 0.25, [&] {
    for (core::NodeId i = 0; i < topo.size(); ++i) {
      const auto& p = topo.position(i);
      if (p.x < 0 || p.x > 200.0 || p.y < 0 || p.y > 200.0) ok = false;
    }
  });
  sim.run_until(500.0);
  EXPECT_TRUE(ok);
}

TEST(RandomWaypoint, NodesActuallyMove) {
  sim::Simulator sim;
  auto topo = square(3);
  const auto before = topo.position(0);
  RandomWaypoint rwp(sim, topo, cfg(1.0), sim::Rng(2));
  rwp.start();
  sim.run_until(300.0);
  const auto after = topo.position(0);
  EXPECT_GT(distance(before, after), 0.0);
}

TEST(RandomWaypoint, MovementBumpsTopologyGeneration) {
  sim::Simulator sim;
  auto topo = square(3);
  const auto gen_before = topo.generation();
  RandomWaypoint rwp(sim, topo, cfg(1.0), sim::Rng(2));
  rwp.start();
  sim.run_until(300.0);
  // Every discretized position update is visible to generation-based
  // consumers (the routing view) without any callback plumbing.
  EXPECT_GT(topo.generation(), gen_before);
}

TEST(RandomWaypoint, SpeedBoundsDisplacementPerUpdate) {
  sim::Simulator sim;
  auto topo = square(2);
  auto c = cfg(2.0);
  RandomWaypoint rwp(sim, topo, c, sim::Rng(3));
  Position last = topo.position(0);
  double max_step = 0.0;
  sample_every(sim, c.update_interval_s / 4.0, [&] {
    const auto cur = topo.position(0);
    max_step = std::max(max_step, distance(last, cur));
    last = cur;
  });
  rwp.start();
  sim.run_until(400.0);
  // One update covers at most speed × interval.
  EXPECT_LE(max_step, 2.0 * c.update_interval_s + 1e-9);
}

TEST(RandomWaypoint, FasterNodesTravelFarther) {
  auto run_total = [](double speed) {
    sim::Simulator sim;
    auto topo = square(2);
    RandomWaypoint rwp(sim, topo, cfg(speed), sim::Rng(4));
    double total = 0.0;
    Position last = topo.position(0);
    sample_every(sim, 0.25, [&] {
      total += distance(last, topo.position(0));
      last = topo.position(0);
    });
    rwp.start();
    sim.run_until(400.0);
    return total;
  };
  EXPECT_GT(run_total(5.0), run_total(0.1) * 2.0);
}

TEST(RandomWaypoint, RejectsBadConfig) {
  sim::Simulator sim;
  auto topo = square(2);
  auto c = cfg();
  c.speed_mps = 0.0;
  EXPECT_THROW(RandomWaypoint(sim, topo, c, sim::Rng(1)),
               std::invalid_argument);
  c = cfg();
  c.update_interval_s = 0.0;
  EXPECT_THROW(RandomWaypoint(sim, topo, c, sim::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace jtp::phy
