// Tests for packet formats, header sizes, and the CSV trace writer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/packet.h"
#include "sim/trace.h"

namespace jtp::core {
namespace {

TEST(Packet, DefaultIsDataWithPrototypeHeaderSizes) {
  Packet p;
  EXPECT_TRUE(p.is_data());
  EXPECT_EQ(p.header_bytes(), kDataHeaderBytes);   // 28 B (§6.1)
  EXPECT_EQ(p.size_bytes(), kDataHeaderBytes + kDefaultPayloadBytes);
  EXPECT_DOUBLE_EQ(p.size_bits(), 8.0 * (28 + 800));
}

TEST(Packet, AckUses200ByteHeader) {
  Packet p;
  p.type = PacketType::kAck;
  p.payload_bytes = 0;
  EXPECT_TRUE(p.is_ack());
  EXPECT_EQ(p.header_bytes(), kAckHeaderBytes);  // 200 B (§6.1)
  EXPECT_EQ(p.size_bytes(), 200u);
}

TEST(Packet, HeaderOverrideForBaselines) {
  Packet p;
  p.header_override_bytes = 40;  // TCP data header
  EXPECT_EQ(p.header_bytes(), 40u);
  p.type = PacketType::kAck;
  p.header_override_bytes = 60;
  EXPECT_EQ(p.header_bytes(), 60u);
}

TEST(Packet, AvailableRateStartsUnstamped) {
  Packet p;
  EXPECT_TRUE(std::isinf(p.available_rate_pps));
}

TEST(Packet, SnackEmptiness) {
  Snack s;
  EXPECT_TRUE(s.empty());
  s.missing.push_back(3);
  EXPECT_FALSE(s.empty());
  s.missing.clear();
  s.locally_recovered.push_back(4);
  EXPECT_FALSE(s.empty());
}

TEST(Bits, ConvertsBytes) {
  EXPECT_DOUBLE_EQ(bits(100), 800.0);
  EXPECT_DOUBLE_EQ(bits(0), 0.0);
}

}  // namespace
}  // namespace jtp::core

namespace jtp::sim {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/jtp_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b", "c"});
    w.row({1.0, 2.5, 3.0});
    w.row(std::vector<std::string>{"x", "y", "z"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,3");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y,z");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsColumnMismatch) {
  const std::string path = "/tmp/jtp_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), std::invalid_argument);
  EXPECT_THROW(w.row({1.0, 2.0, 3.0}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jtp::sim
