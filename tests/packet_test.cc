// Tests for packet formats, header sizes, and the CSV trace writer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/packet.h"
#include "sim/trace.h"

namespace jtp::core {
namespace {

TEST(Packet, DefaultIsDataWithPrototypeHeaderSizes) {
  Packet p;
  EXPECT_TRUE(p.is_data());
  EXPECT_EQ(p.header_bytes(), kDataHeaderBytes);   // 28 B (§6.1)
  EXPECT_EQ(p.size_bytes(), kDataHeaderBytes + kDefaultPayloadBytes);
  EXPECT_DOUBLE_EQ(p.size_bits(), 8.0 * (28 + 800));
}

TEST(Packet, AckUses200ByteHeader) {
  Packet p;
  p.type = PacketType::kAck;
  p.payload_bytes = 0;
  EXPECT_TRUE(p.is_ack());
  EXPECT_EQ(p.header_bytes(), kAckHeaderBytes);  // 200 B (§6.1)
  EXPECT_EQ(p.size_bytes(), 200u);
}

TEST(Packet, HeaderOverrideForBaselines) {
  Packet p;
  p.header_override_bytes = 40;  // TCP data header
  EXPECT_EQ(p.header_bytes(), 40u);
  p.type = PacketType::kAck;
  p.header_override_bytes = 60;
  EXPECT_EQ(p.header_bytes(), 60u);
}

TEST(Packet, AvailableRateStartsUnstamped) {
  Packet p;
  EXPECT_TRUE(std::isinf(p.available_rate_pps));
}

TEST(Packet, SnackEmptiness) {
  Snack s;
  EXPECT_TRUE(s.empty());
  s.missing.push_back(3);
  EXPECT_FALSE(s.empty());
  s.missing.clear();
  s.locally_recovered.push_back(4);
  EXPECT_FALSE(s.empty());
}

TEST(Bits, ConvertsBytes) {
  EXPECT_DOUBLE_EQ(bits(100), 800.0);
  EXPECT_DOUBLE_EQ(bits(0), 0.0);
}

TEST(AckSlot, EngagesOnAssignmentAndEmplace) {
  Packet p;
  EXPECT_FALSE(p.ack);
  AckHeader h;
  h.cumulative_ack = 12;
  p.ack = std::move(h);
  ASSERT_TRUE(p.ack);
  EXPECT_EQ(p.ack->cumulative_ack, 12u);
  p.ack.reset();
  EXPECT_FALSE(p.ack);
  p.ack.emplace().ack_serial = 5;
  ASSERT_TRUE(p.ack);
  EXPECT_EQ(p.ack->ack_serial, 5u);
}

TEST(AckSlot, MoveDisengagesTheSource) {
  Packet a;
  a.ack.emplace().cumulative_ack = 3;
  Packet b = std::move(a);
  ASSERT_TRUE(b.ack);
  EXPECT_EQ(b.ack->cumulative_ack, 3u);
  EXPECT_FALSE(a.ack);  // moved-from packet no longer claims an ack
}

TEST(AckSlot, CopyKeepsBothEngaged) {
  Packet a;
  a.ack.emplace().snack.missing = {4, 5};
  Packet b = a;
  ASSERT_TRUE(a.ack);
  ASSERT_TRUE(b.ack);
  b.ack->snack.missing.push_back(6);
  EXPECT_EQ(a.ack->snack.missing.size(), 2u);  // deep copy
  EXPECT_EQ(b.ack->snack.missing.size(), 3u);
}

TEST(PacketHeaderSplit, HeaderSliceKeepsHotFieldsOnly) {
  Packet p;
  p.seq = 9;
  p.flow = 2;
  p.energy_used = 1.5;
  p.ack.emplace().cumulative_ack = 7;
  const PacketHeader h = p;  // slice: the header is the cacheable part
  EXPECT_EQ(h.seq, 9u);
  EXPECT_EQ(h.flow, 2u);
  EXPECT_DOUBLE_EQ(h.energy_used, 1.5);
  Packet rebuilt(h);
  EXPECT_EQ(rebuilt.seq, 9u);
  EXPECT_FALSE(rebuilt.ack);  // ack state never survives the header trip
}

}  // namespace
}  // namespace jtp::core

namespace jtp::sim {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/jtp_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b", "c"});
    w.row({1.0, 2.5, 3.0});
    w.row(std::vector<std::string>{"x", "y", "z"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,3");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y,z");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsColumnMismatch) {
  const std::string path = "/tmp/jtp_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), std::invalid_argument);
  EXPECT_THROW(w.row({1.0, 2.0, 3.0}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jtp::sim
