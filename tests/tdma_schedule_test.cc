#include "mac/tdma_schedule.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace jtp::mac {
namespace {

TEST(TdmaSchedule, SlotArithmetic) {
  TdmaSchedule s(4, 0.01, 1);
  EXPECT_EQ(s.slot_at(0.0), 0u);
  EXPECT_EQ(s.slot_at(0.0099), 0u);
  EXPECT_EQ(s.slot_at(0.01), 1u);
  EXPECT_DOUBLE_EQ(s.slot_start(7), 0.07);
  EXPECT_DOUBLE_EQ(s.frame_duration(), 0.04);
}

TEST(TdmaSchedule, EveryFrameIsAPermutation) {
  TdmaSchedule s(7, 0.01, 42);
  for (std::uint64_t frame = 0; frame < 50; ++frame) {
    std::set<core::NodeId> owners;
    for (std::uint64_t i = 0; i < 7; ++i)
      owners.insert(s.owner(frame * 7 + i));
    EXPECT_EQ(owners.size(), 7u) << "frame " << frame;
  }
}

TEST(TdmaSchedule, CollisionFreeByConstruction) {
  // One owner per slot is the definition; verify owner() is a function.
  TdmaSchedule s(5, 0.02, 9);
  for (std::uint64_t slot = 0; slot < 200; ++slot)
    EXPECT_EQ(s.owner(slot), s.owner(slot));
}

TEST(TdmaSchedule, PermutationVariesAcrossFrames) {
  TdmaSchedule s(6, 0.01, 3);
  int identical = 0;
  for (std::uint64_t f = 0; f + 1 < 40; ++f) {
    bool same = true;
    for (std::uint64_t i = 0; i < 6; ++i)
      if (s.owner(f * 6 + i) != s.owner((f + 1) * 6 + i)) same = false;
    if (same) ++identical;
  }
  EXPECT_LT(identical, 3);
}

TEST(TdmaSchedule, NextOwnedSlotIsOwnedAndNotBeforeT) {
  TdmaSchedule s(5, 0.01, 7);
  for (core::NodeId n = 0; n < 5; ++n) {
    for (double t : {0.0, 0.003, 0.049, 1.234, 10.0}) {
      const auto slot = s.next_owned_slot(n, t);
      EXPECT_EQ(s.owner(slot), n);
      EXPECT_GE(s.slot_start(slot), t);
    }
  }
}

TEST(TdmaSchedule, NextOwnedSlotIsTheFirstSuch) {
  TdmaSchedule s(4, 0.01, 11);
  const core::NodeId n = 2;
  const auto slot = s.next_owned_slot(n, 0.0);
  for (std::uint64_t earlier = 0; earlier < slot; ++earlier)
    EXPECT_NE(s.owner(earlier), n);
}

TEST(TdmaSchedule, FairShareOverManyFrames) {
  TdmaSchedule s(8, 0.01, 13);
  std::vector<int> counts(8, 0);
  for (std::uint64_t slot = 0; slot < 8 * 100; ++slot) ++counts[s.owner(slot)];
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(TdmaSchedule, NodeCapacityOnePacketPerFrame) {
  TdmaSchedule s(10, 0.035, 1);
  EXPECT_NEAR(s.node_capacity_pps(), 1.0 / 0.35, 1e-12);
}

TEST(TdmaSchedule, DifferentSeedsDifferentSchedules) {
  TdmaSchedule a(6, 0.01, 1), b(6, 0.01, 2);
  int differ = 0;
  for (std::uint64_t slot = 0; slot < 120; ++slot)
    if (a.owner(slot) != b.owner(slot)) ++differ;
  EXPECT_GT(differ, 30);
}

TEST(TdmaSchedule, RejectsBadArgs) {
  EXPECT_THROW(TdmaSchedule(0, 0.01, 1), std::invalid_argument);
  EXPECT_THROW(TdmaSchedule(3, 0.0, 1), std::invalid_argument);
  TdmaSchedule s(3, 0.01, 1);
  EXPECT_THROW(s.next_owned_slot(5, 0.0), std::invalid_argument);
  EXPECT_THROW(s.slot_at(-1.0), std::invalid_argument);
}

TEST(TdmaSchedule, SingleNodeOwnsEverySlot) {
  TdmaSchedule s(1, 0.01, 1);
  for (std::uint64_t slot = 0; slot < 20; ++slot)
    EXPECT_EQ(s.owner(slot), 0u);
}

}  // namespace
}  // namespace jtp::mac
