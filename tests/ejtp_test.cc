// Unit tests for the eJTP endpoints against a captured sink (no network).
#include <gtest/gtest.h>

#include "core/ejtp_receiver.h"
#include "core/ejtp_sender.h"
#include "test_util.h"

namespace jtp::core {
namespace {

using jtp::testing::SimHarness;

SenderConfig sender_cfg() {
  SenderConfig c;
  c.flow = 1;
  c.src = 0;
  c.dst = 3;
  c.initial_rate_pps = 2.0;
  c.default_timeout_s = 10.0;
  return c;
}

ReceiverConfig receiver_cfg() {
  ReceiverConfig c;
  c.flow = 1;
  c.src = 0;
  c.dst = 3;
  c.t_lower_bound_s = 5.0;
  return c;
}

Packet ack_for(const SenderConfig& cfg, SeqNo cum, double rate = 0.0,
               std::vector<SeqNo> missing = {},
               std::vector<SeqNo> recovered = {}) {
  Packet a;
  a.type = PacketType::kAck;
  a.flow = cfg.flow;
  a.src = cfg.dst;
  a.dst = cfg.src;
  AckHeader h;
  h.cumulative_ack = cum;
  h.advertised_rate_pps = rate;
  h.snack.missing = std::move(missing);
  h.snack.locally_recovered = std::move(recovered);
  a.ack = std::move(h);
  return a;
}

Packet data_at(FlowId flow, SeqNo seq, double avail_rate = 5.0) {
  Packet p;
  p.type = PacketType::kData;
  p.flow = flow;
  p.src = 0;
  p.dst = 3;
  p.seq = seq;
  p.available_rate_pps = avail_rate;
  p.energy_used = 0.001;
  return p;
}

// ------------------------- Sender -------------------------

TEST(EjtpSender, PacesAtConfiguredRate) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());
  s.start(0);  // long-lived
  h.sim.run_until(5.0);
  // 2 pps for 5 s => ~10 packets (first fires at t=0.5).
  EXPECT_NEAR(static_cast<double>(h.sink.data_count()), 10.0, 1.0);
  s.stop();
}

TEST(EjtpSender, SequencesAreConsecutive) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());
  s.start(0);
  h.sim.run_until(3.0);
  for (std::size_t i = 0; i < h.sink.sent.size(); ++i)
    EXPECT_EQ(h.sink.sent[i].seq, i);
  s.stop();
}

TEST(EjtpSender, StampsLossToleranceAndBudget) {
  SimHarness h;
  auto cfg = sender_cfg();
  cfg.loss_tolerance = 0.15;
  cfg.initial_energy_budget = 0.5;
  EjtpSender s(h.env, h.sink, cfg);
  s.start(0);
  h.sim.run_until(1.0);
  ASSERT_FALSE(h.sink.sent.empty());
  EXPECT_DOUBLE_EQ(h.sink.sent[0].loss_tolerance, 0.15);
  EXPECT_DOUBLE_EQ(h.sink.sent[0].energy_budget, 0.5);
  s.stop();
}

TEST(EjtpSender, AdoptsAdvertisedRateWithBoundedIncrease) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());  // starts at 2 pps, factor 1.5
  s.start(0);
  h.sim.run_until(1.0);
  s.on_ack(ack_for(sender_cfg(), 1, /*rate=*/8.0));
  EXPECT_DOUBLE_EQ(s.rate_pps(), 3.0);  // one step: 2 × 1.5
  s.on_ack(ack_for(sender_cfg(), 1, 8.0));
  EXPECT_DOUBLE_EQ(s.rate_pps(), 4.5);
  s.on_ack(ack_for(sender_cfg(), 1, 8.0));
  s.on_ack(ack_for(sender_cfg(), 1, 8.0));
  EXPECT_DOUBLE_EQ(s.rate_pps(), 8.0);  // converged to the advertisement
  s.stop();
}

TEST(EjtpSender, AdoptsRateDecreaseImmediately) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());
  s.start(0);
  h.sim.run_until(1.0);
  s.on_ack(ack_for(sender_cfg(), 1, /*rate=*/0.5));
  EXPECT_DOUBLE_EQ(s.rate_pps(), 0.5);  // decreases are not smoothed
  s.stop();
}

TEST(EjtpSender, IgnoresStaleReorderedAcks) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());
  s.start(0);
  h.sim.run_until(1.0);
  auto newer = ack_for(sender_cfg(), 3, 1.0);
  newer.ack->ack_serial = 5;
  s.on_ack(newer);
  EXPECT_DOUBLE_EQ(s.rate_pps(), 1.0);
  auto stale = ack_for(sender_cfg(), 2, 9.0, /*missing=*/{4});
  stale.ack->ack_serial = 4;  // older than what we've seen
  s.on_ack(stale);
  EXPECT_DOUBLE_EQ(s.rate_pps(), 1.0);  // stale rate not adopted
  EXPECT_EQ(s.cumulative_ack(), 3u);    // cumulative stays monotone
  s.stop();
}

TEST(EjtpSender, RetransmitsOnlySnackMissing) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());
  s.start(0);
  h.sim.run_until(3.0);  // ~6 packets out
  s.on_ack(ack_for(sender_cfg(), 2, 4.0, /*missing=*/{3},
                   /*recovered=*/{4}));
  h.sim.run_until(4.0);
  EXPECT_EQ(s.source_retransmissions(), 1u);
  EXPECT_EQ(s.locally_recovered_reported(), 1u);
  bool saw_rtx3 = false, saw_rtx4 = false;
  for (const auto& p : h.sink.sent) {
    if (p.is_source_retransmission && p.seq == 3) saw_rtx3 = true;
    if (p.is_source_retransmission && p.seq == 4) saw_rtx4 = true;
  }
  EXPECT_TRUE(saw_rtx3);
  EXPECT_FALSE(saw_rtx4);  // locally recovered: source must not resend
  s.stop();
}

TEST(EjtpSender, BacksOffForLocalRecovery) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());
  s.start(0);
  h.sim.run_until(2.0);
  const auto n_before = h.sink.data_count();
  // 4 packets recovered in-network at rate 2pps => tb = 2 s of silence.
  s.on_ack(ack_for(sender_cfg(), 1, 2.0, {}, {1, 2, 3, 4}));
  EXPECT_GT(s.total_backoff_s(), 1.9);
  h.sim.run_until(3.9);
  EXPECT_EQ(h.sink.data_count(), n_before);  // still backing off
  h.sim.run_until(6.0);
  EXPECT_GT(h.sink.data_count(), n_before);
  s.stop();
}

TEST(EjtpSender, BackoffDisabledByConfig) {
  SimHarness h;
  auto cfg = sender_cfg();
  cfg.backoff_for_local_recovery = false;
  EjtpSender s(h.env, h.sink, cfg);
  s.start(0);
  h.sim.run_until(2.0);
  s.on_ack(ack_for(cfg, 1, 2.0, {}, {1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.total_backoff_s(), 0.0);
  s.stop();
}

TEST(EjtpSender, WatchdogBacksOffOnSilence) {
  SimHarness h;
  auto cfg = sender_cfg();
  cfg.default_timeout_s = 2.0;
  cfg.kd = 0.5;
  EjtpSender s(h.env, h.sink, cfg);
  s.start(0);
  h.sim.run_until(20.0);  // no ACKs at all
  EXPECT_GT(s.rate_backoffs(), 2u);
  EXPECT_LT(s.rate_pps(), cfg.initial_rate_pps);
  s.stop();
}

TEST(EjtpSender, AckSilencesWatchdog) {
  SimHarness h;
  auto cfg = sender_cfg();
  cfg.default_timeout_s = 2.0;
  EjtpSender s(h.env, h.sink, cfg);
  s.start(0);
  // Feed ACKs regularly: watchdog must not back off.
  for (int i = 1; i <= 10; ++i) {
    h.sim.run_until(i * 1.0);
    s.on_ack(ack_for(cfg, 0, 2.0));
  }
  EXPECT_EQ(s.rate_backoffs(), 0u);
  s.stop();
}

TEST(EjtpSender, FiniteTransferCompletes) {
  SimHarness h;
  EjtpSender s(h.env, h.sink, sender_cfg());
  bool done = false;
  s.set_on_complete([&] { done = true; });
  s.start(5);
  h.sim.run_until(4.0);
  EXPECT_EQ(h.sink.data_count(), 5u);
  EXPECT_FALSE(done);
  s.on_ack(ack_for(sender_cfg(), 5, 2.0));
  EXPECT_TRUE(done);
  EXPECT_TRUE(s.finished());
}

TEST(EjtpSender, WindowCapLimitsOutstanding) {
  SimHarness h;
  auto cfg = sender_cfg();
  cfg.window_cap_packets = 3;
  cfg.initial_rate_pps = 100.0;
  EjtpSender s(h.env, h.sink, cfg);
  s.start(0);
  h.sim.run_until(1.0);
  EXPECT_EQ(h.sink.data_count(), 3u);  // stalls at the cap
  s.on_ack(ack_for(cfg, 2, 100.0));
  h.sim.run_until(1.2);
  EXPECT_GT(h.sink.data_count(), 3u);
  s.stop();
}

TEST(EjtpSender, TailLossRetransmitsWithoutSnack) {
  // A lost final packet never enters the receiver's horizon, so no SNACK
  // can name it; the sender must notice stalled cumulative progress.
  SimHarness h;
  auto cfg = sender_cfg();
  cfg.default_timeout_s = 2.0;
  EjtpSender s(h.env, h.sink, cfg);
  s.start(3);
  h.sim.run_until(2.0);  // all 3 sent
  EXPECT_EQ(h.sink.data_count(), 3u);
  // ACK acknowledges only the first two; seq 2 vanished silently.
  s.on_ack(ack_for(cfg, 2, 2.0));
  h.sim.run_until(30.0);
  EXPECT_GE(s.tail_retransmissions(), 1u);
  bool resent_tail = false;
  for (const auto& p : h.sink.sent)
    if (p.is_source_retransmission && p.seq == 2) resent_tail = true;
  EXPECT_TRUE(resent_tail);
  s.stop();
}

// ------------------------- Receiver -------------------------

TEST(EjtpReceiver, SendsRegularFeedback) {
  SimHarness h;
  EjtpReceiver r(h.env, h.sink, receiver_cfg());
  r.start();
  r.on_data(data_at(1, 0));
  h.sim.run_until(30.0);
  EXPECT_GE(r.acks_sent(), 2u);
  EXPECT_GE(h.sink.ack_count(), 2u);
  r.stop();
}

TEST(EjtpReceiver, NoFeedbackBeforeAnyData) {
  SimHarness h;
  EjtpReceiver r(h.env, h.sink, receiver_cfg());
  r.start();
  h.sim.run_until(60.0);
  EXPECT_EQ(r.acks_sent(), 0u);
  r.stop();
}

TEST(EjtpReceiver, AckCarriesCumulativeAndSnack) {
  SimHarness h;
  EjtpReceiver r(h.env, h.sink, receiver_cfg());
  r.start();
  r.on_data(data_at(1, 0));
  r.on_data(data_at(1, 1));
  r.on_data(data_at(1, 4));  // gap: 2, 3
  h.sim.run_until(10.0);
  ASSERT_GE(h.sink.ack_count(), 1u);
  const auto& ack = h.sink.sent.front();
  ASSERT_TRUE(ack.ack.has_value());
  EXPECT_EQ(ack.ack->cumulative_ack, 2u);
  EXPECT_EQ(ack.ack->snack.missing, (std::vector<SeqNo>{2, 3}));
  EXPECT_GT(ack.ack->sender_timeout_s, 0.0);
  r.stop();
}

TEST(EjtpReceiver, MonitorTriggerSendsEarlyFeedback) {
  SimHarness h;
  auto cfg = receiver_cfg();
  cfg.t_lower_bound_s = 100.0;  // regular feedback far away
  EjtpReceiver r(h.env, h.sink, cfg);
  r.start();
  // Establish a stable available rate...
  for (int i = 0; i < 50; ++i) r.on_data(data_at(1, i, 5.0));
  const auto before = r.acks_sent();
  // ...then crash it (persistent change => trigger => early ACK).
  for (int i = 50; i < 60; ++i) r.on_data(data_at(1, i, 0.2));
  EXPECT_GT(r.triggered_acks(), 0u);
  EXPECT_GT(r.acks_sent(), before);
  r.stop();
}

TEST(EjtpReceiver, FeedbackPeriodRespectsLowerBound) {
  SimHarness h;
  auto cfg = receiver_cfg();
  cfg.t_lower_bound_s = 5.0;
  EjtpReceiver r(h.env, h.sink, cfg);
  EXPECT_GE(r.current_feedback_period(), 5.0 - 1e-9);
}

TEST(EjtpReceiver, CachePressureShrinksPeriod) {
  SimHarness h;
  auto cfg = receiver_cfg();
  cfg.t_lower_bound_s = 50.0;
  cfg.cache_size_packets = 20;  // C/r - RTT = 20/1 - 2 = 18 < 50
  cfg.rtt_estimate_s = 2.0;
  EjtpReceiver r(h.env, h.sink, cfg);
  EXPECT_LE(r.current_feedback_period(), 18.0 + 1e-9);
}

TEST(EjtpReceiver, ConstantFeedbackModeUsesConfiguredRate) {
  SimHarness h;
  auto cfg = receiver_cfg();
  cfg.feedback_mode = FeedbackMode::kConstant;
  cfg.constant_feedback_rate_pps = 0.5;
  EjtpReceiver r(h.env, h.sink, cfg);
  r.start();
  r.on_data(data_at(1, 0));
  h.sim.run_until(20.5);
  // 0.5 ACK/s over 20 s => ~10 ACKs.
  EXPECT_NEAR(static_cast<double>(r.acks_sent()), 10.0, 2.0);
  r.stop();
}

TEST(EjtpReceiver, DeliversFreshOnlyOnce) {
  SimHarness h;
  EjtpReceiver r(h.env, h.sink, receiver_cfg());
  int delivered = 0;
  r.set_on_deliver([&](SeqNo, std::uint32_t) { ++delivered; });
  r.start();
  r.on_data(data_at(1, 0));
  r.on_data(data_at(1, 0));  // duplicate
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(r.duplicates(), 1u);
  r.stop();
}

TEST(EjtpReceiver, LossToleranceWaivesGaps) {
  SimHarness h;
  auto cfg = receiver_cfg();
  cfg.loss_tolerance = 0.2;
  EjtpReceiver r(h.env, h.sink, cfg);
  r.start();
  // 1 loss in 10: well within 20% tolerance.
  for (int i = 0; i < 10; ++i)
    if (i != 5) r.on_data(data_at(1, i));
  h.sim.run_until(10.0);
  ASSERT_GE(h.sink.ack_count(), 1u);
  const auto& ack = h.sink.sent.front();
  EXPECT_TRUE(ack.ack->snack.missing.empty());
  EXPECT_EQ(ack.ack->cumulative_ack, 10u);
  EXPECT_EQ(r.waived_packets(), 1u);
  r.stop();
}

TEST(EjtpReceiver, AdvertisedRateFollowsPi2Md) {
  SimHarness h;
  auto cfg = receiver_cfg();
  cfg.rate.initial_rate_pps = 1.0;
  EjtpReceiver r(h.env, h.sink, cfg);
  r.start();
  // Plenty of available rate: the advertised rate must grow across ACKs.
  for (int i = 0; i < 100; ++i) r.on_data(data_at(1, i, 10.0));
  h.sim.run_until(60.0);
  ASSERT_GE(h.sink.ack_count(), 2u);
  const auto& first = *h.sink.sent.front().ack;
  const auto& last = *h.sink.sent.back().ack;
  EXPECT_GT(last.advertised_rate_pps, first.advertised_rate_pps);
  r.stop();
}

}  // namespace
}  // namespace jtp::core
