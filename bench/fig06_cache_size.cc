// Figure 6 (paper §5.1): the effect of cache size on source
// retransmissions, for several network sizes.
//
// A missing packet can be repaired from a cache only if it survives in
// some cache until the SNACK passes by. Once the cache is large enough to
// hold a feedback period's worth of traffic, source retransmissions drop
// sharply and stay flat — the knee the paper shows.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::Aggregate source_rtx(const exp::ScenarioSpec& base,
                          std::size_t net_size, std::size_t cache,
                          std::uint64_t seed, std::size_t n_runs,
                          double duration, std::size_t jobs) {
  auto runs = exp::run_seeds(
      n_runs, seed,
      [&](std::uint64_t s) {
        auto spec = base;
        spec.seed = s;
        spec.net_size = net_size;
        spec.cache_size_packets = cache;
        auto scenario = exp::build(spec);
        scenario.flows->create(0, static_cast<core::NodeId>(net_size - 1),
                               0);
        scenario.network->run_until(duration);
        return scenario.flows->collect(duration);
      },
      jobs);
  return exp::aggregate(runs, [](const exp::RunMetrics& m) {
    return static_cast<double>(m.source_retransmissions);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "Figure 6 measures JTP's in-network caches");
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(800.0, 2500.0);

  exp::ScenarioSpec defaults;
  defaults.loss_bad = 0.6;
  auto base = defaults;
  bench::apply_scenario(opt, base);
  const auto caches = bench::sweep_or<std::size_t>(
      base.cache_size_packets, defaults.cache_size_packets,
      {1, 2, 4, 8, 16, 32, 64, 128});
  const auto sizes = bench::sweep_or<std::size_t>(
      base.net_size, defaults.net_size, {4, 6, 8});

  std::printf("=== Figure 6: effect of cache size on source retransmissions ===\n");
  std::printf("long-lived reliable flow, lossy linear nets, %.0f s, %zu runs\n",
              duration, n_runs);
  std::printf("(TLowerBound=10 s: the knee is expected near rate*T packets)\n\n");

  std::vector<sim::Column> cols{{"cache_size", 0}};
  for (std::size_t n : sizes)
    cols.push_back({"src_rtx_net" + std::to_string(n), 1, true});
  auto rep = bench::make_report(opt, "", std::move(cols), 16);
  rep.begin();
  for (std::size_t c : caches) {
    std::vector<sim::Cell> row{c};
    for (std::size_t n : sizes)
      row.push_back(
          source_rtx(base, n, c, opt.seed, n_runs, duration, opt.jobs));
    rep.row(std::move(row));
  }
  bench::finish_report(rep);
  std::printf("\nexpected shape: source retransmissions drop sharply once "
              "the cache holds a feedback interval of traffic, then flatten.\n");
  return 0;
}
