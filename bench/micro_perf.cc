// google-benchmark micro-benchmarks of the hot per-packet paths: event
// queue, LRU cache, path monitor, reliability math, TDMA slot lookup.
//
// Accepts the suite-wide --csv PATH and --jobs N flags (translated to
// --benchmark_out=PATH in CSV format / ignored, since the kernels are
// single-threaded) alongside google-benchmark's own CLI.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "baselines/tcp_sack.h"
#include "core/cache.h"
#include "core/env.h"
#include "core/path_monitor.h"
#include "core/rate_controller.h"
#include "core/reliability.h"
#include "core/transport.h"
#include "mac/tdma_schedule.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace jtp;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      q.push(static_cast<double>((t * 37 + i * 11) % 1000), [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().at);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 256; ++i)
      s.schedule((i * 37) % 100, [] {});
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_CacheInsertLookup(benchmark::State& state) {
  core::PacketCache cache(1000);
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  core::SeqNo seq = 0;
  for (auto _ : state) {
    p.seq = seq++;
    cache.insert(p);
    benchmark::DoNotOptimize(cache.lookup(1, seq > 500 ? seq - 500 : 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup);

void BM_PathMonitorAdd(benchmark::State& state) {
  core::PathMonitor m;
  sim::Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.add(5.0 + rng.uniform()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathMonitorAdd);

void BM_ReliabilityPerPacket(benchmark::State& state) {
  // The full iJTP first-transmission math: target, budget, achieved,
  // header rewrite.
  double lt = 0.1;
  for (auto _ : state) {
    const double q = core::per_link_success_target(lt, 5);
    const int m = core::attempt_budget(q, 0.1, 5);
    const double qa = core::achieved_link_success(0.1, m);
    benchmark::DoNotOptimize(core::update_loss_tolerance(lt, qa));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReliabilityPerPacket);

void BM_RateControllerUpdate(benchmark::State& state) {
  core::RateController c;
  double a = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.update(a));
    a = a > 2.9 ? 0.1 : 3.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateControllerUpdate);

void BM_TdmaNextOwnedSlot(benchmark::State& state) {
  mac::TdmaSchedule s(static_cast<std::size_t>(state.range(0)), 0.035, 7);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_owned_slot(3, t));
    t += 1.37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TdmaNextOwnedSlot)->Arg(8)->Arg(25);

// ---------------------------------------------------------------------------
// Cost of the polymorphic core::TransportReceiver interface on the
// per-packet delivery path (PR: transport/scenario API redesign). The
// node's handlers now hold a base pointer, so every delivered packet pays
// one virtual on_data() dispatch that used to be a direct call. The pair
// below runs the identical receiver both ways; the delta between them is
// the indirection cost the redesign added to the hot path.
// ---------------------------------------------------------------------------

class NullEnv final : public core::Env {
 public:
  double now() const override { return 0.0; }
  core::TimerId schedule(double, std::function<void()>) override {
    return ++next_id_;  // timers never fire in this kernel
  }
  void cancel(core::TimerId) override {}

 private:
  core::TimerId next_id_ = 0;
};

class NullSink final : public core::PacketSink {
 public:
  void send(core::Packet) override {}
};

baselines::TcpConfig delivery_cfg() {
  baselines::TcpConfig cfg;
  cfg.flow = 1;
  cfg.src = 0;
  cfg.dst = 1;
  return cfg;
}

core::Packet delivery_packet() {
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  p.src = 0;
  p.dst = 1;
  p.payload_bytes = core::kDefaultPayloadBytes;
  return p;
}

void BM_TransportOnDataDirect(benchmark::State& state) {
  NullEnv env;
  NullSink sink;
  baselines::TcpSackReceiver rcv(env, sink, delivery_cfg());
  core::Packet p = delivery_packet();
  core::SeqNo seq = 0;
  for (auto _ : state) {
    p.seq = seq++;
    rcv.on_data(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportOnDataDirect);

void BM_TransportOnDataVirtual(benchmark::State& state) {
  NullEnv env;
  NullSink sink;
  baselines::TcpSackReceiver rcv(env, sink, delivery_cfg());
  core::TransportReceiver* base = &rcv;
  benchmark::DoNotOptimize(base);  // launder: keep the dispatch virtual
  core::Packet p = delivery_packet();
  core::SeqNo seq = 0;
  for (auto _ : state) {
    p.seq = seq++;
    base->on_data(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportOnDataVirtual);

}  // namespace

int main(int argc, char** argv) {
  // Translate the shared bench flags into google-benchmark's before its
  // parser (which aborts on flags it does not know) sees them.
  std::vector<std::string> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.push_back("--benchmark_out_format=csv");
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // kernels are single-threaded; accepted for suite uniformity
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
