// google-benchmark micro-benchmarks of the hot per-packet paths: event
// queue, LRU cache, path monitor, reliability math, TDMA slot lookup,
// interference coloring, and the CSMA contention cycle.
//
// Accepts the suite-wide --csv PATH and --jobs N flags (translated to
// --benchmark_out=PATH in CSV format / ignored, since the kernels are
// single-threaded) alongside google-benchmark's own CLI.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "baselines/bbr.h"
#include "baselines/tcp_sack.h"
#include "core/cache.h"
#include "core/rate_sample.h"
#include "core/env.h"
#include "core/ijtp.h"
#include "core/path_monitor.h"
#include "core/rate_controller.h"
#include "core/reliability.h"
#include "core/transport.h"
#include "exp/scenario.h"
#include "mac/csma_mac.h"
#include "mac/interference.h"
#include "mac/tdma_schedule.h"
#include "net/network.h"
#include "phy/topology.h"
#include "routing/link_state.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace jtp;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      q.push(static_cast<double>((t * 37 + i * 11) % 1000), [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().at);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 256; ++i)
      s.schedule((i * 37) % 100, [] {});
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SimulatorScheduleRun);

// Schedule/cancel/pop mix at 1e6 events: the event structure under a
// deep heap with interleaved cancellations, as the TDMA slot timers and
// transport feedback timers produce it at scale.
void BM_EventQueueMix(benchmark::State& state) {
  constexpr int kN = 1 << 20;  // ~1e6
  std::vector<sim::EventId> ids(kN);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < kN; ++i) {
      ids[i] = q.push(static_cast<double>((i * 2654435761u) % 4096), [] {});
      // Cancel every fourth event shortly after scheduling it (timer
      // re-arm pattern: schedule, then supersede).
      if ((i & 3) == 3) q.cancel(ids[i - 2]);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().at);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_EventQueueMix)->Unit(benchmark::kMillisecond);

// End-to-end delivery pipeline: a 4-hop chain with fading disabled, one
// bulk JTP flow. Items = packets delivered end-to-end, so the counter
// reads as delivery-pipeline packets/sec (every item traverses endpoint
// pacing, MAC queues, iJTP pre-xmit/post-rcv at each hop, and the ACK
// path with SNACKs back).
void BM_DeliveryPipelineData(benchmark::State& state) {
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    exp::ScenarioSpec spec;  // linear defaults
    spec.net_size = 5;
    spec.fading = false;
    spec.seed = 1;
    net::Network net(exp::make_topology(spec), exp::make_network_config(spec));
    net::FlowOptions opt;
    opt.initial_rate_pps = 40.0;
    auto flow = net.add_flow(core::Proto::kJtp, 0, 4, opt);
    flow.receiver->start();
    flow.sender->start(0);  // long-lived bulk flow
    net.run_until(120.0);
    flow.stop();
    delivered += flow.delivered_packets();
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
  state.counters["pkts"] = static_cast<double>(delivered);
}
BENCHMARK(BM_DeliveryPipelineData)->Unit(benchmark::kMillisecond);

// SNACK-heavy ACK traffic through the in-network half: every iteration an
// ACK whose SNACK names 32 missing packets traverses iJTP post-receive at
// a cache-warm intermediate node — cache lookups, local retransmissions,
// and the missing -> locally_recovered SNACK rewrite.
void BM_SnackAckPostRcv(benchmark::State& state) {
  core::IjtpConfig icfg;
  icfg.cache_capacity_packets = 1000;
  icfg.max_cache_rtx_per_ack = 8;
  core::IjtpModule ijtp(icfg);
  core::Packet data;
  data.type = core::PacketType::kData;
  data.flow = 1;
  for (core::SeqNo s = 0; s < 1000; ++s) {
    data.seq = s;
    ijtp.post_rcv(data);  // warm the cache
  }
  core::SeqNo base = 0;
  for (auto _ : state) {
    core::Packet ack;
    ack.type = core::PacketType::kAck;
    ack.flow = 1;
    core::AckHeader h;
    for (int i = 0; i < 32; ++i)
      h.snack.missing.push_back((base + 31 * i) % 1000);
    base = (base + 1) % 1000;
    ack.ack = std::move(h);
    std::size_t served = ijtp.post_rcv(
        ack, [](core::Packet&& rtx) {
          benchmark::DoNotOptimize(rtx.seq);
          return true;
        });
    benchmark::DoNotOptimize(served);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SnackAckPostRcv);

void BM_CacheInsertLookup(benchmark::State& state) {
  core::PacketCache cache(1000);
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  core::SeqNo seq = 0;
  for (auto _ : state) {
    p.seq = seq++;
    cache.insert(p);
    benchmark::DoNotOptimize(cache.lookup(1, seq > 500 ? seq - 500 : 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup);

void BM_PathMonitorAdd(benchmark::State& state) {
  core::PathMonitor m;
  sim::Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.add(5.0 + rng.uniform()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathMonitorAdd);

void BM_ReliabilityPerPacket(benchmark::State& state) {
  // The full iJTP first-transmission math: target, budget, achieved,
  // header rewrite.
  double lt = 0.1;
  for (auto _ : state) {
    const double q = core::per_link_success_target(lt, 5);
    const int m = core::attempt_budget(q, 0.1, 5);
    const double qa = core::achieved_link_success(0.1, m);
    benchmark::DoNotOptimize(core::update_loss_tolerance(lt, qa));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReliabilityPerPacket);

void BM_RateControllerUpdate(benchmark::State& state) {
  core::RateController c;
  double a = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.update(a));
    a = a > 2.9 ? 0.1 : 3.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateControllerUpdate);

// One sampler cycle of the delivery-rate subsystem: snapshot at send,
// credit at ACK, one sample into the max-filter — the per-ACK cost every
// jtp_dr/bbr flow pays.
void BM_RateSampleUpdate(benchmark::State& state) {
  core::RateSampler sampler;
  core::BandwidthEstimator bw(10);
  core::SeqNo seq = 0;
  double now = 0.0;
  std::uint64_t round = 0;
  for (auto _ : state) {
    // Keep a steady flight of 8: one send + one delivery per iteration.
    sampler.on_sent(seq, now);
    now += 0.01;
    if (seq >= 8) {
      sampler.on_delivered(seq - 8, now);
      const auto s = sampler.take_sample(now);
      if (s.valid) bw.on_sample(s, ++round);
      benchmark::DoNotOptimize(bw.bw_pps());
    }
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateSampleUpdate);

// The full BBR control step on a synthetic sample stream: startup →
// drain → probe_bw with the gain cycle advancing on min-RTT boundaries.
void BM_BbrStateMachine(benchmark::State& state) {
  baselines::BbrConfig cfg;
  baselines::BbrModel model(cfg);
  core::RateSample s;
  s.valid = true;
  s.delivered = 4;
  s.interval_s = 0.1;
  s.rtt_s = 0.2;
  double now = 0.0;
  std::uint64_t delivered_total = 0;
  for (auto _ : state) {
    now += 0.05;
    delivered_total += s.delivered;
    s.bw_pps = 40.0 + static_cast<double>(delivered_total % 16);
    model.on_sample(s, now, delivered_total, /*in_flight=*/8);
    benchmark::DoNotOptimize(model.pacing_rate_pps());
    benchmark::DoNotOptimize(model.cwnd_packets());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BbrStateMachine);

// ---------------------------------------------------------------------------
// Control-plane kernels: neighbor queries and routing refresh at small
// (paper, n=25) and production (n=400) scales. BM_RoutingRefresh models
// the steady-state control-plane work of a mobile scenario: one node
// moves, the view refreshes, and the handful of sources with live flows
// look up their next hops.
// ---------------------------------------------------------------------------

phy::Topology scale_field(std::size_t n, sim::Rng& rng) {
  auto prng = rng.derive("placement");
  return phy::Topology::random_connected(
      n, exp::random_field_side_m(n), exp::kRangeM, prng);
}

void BM_NeighborQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(7);
  auto topo = scale_field(n, rng);
  core::NodeId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.neighbors(id).size());
    id = static_cast<core::NodeId>((id + 1) % n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborQuery)->Arg(25)->Arg(400);

void BM_RoutingRefresh(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(7);
  auto topo = scale_field(n, rng);
  sim::Simulator sim;
  routing::LinkStateRouting r(sim, topo);
  auto mrng = rng.derive("moves");
  core::NodeId mover = 1;
  for (auto _ : state) {
    const auto p = topo.position(mover);
    topo.set_position(mover, {p.x + mrng.uniform(-1.0, 1.0),
                              p.y + mrng.uniform(-1.0, 1.0)});
    mover = static_cast<core::NodeId>(1 + (mover % (n - 1)));
    r.refresh();
    for (core::NodeId s = 1; s <= 8 && s < n; ++s)
      benchmark::DoNotOptimize(r.next_hop(s, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingRefresh)->Arg(25)->Arg(400)->Unit(benchmark::kMicrosecond);

// The churn kernel behind the incremental-repair claim: one node takes a
// small (±1 m) step, the view refreshes, and 8 flow sources re-query their
// next hops. With repair on, rows survive the step (most wiggles change no
// edge; the rest patch a small subtree); with repair off, every step
// invalidates all rows and the 8 queries each pay a fresh n-vertex BFS.
// The /400 pair is the PR's acceptance gate: SmallMove must beat
// FullRebuild by >= 10x.
void route_churn_kernel(benchmark::State& state, bool incremental) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(7);
  auto topo = scale_field(n, rng);
  sim::Simulator sim;
  routing::RoutingConfig cfg;
  cfg.incremental = incremental;
  routing::LinkStateRouting r(sim, topo, cfg);
  for (core::NodeId s = 1; s <= 8 && s < n; ++s)
    benchmark::DoNotOptimize(r.next_hop(s, 0));  // warm the rows
  auto mrng = rng.derive("moves");
  core::NodeId mover = 1;
  for (auto _ : state) {
    const auto p = topo.position(mover);
    topo.set_position(mover, {p.x + mrng.uniform(-1.0, 1.0),
                              p.y + mrng.uniform(-1.0, 1.0)});
    mover = static_cast<core::NodeId>(1 + (mover % (n - 1)));
    r.refresh();
    for (core::NodeId s = 1; s <= 8 && s < n; ++s)
      benchmark::DoNotOptimize(r.next_hop(s, 0));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rows_kept"] = static_cast<double>(r.stats().rows_kept);
  state.counters["rows_repaired"] =
      static_cast<double>(r.stats().rows_repaired);
  state.counters["rows_built"] = static_cast<double>(r.stats().rows_built);
  state.counters["repair_visits"] =
      static_cast<double>(r.stats().repair_visits);
}

void BM_RouteRepairSmallMove(benchmark::State& state) {
  route_churn_kernel(state, /*incremental=*/true);
}
BENCHMARK(BM_RouteRepairSmallMove)
    ->Arg(25)
    ->Arg(400)
    ->Unit(benchmark::kMicrosecond);

void BM_RouteRepairFullRebuild(benchmark::State& state) {
  route_churn_kernel(state, /*incremental=*/false);
}
BENCHMARK(BM_RouteRepairFullRebuild)
    ->Arg(25)
    ->Arg(400)
    ->Unit(benchmark::kMicrosecond);

// The per-MAC-attempt channel path: transmission_lost on a warm link set
// sized like a 400-node field (~4 links/node). One iteration = one dwell
// lookup (undirected key) + one loss-stream lookup (directed key) + one
// bernoulli draw; dwell flips are rare at this timescale, so the kernel
// prices the two table lookups the packed-slot tables exist to make cheap.
void BM_ChannelLossLookup(benchmark::State& state) {
  phy::ChannelConfig cfg;
  phy::Channel channel(cfg, sim::Rng(7).derive("channel"));
  sim::Rng prng(11);
  std::vector<std::pair<core::NodeId, core::NodeId>> links;
  links.reserve(1600);
  for (int k = 0; k < 1600; ++k) {
    const auto a = static_cast<core::NodeId>(prng.integer(400));
    auto b = static_cast<core::NodeId>(prng.integer(400));
    if (b == a) b = static_cast<core::NodeId>((b + 1) % 400);
    links.emplace_back(a, b);
  }
  sim::Time now = 0.0;
  for (const auto& [a, b] : links)
    benchmark::DoNotOptimize(channel.transmission_lost(a, b, now));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = links[i];
    i = (i + 1) % links.size();
    now += 1e-4;
    benchmark::DoNotOptimize(channel.transmission_lost(a, b, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelLossLookup);

void BM_TdmaNextOwnedSlot(benchmark::State& state) {
  mac::TdmaSchedule s(static_cast<std::size_t>(state.range(0)), 0.035, 7);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_owned_slot(3, t));
    t += 1.37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TdmaNextOwnedSlot)->Arg(8)->Arg(25);

// The spatial-reuse MAC's recolor cost: one full greedy 2-hop coloring of
// a connected random field. This is the per-topology-change control-plane
// price of slot reuse; grid-gathered candidates keep it near-linear in n.
void BM_InterferenceColoring(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(7);
  auto topo = scale_field(n, rng);
  for (auto _ : state) {
    const auto c = mac::color_interference(topo, 1.0);
    benchmark::DoNotOptimize(c.colors_used);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterferenceColoring)
    ->Arg(25)
    ->Arg(400)
    ->Unit(benchmark::kMicrosecond);

// One CSMA contention cycle end to end: enqueue on an idle 2-node rig,
// then drain the backoff + CCA + transmit + completion event chain.
void BM_CsmaBackoff(benchmark::State& state) {
  core::PacketPool pool;
  sim::Simulator sim;
  phy::Topology topo(2, exp::kRangeM);
  topo.set_position(1, {10.0, 0.0});
  phy::ChannelConfig ccfg;
  ccfg.fading_enabled = false;
  ccfg.loss_good = 0.0;
  phy::Channel channel(ccfg, sim::Rng(7).derive("channel"));
  phy::EnergyModel energy(2);
  mac::CsmaMedium medium(topo, 0.005);
  mac::CsmaMac m(sim, medium, channel, energy, 0, 0.005, {},
                 sim::Rng(7).derive("csma", 0));
  m.set_deliver([](core::PacketPtr&&, core::NodeId, core::NodeId) {});
  for (auto _ : state) {
    auto p = pool.make();
    p->type = core::PacketType::kData;
    p->flow = 1;
    p->src = 0;
    p->dst = 1;
    p->payload_bytes = core::kDefaultPayloadBytes;
    m.enqueue(std::move(p), 1);
    sim.run();
    benchmark::DoNotOptimize(m.deliveries());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsmaBackoff);

// ---------------------------------------------------------------------------
// The sharded event loop end to end: the scale preset (100-node random
// field, fan-in workload, spatial-reuse TDMA) split across K shards.
// Items = packets delivered end-to-end, identical for every K by the
// determinism guarantee; the Arg(1) row is the classic single-loop
// baseline, so the K>1 rows price the shard runner (mailboxes, horizon
// rounds, worker handoff). Wall-clock speedup over Arg(1) requires K
// free cores; on a single core the K>1 rows show pure overhead.
// ---------------------------------------------------------------------------

void BM_ShardedDelivery(benchmark::State& state) {
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    auto spec = exp::preset("scale");
    spec.net_size = 100;
    spec.seed = 1;
    spec.shards = static_cast<std::size_t>(state.range(0));
    auto s = exp::build(spec);
    s.network->run_until(30.0);
    delivered += s.flows->collect(30.0).delivered_packets;
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
  state.counters["pkts"] = static_cast<double>(delivered);
}
BENCHMARK(BM_ShardedDelivery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Shard-aware mobility end to end, traffic-free: a fast waypoint field
// split across 4 shards with a migration barrier every lookahead horizon
// and a zero halo threshold — the maximum barrier/hand-over duty cycle
// the config can express. Items = barriers evaluated; the migrations
// counter says how much hand-over work each run actually did.
void BM_ShardMigration(benchmark::State& state) {
  sim::Rng rng(9);
  const double side = exp::random_field_side_m(150);
  const auto topo = phy::Topology::random_connected(150, side, 40.0, rng);
  std::uint64_t barriers = 0, migrations = 0;
  for (auto _ : state) {
    net::NetworkConfig cfg;
    cfg.seed = 9;
    cfg.mac_kind = mac::Mac::kTdmaReuse;
    cfg.shards = 4;
    cfg.mobility = phy::MobilityConfig{};
    cfg.mobility->speed_mps = 8.0;
    cfg.mobility->mean_leg_m = 120.0;
    cfg.mobility->mean_pause_s = 0.5;
    cfg.mobility->field_m = side;
    cfg.migration_epoch_s = cfg.slot_duration_s;  // barrier every horizon
    cfg.halo_threshold = 0.0;
    net::Network net(topo, cfg);
    net.run_until(5.0);
    barriers += net.migration_stats().barriers;
    migrations += net.migration_stats().migrations;
  }
  state.SetItemsProcessed(static_cast<int64_t>(barriers));
  state.counters["migrations"] = static_cast<double>(migrations);
}
BENCHMARK(BM_ShardMigration)->Unit(benchmark::kMillisecond);

// The per-frame cost of the split-carrier seam: a native begin_tx in the
// home domain, its mirror registered in the peer domain, two CCA probes
// against the mirror (one audible, one out of range) and the release.
// This is the extra arbitration work a boundary transmission pays under
// K > 1 relative to the shared-medium loop.
void BM_CsmaBoundaryArbitration(benchmark::State& state) {
  const double unit = 0.005;
  phy::Topology topo(4, exp::kRangeM);
  topo.set_position(0, {0.0, 0.0});
  topo.set_position(1, {15.0, 0.0});
  topo.set_position(2, {25.0, 0.0});
  topo.set_position(3, {45.0, 0.0});
  mac::CsmaMedium home(topo, unit);  // strip owning nodes 0, 1
  mac::CsmaMedium peer(topo, unit);  // strip owning nodes 2, 3
  home.set_mirror([&](const mac::CsmaTxRecord& r) {
    peer.register_remote(r, r.start + 0.5 * unit);
  });
  double now = 0.0;
  std::uint64_t cca_busy = 0;
  for (auto _ : state) {
    const auto id = home.begin_tx(0, 1, now, now + 4.0 * unit);
    cca_busy += peer.busy(2, now + unit) ? 1 : 0;  // hears the mirror
    cca_busy += peer.busy(3, now + unit) ? 1 : 0;  // out of range
    benchmark::DoNotOptimize(home.finish_tx(id));
    now += 6.0 * unit;  // next cycle: the stale mirror gets pruned
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cca_busy"] = static_cast<double>(cca_busy);
}
BENCHMARK(BM_CsmaBoundaryArbitration);

// ---------------------------------------------------------------------------
// Cost of the polymorphic core::TransportReceiver interface on the
// per-packet delivery path (PR: transport/scenario API redesign). The
// node's handlers now hold a base pointer, so every delivered packet pays
// one virtual on_data() dispatch that used to be a direct call. The pair
// below runs the identical receiver both ways; the delta between them is
// the indirection cost the redesign added to the hot path.
// ---------------------------------------------------------------------------

class NullEnv final : public core::Env {
 public:
  double now() const override { return 0.0; }
  core::TimerId schedule_fn(double, sim::SmallFn) override {
    return ++next_id_;  // timers never fire in this kernel
  }
  void cancel(core::TimerId) override {}
  core::PacketPool& packet_pool() override { return pool_; }
  sim::SpillPool& spill_pool() override { return spill_; }

 private:
  core::TimerId next_id_ = 0;
  core::PacketPool pool_;
  sim::SpillPool spill_;
};

class NullSink final : public core::PacketSink {
 public:
  void send(core::PacketPtr) override {}  // dropped: slot recycles
};

baselines::TcpConfig delivery_cfg() {
  baselines::TcpConfig cfg;
  cfg.flow = 1;
  cfg.src = 0;
  cfg.dst = 1;
  return cfg;
}

core::Packet delivery_packet() {
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  p.src = 0;
  p.dst = 1;
  p.payload_bytes = core::kDefaultPayloadBytes;
  return p;
}

void BM_TransportOnDataDirect(benchmark::State& state) {
  NullEnv env;
  NullSink sink;
  baselines::TcpSackReceiver rcv(env, sink, delivery_cfg());
  core::Packet p = delivery_packet();
  core::SeqNo seq = 0;
  for (auto _ : state) {
    p.seq = seq++;
    rcv.on_data(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportOnDataDirect);

void BM_TransportOnDataVirtual(benchmark::State& state) {
  NullEnv env;
  NullSink sink;
  baselines::TcpSackReceiver rcv(env, sink, delivery_cfg());
  core::TransportReceiver* base = &rcv;
  benchmark::DoNotOptimize(base);  // launder: keep the dispatch virtual
  core::Packet p = delivery_packet();
  core::SeqNo seq = 0;
  for (auto _ : state) {
    p.seq = seq++;
    base->on_data(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportOnDataVirtual);

}  // namespace

int main(int argc, char** argv) {
  // Translate the shared bench flags into google-benchmark's before its
  // parser (which aborts on flags it does not know) sees them.
  std::vector<std::string> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.push_back("--benchmark_out_format=csv");
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // kernels are single-threaded; accepted for suite uniformity
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
