// google-benchmark micro-benchmarks of the hot per-packet paths: event
// queue, LRU cache, path monitor, reliability math, TDMA slot lookup.
#include <benchmark/benchmark.h>

#include "core/cache.h"
#include "core/path_monitor.h"
#include "core/rate_controller.h"
#include "core/reliability.h"
#include "mac/tdma_schedule.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace jtp;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      q.push(static_cast<double>((t * 37 + i * 11) % 1000), [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().at);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 256; ++i)
      s.schedule((i * 37) % 100, [] {});
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_CacheInsertLookup(benchmark::State& state) {
  core::PacketCache cache(1000);
  core::Packet p;
  p.type = core::PacketType::kData;
  p.flow = 1;
  core::SeqNo seq = 0;
  for (auto _ : state) {
    p.seq = seq++;
    cache.insert(p);
    benchmark::DoNotOptimize(cache.lookup(1, seq > 500 ? seq - 500 : 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup);

void BM_PathMonitorAdd(benchmark::State& state) {
  core::PathMonitor m;
  sim::Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.add(5.0 + rng.uniform()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathMonitorAdd);

void BM_ReliabilityPerPacket(benchmark::State& state) {
  // The full iJTP first-transmission math: target, budget, achieved,
  // header rewrite.
  double lt = 0.1;
  for (auto _ : state) {
    const double q = core::per_link_success_target(lt, 5);
    const int m = core::attempt_budget(q, 0.1, 5);
    const double qa = core::achieved_link_success(0.1, m);
    benchmark::DoNotOptimize(core::update_loss_tolerance(lt, qa));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReliabilityPerPacket);

void BM_RateControllerUpdate(benchmark::State& state) {
  core::RateController c;
  double a = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.update(a));
    a = a > 2.9 ? 0.1 : 3.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateControllerUpdate);

void BM_TdmaNextOwnedSlot(benchmark::State& state) {
  mac::TdmaSchedule s(static_cast<std::size_t>(state.range(0)), 0.035, 7);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_owned_slot(3, t));
    t += 1.37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TdmaNextOwnedSlot)->Arg(8)->Arg(25);

}  // namespace

BENCHMARK_MAIN();
