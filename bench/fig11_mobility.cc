// Figure 11 (paper §6.1.2): random topologies with random-waypoint
// mobility at 0.1 / 1 / 5 m/s (the "mobile" ScenarioSpec preset,
// 15 nodes).
//
// (a) energy per delivered bit, (b) goodput, for JTP/ATP/TCP;
// (c) the split between end-to-end (source) retransmissions and locally
//     recovered packets (cache hits) for JTP, normalized by delivered data
//     — showing caches stay useful even while paths churn.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(exp::ScenarioSpec spec, double speed,
                        exp::Proto proto, std::uint64_t seed,
                        double duration) {
  spec.speed_mps = speed;
  spec.proto = proto;
  spec.seed = seed;
  auto s = exp::build(spec);
  s.network->run_until(duration);
  return s.flows->collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(1000.0, 4000.0);

  const auto defaults = exp::preset("mobile");
  auto base = defaults;
  bench::apply_scenario(opt, base);
  const auto protos =
      opt.protos_or({exp::Proto::kJtp, exp::Proto::kAtp, exp::Proto::kTcp});
  const auto speeds = bench::sweep_or(base.speed_mps, defaults.speed_mps,
                                      {0.1, 1.0, 5.0});

  std::printf("=== Figure 11: mobility (random waypoint, %zu nodes) ===\n",
              base.net_size);
  std::printf("5 random flows, %.0f s, %zu runs\n\n", duration, n_runs);
  std::printf("E/b = energy per delivered bit (uJ/bit)\n");

  std::vector<sim::Column> cols{{"speed_mps", 1}};
  for (const auto p : protos)
    cols.push_back({exp::proto_name(p) + "_uj_per_bit", 1, true});
  for (const auto p : protos)
    cols.push_back({exp::proto_name(p) + "_kbps", 3, true});
  auto rep = bench::make_report(opt, "", std::move(cols), 15);
  rep.begin();

  struct CachePoint {
    double speed;
    exp::Aggregate src_rtx, cache_hits;
  };
  std::vector<CachePoint> cache_points;

  for (double speed : speeds) {
    std::vector<sim::Cell> row{speed};
    std::vector<sim::Cell> goodput_cells;
    for (const auto proto : protos) {
      auto runs = exp::run_seeds(
          n_runs, opt.seed,
          [&](std::uint64_t s) {
            return one_run(base, speed, proto, s, duration);
          },
          opt.jobs);
      row.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.energy_per_bit_uj();
      }));
      goodput_cells.push_back(
          exp::aggregate(runs, [](const exp::RunMetrics& m) {
            return m.per_flow_goodput_kbps_mean;
          }));
      if (proto == exp::Proto::kJtp) {
        const auto rtx = exp::aggregate(runs, [](const exp::RunMetrics& m) {
          return m.delivered_packets
                     ? static_cast<double>(m.source_retransmissions) /
                           static_cast<double>(m.delivered_packets)
                     : 0.0;
        });
        const auto hits = exp::aggregate(runs, [](const exp::RunMetrics& m) {
          return m.delivered_packets
                     ? static_cast<double>(m.cache_retransmissions) /
                           static_cast<double>(m.delivered_packets)
                     : 0.0;
        });
        cache_points.push_back({speed, rtx, hits});
      }
    }
    row.insert(row.end(), goodput_cells.begin(), goodput_cells.end());
    rep.row(std::move(row));
  }
  bench::finish_report(rep);

  if (!cache_points.empty()) {
    std::printf("\n");
    auto repc = bench::make_report(
        opt, "(c) end-to-end vs locally recovered packets (JTP), normalized "
             "by delivered data",
        {{"speed_mps", 1}, {"source_rtx", 4, true}, {"cache_hits", 4, true}},
        16, "cache");
    repc.begin();
    for (const auto& p : cache_points)
      repc.row({p.speed, p.src_rtx, p.cache_hits});
    bench::finish_report(repc);
  }

  std::printf("\nexpected shape: energy/bit rises with speed for all; jtp "
              "stays lowest; cache hits remain a large share of recoveries "
              "even under mobility.\n");
  return 0;
}
