// Figure 11 (paper §6.1.2): random topologies with random-waypoint
// mobility at 0.1 / 1 / 5 m/s (15 nodes).
//
// (a) energy per delivered bit, (b) goodput, for JTP/ATP/TCP;
// (c) the split between end-to-end (source) retransmissions and locally
//     recovered packets (cache hits) for JTP, normalized by delivered data
//     — showing caches stay useful even while paths churn.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

std::vector<std::pair<core::NodeId, core::NodeId>> pick_flows(
    std::size_t n_nodes, std::uint64_t seed, int n_flows) {
  sim::Rng rng(seed);
  auto fr = rng.derive("flow-endpoints");
  std::vector<std::pair<core::NodeId, core::NodeId>> out;
  for (int i = 0; i < n_flows; ++i) {
    const auto a = static_cast<core::NodeId>(fr.integer(n_nodes));
    auto b = static_cast<core::NodeId>(fr.integer(n_nodes));
    if (a == b) b = static_cast<core::NodeId>((b + 1) % n_nodes);
    out.push_back({a, b});
  }
  return out;
}

exp::RunMetrics one_run(double speed, exp::Proto proto, std::uint64_t seed,
                        double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = proto;
  auto net = exp::make_mobile(15, speed, sc);
  exp::FlowManager fm(*net, proto);
  for (const auto& [src, dst] : pick_flows(15, seed, 5))
    fm.create(src, dst, 0, 10.0);
  net->run_until(duration);
  return fm.collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(1000.0, 4000.0);

  std::printf("=== Figure 11: mobility (random waypoint, 15 nodes) ===\n");
  std::printf("5 random flows, %.0f s, %zu runs\n\n", duration, n_runs);

  exp::TablePrinter tp({"speed", "jtp E/b", "atp E/b", "tcp E/b",
                        "jtp kbps", "atp kbps", "tcp kbps"}, 15);
  std::printf("E/b = energy per delivered bit (uJ/bit)\n");
  tp.header(std::cout);

  struct CachePoint {
    double speed, src_rtx, cache_hits;
  };
  std::vector<CachePoint> cache_points;

  for (double speed : {0.1, 1.0, 5.0}) {
    std::vector<std::string> row{exp::fmt(speed, 1)};
    std::vector<std::string> goodput_cells;
    for (const auto proto :
         {exp::Proto::kJtp, exp::Proto::kAtp, exp::Proto::kTcp}) {
      auto runs = exp::run_seeds(n_runs, opt.seed, [&](std::uint64_t s) {
        return one_run(speed, proto, s, duration);
      });
      const auto e = exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.energy_per_bit_uj();
      });
      const auto g = exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.per_flow_goodput_kbps_mean;
      });
      row.push_back(exp::with_ci(e, 1));
      goodput_cells.push_back(exp::with_ci(g, 3));
      if (proto == exp::Proto::kJtp) {
        const auto rtx = exp::aggregate(runs, [](const exp::RunMetrics& m) {
          return m.delivered_packets
                     ? static_cast<double>(m.source_retransmissions) /
                           static_cast<double>(m.delivered_packets)
                     : 0.0;
        });
        const auto hits = exp::aggregate(runs, [](const exp::RunMetrics& m) {
          return m.delivered_packets
                     ? static_cast<double>(m.cache_retransmissions) /
                           static_cast<double>(m.delivered_packets)
                     : 0.0;
        });
        cache_points.push_back({speed, rtx.mean, hits.mean});
      }
    }
    row.insert(row.end(), goodput_cells.begin(), goodput_cells.end());
    tp.row(std::cout, row);
  }

  std::printf("\n--- (c) end-to-end vs locally recovered packets (JTP), "
              "normalized by delivered data ---\n");
  std::printf("%8s %12s %12s\n", "speed", "source rtx", "cache hits");
  for (const auto& p : cache_points)
    std::printf("%8.1f %12.4f %12.4f\n", p.speed, p.src_rtx, p.cache_hits);

  std::printf("\nexpected shape: energy/bit rises with speed for all; jtp "
              "stays lowest; cache hits remain a large share of recoveries "
              "even under mobility.\n");
  return 0;
}
