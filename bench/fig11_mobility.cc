// Figure 11 (paper §6.1.2): random topologies with random-waypoint
// mobility at 0.1 / 1 / 5 m/s (15 nodes).
//
// (a) energy per delivered bit, (b) goodput, for JTP/ATP/TCP;
// (c) the split between end-to-end (source) retransmissions and locally
//     recovered packets (cache hits) for JTP, normalized by delivered data
//     — showing caches stay useful even while paths churn.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

std::vector<std::pair<core::NodeId, core::NodeId>> pick_flows(
    std::size_t n_nodes, std::uint64_t seed, int n_flows) {
  sim::Rng rng(seed);
  auto fr = rng.derive("flow-endpoints");
  std::vector<std::pair<core::NodeId, core::NodeId>> out;
  for (int i = 0; i < n_flows; ++i) {
    const auto a = static_cast<core::NodeId>(fr.integer(n_nodes));
    auto b = static_cast<core::NodeId>(fr.integer(n_nodes));
    if (a == b) b = static_cast<core::NodeId>((b + 1) % n_nodes);
    out.push_back({a, b});
  }
  return out;
}

exp::RunMetrics one_run(double speed, exp::Proto proto, std::uint64_t seed,
                        double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = proto;
  auto net = exp::make_mobile(15, speed, sc);
  exp::FlowManager fm(*net, proto);
  for (const auto& [src, dst] : pick_flows(15, seed, 5))
    fm.create(src, dst, 0, 10.0);
  net->run_until(duration);
  return fm.collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(1000.0, 4000.0);

  std::printf("=== Figure 11: mobility (random waypoint, 15 nodes) ===\n");
  std::printf("5 random flows, %.0f s, %zu runs\n\n", duration, n_runs);
  std::printf("E/b = energy per delivered bit (uJ/bit)\n");

  auto rep = bench::make_report(opt, "",
                                {{"speed_mps", 1},
                                 {"jtp_uj_per_bit", 1, true},
                                 {"atp_uj_per_bit", 1, true},
                                 {"tcp_uj_per_bit", 1, true},
                                 {"jtp_kbps", 3, true},
                                 {"atp_kbps", 3, true},
                                 {"tcp_kbps", 3, true}},
                                15);
  rep.begin();

  struct CachePoint {
    double speed;
    exp::Aggregate src_rtx, cache_hits;
  };
  std::vector<CachePoint> cache_points;

  for (double speed : {0.1, 1.0, 5.0}) {
    std::vector<sim::Cell> row{speed};
    std::vector<sim::Cell> goodput_cells;
    for (const auto proto :
         {exp::Proto::kJtp, exp::Proto::kAtp, exp::Proto::kTcp}) {
      auto runs = exp::run_seeds(
          n_runs, opt.seed,
          [&](std::uint64_t s) { return one_run(speed, proto, s, duration); },
          opt.jobs);
      row.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.energy_per_bit_uj();
      }));
      goodput_cells.push_back(
          exp::aggregate(runs, [](const exp::RunMetrics& m) {
            return m.per_flow_goodput_kbps_mean;
          }));
      if (proto == exp::Proto::kJtp) {
        const auto rtx = exp::aggregate(runs, [](const exp::RunMetrics& m) {
          return m.delivered_packets
                     ? static_cast<double>(m.source_retransmissions) /
                           static_cast<double>(m.delivered_packets)
                     : 0.0;
        });
        const auto hits = exp::aggregate(runs, [](const exp::RunMetrics& m) {
          return m.delivered_packets
                     ? static_cast<double>(m.cache_retransmissions) /
                           static_cast<double>(m.delivered_packets)
                     : 0.0;
        });
        cache_points.push_back({speed, rtx, hits});
      }
    }
    row.insert(row.end(), goodput_cells.begin(), goodput_cells.end());
    rep.row(std::move(row));
  }
  bench::finish_report(rep);

  std::printf("\n");
  auto repc = bench::make_report(
      opt, "(c) end-to-end vs locally recovered packets (JTP), normalized "
           "by delivered data",
      {{"speed_mps", 1}, {"source_rtx", 4, true}, {"cache_hits", 4, true}},
      16, "cache");
  repc.begin();
  for (const auto& p : cache_points)
    repc.row({p.speed, p.src_rtx, p.cache_hits});
  bench::finish_report(repc);

  std::printf("\nexpected shape: energy/bit rises with speed for all; jtp "
              "stays lowest; cache hits remain a large share of recoveries "
              "even under mobility.\n");
  return 0;
}
