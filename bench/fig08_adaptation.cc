// Figure 8 (paper §5.2.3): PI^2/MD rate adaptation of two competing flows
// and the flip-flop path monitor's view of the available rate.
//
// Flow 1 is long-lived; flow 2 starts at t=1000 s and stops at t=1250 s.
// Printed: (a) instantaneous throughput of both flows around the
// transient; (b) flow 1's path-monitor trace (reported sample, mean,
// control limits) showing the agile filter catching the change.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/stats.h"

using namespace jtp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "Figure 8 traces JTP's PI^2/MD adaptation");
  const double t_start2 = 1000.0, t_end2 = 1250.0;
  const double duration = 1600.0;

  std::printf("=== Figure 8: rate adaptation for two competing JTP flows ===\n");
  std::printf("flow2 active on [%.0f, %.0f] s\n\n", t_start2, t_end2);

  exp::ScenarioSpec spec;
  spec.fading = false;  // isolate the adaptation dynamics, as the paper does
  spec.loss_good = 0.02;
  bench::apply_scenario(opt, spec);
  spec.seed = opt.seed;
  auto scenario = exp::build(spec);
  auto& net = *scenario.network;
  auto& fm = *scenario.flows;
  const auto last = static_cast<core::NodeId>(spec.net_size - 1);

  auto& f1 = fm.create(0, last, 0);
  auto& f2 = fm.create(0, last, 0, t_start2);
  net.simulator().schedule(t_end2, [&f2] { f2.stop(); });

  sim::TimeSeries rx1, rx2;
  f1.receiver_as<core::EjtpReceiver>()->set_on_deliver(
      [&](core::SeqNo, std::uint32_t) { rx1.add(net.simulator().now(), 1.0); });
  f2.receiver_as<core::EjtpReceiver>()->set_on_deliver(
      [&](core::SeqNo, std::uint32_t) { rx2.add(net.simulator().now(), 1.0); });

  // Sample flow 1's path monitor once a second.
  struct MonitorSample {
    double t, reported, mean, ucl, lcl, advertised;
  };
  std::vector<MonitorSample> mon;
  struct Sampler {
    net::Network* net;
    exp::FlowManager::FlowHandle* f1;
    std::vector<MonitorSample>* mon;
    double until;
    void operator()() const {
      const auto* rcv = f1->receiver_as<core::EjtpReceiver>();
      const auto& m = rcv->rate_monitor();
      if (m.initialized())
        mon->push_back({net->simulator().now(), m.last_sample(), m.mean(),
                        m.ucl(), m.lcl(), rcv->advertised_rate_pps()});
      if (net->simulator().now() < until)
        net->simulator().schedule(1.0, *this);
    }
  };
  net.simulator().schedule(1.0, Sampler{&net, &f1, &mon, duration});

  net.run_until(duration);

  auto rep = bench::make_report(
      opt, "(a) instantaneous throughput (10 s buckets)",
      {{"time_s", 0}, {"flow1_pps", 2}, {"flow2_pps", 2}}, 12, "throughput");
  rep.begin();
  const auto r1 = rx1.bucket_rate(duration, 10.0);
  const auto r2 = rx2.bucket_rate(duration, 10.0);
  for (std::size_t i = 0; i < r1.size(); ++i)
    rep.row({r1[i].t, r1[i].v, r2[i].v}, /*echo=*/i % 5 == 0);
  bench::finish_report(rep);

  // Fairness during the overlap window.
  const double b1 = rx1.sum_in_window(t_end2, t_end2 - t_start2 - 50.0);
  const double b2 = rx2.sum_in_window(t_end2, t_end2 - t_start2 - 50.0);
  std::printf("\npackets in overlap window: flow1=%.0f flow2=%.0f "
              "(ratio %.2f; ~1 = fair convergence)\n",
              b1, b2, b1 / std::max(1.0, b2));

  std::printf("\n");
  auto repm = bench::make_report(
      opt, "(b) flow1 path-monitor trace around flow2 arrival",
      {{"t", 0},
       {"reported", 3},
       {"mean", 3},
       {"ucl", 3},
       {"lcl", 3},
       {"advertised", 3}},
      10, "monitor");
  repm.begin();
  std::printf("(stdout shows the windows around the transient; the CSV has "
              "the full trace)\n");
  for (const auto& s : mon) {
    const bool in_window =
        (s.t >= 990 && s.t <= 1030) || (s.t >= 1245 && s.t <= 1270);
    repm.row({s.t, s.reported, s.mean, s.ucl, s.lcl, s.advertised},
             /*echo=*/in_window);
  }
  bench::finish_report(repm);
  std::printf("\nexpected shape: flow1's rate halves while flow2 is active "
              "and recovers after it leaves; the monitor mean catches the "
              "reported drop quickly (agile filter).\n");
  return 0;
}
