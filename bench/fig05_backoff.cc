// Figure 5 (paper §4.2): fairness of the source back-off for in-network
// (cache) retransmissions.
//
// Two competing flows over a lossy linear network: flow 1 is UDP-like
// (100% loss tolerance, never requests retransmissions); flow 2 requires
// full reliability and so exercises the caches. With back-off, flow 2's
// source compensates for the cache traffic sent on its behalf and the two
// flows' reception rates stay balanced; without it, flow 2 shows rate
// spikes and squeezes flow 1 (visible in the long-term average).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/stats.h"

using namespace jtp;

namespace {

struct SeriesPair {
  sim::TimeSeries f1, f2;
  double goodput1 = 0, goodput2 = 0;
  std::uint64_t cache_rtx = 0;
};

SeriesPair run_case(const exp::ScenarioSpec& base, bool backoff,
                    std::uint64_t seed, double duration) {
  auto spec = base;
  spec.seed = seed;
  auto s = exp::build(spec);
  auto& net = *s.network;
  auto& fm = *s.flows;

  const auto last = static_cast<core::NodeId>(spec.net_size - 1);
  exp::FlowOptions udp_like;
  udp_like.loss_tolerance = 1.0;  // tolerate everything: no SNACKs
  auto& f1 = fm.create(0, last, 0, 0.0, udp_like);

  exp::FlowOptions reliable;
  reliable.loss_tolerance = 0.0;
  reliable.backoff_for_local_recovery = backoff;
  auto& f2 = fm.create(0, last, 0, 0.0, reliable);

  SeriesPair out;
  f1.receiver_as<core::EjtpReceiver>()->set_on_deliver(
      [&](core::SeqNo, std::uint32_t) { out.f1.add(net.simulator().now(), 1.0); });
  f2.receiver_as<core::EjtpReceiver>()->set_on_deliver(
      [&](core::SeqNo, std::uint32_t) { out.f2.add(net.simulator().now(), 1.0); });

  net.run_until(duration);
  out.goodput1 = f1.delivered_bits() / duration / 1e3;
  out.goodput2 = f2.delivered_bits() / duration / 1e3;
  out.cache_rtx = net.total_cache_retransmissions();
  return out;
}

void print_series(const bench::Options& opt, const std::string& title,
                  const std::string& section, const SeriesPair& sp,
                  double duration, double bucket) {
  auto rep = bench::make_report(
      opt, title, {{"time_s", 0}, {"flow1_pps", 2}, {"flow2_pps", 2}}, 12,
      section);
  rep.begin();
  const auto r1 = sp.f1.bucket_rate(duration, bucket);
  const auto r2 = sp.f2.bucket_rate(duration, bucket);
  for (std::size_t i = 0; i < r1.size(); ++i)
    rep.row({r1[i].t, r1[i].v, r2[i].v}, /*echo=*/i % 2 == 0);
  bench::finish_report(rep);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "Figure 5 measures JTP's source back-off");
  const double duration = opt.pick_duration(600.0, 1800.0);

  // Frequent bad dwells make flow2's local recovery a substantial share
  // of the traffic, which is what the back-off compensates for.
  exp::ScenarioSpec base;
  base.net_size = 6;
  base.loss_bad = 0.75;
  base.loss_good = 0.10;
  base.bad_fraction = 0.25;
  bench::apply_scenario(opt, base);

  std::printf("=== Figure 5: source back-off for locally recovered packets ===\n");
  std::printf("flow1: UDP-like (lt=100%%); flow2: reliable (lt=0%%); lossy "
              "6-node chain, %.0f s\n\n", duration);

  const std::size_t n_runs = opt.pick_runs(3, 10);
  const auto with = run_case(base, /*backoff=*/true, opt.seed, duration);
  const auto without = run_case(base, /*backoff=*/false, opt.seed, duration);

  print_series(opt, "(a) with back-off: short-term reception rate", "with",
               with, duration, duration / 20.0);
  std::printf("\n");
  print_series(opt, "(b) without back-off: short-term reception rate",
               "without", without, duration, duration / 20.0);

  // Multi-seed averages for the long-term comparison.
  struct LongTerm {
    SeriesPair with_backoff, without_backoff;
  };
  auto runs = exp::run_seeds_as(
      n_runs, opt.seed,
      [&](std::uint64_t s) {
        return LongTerm{run_case(base, true, s, duration),
                        run_case(base, false, s, duration)};
      },
      opt.jobs);

  sim::Summary g1w, g2w, g1wo, g2wo;
  std::uint64_t rtx_w = 0, rtx_wo = 0;
  for (const auto& r : runs) {
    g1w.add(r.with_backoff.goodput1);
    g2w.add(r.with_backoff.goodput2);
    g1wo.add(r.without_backoff.goodput1);
    g2wo.add(r.without_backoff.goodput2);
    rtx_w += r.with_backoff.cache_rtx;
    rtx_wo += r.without_backoff.cache_rtx;
  }

  std::printf("\n");
  auto rep = bench::make_report(
      opt, "long-term goodput (kbps, mean of " + std::to_string(n_runs) +
               " runs)",
      {{"variant", 3},
       {"flow1_kbps", 3, true},
       {"flow2_kbps", 3, true},
       {"flow2_over_flow1", 2}},
      18, "longterm");
  rep.begin();
  rep.row({"with back-off",
           exp::Aggregate{g1w.mean(), g1w.ci95_halfwidth(), g1w.count()},
           exp::Aggregate{g2w.mean(), g2w.ci95_halfwidth(), g2w.count()},
           g2w.mean() / std::max(1e-9, g1w.mean())});
  rep.row({"without back-off",
           exp::Aggregate{g1wo.mean(), g1wo.ci95_halfwidth(), g1wo.count()},
           exp::Aggregate{g2wo.mean(), g2wo.ci95_halfwidth(), g2wo.count()},
           g2wo.mean() / std::max(1e-9, g1wo.mean())});
  bench::finish_report(rep);
  std::printf("\ncache retransmissions (all runs): with=%llu, without=%llu\n",
              static_cast<unsigned long long>(rtx_w),
              static_cast<unsigned long long>(rtx_wo));
  std::printf("expected shape: the ratio is closer to 1 with back-off; "
              "without it, flow2 rides its cache traffic above its share.\n");
  return 0;
}
