// Figure 5 (paper §4.2): fairness of the source back-off for in-network
// (cache) retransmissions.
//
// Two competing flows over a lossy linear network: flow 1 is UDP-like
// (100% loss tolerance, never requests retransmissions); flow 2 requires
// full reliability and so exercises the caches. With back-off, flow 2's
// source compensates for the cache traffic sent on its behalf and the two
// flows' reception rates stay balanced; without it, flow 2 shows rate
// spikes and squeezes flow 1 (visible in the long-term average).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/stats.h"

using namespace jtp;

namespace {

struct SeriesPair {
  sim::TimeSeries f1, f2;
  double goodput1 = 0, goodput2 = 0;
  std::uint64_t cache_rtx = 0;
};

SeriesPair run_case(bool backoff, std::uint64_t seed, double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = exp::Proto::kJtp;
  // Frequent bad dwells make flow2's local recovery a substantial share
  // of the traffic, which is what the back-off compensates for.
  sc.loss_bad = 0.75;
  sc.loss_good = 0.10;
  sc.bad_fraction = 0.25;
  auto net = exp::make_linear(6, sc);
  exp::FlowManager fm(*net, exp::Proto::kJtp);

  exp::FlowOptions udp_like;
  udp_like.loss_tolerance = 1.0;  // tolerate everything: no SNACKs
  auto& f1 = fm.create(0, 5, 0, 0.0, udp_like);

  exp::FlowOptions reliable;
  reliable.loss_tolerance = 0.0;
  reliable.backoff_for_local_recovery = backoff;
  auto& f2 = fm.create(0, 5, 0, 0.0, reliable);

  SeriesPair out;
  f1.jtp.receiver->set_on_deliver(
      [&](core::SeqNo, std::uint32_t) { out.f1.add(net->simulator().now(), 1.0); });
  f2.jtp.receiver->set_on_deliver(
      [&](core::SeqNo, std::uint32_t) { out.f2.add(net->simulator().now(), 1.0); });

  net->run_until(duration);
  out.goodput1 = f1.delivered_bits() / duration / 1e3;
  out.goodput2 = f2.delivered_bits() / duration / 1e3;
  out.cache_rtx = net->total_cache_retransmissions();
  return out;
}

void print_series(const SeriesPair& sp, double duration, double bucket) {
  const auto r1 = sp.f1.bucket_rate(duration, bucket);
  const auto r2 = sp.f2.bucket_rate(duration, bucket);
  std::printf("%10s %12s %12s\n", "time(s)", "flow1(pps)", "flow2(pps)");
  for (std::size_t i = 0; i < r1.size(); i += 2)
    std::printf("%10.0f %12.2f %12.2f\n", r1[i].t, r1[i].v, r2[i].v);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const double duration = opt.pick_duration(600.0, 1800.0);

  std::printf("=== Figure 5: source back-off for locally recovered packets ===\n");
  std::printf("flow1: UDP-like (lt=100%%); flow2: reliable (lt=0%%); lossy "
              "6-node chain, %.0f s\n\n", duration);

  const std::size_t n_runs = opt.pick_runs(3, 10);
  const auto with = run_case(/*backoff=*/true, opt.seed, duration);
  const auto without = run_case(/*backoff=*/false, opt.seed, duration);

  std::printf("--- (a) with back-off: short-term reception rate ---\n");
  print_series(with, duration, duration / 20.0);
  std::printf("\n--- (b) without back-off: short-term reception rate ---\n");
  print_series(without, duration, duration / 20.0);

  // Multi-seed averages for the long-term comparison.
  double g1w = 0, g2w = 0, g1wo = 0, g2wo = 0;
  std::uint64_t rtx_w = 0, rtx_wo = 0;
  for (std::size_t r = 0; r < n_runs; ++r) {
    const auto a = run_case(true, opt.seed + 777 * (r + 1), duration);
    const auto b = run_case(false, opt.seed + 777 * (r + 1), duration);
    g1w += a.goodput1 / n_runs;
    g2w += a.goodput2 / n_runs;
    g1wo += b.goodput1 / n_runs;
    g2wo += b.goodput2 / n_runs;
    rtx_w += a.cache_rtx;
    rtx_wo += b.cache_rtx;
  }
  std::printf("\n--- long-term goodput (kbps, mean of %zu runs) ---\n",
              n_runs);
  std::printf("%22s %10s %10s %14s\n", "", "flow1", "flow2", "flow2/flow1");
  std::printf("%22s %10.3f %10.3f %14.2f\n", "with back-off", g1w, g2w,
              g2w / std::max(1e-9, g1w));
  std::printf("%22s %10.3f %10.3f %14.2f\n", "without back-off", g1wo, g2wo,
              g2wo / std::max(1e-9, g1wo));
  std::printf("\ncache retransmissions (all runs): with=%llu, without=%llu\n",
              static_cast<unsigned long long>(rtx_w),
              static_cast<unsigned long long>(rtx_wo));
  std::printf("expected shape: the ratio is closer to 1 with back-off; "
              "without it, flow2 rides its cache traffic above its share.\n");
  return 0;
}
