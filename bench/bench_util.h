// Shared helpers for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --full        paper-scale durations and seed counts (slower)
//   --seed N      base seed (default 1)
//   --runs N      override the number of independent runs
//   --csv PATH    also write the series to a CSV file
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

namespace jtp::bench {

struct Options {
  bool full = false;
  std::uint64_t seed = 1;
  std::optional<std::size_t> runs;
  std::string csv_path;

  std::size_t pick_runs(std::size_t quick, std::size_t paper) const {
    if (runs) return *runs;
    return full ? paper : quick;
  }
  double pick_duration(double quick, double paper) const {
    return full ? paper : quick;
  }
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      o.full = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      o.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      o.runs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      o.csv_path = argv[++i];
    }
  }
  return o;
}

}  // namespace jtp::bench
