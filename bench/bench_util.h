// Shared helpers for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --full            paper-scale durations and seed counts (slower)
//   --seed N          base seed (default 1)
//   --runs N          override the number of independent runs
//   --jobs N          seed-level parallelism (default: one per hw thread)
//   --csv PATH        also write the result series to CSV file(s)
//   --proto NAME      restrict/override the protocol under test
//   --scenario SPEC   key=value overrides for the bench's base scenario
//   --help            print usage and exit
//
// Unknown flags — and unknown --proto names or --scenario keys — are an
// error (exit 2 with usage), not silently ignored: a typo like --job must
// not turn a parallel baseline run into a serial one that silently
// measures something else.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.h"
#include "exp/scenario.h"

namespace jtp::bench {

struct Options {
  bool full = false;
  std::uint64_t seed = 1;
  std::optional<std::size_t> runs;
  std::string csv_path;
  std::size_t jobs = 0;  // 0 = auto (one job per hardware thread)
  std::optional<exp::Proto> proto;  // --proto; unset = bench default
  std::string scenario;  // --scenario tokens (validated at parse time)
  // --shards: event-loop shards per run (unset = the scenario's value).
  // Results are byte-identical across values; only wall clock changes.
  std::optional<std::size_t> shards;

  std::size_t pick_runs(std::size_t quick, std::size_t paper) const {
    if (runs) return *runs;
    return full ? paper : quick;
  }
  double pick_duration(double quick, double paper) const {
    return full ? paper : quick;
  }

  // The bench's protocol list, unless --proto restricts it to one.
  std::vector<exp::Proto> protos_or(std::vector<exp::Proto> defaults) const {
    if (proto) return {*proto};
    return defaults;
  }
  exp::Proto proto_or(exp::Proto fallback) const {
    return proto.value_or(fallback);
  }
};

// Outcome of parsing: either a usable Options, a help request, or an
// error message. Kept exit-free so tests can exercise the parser.
struct ParseResult {
  Options options;
  bool help = false;
  std::string error;  // non-empty => parse failed

  bool ok() const { return error.empty(); }
};

inline const char* usage_text() {
  return
      "  --full            paper-scale durations and seed counts (slower)\n"
      "  --seed N          base seed (default 1)\n"
      "  --runs N          override the number of independent runs\n"
      "  --jobs N          run seeds on N threads (default: hw threads)\n"
      "  --csv PATH        also write the result series to CSV file(s);\n"
      "                    multi-table benches derive PATH.<section>.csv\n"
      "  --proto NAME      protocol override: jtp, jnc, tcp, atp, jtp_ff, jtp_dr or bbr\n"
      "  --shards N        run each simulation on N event-loop shards\n"
      "                    (results are byte-identical across N; needs a\n"
      "                    static topology and a non-CSMA MAC when N > 1)\n"
      "  --scenario SPEC   comma-separated key=value scenario overrides\n"
      "                    (first token may name a preset: linear, random,\n"
      "                    mobile, testbed, scale), e.g.\n"
      "                    --scenario 'net_size=12,loss_good=0.1' or\n"
      "                    --scenario 'mac=tdma_reuse' (tdma, tdma_reuse,\n"
      "                    csma)\n"
      "  --help            show this message\n";
}

inline ParseResult parse_args(int argc, char** argv) {
  ParseResult r;
  auto numeric = [&](const char* flag, int& i, std::uint64_t& out) {
    if (i + 1 >= argc) {
      r.error = std::string(flag) + " requires a value";
      return false;
    }
    const char* arg = argv[++i];
    // Digits only: strtoull would silently wrap "-1" to 2^64-1.
    bool all_digits = *arg != '\0';
    for (const char* p = arg; *p; ++p)
      if (*p < '0' || *p > '9') all_digits = false;
    if (!all_digits) {
      r.error = std::string(flag) + ": '" + arg +
                "' is not a non-negative integer";
      return false;
    }
    char* end = nullptr;
    errno = 0;
    out = std::strtoull(arg, &end, 10);
    if (errno == ERANGE) {  // reject silent saturation to ULLONG_MAX
      r.error = std::string(flag) + ": '" + arg + "' is out of range";
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::uint64_t v = 0;
    if (std::strcmp(argv[i], "--full") == 0) {
      r.options.full = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      r.help = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!numeric("--seed", i, v)) return r;
      r.options.seed = v;
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      if (!numeric("--runs", i, v)) return r;
      if (v == 0) {
        r.error = "--runs must be at least 1";
        return r;
      }
      r.options.runs = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (!numeric("--jobs", i, v)) return r;
      r.options.jobs = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (!numeric("--shards", i, v)) return r;
      if (v == 0) {
        r.error = "--shards must be at least 1";
        return r;
      }
      r.options.shards = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      if (i + 1 >= argc) {
        r.error = "--csv requires a path";
        return r;
      }
      r.options.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--proto") == 0) {
      if (i + 1 >= argc) {
        r.error = "--proto requires a protocol name";
        return r;
      }
      const auto p = core::parse_proto(argv[++i]);
      if (!p) {
        r.error = std::string("--proto: unknown protocol '") + argv[i] +
                  "' (known: jtp, jnc, tcp, atp, jtp_ff, jtp_dr, bbr)";
        return r;
      }
      r.options.proto = *p;
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      if (i + 1 >= argc) {
        r.error = "--scenario requires a key=value spec";
        return r;
      }
      r.options.scenario = argv[++i];
      // Validate now (against a scratch spec) so a typo fails before any
      // simulation time is spent; benches re-apply onto their own base.
      exp::ScenarioSpec scratch;
      const auto err = exp::apply_scenario_tokens(scratch,
                                                  r.options.scenario);
      if (!err.empty()) {
        r.error = "--scenario: " + err;
        return r;
      }
      // Protocol and seed have dedicated, bench-aware flags; a proto= or
      // seed= token would bypass per-bench protocol guards (or be
      // silently overwritten by the sweep) — exactly the "measures
      // something else" failure this parser exists to prevent.
      if (scratch.proto != exp::ScenarioSpec{}.proto) {
        r.error = "--scenario: set the protocol with --proto, not proto=";
        return r;
      }
      if (scratch.seed != exp::ScenarioSpec{}.seed) {
        r.error = "--scenario: set the seed with --seed, not seed=";
        return r;
      }
    } else {
      r.error = std::string("unknown flag '") + argv[i] + "'";
      return r;
    }
  }
  return r;
}

// Parses or exits: usage+0 on --help, error+usage+2 on a bad flag.
inline Options parse_options(int argc, char** argv) {
  const auto r = parse_args(argc, argv);
  if (r.help) {
    std::printf("usage: %s [options]\n%s", argv[0], usage_text());
    std::exit(0);
  }
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\nusage: %s [options]\n%s",
                 r.error.c_str(), argv[0], usage_text());
    std::exit(2);
  }
  return r.options;
}

// Section-qualified CSV path for benches that emit several tables:
// ("out.csv", "b") -> "out.b.csv"; no extension appends ".b". An empty
// section returns the base path unchanged.
inline std::string csv_section_path(const std::string& base,
                                    const std::string& section) {
  if (section.empty()) return base;
  const auto slash = base.find_last_of('/');
  const auto dot = base.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + "." + section;
  return base.substr(0, dot) + "." + section + base.substr(dot);
}

// Builds a Report on stdout; when --csv was given, attaches the
// section-qualified path and exits(1) if it cannot be opened (before any
// simulation time is spent).
inline exp::Report make_report(const Options& opt, std::string title,
                               std::vector<sim::Column> cols, int width = 14,
                               const std::string& section = "") {
  exp::Report rep(std::cout, std::move(title), std::move(cols), width);
  if (!opt.csv_path.empty()) {
    const auto path = csv_section_path(opt.csv_path, section);
    if (!rep.to_csv(path)) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   path.c_str());
      std::exit(1);
    }
  }
  return rep;
}

// Flushes the report's CSV and exits(1) on a failed write — a truncated
// CSV must not look like a successful run to the baseline tooling.
inline void finish_report(exp::Report& rep) {
  if (!rep.finish()) {
    std::fprintf(stderr, "error: CSV write to %s failed\n",
                 rep.csv_path().c_str());
    std::exit(1);
  }
}

// Overlays the user's --scenario tokens onto the bench's base spec. The
// tokens were validated at parse time; a failure here means they conflict
// with this bench's base (e.g. a bad preset combination) and is fatal.
// Belt-and-braces: proto/seed changes are re-rejected against the bench's
// own base, mirroring the parse-time check.
inline void apply_scenario(const Options& opt, exp::ScenarioSpec& spec) {
  if (opt.scenario.empty()) return;
  auto updated = spec;
  const auto err = exp::apply_scenario_tokens(updated, opt.scenario);
  if (!err.empty()) {
    std::fprintf(stderr, "error: --scenario: %s\n", err.c_str());
    std::exit(2);
  }
  if (updated.proto != spec.proto) {
    std::fprintf(stderr,
                 "error: --scenario: set the protocol with --proto\n");
    std::exit(2);
  }
  if (updated.seed != spec.seed) {
    std::fprintf(stderr, "error: --scenario: set the seed with --seed\n");
    std::exit(2);
  }
  spec = std::move(updated);
}

// Sweep collapse: when --scenario overrides a field the bench sweeps
// (e.g. net_size in fig09), the sweep honors the override by collapsing
// to that single point — an accepted key must never be silently
// clobbered by the bench's own loop.
template <typename T>
std::vector<T> sweep_or(const T& value, const T& base_default,
                        std::vector<T> sweep) {
  if (!(value == base_default)) return {value};
  return sweep;
}

// For benches whose measurement is specific to one protocol (ablations,
// single-protocol figures): reject a --proto that asks for anything else
// instead of silently ignoring it.
inline void require_proto(const Options& opt, exp::Proto required,
                          const char* why) {
  if (!opt.proto || *opt.proto == required) return;
  std::fprintf(stderr, "error: --proto %s is not supported here: %s\n",
               exp::proto_name(*opt.proto).c_str(), why);
  std::exit(2);
}

// For benches with no scenario at all (closed-form analyses): reject
// --scenario/--proto outright.
inline void reject_scenario_flags(const Options& opt, const char* why) {
  if (opt.proto) {
    std::fprintf(stderr, "error: --proto is not supported here: %s\n", why);
    std::exit(2);
  }
  if (!opt.scenario.empty()) {
    std::fprintf(stderr, "error: --scenario is not supported here: %s\n",
                 why);
    std::exit(2);
  }
}

}  // namespace jtp::bench
