// Figure 7 (paper §5.1): variable-rate vs constant-rate feedback.
//
// 8-node linear network, one long-lived flow competing with a stream of
// short-lived flows. Sweeping the constant feedback rate:
//   * high rates inflate total energy (each ACK costs 200 B per hop);
//   * low rates react too slowly to congestion from arriving short flows,
//     so intermediate queues overflow.
// JTP's variable feedback should sit at-or-below the best constant rate on
// energy while keeping queue drops near the minimum.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/stats.h"

using namespace jtp;

namespace {

struct Outcome {
  double energy_mj = 0;
  double queue_drops = 0;
  double acks = 0;
  double completion_s = 0;
};

Outcome one_run(const exp::ScenarioSpec& base, core::FeedbackMode mode,
                double fb_rate, std::uint64_t seed, double duration,
                std::uint64_t long_flow_packets) {
  auto spec = base;
  spec.seed = seed;
  auto scenario = exp::build(spec);
  auto& net = *scenario.network;
  auto& fm = *scenario.flows;

  // Fixed-size long transfer: every feedback configuration must deliver
  // the same application data, so energy differences come from control
  // overhead and congestion waste, not from "sending less".
  exp::FlowOptions long_opt;
  long_opt.feedback_mode = mode;
  long_opt.constant_feedback_rate_pps = fb_rate;
  const auto last = static_cast<core::NodeId>(spec.net_size - 1);
  auto& long_flow = fm.create(0, last, long_flow_packets, 0.0, long_opt);

  // Short-lived cross traffic: a 60-packet transfer between mid-path
  // neighbors every ~120 s, bursty enough to congest the chain.
  sim::Rng arrivals = net.rng().derive("short-flows");
  double t = 50.0;
  int idx = 0;
  while (t < duration - 60.0) {
    exp::FlowOptions short_opt;
    short_opt.feedback_mode = mode;
    short_opt.constant_feedback_rate_pps = fb_rate;
    short_opt.initial_rate_pps = 2.0;
    const core::NodeId src = 2 + (idx % 3);  // 2..4
    fm.create(src, src + 2, 60, t, short_opt);
    t += arrivals.exponential(120.0);
    ++idx;
  }
  // Run until the long transfer completes (bounded by 3x the horizon).
  double now = 0.0;
  while (!long_flow.finished() && now < 3.0 * duration) {
    now += 50.0;
    net.run_until(now);
  }
  net.run_until(now + 10.0);  // drain in-flight ACKs
  const auto m = fm.collect(now + 10.0);
  return Outcome{m.total_energy_j * 1e3,
                 static_cast<double>(m.queue_drops),
                 static_cast<double>(m.acks_sent), now};
}

struct Row {
  exp::Aggregate energy, drops, acks, done;
};

Row run_case(const exp::ScenarioSpec& base, core::FeedbackMode mode,
             double fb_rate, std::uint64_t seed, std::size_t n_runs,
             double duration, std::uint64_t long_flow_packets,
             std::size_t jobs) {
  auto runs = exp::run_seeds_as(
      n_runs, seed,
      [&](std::uint64_t s) {
        return one_run(base, mode, fb_rate, s, duration, long_flow_packets);
      },
      jobs);
  auto agg = [&](double Outcome::*field) {
    sim::Summary sum;
    for (const auto& r : runs) sum.add(r.*field);
    return exp::Aggregate{sum.mean(), sum.ci95_halfwidth(), sum.count()};
  };
  return Row{agg(&Outcome::energy_mj), agg(&Outcome::queue_drops),
             agg(&Outcome::acks), agg(&Outcome::completion_s)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "Figure 7 sweeps JTP's feedback modes");
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(900.0, 2500.0);

  exp::ScenarioSpec base;
  base.net_size = 8;
  base.queue_capacity_packets = 25;
  bench::apply_scenario(opt, base);
  if (base.net_size < 7) {
    // The short-lived cross traffic runs between mid-path neighbors
    // (nodes 2..4 -> +2); smaller chains have no such mid-path.
    std::fprintf(stderr,
                 "error: --scenario: fig07's mid-path cross traffic needs "
                 "net_size >= 7 (got %zu)\n",
                 base.net_size);
    return 2;
  }

  std::printf("=== Figure 7: variable vs constant feedback rate ===\n");
  std::printf("8-node linear, long-lived flow + short-lived cross traffic, "
              "%.0f s, %zu runs\n\n", duration, n_runs);

  const std::uint64_t k = opt.full ? 1200 : 600;
  auto rep = bench::make_report(opt, "",
                                {{"feedback", 1},
                                 {"energy_mj", 1, true},
                                 {"queue_drops", 1, true},
                                 {"acks", 0, true},
                                 {"done_s", 0, true}},
                                16);
  rep.begin();
  for (double rate : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    const auto o = run_case(base, core::FeedbackMode::kConstant, rate,
                            opt.seed, n_runs, duration, k, opt.jobs);
    char label[32];
    std::snprintf(label, sizeof label, "const %.2f", rate);
    rep.row({std::string(label), o.energy, o.drops, o.acks, o.done});
  }
  const auto v = run_case(base, core::FeedbackMode::kVariable, 0.0, opt.seed,
                          n_runs, duration, k, opt.jobs);
  rep.row({"variable", v.energy, v.drops, v.acks, v.done});
  bench::finish_report(rep);

  std::printf("\nexpected shape: energy grows with constant feedback rate; "
              "queue drops grow as it shrinks; variable feedback achieves "
              "low energy AND low drops simultaneously.\n");
  return 0;
}
