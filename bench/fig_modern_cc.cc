// Modern congestion control vs the paper's protocols, across scenario
// families and MAC disciplines.
//
// The paper's evaluation predates delivery-rate congestion control; this
// bench sets its protocols (jtp, tcp, atp) against the two transports
// built on core/rate_sample.h — jtp_dr (JTP's PI²/MD fed by the
// sender-side delivery-rate estimate) and bbr (model-based pacing over
// the TCP-SACK feedback channel) — under identical conditions: one
// section per preset (linear, random, mobile, scale), one row per MAC,
// same seeds for every protocol.
//
// A bare preset name as the first --scenario token collapses the section
// list to that preset (CI runs `--runs 1 --scenario scale` as a smoke).
// Per-protocol columns: delivered packets, mean per-flow goodput, and
// Jain's fairness index over per-flow delivered packets.
//
// Like scale_sweep, this bench is excluded from the committed-baseline
// suite: it exists for cross-protocol comparison, not regression pinning
// (its protocol set is expected to keep growing).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

struct PresetPlan {
  const char* name;
  double quick_s;
  double full_s;
};

// The scale preset runs 100 nodes with an 8-way fan-in — 60 simulated
// seconds already separates the controllers (same operating point as
// scale_sweep's quick tier); the small paper presets need the long
// horizon for loss/mobility episodes to matter.
constexpr PresetPlan kPresets[] = {
    {"linear", 1000.0, 4000.0},
    {"random", 1000.0, 4000.0},
    {"mobile", 1000.0, 4000.0},
    {"scale", 60.0, 300.0},
};

exp::RunMetrics one_run(exp::ScenarioSpec spec, exp::Proto proto,
                        std::uint64_t seed, double duration) {
  spec.proto = proto;
  spec.seed = seed;  // same seed for every protocol => same substrate
  auto s = exp::build(spec);
  s.network->run_until(duration);
  return s.flows->collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(1, 3);

  const auto protos = opt.protos_or({exp::Proto::kJtp, exp::Proto::kTcp,
                                     exp::Proto::kAtp, exp::Proto::kJtpDr,
                                     exp::Proto::kBbr});

  // A bare preset name leading --scenario selects that single section.
  std::string only_preset;
  if (!opt.scenario.empty()) {
    const auto head = opt.scenario.substr(0, opt.scenario.find(','));
    if (head.find('=') == std::string::npos) only_preset = head;
  }

  std::printf("=== Modern congestion control vs paper protocols ===\n");
  std::printf("%zu run(s) per cell; same seeds across protocols\n\n",
              n_runs);

  for (const auto& plan : kPresets) {
    if (!only_preset.empty() && only_preset != plan.name) continue;
    const auto defaults = exp::preset(plan.name);
    auto base = defaults;
    bench::apply_scenario(opt, base);
    if (opt.shards) base.shards = *opt.shards;
    const double duration = opt.full ? plan.full_s : plan.quick_s;

    const auto macs = bench::sweep_or<mac::Mac>(
        base.mac, defaults.mac,
        {mac::Mac::kTdma, mac::Mac::kTdmaReuse, mac::Mac::kCsma});

    std::vector<sim::Column> cols{{"mac", 0}};
    for (const auto p : protos)
      cols.push_back({exp::proto_name(p) + "_pkts", 0});
    for (const auto p : protos)
      cols.push_back({exp::proto_name(p) + "_kbps", 3, true});
    for (const auto p : protos)
      cols.push_back({exp::proto_name(p) + "_jain", 3});
    char title[96];
    std::snprintf(title, sizeof title, "preset=%s, %.0f s simulated",
                  plan.name, duration);
    auto rep = bench::make_report(opt, title, std::move(cols), 15,
                                  plan.name);
    rep.begin();

    for (const mac::Mac m : macs) {
      auto spec = base;
      spec.mac = m;
      // CSMA's shared carrier and random-waypoint mobility cannot shard.
      if (m == mac::Mac::kCsma || spec.speed_mps > 0.0) spec.shards = 1;

      std::vector<sim::Cell> row{mac::mac_name(m)};
      std::vector<sim::Cell> goodput, jain;
      for (const auto proto : protos) {
        auto runs = exp::run_seeds(
            n_runs, opt.seed,
            [&](std::uint64_t s) { return one_run(spec, proto, s, duration); },
            opt.jobs);
        row.push_back(
            exp::aggregate(runs, [](const exp::RunMetrics& r) {
              return static_cast<double>(r.delivered_packets);
            }).mean);
        goodput.push_back(exp::aggregate(runs, [](const exp::RunMetrics& r) {
          return r.per_flow_goodput_kbps_mean;
        }));
        jain.push_back(
            exp::aggregate(runs, [](const exp::RunMetrics& r) {
              return r.jain_fairness;
            }).mean);
      }
      row.insert(row.end(), goodput.begin(), goodput.end());
      for (auto& c : jain) row.push_back(std::move(c));
      rep.row(std::move(row));
    }
    bench::finish_report(rep);
    std::printf("\n");
  }
  std::printf(
      "expected shape: jtp_dr and bbr match or beat tcp goodput on the\n"
      "scale preset under tdma_reuse (the delivery-rate model finds the\n"
      "reuse frame's capacity without loss-driven probing); jtp keeps its\n"
      "energy-per-bit edge everywhere it has in-network help.\n");
  return 0;
}
