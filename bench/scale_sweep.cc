// Scale sweep: control-plane and data-plane cost vs network size, per
// MAC discipline.
//
// Runs the "scale" preset — a large connected random field with a
// many-flow fan-in workload (k senders converging on node 0) — at
// n = 100/400 (quick) or 100/400/1000 (--full), once per registered CLI
// MAC (classic TDMA, spatial-reuse TDMA, CSMA/CA; --scenario mac=...
// collapses the sweep), and reports, per size: delivered packets,
// delivery and event rate per wall-clock second, the MAC's slot-reuse
// figures (colors = slots per frame, reuse = n/colors), routing work,
// and the pool high-water marks that pin the zero-allocation claim at
// scale. The headline contrast: classic TDMA throughput collapses as
// 1/(n·slot) while spatial reuse holds the frame at the interference
// chromatic bound, so aggregate delivery keeps growing with field area.
//
// A second leg re-runs every MAC under 1 m/s random waypoint (the
// scale_mobile preset) and reports the incremental-repair counters:
// rows_kept + rows_repaired > 0 is the in-bench proof that topology
// churn no longer discards the cached routing rows. Add speed=1 via
// --scenario to make the *main* sweep mobile instead (the extra leg then
// drops out), or workload=on_off,transfer=50 for bursty sources.
//
// Wall-clock columns are machine-dependent, so this bench is excluded
// from the committed-baseline suite (like micro_perf). --deterministic
// drops those columns — and the shard-count-dependent diagnostics
// (total events, per-shard routing row stats, pool high-waters) —
// leaving a byte-stable CSV that CI diffs across --jobs AND --shards
// values: the sharded event loop must not change a single result bit.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

struct ScaleRun {
  double wall_s = 0.0;
  double events = 0.0;
  double delivered = 0.0;
  double transmissions = 0.0;
  double queue_drops = 0.0;
  double attempt_drops = 0.0;
  double cache_rtx = 0.0;
  double colors = 0.0;
  double reuse = 1.0;
  double refreshes = 0.0;
  double snapshots = 0.0;
  double jain = 0.0;
  double p99_s = 0.0;
  double rows_built = 0.0;
  double row_reuses = 0.0;
  double rows_kept = 0.0;
  double rows_repaired = 0.0;
  double repair_visits = 0.0;
  double event_pool_hw = 0.0;
  double packet_pool_hw = 0.0;
};

ScaleRun one_run(exp::ScenarioSpec spec, std::size_t n, std::uint64_t seed,
                 double duration) {
  spec.net_size = n;
  spec.seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  auto s = exp::build(spec);
  s.network->run_until(duration);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  const auto m = s.flows->collect(duration);
  const auto& rs = s.network->routing().stats();
  const auto ms = s.network->mac_fabric().stats();
  ScaleRun r;
  r.wall_s = wall.count();
  r.events = static_cast<double>(s.network->total_events_executed());
  r.delivered = static_cast<double>(m.delivered_packets);
  r.transmissions = static_cast<double>(m.transmissions);
  r.queue_drops = static_cast<double>(m.queue_drops);
  r.attempt_drops = static_cast<double>(m.attempt_drops);
  r.cache_rtx = static_cast<double>(m.cache_retransmissions);
  r.colors = static_cast<double>(ms.colors_used);
  r.reuse = ms.reuse_factor;
  r.jain = m.jain_fairness;
  r.p99_s = m.p99_completion_s;
  r.refreshes = static_cast<double>(rs.refreshes);
  r.snapshots = static_cast<double>(rs.snapshots);
  r.rows_built = static_cast<double>(rs.rows_built);
  r.row_reuses = static_cast<double>(rs.row_reuses);
  r.rows_kept = static_cast<double>(rs.rows_kept);
  r.rows_repaired = static_cast<double>(rs.rows_repaired);
  r.repair_visits = static_cast<double>(rs.repair_visits);
  r.event_pool_hw =
      static_cast<double>(s.network->simulator().event_pool_stats().high_water);
  r.packet_pool_hw =
      static_cast<double>(s.network->packet_pool().stats().high_water);
  return r;
}

sim::Summary summarize(const std::vector<ScaleRun>& runs,
                       double ScaleRun::*field) {
  sim::Summary s;
  for (const auto& r : runs) s.add(r.*field);
  return s;
}

double mean_of(const std::vector<ScaleRun>& runs, double ScaleRun::*field) {
  return summarize(runs, field).mean();
}

}  // namespace

int main(int argc, char** argv) {
  // --deterministic is ours, not bench_util's: filter it out before the
  // strict flag parser sees it (micro_perf does the same split for the
  // benchmark library's flags).
  bool deterministic = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--deterministic") == 0) {
      deterministic = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const auto opt =
      bench::parse_options(static_cast<int>(args.size()), args.data());
  const std::size_t n_runs = opt.pick_runs(1, 3);
  const double duration = opt.pick_duration(60.0, 300.0);

  const auto defaults = exp::preset("scale");
  auto base = defaults;
  bench::apply_scenario(opt, base);
  base.proto = opt.proto_or(base.proto);
  if (opt.shards) base.shards = *opt.shards;
  const auto sizes = bench::sweep_or<std::size_t>(
      base.net_size, defaults.net_size,
      opt.full ? std::vector<std::size_t>{100, 400, 1000}
               : std::vector<std::size_t>{100, 400});
  const auto macs = bench::sweep_or<mac::Mac>(
      base.mac, defaults.mac,
      {mac::Mac::kTdma, mac::Mac::kTdmaReuse, mac::Mac::kCsma});

  std::printf("=== Scale sweep: cost vs network size, per MAC ===\n");
  std::printf("%s, %.0f s simulated, %zu run(s)\n\n",
              exp::to_string(base).c_str(), duration, n_runs);

  for (const mac::Mac m : macs) {
    auto spec = base;
    spec.mac = m;
    // Every MAC shards now — CSMA runs per-strip carrier domains coupled
    // through boundary mirrors, byte-identical to the shared-carrier loop.

    // Deterministic mode keeps only shard-count-invariant results: what
    // the simulation computed, never how the work was split (per-shard
    // control-plane replicas skew event totals, row stats and pool
    // high-waters, all of which stay visible in the normal mode).
    std::vector<sim::Column> cols{{"net_size", 0}};
    if (!deterministic) cols.push_back({"wall_s", 2, true});
    cols.push_back({"pkts", 0});
    if (!deterministic) {
      cols.push_back({"pkts_per_wall_s", 0});
      cols.push_back({"kevt_per_wall_s", 0});
    }
    for (const auto& c : std::vector<sim::Column>{{"xmits", 0},
                                                  {"queue_drops", 0},
                                                  {"attempt_drops", 0},
                                                  {"cache_rtx", 0},
                                                  {"colors", 0},
                                                  {"reuse", 2},
                                                  {"refreshes", 0},
                                                  {"snapshots", 0},
                                                  // per-flow distribution
                                                  // metrics: K-invariant
                                                  // (pure functions of
                                                  // per-flow counters), so
                                                  // they stay in the
                                                  // --deterministic set
                                                  {"jain", 3},
                                                  {"p99_done_s", 1}})
      cols.push_back(c);
    if (!deterministic)
      for (const auto& c : std::vector<sim::Column>{{"rows_built", 0},
                                                    {"row_reuses", 0},
                                                    {"ev_pool_hw", 0},
                                                    {"pkt_pool_hw", 0}})
        cols.push_back(c);
    auto rep = bench::make_report(opt, "mac=" + mac::mac_name(m),
                                  std::move(cols), 16, mac::mac_name(m));
    rep.begin();

    for (const std::size_t n : sizes) {
      const auto runs = exp::run_seeds_as(
          n_runs, opt.seed,
          [&](std::uint64_t s) { return one_run(spec, n, s, duration); },
          opt.jobs);
      double wall = 0.0, pkts = 0.0, events = 0.0;
      for (const auto& r : runs) {
        wall += r.wall_s;
        pkts += r.delivered;
        events += r.events;
      }
      std::vector<sim::Cell> row{static_cast<double>(n)};
      if (!deterministic) {
        const auto ws = summarize(runs, &ScaleRun::wall_s);
        row.push_back(sim::Cell(ws.mean(), ws.ci95_halfwidth()));
      }
      row.push_back(mean_of(runs, &ScaleRun::delivered));
      if (!deterministic) {
        row.push_back(wall > 0 ? pkts / wall : 0.0);
        row.push_back(wall > 0 ? events / wall / 1e3 : 0.0);
      }
      row.push_back(mean_of(runs, &ScaleRun::transmissions));
      row.push_back(mean_of(runs, &ScaleRun::queue_drops));
      row.push_back(mean_of(runs, &ScaleRun::attempt_drops));
      row.push_back(mean_of(runs, &ScaleRun::cache_rtx));
      row.push_back(mean_of(runs, &ScaleRun::colors));
      row.push_back(mean_of(runs, &ScaleRun::reuse));
      row.push_back(mean_of(runs, &ScaleRun::refreshes));
      row.push_back(mean_of(runs, &ScaleRun::snapshots));
      row.push_back(mean_of(runs, &ScaleRun::jain));
      row.push_back(mean_of(runs, &ScaleRun::p99_s));
      if (!deterministic) {
        row.push_back(mean_of(runs, &ScaleRun::rows_built));
        row.push_back(mean_of(runs, &ScaleRun::row_reuses));
        row.push_back(mean_of(runs, &ScaleRun::event_pool_hw));
        row.push_back(mean_of(runs, &ScaleRun::packet_pool_hw));
      }
      rep.row(row);
    }
    bench::finish_report(rep);
    std::printf("\n");
  }

  // Mobile leg: the same field under 1 m/s random waypoint (the
  // scale_mobile preset), one report per MAC, sharded like the static
  // legs (per-shard trajectory replicas + epoch-barrier migration).
  // The incremental-repair counters depend on which rows each shard's
  // replica has cached — how the work was split, not what the run
  // computed — so they sit with the other K-dependent diagnostics
  // outside the --deterministic CSV. Skipped when the base sweep is
  // already mobile (speed=... given via --scenario): the static legs
  // above then carry the churn, and this would duplicate them.
  if (base.speed_mps == 0.0) {
    for (const mac::Mac m : macs) {
      auto spec = base;
      spec.mac = m;
      spec.speed_mps = 1.0;
      std::vector<sim::Column> cols{{"net_size", 0}};
      if (!deterministic) cols.push_back({"wall_s", 2, true});
      cols.push_back({"pkts", 0});
      for (const auto& c : std::vector<sim::Column>{{"xmits", 0},
                                                    {"refreshes", 0},
                                                    {"snapshots", 0},
                                                    {"jain", 3},
                                                    {"p99_done_s", 1}})
        cols.push_back(c);
      if (!deterministic)
        for (const auto& c : std::vector<sim::Column>{{"rows_kept", 0},
                                                      {"rows_repaired", 0},
                                                      {"repair_visits", 0},
                                                      {"rows_built", 0}})
          cols.push_back(c);
      auto rep = bench::make_report(opt, "mobile mac=" + mac::mac_name(m),
                                    std::move(cols), 16,
                                    "mobile_" + mac::mac_name(m));
      rep.begin();
      for (const std::size_t n : sizes) {
        const auto runs = exp::run_seeds_as(
            n_runs, opt.seed,
            [&](std::uint64_t s) { return one_run(spec, n, s, duration); },
            opt.jobs);
        std::vector<sim::Cell> row{static_cast<double>(n)};
        if (!deterministic) {
          const auto ws = summarize(runs, &ScaleRun::wall_s);
          row.push_back(sim::Cell(ws.mean(), ws.ci95_halfwidth()));
        }
        row.push_back(mean_of(runs, &ScaleRun::delivered));
        row.push_back(mean_of(runs, &ScaleRun::transmissions));
        row.push_back(mean_of(runs, &ScaleRun::refreshes));
        row.push_back(mean_of(runs, &ScaleRun::snapshots));
        row.push_back(mean_of(runs, &ScaleRun::jain));
        row.push_back(mean_of(runs, &ScaleRun::p99_s));
        if (!deterministic) {
          row.push_back(mean_of(runs, &ScaleRun::rows_kept));
          row.push_back(mean_of(runs, &ScaleRun::rows_repaired));
          row.push_back(mean_of(runs, &ScaleRun::repair_visits));
          row.push_back(mean_of(runs, &ScaleRun::rows_built));
        }
        rep.row(row);
      }
      bench::finish_report(rep);
      std::printf("\n");
    }
  }

  std::printf(
      "expected shape: under mac=tdma, colors == n and per-flow delivery\n"
      "collapses as 1/(n*slot); under mac=tdma_reuse, colors tracks local\n"
      "density (reuse = n/colors grows with n), so aggregate pkts keeps\n"
      "growing with field area. rows_built stays near (sources on live\n"
      "paths) x (snapshots); the pool high-water marks grow with flows,\n"
      "not with net_size. In the mobile leg, rows_kept + rows_repaired\n"
      "track the rows that survived each churned refresh, and\n"
      "repair_visits / rows_repaired is the mean patched-subtree size\n"
      "(vs net_size for a from-scratch row).\n");
  return 0;
}
