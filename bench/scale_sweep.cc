// Scale sweep: control-plane and data-plane cost vs network size.
//
// Runs the "scale" preset — a large connected random field with a
// many-flow fan-in workload (k senders converging on node 0) — at
// n = 100/400 (quick) or 100/400/1000 (--full) and reports, per size:
// delivered packets, delivery and event rate per wall-clock second,
// routing work (view refreshes, snapshot copies, BFS rows built, row
// reuses), and the pool high-water marks that pin the zero-allocation
// claim at scale. Add speed=1 via --scenario for the mobile variant, or
// workload=on_off,transfer=50 for bursty sources.
//
// Wall-clock columns are machine-dependent, so this bench is excluded
// from the committed-baseline suite (like micro_perf).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

struct ScaleRun {
  double wall_s = 0.0;
  double events = 0.0;
  double delivered = 0.0;
  double refreshes = 0.0;
  double snapshots = 0.0;
  double rows_built = 0.0;
  double row_reuses = 0.0;
  double event_pool_hw = 0.0;
  double packet_pool_hw = 0.0;
};

ScaleRun one_run(exp::ScenarioSpec spec, std::size_t n, std::uint64_t seed,
                 double duration) {
  spec.net_size = n;
  spec.seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  auto s = exp::build(spec);
  s.network->run_until(duration);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  const auto m = s.flows->collect(duration);
  const auto& rs = s.network->routing().stats();
  ScaleRun r;
  r.wall_s = wall.count();
  r.events = static_cast<double>(s.network->simulator().events_executed());
  r.delivered = static_cast<double>(m.delivered_packets);
  r.refreshes = static_cast<double>(rs.refreshes);
  r.snapshots = static_cast<double>(rs.snapshots);
  r.rows_built = static_cast<double>(rs.rows_built);
  r.row_reuses = static_cast<double>(rs.row_reuses);
  r.event_pool_hw =
      static_cast<double>(s.network->simulator().event_pool_stats().high_water);
  r.packet_pool_hw =
      static_cast<double>(s.network->packet_pool().stats().high_water);
  return r;
}

sim::Summary summarize(const std::vector<ScaleRun>& runs,
                       double ScaleRun::*field) {
  sim::Summary s;
  for (const auto& r : runs) s.add(r.*field);
  return s;
}

double mean_of(const std::vector<ScaleRun>& runs, double ScaleRun::*field) {
  return summarize(runs, field).mean();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(1, 3);
  const double duration = opt.pick_duration(60.0, 300.0);

  const auto defaults = exp::preset("scale");
  auto base = defaults;
  bench::apply_scenario(opt, base);
  base.proto = opt.proto_or(base.proto);
  const auto sizes = bench::sweep_or<std::size_t>(
      base.net_size, defaults.net_size,
      opt.full ? std::vector<std::size_t>{100, 400, 1000}
               : std::vector<std::size_t>{100, 400});

  std::printf("=== Scale sweep: control plane cost vs network size ===\n");
  std::printf("%s, %.0f s simulated, %zu run(s)\n\n",
              exp::to_string(base).c_str(), duration, n_runs);

  std::vector<sim::Column> cols{{"net_size", 0},
                                {"wall_s", 2, true},
                                {"pkts", 0},
                                {"pkts_per_wall_s", 0},
                                {"kevt_per_wall_s", 0},
                                {"refreshes", 0},
                                {"snapshots", 0},
                                {"rows_built", 0},
                                {"row_reuses", 0},
                                {"ev_pool_hw", 0},
                                {"pkt_pool_hw", 0}};
  auto rep = bench::make_report(opt, "", std::move(cols), 16);
  rep.begin();

  for (const std::size_t n : sizes) {
    const auto runs = exp::run_seeds_as(
        n_runs, opt.seed,
        [&](std::uint64_t s) { return one_run(base, n, s, duration); },
        opt.jobs);
    double wall = 0.0, pkts = 0.0, events = 0.0;
    for (const auto& r : runs) {
      wall += r.wall_s;
      pkts += r.delivered;
      events += r.events;
    }
    const auto wall_summary = summarize(runs, &ScaleRun::wall_s);
    rep.row({static_cast<double>(n),
             sim::Cell(wall_summary.mean(), wall_summary.ci95_halfwidth()),
             mean_of(runs, &ScaleRun::delivered),
             wall > 0 ? pkts / wall : 0.0,
             wall > 0 ? events / wall / 1e3 : 0.0,
             mean_of(runs, &ScaleRun::refreshes),
             mean_of(runs, &ScaleRun::snapshots),
             mean_of(runs, &ScaleRun::rows_built),
             mean_of(runs, &ScaleRun::row_reuses),
             mean_of(runs, &ScaleRun::event_pool_hw),
             mean_of(runs, &ScaleRun::packet_pool_hw)});
  }
  bench::finish_report(rep);
  std::printf(
      "\nexpected shape: rows_built stays near (sources on live paths) x\n"
      "(snapshots), orders of magnitude below net_size x refreshes; the\n"
      "pool high-water marks grow with flows, not with net_size.\n");
  return 0;
}
