// Figure 10 (paper §6.1.2): static random topologies, JTP vs ATP vs TCP.
//
// The "random" ScenarioSpec preset: nodes placed uniformly in a field
// sized for connectivity w.h.p.; 5 simultaneous flows between random
// (distinct) endpoints. All protocols run under identical conditions in
// each run (same placement, same flow endpoints, same seeds), as the
// paper requires for comparability.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(exp::ScenarioSpec spec, std::size_t n,
                        exp::Proto proto, std::uint64_t seed,
                        double duration) {
  spec.net_size = n;
  spec.proto = proto;
  spec.seed = seed;  // same seed for all protocols => same placement/flows
  auto s = exp::build(spec);
  s.network->run_until(duration);
  return s.flows->collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(1000.0, 4000.0);

  const auto defaults = exp::preset("random");
  auto base = defaults;
  bench::apply_scenario(opt, base);
  const auto protos =
      opt.protos_or({exp::Proto::kJtp, exp::Proto::kAtp, exp::Proto::kTcp});
  const auto sizes = bench::sweep_or<std::size_t>(
      base.net_size, defaults.net_size, {10, 15, 20, 25});

  std::printf("=== Figure 10: static random topologies ===\n");
  std::printf("5 random flows, %.0f s, %zu runs, 95%% CI\n\n", duration,
              n_runs);
  std::printf("E/b = energy per delivered bit (uJ/bit)\n");

  std::vector<sim::Column> cols{{"net_size", 0}};
  for (const auto p : protos)
    cols.push_back({exp::proto_name(p) + "_uj_per_bit", 1, true});
  for (const auto p : protos)
    cols.push_back({exp::proto_name(p) + "_kbps", 3, true});
  auto rep = bench::make_report(opt, "", std::move(cols), 15);
  rep.begin();

  for (std::size_t n : sizes) {
    std::vector<sim::Cell> row{n};
    std::vector<sim::Cell> goodput_cells;
    for (const auto proto : protos) {
      auto runs = exp::run_seeds(
          n_runs, opt.seed,
          [&](std::uint64_t s) {
            return one_run(base, n, proto, s, duration);
          },
          opt.jobs);
      row.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.energy_per_bit_uj();
      }));
      goodput_cells.push_back(
          exp::aggregate(runs, [](const exp::RunMetrics& m) {
            return m.per_flow_goodput_kbps_mean;
          }));
    }
    row.insert(row.end(), goodput_cells.begin(), goodput_cells.end());
    rep.row(std::move(row));
  }
  bench::finish_report(rep);
  std::printf("\nexpected shape: jtp outperforms atp and tcp in both "
              "metrics across all sizes.\n");
  return 0;
}
