// Figure 10 (paper §6.1.2): static random topologies, JTP vs ATP vs TCP.
//
// Nodes placed uniformly in a field sized for connectivity w.h.p.; 5
// simultaneous flows between random (distinct) endpoints. All protocols
// run under identical conditions in each run (same placement, same flow
// endpoints, same seeds), as the paper requires for comparability.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

std::vector<std::pair<core::NodeId, core::NodeId>> pick_flows(
    std::size_t n_nodes, std::uint64_t seed, int n_flows) {
  sim::Rng rng(seed);
  auto fr = rng.derive("flow-endpoints");
  std::vector<std::pair<core::NodeId, core::NodeId>> out;
  for (int i = 0; i < n_flows; ++i) {
    const auto a = static_cast<core::NodeId>(fr.integer(n_nodes));
    auto b = static_cast<core::NodeId>(fr.integer(n_nodes));
    if (a == b) b = static_cast<core::NodeId>((b + 1) % n_nodes);
    out.push_back({a, b});
  }
  return out;
}

exp::RunMetrics one_run(std::size_t n, exp::Proto proto, std::uint64_t seed,
                        double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;  // same seed for all protocols => same placement
  sc.proto = proto;
  auto net = exp::make_random(n, sc);
  exp::FlowManager fm(*net, proto);
  for (const auto& [src, dst] : pick_flows(n, seed, 5))
    fm.create(src, dst, 0, 10.0);
  net->run_until(duration);
  return fm.collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(1000.0, 4000.0);

  std::printf("=== Figure 10: static random topologies ===\n");
  std::printf("5 random flows, %.0f s, %zu runs, 95%% CI\n\n", duration,
              n_runs);
  std::printf("E/b = energy per delivered bit (uJ/bit)\n");

  auto rep = bench::make_report(opt, "",
                                {{"net_size", 0},
                                 {"jtp_uj_per_bit", 1, true},
                                 {"atp_uj_per_bit", 1, true},
                                 {"tcp_uj_per_bit", 1, true},
                                 {"jtp_kbps", 3, true},
                                 {"atp_kbps", 3, true},
                                 {"tcp_kbps", 3, true}},
                                15);
  rep.begin();

  for (std::size_t n : {10, 15, 20, 25}) {
    std::vector<sim::Cell> row{n};
    std::vector<sim::Cell> goodput_cells;
    for (const auto proto :
         {exp::Proto::kJtp, exp::Proto::kAtp, exp::Proto::kTcp}) {
      auto runs = exp::run_seeds(
          n_runs, opt.seed,
          [&](std::uint64_t s) { return one_run(n, proto, s, duration); },
          opt.jobs);
      row.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.energy_per_bit_uj();
      }));
      goodput_cells.push_back(
          exp::aggregate(runs, [](const exp::RunMetrics& m) {
            return m.per_flow_goodput_kbps_mean;
          }));
    }
    row.insert(row.end(), goodput_cells.begin(), goodput_cells.end());
    rep.row(std::move(row));
  }
  bench::finish_report(rep);
  std::printf("\nexpected shape: jtp outperforms atp and tcp in both "
              "metrics across all sizes.\n");
  return 0;
}
