// Figure 4 (paper §4.1): JTP vs JTP-with-no-caching (JNC).
//
// (a) Energy per delivered application bit vs network size (linear nets).
// (b) Per-node energy on a 7-node linear topology.
//
// Expected shape: the JNC/JTP gap grows with path length (analysis:
// factor 1/(1-p^n)^{H-1}); JTP also spreads energy more evenly across
// mid-path nodes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/analysis.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(std::size_t n, exp::Proto proto, std::uint64_t seed,
                        double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = proto;
  // Caching-stress regime: deep, frequent bad dwells so the 5-attempt
  // budget is exceeded often (p_bad^5 ≈ 33%) and end-to-end vs in-network
  // recovery genuinely diverge — the regime Fig. 4 is about.
  sc.loss_good = 0.10;
  sc.loss_bad = 0.80;
  sc.bad_fraction = 0.30;
  auto net = exp::make_linear(n, sc);
  exp::FlowManager fm(*net, proto);
  fm.create(0, static_cast<core::NodeId>(n - 1), 0);  // long-lived
  net->run_until(duration);
  return fm.collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 20);
  const double duration = opt.pick_duration(800.0, 2500.0);

  std::printf("=== Figure 4: in-network caching gain (JTP vs JNC) ===\n");
  std::printf("long-lived flow over linear nets, %.0f s, %zu runs\n\n",
              duration, n_runs);

  auto rep = bench::make_report(opt, "(a) energy per delivered bit (uJ/bit)",
                                {{"net_size", 0},
                                 {"jtp_uj_per_bit", 3, true},
                                 {"jnc_uj_per_bit", 3, true},
                                 {"jnc_over_jtp", 3}},
                                16, "a");
  rep.begin();
  // Section (b) reuses the 7-node runs from this sweep instead of
  // re-simulating them (RunMetrics already carries per-node energy).
  std::vector<exp::RunMetrics> jtp7, jnc7;
  for (std::size_t n : {3, 4, 5, 6, 7, 8, 9}) {
    auto jtp_runs = exp::run_seeds(
        n_runs, opt.seed,
        [&](std::uint64_t s) {
          return one_run(n, exp::Proto::kJtp, s, duration);
        },
        opt.jobs);
    auto jnc_runs = exp::run_seeds(
        n_runs, opt.seed,
        [&](std::uint64_t s) {
          return one_run(n, exp::Proto::kJnc, s, duration);
        },
        opt.jobs);
    const auto ej = exp::aggregate(jtp_runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_uj();
    });
    const auto en = exp::aggregate(jnc_runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_uj();
    });
    rep.row({n, ej, en, ej.mean > 0 ? en.mean / ej.mean : 0.0});
    if (n == 7) {
      jtp7 = std::move(jtp_runs);
      jnc7 = std::move(jnc_runs);
    }
  }
  bench::finish_report(rep);

  std::printf("\n");
  auto repb = bench::make_report(
      opt, "(b) per-node energy, 7-node linear topology (J)",
      {{"node", 0}, {"jtp_j", 4}, {"jnc_j", 4}}, 12, "b");
  repb.begin();
  {
    std::vector<double> jtp_node(7, 0.0), jnc_node(7, 0.0);
    for (std::size_t r = 0; r < n_runs; ++r) {
      for (int i = 0; i < 7; ++i) {
        jtp_node[i] += jtp7[r].per_node_energy_j[i] / n_runs;
        jnc_node[i] += jnc7[r].per_node_energy_j[i] / n_runs;
      }
    }
    for (int i = 0; i < 7; ++i)
      repb.row({i + 1, jtp_node[i], jnc_node[i]});
    bench::finish_report(repb);
    // Mid-path fairness: coefficient of spread across interior nodes.
    auto spread = [](const std::vector<double>& v) {
      double lo = 1e18, hi = 0;
      for (int i = 1; i + 1 < 7; ++i) {
        lo = std::min(lo, v[i]);
        hi = std::max(hi, v[i]);
      }
      return hi / lo;
    };
    std::printf("interior max/min spread: jtp %.3f, jnc %.3f "
                "(lower = fairer mid-path allocation)\n",
                spread(jtp_node), spread(jnc_node));
  }

  std::printf("\n--- analytic expectation (eq. 5 vs eq. 6) ---\n");
  std::printf("caching gain 1/(1-p^n)^(H-1), n=5:\n");
  for (double p : {0.6, 0.8})
    std::printf("  p=%.1f: H=3 -> %.3f, H=7 -> %.3f, H=9 -> %.3f\n", p,
                core::caching_gain(3, p, 5), core::caching_gain(7, p, 5),
                core::caching_gain(9, p, 5));
  return 0;
}
