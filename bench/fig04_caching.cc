// Figure 4 (paper §4.1): JTP vs JTP-with-no-caching (JNC).
//
// (a) Energy per delivered application bit vs network size (linear nets).
// (b) Per-node energy on a 7-node linear topology.
//
// Expected shape: the JNC/JTP gap grows with path length (analysis:
// factor 1/(1-p^n)^{H-1}); JTP also spreads energy more evenly across
// mid-path nodes.
#include <algorithm>
#include <array>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/analysis.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/trace.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(std::size_t n, exp::Proto proto, std::uint64_t seed,
                        double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = proto;
  // Caching-stress regime: deep, frequent bad dwells so the 5-attempt
  // budget is exceeded often (p_bad^5 ≈ 33%) and end-to-end vs in-network
  // recovery genuinely diverge — the regime Fig. 4 is about.
  sc.loss_good = 0.10;
  sc.loss_bad = 0.80;
  sc.bad_fraction = 0.30;
  auto net = exp::make_linear(n, sc);
  exp::FlowManager fm(*net, proto);
  fm.create(0, static_cast<core::NodeId>(n - 1), 0);  // long-lived
  net->run_until(duration);
  return fm.collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 20);
  const double duration = opt.pick_duration(800.0, 2500.0);

  std::printf("=== Figure 4: in-network caching gain (JTP vs JNC) ===\n");
  std::printf("long-lived flow over linear nets, %.0f s, %zu runs\n\n",
              duration, n_runs);

  // Open the CSV up front so a bad path fails before the long runs.
  std::optional<sim::CsvWriter> csv;
  if (!opt.csv_path.empty()) {
    csv.emplace(opt.csv_path, std::initializer_list<std::string>{
                                  "net_size", "jtp_uj_per_bit",
                                  "jnc_uj_per_bit", "jnc_over_jtp"});
    if (!csv->ok()) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   opt.csv_path.c_str());
      return 1;
    }
  }

  std::printf("--- (a) energy per delivered bit (uJ/bit) ---\n");
  exp::TablePrinter tp({"netSize", "jtp", "jnc", "jnc/jtp"}, 12);
  tp.header(std::cout);
  for (std::size_t n : {3, 4, 5, 6, 7, 8, 9}) {
    auto jtp_runs = exp::run_seeds(n_runs, opt.seed, [&](std::uint64_t s) {
      return one_run(n, exp::Proto::kJtp, s, duration);
    });
    auto jnc_runs = exp::run_seeds(n_runs, opt.seed, [&](std::uint64_t s) {
      return one_run(n, exp::Proto::kJnc, s, duration);
    });
    const auto ej = exp::aggregate(jtp_runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_uj();
    });
    const auto en = exp::aggregate(jnc_runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_uj();
    });
    const std::array<double, 4> r{static_cast<double>(n), ej.mean, en.mean,
                                  ej.mean > 0 ? en.mean / ej.mean : 0.0};
    tp.row(std::cout, {r[0], r[1], r[2], r[3]});
    if (csv) csv->row({r[0], r[1], r[2], r[3]});
  }
  if (csv) std::printf("\nseries (a) written to %s\n", opt.csv_path.c_str());

  std::printf("\n--- (b) per-node energy, 7-node linear topology (J) ---\n");
  exp::TablePrinter tp2({"node", "jtp", "jnc"}, 12);
  tp2.header(std::cout);
  {
    std::vector<double> jtp_node(7, 0.0), jnc_node(7, 0.0);
    for (std::size_t r = 0; r < n_runs; ++r) {
      const auto mj = one_run(7, exp::Proto::kJtp, opt.seed + 1000 * (r + 1),
                              duration);
      const auto mn = one_run(7, exp::Proto::kJnc, opt.seed + 1000 * (r + 1),
                              duration);
      for (int i = 0; i < 7; ++i) {
        jtp_node[i] += mj.per_node_energy_j[i] / n_runs;
        jnc_node[i] += mn.per_node_energy_j[i] / n_runs;
      }
    }
    for (int i = 0; i < 7; ++i)
      tp2.row(std::cout,
              {static_cast<double>(i + 1), jtp_node[i], jnc_node[i]});
    // Mid-path fairness: coefficient of spread across interior nodes.
    auto spread = [](const std::vector<double>& v) {
      double lo = 1e18, hi = 0;
      for (int i = 1; i + 1 < 7; ++i) {
        lo = std::min(lo, v[i]);
        hi = std::max(hi, v[i]);
      }
      return hi / lo;
    };
    std::printf("interior max/min spread: jtp %.3f, jnc %.3f "
                "(lower = fairer mid-path allocation)\n",
                spread(jtp_node), spread(jnc_node));
  }

  std::printf("\n--- analytic expectation (eq. 5 vs eq. 6) ---\n");
  std::printf("caching gain 1/(1-p^n)^(H-1), n=5:\n");
  for (double p : {0.6, 0.8})
    std::printf("  p=%.1f: H=3 -> %.3f, H=7 -> %.3f, H=9 -> %.3f\n", p,
                core::caching_gain(3, p, 5), core::caching_gain(7, p, 5),
                core::caching_gain(9, p, 5));
  return 0;
}
