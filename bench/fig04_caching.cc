// Figure 4 (paper §4.1): JTP vs JTP-with-no-caching (JNC).
//
// (a) Energy per delivered application bit vs network size (linear nets).
// (b) Per-node energy on a 7-node linear topology.
//
// Expected shape: the JNC/JTP gap grows with path length (analysis:
// factor 1/(1-p^n)^{H-1}); JTP also spreads energy more evenly across
// mid-path nodes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/analysis.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(exp::ScenarioSpec spec, std::size_t n,
                        exp::Proto proto, std::uint64_t seed,
                        double duration) {
  spec.seed = seed;
  spec.proto = proto;
  spec.net_size = n;
  auto s = exp::build(spec);
  s.flows->create(0, static_cast<core::NodeId>(n - 1), 0);  // long-lived
  s.network->run_until(duration);
  return s.flows->collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "Figure 4 is the JTP-vs-JNC caching comparison");
  const std::size_t n_runs = opt.pick_runs(3, 20);
  const double duration = opt.pick_duration(800.0, 2500.0);

  // Caching-stress regime: deep, frequent bad dwells so the 5-attempt
  // budget is exceeded often (p_bad^5 ≈ 33%) and end-to-end vs in-network
  // recovery genuinely diverge — the regime Fig. 4 is about.
  exp::ScenarioSpec defaults;
  defaults.loss_good = 0.10;
  defaults.loss_bad = 0.80;
  defaults.bad_fraction = 0.30;
  auto base = defaults;
  bench::apply_scenario(opt, base);
  const auto sizes = bench::sweep_or<std::size_t>(
      base.net_size, defaults.net_size, {3, 4, 5, 6, 7, 8, 9});
  // Section (b) reports per-node energy for the 7-node case, or for the
  // sweep's largest size when an override collapsed the sweep.
  const std::size_t b_n =
      std::find(sizes.begin(), sizes.end(), std::size_t{7}) != sizes.end()
          ? 7
          : sizes.back();

  std::printf("=== Figure 4: in-network caching gain (JTP vs JNC) ===\n");
  std::printf("long-lived flow over linear nets, %.0f s, %zu runs\n\n",
              duration, n_runs);

  auto rep = bench::make_report(opt, "(a) energy per delivered bit (uJ/bit)",
                                {{"net_size", 0},
                                 {"jtp_uj_per_bit", 3, true},
                                 {"jnc_uj_per_bit", 3, true},
                                 {"jnc_over_jtp", 3}},
                                16, "a");
  rep.begin();
  // Section (b) reuses the b_n-node runs from this sweep instead of
  // re-simulating them (RunMetrics already carries per-node energy).
  std::vector<exp::RunMetrics> jtp7, jnc7;
  for (std::size_t n : sizes) {
    auto jtp_runs = exp::run_seeds(
        n_runs, opt.seed,
        [&](std::uint64_t s) {
          return one_run(base, n, exp::Proto::kJtp, s, duration);
        },
        opt.jobs);
    auto jnc_runs = exp::run_seeds(
        n_runs, opt.seed,
        [&](std::uint64_t s) {
          return one_run(base, n, exp::Proto::kJnc, s, duration);
        },
        opt.jobs);
    const auto ej = exp::aggregate(jtp_runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_uj();
    });
    const auto en = exp::aggregate(jnc_runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_uj();
    });
    rep.row({n, ej, en, ej.mean > 0 ? en.mean / ej.mean : 0.0});
    if (n == b_n) {
      jtp7 = std::move(jtp_runs);
      jnc7 = std::move(jnc_runs);
    }
  }
  bench::finish_report(rep);

  std::printf("\n");
  auto repb = bench::make_report(
      opt,
      "(b) per-node energy, " + std::to_string(b_n) +
          "-node linear topology (J)",
      {{"node", 0}, {"jtp_j", 4}, {"jnc_j", 4}}, 12, "b");
  repb.begin();
  {
    std::vector<double> jtp_node(b_n, 0.0), jnc_node(b_n, 0.0);
    for (std::size_t r = 0; r < n_runs; ++r) {
      for (std::size_t i = 0; i < b_n; ++i) {
        jtp_node[i] += jtp7[r].per_node_energy_j[i] / n_runs;
        jnc_node[i] += jnc7[r].per_node_energy_j[i] / n_runs;
      }
    }
    for (std::size_t i = 0; i < b_n; ++i)
      repb.row({i + 1, jtp_node[i], jnc_node[i]});
    bench::finish_report(repb);
    // Mid-path fairness: coefficient of spread across interior nodes.
    auto spread = [b_n](const std::vector<double>& v) {
      double lo = 1e18, hi = 0;
      for (std::size_t i = 1; i + 1 < b_n; ++i) {
        lo = std::min(lo, v[i]);
        hi = std::max(hi, v[i]);
      }
      return hi / lo;
    };
    std::printf("interior max/min spread: jtp %.3f, jnc %.3f "
                "(lower = fairer mid-path allocation)\n",
                spread(jtp_node), spread(jnc_node));
  }

  std::printf("\n--- analytic expectation (eq. 5 vs eq. 6) ---\n");
  std::printf("caching gain 1/(1-p^n)^(H-1), n=5:\n");
  for (double p : {0.6, 0.8})
    std::printf("  p=%.1f: H=3 -> %.3f, H=7 -> %.3f, H=9 -> %.3f\n", p,
                core::caching_gain(3, p, 5), core::caching_gain(7, p, 5),
                core::caching_gain(9, p, 5));
  return 0;
}
