// Figure 9 (paper §6.1.1): JTP vs ATP vs TCP-SACK on linear topologies.
//
// The "linear" ScenarioSpec preset: two competing full-reliability flows
// between the chain's ends; links alternate between good and bad states
// (Gilbert–Elliott, 10% bad, 3 s mean bad dwell). Reported: (a) energy
// per delivered bit, (b) average per-flow goodput, both with 95% CIs.
//
// Expected shape: JTP lowest energy/bit at every size, with ATP ~2x and
// TCP ~5x JTP by the longest paths; JTP also highest goodput.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(exp::ScenarioSpec spec, std::size_t n,
                        exp::Proto proto, std::uint64_t seed,
                        double duration) {
  spec.net_size = n;
  spec.proto = proto;
  spec.seed = seed;
  auto s = exp::build(spec);
  s.network->run_until(duration);
  return s.flows->collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(5, 20);
  const double duration = opt.pick_duration(800.0, 2500.0);

  const auto defaults = exp::preset("linear");
  auto base = defaults;
  bench::apply_scenario(opt, base);
  const auto protos =
      opt.protos_or({exp::Proto::kJtp, exp::Proto::kAtp, exp::Proto::kTcp});
  const auto sizes =
      bench::sweep_or<std::size_t>(base.net_size, defaults.net_size,
                                   {2, 3, 4, 5, 6, 7, 8, 9, 10});

  std::printf("=== Figure 9: linear topologies, JTP vs ATP vs TCP-SACK ===\n");
  std::printf("2 competing flows, Gilbert links (10%% bad / 3 s), %.0f s, "
              "%zu runs, 95%% CI\n\n", duration, n_runs);
  std::printf("E/b = energy per delivered bit (uJ/bit)\n");

  std::vector<sim::Column> cols{{"net_size", 0}};
  for (const auto p : protos)
    cols.push_back({exp::proto_name(p) + "_uj_per_bit", 1, true});
  for (const auto p : protos)
    cols.push_back({exp::proto_name(p) + "_kbps", 3, true});
  auto rep = bench::make_report(opt, "", std::move(cols), 15);
  rep.begin();

  for (std::size_t n : sizes) {
    std::vector<sim::Cell> row{n};
    std::vector<sim::Cell> goodput_cells;
    for (const auto proto : protos) {
      auto runs = exp::run_seeds(
          n_runs, opt.seed,
          [&](std::uint64_t s) {
            return one_run(base, n, proto, s, duration);
          },
          opt.jobs);
      row.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.energy_per_bit_uj();
      }));
      goodput_cells.push_back(
          exp::aggregate(runs, [](const exp::RunMetrics& m) {
            return m.per_flow_goodput_kbps_mean;
          }));
    }
    row.insert(row.end(), goodput_cells.begin(), goodput_cells.end());
    rep.row(std::move(row));
  }
  bench::finish_report(rep);
  std::printf("\nexpected shape: jtp < atp < tcp on energy/bit (gap grows "
              "with path length); jtp highest goodput.\n");
  return 0;
}
