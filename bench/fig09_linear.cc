// Figure 9 (paper §6.1.1): JTP vs ATP vs TCP-SACK on linear topologies.
//
// Two competing full-reliability flows between the chain's ends; links
// alternate between good and bad states (Gilbert–Elliott, 10% bad, 3 s
// mean bad dwell). Reported: (a) energy per delivered bit, (b) average
// per-flow goodput, both with 95% CIs.
//
// Expected shape: JTP lowest energy/bit at every size, with ATP ~2x and
// TCP ~5x JTP by the longest paths; JTP also highest goodput.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(std::size_t n, exp::Proto proto, std::uint64_t seed,
                        double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = proto;
  auto net = exp::make_linear(n, sc);
  exp::FlowManager fm(*net, proto);
  const auto last = static_cast<core::NodeId>(n - 1);
  fm.create(0, last, 0, 10.0);
  fm.create(last, 0, 0, 20.0);
  net->run_until(duration);
  return fm.collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(5, 20);
  const double duration = opt.pick_duration(800.0, 2500.0);

  std::printf("=== Figure 9: linear topologies, JTP vs ATP vs TCP-SACK ===\n");
  std::printf("2 competing flows, Gilbert links (10%% bad / 3 s), %.0f s, "
              "%zu runs, 95%% CI\n\n", duration, n_runs);
  std::printf("E/b = energy per delivered bit (uJ/bit)\n");

  const std::vector<exp::Proto> protos = {exp::Proto::kJtp, exp::Proto::kAtp,
                                          exp::Proto::kTcp};
  auto rep = bench::make_report(opt, "",
                                {{"net_size", 0},
                                 {"jtp_uj_per_bit", 1, true},
                                 {"atp_uj_per_bit", 1, true},
                                 {"tcp_uj_per_bit", 1, true},
                                 {"jtp_kbps", 3, true},
                                 {"atp_kbps", 3, true},
                                 {"tcp_kbps", 3, true}},
                                15);
  rep.begin();

  for (std::size_t n : {2, 3, 4, 5, 6, 7, 8, 9, 10}) {
    std::vector<sim::Cell> row{n};
    std::vector<sim::Cell> goodput_cells;
    for (const auto proto : protos) {
      auto runs = exp::run_seeds(
          n_runs, opt.seed,
          [&](std::uint64_t s) { return one_run(n, proto, s, duration); },
          opt.jobs);
      row.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.energy_per_bit_uj();
      }));
      goodput_cells.push_back(
          exp::aggregate(runs, [](const exp::RunMetrics& m) {
            return m.per_flow_goodput_kbps_mean;
          }));
    }
    row.insert(row.end(), goodput_cells.begin(), goodput_cells.end());
    rep.row(std::move(row));
  }
  bench::finish_report(rep);
  std::printf("\nexpected shape: jtp < atp < tcp on energy/bit (gap grows "
              "with path length); jtp highest goodput.\n");
  return 0;
}
