// Table 2 (paper §6.2): the JAVeLEN testbed experiment, reproduced
// synthetically (the "testbed" ScenarioSpec preset).
//
// The paper's testbed: 14 radios indoors; links stable and much better
// than in simulation (multipath fading only); 30-minute experiments; each
// node generates flows with mean interarrival 400 s and mean transfer
// size 100 KB. Reported: energy per delivered bit (mJ/bit) and average
// goodput (kbps) for JTP, ATP and TCP.
//
// Substitution (see DESIGN.md): the same simulator configured with
// fading disabled and low residual loss reproduces the testbed's regime.
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(exp::ScenarioSpec spec, exp::Proto proto,
                        std::uint64_t seed, double duration) {
  spec.proto = proto;
  spec.seed = seed;
  auto s = exp::build(spec);
  s.network->run_until(duration);
  return s.flows->collect(duration);
}

std::string upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = 1800.0;  // 30 minutes, as in the paper

  auto base = exp::preset("testbed");
  bench::apply_scenario(opt, base);
  const auto protos =
      opt.protos_or({exp::Proto::kJtp, exp::Proto::kAtp, exp::Proto::kTcp});

  std::printf("=== Table 2: JAVeLEN system results (synthetic testbed) ===\n");
  std::printf("14 nodes, stable low-loss links, Poisson flows "
              "(400 s interarrival, 100 KB transfers), 30 min, %zu runs\n\n",
              n_runs);

  auto rep = bench::make_report(
      opt, "",
      {{"protocol", 0}, {"e_per_bit_mj", 5, true}, {"goodput_kbps", 3, true}},
      22);
  rep.begin();
  for (const auto proto : protos) {
    auto runs = exp::run_seeds(
        n_runs, opt.seed,
        [&, p = proto](std::uint64_t s) {
          return one_run(base, p, s, duration);
        },
        opt.jobs);
    const auto e = exp::aggregate(runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_mj();
    });
    const auto g = exp::aggregate(runs, [](const exp::RunMetrics& m) {
      return m.per_flow_goodput_kbps_mean;
    });
    rep.row({upper(exp::proto_name(proto)), e, g});
  }
  bench::finish_report(rep);
  std::printf("\npaper's testbed values for reference: JTP 0.0054 mJ/bit "
              "0.63 kbps; ATP 0.0068 / 0.44; TCP 0.0105 / 0.17.\n");
  std::printf("expected shape: JTP best on both metrics; TCP's goodput gap "
              "narrows vs simulation because links are clean.\n");
  return 0;
}
