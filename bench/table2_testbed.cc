// Table 2 (paper §6.2): the JAVeLEN testbed experiment, reproduced
// synthetically.
//
// The paper's testbed: 14 radios indoors; links stable and much better
// than in simulation (multipath fading only); 30-minute experiments; each
// node generates flows with mean interarrival 400 s and mean transfer
// size 100 KB. Reported: energy per delivered bit (mJ/bit) and average
// goodput (kbps) for JTP, ATP and TCP.
//
// Substitution (see DESIGN.md): the same simulator configured with
// fading disabled and low residual loss reproduces the testbed's regime.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

exp::RunMetrics one_run(exp::Proto proto, std::uint64_t seed,
                        double duration) {
  exp::ScenarioConfig sc;
  sc.seed = seed;
  sc.proto = proto;
  auto net = exp::make_testbed(sc);
  exp::FlowManager fm(*net, proto);

  // Poisson flow generation per node: mean interarrival 400 s, transfer
  // 100 KB = 125 packets of 800 B.
  sim::Rng rng(seed);
  auto arr = rng.derive("arrivals");
  const std::uint64_t k = 125;
  for (core::NodeId src = 0; src < 14; ++src) {
    double t = arr.exponential(400.0);
    while (t < duration - 100.0) {
      auto dst = static_cast<core::NodeId>(arr.integer(14));
      if (dst == src) dst = (dst + 1) % 14;
      fm.create(src, dst, k, t);
      t += arr.exponential(400.0);
    }
  }
  net->run_until(duration);
  return fm.collect(duration);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = 1800.0;  // 30 minutes, as in the paper

  std::printf("=== Table 2: JAVeLEN system results (synthetic testbed) ===\n");
  std::printf("14 nodes, stable low-loss links, Poisson flows "
              "(400 s interarrival, 100 KB transfers), 30 min, %zu runs\n\n",
              n_runs);

  auto rep = bench::make_report(
      opt, "",
      {{"protocol", 0}, {"e_per_bit_mj", 5, true}, {"goodput_kbps", 3, true}},
      22);
  rep.begin();
  for (const auto& [proto, name] :
       {std::pair{exp::Proto::kJtp, "JTP"}, {exp::Proto::kAtp, "ATP"},
        {exp::Proto::kTcp, "TCP"}}) {
    auto runs = exp::run_seeds(
        n_runs, opt.seed,
        [&, p = proto](std::uint64_t s) { return one_run(p, s, duration); },
        opt.jobs);
    const auto e = exp::aggregate(runs, [](const exp::RunMetrics& m) {
      return m.energy_per_bit_mj();
    });
    const auto g = exp::aggregate(runs, [](const exp::RunMetrics& m) {
      return m.per_flow_goodput_kbps_mean;
    });
    rep.row({name, e, g});
  }
  bench::finish_report(rep);
  std::printf("\npaper's testbed values for reference: JTP 0.0054 mJ/bit "
              "0.63 kbps; ATP 0.0068 / 0.44; TCP 0.0105 / 0.17.\n");
  std::printf("expected shape: JTP best on both metrics; TCP's goodput gap "
              "narrows vs simulation because links are clean.\n");
  return 0;
}
