// Ablation (DESIGN.md §4): the locally-recovered ACK rewrite.
//
// When a cache serves a SNACKed packet, iJTP moves the seq from
// SNACK.missing to SNACK.locally_recovered so upstream caches and the
// source do not retransmit it again (paper §4). Disabling the rewrite
// leaves the request visible upstream: every cache on the path plus the
// source may answer it, multiplying retransmissions of the same packet.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"

using namespace jtp;

namespace {

struct Outcome {
  double cache_rtx = 0, source_rtx = 0, duplicates = 0, energy_per_bit = 0;
};

Outcome run_case(bool rewrite, std::uint64_t seed, std::size_t n_runs,
                 double duration) {
  Outcome o;
  for (std::size_t r = 0; r < n_runs; ++r) {
    exp::ScenarioConfig sc;
    sc.seed = seed + 31 * (r + 1);
    sc.proto = exp::Proto::kJtp;
    sc.loss_good = 0.10;
    sc.loss_bad = 0.80;
    sc.bad_fraction = 0.30;
    auto cfg = exp::make_network_config(sc);
    cfg.node.ijtp.rewrite_locally_recovered = rewrite;
    auto topo = phy::Topology::linear(7, exp::kSpacingM, exp::kRangeM);
    net::Network net(std::move(topo), cfg);
    exp::FlowManager fm(net, exp::Proto::kJtp);
    auto& flow = fm.create(0, 6, 0);
    net.run_until(duration);
    const auto m = fm.collect(duration);
    o.cache_rtx += static_cast<double>(m.cache_retransmissions) / n_runs;
    o.source_rtx += static_cast<double>(m.source_retransmissions) / n_runs;
    o.duplicates +=
        static_cast<double>(flow.jtp.receiver->duplicates()) / n_runs;
    o.energy_per_bit += m.energy_per_bit_uj() / n_runs;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(800.0, 2500.0);

  std::printf("=== Ablation: locally-recovered ACK rewrite (paper §4) ===\n");
  std::printf("7-node lossy chain, one reliable flow, %.0f s, %zu runs\n\n",
              duration, n_runs);

  const auto on = run_case(true, opt.seed, n_runs, duration);
  const auto off = run_case(false, opt.seed, n_runs, duration);

  exp::TablePrinter tp({"variant", "cacheRtx", "srcRtx", "dupRcvd",
                        "E/bit(uJ)"}, 14);
  tp.header(std::cout);
  tp.row(std::cout, {std::string("rewrite ON"), exp::fmt(on.cache_rtx, 1),
                     exp::fmt(on.source_rtx, 1), exp::fmt(on.duplicates, 1),
                     exp::fmt(on.energy_per_bit, 2)});
  tp.row(std::cout, {std::string("rewrite OFF"), exp::fmt(off.cache_rtx, 1),
                     exp::fmt(off.source_rtx, 1), exp::fmt(off.duplicates, 1),
                     exp::fmt(off.energy_per_bit, 2)});
  std::printf("\nexpected: with the rewrite off, the same request is served "
              "by several caches AND the source — duplicate receptions and "
              "energy per bit rise.\n");
  return 0;
}
