// Ablation (DESIGN.md §4): the locally-recovered ACK rewrite.
//
// When a cache serves a SNACKed packet, iJTP moves the seq from
// SNACK.missing to SNACK.locally_recovered so upstream caches and the
// source do not retransmit it again (paper §4). Disabling the rewrite
// leaves the request visible upstream: every cache on the path plus the
// source may answer it, multiplying retransmissions of the same packet.
#include <cstdio>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/stats.h"

using namespace jtp;

namespace {

struct Outcome {
  double cache_rtx = 0, source_rtx = 0, duplicates = 0, energy_per_bit = 0;
};

struct Row {
  exp::Aggregate cache_rtx, source_rtx, duplicates, energy_per_bit;
};

Row run_case(const exp::ScenarioSpec& base, bool rewrite, std::uint64_t seed,
             std::size_t n_runs, double duration, std::size_t jobs) {
  auto runs = exp::run_seeds_as(
      n_runs, seed,
      [&](std::uint64_t s) {
        auto spec = base;
        spec.seed = s;
        // The rewrite switch is a NetworkConfig knob the spec language
        // does not cover: build the network by hand from the spec parts.
        auto cfg = exp::make_network_config(spec);
        cfg.node.ijtp.rewrite_locally_recovered = rewrite;
        net::Network net(exp::make_topology(spec), cfg);
        exp::FlowManager fm(net, spec.proto);
        const auto last = static_cast<core::NodeId>(spec.net_size - 1);
        auto& flow = fm.create(0, last, 0);
        net.run_until(duration);
        const auto m = fm.collect(duration);
        return Outcome{
            static_cast<double>(m.cache_retransmissions),
            static_cast<double>(m.source_retransmissions),
            static_cast<double>(
                flow.receiver_as<core::EjtpReceiver>()->duplicates()),
            m.energy_per_bit_uj()};
      },
      jobs);
  auto agg = [&](double Outcome::*field) {
    sim::Summary sum;
    for (const auto& r : runs) sum.add(r.*field);
    return exp::Aggregate{sum.mean(), sum.ci95_halfwidth(), sum.count()};
  };
  return Row{agg(&Outcome::cache_rtx), agg(&Outcome::source_rtx),
             agg(&Outcome::duplicates), agg(&Outcome::energy_per_bit)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "this ablation targets JTP's iJTP ACK rewrite");
  const std::size_t n_runs = opt.pick_runs(3, 10);
  const double duration = opt.pick_duration(800.0, 2500.0);

  exp::ScenarioSpec base;
  base.net_size = 7;
  base.loss_good = 0.10;
  base.loss_bad = 0.80;
  base.bad_fraction = 0.30;
  bench::apply_scenario(opt, base);

  std::printf("=== Ablation: locally-recovered ACK rewrite (paper §4) ===\n");
  std::printf("7-node lossy chain, one reliable flow, %.0f s, %zu runs\n\n",
              duration, n_runs);

  const auto on = run_case(base, true, opt.seed, n_runs, duration, opt.jobs);
  const auto off =
      run_case(base, false, opt.seed, n_runs, duration, opt.jobs);

  auto rep = bench::make_report(opt, "",
                                {{"variant", 0},
                                 {"cache_rtx", 1, true},
                                 {"src_rtx", 1, true},
                                 {"dup_rcvd", 1, true},
                                 {"e_per_bit_uj", 2, true}},
                                16);
  rep.begin();
  rep.row({"rewrite ON", on.cache_rtx, on.source_rtx, on.duplicates,
           on.energy_per_bit});
  rep.row({"rewrite OFF", off.cache_rtx, off.source_rtx, off.duplicates,
           off.energy_per_bit});
  bench::finish_report(rep);
  std::printf("\nexpected: with the rewrite off, the same request is served "
              "by several caches AND the source — duplicate receptions and "
              "energy per bit rise.\n");
  return 0;
}
