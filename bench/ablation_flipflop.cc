// Ablation (DESIGN.md §4): flip-flop filtering vs a single stable EWMA.
//
// The flip-flop monitor (paper §5.1) switches to an agile EWMA when a run
// of out-of-control samples indicates a persistent path change, so the
// estimate catches up in a few samples; a stable-only filter reacts with
// its small α and lags. Measured directly on the PathMonitor with a
// synthetic level shift, plus end-to-end on a transient-competitor
// scenario (Fig. 8's setup).
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/path_monitor.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/random.h"

using namespace jtp;

namespace {

// Samples until the filter's mean is within 10% of a shifted level.
int catch_up_samples(bool flipflop, double from, double to, double noise,
                     std::uint64_t seed) {
  core::PathMonitorConfig cfg;
  if (!flipflop) cfg.alpha_agile = cfg.alpha_stable;  // agile == stable
  core::PathMonitor m(cfg);
  sim::Rng rng(seed);
  for (int i = 0; i < 300; ++i) m.add(from + rng.normal(0.0, noise));
  for (int i = 1; i <= 500; ++i) {
    m.add(to + rng.normal(0.0, noise));
    if (std::abs(m.mean() - to) < 0.1 * std::abs(to - from)) return i;
  }
  return 500;
}

struct EndToEnd {
  double queue_drops = 0;
  double delivered_kbit = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "this ablation targets JTP's path monitor");

  // Base spec of the end-to-end comparison in (b): Fig. 8's quiet chain.
  exp::ScenarioSpec base;
  base.fading = false;
  base.loss_good = 0.02;
  bench::apply_scenario(opt, base);

  std::printf("=== Ablation: flip-flop filter vs stable-only EWMA ===\n\n");
  auto rep = bench::make_report(
      opt, "(a) catch-up time after a level shift (samples to reach 90% of "
           "the shift)",
      {{"shift", 0},
       {"noise", 1},
       {"flipflop_samples", 1, true},
       {"stable_samples", 1, true}},
      18, "catchup");
  rep.begin();
  for (const auto& [from, to, noise] :
       {std::tuple{10.0, 3.0, 0.2}, {10.0, 3.0, 0.8}, {2.0, 8.0, 0.2},
        {2.0, 8.0, 0.8}}) {
    sim::Summary ff, st;
    for (std::uint64_t s = 1; s <= 20; ++s) {
      ff.add(catch_up_samples(true, from, to, noise, opt.seed + s));
      st.add(catch_up_samples(false, from, to, noise, opt.seed + s));
    }
    char shift[24];
    std::snprintf(shift, sizeof shift, "%.0f->%.0f", from, to);
    rep.row({std::string(shift), noise,
             exp::Aggregate{ff.mean(), ff.ci95_halfwidth(), ff.count()},
             exp::Aggregate{st.mean(), st.ci95_halfwidth(), st.count()}});
  }
  bench::finish_report(rep);

  std::printf("\n");
  // With a sluggish monitor, flow 1 reacts late to the competitor's
  // arrival/departure: more queue drops on arrival, wasted idle capacity
  // after departure.
  auto repb = bench::make_report(
      opt, "(b) end-to-end: transient competitor (Fig. 8 setup)",
      {{"variant", 0},
       {"queue_drops", 1, true},
       {"delivered_kbit", 0, true}},
      18, "endtoend");
  repb.begin();
  const std::size_t runs = opt.pick_runs(3, 10);
  for (bool flipflop : {true, false}) {
    auto results = exp::run_seeds_as(
        runs, opt.seed,
        [&](std::uint64_t s) {
          auto spec = base;
          spec.seed = s;
          auto scenario = exp::build(spec);
          auto& net = *scenario.network;
          auto& fm = *scenario.flows;
          const auto last = static_cast<core::NodeId>(spec.net_size - 1);
          exp::FlowOptions fo;
          if (!flipflop) fo.monitor.alpha_agile = fo.monitor.alpha_stable;
          fm.create(0, last, 0, 0.0, fo);
          auto& f2 = fm.create(0, last, 0, 400.0, fo);
          net.simulator().schedule(650.0, [&f2] { f2.stop(); });
          net.run_until(1000.0);
          const auto m = fm.collect(1000.0);
          return EndToEnd{static_cast<double>(m.queue_drops),
                          m.delivered_kbit()};
        },
        opt.jobs);
    sim::Summary drops, delivered;
    for (const auto& r : results) {
      drops.add(r.queue_drops);
      delivered.add(r.delivered_kbit);
    }
    repb.row({flipflop ? "flip-flop" : "stable-only",
              exp::Aggregate{drops.mean(), drops.ci95_halfwidth(),
                             drops.count()},
              exp::Aggregate{delivered.mean(), delivered.ci95_halfwidth(),
                             delivered.count()}});
  }
  bench::finish_report(repb);
  std::printf("\nexpected: the flip-flop filter converges in a handful of "
              "samples regardless of noise; the stable-only filter takes "
              "~5-20x longer.\n");
  return 0;
}
