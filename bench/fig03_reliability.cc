// Figure 3 (paper §3): adjustable reliability levels jtp0 / jtp10 / jtp20.
//
// (a) Total energy spent for a fixed-size transfer vs network size.
// (b) Data delivered to the application vs network size, against the
//     80% / 90% application-requirement lines.
// (c) Max number of link-layer (re)transmissions assigned per packet over
//     time at the third node of a 4-node path.
//
// Expected shape: energy(jtp20) < energy(jtp10) < energy(jtp0); delivered
// data stays above the requirement line for each tolerance.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/stats.h"

using namespace jtp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::require_proto(opt, exp::Proto::kJtp,
                       "Figure 3 sweeps JTP's loss-tolerance knob");
  const std::size_t n_runs = opt.pick_runs(3, 20);
  const std::uint64_t k = opt.full ? 1600 : 400;
  const double horizon = opt.full ? 8000.0 : 4000.0;

  // Bare linear substrate (flows are attached per tolerance level below);
  // residual loss high enough that the attempt budget differs across
  // tolerance levels even in the good state.
  exp::ScenarioSpec defaults;
  defaults.loss_good = 0.15;
  auto base = defaults;
  bench::apply_scenario(opt, base);

  std::printf("=== Figure 3: adjustable reliability (jtp0/jtp10/jtp20) ===\n");
  std::printf("transfer=%llu pkts x 800 B, linear nets, %zu runs\n\n",
              static_cast<unsigned long long>(k), n_runs);

  const std::vector<double> tolerances = {0.0, 0.10, 0.20};
  const auto sizes =
      bench::sweep_or<std::size_t>(base.net_size, defaults.net_size,
                                   {2, 3, 4, 5, 6, 7, 8, 9});

  auto rep = bench::make_report(
      opt, "",
      {{"net_size", 0},
       {"jtp0_energy_j", 3, true},
       {"jtp10_energy_j", 3, true},
       {"jtp20_energy_j", 3, true},
       {"jtp0_kbit", 3, true},
       {"jtp10_kbit", 3, true},
       {"jtp20_kbit", 3, true}},
      17);
  rep.begin();

  for (std::size_t n : sizes) {
    std::vector<sim::Cell> row{n};
    std::vector<sim::Cell> kb_cells;
    for (double lt : tolerances) {
      auto runs = exp::run_seeds(
          n_runs, opt.seed,
          [&](std::uint64_t s) {
            auto spec = base;
            spec.seed = s + static_cast<std::uint64_t>(lt * 1000);
            spec.net_size = n;
            auto scenario = exp::build(spec);
            exp::FlowOptions fo;
            fo.loss_tolerance = lt;
            scenario.flows->create(0, static_cast<core::NodeId>(n - 1), k,
                                   0.0, fo);
            scenario.network->run_until(horizon);
            return scenario.flows->collect(horizon);
          },
          opt.jobs);
      row.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.total_energy_j;
      }));
      kb_cells.push_back(exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.delivered_kbit();
      }));
    }
    row.insert(row.end(), kb_cells.begin(), kb_cells.end());
    rep.row(std::move(row));
  }
  bench::finish_report(rep);
  const double total_kb = static_cast<double>(k) * 800 * 8 / 1e3;
  std::printf("\napplication requirement lines: 90%% = %.0f kb, 80%% = %.0f kb"
              " (of %.0f kb offered)\n",
              0.9 * total_kb, 0.8 * total_kb, total_kb);

  // ---- (c) per-packet attempt budget at the 3rd node of a 4-node path ----
  std::printf("\n");
  auto repc = bench::make_report(
      opt, "Fig 3(c): attempt budget assigned at node 2 of a 4-node path "
           "(jtp10)",
      {{"time_s", 1}, {"max_attempts", 0}}, 13, "attempts");
  {
    exp::ScenarioSpec spec;  // substrate defaults (loss_good 0.05)
    bench::apply_scenario(opt, spec);
    spec.seed = opt.seed;
    spec.net_size = 4;
    auto scenario = exp::build(spec);
    exp::FlowOptions fo;
    fo.loss_tolerance = 0.10;
    scenario.flows->create(0, 3, 0, 0.0, fo);  // long-lived
    std::vector<std::pair<double, int>> trace;
    scenario.network->mac_of(2).set_attempt_trace(
        [&](sim::Time t, const core::Packet&, int m) {
          trace.push_back({t, m});
        });
    scenario.network->run_until(opt.full ? 1200.0 : 400.0);
    repc.begin();
    std::printf("(stdout shows every 10th packet; the CSV has all)\n");
    for (std::size_t i = 0; i < trace.size(); ++i)
      repc.row({trace[i].first, trace[i].second}, /*echo=*/i % 10 == 0);
    bench::finish_report(repc);
    sim::Summary s;
    for (auto& [t, m] : trace) s.add(m);
    std::printf("mean attempt budget: %.2f (min %.0f, max %.0f, %zu pkts)\n",
                s.mean(), s.min(), s.max(), trace.size());
  }
  return 0;
}
