// Figure 3 (paper §3): adjustable reliability levels jtp0 / jtp10 / jtp20.
//
// (a) Total energy spent for a fixed-size transfer vs network size.
// (b) Data delivered to the application vs network size, against the
//     80% / 90% application-requirement lines.
// (c) Max number of link-layer (re)transmissions assigned per packet over
//     time at the third node of a 4-node path.
//
// Expected shape: energy(jtp20) < energy(jtp10) < energy(jtp0); delivered
// data stays above the requirement line for each tolerance.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/workload.h"
#include "sim/stats.h"

using namespace jtp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n_runs = opt.pick_runs(3, 20);
  const std::uint64_t k = opt.full ? 1600 : 400;
  const double horizon = opt.full ? 8000.0 : 4000.0;

  std::printf("=== Figure 3: adjustable reliability (jtp0/jtp10/jtp20) ===\n");
  std::printf("transfer=%llu pkts x 800 B, linear nets, %zu runs\n\n",
              static_cast<unsigned long long>(k), n_runs);

  const std::vector<double> tolerances = {0.0, 0.10, 0.20};
  const std::vector<std::size_t> sizes = {2, 3, 4, 5, 6, 7, 8, 9};

  exp::TablePrinter tp({"netSize", "jtp0 E(J)", "jtp10 E(J)", "jtp20 E(J)",
                        "jtp0 kb", "jtp10 kb", "jtp20 kb"},
                       13);
  tp.header(std::cout);

  for (std::size_t n : sizes) {
    std::vector<double> row{static_cast<double>(n)};
    std::vector<double> kb_cells;
    for (double lt : tolerances) {
      auto runs = exp::run_seeds(n_runs, opt.seed, [&](std::uint64_t s) {
        exp::ScenarioConfig sc;
        sc.seed = s + static_cast<std::uint64_t>(lt * 1000);
        sc.proto = exp::Proto::kJtp;
        // Residual loss high enough that the attempt budget differs
        // across tolerance levels even in the good state.
        sc.loss_good = 0.15;
        auto net = exp::make_linear(n, sc);
        exp::FlowManager fm(*net, exp::Proto::kJtp);
        exp::FlowOptions fo;
        fo.loss_tolerance = lt;
        fm.create(0, static_cast<core::NodeId>(n - 1), k, 0.0, fo);
        net->run_until(horizon);
        return fm.collect(horizon);
      });
      const auto energy =
          exp::aggregate(runs, [](const exp::RunMetrics& m) {
            return m.total_energy_j;
          });
      const auto kb = exp::aggregate(runs, [](const exp::RunMetrics& m) {
        return m.delivered_kbit();
      });
      row.push_back(energy.mean);
      kb_cells.push_back(kb.mean);
    }
    row.insert(row.end(), kb_cells.begin(), kb_cells.end());
    tp.row(std::cout, row);
  }
  const double total_kb = static_cast<double>(k) * 800 * 8 / 1e3;
  std::printf("\napplication requirement lines: 90%% = %.0f kb, 80%% = %.0f kb"
              " (of %.0f kb offered)\n",
              0.9 * total_kb, 0.8 * total_kb, total_kb);

  // ---- (c) per-packet attempt budget at the 3rd node of a 4-node path ----
  std::printf("\n--- Fig 3(c): attempt budget assigned at node 2 of a 4-node "
              "path (jtp10) ---\n");
  {
    exp::ScenarioConfig sc;
    sc.seed = opt.seed;
    sc.proto = exp::Proto::kJtp;
    auto net = exp::make_linear(4, sc);
    exp::FlowManager fm(*net, exp::Proto::kJtp);
    exp::FlowOptions fo;
    fo.loss_tolerance = 0.10;
    fm.create(0, 3, 0, 0.0, fo);  // long-lived
    std::vector<std::pair<double, int>> trace;
    net->mac_of(2).set_attempt_trace(
        [&](sim::Time t, const core::Packet&, int m) {
          trace.push_back({t, m});
        });
    net->run_until(opt.full ? 1200.0 : 400.0);
    std::printf("time(s)  max_attempts   (every 10th packet)\n");
    for (std::size_t i = 0; i < trace.size(); i += 10)
      std::printf("%7.1f  %d\n", trace[i].first, trace[i].second);
    sim::Summary s;
    for (auto& [t, m] : trace) s.add(m);
    std::printf("mean attempt budget: %.2f (min %.0f, max %.0f, %zu pkts)\n",
                s.mean(), s.min(), s.max(), trace.size());
  }
  return 0;
}
