// §4.1 analysis: expected total node transmissions with and without
// in-network caching — closed forms (eqs. 5 and 6) against Monte-Carlo.
//
// The Monte-Carlo draws are intentionally serial over the (p, H) grid so
// the sequence of samples — and therefore the committed baseline CSV — is
// independent of --jobs.
#include <cstdio>

#include "bench_util.h"
#include "core/analysis.h"
#include "sim/random.h"

using namespace jtp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::reject_scenario_flags(
      opt, "this bench evaluates closed forms, not a simulated scenario");
  const int k = opt.full ? 20000 : 4000;

  std::printf("=== Analysis: in-network caching gain (eqs. 5-6) ===\n");
  std::printf("k=%d packets, attempts n=5 per link (MAX_ATTEMPTS)\n\n", k);

  auto rep = bench::make_report(opt, "",
                                {{"p", 2},
                                 {"h", 0},
                                 {"eq5_jtp", 0},
                                 {"mc_jtp", 0},
                                 {"eq6_exact", 0},
                                 {"eq6_approx", 0},
                                 {"mc_jnc", 0},
                                 {"gain", 3}},
                                12);
  rep.begin();

  sim::Rng rng(opt.seed);
  for (double p : {0.05, 0.2, 0.35, 0.45}) {
    for (int h : {1, 3, 5, 7, 9}) {
      const int n = 5;
      const double eq5 = core::expected_tx_with_caching(k, h, p);
      const double mc5 = core::simulate_tx_with_caching(k, h, p, rng);
      const double eq6 = core::expected_tx_without_caching_exact(k, h, p, n);
      const double eq6a = core::expected_tx_without_caching_approx(k, h, p, n);
      const double mc6 = core::simulate_tx_without_caching(k, h, p, n, rng);
      rep.row({p, h, eq5, mc5, eq6, eq6a, mc6, core::caching_gain(h, p, n)});
    }
  }
  bench::finish_report(rep);
  std::printf("\nexpected: mc columns match their closed forms; the JNC/JTP "
              "gain grows with H and with p.\n");
  return 0;
}
