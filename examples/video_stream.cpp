// Loss-tolerant media streaming with per-layer importance.
//
// The scenario the paper's adjustable-reliability design targets (§3):
// a video-like source whose base layer must arrive (0% loss tolerance,
// high energy importance β) while the enhancement layer tolerates 20%
// loss. Both stream over the same lossy 6-node chain; the network spends
// per-link retransmission effort according to each packet's tolerance.
//
//   $ ./video_stream
#include <cstdio>

#include "exp/scenario.h"
#include "exp/workload.h"

int main() {
  using namespace jtp;

  exp::ScenarioSpec spec;
  spec.topology = exp::TopologyKind::kLinear;
  spec.net_size = 6;
  spec.seed = 7;
  spec.proto = exp::Proto::kJtp;
  spec.loss_good = 0.12;  // noisy environment
  spec.loss_bad = 0.60;
  auto built = exp::build(spec);  // manual workload: flows attached below
  auto& network = built.network;
  auto& flows = *built.flows;

  // Base layer: every packet matters; spend energy generously.
  exp::FlowOptions base;
  base.loss_tolerance = 0.0;
  base.energy_beta = 6.0;  // high importance: big budget headroom
  auto& base_flow = flows.create(0, 5, 0, 0.0, base);

  // Enhancement layer: a fifth of it may be dropped without visible harm.
  exp::FlowOptions enhancement;
  enhancement.loss_tolerance = 0.20;
  enhancement.energy_beta = 2.0;  // lower importance
  auto& enh_flow = flows.create(0, 5, 0, 0.0, enhancement);

  const double duration = 900.0;
  network->run_until(duration);

  auto report = [&](const char* name,
                    const exp::FlowManager::FlowHandle& f) {
    const double offered =
        static_cast<double>(f.delivered_packets() + f.waived_packets());
    const double delivered_share =
        offered > 0 ? f.delivered_packets() / offered : 0.0;
    std::printf("  %-12s delivered=%llu waived=%llu (%.1f%% of stream) "
                "src-rtx=%llu\n",
                name, static_cast<unsigned long long>(f.delivered_packets()),
                static_cast<unsigned long long>(f.waived_packets()),
                100.0 * delivered_share,
                static_cast<unsigned long long>(f.source_rtx()));
  };

  std::printf("Two-layer stream over a lossy 6-node chain (%.0f s)\n",
              duration);
  report("base", base_flow);
  report("enhancement", enh_flow);

  const auto m = flows.collect(duration);
  std::printf("  total energy %.2f J, %.2f uJ per delivered bit\n",
              m.total_energy_j, m.energy_per_bit_uj());
  std::printf("\nThe enhancement layer trades ~20%% of its packets for a "
              "smaller\nretransmission budget at every hop (eqs. 2-4), so "
              "the base layer's\nreliability costs the network less than "
              "full reliability for all.\n");
  return 0;
}
