// A mobile ad-hoc mesh: 12 nodes under random-waypoint motion carrying
// three concurrent JTP flows, with routes recomputed periodically from the
// (stale) link-state view. Demonstrates that in-network caches keep
// recovering packets even while paths churn (paper §6.1.2, Fig. 11).
//
//   $ ./mobile_mesh [speed_mps]
#include <cstdio>
#include <cstdlib>

#include "exp/scenario.h"
#include "exp/workload.h"

int main(int argc, char** argv) {
  using namespace jtp;
  const double speed = argc > 1 ? std::atof(argv[1]) : 1.0;

  exp::ScenarioSpec spec;
  spec.topology = exp::TopologyKind::kRandom;
  spec.net_size = 12;
  spec.speed_mps = speed;
  spec.seed = 99;
  spec.proto = exp::Proto::kJtp;
  auto built = exp::build(spec);  // manual workload: flows attached below
  auto& network = built.network;
  auto& flows = *built.flows;
  flows.create(0, 11, 0, 5.0);
  flows.create(3, 8, 0, 10.0);
  flows.create(6, 1, 0, 15.0);

  const double duration = 1200.0;
  std::printf("12-node mesh, random waypoint at %.1f m/s, 3 flows, %.0f s\n",
              speed, duration);
  for (double t = 200; t <= duration; t += 200) {
    network->run_until(t);
    const auto m = flows.collect(t);
    std::printf("  t=%5.0f  delivered=%6llu pkts  cache-rtx=%4llu  "
                "src-rtx=%4llu  route-drops=%4llu  E/bit=%.2f uJ\n", t,
                static_cast<unsigned long long>(m.delivered_packets),
                static_cast<unsigned long long>(m.cache_retransmissions),
                static_cast<unsigned long long>(m.source_retransmissions),
                static_cast<unsigned long long>(m.route_drops),
                m.energy_per_bit_uj());
  }

  const auto m = flows.collect(duration);
  std::printf("\nFinal: %.1f kbit delivered, %.2f uJ/bit, goodput %.3f kbps "
              "per flow\n",
              m.delivered_kbit(), m.energy_per_bit_uj(),
              m.per_flow_goodput_kbps_mean);
  std::printf("Route drops occur while the link-state view is stale after "
              "movement;\nSNACK-driven recovery (caches first, source as "
              "last resort) repairs them.\n");
  return 0;
}
