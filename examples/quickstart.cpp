// Quickstart: a JTP bulk transfer over a 5-node wireless chain.
//
// Declares the whole experiment as a ScenarioSpec — topology, channel,
// protocol, and workload — builds it, runs it, and prints delivery/energy
// statistics. The same spec can be written as a string and passed to any
// bench: --scenario 'net_size=5,workload=ends,flows=1,transfer=200'
// (protocol and seed go through the dedicated --proto / --seed flags).
//
//   $ ./quickstart
#include <cstdio>

#include "exp/scenario.h"
#include "exp/workload.h"

int main() {
  using namespace jtp;

  // 1. Describe the scenario: 5 nodes in a chain, Gilbert-Elliott links
  //    (10% of the time in a bad state), paper-default JTP parameters,
  //    one fixed-size transfer (200 x 800 B) from end to end.
  exp::ScenarioSpec spec;
  spec.topology = exp::TopologyKind::kLinear;
  spec.net_size = 5;
  spec.seed = 42;
  spec.proto = exp::Proto::kJtp;
  spec.workload.kind = exp::WorkloadKind::kEnds;
  spec.workload.n_flows = 1;
  spec.workload.transfer_packets = 200;
  spec.workload.loss_tolerance = 0.0;  // bulk data: deliver everything

  // 2. Build it: network + flow manager, workload already attached.
  auto scenario = exp::build(spec);
  const auto& flow = *scenario.flows->flows().front();

  // 3. Run the simulation until the transfer completes (or 1 hour).
  scenario.network->run_until(3600.0);

  // 4. Report through the unified FlowHandle counters.
  const auto m = scenario.flows->collect(scenario.network->simulator().now());
  std::printf("JTP quickstart: 200 x 800 B over a 5-node chain\n");
  std::printf("  scenario:               %s\n", exp::to_string(spec).c_str());
  std::printf("  finished:               %s (t=%.1f s)\n",
              flow.finished() ? "yes" : "no", flow.completed_at);
  std::printf("  packets delivered:      %llu\n",
              static_cast<unsigned long long>(flow.delivered_packets()));
  std::printf("  source retransmissions: %llu\n",
              static_cast<unsigned long long>(flow.source_rtx()));
  std::printf("  cache retransmissions:  %llu (recovered in-network)\n",
              static_cast<unsigned long long>(m.cache_retransmissions));
  std::printf("  ACKs sent:              %llu\n",
              static_cast<unsigned long long>(m.acks_sent));
  std::printf("  total energy:           %.3f J\n", m.total_energy_j);
  std::printf("  energy per bit:         %.2f uJ/bit\n",
              m.energy_per_bit_uj());
  return flow.finished() ? 0 : 1;
}
