// Quickstart: a JTP bulk transfer over a 5-node wireless chain.
//
// Builds a linear JAVeLEN-like network, attaches one JTP flow from node 0
// to node 4, transfers 200 packets (160 KB) with full reliability, and
// prints delivery/energy statistics.
//
//   $ ./quickstart
#include <cstdio>

#include "exp/scenario.h"
#include "exp/workload.h"

int main() {
  using namespace jtp;

  // 1. Describe the scenario: 5 nodes in a chain, Gilbert-Elliott links
  //    (10% of the time in a bad state), paper-default JTP parameters.
  exp::ScenarioConfig scenario;
  scenario.seed = 42;
  scenario.proto = exp::Proto::kJtp;
  auto network = exp::make_linear(/*net_size=*/5, scenario);

  // 2. Attach a JTP flow and start a fixed-size transfer.
  exp::FlowManager flows(*network, exp::Proto::kJtp);
  exp::FlowOptions options;
  options.loss_tolerance = 0.0;  // bulk data: deliver everything
  auto& flow = flows.create(/*src=*/0, /*dst=*/4, /*total_packets=*/200,
                            /*start_delay_s=*/0.0, options);

  // 3. Run the simulation until the transfer completes (or 1 hour).
  network->run_until(3600.0);

  // 4. Report.
  const auto m = flows.collect(network->simulator().now());
  std::printf("JTP quickstart: 200 x 800 B over a 5-node chain\n");
  std::printf("  finished:               %s (t=%.1f s)\n",
              flow.finished() ? "yes" : "no", flow.completed_at);
  std::printf("  packets delivered:      %llu\n",
              static_cast<unsigned long long>(flow.delivered_packets()));
  std::printf("  source retransmissions: %llu\n",
              static_cast<unsigned long long>(flow.source_rtx()));
  std::printf("  cache retransmissions:  %llu (recovered in-network)\n",
              static_cast<unsigned long long>(m.cache_retransmissions));
  std::printf("  ACKs sent:              %llu\n",
              static_cast<unsigned long long>(m.acks_sent));
  std::printf("  total energy:           %.3f J\n", m.total_energy_j);
  std::printf("  energy per bit:         %.2f uJ/bit\n",
              m.energy_per_bit_uj());
  return flow.finished() ? 0 : 1;
}
