// Convergecast data collection: several sensors report readings as framed
// application messages to one sink, using the application module
// (fragmentation/reassembly, §2.2.1) on top of JTP flows with moderate
// loss tolerance — the "data collection" workload the paper's conclusion
// names as future work.
//
//   $ ./sensor_collection
#include <cstdio>
#include <map>
#include <set>

#include "core/fragmentation.h"
#include "exp/scenario.h"
#include "exp/workload.h"

int main() {
  using namespace jtp;

  exp::ScenarioSpec spec;
  spec.topology = exp::TopologyKind::kRandom;
  spec.net_size = 10;
  spec.seed = 17;
  spec.proto = exp::Proto::kJtp;
  auto built = exp::build(spec);  // manual workload: flows attached below
  auto& network = built.network;
  auto& flows = *built.flows;

  // Node 0 is the sink; every other even node is a sensor pushing 24 KB
  // reports (fragments of 800 B payloads carry ~784 app bytes each).
  const core::NodeId sink = 0;
  core::Fragmenter fragmenter(core::kDefaultPayloadBytes);
  struct Sensor {
    exp::FlowManager::FlowHandle* flow = nullptr;
    core::Reassembler reassembler;
    std::map<core::SeqNo, core::Fragment> by_seq;  // seq -> fragment
    std::set<core::SeqNo> delivered;
    std::uint64_t reports_done = 0;
  };
  std::map<core::NodeId, Sensor> sensors;

  const std::uint64_t kReportBytes = 24 * 1024;
  const int kReportsPerSensor = 4;

  for (core::NodeId s = 2; s < 10; s += 2) {
    auto& sensor = sensors[s];
    // Map each report's fragments onto consecutive JTP sequence numbers.
    core::SeqNo next_seq = 0;
    for (int r = 0; r < kReportsPerSensor; ++r) {
      for (const auto& frag : fragmenter.fragment(r, kReportBytes))
        sensor.by_seq[next_seq++] = frag;
    }
    exp::FlowOptions opt;
    opt.loss_tolerance = 0.05;  // readings are redundant across fragments
    auto& flow = flows.create(s, sink, next_seq, 5.0 * s, opt);
    sensor.flow = &flow;
    // Reassemble at the sink as fragments are delivered (set_on_deliver is
    // JTP-specific instrumentation, reached through the typed accessor).
    flow.receiver_as<core::EjtpReceiver>()->set_on_deliver(
        [&sensor](core::SeqNo seq, std::uint32_t) {
          const auto it = sensor.by_seq.find(seq);
          if (it == sensor.by_seq.end()) return;
          sensor.delivered.insert(seq);
          if (sensor.reassembler.add(it->second)) ++sensor.reports_done;
        });
  }

  network->run_until(7200.0);

  // A finished transfer's unseen fragments were waived by the receiver:
  // account for them so partially-lossy reports still complete.
  for (auto& [id, sensor] : sensors) {
    if (!sensor.flow->finished()) continue;
    for (const auto& [seq, frag] : sensor.by_seq) {
      if (sensor.delivered.count(seq)) continue;
      if (sensor.reassembler.waive(frag.message_id, frag.index, frag.count))
        ++sensor.reports_done;
    }
  }

  std::printf("Sensor collection: 4 sensors x %d reports of %llu KB -> "
              "node %u\n",
              kReportsPerSensor,
              static_cast<unsigned long long>(kReportBytes / 1024), sink);
  for (auto& [id, sensor] : sensors) {
    std::printf("  sensor %2u: %llu/%d reports complete, %llu fragments "
                "delivered, %llu waived\n",
                id, static_cast<unsigned long long>(sensor.reports_done),
                kReportsPerSensor,
                static_cast<unsigned long long>(
                    sensor.flow->delivered_packets()),
                static_cast<unsigned long long>(
                    sensor.flow->waived_packets()));
  }
  const auto m = flows.collect(network->simulator().now());
  std::printf("  network energy: %.2f J (%.2f uJ/bit)\n", m.total_energy_j,
              m.energy_per_bit_uj());
  std::printf("\nEach waived fragment is an absent reading the application "
              "tolerated\nin exchange for fewer link-layer retransmissions "
              "along the path.\n");
  return 0;
}
