#!/usr/bin/env python3
"""Tolerance-band comparison of bench CSVs against committed baselines.

The bench binaries are deterministic for a fixed seed, but floating-point
results may drift across compilers, libms, and FMA contraction choices, and
genuinely stochastic series (anything averaged over seeds) should be judged
by statistical closeness, not bit equality. This checker therefore enforces:

  * identical headers (column names, in order) and identical row counts;
  * text cells equal exactly;
  * a numeric cell passes if
      |a - b| <= abs_tol + rel_tol * max(|a|, |b|)
    or, when the column has a `<name>_ci95` sibling, if
      |a - b| <= ci_mult * (ci_a + ci_b)
    (both runs agree within their combined confidence intervals);
  * `*_ci95` columns are noise estimates of noise and get the (wider)
    --ci-rel-tol band instead of --rel-tol.

Exit status: 0 when every compared file passes, 1 on any mismatch, 2 on
usage errors. Use --baseline-dir/--candidate-dir to compare a whole suite:
every baseline *.csv must exist and pass on the candidate side (extra
candidate files are reported but do not fail the run).
"""

import argparse
import csv
import glob
import os
import sys


def is_number(s):
    try:
        float(s)
        return True
    except ValueError:
        return False


def compare_file(base_path, cand_path, opts):
    """Returns a list of human-readable mismatch strings (empty = pass)."""
    errors = []
    try:
        with open(base_path, newline="") as f:
            base = list(csv.reader(f))
    except OSError as e:
        return [f"cannot read baseline: {e}"]
    try:
        with open(cand_path, newline="") as f:
            cand = list(csv.reader(f))
    except OSError as e:
        return [f"cannot read candidate: {e}"]

    if not base or not base[0]:
        return ["baseline is empty"]
    if not cand or not cand[0]:
        return ["candidate is empty"]

    header, cand_header = base[0], cand[0]
    if header != cand_header:
        return [f"header mismatch: baseline {header} vs candidate {cand_header}"]
    if len(base) != len(cand):
        return [f"row count mismatch: baseline {len(base) - 1} vs "
                f"candidate {len(cand) - 1} data rows"]

    ci_col = {}  # data column index -> its _ci95 sibling index
    for i, name in enumerate(header):
        if not name.endswith("_ci95") and (name + "_ci95") in header:
            ci_col[i] = header.index(name + "_ci95")

    for r, (brow, crow) in enumerate(zip(base[1:], cand[1:]), start=2):
        if len(brow) != len(header) or len(crow) != len(header):
            errors.append(f"row {r}: ragged row "
                          f"({len(brow)} vs {len(crow)} cells, "
                          f"{len(header)} columns)")
            continue
        for c, (b, a) in enumerate(zip(brow, crow)):
            name = header[c]
            if not (is_number(b) and is_number(a)):
                if b != a:
                    errors.append(f"row {r}, col '{name}': text cell "
                                  f"'{b}' != '{a}'")
                continue
            fb, fa = float(b), float(a)
            rel = opts.ci_rel_tol if name.endswith("_ci95") else opts.rel_tol
            band = opts.abs_tol + rel * max(abs(fb), abs(fa))
            diff = abs(fb - fa)
            if diff <= band:
                continue
            if c in ci_col:
                cb, ca = brow[ci_col[c]], crow[ci_col[c]]
                if is_number(cb) and is_number(ca):
                    ci_band = opts.ci_mult * (abs(float(cb)) + abs(float(ca)))
                    if diff <= ci_band:
                        continue
            errors.append(f"row {r}, col '{name}': {fb} vs {fa} "
                          f"(diff {diff:.6g} > band {band:.6g})")
    return errors


def main():
    p = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("baseline", nargs="?", help="baseline CSV file")
    p.add_argument("candidate", nargs="?", help="candidate CSV file")
    p.add_argument("--baseline-dir", help="directory of baseline *.csv files")
    p.add_argument("--candidate-dir", help="directory of candidate CSV files")
    p.add_argument("--rel-tol", type=float, default=0.05,
                   help="relative tolerance for numeric cells (default 0.05)")
    p.add_argument("--abs-tol", type=float, default=1e-6,
                   help="absolute tolerance for numeric cells (default 1e-6)")
    p.add_argument("--ci-mult", type=float, default=3.0,
                   help="accept |a-b| <= ci-mult*(ci_a+ci_b) for columns "
                        "with a _ci95 sibling (default 3.0)")
    p.add_argument("--ci-rel-tol", type=float, default=0.75,
                   help="relative tolerance for *_ci95 columns themselves "
                        "(default 0.75; CIs of few runs are very noisy)")
    opts = p.parse_args()

    if bool(opts.baseline_dir) != bool(opts.candidate_dir):
        p.error("--baseline-dir and --candidate-dir must be used together")
    if opts.baseline_dir:
        pairs = []
        for base_path in sorted(glob.glob(os.path.join(opts.baseline_dir,
                                                       "*.csv"))):
            name = os.path.basename(base_path)
            pairs.append((name, base_path,
                          os.path.join(opts.candidate_dir, name)))
        if not pairs:
            print(f"error: no *.csv baselines in {opts.baseline_dir}",
                  file=sys.stderr)
            return 2
        extra = (set(os.path.basename(f) for f in
                     glob.glob(os.path.join(opts.candidate_dir, "*.csv"))) -
                 set(name for name, _, _ in pairs))
        for name in sorted(extra):
            print(f"note: candidate file {name} has no baseline "
                  f"(add it to {opts.baseline_dir}?)")
    elif opts.baseline and opts.candidate:
        pairs = [(os.path.basename(opts.baseline), opts.baseline,
                  opts.candidate)]
    else:
        p.error("give BASELINE CANDIDATE files or both --*-dir options")

    failed = 0
    for name, base_path, cand_path in pairs:
        errors = compare_file(base_path, cand_path, opts)
        if errors:
            failed += 1
            print(f"FAIL {name}")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            print(f"ok   {name}")
    if failed:
        print(f"{failed}/{len(pairs)} file(s) outside tolerance")
        return 1
    print(f"all {len(pairs)} file(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
