#!/usr/bin/env sh
# Runs every figure/table bench at the canonical baseline operating point
# (quick scale, --seed 1) and writes each bench's CSV set into OUTDIR.
#
# This script is the single definition of "the baseline configuration":
# tools/record_baselines regenerates bench/baselines/ with it, and CI runs
# it to produce the candidate CSVs that tools/compare_bench_csv.py checks
# against the committed baselines. Change the flags here and you must also
# regenerate the baselines.
#
# usage: run_bench_suite.sh BENCH_BIN_DIR OUTDIR [JOBS]
#   BENCH_BIN_DIR  directory with the built bench binaries (build/bench)
#   OUTDIR         where the CSVs (and per-bench stdout logs) land
#   JOBS           --jobs value; 0 = one per hardware thread (default)
set -eu

BIN=${1:?usage: run_bench_suite.sh BENCH_BIN_DIR OUTDIR [JOBS]}
OUT=${2:?usage: run_bench_suite.sh BENCH_BIN_DIR OUTDIR [JOBS]}
JOBS=${3:-0}

# micro_perf and scale_sweep are excluded: their output includes
# wall-clock timings, which are machine-dependent and meaningless to
# diff against a committed baseline.
BENCHES="fig03_reliability fig04_caching fig05_backoff fig06_cache_size \
fig07_feedback fig08_adaptation fig09_linear fig10_random fig11_mobility \
table2_testbed analysis_caching_gain ablation_flipflop ablation_snack_rewrite"

mkdir -p "$OUT"
for b in $BENCHES; do
  echo "== $b"
  "$BIN/$b" --seed 1 --jobs "$JOBS" --csv "$OUT/$b.csv" > "$OUT/$b.log"
done
echo "suite done: $(ls "$OUT"/*.csv | wc -l) CSV file(s) in $OUT"
