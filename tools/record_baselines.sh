#!/usr/bin/env sh
# Regenerates the committed regression baselines in bench/baselines/ by
# running the canonical suite (tools/run_bench_suite.sh) and moving the
# CSVs into place. Run from the repo root after a deliberate change to
# bench outputs, then commit the diff.
#
# usage: record_baselines.sh [BENCH_BIN_DIR]
set -eu

BIN=${1:-build/bench}
ROOT=$(dirname "$0")/..
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$(dirname "$0")/run_bench_suite.sh" "$BIN" "$TMP"

mkdir -p "$ROOT/bench/baselines"
rm -f "$ROOT/bench/baselines"/*.csv
cp "$TMP"/*.csv "$ROOT/bench/baselines/"
echo "baselines updated: $(ls "$ROOT/bench/baselines"/*.csv | wc -l) files"
echo "review the diff and commit bench/baselines/"
