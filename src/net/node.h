// A network node: MAC + iJTP plug-in + routing client + local endpoints.
//
// The node is the composition point of the stack. It implements the
// per-packet pipeline of Figure 1:
//   outbound:  endpoint -> route lookup -> MAC queue -> (pre-xmit hook:
//              iJTP Algorithm 1 for JTP flows) -> air;
//   inbound:   air -> (post-receive hook: iJTP Algorithm 2 — cache data,
//              serve SNACKs from cache) -> local delivery or forward.
// Which treatment a packet gets depends on its flow's hop policy,
// looked up in the network-wide flow table.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/ijtp.h"
#include "core/packet.h"
#include "core/packet_pool.h"
#include "core/types.h"
#include "mac/mac.h"
#include "routing/link_state.h"

namespace jtp::net {

// The in-network half of a transport: how intermediate hops treat a
// flow's packets. This is a small closed set of per-hop behaviours — an
// open-ended set of end-to-end protocols (see net::TransportRegistry)
// picks from it at registration time, so a new protocol needs no edits
// here.
enum class HopPolicy : std::uint8_t {
  kIjtp,       // Algorithms 1-2: attempt control, caching, SNACK service
  kRateStamp,  // ATP-style available-rate stamping, fixed attempts
  kPlain,      // no in-network help, fixed attempts (TCP)
};

// Shared flow -> hop-policy registry (one per Network).
class FlowTable {
 public:
  void register_flow(core::FlowId flow, HopPolicy policy) {
    policies_[flow] = policy;
  }
  HopPolicy policy(core::FlowId flow) const {
    auto it = policies_.find(flow);
    return it == policies_.end() ? HopPolicy::kIjtp : it->second;
  }

 private:
  std::unordered_map<core::FlowId, HopPolicy> policies_;
};

struct NodeConfig {
  core::IjtpConfig ijtp;
  int baseline_max_attempts = core::kDefaultMaxAttempts;
  // Horizon over which standing queue backlog is converted into an
  // available-rate discount for JTP's stamp (shorter = more conservative
  // congestion avoidance).
  double backlog_drain_horizon_s = 5.0;
};

class Node final : public core::PacketSink {
 public:
  // `pool` is the simulation's packet pool (cache retransmissions clone
  // cached headers into fresh slots); it must outlive the node.
  Node(core::NodeId id, mac::MacIface& mac,
       const routing::LinkStateRouting& routing, const FlowTable& flows,
       core::PacketPool& pool, NodeConfig cfg = {});

  core::NodeId id() const { return id_; }
  core::IjtpModule& ijtp() { return ijtp_; }
  const core::IjtpModule& ijtp() const { return ijtp_; }
  mac::MacIface& mac() { return *mac_; }

  // Shard migration: rebinds the stack onto the new owning shard's
  // replicas — the adopted MAC (which has already copied the old one's
  // state), that shard's routing view and packet pool — and re-installs
  // the pre-xmit hook on the new MAC. Called only at epoch barriers,
  // with both MACs quiescent.
  void rebind(mac::MacIface& mac, const routing::LinkStateRouting& routing,
              core::PacketPool& pool);

  // PacketSink: local endpoints and the forwarding path inject here.
  // Packets move by pooled handle end to end (zero copies per hop).
  void send(core::PacketPtr p) override;

  // Like send(), but reports whether the packet was accepted by the MAC
  // queue (false on route failure or queue overflow). Used by iJTP's
  // cache-retransmission path, which must know if the copy really left.
  bool try_send(core::PacketPtr p);

  // Called by the network fabric when a transmission reaches this node.
  void handle_delivery(core::PacketPtr p, core::NodeId from);

  // Local endpoint registration. Data handler runs for data packets whose
  // dst is this node; ack handler for ACKs whose dst is this node.
  using PacketHandler = std::function<void(const core::Packet&)>;
  void attach_data_handler(core::FlowId flow, PacketHandler h);
  void attach_ack_handler(core::FlowId flow, PacketHandler h);

  std::uint64_t route_drops() const { return route_drops_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  mac::PreXmitDecision pre_xmit(core::Packet& p, core::NodeId next_hop,
                                const core::LinkView& link,
                                core::Joules tx_energy, bool first_attempt);

  void install_pre_xmit();

  core::NodeId id_;
  // Pointers, not references: migration rebinds them to another shard's
  // replicas mid-run (rebind()).
  mac::MacIface* mac_;
  const routing::LinkStateRouting* routing_;
  const FlowTable& flows_;
  core::PacketPool* pool_;
  NodeConfig cfg_;
  core::IjtpModule ijtp_;

  std::unordered_map<core::FlowId, PacketHandler> data_handlers_;
  std::unordered_map<core::FlowId, PacketHandler> ack_handlers_;

  std::uint64_t route_drops_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace jtp::net
