#include "net/node.h"

#include <algorithm>
#include <utility>

namespace jtp::net {

Node::Node(core::NodeId id, mac::MacIface& mac,
           const routing::LinkStateRouting& routing, const FlowTable& flows,
           core::PacketPool& pool, NodeConfig cfg)
    : id_(id),
      mac_(&mac),
      routing_(&routing),
      flows_(flows),
      pool_(&pool),
      cfg_(cfg),
      ijtp_(cfg.ijtp) {
  install_pre_xmit();
}

void Node::install_pre_xmit() {
  mac_->set_pre_xmit([this](core::Packet& p, core::NodeId next_hop,
                            const core::LinkView& link, core::Joules tx_energy,
                            bool first_attempt) {
    return pre_xmit(p, next_hop, link, tx_energy, first_attempt);
  });
}

void Node::rebind(mac::MacIface& mac, const routing::LinkStateRouting& routing,
                  core::PacketPool& pool) {
  mac_ = &mac;
  routing_ = &routing;
  pool_ = &pool;
  install_pre_xmit();
}

void Node::attach_data_handler(core::FlowId flow, PacketHandler h) {
  data_handlers_[flow] = std::move(h);
}

void Node::attach_ack_handler(core::FlowId flow, PacketHandler h) {
  ack_handlers_[flow] = std::move(h);
}

void Node::send(core::PacketPtr p) { try_send(std::move(p)); }

bool Node::try_send(core::PacketPtr p) {
  const auto next = routing_->next_hop(id_, p->dst);
  if (!next) {
    // The current topology view has no route (partition or staleness).
    ++route_drops_;
    return false;
  }
  return mac_->enqueue(std::move(p), *next);
}

mac::PreXmitDecision Node::pre_xmit(core::Packet& p, core::NodeId /*next_hop*/,
                                    const core::LinkView& link,
                                    core::Joules tx_energy,
                                    bool first_attempt) {
  switch (flows_.policy(p.flow)) {
    case HopPolicy::kIjtp: {
      // JTP's congestion-avoidance twist: the idle-slot estimate looks
      // backward, but standing queue backlog is committed future usage.
      // Discounting it turns the stamped available rate down *before* the
      // queue overflows — avoiding loss instead of reacting to it (§2,
      // goal 3). The baselines stamp the raw estimate.
      core::LinkView adjusted = link;
      const double backlog_pps =
          static_cast<double>(mac_->queue_length()) /
          cfg_.backlog_drain_horizon_s;
      adjusted.available_rate_pps =
          std::max(0.0, adjusted.available_rate_pps - backlog_pps);
      const auto remaining = routing_->hops(id_, p.dst);
      const auto r = ijtp_.pre_xmit(p, adjusted, remaining.value_or(1),
                                    tx_energy, first_attempt);
      return {r.drop, r.max_attempts};
    }
    case HopPolicy::kRateStamp: {
      // ATP stamps the rate implied by queueing + transmission delay,
      // R = 1/(Q̄ + T̄) (Sundaresan et al. [34]): the bottleneck's *total*
      // sustainable rate, not its idle share. Every competing flow is
      // told the same number, so in aggregate ATP drives the path to
      // saturation with no headroom — and, unlike JTP (§2.1.1), the
      // estimate is not normalized by MAC-level retransmissions. No
      // attempt control, energy budgeting, or cache interplay either.
      if (p.is_data()) {
        const double capacity =
            mac_->estimator().config().node_capacity_pps;
        const double sustainable =
            capacity / static_cast<double>(mac_->queue_length() + 1);
        p.available_rate_pps =
            std::min(p.available_rate_pps, sustainable);
      }
      return {false, cfg_.baseline_max_attempts};
    }
    case HopPolicy::kPlain:
      return {false, cfg_.baseline_max_attempts};
  }
  return {false, cfg_.baseline_max_attempts};
}

void Node::handle_delivery(core::PacketPtr p, core::NodeId /*from*/) {
  const bool local = (p->dst == id_);

  // iJTP post-receive (Algorithm 2) runs at intermediate nodes of JTP
  // flows: cache traversing data, serve SNACKs from the cache (queued
  // toward the data destination), rewrite the ACK's locally-recovered set
  // before it continues upstream. Cache retransmissions are stack-built
  // Packet values (headers only); they enter the pool here.
  if (!local && flows_.policy(p->flow) == HopPolicy::kIjtp) {
    ijtp_.post_rcv(*p, [this](core::Packet&& rtx) {
      return try_send(pool_->make(std::move(rtx)));
    });
  }

  if (!local) {
    ++forwarded_;
    send(std::move(p));
    return;
  }

  if (p->is_data()) {
    if (auto it = data_handlers_.find(p->flow); it != data_handlers_.end())
      it->second(*p);
  } else {
    if (auto it = ack_handlers_.find(p->flow); it != ack_handlers_.end())
      it->second(*p);
  }
}

}  // namespace jtp::net
