#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "mac/csma_mac.h"

namespace jtp::net {

Network::Shard::Shard(const NetworkConfig& cfg, const phy::Topology& master,
                      bool replicate_topo)
    : topo_replica(replicate_topo ? std::make_unique<phy::Topology>(master)
                                  : nullptr),
      channel(cfg.channel, sim::Rng(cfg.seed).derive("channel")),
      energy(master.size(), cfg.radio),
      env(sim, pool) {
  topo_view = topo_replica ? topo_replica.get() : &master;
  routing = std::make_unique<routing::LinkStateRouting>(sim, *topo_view,
                                                        cfg.routing);
  // The link layer comes from the registry: one fabric per shard, one
  // MacIface per node. MAC construction draws no randomness and
  // schedules no events, and the TDMA schedule/coloring is a pure
  // function of seed and topology — every shard's replica is identical,
  // and only the MACs of nodes the shard owns ever run.
  const mac::MacContext mctx{sim,     *topo_view, channel, energy,
                             cfg.slot_duration_s, cfg.seed, cfg.mac};
  fabric = mac::MacRegistry::instance().info(cfg.mac_kind).factory->make(
      mctx);
}

Network::Network(phy::Topology topology, NetworkConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), topo_(std::move(topology)) {
  // Size the channel's per-link state tables from the node count when the
  // scenario didn't: a connected random field carries ~4 links/node, and
  // the reserve is what keeps the hot-path lookup rehash-free.
  if (cfg_.channel.expected_links == 0)
    cfg_.channel.expected_links = 4 * topo_.size();
  const std::size_t want = cfg.shards == 0 ? 1 : cfg.shards;
  // Spatially contiguous strips: cross-shard traffic only crosses strip
  // boundaries, so almost all deliveries stay on the owning shard's
  // zero-alloc pipeline. May yield fewer shards than asked for. The
  // strip intervals are fixed geography for the run; under mobility
  // shard_of_ is the live assignment and drifts from them until a
  // migration pass re-homes the movers.
  part_ = phy::partition_strips(topo_, want);
  shard_of_ = std::move(part_.assignment);
  // Cross-shard handoffs are stamped one slot ahead — except under CSMA,
  // where carrier mirrors ride at half a backoff unit (see csma_mac.h).
  lookahead_ =
      cfg_.mac_kind == mac::Mac::kCsma ? 0.5 * cfg_.slot_duration_s
                                       : cfg_.slot_duration_s;
  // Under sharded mobility every shard replays the whole trajectory on
  // its own Topology replica (identical seed => identical positions at
  // every virtual time, no shared writes); K = 1 keeps the master
  // topology live exactly as before.
  const bool replicate = part_.shard_count > 1 && cfg.mobility.has_value();
  shards_.reserve(part_.shard_count);
  for (std::size_t s = 0; s < part_.shard_count; ++s)
    shards_.push_back(std::make_unique<Shard>(cfg_, topo_, replicate));

  if (cfg.mobility) {
    if (shards_.size() == 1) {
      mobility_ = std::make_unique<phy::RandomWaypoint>(
          shards_[0]->sim, topo_, *cfg.mobility, rng_.derive("mobility"));
    } else {
      // derive() is a const read of the master stream: every replica
      // gets the same generator the K = 1 path would.
      for (auto& sh : shards_)
        sh->mobility = std::make_unique<phy::RandomWaypoint>(
            sh->sim, *sh->topo_replica, *cfg.mobility,
            rng_.derive("mobility"));
      // Migration barriers: a whole number of lookahead horizons per
      // epoch, so barriers always land on runner synchronization points.
      const double want_epoch =
          std::max(cfg_.migration_epoch_s, lookahead_);
      epoch_s_ = lookahead_ *
                 std::max<double>(1.0, std::llround(want_epoch / lookahead_));
      master_gen_cursor_ = shards_[0]->topo_replica->generation();
    }
  }
  pinned_.assign(topo_.size(), false);
  nodes_.reserve(topo_.size());
  for (core::NodeId id = 0; id < topo_.size(); ++id) {
    Shard& sh = shard_at(id);
    nodes_.push_back(std::make_unique<Node>(id, sh.fabric->mac_of(id),
                                            *sh.routing, flows_, sh.pool,
                                            cfg.node));
  }
  // Fabric delivery: successful transmissions land at the destination
  // node's stack. The dispatch seam routes the delivery event to the
  // destination's shard (and under K = 1 degenerates to the same-shard
  // path); the plain deliver hook remains for MACs that do not take the
  // seam. Hooks go on every shard's replica of every MAC: migration can
  // make any replica the live one, and on non-owning replicas they are
  // inert (a replica MAC never transmits until a node binds to it).
  for (auto& sh : shards_) {
    for (core::NodeId id = 0; id < topo_.size(); ++id) {
      mac::MacIface& m = sh->fabric->mac_of(id);
      m.set_deliver(
          [this](core::PacketPtr&& p, core::NodeId from, core::NodeId to) {
            nodes_.at(to)->handle_delivery(std::move(p), from);
          });
      m.set_dispatch([this](double delay_s, core::PacketPtr&& p,
                            core::NodeId from, core::NodeId to) {
        dispatch_delivery(delay_s, std::move(p), from, to);
      });
    }
  }
  if (shards_.size() > 1) {
    std::vector<sim::Simulator*> sims;
    sims.reserve(shards_.size());
    for (auto& sh : shards_) sims.push_back(&sh->sim);
    sim::ShardedRunner::Config rcfg;
    rcfg.lookahead = lookahead_;
    runner_ = std::make_unique<sim::ShardedRunner>(std::move(sims), rcfg);
  }
  if (runner_ && cfg_.mac_kind == mac::Mac::kCsma) {
    // Carrier coupling across strips. A frame begun in shard s must be
    // mirrored into every strip where it could change a CCA read or a
    // collision verdict: its sender can be heard up to R from itself,
    // and it can collide at a victim receiver up to R away whose own
    // sender sits another R beyond — so 2R around the sender's captured
    // x, inflated by how far live positions can drift from the bounds
    // snapshot (position-update granularity, route staleness toward an
    // out-of-date next hop, and a whole epoch between bound refreshes).
    double slack = 0.0;
    if (cfg_.mobility)
      slack = cfg_.mobility->speed_mps * 2.0 *
              (epoch_s_ + cfg_.routing.refresh_interval_s +
               cfg_.mobility->update_interval_s);
    mirror_margin_ = 2.0 * topo_.radio_range() + slack;
    owned_lo_.assign(shards_.size(), 0.0);
    owned_hi_.assign(shards_.size(), 0.0);
    refresh_owned_bounds();
    for (std::size_t s = 0; s < shards_.size(); ++s)
      shards_[s]->fabric->set_tx_mirror(
          [this, s](const mac::CsmaTxRecord& r) { post_csma_mirror(s, r); });
  }
}

Network::~Network() = default;

void Network::dispatch_delivery(double delay_s, core::PacketPtr&& p,
                                core::NodeId from, core::NodeId to) {
  const std::size_t sf = shard_of_[from];
  const std::size_t st = shard_of_[to];
  sim::Simulator& ssim = shards_[sf]->sim;
  // The tie comes from the stream of whatever owner is executing (the
  // sender's transmit event): that owner's draw history is identical
  // for every shard count, so so is the key. The event executes as the
  // receiver (exec_owner = to + 1): everything the receiving stack
  // schedules draws from the receiver's stream.
  const std::uint64_t tie = ssim.draw_tie(ssim.context());
  const double at = ssim.now() + delay_s;
  if (sf == st) {
    ssim.at_keyed(at, tie, to + 1,
                  [this, q = std::move(p), from, to]() mutable {
                    execute_delivery(std::move(q), from, to);
                  });
    return;
  }
  // Cross-shard: the packet bytes move out of the sender shard's pool
  // slot (recycled here, on the sender's thread) and ride the mailbox
  // in a self-owned heap packet; the receiving shard re-pools them at
  // execution time. Two allocations per boundary crossing, boundary
  // crossings only.
  auto payload = std::make_shared<core::Packet>(std::move(*p));
  p.reset();
  runner_->post(sf, st, at, tie, to + 1, [this, payload, from, to]() {
    core::PacketPtr q = shards_[shard_of_[to]]->pool.make(
        std::move(*payload));
    execute_delivery(std::move(q), from, to);
  });
}

void Network::execute_delivery(core::PacketPtr&& p, core::NodeId from,
                               core::NodeId to) {
  // Receive energy is charged at delivery execution, on the shard that
  // owns the receiver's tally (shard-invariant accrual order: all of
  // node `to`'s charges happen in its own shard's event order).
  shard_at(to).energy.charge_rx(to, p->size_bits());
  nodes_.at(to)->handle_delivery(std::move(p), from);
}

void Network::post_csma_mirror(std::size_t from, const mac::CsmaTxRecord& r) {
  sim::Simulator& ssim = shards_[from]->sim;
  // begin_tx runs at r.start; the mirror rides exactly one lookahead
  // (half a backoff unit) ahead — off the backoff grid, so it can never
  // tie with a native MAC event in the receiving shard.
  const double at = r.start + 0.5 * cfg_.slot_duration_s;
  const double x = r.sender_pos.x;
  for (std::size_t st = 0; st < shards_.size(); ++st) {
    if (st == from) continue;
    if (owned_lo_[st] > owned_hi_[st]) continue;  // strip owns nothing
    if (x < owned_lo_[st] - mirror_margin_ ||
        x > owned_hi_[st] + mirror_margin_)
      continue;
    const std::uint64_t tie = ssim.draw_tie(ssim.context());
    runner_->post(from, st, at, tie, r.sender + 1, [this, st, r] {
      shards_[st]->fabric->register_remote_tx(r, shards_[st]->sim.now());
    });
  }
}

void Network::schedule_at_node(core::NodeId id, double at,
                               std::function<void()> fn) {
  sim::Simulator& s = shard_at(id).sim;
  s.at_keyed(at, s.draw_tie(0), id + 1, std::move(fn));
}

void Network::defer_from_to(core::NodeId from, core::NodeId to, double delay,
                            std::function<void()> fn) {
  const std::size_t sf = shard_of_[from];
  const std::size_t st = shard_of_[to];
  sim::Simulator& ssim = shards_[sf]->sim;
  const std::uint32_t owner = ssim.context();
  const std::uint64_t tie = ssim.draw_tie(owner);
  const double at = ssim.now() + delay;
  if (sf == st) {
    ssim.at_keyed(at, tie, owner, std::move(fn));
    return;
  }
  if (delay < lookahead_)
    throw std::logic_error(
        "defer_from_to: cross-shard delay below the lookahead horizon "
        "(lookahead_s()); raise the delay or set NetworkConfig::shards = 1");
  runner_->post(sf, st, at, tie, owner, std::move(fn));
}

core::FlowId Network::allocate_flow(HopPolicy policy) {
  const core::FlowId id = next_flow_id_++;
  flows_.register_flow(id, policy);
  return id;
}

FlowHandle Network::add_flow(Proto proto, core::NodeId src, core::NodeId dst,
                             const FlowOptions& opt) {
  if (src >= size() || dst >= size())
    throw std::invalid_argument("add_flow: endpoint out of range");
  const TransportInfo& info = TransportRegistry::instance().info(proto);

  // Path facts for the factory's defaults: the MAC's per-node share,
  // current hop count, and a pessimistic (with-retries) RTT estimate.
  // Shard 0's replicas answer; every shard's copies are identical.
  PathInfo path;
  path.node_capacity_pps = shards_[0]->fabric->node_capacity_pps();
  path.hops = shards_[0]->routing->hops(src, dst).value_or(1);
  path.rtt_estimate_s =
      2.0 * path.hops * shards_[0]->fabric->frame_duration_s() * 1.5;

  const core::FlowId flow = allocate_flow(info.hop_policy);
  TransportEndpoints eps = info.factory->make(*this, flow, src, dst, opt,
                                              path);
  if (!eps.sender || !eps.receiver)
    throw std::logic_error("add_flow: factory for '" +
                           core::proto_name(proto) +
                           "' returned an incomplete endpoint pair");
  auto* snd = eps.sender.get();
  auto* rcv = eps.receiver.get();
  senders_.push_back(std::move(eps.sender));
  receivers_.push_back(std::move(eps.receiver));

  node(dst).attach_data_handler(
      flow, [rcv](const core::Packet& p) { rcv->on_data(p); });
  node(src).attach_ack_handler(
      flow, [snd](const core::Packet& p) { snd->on_ack(p); });

  // Endpoint transports hold their home shard's Env; the nodes stay put.
  pinned_.at(src) = true;
  pinned_.at(dst) = true;

  FlowHandle h;
  h.proto = proto;
  h.id = flow;
  h.src = src;
  h.dst = dst;
  h.sender = snd;
  h.receiver = rcv;
  return h;
}

void Network::run_until(double t) {
  if (!started_) {
    started_ = true;
    for (auto& sh : shards_) sh->routing->start();
    // Keep routes reasonably fresh under motion: the periodic link-state
    // refresh picks up the topology's generation counter; no per-move
    // recompute (that would be an oracle, and the staleness is part of
    // what Fig. 11 measures).
    if (mobility_) mobility_->start();
    for (auto& sh : shards_)
      if (sh->mobility) sh->mobility->start();
  }
  if (!runner_) {
    shards_[0]->sim.run_until(t);
    return;
  }
  if (epoch_s_ <= 0.0) {  // static topology: one uninterrupted span
    runner_->run_until(t);
    return;
  }
  // Sharded mobility: chunk the run into migration epochs. Each barrier
  // lands every shard's clock on the same multiple of the lookahead, so
  // the hand-over below runs strictly single-threaded between spans.
  while (shards_[0]->sim.now() < t) {
    const double now = shards_[0]->sim.now();
    double next =
        (std::floor(now / epoch_s_ + 1e-9) + 1.0) * epoch_s_;
    if (next <= now) next = now + epoch_s_;
    if (next >= t) {
      runner_->run_until(t);
      break;
    }
    runner_->run_until(next);
    migration_barrier();
  }
  sync_master_topology();  // callers read final positions off the master
}

void Network::sync_master_topology() {
  if (shards_.empty() || !shards_[0]->topo_replica) return;
  const phy::Topology& rep = *shards_[0]->topo_replica;
  if (rep.generation() == master_gen_cursor_) return;
  std::vector<core::NodeId> moved;
  if (rep.moved_since(master_gen_cursor_, moved)) {
    for (core::NodeId id : moved) topo_.set_position(id, rep.position(id));
  } else {
    // Move ring overflowed this window: full positional diff.
    for (core::NodeId id = 0; id < topo_.size(); ++id) {
      const phy::Position& a = topo_.position(id);
      const phy::Position& b = rep.position(id);
      if (a.x != b.x || a.y != b.y) topo_.set_position(id, b);
    }
  }
  master_gen_cursor_ = rep.generation();
}

void Network::refresh_owned_bounds() {
  if (owned_lo_.empty()) return;  // only kept for sharded CSMA runs
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::fill(owned_lo_.begin(), owned_lo_.end(), kInf);
  std::fill(owned_hi_.begin(), owned_hi_.end(), -kInf);
  for (core::NodeId i = 0; i < topo_.size(); ++i) {
    const std::size_t s = shard_of_[i];
    const double x = topo_.position(i).x;
    owned_lo_[s] = std::min(owned_lo_[s], x);
    owned_hi_[s] = std::max(owned_hi_[s], x);
  }
}

void Network::migration_barrier() {
  ++mig_stats_.barriers;
  sync_master_topology();
  refresh_owned_bounds();
  const std::size_t n = topo_.size();
  std::size_t out = 0;
  for (core::NodeId i = 0; i < n; ++i)
    if (part_.shard_for_x(topo_.position(i).x) != shard_of_[i]) ++out;
  mig_stats_.out_of_strip_last = out;
  if (static_cast<double>(out) <=
      cfg_.halo_threshold * static_cast<double>(n))
    return;
  ++mig_stats_.handoff_passes;
  for (core::NodeId i = 0; i < n; ++i) {
    const std::size_t target = part_.shard_for_x(topo_.position(i).x);
    if (target == shard_of_[i]) continue;
    if (pinned_[i]) {
      ++mig_stats_.pinned;
      continue;
    }
    Shard& src = *shards_[shard_of_[i]];
    // Quiescence gate: nothing queued or in the air at the MAC, and no
    // pending event executing as this node (deliveries in flight toward
    // it, armed backoff timers, deferred control). Anything else waits
    // for a later barrier — correctness never depends on moving.
    if (!src.fabric->mac_of(i).migration_idle() ||
        src.sim.has_pending_owner(i + 1)) {
      ++mig_stats_.deferred;
      continue;
    }
    migrate_node(i, target);
  }
}

void Network::migrate_node(core::NodeId id, std::size_t to) {
  Shard& src = *shards_[shard_of_[id]];
  Shard& dst = *shards_[to];
  // Order matters only for readability — the node is quiescent, so each
  // piece moves independently: MAC counters/estimator/backoff state,
  // the channel's directed loss streams keyed by this sender, the
  // energy tally (bit-exact: the new shard continues the old sum), and
  // finally the stack rebind onto the new bundle.
  dst.fabric->mac_of(id).adopt_state(src.fabric->mac_of(id));
  dst.channel.adopt_sender_streams(id, src.channel);
  dst.energy.set_node_energy(id, src.energy.node_energy(id));
  src.energy.set_node_energy(id, 0.0);
  nodes_.at(id)->rebind(dst.fabric->mac_of(id), *dst.routing, dst.pool);
  shard_of_[id] = to;
  ++mig_stats_.migrations;
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).queue_drops();
  return n;
}
std::uint64_t Network::total_attempt_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).attempt_exhausted_drops();
  return n;
}
std::uint64_t Network::total_energy_budget_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).energy_budget_drops();
  return n;
}
std::uint64_t Network::total_cache_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->ijtp().cache_retransmissions();
  return n;
}
std::uint64_t Network::total_transmissions() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).transmissions();
  return n;
}
std::uint64_t Network::total_route_drops() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->route_drops();
  return n;
}
std::uint64_t Network::total_events_executed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->sim.events_executed();
  return n;
}

core::Joules Network::node_energy(core::NodeId id) const {
  return shards_[shard_of_.at(id)]->energy.node_energy(id);
}
core::Joules Network::total_energy() const {
  core::Joules j = 0.0;
  for (core::NodeId i = 0; i < size(); ++i) j += node_energy(i);
  return j;
}
std::vector<core::Joules> Network::per_node_energy() const {
  std::vector<core::Joules> v(size());
  for (core::NodeId i = 0; i < size(); ++i) v[i] = node_energy(i);
  return v;
}

}  // namespace jtp::net
