#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace jtp::net {

Network::Shard::Shard(const NetworkConfig& cfg, const phy::Topology& topo)
    : channel(cfg.channel, sim::Rng(cfg.seed).derive("channel")),
      energy(topo.size(), cfg.radio),
      routing(std::make_unique<routing::LinkStateRouting>(sim, topo,
                                                         cfg.routing)),
      env(sim, pool) {
  // The link layer comes from the registry: one fabric per shard, one
  // MacIface per node. MAC construction draws no randomness and
  // schedules no events, and the TDMA schedule/coloring is a pure
  // function of seed and topology — every shard's replica is identical,
  // and only the MACs of nodes the shard owns ever run.
  const mac::MacContext mctx{sim,     topo,    channel, energy,
                             cfg.slot_duration_s, cfg.seed, cfg.mac};
  fabric = mac::MacRegistry::instance().info(cfg.mac_kind).factory->make(
      mctx);
}

Network::Network(phy::Topology topology, NetworkConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), topo_(std::move(topology)) {
  // Size the channel's per-link state tables from the node count when the
  // scenario didn't: a connected random field carries ~4 links/node, and
  // the reserve is what keeps the hot-path lookup rehash-free.
  if (cfg_.channel.expected_links == 0)
    cfg_.channel.expected_links = 4 * topo_.size();
  const std::size_t want = cfg.shards == 0 ? 1 : cfg.shards;
  if (want > 1) {
    if (cfg.mobility)
      throw std::invalid_argument(
          "Network: shards > 1 requires a static topology (no mobility)");
    if (cfg.mac_kind == mac::Mac::kCsma)
      throw std::invalid_argument(
          "Network: shards > 1 is not supported with the CSMA MAC "
          "(shared carrier)");
  }
  // Spatially contiguous strips: cross-shard traffic only crosses strip
  // boundaries, so almost all deliveries stay on the owning shard's
  // zero-alloc pipeline. May yield fewer shards than asked for.
  phy::Partition part = phy::partition_strips(topo_, want);
  shard_of_ = std::move(part.assignment);
  shards_.reserve(part.shard_count);
  for (std::size_t s = 0; s < part.shard_count; ++s)
    shards_.push_back(std::make_unique<Shard>(cfg_, topo_));

  if (cfg.mobility) {
    mobility_ = std::make_unique<phy::RandomWaypoint>(
        shards_[0]->sim, topo_, *cfg.mobility, rng_.derive("mobility"));
  }
  nodes_.reserve(topo_.size());
  for (core::NodeId id = 0; id < topo_.size(); ++id) {
    Shard& sh = shard_at(id);
    nodes_.push_back(std::make_unique<Node>(id, sh.fabric->mac_of(id),
                                            *sh.routing, flows_, sh.pool,
                                            cfg.node));
  }
  // Fabric delivery: successful transmissions land at the destination
  // node's stack. The dispatch seam routes the delivery event to the
  // destination's shard (and under K = 1 degenerates to the same-shard
  // path); the plain deliver hook remains for MACs that do not take the
  // seam (CSMA).
  for (core::NodeId id = 0; id < topo_.size(); ++id) {
    mac::MacIface& m = mac_of(id);
    m.set_deliver(
        [this](core::PacketPtr&& p, core::NodeId from, core::NodeId to) {
          nodes_.at(to)->handle_delivery(std::move(p), from);
        });
    m.set_dispatch([this](double delay_s, core::PacketPtr&& p,
                          core::NodeId from, core::NodeId to) {
      dispatch_delivery(delay_s, std::move(p), from, to);
    });
  }
  if (shards_.size() > 1) {
    std::vector<sim::Simulator*> sims;
    sims.reserve(shards_.size());
    for (auto& sh : shards_) sims.push_back(&sh->sim);
    sim::ShardedRunner::Config rcfg;
    // A transmission decided at a slot start is handed over one slot
    // later; deferred control handoffs use the same delay. Nothing
    // crosses a shard boundary faster.
    rcfg.lookahead = cfg_.slot_duration_s;
    runner_ = std::make_unique<sim::ShardedRunner>(std::move(sims), rcfg);
  }
}

Network::~Network() = default;

void Network::dispatch_delivery(double delay_s, core::PacketPtr&& p,
                                core::NodeId from, core::NodeId to) {
  const std::size_t sf = shard_of_[from];
  const std::size_t st = shard_of_[to];
  sim::Simulator& ssim = shards_[sf]->sim;
  // The tie comes from the stream of whatever owner is executing (the
  // sender's transmit event): that owner's draw history is identical
  // for every shard count, so so is the key. The event executes as the
  // receiver (exec_owner = to + 1): everything the receiving stack
  // schedules draws from the receiver's stream.
  const std::uint64_t tie = ssim.draw_tie(ssim.context());
  const double at = ssim.now() + delay_s;
  if (sf == st) {
    ssim.at_keyed(at, tie, to + 1,
                  [this, q = std::move(p), from, to]() mutable {
                    execute_delivery(std::move(q), from, to);
                  });
    return;
  }
  // Cross-shard: the packet bytes move out of the sender shard's pool
  // slot (recycled here, on the sender's thread) and ride the mailbox
  // in a self-owned heap packet; the receiving shard re-pools them at
  // execution time. Two allocations per boundary crossing, boundary
  // crossings only.
  auto payload = std::make_shared<core::Packet>(std::move(*p));
  p.reset();
  runner_->post(sf, st, at, tie, to + 1, [this, payload, from, to]() {
    core::PacketPtr q = shards_[shard_of_[to]]->pool.make(
        std::move(*payload));
    execute_delivery(std::move(q), from, to);
  });
}

void Network::execute_delivery(core::PacketPtr&& p, core::NodeId from,
                               core::NodeId to) {
  // Receive energy is charged at delivery execution, on the shard that
  // owns the receiver's tally (shard-invariant accrual order: all of
  // node `to`'s charges happen in its own shard's event order).
  shard_at(to).energy.charge_rx(to, p->size_bits());
  nodes_.at(to)->handle_delivery(std::move(p), from);
}

void Network::schedule_at_node(core::NodeId id, double at,
                               std::function<void()> fn) {
  sim::Simulator& s = shard_at(id).sim;
  s.at_keyed(at, s.draw_tie(0), id + 1, std::move(fn));
}

void Network::defer_from_to(core::NodeId from, core::NodeId to, double delay,
                            std::function<void()> fn) {
  const std::size_t sf = shard_of_[from];
  const std::size_t st = shard_of_[to];
  sim::Simulator& ssim = shards_[sf]->sim;
  const std::uint32_t owner = ssim.context();
  const std::uint64_t tie = ssim.draw_tie(owner);
  const double at = ssim.now() + delay;
  if (sf == st) {
    ssim.at_keyed(at, tie, owner, std::move(fn));
    return;
  }
  if (delay < cfg_.slot_duration_s)
    throw std::logic_error(
        "defer_from_to: cross-shard delay below the lookahead");
  runner_->post(sf, st, at, tie, owner, std::move(fn));
}

core::FlowId Network::allocate_flow(HopPolicy policy) {
  const core::FlowId id = next_flow_id_++;
  flows_.register_flow(id, policy);
  return id;
}

FlowHandle Network::add_flow(Proto proto, core::NodeId src, core::NodeId dst,
                             const FlowOptions& opt) {
  if (src >= size() || dst >= size())
    throw std::invalid_argument("add_flow: endpoint out of range");
  const TransportInfo& info = TransportRegistry::instance().info(proto);

  // Path facts for the factory's defaults: the MAC's per-node share,
  // current hop count, and a pessimistic (with-retries) RTT estimate.
  // Shard 0's replicas answer; every shard's copies are identical.
  PathInfo path;
  path.node_capacity_pps = shards_[0]->fabric->node_capacity_pps();
  path.hops = shards_[0]->routing->hops(src, dst).value_or(1);
  path.rtt_estimate_s =
      2.0 * path.hops * shards_[0]->fabric->frame_duration_s() * 1.5;

  const core::FlowId flow = allocate_flow(info.hop_policy);
  TransportEndpoints eps = info.factory->make(*this, flow, src, dst, opt,
                                              path);
  if (!eps.sender || !eps.receiver)
    throw std::logic_error("add_flow: factory for '" +
                           core::proto_name(proto) +
                           "' returned an incomplete endpoint pair");
  auto* snd = eps.sender.get();
  auto* rcv = eps.receiver.get();
  senders_.push_back(std::move(eps.sender));
  receivers_.push_back(std::move(eps.receiver));

  node(dst).attach_data_handler(
      flow, [rcv](const core::Packet& p) { rcv->on_data(p); });
  node(src).attach_ack_handler(
      flow, [snd](const core::Packet& p) { snd->on_ack(p); });

  FlowHandle h;
  h.proto = proto;
  h.id = flow;
  h.src = src;
  h.dst = dst;
  h.sender = snd;
  h.receiver = rcv;
  return h;
}

void Network::run_until(double t) {
  if (!started_) {
    started_ = true;
    for (auto& sh : shards_) sh->routing->start();
    if (mobility_) {
      mobility_->start();
      // Keep routes reasonably fresh under motion: the periodic link-state
      // refresh picks up the topology's generation counter; no per-move
      // recompute (that would be an oracle, and the staleness is part of
      // what Fig. 11 measures).
    }
  }
  if (runner_) {
    runner_->run_until(t);
  } else {
    shards_[0]->sim.run_until(t);
  }
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).queue_drops();
  return n;
}
std::uint64_t Network::total_attempt_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).attempt_exhausted_drops();
  return n;
}
std::uint64_t Network::total_energy_budget_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).energy_budget_drops();
  return n;
}
std::uint64_t Network::total_cache_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->ijtp().cache_retransmissions();
  return n;
}
std::uint64_t Network::total_transmissions() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += shards_[shard_of_[i]]->fabric->mac_of(i).transmissions();
  return n;
}
std::uint64_t Network::total_route_drops() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->route_drops();
  return n;
}
std::uint64_t Network::total_events_executed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->sim.events_executed();
  return n;
}

core::Joules Network::node_energy(core::NodeId id) const {
  return shards_[shard_of_.at(id)]->energy.node_energy(id);
}
core::Joules Network::total_energy() const {
  core::Joules j = 0.0;
  for (core::NodeId i = 0; i < size(); ++i) j += node_energy(i);
  return j;
}
std::vector<core::Joules> Network::per_node_energy() const {
  std::vector<core::Joules> v(size());
  for (core::NodeId i = 0; i < size(); ++i) v[i] = node_energy(i);
  return v;
}

}  // namespace jtp::net
