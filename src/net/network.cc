#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace jtp::net {

Network::Network(phy::Topology topology, NetworkConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      topo_(std::move(topology)),
      channel_(cfg.channel, sim::Rng(cfg.seed).derive("channel")),
      energy_(topo_.size(), cfg.radio),
      schedule_(topo_.size(), cfg.slot_duration_s, cfg.seed ^ 0x7d3aULL),
      env_(sim_, pool_) {
  routing_ = std::make_unique<routing::LinkStateRouting>(sim_, topo_,
                                                         cfg.routing);
  if (cfg.mobility) {
    mobility_ = std::make_unique<phy::RandomWaypoint>(
        sim_, topo_, *cfg.mobility, rng_.derive("mobility"));
  }
  macs_.reserve(topo_.size());
  nodes_.reserve(topo_.size());
  for (core::NodeId id = 0; id < topo_.size(); ++id) {
    macs_.push_back(std::make_unique<mac::TdmaMac>(
        sim_, schedule_, channel_, energy_, id, cfg.mac));
    nodes_.push_back(std::make_unique<Node>(id, *macs_.back(), *routing_,
                                            flows_, pool_, cfg.node));
  }
  // Fabric: successful transmissions land at the destination node's stack.
  for (auto& m : macs_) {
    m->set_deliver([this](core::PacketPtr&& p, core::NodeId from,
                          core::NodeId to) {
      nodes_.at(to)->handle_delivery(std::move(p), from);
    });
  }
}

Network::~Network() = default;

core::FlowId Network::allocate_flow(HopPolicy policy) {
  const core::FlowId id = next_flow_id_++;
  flows_.register_flow(id, policy);
  return id;
}

FlowHandle Network::add_flow(Proto proto, core::NodeId src, core::NodeId dst,
                             const FlowOptions& opt) {
  if (src >= size() || dst >= size())
    throw std::invalid_argument("add_flow: endpoint out of range");
  const TransportInfo& info = TransportRegistry::instance().info(proto);

  // Path facts for the factory's defaults: TDMA share, current hop count,
  // and a pessimistic (with-retries) RTT estimate.
  PathInfo path;
  path.node_capacity_pps = schedule_.node_capacity_pps();
  path.hops = routing_->hops(src, dst).value_or(1);
  path.rtt_estimate_s = 2.0 * path.hops * schedule_.frame_duration() * 1.5;

  const core::FlowId flow = allocate_flow(info.hop_policy);
  TransportEndpoints eps = info.factory->make(*this, flow, src, dst, opt,
                                              path);
  if (!eps.sender || !eps.receiver)
    throw std::logic_error("add_flow: factory for '" +
                           core::proto_name(proto) +
                           "' returned an incomplete endpoint pair");
  auto* snd = eps.sender.get();
  auto* rcv = eps.receiver.get();
  senders_.push_back(std::move(eps.sender));
  receivers_.push_back(std::move(eps.receiver));

  node(dst).attach_data_handler(
      flow, [rcv](const core::Packet& p) { rcv->on_data(p); });
  node(src).attach_ack_handler(
      flow, [snd](const core::Packet& p) { snd->on_ack(p); });

  FlowHandle h;
  h.proto = proto;
  h.id = flow;
  h.src = src;
  h.dst = dst;
  h.sender = snd;
  h.receiver = rcv;
  return h;
}

void Network::run_until(double t) {
  if (!started_) {
    started_ = true;
    routing_->start();
    if (mobility_) {
      mobility_->start();
      // Keep routes reasonably fresh under motion: the periodic link-state
      // refresh picks up the topology's generation counter; no per-move
      // recompute (that would be an oracle, and the staleness is part of
      // what Fig. 11 measures).
    }
  }
  sim_.run_until(t);
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->queue_drops();
  return n;
}
std::uint64_t Network::total_attempt_drops() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->attempt_exhausted_drops();
  return n;
}
std::uint64_t Network::total_energy_budget_drops() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->energy_budget_drops();
  return n;
}
std::uint64_t Network::total_cache_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->ijtp().cache_retransmissions();
  return n;
}
std::uint64_t Network::total_transmissions() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->transmissions();
  return n;
}
std::uint64_t Network::total_route_drops() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->route_drops();
  return n;
}

}  // namespace jtp::net
