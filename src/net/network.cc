#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace jtp::net {

Network::Network(phy::Topology topology, NetworkConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      topo_(std::move(topology)),
      channel_(cfg.channel, sim::Rng(cfg.seed).derive("channel")),
      energy_(topo_.size(), cfg.radio),
      schedule_(topo_.size(), cfg.slot_duration_s, cfg.seed ^ 0x7d3aULL),
      env_(sim_) {
  routing_ = std::make_unique<routing::LinkStateRouting>(sim_, topo_,
                                                         cfg.routing);
  if (cfg.mobility) {
    mobility_ = std::make_unique<phy::RandomWaypoint>(
        sim_, topo_, *cfg.mobility, rng_.derive("mobility"));
  }
  macs_.reserve(topo_.size());
  nodes_.reserve(topo_.size());
  for (core::NodeId id = 0; id < topo_.size(); ++id) {
    macs_.push_back(std::make_unique<mac::TdmaMac>(
        sim_, schedule_, channel_, energy_, id, cfg.mac));
    nodes_.push_back(
        std::make_unique<Node>(id, *macs_.back(), *routing_, flows_, cfg.node));
  }
  // Fabric: successful transmissions land at the destination node's stack.
  for (auto& m : macs_) {
    m->set_deliver([this](core::Packet&& p, core::NodeId from,
                          core::NodeId to) {
      nodes_.at(to)->handle_delivery(std::move(p), from);
    });
  }
}

Network::~Network() = default;

core::FlowId Network::allocate_flow(TransportKind kind) {
  const core::FlowId id = next_flow_id_++;
  flows_.register_flow(id, kind);
  return id;
}

JtpFlow Network::add_jtp_flow(core::SenderConfig scfg,
                              core::ReceiverConfig rcfg) {
  if (scfg.src >= size() || scfg.dst >= size())
    throw std::invalid_argument("add_jtp_flow: endpoint out of range");
  const core::FlowId flow = allocate_flow(TransportKind::kJtp);
  scfg.flow = flow;
  rcfg.flow = flow;
  rcfg.src = scfg.src;
  rcfg.dst = scfg.dst;
  rcfg.cache_size_packets = cfg_.node.ijtp.cache_capacity_packets;

  jtp_senders_.push_back(std::make_unique<core::EjtpSender>(
      env_, node(scfg.src), scfg));
  jtp_receivers_.push_back(std::make_unique<core::EjtpReceiver>(
      env_, node(scfg.dst), rcfg));
  auto* snd = jtp_senders_.back().get();
  auto* rcv = jtp_receivers_.back().get();

  node(scfg.dst).attach_data_handler(
      flow, [rcv](const core::Packet& p) { rcv->on_data(p); });
  node(scfg.src).attach_ack_handler(
      flow, [snd](const core::Packet& p) { snd->on_ack(p); });
  return {snd, rcv};
}

TcpFlow Network::add_tcp_flow(baselines::TcpConfig cfg) {
  if (cfg.src >= size() || cfg.dst >= size())
    throw std::invalid_argument("add_tcp_flow: endpoint out of range");
  cfg.flow = allocate_flow(TransportKind::kTcp);

  tcp_senders_.push_back(
      std::make_unique<baselines::TcpSackSender>(env_, node(cfg.src), cfg));
  tcp_receivers_.push_back(
      std::make_unique<baselines::TcpSackReceiver>(env_, node(cfg.dst), cfg));
  auto* snd = tcp_senders_.back().get();
  auto* rcv = tcp_receivers_.back().get();

  node(cfg.dst).attach_data_handler(
      cfg.flow, [rcv](const core::Packet& p) { rcv->on_data(p); });
  node(cfg.src).attach_ack_handler(
      cfg.flow, [snd](const core::Packet& p) { snd->on_ack(p); });
  return {snd, rcv};
}

AtpFlow Network::add_atp_flow(baselines::AtpConfig cfg) {
  if (cfg.src >= size() || cfg.dst >= size())
    throw std::invalid_argument("add_atp_flow: endpoint out of range");
  cfg.flow = allocate_flow(TransportKind::kAtp);

  atp_senders_.push_back(
      std::make_unique<baselines::AtpSender>(env_, node(cfg.src), cfg));
  atp_receivers_.push_back(
      std::make_unique<baselines::AtpReceiver>(env_, node(cfg.dst), cfg));
  auto* snd = atp_senders_.back().get();
  auto* rcv = atp_receivers_.back().get();

  node(cfg.dst).attach_data_handler(
      cfg.flow, [rcv](const core::Packet& p) { rcv->on_data(p); });
  node(cfg.src).attach_ack_handler(
      cfg.flow, [snd](const core::Packet& p) { snd->on_ack(p); });
  return {snd, rcv};
}

void Network::run_until(double t) {
  if (!started_) {
    started_ = true;
    routing_->start();
    if (mobility_) {
      mobility_->start();
      // Keep routes reasonably fresh under motion: the periodic link-state
      // refresh handles it; no per-move recompute (that would be an
      // oracle, and the staleness is part of what Fig. 11 measures).
    }
  }
  sim_.run_until(t);
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->queue_drops();
  return n;
}
std::uint64_t Network::total_attempt_drops() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->attempt_exhausted_drops();
  return n;
}
std::uint64_t Network::total_energy_budget_drops() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->energy_budget_drops();
  return n;
}
std::uint64_t Network::total_cache_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->ijtp().cache_retransmissions();
  return n;
}
std::uint64_t Network::total_transmissions() const {
  std::uint64_t n = 0;
  for (const auto& m : macs_) n += m->transmissions();
  return n;
}
std::uint64_t Network::total_route_drops() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->route_drops();
  return n;
}

}  // namespace jtp::net
