#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace jtp::net {

Network::Network(phy::Topology topology, NetworkConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      topo_(std::move(topology)),
      channel_(cfg.channel, sim::Rng(cfg.seed).derive("channel")),
      energy_(topo_.size(), cfg.radio),
      env_(sim_, pool_) {
  routing_ = std::make_unique<routing::LinkStateRouting>(sim_, topo_,
                                                         cfg.routing);
  if (cfg.mobility) {
    mobility_ = std::make_unique<phy::RandomWaypoint>(
        sim_, topo_, *cfg.mobility, rng_.derive("mobility"));
  }
  // The link layer comes from the registry: one fabric per run, one
  // MacIface per node. MAC construction draws no randomness and schedules
  // no events, so building all MACs before all Nodes is order-neutral.
  const mac::MacContext mctx{sim_,     topo_,    channel_, energy_,
                             cfg.slot_duration_s, cfg.seed, cfg.mac};
  fabric_ = mac::MacRegistry::instance().info(cfg.mac_kind).factory->make(
      mctx);
  nodes_.reserve(topo_.size());
  for (core::NodeId id = 0; id < topo_.size(); ++id) {
    nodes_.push_back(std::make_unique<Node>(id, fabric_->mac_of(id),
                                            *routing_, flows_, pool_,
                                            cfg.node));
  }
  // Fabric delivery: successful transmissions land at the destination
  // node's stack.
  for (core::NodeId id = 0; id < topo_.size(); ++id) {
    fabric_->mac_of(id).set_deliver(
        [this](core::PacketPtr&& p, core::NodeId from, core::NodeId to) {
          nodes_.at(to)->handle_delivery(std::move(p), from);
        });
  }
}

Network::~Network() = default;

core::FlowId Network::allocate_flow(HopPolicy policy) {
  const core::FlowId id = next_flow_id_++;
  flows_.register_flow(id, policy);
  return id;
}

FlowHandle Network::add_flow(Proto proto, core::NodeId src, core::NodeId dst,
                             const FlowOptions& opt) {
  if (src >= size() || dst >= size())
    throw std::invalid_argument("add_flow: endpoint out of range");
  const TransportInfo& info = TransportRegistry::instance().info(proto);

  // Path facts for the factory's defaults: the MAC's per-node share,
  // current hop count, and a pessimistic (with-retries) RTT estimate.
  PathInfo path;
  path.node_capacity_pps = fabric_->node_capacity_pps();
  path.hops = routing_->hops(src, dst).value_or(1);
  path.rtt_estimate_s = 2.0 * path.hops * fabric_->frame_duration_s() * 1.5;

  const core::FlowId flow = allocate_flow(info.hop_policy);
  TransportEndpoints eps = info.factory->make(*this, flow, src, dst, opt,
                                              path);
  if (!eps.sender || !eps.receiver)
    throw std::logic_error("add_flow: factory for '" +
                           core::proto_name(proto) +
                           "' returned an incomplete endpoint pair");
  auto* snd = eps.sender.get();
  auto* rcv = eps.receiver.get();
  senders_.push_back(std::move(eps.sender));
  receivers_.push_back(std::move(eps.receiver));

  node(dst).attach_data_handler(
      flow, [rcv](const core::Packet& p) { rcv->on_data(p); });
  node(src).attach_ack_handler(
      flow, [snd](const core::Packet& p) { snd->on_ack(p); });

  FlowHandle h;
  h.proto = proto;
  h.id = flow;
  h.src = src;
  h.dst = dst;
  h.sender = snd;
  h.receiver = rcv;
  return h;
}

void Network::run_until(double t) {
  if (!started_) {
    started_ = true;
    routing_->start();
    if (mobility_) {
      mobility_->start();
      // Keep routes reasonably fresh under motion: the periodic link-state
      // refresh picks up the topology's generation counter; no per-move
      // recompute (that would be an oracle, and the staleness is part of
      // what Fig. 11 measures).
    }
  }
  sim_.run_until(t);
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += fabric_->mac_of(i).queue_drops();
  return n;
}
std::uint64_t Network::total_attempt_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += fabric_->mac_of(i).attempt_exhausted_drops();
  return n;
}
std::uint64_t Network::total_energy_budget_drops() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += fabric_->mac_of(i).energy_budget_drops();
  return n;
}
std::uint64_t Network::total_cache_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->ijtp().cache_retransmissions();
  return n;
}
std::uint64_t Network::total_transmissions() const {
  std::uint64_t n = 0;
  for (core::NodeId i = 0; i < size(); ++i)
    n += fabric_->mac_of(i).transmissions();
  return n;
}
std::uint64_t Network::total_route_drops() const {
  std::uint64_t n = 0;
  for (const auto& nd : nodes_) n += nd->route_drops();
  return n;
}

}  // namespace jtp::net
