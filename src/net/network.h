// Network: owns the whole simulated system and wires flows onto it.
//
// One Network = one simulation run: simulator, topology, channel, energy
// model, TDMA schedule, routing service, one MAC + Node per vertex, and a
// registry of transport endpoints (JTP / TCP-SACK / ATP) attached to
// nodes. This is the "adaptation layer" through which experiments and
// examples use the library.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baselines/atp.h"
#include "baselines/tcp_sack.h"
#include "core/ejtp_receiver.h"
#include "core/ejtp_sender.h"
#include "mac/tdma_mac.h"
#include "mac/tdma_schedule.h"
#include "net/node.h"
#include "net/sim_env.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "phy/mobility.h"
#include "phy/topology.h"
#include "routing/link_state.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::net {

struct NetworkConfig {
  std::uint64_t seed = 1;
  phy::ChannelConfig channel;
  phy::RadioConfig radio;
  mac::MacConfig mac;
  routing::RoutingConfig routing;
  NodeConfig node;
  double slot_duration_s = 0.035;  // ~ one max-size packet airtime
  std::optional<phy::MobilityConfig> mobility;  // engaged => nodes move
};

struct JtpFlow {
  core::EjtpSender* sender = nullptr;
  core::EjtpReceiver* receiver = nullptr;
};
struct TcpFlow {
  baselines::TcpSackSender* sender = nullptr;
  baselines::TcpSackReceiver* receiver = nullptr;
};
struct AtpFlow {
  baselines::AtpSender* sender = nullptr;
  baselines::AtpReceiver* receiver = nullptr;
};

class Network {
 public:
  Network(phy::Topology topology, NetworkConfig cfg = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- flow attachment (endpoints are owned by the network) ---
  JtpFlow add_jtp_flow(core::SenderConfig scfg, core::ReceiverConfig rcfg);
  TcpFlow add_tcp_flow(baselines::TcpConfig cfg);
  AtpFlow add_atp_flow(baselines::AtpConfig cfg);

  // --- access ---
  sim::Simulator& simulator() { return sim_; }
  phy::Topology& topology() { return topo_; }
  phy::Channel& channel() { return channel_; }
  phy::EnergyModel& energy() { return energy_; }
  routing::LinkStateRouting& routing() { return *routing_; }
  const mac::TdmaSchedule& schedule() const { return schedule_; }
  Node& node(core::NodeId id) { return *nodes_.at(id); }
  mac::TdmaMac& mac_of(core::NodeId id) { return *macs_.at(id); }
  std::size_t size() const { return nodes_.size(); }
  sim::Rng& rng() { return rng_; }
  const NetworkConfig& config() const { return cfg_; }

  // Starts routing refresh (and mobility if configured) and runs the
  // simulation until `t`.
  void run_until(double t);

  // --- aggregate counters across nodes ---
  std::uint64_t total_queue_drops() const;
  std::uint64_t total_attempt_drops() const;
  std::uint64_t total_energy_budget_drops() const;
  std::uint64_t total_cache_retransmissions() const;
  std::uint64_t total_transmissions() const;
  std::uint64_t total_route_drops() const;

 private:
  core::FlowId next_flow_id_ = 1;

  NetworkConfig cfg_;
  sim::Simulator sim_;
  sim::Rng rng_;
  phy::Topology topo_;
  phy::Channel channel_;
  phy::EnergyModel energy_;
  mac::TdmaSchedule schedule_;
  std::unique_ptr<routing::LinkStateRouting> routing_;
  std::unique_ptr<phy::RandomWaypoint> mobility_;
  SimEnv env_;
  FlowTable flows_;
  std::vector<std::unique_ptr<mac::TdmaMac>> macs_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;

  // Endpoint storage (stable addresses).
  std::vector<std::unique_ptr<core::EjtpSender>> jtp_senders_;
  std::vector<std::unique_ptr<core::EjtpReceiver>> jtp_receivers_;
  std::vector<std::unique_ptr<baselines::TcpSackSender>> tcp_senders_;
  std::vector<std::unique_ptr<baselines::TcpSackReceiver>> tcp_receivers_;
  std::vector<std::unique_ptr<baselines::AtpSender>> atp_senders_;
  std::vector<std::unique_ptr<baselines::AtpReceiver>> atp_receivers_;

 public:
  // Allocates a fresh flow id (visible for custom wiring in tests).
  core::FlowId allocate_flow(TransportKind kind);
  FlowTable& flow_table() { return flows_; }
};

}  // namespace jtp::net
