// Network: owns the whole simulated system and wires flows onto it.
//
// One Network = one simulation run: simulator, topology, channel, energy
// model, MAC fabric, routing service, one Node per vertex, and the
// transport endpoints attached to nodes. Flows attach through one
// polymorphic entry point — add_flow(proto, src, dst, opts) — which
// resolves the protocol in the TransportRegistry; the link layer is
// resolved the same way, through the MacRegistry keyed by
// NetworkConfig::mac_kind. The Network itself knows no protocol or MAC
// names. This is the "adaptation layer" through which experiments and
// examples use the library.
//
// Sharded execution (NetworkConfig::shards > 1): the node set is cut
// into spatially contiguous strips (phy::partition_strips) and each
// strip gets a full per-shard simulation bundle — packet pool,
// Simulator, Channel, EnergyModel, routing view, SimEnv, MAC fabric —
// run in parallel by a sim::ShardedRunner with lookahead equal to the
// slot duration (half of it under CSMA; see below). Node i's entire
// stack (MAC queue, timers, packets, energy tally) lives in
// shard_of(i); same-shard deliveries use the existing zero-alloc
// pipeline unchanged, cross-shard deliveries are re-pooled through the
// runner's mailboxes. Channel fading and loss streams are keyed per
// link, the TDMA schedule is a pure function of seed and topology, and
// event tie-break keys are drawn per owning node — so results are
// byte-identical for every shard count, K = 1 included (K = 1 builds no
// runner and collapses to the plain single-threaded loop).
//
// Mobility under shards > 1: each shard carries its own Topology +
// RandomWaypoint replica, seeded identically — every replica replays
// the exact same trajectory from its own clock, so position reads are
// consistent across shards at every virtual time without any shared
// writes. Drift is handled by a migration layer: the run is chunked
// into epochs aligned to the lookahead horizon, and at each barrier the
// master topology is re-synced from replica 0 via Topology::moved_since
// and the halo occupancy (nodes outside their home strip) is measured.
// When it exceeds NetworkConfig::halo_threshold, drifted nodes whose
// stacks are quiescent are handed to the strip that now contains them:
// the MAC replica on the new shard adopts counters/estimator/backoff
// state, the channel's directed loss streams move (Channel::
// adopt_sender_streams), the energy tally transfers bit-exactly, and
// the Node rebinds onto the new bundle. Migration is pure locality
// optimization — event keys and draw streams are unchanged by it, so
// results stay byte-identical whether or not any node ever moves shard.
//
// CSMA under shards > 1: each shard's CsmaMedium is one carrier domain;
// transmissions begun near a strip edge are mirrored into the audible
// peer domains through the runner's rings, stamped half a backoff unit
// after their start (which is why the runner's lookahead is
// slot_duration / 2 for CSMA runs). The medium's grid-aligned,
// one-unit-sensing-latency, captured-position semantics (see
// mac/csma_mac.h) make every CCA and collision verdict a function of
// record contents alone — K-invariant by construction.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/transport.h"
#include "mac/registry.h"
#include "net/node.h"
#include "net/sim_env.h"
#include "net/transport.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "phy/mobility.h"
#include "phy/partition.h"
#include "phy/topology.h"
#include "routing/link_state.h"
#include "sim/random.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace jtp::net {

struct NetworkConfig {
  std::uint64_t seed = 1;
  phy::ChannelConfig channel;
  phy::RadioConfig radio;
  mac::Mac mac_kind = mac::Mac::kTdma;  // which registered MAC to build
  mac::MacConfig mac;
  routing::RoutingConfig routing;
  NodeConfig node;
  double slot_duration_s = 0.035;  // ~ one max-size packet airtime
  std::optional<phy::MobilityConfig> mobility;  // engaged => nodes move
  // Parallel shards to run the event loop on (1 = classic serial loop).
  // Works with every MAC and with mobility; the effective count can be
  // lower than requested when the field is narrower than K radio ranges
  // (see shard_count()).
  std::size_t shards = 1;
  // Shard-aware mobility: target spacing of migration barriers (rounded
  // to a whole number of lookahead horizons), and the fraction of nodes
  // that must sit outside their home strip before a hand-over pass
  // runs. Only consulted when shards > 1 and mobility is engaged.
  double migration_epoch_s = 1.0;
  double halo_threshold = 0.02;
};

// Shard-migration accounting (diagnostic; see Network::migration_stats).
struct MigrationStats {
  std::uint64_t barriers = 0;        // epoch barriers evaluated
  std::uint64_t handoff_passes = 0;  // barriers over the halo threshold
  std::uint64_t migrations = 0;      // nodes handed to a new shard
  std::uint64_t deferred = 0;        // drifted but stack not quiescent
  std::uint64_t pinned = 0;          // drifted flow endpoints kept home
  std::size_t out_of_strip_last = 0; // drifted nodes at the last barrier
};

class Network {
 public:
  Network(phy::Topology topology, NetworkConfig cfg = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- flow attachment (endpoints are owned by the network) ---
  // Builds the proto's endpoint pair through the TransportRegistry, wires
  // it to the src/dst nodes, and returns the uniform handle. The flow is
  // idle until start() is invoked on it (FlowManager does the
  // scheduling). Throws std::invalid_argument on out-of-range endpoints
  // or an unregistered protocol. Endpoint nodes are pinned to their home
  // shards (their transports hold that shard's Env).
  FlowHandle add_flow(Proto proto, core::NodeId src, core::NodeId dst,
                      const FlowOptions& opt = {});

  // --- access (unqualified accessors answer from shard 0; under K = 1
  // that is the whole simulation, and the replicated state — channel,
  // routing view, MAC schedule — is identical in every shard) ---
  sim::Simulator& simulator() { return shards_[0]->sim; }
  core::Env& env() { return shards_[0]->env; }
  core::PacketPool& packet_pool() { return shards_[0]->pool; }
  // The master topology. Under sharded mobility the per-shard replicas
  // advance during a run and the master is re-synced at every migration
  // barrier and at run_until return — between calls it reflects the
  // latest barrier, not mid-epoch motion.
  phy::Topology& topology() { return topo_; }
  phy::Channel& channel() { return shards_[0]->channel; }
  phy::EnergyModel& energy() { return shards_[0]->energy; }
  routing::LinkStateRouting& routing() { return *shards_[0]->routing; }
  const mac::MacFabric& mac_fabric() const { return *shards_[0]->fabric; }
  Node& node(core::NodeId id) { return *nodes_.at(id); }
  // The MAC instance that owns node `id`'s queues and counters (its
  // owning shard's fabric; under K = 1, the only fabric). Migration
  // moves the counters with the node, so this is always the replica
  // with the full history.
  mac::MacIface& mac_of(core::NodeId id) {
    return shard_at(id).fabric->mac_of(id);
  }
  std::size_t size() const { return nodes_.size(); }
  sim::Rng& rng() { return rng_; }
  const NetworkConfig& config() const { return cfg_; }

  // --- shard-aware access ---
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(core::NodeId id) const { return shard_of_.at(id); }
  sim::Simulator& sim_for(core::NodeId id) { return shard_at(id).sim; }
  core::Env& env_for(core::NodeId id) { return shard_at(id).env; }
  double now_at(core::NodeId id) const {
    return shards_[shard_of_.at(id)]->sim.now();
  }
  // Wall time outside a run (all shard clocks agree on run_until
  // barriers; this is shard 0's clock).
  double now() const { return shards_[0]->sim.now(); }
  double slot_duration_s() const { return cfg_.slot_duration_s; }
  // The runner's cross-shard lookahead: slot_duration, except CSMA runs
  // where the mirror protocol needs half of it.
  double lookahead_s() const { return lookahead_; }
  // Cross-shard deliveries routed through the runner (0 under K = 1).
  std::uint64_t cross_shard_messages() const {
    return runner_ ? runner_->messages_posted() : 0;
  }
  const MigrationStats& migration_stats() const { return mig_stats_; }

  // Schedules `fn` at absolute time `at` in node `id`'s shard, executing
  // as that node (tie-break keys it draws come from the node's own
  // stream, so the schedule is identical for every shard count). Call
  // outside a run only (flow setup).
  void schedule_at_node(core::NodeId id, double at, std::function<void()> fn);

  // Schedules `fn` `delay` from now at node `to`'s shard, from code
  // currently executing in node `from`'s shard. Safe during a run;
  // `delay` must be >= lookahead_s() when the nodes live in different
  // shards.
  void defer_from_to(core::NodeId from, core::NodeId to, double delay,
                     std::function<void()> fn);

  // Starts routing refresh (and mobility if configured) and runs the
  // simulation until `t`. Under sharded mobility the run pauses at
  // migration barriers every ~migration_epoch_s of virtual time.
  void run_until(double t);

  // --- aggregate counters across nodes ---
  std::uint64_t total_queue_drops() const;
  std::uint64_t total_attempt_drops() const;
  std::uint64_t total_energy_budget_drops() const;
  std::uint64_t total_cache_retransmissions() const;
  std::uint64_t total_transmissions() const;
  std::uint64_t total_route_drops() const;
  // Sum of events executed by every shard's simulator. Not comparable
  // across shard counts (each shard replays its own control plane).
  std::uint64_t total_events_executed() const;

  // --- energy, aggregated shard-invariantly ---
  // Node i is charged only in its owning shard, in the same event order
  // for every K; summing per node in index order keeps the floating-
  // point total byte-identical across shard counts.
  core::Joules node_energy(core::NodeId id) const;
  core::Joules total_energy() const;
  std::vector<core::Joules> per_node_energy() const;

 private:
  // One shard's full simulation bundle. The pool precedes the simulator:
  // pending delivery events hold packet handles, and destroying the
  // simulator releases them back into the pool (see sim_env.h). The
  // topology replica (engaged only under sharded mobility) precedes
  // everything that reads it; the mobility replica, which writes it and
  // schedules on the simulator, comes last.
  struct Shard {
    Shard(const NetworkConfig& cfg, const phy::Topology& master,
          bool replicate_topo);
    const phy::Topology& topo() const { return *topo_view; }
    std::unique_ptr<phy::Topology> topo_replica;  // null when static/K=1
    const phy::Topology* topo_view = nullptr;     // replica or master
    core::PacketPool pool;
    sim::Simulator sim;
    phy::Channel channel;
    phy::EnergyModel energy;
    std::unique_ptr<routing::LinkStateRouting> routing;
    SimEnv env;
    std::unique_ptr<mac::MacFabric> fabric;
    std::unique_ptr<phy::RandomWaypoint> mobility;  // replica driver
  };

  Shard& shard_at(core::NodeId id) { return *shards_[shard_of_.at(id)]; }

  // MAC delivery seam: schedules the delivery event in `to`'s shard
  // (charging the receive energy there at execution time) — same-shard
  // through the zero-alloc pipeline, cross-shard through the runner.
  void dispatch_delivery(double delay_s, core::PacketPtr&& p,
                         core::NodeId from, core::NodeId to);
  void execute_delivery(core::PacketPtr&& p, core::NodeId from,
                        core::NodeId to);

  // CSMA mirror fan-out: posts shard `from`'s new transmission record to
  // every peer strip it could be audible in, stamped start + unit/2.
  void post_csma_mirror(std::size_t from, const mac::CsmaTxRecord& r);

  // --- shard-aware mobility internals (barrier-time, single-threaded) ---
  void sync_master_topology();    // master <- replica 0, via moved_since
  void refresh_owned_bounds();    // per-shard owned-x intervals + margin
  void migration_barrier();       // halo metric + hand-over pass
  void migrate_node(core::NodeId id, std::size_t to);

  core::FlowId next_flow_id_ = 1;

  NetworkConfig cfg_;
  sim::Rng rng_;
  phy::Topology topo_;
  phy::Partition part_;                // home strips (fixed geography)
  std::vector<std::size_t> shard_of_;  // node -> owning shard (live)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<phy::RandomWaypoint> mobility_;  // K = 1 only
  FlowTable flows_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Declared after shards_ (it holds raw Simulator pointers) and before
  // the endpoints; null under K = 1.
  std::unique_ptr<sim::ShardedRunner> runner_;
  bool started_ = false;

  double lookahead_ = 0.0;
  double epoch_s_ = 0.0;             // barrier spacing (0 = no barriers)
  std::uint64_t master_gen_cursor_ = 0;  // replica-0 generation synced
  std::vector<bool> pinned_;         // flow endpoints never migrate
  MigrationStats mig_stats_;
  // Per-shard owned-node x bounds (+ margin) for CSMA mirror targeting;
  // refreshed at construction and at every migration barrier.
  std::vector<double> owned_lo_;
  std::vector<double> owned_hi_;
  double mirror_margin_ = 0.0;

  // Endpoint storage (stable addresses; destroyed before nodes/macs by
  // reverse member order).
  std::vector<std::unique_ptr<core::TransportSender>> senders_;
  std::vector<std::unique_ptr<core::TransportReceiver>> receivers_;

 public:
  // Allocates a fresh flow id under a hop policy (visible for custom
  // wiring in tests).
  core::FlowId allocate_flow(HopPolicy policy);
  FlowTable& flow_table() { return flows_; }
};

}  // namespace jtp::net
