// Network: owns the whole simulated system and wires flows onto it.
//
// One Network = one simulation run: simulator, topology, channel, energy
// model, MAC fabric, routing service, one Node per vertex, and the
// transport endpoints attached to nodes. Flows attach through one
// polymorphic entry point — add_flow(proto, src, dst, opts) — which
// resolves the protocol in the TransportRegistry; the link layer is
// resolved the same way, through the MacRegistry keyed by
// NetworkConfig::mac_kind. The Network itself knows no protocol or MAC
// names. This is the "adaptation layer" through which experiments and
// examples use the library.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/transport.h"
#include "mac/registry.h"
#include "net/node.h"
#include "net/sim_env.h"
#include "net/transport.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "phy/mobility.h"
#include "phy/topology.h"
#include "routing/link_state.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::net {

struct NetworkConfig {
  std::uint64_t seed = 1;
  phy::ChannelConfig channel;
  phy::RadioConfig radio;
  mac::Mac mac_kind = mac::Mac::kTdma;  // which registered MAC to build
  mac::MacConfig mac;
  routing::RoutingConfig routing;
  NodeConfig node;
  double slot_duration_s = 0.035;  // ~ one max-size packet airtime
  std::optional<phy::MobilityConfig> mobility;  // engaged => nodes move
};

class Network {
 public:
  Network(phy::Topology topology, NetworkConfig cfg = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- flow attachment (endpoints are owned by the network) ---
  // Builds the proto's endpoint pair through the TransportRegistry, wires
  // it to the src/dst nodes, and returns the uniform handle. The flow is
  // idle until start() is invoked on it (FlowManager does the
  // scheduling). Throws std::invalid_argument on out-of-range endpoints
  // or an unregistered protocol.
  FlowHandle add_flow(Proto proto, core::NodeId src, core::NodeId dst,
                      const FlowOptions& opt = {});

  // --- access ---
  sim::Simulator& simulator() { return sim_; }
  core::Env& env() { return env_; }
  core::PacketPool& packet_pool() { return pool_; }
  phy::Topology& topology() { return topo_; }
  phy::Channel& channel() { return channel_; }
  phy::EnergyModel& energy() { return energy_; }
  routing::LinkStateRouting& routing() { return *routing_; }
  const mac::MacFabric& mac_fabric() const { return *fabric_; }
  Node& node(core::NodeId id) { return *nodes_.at(id); }
  mac::MacIface& mac_of(core::NodeId id) { return fabric_->mac_of(id); }
  std::size_t size() const { return nodes_.size(); }
  sim::Rng& rng() { return rng_; }
  const NetworkConfig& config() const { return cfg_; }

  // Starts routing refresh (and mobility if configured) and runs the
  // simulation until `t`.
  void run_until(double t);

  // --- aggregate counters across nodes ---
  std::uint64_t total_queue_drops() const;
  std::uint64_t total_attempt_drops() const;
  std::uint64_t total_energy_budget_drops() const;
  std::uint64_t total_cache_retransmissions() const;
  std::uint64_t total_transmissions() const;
  std::uint64_t total_route_drops() const;

 private:
  core::FlowId next_flow_id_ = 1;

  NetworkConfig cfg_;
  // Declared before the simulator: pending delivery events own packet
  // handles, and the pool must outlive them (see sim_env.h).
  core::PacketPool pool_;
  sim::Simulator sim_;
  sim::Rng rng_;
  phy::Topology topo_;
  phy::Channel channel_;
  phy::EnergyModel energy_;
  std::unique_ptr<routing::LinkStateRouting> routing_;
  std::unique_ptr<phy::RandomWaypoint> mobility_;
  SimEnv env_;
  FlowTable flows_;
  std::unique_ptr<mac::MacFabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;

  // Endpoint storage (stable addresses; destroyed before nodes/macs by
  // reverse member order).
  std::vector<std::unique_ptr<core::TransportSender>> senders_;
  std::vector<std::unique_ptr<core::TransportReceiver>> receivers_;

 public:
  // Allocates a fresh flow id under a hop policy (visible for custom
  // wiring in tests).
  core::FlowId allocate_flow(HopPolicy policy);
  FlowTable& flow_table() { return flows_; }
};

}  // namespace jtp::net
