// Adapter: sim::Simulator as the core::Env the shared protocol code needs.
// This is the OPNET/Linux "adaptation layer" analogue from the paper (§6).
#pragma once

#include "core/env.h"
#include "sim/simulator.h"

namespace jtp::net {

class SimEnv final : public core::Env {
 public:
  explicit SimEnv(sim::Simulator& sim) : sim_(sim) {}

  double now() const override { return sim_.now(); }
  core::TimerId schedule(double delay_s, std::function<void()> fn) override {
    return sim_.schedule(delay_s, std::move(fn));
  }
  void cancel(core::TimerId id) override { sim_.cancel(id); }

 private:
  sim::Simulator& sim_;
};

}  // namespace jtp::net
