// Adapter: sim::Simulator as the core::Env the shared protocol code needs.
// This is the OPNET/Linux "adaptation layer" analogue from the paper (§6).
//
// The packet pool is owned by whoever aggregates the Simulator and the
// SimEnv, and must be declared *before* the Simulator there: pending
// delivery events hold packet handles, and destroying the Simulator
// releases them back into the pool.
#pragma once

#include "core/env.h"
#include "sim/simulator.h"

namespace jtp::net {

class SimEnv final : public core::Env {
 public:
  SimEnv(sim::Simulator& sim, core::PacketPool& pool)
      : sim_(sim), pool_(pool) {}

  double now() const override { return sim_.now(); }
  core::TimerId schedule_fn(double delay_s, sim::SmallFn fn) override {
    return sim_.schedule_fn(delay_s, std::move(fn));
  }
  void cancel(core::TimerId id) override { sim_.cancel(id); }
  core::PacketPool& packet_pool() override { return pool_; }
  sim::SpillPool& spill_pool() override { return sim_.spill_pool(); }

 private:
  sim::Simulator& sim_;
  core::PacketPool& pool_;
};

}  // namespace jtp::net
