// The transport factory/registry: how protocols plug into a Network.
//
// A transport implementation registers once under a core::Proto value,
// declaring (a) its in-network HopPolicy, (b) whether in-network caches
// may serve its flows, and (c) a factory that builds a wired
// sender/receiver endpoint pair. `Network::add_flow(proto, src, dst,
// opts)` looks the protocol up here and returns a uniform FlowHandle —
// adding a protocol is one registration; Network, FlowManager, Node, the
// benches, and the metrics pipeline need no edits.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/ejtp_receiver.h"  // FeedbackMode
#include "core/path_monitor.h"
#include "core/transport.h"
#include "core/types.h"
#include "net/node.h"

namespace jtp::net {

class Network;

using core::Proto;

// Per-flow knobs that individual experiments vary. They are
// protocol-independent; each factory maps the subset its protocol
// understands onto that protocol's own config.
struct FlowOptions {
  double loss_tolerance = 0.0;
  double initial_rate_pps = 1.0;
  core::FeedbackMode feedback_mode = core::FeedbackMode::kVariable;
  double constant_feedback_rate_pps = 0.2;  // used in kConstant mode
  double t_lower_bound_s = 10.0;
  bool backoff_for_local_recovery = true;
  // β in e = β·eUCL (eq. 13). Must cover the worst legitimate delivery:
  // a packet that needs the full MAC attempt budget on several bad-state
  // links costs ~4-5x the typical path energy, so β below ~4 makes the
  // budget kill packets the reliability machinery then has to repair.
  double energy_beta = 5.0;
  double app_delivery_cap_pps = 1e6;
  core::Joules initial_energy_budget = 0.0;  // 0 = unbudgeted at start
  core::PathMonitorConfig monitor;           // flip-flop filter knobs
};

// Facts about the src->dst path at attachment time, precomputed by the
// Network so factories can derive rate caps and RTT-based timeouts.
struct PathInfo {
  double node_capacity_pps = 0.0;  // TDMA per-node share
  int hops = 1;
  double rtt_estimate_s = 2.0;
};

// One attached flow, protocol-agnostic. The counter accessors are the
// unified contract the metrics pipeline reads; protocol-specific
// instrumentation is reached through the typed downcast helpers.
struct FlowHandle {
  Proto proto = Proto::kJtp;
  core::FlowId id = 0;
  core::NodeId src = core::kInvalidNode;
  core::NodeId dst = core::kInvalidNode;
  core::TransportSender* sender = nullptr;
  core::TransportReceiver* receiver = nullptr;

  bool finished() const { return sender->finished(); }
  void stop() const {
    sender->stop();
    receiver->stop();
  }
  double delivered_bits() const { return receiver->delivered_payload_bits(); }
  std::uint64_t delivered_packets() const {
    return receiver->delivered_packets();
  }
  std::uint64_t waived_packets() const { return receiver->waived_packets(); }
  std::uint64_t data_sent() const { return sender->data_packets_sent(); }
  std::uint64_t source_rtx() const {
    return sender->source_retransmissions();
  }
  std::uint64_t acks_sent() const { return receiver->acks_sent(); }

  // Typed access to protocol-specific instrumentation, e.g.
  // `flow.receiver_as<core::EjtpReceiver>()->rate_monitor()`. Returns
  // nullptr when the flow's endpoints are of a different type.
  template <typename S>
  S* sender_as() const {
    return dynamic_cast<S*>(sender);
  }
  template <typename R>
  R* receiver_as() const {
    return dynamic_cast<R*>(receiver);
  }
};

struct TransportEndpoints {
  std::unique_ptr<core::TransportSender> sender;
  std::unique_ptr<core::TransportReceiver> receiver;
};

// Builds the endpoint pair of one flow. Implementations construct the
// sender against net.node(src) and the receiver against net.node(dst) and
// must not schedule events or start timers — the flow starts when the
// caller invokes start() on the endpoints.
class TransportFactory {
 public:
  virtual ~TransportFactory() = default;
  virtual TransportEndpoints make(Network& net, core::FlowId flow,
                                  core::NodeId src, core::NodeId dst,
                                  const FlowOptions& opt,
                                  const PathInfo& path) const = 0;
};

// Everything the stack needs to know about a registered protocol.
struct TransportInfo {
  Proto proto = Proto::kJtp;
  HopPolicy hop_policy = HopPolicy::kPlain;
  // False => the protocol requires a network built with in-network
  // caching disabled (scenario builders honor this; FlowManager enforces
  // it).
  bool caching = true;
  std::shared_ptr<const TransportFactory> factory;
};

// Process-wide protocol registry. The builtin protocols (the four paper
// protocols plus the jtp_ff ablation and the delivery-rate transports
// jtp_dr/bbr) are registered on first use; additional protocols must be
// registered before any
// simulation threads start (registration and lookup are mutex-guarded,
// but the entries themselves are immutable once added — this is the one
// deliberate process-global in the stack, and it holds no per-run state,
// so seed-parallel determinism is unaffected).
class TransportRegistry {
 public:
  static TransportRegistry& instance();

  // Throws std::invalid_argument if `info.proto` is already registered or
  // `info.factory` is null.
  void add(TransportInfo info);

  // Throws std::invalid_argument on an unregistered proto.
  const TransportInfo& info(Proto p) const;

  bool registered(Proto p) const;
  bool caching_enabled(Proto p) const { return info(p).caching; }

  // Registered protos in registration order (builtins first).
  std::vector<Proto> protos() const;

 private:
  TransportRegistry();  // registers the builtins (jtp … jtp_dr, bbr)

  mutable std::mutex mu_;
  std::deque<TransportInfo> entries_;  // deque: info() refs stay valid
};

}  // namespace jtp::net
