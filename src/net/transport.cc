#include "net/transport.h"

#include <algorithm>
#include <stdexcept>

#include "baselines/atp.h"
#include "baselines/bbr.h"
#include "baselines/tcp_sack.h"
#include "core/ejtp_sender.h"
#include "core/jtp_dr.h"
#include "net/network.h"

namespace jtp::net {

namespace {

// JTP (and JNC, which shares the endpoints and differs only in the
// network-level caching switch).
class JtpFactory final : public TransportFactory {
 public:
  TransportEndpoints make(Network& net, core::FlowId flow, core::NodeId src,
                          core::NodeId dst, const FlowOptions& opt,
                          const PathInfo& path) const override {
    // A flow can never exceed the TDMA per-node share (every hop must
    // relay it from its own slots); a rate floor well above zero keeps
    // the control loop observable (samples arrive with data packets).
    const double capacity = path.node_capacity_pps;
    const double rate_cap = std::min(opt.app_delivery_cap_pps, capacity);
    const double rate_floor = std::max(0.1, 0.07 * capacity);

    core::SenderConfig s;
    s.flow = flow;
    s.src = src;
    s.dst = dst;
    s.loss_tolerance = opt.loss_tolerance;
    s.initial_rate_pps = opt.initial_rate_pps;
    s.initial_energy_budget = opt.initial_energy_budget;
    s.backoff_for_local_recovery = opt.backoff_for_local_recovery;
    s.min_rate_pps = rate_floor;

    core::ReceiverConfig r;
    r.flow = flow;
    r.src = src;
    r.dst = dst;
    r.loss_tolerance = opt.loss_tolerance;
    r.feedback_mode = opt.feedback_mode;
    r.constant_feedback_rate_pps = opt.constant_feedback_rate_pps;
    r.t_lower_bound_s = opt.t_lower_bound_s;
    r.rtt_estimate_s = path.rtt_estimate_s;
    r.energy_beta = opt.energy_beta;
    r.app_delivery_cap_pps = opt.app_delivery_cap_pps;
    r.monitor = opt.monitor;
    r.cache_size_packets = net.config().node.ijtp.cache_capacity_packets;
    r.rate.initial_rate_pps = opt.initial_rate_pps;
    r.rate.delta_pps = 0.15 * capacity;  // headroom target δ
    r.rate.min_rate_pps = rate_floor;
    r.rate.max_rate_pps = rate_cap;

    TransportEndpoints eps;
    eps.sender =
        std::make_unique<core::EjtpSender>(net.env_for(src), net.node(src), s);
    eps.receiver =
        std::make_unique<core::EjtpReceiver>(net.env_for(dst), net.node(dst), r);
    return eps;
  }
};

class TcpFactory final : public TransportFactory {
 public:
  TransportEndpoints make(Network& net, core::FlowId flow, core::NodeId src,
                          core::NodeId dst, const FlowOptions& opt,
                          const PathInfo& path) const override {
    baselines::TcpConfig c;
    c.flow = flow;
    c.src = src;
    c.dst = dst;
    c.initial_rate_pps = opt.initial_rate_pps;
    c.initial_rtt_s = path.rtt_estimate_s;
    c.max_rate_pps = 4.0 * path.node_capacity_pps;

    TransportEndpoints eps;
    eps.sender = std::make_unique<baselines::TcpSackSender>(
        net.env_for(src), net.node(src), c);
    eps.receiver = std::make_unique<baselines::TcpSackReceiver>(
        net.env_for(dst), net.node(dst), c);
    return eps;
  }
};

class AtpFactory final : public TransportFactory {
 public:
  TransportEndpoints make(Network& net, core::FlowId flow, core::NodeId src,
                          core::NodeId dst, const FlowOptions& opt,
                          const PathInfo& path) const override {
    baselines::AtpConfig c;
    c.flow = flow;
    c.src = src;
    c.dst = dst;
    c.initial_rate_pps = opt.initial_rate_pps;
    c.feedback_period_s =
        std::max(3.0, 1.1 * path.rtt_estimate_s);  // D > RTT
    c.max_rate_pps = 4.0 * path.node_capacity_pps;

    TransportEndpoints eps;
    eps.sender =
        std::make_unique<baselines::AtpSender>(net.env_for(src), net.node(src), c);
    eps.receiver =
        std::make_unique<baselines::AtpReceiver>(net.env_for(dst), net.node(dst), c);
    return eps;
  }
};

// JTP with the receiver's feedback clock pinned to a constant rate — an
// ablation of the adaptive T controller (paper §5.1). Pure delegation to
// the JTP factory with two FlowOptions overridden; this was the
// test-local proof of the zero-edit registry seam (PR 4) and is now a
// permanent registrant.
class JtpFixedFeedbackFactory final : public TransportFactory {
 public:
  explicit JtpFixedFeedbackFactory(
      std::shared_ptr<const TransportFactory> base)
      : base_(std::move(base)) {}

  TransportEndpoints make(Network& net, core::FlowId flow, core::NodeId src,
                          core::NodeId dst, const FlowOptions& opt,
                          const PathInfo& path) const override {
    FlowOptions o = opt;
    o.feedback_mode = core::FeedbackMode::kConstant;
    o.constant_feedback_rate_pps = 0.5;  // fixed 2 s feedback period
    return base_->make(net, flow, src, dst, o, path);
  }

 private:
  std::shared_ptr<const TransportFactory> base_;
};

// Delivery-rate-adaptive JTP: the stock eJTP endpoint pair, but the
// sender is wrapped so the PI²/MD input Ā is a sender-side delivery-rate
// estimate instead of the destination's per-hop idle-rate aggregate.
class JtpDrFactory final : public TransportFactory {
 public:
  TransportEndpoints make(Network& net, core::FlowId flow, core::NodeId src,
                          core::NodeId dst, const FlowOptions& opt,
                          const PathInfo& path) const override {
    const double capacity = path.node_capacity_pps;
    const double rate_cap = std::min(opt.app_delivery_cap_pps, capacity);
    const double rate_floor = std::max(0.1, 0.07 * capacity);

    core::SenderConfig s;
    s.flow = flow;
    s.src = src;
    s.dst = dst;
    s.loss_tolerance = opt.loss_tolerance;
    s.initial_rate_pps = opt.initial_rate_pps;
    s.initial_energy_budget = opt.initial_energy_budget;
    s.backoff_for_local_recovery = opt.backoff_for_local_recovery;
    s.min_rate_pps = rate_floor;

    core::ReceiverConfig r;
    r.flow = flow;
    r.src = src;
    r.dst = dst;
    r.loss_tolerance = opt.loss_tolerance;
    r.feedback_mode = opt.feedback_mode;
    r.constant_feedback_rate_pps = opt.constant_feedback_rate_pps;
    r.t_lower_bound_s = opt.t_lower_bound_s;
    r.rtt_estimate_s = path.rtt_estimate_s;
    r.energy_beta = opt.energy_beta;
    r.app_delivery_cap_pps = opt.app_delivery_cap_pps;
    r.monitor = opt.monitor;
    r.cache_size_packets = net.config().node.ijtp.cache_capacity_packets;
    r.rate.initial_rate_pps = opt.initial_rate_pps;
    r.rate.delta_pps = 0.15 * capacity;
    r.rate.min_rate_pps = rate_floor;
    r.rate.max_rate_pps = rate_cap;

    core::JtpDrConfig dr;
    dr.rate.initial_rate_pps = opt.initial_rate_pps;
    // δ for a *delivery-rate* Ā is a collapse guard, not a headroom
    // target (see JtpDrConfig): per-flow delivery under fair sharing sits
    // far below capacity without meaning congestion.
    dr.rate.delta_pps = 0.02 * capacity;
    dr.rate.min_rate_pps = rate_floor;
    dr.rate.max_rate_pps = rate_cap;

    TransportEndpoints eps;
    eps.sender = std::make_unique<core::JtpDrSender>(net.env_for(src),
                                                     net.node(src), s, dr);
    eps.receiver = std::make_unique<core::EjtpReceiver>(net.env_for(dst),
                                                        net.node(dst), r);
    return eps;
  }
};

// BBR-style pacing over the TCP-SACK feedback channel: same receiver,
// same headers, same ACK cadence as kTcp — only the sender's
// congestion-control model differs.
class BbrFactory final : public TransportFactory {
 public:
  TransportEndpoints make(Network& net, core::FlowId flow, core::NodeId src,
                          core::NodeId dst, const FlowOptions& opt,
                          const PathInfo& path) const override {
    baselines::BbrConfig c;
    c.flow = flow;
    c.src = src;
    c.dst = dst;
    c.initial_rate_pps = opt.initial_rate_pps;
    c.initial_rtt_s = path.rtt_estimate_s;
    c.max_rate_pps = 4.0 * path.node_capacity_pps;

    baselines::TcpConfig t;
    t.flow = flow;
    t.src = src;
    t.dst = dst;
    t.initial_rtt_s = path.rtt_estimate_s;

    TransportEndpoints eps;
    eps.sender = std::make_unique<baselines::BbrSender>(net.env_for(src),
                                                        net.node(src), c);
    eps.receiver = std::make_unique<baselines::TcpSackReceiver>(
        net.env_for(dst), net.node(dst), t);
    return eps;
  }
};

}  // namespace

TransportRegistry::TransportRegistry() {
  const auto jtp = std::make_shared<const JtpFactory>();
  add({Proto::kJtp, HopPolicy::kIjtp, /*caching=*/true, jtp});
  add({Proto::kJnc, HopPolicy::kIjtp, /*caching=*/false, jtp});
  add({Proto::kTcp, HopPolicy::kPlain, /*caching=*/true,
       std::make_shared<const TcpFactory>()});
  add({Proto::kAtp, HopPolicy::kRateStamp, /*caching=*/true,
       std::make_shared<const AtpFactory>()});
  add({Proto::kJtpFf, HopPolicy::kIjtp, /*caching=*/true,
       std::make_shared<const JtpFixedFeedbackFactory>(jtp)});
  add({Proto::kJtpDr, HopPolicy::kIjtp, /*caching=*/true,
       std::make_shared<const JtpDrFactory>()});
  add({Proto::kBbr, HopPolicy::kPlain, /*caching=*/true,
       std::make_shared<const BbrFactory>()});
}

TransportRegistry& TransportRegistry::instance() {
  static TransportRegistry registry;
  return registry;
}

void TransportRegistry::add(TransportInfo info) {
  if (!info.factory)
    throw std::invalid_argument("TransportRegistry: null factory for '" +
                                core::proto_name(info.proto) + "'");
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e.proto == info.proto)
      throw std::invalid_argument("TransportRegistry: '" +
                                  core::proto_name(info.proto) +
                                  "' is already registered");
  entries_.push_back(std::move(info));
}

const TransportInfo& TransportRegistry::info(Proto p) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e.proto == p) return e;
  throw std::invalid_argument("TransportRegistry: protocol '" +
                              core::proto_name(p) + "' is not registered");
}

bool TransportRegistry::registered(Proto p) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e.proto == p) return true;
  return false;
}

std::vector<Proto> TransportRegistry::protos() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Proto> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.proto);
  return out;
}

}  // namespace jtp::net
