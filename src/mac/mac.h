// The polymorphic MAC seam: enum, config, hooks, and the per-node
// interface every MAC implements.
//
// PR 3 made the transport layer pluggable (net::TransportRegistry); this
// header does the same for the MAC. A MAC implementation provides one
// MacIface per node — the queue/attempt/retry state machine the transport
// layer talks to — and registers a fabric factory under a Mac enum value
// (see mac/registry.h). Network and Node depend only on this interface,
// so a new MAC is one enum value + one registration, with zero edits to
// the net/ layer. The contract mirrors the paper's iJTP plug-in
// architecture (§2.2.2):
//   * pre-xmit hook — invoked immediately before every over-the-air
//     transmission; may drop the packet (energy budget) and, on the first
//     attempt, fixes the packet's attempt budget;
//   * delivery hook — invoked when a transmission succeeds, handing the
//     packet to the next node's stack;
//   * LinkEstimator feed — per-link loss / available-rate / attempts
//     statistics, updated per transmission outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/env.h"
#include "core/packet.h"
#include "core/types.h"
#include "mac/link_estimator.h"

namespace jtp::mac {

// Registered MAC disciplines. kExt is the experiment slot: like
// core::Proto::kJtpFf it is deliberately not CLI-parseable and only
// runnable after an explicit MacRegistry::add() (the extension seam the
// conformance suite exercises).
enum class Mac : std::uint8_t { kTdma, kTdmaReuse, kCsma, kExt };

std::string mac_name(Mac m);

// Inverse of mac_name for the builtin disciplines; nullopt on an unknown
// (or non-CLI) name.
std::optional<Mac> parse_mac(std::string_view name);

// CSMA/CA contention knobs (802.15.4-style slotted binary exponential
// backoff: delay ~ U[0, 2^BE) backoff units before each clear-channel
// assessment).
struct CsmaConfig {
  int min_be = 3;        // initial backoff exponent
  int max_be = 5;        // BE cap after busy assessments
  int max_backoffs = 4;  // CCA retries before a channel-access failure
};

struct MacConfig {
  std::size_t queue_capacity_packets = 50;
  int default_max_attempts = 5;  // used when no pre-xmit hook overrides
  LinkEstimatorConfig estimator;
  // tdma_reuse: interference range as a multiple of the radio range for
  // the direct (carrier) conflict check; the 2-hop rule applies always.
  double reuse_range_margin = 1.0;
  CsmaConfig csma;
};

struct PreXmitDecision {
  bool drop = false;
  int max_attempts = 0;  // 0 = keep MAC default
};

// Slot-reuse accounting, reported per fabric (mirrors RoutingStats for
// the control plane). Classic TDMA is the degenerate coloring: every node
// its own color, reuse factor 1. CSMA has no coloring; all zeros.
struct MacStats {
  std::uint64_t recolors = 0;     // interference recolorings performed
  std::size_t colors_used = 0;    // slots per frame
  std::size_t max_color = 0;      // highest color index assigned
  double reuse_factor = 1.0;      // n / colors_used
};

// Hook signatures. `tx_energy` is what this attempt will cost the sender;
// `first_attempt` is true the first time this packet hits the air here.
using PreXmitHook = std::function<PreXmitDecision(
    core::Packet&, core::NodeId next_hop, const core::LinkView&,
    core::Joules tx_energy, bool first_attempt)>;
using DeliverHook = std::function<void(core::PacketPtr&&, core::NodeId from,
                                       core::NodeId to)>;
using AttemptBudgetTrace =
    std::function<void(sim::Time, const core::Packet&, int max_attempts)>;
// Delivery scheduling seam for the sharded runner: instead of the MAC
// scheduling its own +delay event and invoking the deliver hook, it
// hands (delay, packet, from, to) to the network, which routes the
// event to the shard owning `to` (and charges the receive energy on
// that shard at execution time). When unset, the MAC keeps the legacy
// single-simulator path.
using DeliveryDispatch = std::function<void(
    double delay_s, core::PacketPtr&&, core::NodeId from, core::NodeId to)>;

// One node's MAC. Everything the net/ layer (Node, Network) and the
// transport hooks touch goes through this interface; the conformance
// suite (tests/mac_conformance_test.cc) pins the behavioural contract
// for every registrant.
class MacIface {
 public:
  using PreXmitHook = mac::PreXmitHook;
  using DeliverHook = mac::DeliverHook;
  using AttemptBudgetTrace = mac::AttemptBudgetTrace;

  virtual ~MacIface() = default;

  virtual void set_pre_xmit(PreXmitHook hook) = 0;
  virtual void set_deliver(DeliverHook hook) = 0;
  virtual void set_attempt_trace(AttemptBudgetTrace t) = 0;
  // Optional (default no-op): MACs that support shard-routed delivery
  // override this. See mac::DeliveryDispatch.
  virtual void set_dispatch(DeliveryDispatch) {}

  // Queues a packet for `next_hop`. Returns false (and counts a queue
  // drop) when the queue is full; the dropped packet's slot is recycled.
  virtual bool enqueue(core::PacketPtr p, core::NodeId next_hop) = 0;

  virtual core::NodeId self() const = 0;
  virtual LinkEstimator& estimator() = 0;
  virtual const LinkEstimator& estimator() const = 0;
  virtual std::size_t queue_length() const = 0;
  virtual std::size_t data_queue_length() const = 0;

  // --- counters (the conformance contract) ---
  virtual std::uint64_t queue_drops() const = 0;
  virtual std::uint64_t attempt_exhausted_drops() const = 0;
  virtual std::uint64_t energy_budget_drops() const = 0;
  virtual std::uint64_t transmissions() const = 0;
  virtual std::uint64_t deliveries() const = 0;

  // --- shard migration (epoch-barrier time only; see net::Network) ---
  // True when this MAC holds no in-flight state: empty queues and no
  // armed transmit machinery. Only a quiescent MAC may hand its node to
  // another shard. The conservative default pins custom disciplines in
  // place (never migratable) rather than risking a half-moved cycle.
  virtual bool migration_idle() const { return false; }
  // Copies the dynamic per-node state — counters, link estimator,
  // discipline internals (slot cursor, backoff rng) — from the same
  // node's replica in another shard's fabric. Both sides are quiescent
  // when this runs. Throws std::logic_error on a cross-discipline pair.
  virtual void adopt_state(const MacIface&) {
    throw std::logic_error("MacIface: discipline does not support adoption");
  }
};

}  // namespace jtp::mac
