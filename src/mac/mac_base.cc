#include "mac/mac_base.h"

#include <algorithm>
#include <utility>

namespace jtp::mac {

MacBase::MacBase(sim::Simulator& sim, phy::Channel& channel,
                 phy::EnergyModel& energy, core::NodeId self,
                 const MacConfig& cfg)
    : sim_(sim),
      channel_(channel),
      energy_(energy),
      self_(self),
      cfg_(cfg),
      estimator_(cfg.estimator),
      ctrl_queue_(cfg.queue_capacity_packets),
      queue_(cfg.queue_capacity_packets) {}

bool MacBase::enqueue(core::PacketPtr p, core::NodeId next_hop) {
  TxRing& q = p->is_ack() ? ctrl_queue_ : queue_;
  if (q.full()) {
    ++queue_drops_;
    return false;  // `p` goes out of scope: the slot is recycled
  }
  q.push_back(Entry{std::move(p), next_hop, 0, 0});
  kick();
  return true;
}

MacBase::TxRing* MacBase::current_queue() {
  if (!ctrl_queue_.empty()) return &ctrl_queue_;
  if (!queue_.empty()) return &queue_;
  return nullptr;
}

void MacBase::finish_head(TxRing& q, bool delivered) {
  Entry& e = q.front();
  estimator_.record_packet(e.next_hop,
                           e.attempts_done > 0 ? e.attempts_done : 1);
  if (delivered) ++deliveries_;
  q.pop_front();
}

SlottedMac::SlottedMac(sim::Simulator& sim, phy::Channel& channel,
                       phy::EnergyModel& energy, core::NodeId self,
                       const MacConfig& cfg)
    : MacBase(sim, channel, energy, self, cfg) {}

void SlottedMac::schedule_next_tx() {
  if (tx_scheduled_ || (queue_.empty() && ctrl_queue_.empty())) return;
  // One transmission per owned slot: never reuse the slot we just used.
  const sim::Time now = sim_.now();
  std::uint64_t from = now <= 0 ? 0 : slot_at(now);
  if (slot_start(from) < now) ++from;
  from = std::max(from, min_slot_);
  const std::uint64_t slot = next_owned_slot_from(from);
  tx_scheduled_ = true;
  sim_.at(slot_start(slot), [this, slot] {
    tx_scheduled_ = false;
    min_slot_ = slot + 1;
    transmit_head();
  });
}

void SlottedMac::transmit_head() {
  TxRing* qp = current_queue();
  if (qp == nullptr) return;
  TxRing& q = *qp;
  Entry& e = q.front();
  const bool first_attempt = (e.attempts_done == 0);
  const core::LinkView link = estimator_.view(e.next_hop, sim_.now());
  const core::Joules tx_e = energy_.tx_energy(e.packet->size_bits());

  PreXmitDecision d;
  d.max_attempts = cfg_.default_max_attempts;
  if (pre_xmit_)
    d = pre_xmit_(*e.packet, e.next_hop, link, tx_e, first_attempt);
  if (d.drop) {
    // Energy budget exceeded (Algorithm 1 line 3): the slot goes unused.
    ++budget_drops_;
    finish_head(q, /*delivered=*/false);
    schedule_next_tx();
    return;
  }
  if (first_attempt) {
    e.max_attempts =
        d.max_attempts > 0 ? d.max_attempts : cfg_.default_max_attempts;
    if (attempt_trace_ && e.packet->is_data())
      attempt_trace_(sim_.now(), *e.packet, e.max_attempts);
  }

  // The attempt occupies this node's slot and costs transmit energy
  // whether or not the receiver decodes it.
  ++transmissions_;
  ++e.attempts_done;
  estimator_.record_slot_used(sim_.now());
  energy_.charge_tx(self_, e.packet->size_bits());

  const bool lost = channel_.transmission_lost(self_, e.next_hop, sim_.now());
  estimator_.record_attempt(e.next_hop, lost);

  if (!lost) {
    // The handle moves out of the queue entry and rides the delivery
    // event; no packet bytes are copied on a successful hop.
    core::PacketPtr delivered = std::move(e.packet);
    const core::NodeId from = self_;
    const core::NodeId to = e.next_hop;
    finish_head(q, /*delivered=*/true);
    // Hand to the fabric at the end of the slot (one airtime later).
    if (dispatch_) {
      // Shard-routed path: the network schedules the delivery on the
      // shard owning `to` and charges the receive energy there, at
      // delivery-execution time (the receiver's accounting must live
      // with the receiver's state).
      dispatch_(slot_duration(), std::move(delivered), from, to);
    } else {
      energy_.charge_rx(to, delivered->size_bits());
      sim_.schedule(slot_duration(), [this, p = std::move(delivered), from,
                                      to]() mutable {
        if (deliver_) deliver_(std::move(p), from, to);
      });
    }
  } else if (e.attempts_done >= e.max_attempts) {
    // Attempt budget exhausted: local loss. Recovery, if the application
    // wants it, happens via SNACK + caches or the source (paper §4).
    ++attempt_drops_;
    finish_head(q, /*delivered=*/false);
  }
  // else: the packet stays at the head for the next owned slot.

  schedule_next_tx();
}

}  // namespace jtp::mac
