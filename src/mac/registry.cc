#include "mac/registry.h"

#include <stdexcept>
#include <utility>

#include "mac/csma_mac.h"
#include "mac/reuse_tdma.h"
#include "mac/tdma_mac.h"
#include "mac/tdma_schedule.h"

namespace jtp::mac {

namespace {

// Classic TDMA: the n-slot frame (paper §2). The schedule seed derivation
// matches what Network used before the registry existed — committed
// baselines are pinned to it.
class TdmaFabric final : public MacFabric {
 public:
  explicit TdmaFabric(const MacContext& ctx)
      : schedule_(ctx.topo.size(), ctx.slot_duration_s,
                  ctx.seed ^ 0x7d3aULL) {
    macs_.reserve(ctx.topo.size());
    for (core::NodeId id = 0; id < ctx.topo.size(); ++id)
      macs_.push_back(std::make_unique<TdmaMac>(ctx.sim, schedule_,
                                                ctx.channel, ctx.energy, id,
                                                ctx.config));
  }

  MacIface& mac_of(core::NodeId id) override { return *macs_.at(id); }
  std::size_t size() const override { return macs_.size(); }
  double node_capacity_pps() const override {
    return schedule_.node_capacity_pps();
  }
  double frame_duration_s() const override {
    return schedule_.frame_duration();
  }
  MacStats stats() const override {
    // The degenerate coloring: every node its own color.
    MacStats st;
    st.colors_used = macs_.size();
    st.max_color = macs_.empty() ? 0 : macs_.size() - 1;
    return st;
  }

 private:
  TdmaSchedule schedule_;
  std::vector<std::unique_ptr<TdmaMac>> macs_;
};

class TdmaFactory final : public MacFactory {
 public:
  std::unique_ptr<MacFabric> make(const MacContext& ctx) const override {
    return std::make_unique<TdmaFabric>(ctx);
  }
};

// Spatial-reuse TDMA: frame length = interference colors, recolored
// lazily off the topology generation. Same seed derivation as classic so
// the color-slot permutation is comparable across disciplines.
class ReuseFabric final : public MacFabric {
 public:
  explicit ReuseFabric(const MacContext& ctx)
      : schedule_(ctx.topo, ctx.slot_duration_s, ctx.seed ^ 0x7d3aULL,
                  ctx.config.reuse_range_margin) {
    macs_.reserve(ctx.topo.size());
    for (core::NodeId id = 0; id < ctx.topo.size(); ++id)
      macs_.push_back(std::make_unique<ReuseTdmaMac>(ctx.sim, schedule_,
                                                     ctx.channel, ctx.energy,
                                                     id, ctx.config));
  }

  MacIface& mac_of(core::NodeId id) override { return *macs_.at(id); }
  std::size_t size() const override { return macs_.size(); }
  double node_capacity_pps() const override {
    return schedule_.node_capacity_pps();
  }
  double frame_duration_s() const override {
    return schedule_.frame_duration();
  }
  MacStats stats() const override { return schedule_.stats(); }

 private:
  ReuseSchedule schedule_;
  std::vector<std::unique_ptr<ReuseTdmaMac>> macs_;
};

class ReuseFactory final : public MacFactory {
 public:
  std::unique_ptr<MacFabric> make(const MacContext& ctx) const override {
    return std::make_unique<ReuseFabric>(ctx);
  }
};

// CSMA/CA: contention over a shared carrier; the scenario's slot duration
// doubles as the backoff unit so TDMA and CSMA runs share a time base.
class CsmaFabric final : public MacFabric {
 public:
  explicit CsmaFabric(const MacContext& ctx)
      : medium_(ctx.topo, ctx.slot_duration_s),
        unit_(ctx.slot_duration_s),
        window_slots_(static_cast<double>(1ULL << ctx.config.csma.min_be)) {
    macs_.reserve(ctx.topo.size());
    for (core::NodeId id = 0; id < ctx.topo.size(); ++id)
      macs_.push_back(std::make_unique<CsmaMac>(
          ctx.sim, medium_, ctx.channel, ctx.energy, id, unit_, ctx.config,
          sim::Rng(ctx.seed).derive("csma", id)));
  }

  MacIface& mac_of(core::NodeId id) override { return *macs_.at(id); }
  std::size_t size() const override { return macs_.size(); }
  // Nominal: one packet per full minimum contention window.
  double node_capacity_pps() const override {
    return 1.0 / frame_duration_s();
  }
  double frame_duration_s() const override { return unit_ * window_slots_; }
  MacStats stats() const override { return MacStats{}; }  // no coloring

  void set_tx_mirror(std::function<void(const CsmaTxRecord&)> hook) override {
    medium_.set_mirror(std::move(hook));
  }
  void register_remote_tx(const CsmaTxRecord& r, double now) override {
    medium_.register_remote(r, now);
  }

 private:
  CsmaMedium medium_;
  double unit_;
  double window_slots_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
};

class CsmaFactory final : public MacFactory {
 public:
  std::unique_ptr<MacFabric> make(const MacContext& ctx) const override {
    return std::make_unique<CsmaFabric>(ctx);
  }
};

}  // namespace

MacRegistry::MacRegistry() {
  add({Mac::kTdma, std::make_shared<const TdmaFactory>()});
  add({Mac::kTdmaReuse, std::make_shared<const ReuseFactory>()});
  add({Mac::kCsma, std::make_shared<const CsmaFactory>()});
}

MacRegistry& MacRegistry::instance() {
  static MacRegistry registry;
  return registry;
}

void MacRegistry::add(MacInfo info) {
  if (!info.factory)
    throw std::invalid_argument("MacRegistry: null factory for '" +
                                mac_name(info.mac) + "'");
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e.mac == info.mac)
      throw std::invalid_argument("MacRegistry: '" + mac_name(info.mac) +
                                  "' is already registered");
  entries_.push_back(std::move(info));
}

const MacInfo& MacRegistry::info(Mac m) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e.mac == m) return e;
  throw std::invalid_argument("MacRegistry: MAC '" + mac_name(m) +
                              "' is not registered");
}

bool MacRegistry::registered(Mac m) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e.mac == m) return true;
  return false;
}

std::vector<Mac> MacRegistry::macs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Mac> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.mac);
  return out;
}

}  // namespace jtp::mac
