#include "mac/link_estimator.h"

#include <algorithm>
#include <stdexcept>

namespace jtp::mac {

LinkEstimator::LinkEstimator(LinkEstimatorConfig cfg) : cfg_(cfg) {
  if (cfg.loss_alpha <= 0 || cfg.loss_alpha > 1 || cfg.attempts_alpha <= 0 ||
      cfg.attempts_alpha > 1)
    throw std::invalid_argument("LinkEstimator: weights outside (0,1]");
  if (cfg.utilization_window_s <= 0)
    throw std::invalid_argument("LinkEstimator: bad window");
}

void LinkEstimator::record_attempt(core::NodeId neighbor, bool lost) {
  auto& l = links_[neighbor];
  const double sample = lost ? 1.0 : 0.0;
  if (!l.loss_init) {
    // Blend the first sample with the prior rather than adopting it raw:
    // a single unlucky first transmission would otherwise report 100%.
    l.loss = (cfg_.initial_loss + sample) / 2.0;
    l.loss_init = true;
    return;
  }
  l.loss = (1.0 - cfg_.loss_alpha) * l.loss + cfg_.loss_alpha * sample;
}

void LinkEstimator::record_packet(core::NodeId neighbor, int attempts) {
  if (attempts < 1) throw std::invalid_argument("record_packet: attempts < 1");
  auto& l = links_[neighbor];
  const double sample = static_cast<double>(attempts);
  if (!l.attempts_init) {
    l.attempts = sample;
    l.attempts_init = true;
    return;
  }
  l.attempts =
      (1.0 - cfg_.attempts_alpha) * l.attempts + cfg_.attempts_alpha * sample;
}

void LinkEstimator::record_slot_used(sim::Time t) {
  used_slots_.push_back(t);
}

void LinkEstimator::prune(sim::Time now) const {
  while (!used_slots_.empty() &&
         used_slots_.front() < now - cfg_.utilization_window_s)
    used_slots_.pop_front();
}

double LinkEstimator::loss_rate(core::NodeId neighbor) const {
  auto it = links_.find(neighbor);
  if (it == links_.end() || !it->second.loss_init) return cfg_.initial_loss;
  return it->second.loss;
}

double LinkEstimator::avg_attempts(core::NodeId neighbor) const {
  auto it = links_.find(neighbor);
  if (it == links_.end() || !it->second.attempts_init) return 1.0;
  return it->second.attempts;
}

double LinkEstimator::utilization(sim::Time now) const {
  prune(now);
  const double owned_in_window =
      cfg_.node_capacity_pps * cfg_.utilization_window_s;
  if (owned_in_window <= 0) return 1.0;
  return std::min(1.0, static_cast<double>(used_slots_.size()) / owned_in_window);
}

double LinkEstimator::available_rate_pps(sim::Time now) const {
  return cfg_.node_capacity_pps * (1.0 - utilization(now));
}

core::LinkView LinkEstimator::view(core::NodeId neighbor,
                                   sim::Time now) const {
  core::LinkView v;
  v.loss_rate = loss_rate(neighbor);
  v.available_rate_pps = available_rate_pps(now);
  v.avg_attempts = avg_attempts(neighbor);
  return v;
}

}  // namespace jtp::mac
