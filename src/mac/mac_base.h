// Shared MAC machinery: the bounded transmit queues, hook plumbing, and
// attempt/drop counters every registered MAC uses, plus the slot-timed
// transmit loop the TDMA family shares.
//
// MacBase owns what is common to all disciplines — two fixed-capacity
// FIFO rings (control ahead of data), the pre-xmit/deliver/trace hooks,
// the LinkEstimator, and the counter set that is the conformance
// contract. How and when the head of the queue actually hits the air is
// the discipline: SlottedMac implements the "transmit the head in the
// next owned slot" loop against abstract slot geometry (classic TDMA
// binds it to the n-slot frame, spatial-reuse TDMA to the colors-slot
// frame); CsmaMac derives from MacBase directly with a contention cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/mac.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "sim/simulator.h"

namespace jtp::mac {

class MacBase : public MacIface {
 public:
  void set_pre_xmit(PreXmitHook hook) override { pre_xmit_ = std::move(hook); }
  void set_deliver(DeliverHook hook) override { deliver_ = std::move(hook); }
  void set_attempt_trace(AttemptBudgetTrace t) override {
    attempt_trace_ = std::move(t);
  }
  void set_dispatch(DeliveryDispatch d) override { dispatch_ = std::move(d); }

  bool enqueue(core::PacketPtr p, core::NodeId next_hop) override;

  core::NodeId self() const override { return self_; }
  LinkEstimator& estimator() override { return estimator_; }
  const LinkEstimator& estimator() const override { return estimator_; }
  std::size_t queue_length() const override {
    return queue_.size() + ctrl_queue_.size();
  }
  std::size_t data_queue_length() const override { return queue_.size(); }

  std::uint64_t queue_drops() const override { return queue_drops_; }
  std::uint64_t attempt_exhausted_drops() const override {
    return attempt_drops_;
  }
  std::uint64_t energy_budget_drops() const override { return budget_drops_; }
  std::uint64_t transmissions() const override { return transmissions_; }
  std::uint64_t deliveries() const override { return deliveries_; }

 protected:
  MacBase(sim::Simulator& sim, phy::Channel& channel, phy::EnergyModel& energy,
          core::NodeId self, const MacConfig& cfg);

  struct Entry {
    core::PacketPtr packet;
    core::NodeId next_hop = core::kInvalidNode;
    int attempts_done = 0;
    int max_attempts = 0;  // fixed on first attempt
  };

  // Fixed-capacity FIFO ring: the transmit queue's bound is a protocol
  // parameter (queue_capacity_packets), so the storage is allocated once
  // at construction and enqueue/dequeue never touch the heap.
  class TxRing {
   public:
    explicit TxRing(std::size_t capacity) : buf_(capacity) {}
    bool full() const { return size_ == buf_.size(); }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    Entry& front() { return buf_[head_]; }
    void push_back(Entry&& e) {
      buf_[(head_ + size_) % buf_.size()] = std::move(e);
      ++size_;
    }
    void pop_front() {
      buf_[head_] = Entry{};  // release the packet handle
      head_ = (head_ + 1) % buf_.size();
      --size_;
    }

   private:
    std::vector<Entry> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  // Called after a successful enqueue; the discipline arms its transmit
  // machinery (slot timer, backoff cycle) if it is not already running.
  virtual void kick() = 0;

  // Control traffic (ACKs) is transmitted before data: feedback keeps the
  // rate controllers honest precisely when queues are backlogged, and an
  // ACK stuck behind 50 data packets per hop arrives too stale to matter.
  TxRing* current_queue();
  void finish_head(TxRing& q, bool delivered);

  // Copies the layer-common dynamic state (counters + estimator) from a
  // quiescent same-node replica; the hooks stay as wired per shard and
  // the rings are empty on both sides (migration_idle).
  void adopt_base(const MacBase& from) {
    estimator_ = from.estimator_;
    queue_drops_ = from.queue_drops_;
    attempt_drops_ = from.attempt_drops_;
    budget_drops_ = from.budget_drops_;
    transmissions_ = from.transmissions_;
    deliveries_ = from.deliveries_;
  }

  sim::Simulator& sim_;
  phy::Channel& channel_;
  phy::EnergyModel& energy_;
  core::NodeId self_;
  MacConfig cfg_;
  LinkEstimator estimator_;

  TxRing ctrl_queue_;
  TxRing queue_;

  PreXmitHook pre_xmit_;
  DeliverHook deliver_;
  AttemptBudgetTrace attempt_trace_;
  DeliveryDispatch dispatch_;

  std::uint64_t queue_drops_ = 0;
  std::uint64_t attempt_drops_ = 0;
  std::uint64_t budget_drops_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t deliveries_ = 0;
};

// The slot-timed transmit loop shared by the TDMA family: one attempt at
// the head of the queue per owned slot, the delivery handed to the fabric
// one slot-duration later. Concrete MACs supply the slot geometry — which
// slot covers a time, when a slot starts, and which upcoming slot this
// node owns.
class SlottedMac : public MacBase {
 protected:
  SlottedMac(sim::Simulator& sim, phy::Channel& channel,
             phy::EnergyModel& energy, core::NodeId self,
             const MacConfig& cfg);

  // --- slot geometry, supplied by the concrete MAC ---
  virtual std::uint64_t slot_at(sim::Time t) = 0;
  virtual sim::Time slot_start(std::uint64_t slot) = 0;
  virtual double slot_duration() = 0;
  // First slot owned by this node with index >= from_slot. The ownership
  // map may be lazily refreshed here (spatial reuse recolors on topology
  // change).
  virtual std::uint64_t next_owned_slot_from(std::uint64_t from_slot) = 0;

  void kick() override { schedule_next_tx(); }

 public:
  bool migration_idle() const override {
    return queue_.empty() && ctrl_queue_.empty() && !tx_scheduled_;
  }
  void adopt_state(const MacIface& from) override {
    const auto* src = dynamic_cast<const SlottedMac*>(&from);
    if (src == nullptr)
      throw std::logic_error("SlottedMac::adopt_state: discipline mismatch");
    adopt_base(*src);
    min_slot_ = src->min_slot_;
  }

 private:
  void schedule_next_tx();
  void transmit_head();

  bool tx_scheduled_ = false;
  std::uint64_t min_slot_ = 0;  // earliest slot the next tx may use
};

}  // namespace jtp::mac
