#include "mac/mac.h"

namespace jtp::mac {

std::string mac_name(Mac m) {
  switch (m) {
    case Mac::kTdma: return "tdma";
    case Mac::kTdmaReuse: return "tdma_reuse";
    case Mac::kCsma: return "csma";
    case Mac::kExt: return "ext";
  }
  return "?";
}

std::optional<Mac> parse_mac(std::string_view name) {
  // kExt is deliberately not parseable: it is only runnable after an
  // explicit MacRegistry::add(), so a CLI typo cannot select it.
  for (auto m : {Mac::kTdma, Mac::kTdmaReuse, Mac::kCsma})
    if (name == mac_name(m)) return m;
  return std::nullopt;
}

}  // namespace jtp::mac
