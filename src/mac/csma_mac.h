// Slotted CSMA/CA with binary exponential backoff (802.15.4 style).
//
// The contention counterpoint to the TDMA family: instead of owned slots,
// a node that has traffic backs off a random number of unit periods in
// [0, 2^BE), senses the carrier (CCA), and transmits if idle. A busy CCA
// doubles the window (BE capped at max_be) and counts against the backoff
// budget; exhausting max_backoffs is a channel-access failure that drops
// the packet. Carrier sense is physical: a CSMA medium shared by the
// fabric tracks in-flight transmissions against the topology, so hidden
// terminals are real — two transmitters out of carrier range of each
// other can still collide at a common receiver; the verdict is decided
// the moment two frames overlap and read back at transmission end.
// Every attempt (including retries) is charged to the energy layer
// individually, matching the ns-3 802.15.4 energy exemplar where cost is
// unitEnergy · (retries + 1).
#pragma once

#include <cstdint>
#include <vector>

#include "mac/mac_base.h"
#include "phy/topology.h"
#include "sim/random.h"

namespace jtp::mac {

// The shared carrier: one per fabric. Tracks active transmissions so CCA
// and collision checks are range queries against the topology.
//
// Collisions are decided eagerly: when a frame starts, it and every
// overlapping in-flight frame mark each other collided if the foreign
// sender is audible at the victim's receiver. A record lives exactly as
// long as its transmission — begin_tx registers it, finish_tx releases
// it — so an interferer that ends before its victim can never be
// forgotten by the time the victim's verdict is read.
class CsmaMedium {
 public:
  using TxId = std::uint64_t;

  explicit CsmaMedium(const phy::Topology& topo) : topo_(topo) {}

  // Registers a frame in flight from `sender` toward `receiver` over
  // [start, end) and resolves collisions against every overlapping
  // active frame, in both directions.
  TxId begin_tx(core::NodeId sender, core::NodeId receiver, sim::Time start,
                sim::Time end);

  // CCA: is any in-flight transmission audible at `listener` now?
  bool busy(core::NodeId listener, sim::Time now) const;

  // Releases the record and returns whether the frame was collided at
  // its receiver. Called exactly once, at the transmission's end.
  bool finish_tx(TxId id);

 private:
  struct Tx {
    TxId id = 0;
    core::NodeId sender = core::kInvalidNode;
    core::NodeId receiver = core::kInvalidNode;
    sim::Time start = 0.0;
    sim::Time end = 0.0;
    bool collided = false;
  };

  const phy::Topology& topo_;
  TxId next_id_ = 0;
  std::vector<Tx> active_;
};

class CsmaMac final : public MacBase {
 public:
  CsmaMac(sim::Simulator& sim, CsmaMedium& medium, phy::Channel& channel,
          phy::EnergyModel& energy, core::NodeId self, double unit_backoff_s,
          MacConfig cfg, sim::Rng rng);

  // Busy-CCA count (each one burns a backoff stage); conformance and the
  // energy analysis read contention pressure off this.
  std::uint64_t cca_failures() const { return cca_failures_; }

 protected:
  void kick() override;

 private:
  void start_backoff();
  void attempt_transmit();
  void finish_tx(TxRing* q, CsmaMedium::TxId txid, bool lost_ch);
  void next_cycle();

  CsmaMedium& medium_;
  double unit_;  // one backoff period, seconds
  sim::Rng rng_;

  bool busy_ = false;  // a contention cycle (backoff or tx) is in flight
  int nb_ = 0;         // busy-CCA count this cycle
  int be_ = 0;         // current backoff exponent
  std::uint64_t cca_failures_ = 0;
};

}  // namespace jtp::mac
