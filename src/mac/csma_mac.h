// Slotted CSMA/CA with binary exponential backoff (802.15.4 style).
//
// The contention counterpoint to the TDMA family: instead of owned slots,
// a node that has traffic backs off a random number of unit periods in
// [0, 2^BE), senses the carrier (CCA), and transmits if idle. A busy CCA
// doubles the window (BE capped at max_be) and counts against the backoff
// budget; exhausting max_backoffs is a channel-access failure that drops
// the packet. Carrier sense is physical: a CSMA medium tracks in-flight
// transmissions against the topology, so hidden terminals are real — two
// transmitters out of carrier range of each other can still collide at a
// common receiver.
//
// The medium's semantics are deliberately partition-independent, so the
// sharded runner can split the carrier into per-strip domains coupled by
// mirrored boundary records (see net::Network) without changing a single
// verdict:
//  * Contention is grid-aligned: every CCA and transmission start sits on
//    a whole backoff-unit boundary (the next grid point after the random
//    backoff), like the slotted CAP of 802.15.4.
//  * CCA has one unit of detection latency: a frame is audible at grid
//    point t only if it started at or before t - unit. That is exactly
//    the margin that lets a peer strip learn about a boundary frame
//    through a half-unit-lookahead mirror message before any of its own
//    nodes could sense it — so a CCA verdict never depends on how the
//    field was cut.
//  * Each record captures the sender's and receiver's positions at start
//    time; collision marking and CCA geometry are evaluated against the
//    captured points, so a verdict computed in another strip (or half a
//    unit later, when the mirror arrives) is the same verdict.
//  * The collision verdict is read half a unit after the frame ends —
//    after every mirror that could mark it has arrived — and the
//    delivery is handed over another half unit later through the
//    network's dispatch seam, which routes it to (and charges receive
//    energy in) the receiver's shard.
// Every attempt (including retries) is charged to the energy layer
// individually, matching the ns-3 802.15.4 energy exemplar where cost is
// unitEnergy · (retries + 1).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mac/mac_base.h"
#include "phy/topology.h"
#include "sim/random.h"

namespace jtp::mac {

// Wire form of one in-flight transmission, as mirrored across shard
// boundaries. Positions are captured at begin time — the record is
// self-contained, so the receiving domain never reads the sender's
// (possibly moved-on) live topology state.
struct CsmaTxRecord {
  std::uint64_t id = 0;
  core::NodeId sender = core::kInvalidNode;
  core::NodeId receiver = core::kInvalidNode;
  phy::Position sender_pos;
  phy::Position receiver_pos;
  sim::Time start = 0.0;
  sim::Time end = 0.0;
};

// One carrier domain: the whole field under K = 1, one strip per shard
// otherwise. Tracks active transmissions (native ones begun here plus
// mirrors of audible boundary frames from peer domains) so CCA and
// collision checks are range queries against captured geometry.
class CsmaMedium {
 public:
  using TxId = std::uint64_t;
  using MirrorHook = std::function<void(const CsmaTxRecord&)>;

  CsmaMedium(const phy::Topology& topo, double unit_s)
      : topo_(topo), range_(topo.radio_range()), unit_(unit_s) {}

  // Invoked with the wire record of every native begin_tx; the sharded
  // network posts it to peer strips as a +unit/2 mirror. Unset under
  // K = 1.
  void set_mirror(MirrorHook h) { mirror_ = std::move(h); }

  // Registers a frame in flight from `sender` toward `receiver` over
  // [start, end), captures both endpoints' positions, resolves
  // collisions against every overlapping record (both directions, via
  // captured geometry), and publishes the record to the mirror hook.
  TxId begin_tx(core::NodeId sender, core::NodeId receiver, sim::Time start,
                sim::Time end);

  // A peer domain's boundary frame, arriving start + unit/2. Runs the
  // same bidirectional collision marking as a native begin.
  void register_remote(const CsmaTxRecord& r, sim::Time now);

  // CCA at grid point `now`: is any transmission that started at least
  // one unit ago still in the air and audible at `listener`? (Captured
  // sender position vs. the listener's live one.)
  bool busy(core::NodeId listener, sim::Time now) const;

  // Releases a native record and returns whether the frame was collided
  // at its receiver. Called exactly once, half a unit after the
  // transmission's end — after the last possible marking mirror.
  bool finish_tx(TxId id);

  // Live records, mirrors included (tests / BM_CsmaBoundaryArbitration).
  std::size_t active_records() const { return active_.size(); }

 private:
  struct Tx {
    TxId id = 0;
    core::NodeId sender = core::kInvalidNode;
    core::NodeId receiver = core::kInvalidNode;
    phy::Position spos;
    phy::Position rpos;
    sim::Time start = 0.0;
    sim::Time end = 0.0;
    bool collided = false;
    bool mirror = false;
  };

  bool audible(const phy::Position& a, const phy::Position& b) const {
    const double dx = a.x - b.x, dy = a.y - b.y;
    return dx * dx + dy * dy <= range_ * range_;
  }
  void mark_collisions(Tx& tx);
  void prune_mirrors(sim::Time now);

  const phy::Topology& topo_;
  double range_;
  double unit_;
  TxId next_id_ = 0;  // native records only; mirrors keep their origin id
  MirrorHook mirror_;
  std::vector<Tx> active_;
};

class CsmaMac final : public MacBase {
 public:
  CsmaMac(sim::Simulator& sim, CsmaMedium& medium, phy::Channel& channel,
          phy::EnergyModel& energy, core::NodeId self, double unit_backoff_s,
          MacConfig cfg, sim::Rng rng);

  // Busy-CCA count (each one burns a backoff stage); conformance and the
  // energy analysis read contention pressure off this.
  std::uint64_t cca_failures() const { return cca_failures_; }

  bool migration_idle() const override {
    return queue_.empty() && ctrl_queue_.empty() && !busy_;
  }
  void adopt_state(const MacIface& from) override;

 protected:
  void kick() override;

 private:
  void start_backoff();
  void attempt_transmit();
  void finish_tx(TxRing* q, CsmaMedium::TxId txid, bool lost_ch);
  void next_cycle();

  CsmaMedium& medium_;
  double unit_;  // one backoff period, seconds
  sim::Rng rng_;

  bool busy_ = false;  // a contention cycle (backoff or tx) is in flight
  int nb_ = 0;         // busy-CCA count this cycle
  int be_ = 0;         // current backoff exponent
  std::uint64_t cca_failures_ = 0;
};

}  // namespace jtp::mac
