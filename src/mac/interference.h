// Greedy coloring of the 2-hop interference graph.
//
// Two nodes conflict — must not transmit in the same slot — when a
// concurrent transmission by one could collide at a receiver of the
// other. With unit-disk connectivity that is the classic 2-hop rule:
//   conflict(a, b)  iff  dist(a, b) <= margin·R           (carrier range)
//                    or  ∃w ∉ {a,b}: dist(a,w) <= R and dist(b,w) <= R
//                                                         (hidden terminal)
// where R is the radio range and margin >= 1 optionally widens the direct
// check for conservative interference models. A proper coloring of this
// graph is a collision-free slot assignment: if a transmits to neighbor r
// while same-colored b transmits elsewhere, then r (a common-neighbor
// witness) cannot be in range of b, so the reception is clean.
//
// Greedy in node-id order (smallest free color) is deterministic and uses
// at most Δ+1 colors; candidate conflicts are gathered from a uniform
// spatial grid, so a recolor costs O(n · local density²), not O(n²).
#pragma once

#include <cstdint>
#include <vector>

#include "phy/topology.h"

namespace jtp::mac {

struct Coloring {
  std::vector<std::uint32_t> color;  // per node, in [0, colors_used)
  std::size_t colors_used = 0;
};

// Colors the interference graph of `topo` with the direct conflict range
// margin·R (margin values below 1 behave as 1: direct neighbors always
// conflict). Deterministic for a given topology.
Coloring color_interference(const phy::Topology& topo, double range_margin);

}  // namespace jtp::mac
