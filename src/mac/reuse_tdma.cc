#include "mac/reuse_tdma.h"

#include <cmath>
#include <stdexcept>

namespace jtp::mac {

ReuseSchedule::ReuseSchedule(const phy::Topology& topo, double slot_duration_s,
                             std::uint64_t seed, double range_margin)
    : topo_(topo), slot_s_(slot_duration_s), seed_(seed), margin_(range_margin) {
  if (slot_duration_s <= 0.0)
    throw std::invalid_argument("ReuseSchedule: slot duration must be > 0");
  ensure();
}

void ReuseSchedule::ensure() const {
  const std::uint64_t gen = topo_.generation();
  if (gen == colored_gen_) return;
  coloring_ = color_interference(topo_, margin_);
  // The permutation over colors keeps the slot -> color map pseudo-random
  // per frame, same discipline (and seed) as the classic schedule.
  slots_.emplace(std::max<std::size_t>(coloring_.colors_used, 1), slot_s_,
                 seed_);
  colored_gen_ = gen;
  ++recolors_;
}

std::uint64_t ReuseSchedule::slot_at(sim::Time t) const {
  if (t < 0.0) throw std::invalid_argument("ReuseSchedule: negative time");
  return static_cast<std::uint64_t>(std::floor(t / slot_s_));
}

sim::Time ReuseSchedule::slot_start(std::uint64_t slot) const {
  return static_cast<sim::Time>(slot) * slot_s_;
}

std::uint64_t ReuseSchedule::next_owned_slot_from(
    core::NodeId node, std::uint64_t from_slot) const {
  ensure();
  // Ownership is per color: colors are dense ids in [0, colors_used), so
  // the color schedule's own lookup applies directly.
  return slots_->next_owned_slot_from(color_of(node), from_slot);
}

double ReuseSchedule::node_capacity_pps() const {
  ensure();
  return slots_->node_capacity_pps();
}

double ReuseSchedule::frame_duration() const {
  ensure();
  return slots_->frame_duration();
}

std::uint32_t ReuseSchedule::color_of(core::NodeId node) const {
  ensure();
  if (node >= coloring_.color.size())
    throw std::out_of_range("ReuseSchedule: node id out of range");
  return coloring_.color[node];
}

MacStats ReuseSchedule::stats() const {
  ensure();
  MacStats st;
  st.recolors = recolors_;
  st.colors_used = coloring_.colors_used;
  st.max_color =
      coloring_.colors_used == 0 ? 0 : coloring_.colors_used - 1;
  st.reuse_factor =
      coloring_.colors_used == 0
          ? 1.0
          : static_cast<double>(coloring_.color.size()) /
                static_cast<double>(coloring_.colors_used);
  return st;
}

ReuseTdmaMac::ReuseTdmaMac(sim::Simulator& sim, const ReuseSchedule& schedule,
                           phy::Channel& channel, phy::EnergyModel& energy,
                           core::NodeId self, MacConfig cfg)
    : SlottedMac(sim, channel, energy, self, cfg), schedule_(schedule) {
  estimator_.set_capacity_pps(schedule.node_capacity_pps());
}

std::uint64_t ReuseTdmaMac::next_owned_slot_from(std::uint64_t from_slot) {
  // A recolor may have shrunk or grown the frame since the last look;
  // refresh the estimator's capacity reference alongside.
  schedule_.ensure();
  estimator_.set_capacity_pps(schedule_.node_capacity_pps());
  return schedule_.next_owned_slot_from(self_, from_slot);
}

}  // namespace jtp::mac
