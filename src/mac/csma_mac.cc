#include "mac/csma_mac.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jtp::mac {

void CsmaMedium::mark_collisions(Tx& tx) {
  // All comparisons run over captured geometry, so marking is the same
  // computation no matter which domain performs it or when the record
  // arrived (a mirror registers half a unit after its native twin, but
  // every record it must mark — and every record that must mark it — is
  // still live: natives are only released half a unit after their end,
  // and no overlapping frame can have both started and ended inside the
  // mirror's half-unit lag, because starts sit on whole-unit grid
  // points).
  for (Tx& t : active_) {
    if (t.sender == tx.sender) continue;
    if (tx.start >= t.end || t.start >= tx.end) continue;  // no overlap
    if (audible(t.spos, tx.rpos)) tx.collided = true;
    if (audible(tx.spos, t.rpos)) t.collided = true;
  }
}

void CsmaMedium::prune_mirrors(sim::Time now) {
  // A mirror is dead once its frame has ended: it can no longer be heard
  // by a CCA (end > now fails) and can no longer overlap a new frame
  // (new starts are >= now). Natives wait for their finish_tx.
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [now](const Tx& t) {
                                 return t.mirror && t.end <= now;
                               }),
                active_.end());
}

CsmaMedium::TxId CsmaMedium::begin_tx(core::NodeId sender,
                                      core::NodeId receiver, sim::Time start,
                                      sim::Time end) {
  prune_mirrors(start);
  Tx tx{next_id_++,          sender, receiver, topo_.position(sender),
        topo_.position(receiver), start,  end,      /*collided=*/false,
        /*mirror=*/false};
  mark_collisions(tx);
  active_.push_back(tx);
  if (mirror_) {
    CsmaTxRecord r;
    r.id = tx.id;
    r.sender = sender;
    r.receiver = receiver;
    r.sender_pos = tx.spos;
    r.receiver_pos = tx.rpos;
    r.start = start;
    r.end = end;
    mirror_(r);
  }
  return tx.id;
}

void CsmaMedium::register_remote(const CsmaTxRecord& r, sim::Time now) {
  prune_mirrors(now);
  Tx tx{r.id,  r.sender, r.receiver, r.sender_pos, r.receiver_pos,
        r.start, r.end,  /*collided=*/false, /*mirror=*/true};
  mark_collisions(tx);
  active_.push_back(tx);
}

bool CsmaMedium::busy(core::NodeId listener, sim::Time now) const {
  // One unit of carrier-detection latency: a frame beginning at the same
  // grid point as this CCA — or the one just before — is invisible, at
  // every shard count. The half-unit threshold splits the grid cleanly
  // (real gaps are whole units), so accumulated floating-point noise in
  // event times cannot flip a verdict.
  const phy::Position lpos = topo_.position(listener);
  for (const Tx& t : active_) {
    if (t.sender == listener) continue;  // own frame: no self carrier-sense
    if (t.start <= now - 0.5 * unit_ && now < t.end && audible(t.spos, lpos))
      return true;
  }
  return false;
}

bool CsmaMedium::finish_tx(TxId id) {
  for (Tx& t : active_) {
    if (t.mirror || t.id != id) continue;
    const bool collided = t.collided;
    // Swap-remove: busy()/begin_tx() reduce over the whole list, so
    // record order never affects a verdict.
    t = active_.back();
    active_.pop_back();
    return collided;
  }
  return false;
}

CsmaMac::CsmaMac(sim::Simulator& sim, CsmaMedium& medium, phy::Channel& channel,
                 phy::EnergyModel& energy, core::NodeId self,
                 double unit_backoff_s, MacConfig cfg, sim::Rng rng)
    : MacBase(sim, channel, energy, self, cfg),
      medium_(medium),
      unit_(unit_backoff_s),
      rng_(rng),
      be_(cfg.csma.min_be) {
  // Nominal capacity for the estimator: one packet per full minimum
  // contention window of unit periods.
  estimator_.set_capacity_pps(
      1.0 / (unit_ * static_cast<double>(1ULL << cfg.csma.min_be)));
}

void CsmaMac::adopt_state(const MacIface& from) {
  const auto* src = dynamic_cast<const CsmaMac*>(&from);
  if (src == nullptr)
    throw std::logic_error("CsmaMac::adopt_state: discipline mismatch");
  adopt_base(*src);
  // The backoff rng is this node's private draw stream: its position
  // must travel with the node or the draw sequence would fork from the
  // single-shard one. Cycle state (nb_/be_) is idle on both sides but
  // copied for completeness.
  rng_ = src->rng_;
  nb_ = src->nb_;
  be_ = src->be_;
  cca_failures_ = src->cca_failures_;
}

void CsmaMac::kick() {
  if (busy_) return;  // the running cycle picks up new traffic at its end
  if (current_queue() == nullptr) return;
  busy_ = true;
  nb_ = 0;
  be_ = cfg_.csma.min_be;
  start_backoff();
}

void CsmaMac::start_backoff() {
  // Contention is grid-aligned: the attempt lands `periods` whole units
  // after the next grid point. Absolute grid times are computed as
  // index · unit (not accumulated sums) so every shard derives the
  // identical timestamp.
  const std::uint64_t periods = rng_.integer(1ULL << be_);
  const std::uint64_t next_grid =
      static_cast<std::uint64_t>(std::floor(sim_.now() / unit_)) + 1;
  sim_.at(static_cast<double>(next_grid + periods) * unit_,
          [this] { attempt_transmit(); });
}

void CsmaMac::attempt_transmit() {
  TxRing* qp = current_queue();
  if (qp == nullptr) {  // head consumed by a drop path mid-cycle
    busy_ = false;
    return;
  }
  TxRing& q = *qp;

  if (medium_.busy(self_, sim_.now())) {
    ++cca_failures_;
    ++nb_;
    be_ = std::min(be_ + 1, cfg_.csma.max_be);
    if (nb_ > cfg_.csma.max_backoffs) {
      // Channel-access failure: the contention budget is spent, the
      // packet is lost locally just like an exhausted retry budget. Only
      // attempts that actually hit the air feed the estimator — a packet
      // dropped before its first transmission records nothing.
      ++attempt_drops_;
      Entry& e = q.front();
      if (e.attempts_done > 0)
        estimator_.record_packet(e.next_hop, e.attempts_done);
      q.pop_front();
      next_cycle();
      return;
    }
    start_backoff();
    return;
  }

  Entry& e = q.front();
  const bool first_attempt = (e.attempts_done == 0);
  const core::LinkView link = estimator_.view(e.next_hop, sim_.now());
  const core::Joules tx_e = energy_.tx_energy(e.packet->size_bits());

  PreXmitDecision d;
  d.max_attempts = cfg_.default_max_attempts;
  if (pre_xmit_)
    d = pre_xmit_(*e.packet, e.next_hop, link, tx_e, first_attempt);
  if (d.drop) {
    ++budget_drops_;
    finish_head(q, /*delivered=*/false);
    next_cycle();
    return;
  }
  if (first_attempt) {
    e.max_attempts =
        d.max_attempts > 0 ? d.max_attempts : cfg_.default_max_attempts;
    if (attempt_trace_ && e.packet->is_data())
      attempt_trace_(sim_.now(), *e.packet, e.max_attempts);
  }

  ++transmissions_;
  ++e.attempts_done;
  estimator_.record_slot_used(sim_.now());
  energy_.charge_tx(self_, e.packet->size_bits());

  const double air = energy_.config().fixed_overhead_s +
                     energy_.airtime_s(e.packet->size_bits());
  const sim::Time start = sim_.now();
  const sim::Time end = start + air;
  const CsmaMedium::TxId txid = medium_.begin_tx(self_, e.next_hop, start, end);
  // Fading loss is drawn now; the collision verdict accumulates on the
  // medium record (a hidden terminal may start mid-air, possibly in a
  // peer strip whose mirror arrives half a unit late) and is read half a
  // unit after the transmission ends — past the last possible marking.
  // The head ring is captured here: an ACK enqueued while this data
  // frame is in the air must not redirect the completion to the control
  // ring.
  const bool lost_ch = channel_.transmission_lost(self_, e.next_hop, start);
  sim_.schedule(air + 0.5 * unit_, [this, qp, txid, lost_ch] {
    finish_tx(qp, txid, lost_ch);
  });
}

void CsmaMac::finish_tx(TxRing* q, CsmaMedium::TxId txid, bool lost_ch) {
  const bool collided = medium_.finish_tx(txid);
  Entry& e = q->front();
  const bool lost = lost_ch || collided;
  estimator_.record_attempt(e.next_hop, lost);

  if (!lost) {
    core::PacketPtr delivered = std::move(e.packet);
    const core::NodeId from = self_;
    const core::NodeId to = e.next_hop;
    finish_head(*q, /*delivered=*/true);
    if (dispatch_) {
      // Shard-routed path: the network lands the delivery in `to`'s
      // shard half a unit from now (one whole unit after the airtime
      // ended — still >= the runner's half-unit lookahead) and charges
      // the receive energy there, at execution time.
      dispatch_(0.5 * unit_, std::move(delivered), from, to);
    } else {
      // Legacy single-simulator path (raw-fabric tests).
      energy_.charge_rx(to, delivered->size_bits());
      if (deliver_) deliver_(std::move(delivered), from, to);
    }
  } else if (e.attempts_done >= e.max_attempts) {
    ++attempt_drops_;
    finish_head(*q, /*delivered=*/false);
  }
  // else: the packet stays at the head and re-contends.

  next_cycle();
}

void CsmaMac::next_cycle() {
  nb_ = 0;
  be_ = cfg_.csma.min_be;
  if (current_queue() != nullptr) {
    start_backoff();
  } else {
    busy_ = false;
  }
}

}  // namespace jtp::mac
