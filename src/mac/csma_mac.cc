#include "mac/csma_mac.h"

#include <algorithm>

namespace jtp::mac {

CsmaMedium::TxId CsmaMedium::begin_tx(core::NodeId sender,
                                      core::NodeId receiver, sim::Time start,
                                      sim::Time end) {
  Tx tx{next_id_++, sender, receiver, start, end, /*collided=*/false};
  // Every record started no later than `start`, so overlap reduces to the
  // foreign frame still being in the air when this one begins. Frames
  // ending exactly at `start` (finish event pending this timestamp) do
  // not overlap the half-open [start, end).
  for (Tx& t : active_) {
    if (t.sender == sender || start >= t.end) continue;
    if (topo_.in_range(t.sender, receiver)) tx.collided = true;
    if (topo_.in_range(sender, t.receiver)) t.collided = true;
  }
  active_.push_back(tx);
  return tx.id;
}

bool CsmaMedium::busy(core::NodeId listener, sim::Time now) const {
  for (const Tx& t : active_)
    if (t.start <= now && now < t.end && topo_.in_range(t.sender, listener))
      return true;
  return false;
}

bool CsmaMedium::finish_tx(TxId id) {
  for (Tx& t : active_) {
    if (t.id != id) continue;
    const bool collided = t.collided;
    // Swap-remove: busy()/begin_tx() reduce over the whole list, so
    // record order never affects a verdict.
    t = active_.back();
    active_.pop_back();
    return collided;
  }
  return false;
}

CsmaMac::CsmaMac(sim::Simulator& sim, CsmaMedium& medium, phy::Channel& channel,
                 phy::EnergyModel& energy, core::NodeId self,
                 double unit_backoff_s, MacConfig cfg, sim::Rng rng)
    : MacBase(sim, channel, energy, self, cfg),
      medium_(medium),
      unit_(unit_backoff_s),
      rng_(rng),
      be_(cfg.csma.min_be) {
  // Nominal capacity for the estimator: one packet per full minimum
  // contention window of unit periods.
  estimator_.set_capacity_pps(
      1.0 / (unit_ * static_cast<double>(1ULL << cfg.csma.min_be)));
}

void CsmaMac::kick() {
  if (busy_) return;  // the running cycle picks up new traffic at its end
  if (current_queue() == nullptr) return;
  busy_ = true;
  nb_ = 0;
  be_ = cfg_.csma.min_be;
  start_backoff();
}

void CsmaMac::start_backoff() {
  const std::uint64_t periods = rng_.integer(1ULL << be_);
  sim_.schedule(static_cast<double>(periods) * unit_,
                [this] { attempt_transmit(); });
}

void CsmaMac::attempt_transmit() {
  TxRing* qp = current_queue();
  if (qp == nullptr) {  // head consumed by a drop path mid-cycle
    busy_ = false;
    return;
  }
  TxRing& q = *qp;

  if (medium_.busy(self_, sim_.now())) {
    ++cca_failures_;
    ++nb_;
    be_ = std::min(be_ + 1, cfg_.csma.max_be);
    if (nb_ > cfg_.csma.max_backoffs) {
      // Channel-access failure: the contention budget is spent, the
      // packet is lost locally just like an exhausted retry budget. Only
      // attempts that actually hit the air feed the estimator — a packet
      // dropped before its first transmission records nothing.
      ++attempt_drops_;
      Entry& e = q.front();
      if (e.attempts_done > 0)
        estimator_.record_packet(e.next_hop, e.attempts_done);
      q.pop_front();
      next_cycle();
      return;
    }
    start_backoff();
    return;
  }

  Entry& e = q.front();
  const bool first_attempt = (e.attempts_done == 0);
  const core::LinkView link = estimator_.view(e.next_hop, sim_.now());
  const core::Joules tx_e = energy_.tx_energy(e.packet->size_bits());

  PreXmitDecision d;
  d.max_attempts = cfg_.default_max_attempts;
  if (pre_xmit_)
    d = pre_xmit_(*e.packet, e.next_hop, link, tx_e, first_attempt);
  if (d.drop) {
    ++budget_drops_;
    finish_head(q, /*delivered=*/false);
    next_cycle();
    return;
  }
  if (first_attempt) {
    e.max_attempts =
        d.max_attempts > 0 ? d.max_attempts : cfg_.default_max_attempts;
    if (attempt_trace_ && e.packet->is_data())
      attempt_trace_(sim_.now(), *e.packet, e.max_attempts);
  }

  ++transmissions_;
  ++e.attempts_done;
  estimator_.record_slot_used(sim_.now());
  energy_.charge_tx(self_, e.packet->size_bits());

  const double air = energy_.config().fixed_overhead_s +
                     energy_.airtime_s(e.packet->size_bits());
  const sim::Time start = sim_.now();
  const sim::Time end = start + air;
  const CsmaMedium::TxId txid = medium_.begin_tx(self_, e.next_hop, start, end);
  // Fading loss is drawn now; the collision verdict accumulates on the
  // medium record (a hidden terminal may start mid-air) and is read when
  // the transmission finishes. The head ring is captured here: an ACK
  // enqueued while this data frame is in the air must not redirect the
  // completion to the control ring.
  const bool lost_ch = channel_.transmission_lost(self_, e.next_hop, start);
  sim_.schedule(air, [this, qp, txid, lost_ch] {
    finish_tx(qp, txid, lost_ch);
  });
}

void CsmaMac::finish_tx(TxRing* q, CsmaMedium::TxId txid, bool lost_ch) {
  const bool collided = medium_.finish_tx(txid);
  Entry& e = q->front();
  const bool lost = lost_ch || collided;
  estimator_.record_attempt(e.next_hop, lost);

  if (!lost) {
    energy_.charge_rx(e.next_hop, e.packet->size_bits());
    core::PacketPtr delivered = std::move(e.packet);
    const core::NodeId from = self_;
    const core::NodeId to = e.next_hop;
    finish_head(*q, /*delivered=*/true);
    // The airtime has already elapsed: hand to the fabric immediately.
    if (deliver_) deliver_(std::move(delivered), from, to);
  } else if (e.attempts_done >= e.max_attempts) {
    ++attempt_drops_;
    finish_head(*q, /*delivered=*/false);
  }
  // else: the packet stays at the head and re-contends.

  next_cycle();
}

void CsmaMac::next_cycle() {
  nb_ = 0;
  be_ = cfg_.csma.min_be;
  if (current_queue() != nullptr) {
    start_backoff();
  } else {
    busy_ = false;
  }
}

}  // namespace jtp::mac
