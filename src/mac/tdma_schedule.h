// Pseudo-random TDMA schedule (JAVeLEN-style, paper §2).
//
// Time is divided into fixed slots; each frame of N slots assigns every
// node exactly one slot via a pseudo-random permutation keyed by the frame
// index. Properties JTP relies on:
//   * collision-free: one owner per slot, by construction;
//   * fair: every node owns exactly 1/N of the slots;
//   * energy-friendly: idle nodes schedule nothing (radios off).
// The permutation varies per frame so no node is permanently advantaged
// within a frame.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "sim/time.h"

namespace jtp::mac {

class TdmaSchedule {
 public:
  TdmaSchedule(std::size_t n_nodes, double slot_duration_s,
               std::uint64_t seed);

  std::size_t nodes() const { return n_; }
  double slot_duration() const { return slot_s_; }
  double frame_duration() const { return slot_s_ * static_cast<double>(n_); }

  // Slot index containing time t (slot i covers [i·slot, (i+1)·slot)).
  std::uint64_t slot_at(sim::Time t) const;
  sim::Time slot_start(std::uint64_t slot) const;

  // Which node owns a slot.
  core::NodeId owner(std::uint64_t slot) const;

  // First slot owned by `node` whose start time is >= t.
  std::uint64_t next_owned_slot(core::NodeId node, sim::Time t) const;

  // First slot owned by `node` with index >= from_slot.
  std::uint64_t next_owned_slot_from(core::NodeId node,
                                     std::uint64_t from_slot) const;

  // Nominal per-node capacity: one packet per frame.
  double node_capacity_pps() const { return 1.0 / frame_duration(); }

 private:
  std::vector<core::NodeId> frame_permutation(std::uint64_t frame) const;

  std::size_t n_;
  double slot_s_;
  std::uint64_t seed_;
};

}  // namespace jtp::mac
