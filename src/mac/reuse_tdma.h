// Spatial-reuse TDMA: interference-aware slot reuse.
//
// Classic TDMA hands every node one slot per n-slot frame, so per-node
// capacity collapses as 1/(n·slot) no matter how large the field grows.
// Here the frame has one slot per *color* of the 2-hop interference graph
// (mac/interference.h): far-apart nodes share a slot and transmit
// concurrently, collision-free by the coloring property, so capacity is a
// function of local density (the chromatic bound), not of n.
//
// The coloring is recomputed lazily off the topology's generation
// counter, exactly like the routing view (PR 5): a static field colors
// once; under mobility a recolor happens at most once per position
// change, and only when the MAC actually consults the schedule. The slot
// permutation over colors reuses TdmaSchedule, seeded like the classic
// schedule so runs stay deterministic across recolors. MacStats is the
// observable contract: recolors, colors_used, max_color, reuse_factor.
#pragma once

#include <cstdint>
#include <optional>

#include "mac/interference.h"
#include "mac/mac_base.h"
#include "mac/tdma_schedule.h"
#include "phy/topology.h"

namespace jtp::mac {

// The shared, lazily-recolored slot structure (one per fabric). Slot
// *times* are fixed by slot_duration alone; a recolor only changes the
// frame length and the slot -> color ownership map, so in-flight slot
// indices stay meaningful across recolors.
class ReuseSchedule {
 public:
  ReuseSchedule(const phy::Topology& topo, double slot_duration_s,
                std::uint64_t seed, double range_margin);

  // Recolors if the topology generation changed since the last coloring.
  void ensure() const;

  double slot_duration() const { return slot_s_; }
  std::uint64_t slot_at(sim::Time t) const;
  sim::Time slot_start(std::uint64_t slot) const;

  // First slot whose owning color is `node`'s color, index >= from_slot.
  // Refreshes the coloring first.
  std::uint64_t next_owned_slot_from(core::NodeId node,
                                     std::uint64_t from_slot) const;

  // Per-node capacity: one packet per frame of colors_used slots.
  double node_capacity_pps() const;
  double frame_duration() const;

  std::uint32_t color_of(core::NodeId node) const;
  MacStats stats() const;

 private:
  const phy::Topology& topo_;
  double slot_s_;
  std::uint64_t seed_;
  double margin_;

  mutable Coloring coloring_;
  mutable std::optional<TdmaSchedule> slots_;  // permutation over colors
  mutable std::uint64_t colored_gen_ = ~0ULL;
  mutable std::uint64_t recolors_ = 0;
};

// One node's spatial-reuse MAC: the shared slot-timed loop bound to the
// color schedule. Its estimator capacity tracks the current frame length
// (refreshed after every lazy recolor).
class ReuseTdmaMac final : public SlottedMac {
 public:
  ReuseTdmaMac(sim::Simulator& sim, const ReuseSchedule& schedule,
               phy::Channel& channel, phy::EnergyModel& energy,
               core::NodeId self, MacConfig cfg = {});

 protected:
  std::uint64_t slot_at(sim::Time t) override { return schedule_.slot_at(t); }
  sim::Time slot_start(std::uint64_t slot) override {
    return schedule_.slot_start(slot);
  }
  double slot_duration() override { return schedule_.slot_duration(); }
  std::uint64_t next_owned_slot_from(std::uint64_t from_slot) override;

 private:
  const ReuseSchedule& schedule_;
};

}  // namespace jtp::mac
