#include "mac/tdma_schedule.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "sim/random.h"

namespace jtp::mac {

TdmaSchedule::TdmaSchedule(std::size_t n_nodes, double slot_duration_s,
                           std::uint64_t seed)
    : n_(n_nodes), slot_s_(slot_duration_s), seed_(seed) {
  if (n_nodes == 0) throw std::invalid_argument("TdmaSchedule: no nodes");
  if (slot_duration_s <= 0)
    throw std::invalid_argument("TdmaSchedule: non-positive slot");
}

std::uint64_t TdmaSchedule::slot_at(sim::Time t) const {
  if (t < 0) throw std::invalid_argument("TdmaSchedule: negative time");
  return static_cast<std::uint64_t>(t / slot_s_);
}

sim::Time TdmaSchedule::slot_start(std::uint64_t slot) const {
  return static_cast<sim::Time>(slot) * slot_s_;
}

std::vector<core::NodeId> TdmaSchedule::frame_permutation(
    std::uint64_t frame) const {
  // Fisher–Yates keyed by (seed, frame): deterministic, collision-free.
  std::vector<core::NodeId> perm(n_);
  std::iota(perm.begin(), perm.end(), core::NodeId{0});
  std::uint64_t h = sim::splitmix64(seed_ ^ sim::splitmix64(frame));
  for (std::size_t i = n_ - 1; i > 0; --i) {
    h = sim::splitmix64(h);
    std::swap(perm[i], perm[h % (i + 1)]);
  }
  return perm;
}

core::NodeId TdmaSchedule::owner(std::uint64_t slot) const {
  const std::uint64_t frame = slot / n_;
  const std::size_t idx = static_cast<std::size_t>(slot % n_);
  return frame_permutation(frame)[idx];
}

std::uint64_t TdmaSchedule::next_owned_slot(core::NodeId node,
                                            sim::Time t) const {
  std::uint64_t slot = t <= 0 ? 0 : slot_at(t);
  if (slot_start(slot) < t) ++slot;  // need slot *starting* at or after t
  return next_owned_slot_from(node, slot);
}

std::uint64_t TdmaSchedule::next_owned_slot_from(core::NodeId node,
                                                 std::uint64_t from_slot) const {
  if (node >= n_) throw std::invalid_argument("TdmaSchedule: unknown node");
  // The node owns exactly one slot per frame: scan at most two frames.
  for (std::uint64_t frame = from_slot / n_;; ++frame) {
    const auto perm = frame_permutation(frame);
    for (std::size_t idx = 0; idx < n_; ++idx) {
      const std::uint64_t s = frame * n_ + idx;
      if (s < from_slot) continue;
      if (perm[idx] == node) return s;
    }
  }
}

}  // namespace jtp::mac
