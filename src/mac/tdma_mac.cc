#include "mac/tdma_mac.h"

namespace jtp::mac {

TdmaMac::TdmaMac(sim::Simulator& sim, const TdmaSchedule& schedule,
                 phy::Channel& channel, phy::EnergyModel& energy,
                 core::NodeId self, MacConfig cfg)
    : SlottedMac(sim, channel, energy, self, cfg), schedule_(schedule) {
  estimator_.set_capacity_pps(schedule.node_capacity_pps());
}

}  // namespace jtp::mac
