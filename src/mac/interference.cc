#include "mac/interference.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace jtp::mac {

namespace {

// Cell key packing for the candidate grid, tolerant of negative
// coordinates (mirrors phy::Topology's scheme: two offset 32-bit halves).
std::uint64_t pack_cell(std::int64_t cx, std::int64_t cy) {
  const auto ux = static_cast<std::uint64_t>(cx + 0x40000000LL);
  const auto uy = static_cast<std::uint64_t>(cy + 0x40000000LL);
  return (ux << 32) | (uy & 0xffffffffULL);
}

}  // namespace

Coloring color_interference(const phy::Topology& topo, double range_margin) {
  const std::size_t n = topo.size();
  const double r = topo.radio_range();
  const double direct = std::max(range_margin, 1.0) * r;
  Coloring out;
  out.color.assign(n, 0);
  if (n == 0) return out;

  // Every conflict partner of a node lies within max(direct, 2R): direct
  // conflicts by definition, hidden-terminal conflicts via a common
  // witness within R of both ends. A grid with that cell side makes the
  // 3x3 block around a node a complete candidate superset.
  const double reach = std::max(direct, 2.0 * r);
  std::unordered_map<std::uint64_t, std::vector<core::NodeId>> cells;
  cells.reserve(n);
  auto cell_of = [&](const phy::Position& p) {
    return pack_cell(static_cast<std::int64_t>(std::floor(p.x / reach)),
                     static_cast<std::int64_t>(std::floor(p.y / reach)));
  };
  for (core::NodeId id = 0; id < n; ++id)
    cells[cell_of(topo.position(id))].push_back(id);

  // Stamped color-in-use marks (no per-node clearing) and reusable
  // scratch for the witness query.
  std::vector<std::uint32_t> used_stamp;
  std::vector<core::NodeId> witnesses;
  std::uint32_t next_color = 0;

  auto conflicts = [&](core::NodeId a, core::NodeId b) {
    const double d = phy::distance(topo.position(a), topo.position(b));
    if (d <= direct) return true;
    for (const core::NodeId w : witnesses)  // neighbors of a, within R
      if (w != b && phy::distance(topo.position(w), topo.position(b)) <= r)
        return true;
    return false;
  };

  for (core::NodeId a = 0; a < n; ++a) {
    topo.neighbors_into(a, witnesses);
    const phy::Position& pa = topo.position(a);
    const auto cx = static_cast<std::int64_t>(std::floor(pa.x / reach));
    const auto cy = static_cast<std::int64_t>(std::floor(pa.y / reach));
    for (std::int64_t dx = -1; dx <= 1; ++dx)
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells.find(pack_cell(cx + dx, cy + dy));
        if (it == cells.end()) continue;
        for (const core::NodeId b : it->second) {
          if (b >= a) continue;  // greedy: only already-colored partners
          if (!conflicts(a, b)) continue;
          const std::uint32_t c = out.color[b];
          if (c >= used_stamp.size()) used_stamp.resize(c + 1, 0);
          used_stamp[c] = a + 1;  // stamp: "in use while coloring a"
        }
      }
    std::uint32_t c = 0;
    while (c < used_stamp.size() && used_stamp[c] == a + 1) ++c;
    out.color[a] = c;
    next_color = std::max(next_color, c + 1);
  }
  out.colors_used = next_color;
  return out;
}

}  // namespace jtp::mac
