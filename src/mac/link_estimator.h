// Per-link statistics kept by the MAC (paper §2, §2.2.2).
//
// JAVeLEN's MAC keeps, per neighbor: an estimate of the packet loss rate
// (EWMA over per-transmission outcomes) and of the average number of
// MAC-level transmissions per delivered packet. Node-wide, it tracks the
// share of owned slots actually used over a sliding window, from which the
// available (idle) transmission rate is derived. iJTP reads all three via
// core::LinkView.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/env.h"
#include "core/types.h"
#include "sim/time.h"

namespace jtp::mac {

struct LinkEstimatorConfig {
  double loss_alpha = 0.1;          // EWMA weight for loss estimates
  double attempts_alpha = 0.1;      // EWMA weight for attempts/packet
  double initial_loss = 0.1;        // prior before any sample
  double utilization_window_s = 20.0;
  double node_capacity_pps = 1.0;   // owned-slot rate, set by the MAC
};

class LinkEstimator {
 public:
  explicit LinkEstimator(LinkEstimatorConfig cfg = {});

  // One MAC-level transmission outcome toward `neighbor`.
  void record_attempt(core::NodeId neighbor, bool lost);

  // A packet left the queue toward `neighbor` after `attempts` tries
  // (delivered or given up); feeds the avg-attempts estimate.
  void record_packet(core::NodeId neighbor, int attempts);

  // A slot owned by this node was used at time `t` (for utilization).
  void record_slot_used(sim::Time t);

  double loss_rate(core::NodeId neighbor) const;
  double avg_attempts(core::NodeId neighbor) const;

  // Idle capacity in packets/s: capacity × (1 − utilization).
  double available_rate_pps(sim::Time now) const;
  double utilization(sim::Time now) const;

  core::LinkView view(core::NodeId neighbor, sim::Time now) const;

  void set_capacity_pps(double pps) { cfg_.node_capacity_pps = pps; }
  const LinkEstimatorConfig& config() const { return cfg_; }

 private:
  struct PerLink {
    double loss = 0.0;
    bool loss_init = false;
    double attempts = 1.0;
    bool attempts_init = false;
  };
  void prune(sim::Time now) const;

  LinkEstimatorConfig cfg_;
  std::unordered_map<core::NodeId, PerLink> links_;
  mutable std::deque<sim::Time> used_slots_;  // timestamps within window
};

}  // namespace jtp::mac
