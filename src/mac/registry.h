// The MAC factory/registry: how link-layer disciplines plug into a
// Network.
//
// A MAC implementation registers once under a mac::Mac value with a
// factory that builds a MacFabric — the per-run object owning one
// MacIface per node plus whatever shared state the discipline needs (the
// TDMA slot schedule, the interference coloring, the CSMA carrier).
// `Network` resolves `NetworkConfig::mac_kind` here and talks only to the
// fabric — adding a MAC is one enum value + one registration; Network,
// Node, the benches, and the scenario language need no edits. The shape
// deliberately mirrors net::TransportRegistry (PR 3).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "mac/mac.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "phy/topology.h"
#include "sim/simulator.h"

namespace jtp::mac {

struct CsmaTxRecord;  // mac/csma_mac.h (wire form of a mirrored frame)

// Everything a fabric factory may draw on, lent by the Network for the
// lifetime of the run (the fabric holds references, never copies).
struct MacContext {
  sim::Simulator& sim;
  const phy::Topology& topo;
  phy::Channel& channel;
  phy::EnergyModel& energy;
  double slot_duration_s = 0.0;  // the scenario's slot / backoff unit
  std::uint64_t seed = 0;        // the run's master seed
  MacConfig config;
};

// One run's MAC plane: a MacIface per node plus the discipline's nominal
// capacity figures, which the transport layer uses to derive rate caps
// and RTT-based timeouts (PathInfo).
class MacFabric {
 public:
  virtual ~MacFabric() = default;

  virtual MacIface& mac_of(core::NodeId id) = 0;
  const MacIface& mac_of(core::NodeId id) const {
    return const_cast<MacFabric*>(this)->mac_of(id);
  }
  virtual std::size_t size() const = 0;

  // Nominal per-node send capacity under this discipline.
  virtual double node_capacity_pps() const = 0;
  // Nominal per-hop service period (classic TDMA: the n-slot frame) —
  // feeds the transports' RTT estimate.
  virtual double frame_duration_s() const = 0;

  // Slot-reuse accounting; identity values for disciplines without a
  // coloring (see MacStats).
  virtual MacStats stats() const = 0;

  // --- cross-shard carrier coupling ---
  // A discipline whose medium is shared beyond its own shard (CSMA)
  // implements this pair; everyone else keeps the no-op default (their
  // carrier, if any, is a pure per-shard replica). set_tx_mirror installs
  // the hook invoked with the wire record of every transmission this
  // fabric's medium begins — the sharded network forwards it to the peer
  // strips half a backoff unit later through the runner's rings — and
  // register_remote_tx is the receiving side, called at that mirror
  // event with the receiving shard's clock.
  virtual void set_tx_mirror(std::function<void(const CsmaTxRecord&)>) {}
  virtual void register_remote_tx(const CsmaTxRecord&, double /*now*/) {}
};

class MacFactory {
 public:
  virtual ~MacFactory() = default;
  virtual std::unique_ptr<MacFabric> make(const MacContext& ctx) const = 0;
};

struct MacInfo {
  Mac mac = Mac::kTdma;
  std::shared_ptr<const MacFactory> factory;
};

// Process-wide MAC registry. The builtin disciplines are registered on
// first use; additional MACs must be registered before any simulation
// threads start. Entries are immutable once added and hold no per-run
// state, so seed-parallel determinism is unaffected (same discipline as
// net::TransportRegistry).
class MacRegistry {
 public:
  static MacRegistry& instance();

  // Throws std::invalid_argument if `info.mac` is already registered or
  // `info.factory` is null.
  void add(MacInfo info);

  // Throws std::invalid_argument on an unregistered MAC.
  const MacInfo& info(Mac m) const;

  bool registered(Mac m) const;

  // Registered MACs in registration order (builtins first).
  std::vector<Mac> macs() const;

 private:
  MacRegistry();  // registers the builtin tdma/tdma_reuse/csma

  mutable std::mutex mu_;
  std::deque<MacInfo> entries_;  // deque: info() refs stay valid
};

}  // namespace jtp::mac
