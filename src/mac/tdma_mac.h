// Classic TDMA MAC instance (one per node) — the paper's discipline.
//
// Binds the shared slot-timed transmit loop (mac/mac_base.h) to the
// JAVeLEN-style pseudo-random TdmaSchedule: every node owns exactly one
// slot per n-slot frame, so per-node capacity is 1/(n·slot). The first
// registrant of the MacRegistry and the default everywhere — committed
// baselines are pinned to its behaviour.
#pragma once

#include <cstdint>

#include "mac/mac_base.h"
#include "mac/tdma_schedule.h"

namespace jtp::mac {

class TdmaMac final : public SlottedMac {
 public:
  TdmaMac(sim::Simulator& sim, const TdmaSchedule& schedule,
          phy::Channel& channel, phy::EnergyModel& energy, core::NodeId self,
          MacConfig cfg = {});

 protected:
  std::uint64_t slot_at(sim::Time t) override { return schedule_.slot_at(t); }
  sim::Time slot_start(std::uint64_t slot) override {
    return schedule_.slot_start(slot);
  }
  double slot_duration() override { return schedule_.slot_duration(); }
  std::uint64_t next_owned_slot_from(std::uint64_t from_slot) override {
    return schedule_.next_owned_slot_from(self_, from_slot);
  }

 private:
  const TdmaSchedule& schedule_;
};

}  // namespace jtp::mac
