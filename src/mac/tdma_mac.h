// TDMA MAC instance (one per node).
//
// Owns the node's transmit queue and drives the attempt/retry state
// machine inside the node's scheduled slots. The transport layer hooks in
// at two points, matching the paper's iJTP plug-in architecture (§2.2.2):
//   * pre-xmit hook — invoked immediately before every over-the-air
//     transmission; may drop the packet (energy budget) and, on the first
//     attempt, fixes the packet's attempt budget;
//   * delivery hook — invoked by the network fabric when a transmission
//     succeeds, handing the packet to the next node's stack.
// Per-link loss / available-rate / attempts statistics live in the
// embedded LinkEstimator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/env.h"
#include "core/packet.h"
#include "core/types.h"
#include "mac/link_estimator.h"
#include "mac/tdma_schedule.h"
#include "phy/channel.h"
#include "phy/energy_model.h"
#include "sim/simulator.h"

namespace jtp::mac {

struct MacConfig {
  std::size_t queue_capacity_packets = 50;
  int default_max_attempts = 5;  // used when no pre-xmit hook overrides
  LinkEstimatorConfig estimator;
};

struct PreXmitDecision {
  bool drop = false;
  int max_attempts = 0;  // 0 = keep MAC default
};

class TdmaMac {
 public:
  // Hook signatures. `tx_energy` is what this attempt will cost the sender;
  // `first_attempt` is true the first time this packet hits the air here.
  using PreXmitHook = std::function<PreXmitDecision(
      core::Packet&, core::NodeId next_hop, const core::LinkView&,
      core::Joules tx_energy, bool first_attempt)>;
  using DeliverHook = std::function<void(core::PacketPtr&&, core::NodeId from,
                                         core::NodeId to)>;
  using AttemptBudgetTrace =
      std::function<void(sim::Time, const core::Packet&, int max_attempts)>;

  TdmaMac(sim::Simulator& sim, const TdmaSchedule& schedule,
          phy::Channel& channel, phy::EnergyModel& energy, core::NodeId self,
          MacConfig cfg = {});

  void set_pre_xmit(PreXmitHook hook) { pre_xmit_ = std::move(hook); }
  void set_deliver(DeliverHook hook) { deliver_ = std::move(hook); }
  void set_attempt_trace(AttemptBudgetTrace t) { attempt_trace_ = std::move(t); }

  // Queues a packet for `next_hop`. Returns false (and counts a queue
  // drop) when the queue is full; the dropped packet's slot is recycled.
  bool enqueue(core::PacketPtr p, core::NodeId next_hop);

  core::NodeId self() const { return self_; }
  LinkEstimator& estimator() { return estimator_; }
  const LinkEstimator& estimator() const { return estimator_; }
  std::size_t queue_length() const { return queue_.size() + ctrl_queue_.size(); }
  std::size_t data_queue_length() const { return queue_.size(); }

  // --- counters ---
  std::uint64_t queue_drops() const { return queue_drops_; }
  std::uint64_t attempt_exhausted_drops() const { return attempt_drops_; }
  std::uint64_t energy_budget_drops() const { return budget_drops_; }
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  struct Entry {
    core::PacketPtr packet;
    core::NodeId next_hop = core::kInvalidNode;
    int attempts_done = 0;
    int max_attempts = 0;  // fixed on first attempt
  };

  // Fixed-capacity FIFO ring: the transmit queue's bound is a protocol
  // parameter (queue_capacity_packets), so the storage is allocated once
  // at construction and enqueue/dequeue never touch the heap.
  class TxRing {
   public:
    explicit TxRing(std::size_t capacity) : buf_(capacity) {}
    bool full() const { return size_ == buf_.size(); }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    Entry& front() { return buf_[head_]; }
    void push_back(Entry&& e) {
      buf_[(head_ + size_) % buf_.size()] = std::move(e);
      ++size_;
    }
    void pop_front() {
      buf_[head_] = Entry{};  // release the packet handle
      head_ = (head_ + 1) % buf_.size();
      --size_;
    }

   private:
    std::vector<Entry> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  void schedule_next_tx();
  void transmit_head();
  void finish_head(TxRing& q, bool delivered);
  TxRing* current_queue();

  sim::Simulator& sim_;
  const TdmaSchedule& schedule_;
  phy::Channel& channel_;
  phy::EnergyModel& energy_;
  core::NodeId self_;
  MacConfig cfg_;
  LinkEstimator estimator_;

  // Control traffic (ACKs) is transmitted before data: feedback keeps the
  // rate controllers honest precisely when queues are backlogged, and an
  // ACK stuck behind 50 data packets per hop arrives too stale to matter.
  TxRing ctrl_queue_;
  TxRing queue_;
  bool tx_scheduled_ = false;
  std::uint64_t min_slot_ = 0;  // earliest slot the next tx may use

  PreXmitHook pre_xmit_;
  DeliverHook deliver_;
  AttemptBudgetTrace attempt_trace_;

  std::uint64_t queue_drops_ = 0;
  std::uint64_t attempt_drops_ = 0;
  std::uint64_t budget_drops_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace jtp::mac
