// Multi-seed experiment runner with 95% confidence intervals.
//
// The paper reports means of 10–20 independent runs with 95% CIs; Runner
// repeats a scenario across seeds — on a thread pool when jobs > 1 — and
// aggregates any scalar extracted from RunMetrics. Report renders a result
// table to stdout and mirrors it into a CSV Series, so a bench describes
// its output schema exactly once.
//
// Thread-safety contract: the simulation stack (sim/core/phy/mac/net) has
// no shared mutable state — no globals, no function-local statics — so any
// number of Simulator/Network instances may run concurrently as long as
// each instance stays on one thread. run_seeds relies on exactly that: the
// body must build its own Network per call and must not touch state shared
// across seeds without its own synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "exp/metrics.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace jtp::exp {

struct Aggregate {
  double mean = 0.0;
  double ci95 = 0.0;
  std::size_t runs = 0;

  // An Aggregate drops into a Report row as a CI cell.
  operator sim::Cell() const { return sim::Cell(mean, ci95); }
};

// Seed of the i-th run: fixed derivation from the base seed, independent
// of execution order, so parallel and serial runs draw identical streams.
inline std::uint64_t seed_for_run(std::uint64_t base_seed, std::size_t i) {
  return base_seed + 1000 * (i + 1);
}

// 0 means "auto": one job per hardware thread.
std::size_t resolve_jobs(std::size_t jobs);

namespace detail {
// Runs fn(0..n-1) on min(jobs, n) threads (inline when that is 1). Indices
// are claimed atomically; the first exception is rethrown after join.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);
}  // namespace detail

// Runs `body` once per seed and returns the results in seed order — the
// output is identical for any job count. T must be default-constructible.
template <typename Body>
auto run_seeds_as(std::size_t n_runs, std::uint64_t base_seed, Body&& body,
                  std::size_t jobs = 1)
    -> std::vector<std::invoke_result_t<Body&, std::uint64_t>> {
  std::vector<std::invoke_result_t<Body&, std::uint64_t>> out(n_runs);
  detail::parallel_for(n_runs, jobs, [&](std::size_t i) {
    out[i] = body(seed_for_run(base_seed, i));
  });
  return out;
}

// The common case: one RunMetrics per seed.
std::vector<RunMetrics> run_seeds(
    std::size_t n_runs, std::uint64_t base_seed,
    const std::function<RunMetrics(std::uint64_t seed)>& body,
    std::size_t jobs = 1);

// Aggregates one scalar across runs.
Aggregate aggregate(const std::vector<RunMetrics>& runs,
                    const std::function<double(const RunMetrics&)>& extract);

// Fixed-width table printer for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14);
  void header(std::ostream& os) const;
  void row(std::ostream& os, const std::vector<std::string>& cells) const;
  void row(std::ostream& os, const std::vector<double>& cells) const;

 private:
  std::vector<std::string> cols_;
  int width_;
};

// One result table of a bench: owns the stdout TablePrinter and the CSV
// Series behind a single schema. Rows stream to both sinks as they arrive,
// so partial output survives an interrupted long run.
class Report {
 public:
  // `title` prints as a "--- title ---" banner above the table (skipped
  // when empty). Column precision/CI flags drive both renderings.
  Report(std::ostream& os, std::string title, std::vector<sim::Column> cols,
         int width = 14);

  // Opens `path` and writes the CSV header immediately, so a bad path
  // fails before the long runs. Returns false (with the stream in a failed
  // state) when the file cannot be opened.
  bool to_csv(const std::string& path);

  // Prints the banner and the table header.
  void begin();

  // Mirrors the row into the Series and the CSV (if open); prints it when
  // `echo` is true. Trace-style benches set echo=false for most rows so
  // the CSV carries the full series while stdout stays a readable digest.
  void row(std::vector<sim::Cell> cells, bool echo = true);

  // Flushes the CSV and prints a "written to PATH" note once. Safe to call
  // when no CSV was requested. Returns false on I/O failure.
  bool finish();

  const sim::Series& series() const { return series_; }
  const std::string& csv_path() const { return csv_path_; }

 private:
  std::ostream& os_;
  std::string title_;
  sim::Series series_;
  TablePrinter table_;
  std::string csv_path_;
  std::optional<std::ofstream> csv_;
  bool finished_ = false;
};

// "12.3 ±0.4" formatting helper.
std::string with_ci(const Aggregate& a, int precision = 3);
std::string fmt(double v, int precision = 3);

}  // namespace jtp::exp
