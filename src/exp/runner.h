// Multi-seed experiment runner with 95% confidence intervals.
//
// The paper reports means of 10–20 independent runs with 95% CIs; Runner
// repeats a scenario across seeds and aggregates any scalar extracted from
// RunMetrics. A small table printer renders paper-style rows.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/metrics.h"
#include "sim/stats.h"

namespace jtp::exp {

struct Aggregate {
  double mean = 0.0;
  double ci95 = 0.0;
  std::size_t runs = 0;
};

// Runs `body` once per seed; `body` returns the metrics of that run.
std::vector<RunMetrics> run_seeds(
    std::size_t n_runs, std::uint64_t base_seed,
    const std::function<RunMetrics(std::uint64_t seed)>& body);

// Aggregates one scalar across runs.
Aggregate aggregate(const std::vector<RunMetrics>& runs,
                    const std::function<double(const RunMetrics&)>& extract);

// Fixed-width table printer for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14);
  void header(std::ostream& os) const;
  void row(std::ostream& os, const std::vector<std::string>& cells) const;
  void row(std::ostream& os, const std::vector<double>& cells) const;

 private:
  std::vector<std::string> cols_;
  int width_;
};

// "12.3 ±0.4" formatting helper.
std::string with_ci(const Aggregate& a, int precision = 3);
std::string fmt(double v, int precision = 3);

}  // namespace jtp::exp
