#include "exp/workload.h"

#include <stdexcept>

namespace jtp::exp {

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::kJtp: return "jtp";
    case Proto::kJnc: return "jnc";
    case Proto::kTcp: return "tcp";
    case Proto::kAtp: return "atp";
  }
  return "?";
}

FlowManager::FlowManager(net::Network& network, Proto proto)
    : net_(network), proto_(proto) {
  if (proto == Proto::kJnc && network.config().node.ijtp.caching_enabled)
    throw std::invalid_argument(
        "FlowManager: kJnc requires a network built with caching disabled "
        "(see scenario builders)");
}

double FlowManager::FlowHandle::delivered_bits() const {
  switch (proto) {
    case Proto::kJtp:
    case Proto::kJnc: return jtp.receiver->delivered_payload_bits();
    case Proto::kTcp: return tcp.receiver->delivered_payload_bits();
    case Proto::kAtp: return atp.receiver->delivered_payload_bits();
  }
  return 0.0;
}

std::uint64_t FlowManager::FlowHandle::delivered_packets() const {
  switch (proto) {
    case Proto::kJtp:
    case Proto::kJnc: return jtp.receiver->delivered_packets();
    case Proto::kTcp: return tcp.receiver->delivered_packets();
    case Proto::kAtp: return atp.receiver->delivered_packets();
  }
  return 0;
}

std::uint64_t FlowManager::FlowHandle::waived_packets() const {
  if (proto == Proto::kJtp || proto == Proto::kJnc)
    return jtp.receiver->waived_packets();
  return 0;
}

std::uint64_t FlowManager::FlowHandle::data_sent() const {
  switch (proto) {
    case Proto::kJtp:
    case Proto::kJnc: return jtp.sender->data_packets_sent();
    case Proto::kTcp: return tcp.sender->data_packets_sent();
    case Proto::kAtp: return atp.sender->data_packets_sent();
  }
  return 0;
}

std::uint64_t FlowManager::FlowHandle::source_rtx() const {
  switch (proto) {
    case Proto::kJtp:
    case Proto::kJnc: return jtp.sender->source_retransmissions();
    case Proto::kTcp: return tcp.sender->source_retransmissions();
    case Proto::kAtp: return atp.sender->source_retransmissions();
  }
  return 0;
}

std::uint64_t FlowManager::FlowHandle::acks_sent() const {
  switch (proto) {
    case Proto::kJtp:
    case Proto::kJnc: return jtp.receiver->acks_sent();
    case Proto::kTcp: return tcp.receiver->acks_sent();
    case Proto::kAtp: return atp.receiver->acks_sent();
  }
  return 0;
}

bool FlowManager::FlowHandle::finished() const {
  switch (proto) {
    case Proto::kJtp:
    case Proto::kJnc: return jtp.sender->finished();
    case Proto::kTcp: return tcp.sender->finished();
    case Proto::kAtp: return atp.sender->finished();
  }
  return false;
}

FlowManager::FlowHandle& FlowManager::create(core::NodeId src,
                                             core::NodeId dst,
                                             std::uint64_t total_packets,
                                             double start_delay_s,
                                             FlowOptions opt) {
  auto handle = std::make_unique<FlowHandle>();
  handle->proto = proto_;
  handle->src = src;
  handle->dst = dst;
  handle->start_time = net_.simulator().now() + start_delay_s;
  handle->total_packets = total_packets;

  const double capacity = net_.schedule().node_capacity_pps();
  const int hops = net_.routing().hops(src, dst).value_or(1);
  const double rtt_est =
      2.0 * hops * net_.schedule().frame_duration() * 1.5;  // with retries

  switch (proto_) {
    case Proto::kJtp:
    case Proto::kJnc: {
      // A flow can never exceed the TDMA per-node share (every hop must
      // relay it from its own slots); a rate floor well above zero keeps
      // the control loop observable (samples arrive with data packets).
      const double rate_cap = std::min(opt.app_delivery_cap_pps, capacity);
      const double rate_floor = std::max(0.1, 0.07 * capacity);

      core::SenderConfig s;
      s.src = src;
      s.dst = dst;
      s.loss_tolerance = opt.loss_tolerance;
      s.initial_rate_pps = opt.initial_rate_pps;
      s.initial_energy_budget = opt.initial_energy_budget;
      s.backoff_for_local_recovery = opt.backoff_for_local_recovery;
      s.min_rate_pps = rate_floor;

      core::ReceiverConfig r;
      r.loss_tolerance = opt.loss_tolerance;
      r.feedback_mode = opt.feedback_mode;
      r.constant_feedback_rate_pps = opt.constant_feedback_rate_pps;
      r.t_lower_bound_s = opt.t_lower_bound_s;
      r.rtt_estimate_s = rtt_est;
      r.energy_beta = opt.energy_beta;
      r.app_delivery_cap_pps = opt.app_delivery_cap_pps;
      r.monitor = opt.monitor;
      r.rate.initial_rate_pps = opt.initial_rate_pps;
      r.rate.delta_pps = 0.15 * capacity;  // headroom target δ
      r.rate.min_rate_pps = rate_floor;
      r.rate.max_rate_pps = rate_cap;

      handle->jtp = net_.add_jtp_flow(s, r);
      auto* snd = handle->jtp.sender;
      auto* rcv = handle->jtp.receiver;
      // Teardown: once the source has everything acknowledged, silence the
      // receiver's feedback machinery (connection close analogue) and
      // record the completion time for goodput accounting.
      snd->set_on_complete([this, rcv, h = handle.get()] {
        h->completed_at = net_.simulator().now();
        rcv->stop();
      });
      net_.simulator().schedule(start_delay_s, [snd, rcv, total_packets] {
        rcv->start();
        snd->start(total_packets);
      });
      break;
    }
    case Proto::kTcp: {
      baselines::TcpConfig c;
      c.src = src;
      c.dst = dst;
      c.initial_rate_pps = opt.initial_rate_pps;
      c.initial_rtt_s = rtt_est;
      c.max_rate_pps = 4.0 * capacity;
      handle->tcp = net_.add_tcp_flow(c);
      auto* snd = handle->tcp.sender;
      snd->set_on_complete([this, h = handle.get()] {
        h->completed_at = net_.simulator().now();
      });
      net_.simulator().schedule(start_delay_s, [snd, total_packets] {
        snd->start(total_packets);
      });
      break;
    }
    case Proto::kAtp: {
      baselines::AtpConfig c;
      c.src = src;
      c.dst = dst;
      c.initial_rate_pps = opt.initial_rate_pps;
      c.feedback_period_s = std::max(3.0, 1.1 * rtt_est);  // D > RTT
      c.max_rate_pps = 4.0 * capacity;
      handle->atp = net_.add_atp_flow(c);
      auto* snd = handle->atp.sender;
      auto* rcv = handle->atp.receiver;
      snd->set_on_complete([this, rcv, h = handle.get()] {
        h->completed_at = net_.simulator().now();
        rcv->stop();
      });
      net_.simulator().schedule(start_delay_s, [snd, rcv, total_packets] {
        rcv->start();
        snd->start(total_packets);
      });
      break;
    }
  }
  flows_.push_back(std::move(handle));
  return *flows_.back();
}

RunMetrics FlowManager::collect(double duration_s) const {
  RunMetrics m;
  m.duration_s = duration_s;
  m.total_energy_j = net_.energy().total_energy();
  m.per_node_energy_j = net_.energy().per_node();
  m.queue_drops = net_.total_queue_drops();
  m.attempt_drops = net_.total_attempt_drops();
  m.energy_budget_drops = net_.total_energy_budget_drops();
  m.cache_retransmissions = net_.total_cache_retransmissions();
  m.route_drops = net_.total_route_drops();
  m.transmissions = net_.total_transmissions();

  double goodput_sum = 0.0;
  for (const auto& f : flows_) {
    m.delivered_payload_bits += f->delivered_bits();
    m.delivered_packets += f->delivered_packets();
    m.waived_packets += f->waived_packets();
    m.data_packets_sent += f->data_sent();
    m.source_retransmissions += f->source_rtx();
    m.acks_sent += f->acks_sent();
    // Goodput denominator: a finished transfer is judged on its own
    // completion time, not the experiment horizon.
    const double end = f->completed_at > 0 ? f->completed_at : duration_s;
    const double active = end - f->start_time;
    if (active > 0) goodput_sum += f->delivered_bits() / active / 1e3;
  }
  if (!flows_.empty())
    m.per_flow_goodput_kbps_mean = goodput_sum / flows_.size();
  return m;
}

}  // namespace jtp::exp
