#include "exp/workload.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace jtp::exp {

FlowManager::FlowManager(net::Network& network, Proto proto)
    : net_(network), proto_(proto) {
  if (!net::TransportRegistry::instance().caching_enabled(proto) &&
      network.config().node.ijtp.caching_enabled)
    throw std::invalid_argument(
        "FlowManager: '" + proto_name(proto) +
        "' requires a network built with caching disabled "
        "(see exp::build / make_network_config)");
}

FlowManager::FlowHandle& FlowManager::create(core::NodeId src,
                                             core::NodeId dst,
                                             std::uint64_t total_packets,
                                             double start_delay_s,
                                             FlowOptions opt) {
  auto handle = std::make_unique<FlowHandle>();
  static_cast<net::FlowHandle&>(*handle) =
      net_.add_flow(proto_, src, dst, opt);
  const double start_at = net_.now() + start_delay_s;
  handle->start_time = start_at;
  handle->total_packets = total_packets;

  auto* snd = handle->sender;
  auto* rcv = handle->receiver;
  // Teardown: once the source has everything acknowledged, silence the
  // receiver's feedback machinery (connection close analogue) and record
  // the completion time for goodput accounting. The close runs on the
  // receiver's side one slot later (the minimum cross-shard handoff; the
  // same delay applies under one shard for shard-count invariance).
  snd->set_on_complete([this, rcv, src, dst, h = handle.get()] {
    h->completed_at = net_.now_at(src);
    net_.defer_from_to(src, dst, net_.slot_duration_s(),
                       [rcv] { rcv->stop(); });
  });
  // Each endpoint starts in its own shard, as its own node (the receiver
  // first: its handlers must be armed when the first data packet lands,
  // and under one shard the receiver-start event keeps its historical
  // place ahead of the sender-start event at the same instant).
  net_.schedule_at_node(dst, start_at, [rcv] { rcv->start(); });
  net_.schedule_at_node(src, start_at,
                        [snd, total_packets] { snd->start(total_packets); });

  flows_.push_back(std::move(handle));
  return *flows_.back();
}

RunMetrics FlowManager::collect(double duration_s) const {
  RunMetrics m;
  m.duration_s = duration_s;
  m.total_energy_j = net_.total_energy();
  m.per_node_energy_j = net_.per_node_energy();
  m.queue_drops = net_.total_queue_drops();
  m.attempt_drops = net_.total_attempt_drops();
  m.energy_budget_drops = net_.total_energy_budget_drops();
  m.cache_retransmissions = net_.total_cache_retransmissions();
  m.route_drops = net_.total_route_drops();
  m.transmissions = net_.total_transmissions();

  double goodput_sum = 0.0;
  double fair_sum = 0.0, fair_sq = 0.0;
  std::vector<double> completions;
  for (const auto& f : flows_) {
    m.delivered_payload_bits += f->delivered_bits();
    m.delivered_packets += f->delivered_packets();
    m.waived_packets += f->waived_packets();
    m.data_packets_sent += f->data_sent();
    m.source_retransmissions += f->source_rtx();
    m.acks_sent += f->acks_sent();
    const double x = static_cast<double>(f->delivered_packets());
    fair_sum += x;
    fair_sq += x * x;
    if (f->completed_at > 0)
      completions.push_back(f->completed_at - f->start_time);
    // Goodput denominator: a finished transfer is judged on its own
    // completion time, not the experiment horizon.
    const double end = f->completed_at > 0 ? f->completed_at : duration_s;
    const double active = end - f->start_time;
    if (active > 0) goodput_sum += f->delivered_bits() / active / 1e3;
  }
  if (!flows_.empty())
    m.per_flow_goodput_kbps_mean = goodput_sum / flows_.size();
  // Jain's fairness index over per-flow delivered packets.
  if (fair_sq > 0.0)
    m.jain_fairness = fair_sum * fair_sum /
                      (static_cast<double>(flows_.size()) * fair_sq);
  // p99 completion latency, nearest-rank, over finished transfers.
  if (!completions.empty()) {
    std::sort(completions.begin(), completions.end());
    const std::size_t rank =
        (completions.size() * 99 + 99) / 100;  // ceil(0.99·n), 1-based
    m.p99_completion_s = completions[std::min(rank, completions.size()) - 1];
  }
  return m;
}

}  // namespace jtp::exp
