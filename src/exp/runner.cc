#include "exp/runner.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace jtp::exp {

std::vector<RunMetrics> run_seeds(
    std::size_t n_runs, std::uint64_t base_seed,
    const std::function<RunMetrics(std::uint64_t seed)>& body) {
  std::vector<RunMetrics> out;
  out.reserve(n_runs);
  for (std::size_t i = 0; i < n_runs; ++i)
    out.push_back(body(base_seed + 1000 * (i + 1)));
  return out;
}

Aggregate aggregate(const std::vector<RunMetrics>& runs,
                    const std::function<double(const RunMetrics&)>& extract) {
  sim::Summary s;
  for (const auto& r : runs) s.add(extract(r));
  return Aggregate{s.mean(), s.ci95_halfwidth(), s.count()};
}

TablePrinter::TablePrinter(std::vector<std::string> columns, int width)
    : cols_(std::move(columns)), width_(width) {}

void TablePrinter::header(std::ostream& os) const {
  for (const auto& c : cols_) os << std::setw(width_) << c;
  os << '\n';
  for (std::size_t i = 0; i < cols_.size(); ++i)
    os << std::setw(width_) << std::string(width_ - 2, '-');
  os << '\n';
}

void TablePrinter::row(std::ostream& os,
                       const std::vector<std::string>& cells) const {
  for (const auto& c : cells) os << std::setw(width_) << c;
  os << '\n';
}

void TablePrinter::row(std::ostream& os,
                       const std::vector<double>& cells) const {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(fmt(v));
  row(os, s);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  return os.str();
}

std::string with_ci(const Aggregate& a, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << a.mean << " ±"
     << a.ci95;
  return os.str();
}

}  // namespace jtp::exp
