#include "exp/runner.h"

#include <atomic>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

namespace jtp::exp {

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

namespace detail {

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  jobs = std::min(resolve_jobs(jobs), n);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

std::vector<RunMetrics> run_seeds(
    std::size_t n_runs, std::uint64_t base_seed,
    const std::function<RunMetrics(std::uint64_t seed)>& body,
    std::size_t jobs) {
  return run_seeds_as(n_runs, base_seed, body, jobs);
}

Aggregate aggregate(const std::vector<RunMetrics>& runs,
                    const std::function<double(const RunMetrics&)>& extract) {
  sim::Summary s;
  for (const auto& r : runs) s.add(extract(r));
  return Aggregate{s.mean(), s.ci95_halfwidth(), s.count()};
}

TablePrinter::TablePrinter(std::vector<std::string> columns, int width)
    : cols_(std::move(columns)), width_(width) {}

void TablePrinter::header(std::ostream& os) const {
  for (const auto& c : cols_) os << std::setw(width_) << c;
  os << '\n';
  for (std::size_t i = 0; i < cols_.size(); ++i)
    os << std::setw(width_) << std::string(width_ - 2, '-');
  os << '\n';
}

void TablePrinter::row(std::ostream& os,
                       const std::vector<std::string>& cells) const {
  for (const auto& c : cells) os << std::setw(width_) << c;
  os << '\n';
}

void TablePrinter::row(std::ostream& os,
                       const std::vector<double>& cells) const {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(fmt(v));
  row(os, s);
}

namespace {

std::vector<std::string> column_names(const std::vector<sim::Column>& cols) {
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (const auto& c : cols) names.push_back(c.name);
  return names;
}

}  // namespace

Report::Report(std::ostream& os, std::string title,
               std::vector<sim::Column> cols, int width)
    : os_(os),
      title_(std::move(title)),
      series_(std::move(cols)),
      table_(column_names(series_.columns()), width) {}

bool Report::to_csv(const std::string& path) {
  csv_path_ = path;
  csv_.emplace(path);
  if (!*csv_) return false;
  // Header up front: the schema is fixed at construction, and an immediate
  // write surfaces unwritable paths before any simulation time is spent.
  series_.write_csv_header(*csv_);
  return static_cast<bool>(*csv_);
}

void Report::begin() {
  if (!title_.empty()) os_ << "--- " << title_ << " ---\n";
  table_.header(os_);
}

void Report::row(std::vector<sim::Cell> cells, bool echo) {
  const auto& cols = series_.columns();
  series_.append(std::move(cells));
  const auto& stored = series_.rows().back();
  if (echo) {
    std::vector<std::string> rendered;
    rendered.reserve(stored.size());
    for (std::size_t i = 0; i < stored.size(); ++i)
      rendered.push_back(stored[i].table_text(cols[i].precision));
    table_.row(os_, rendered);
  }
  if (csv_) series_.write_csv_row(*csv_, stored);
}

bool Report::finish() {
  if (!csv_) return true;
  csv_->flush();
  const bool ok = static_cast<bool>(*csv_);
  if (!finished_) {
    finished_ = true;
    if (ok) os_ << "series written to " << csv_path_ << '\n';
  }
  return ok;
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  return os.str();
}

std::string with_ci(const Aggregate& a, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << a.mean << " ±"
     << a.ci95;
  return os.str();
}

}  // namespace jtp::exp
