// Scenario builders for the paper's four experiment families (§6).
//
//   linear   — chain topologies, Gilbert–Elliott links (§6.1.1);
//   random   — connected uniform placements, 5 random flows (§6.1.2);
//   mobile   — 15-node random-waypoint fields (§6.1.2);
//   testbed  — 14 nodes, stable low-loss indoor links, Poisson flow
//              arrivals with 100 KB transfers (Table 2).
// Each builder returns a ready Network; the proto decides whether caching
// is enabled (kJnc disables it).
#pragma once

#include <cstdint>
#include <memory>

#include "exp/workload.h"
#include "net/network.h"

namespace jtp::exp {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  Proto proto = Proto::kJtp;
  std::size_t cache_size_packets = 1000;  // Table 1
  std::size_t queue_capacity_packets = 50;
  double slot_duration_s = 0.035;
  bool fading = true;                     // Gilbert–Elliott on/off
  // Loss probabilities per state. The paper fixes the bad-state share
  // (10%) and dwell (3 s) but not the pathloss levels; these are chosen so
  // bad dwells genuinely exceed the 5-attempt MAC budget (p^5 ≈ 8%),
  // exercising the end-to-end vs in-network recovery trade-off the
  // evaluation is about.
  double loss_good = 0.05;
  double loss_bad = 0.60;
  double bad_fraction = 0.10;             // share of time in the bad state
  double routing_refresh_s = 5.0;
};

// Node spacing/range used by all scenarios: range below 2× spacing keeps
// chains honest (no hop-skipping).
inline constexpr double kSpacingM = 30.0;
inline constexpr double kRangeM = 40.0;

net::NetworkConfig make_network_config(const ScenarioConfig& sc);

// Chain of `net_size` nodes.
std::unique_ptr<net::Network> make_linear(std::size_t net_size,
                                          const ScenarioConfig& sc);

// Connected random placement of `net_size` nodes. Field side scales with
// sqrt(n) to hold density roughly constant.
std::unique_ptr<net::Network> make_random(std::size_t net_size,
                                          const ScenarioConfig& sc);

// Random placement plus random-waypoint motion at `speed_mps`.
std::unique_ptr<net::Network> make_mobile(std::size_t net_size,
                                          double speed_mps,
                                          const ScenarioConfig& sc);

// 14-node indoor grid with stable links (no fading, low residual loss).
std::unique_ptr<net::Network> make_testbed(const ScenarioConfig& sc);

// Field side for a random scenario of n nodes.
double random_field_side_m(std::size_t n);

}  // namespace jtp::exp
