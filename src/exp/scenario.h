// Declarative scenario specification (paper §6 experiment families).
//
// A ScenarioSpec names everything that defines an experiment substrate —
// topology kind + size, mobility, fading, protocol, cache/queue knobs —
// plus a workload/arrival model, and build() turns it into a ready
// Network + FlowManager. The paper's four families are presets:
//
//   linear   — chain topologies, Gilbert–Elliott links, two competing
//              end-to-end flows (§6.1.1);
//   random   — connected uniform placements, 5 random flows (§6.1.2);
//   mobile   — 15-node random-waypoint fields, 5 random flows (§6.1.2);
//   testbed  — 14 nodes, stable low-loss indoor links, Poisson flow
//              arrivals with 100 KB transfers (Table 2).
//
// Any field combination is valid — mobile chains, random placements with
// Poisson arrivals — so combinations the paper never ran come for free.
// Specs parse from "key=value" strings (see parse_scenario) so every
// bench exposes the full space through --scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/workload.h"
#include "net/network.h"

namespace jtp::exp {

enum class TopologyKind : std::uint8_t { kLinear, kRandom, kGrid };
std::string topology_name(TopologyKind k);

// How flows are attached to the network when the scenario is built.
enum class WorkloadKind : std::uint8_t {
  kManual,       // none: the caller creates flows itself
  kEnds,         // n_flows between the topology's end nodes, alternating
                 // direction, starts staggered by stagger_s
  kRandomPairs,  // n_flows between random distinct endpoints
  kPoisson,      // per-node Poisson arrivals of fixed-size transfers
  kOnOff,        // n_flows bursty sources: each holds one random pair and
                 // fires `transfer`-packet bursts at exponential gaps
                 // (mean burst_gap) within the arrival window
  kFanIn,        // many-flow convergence: `fan_in` distinct random
                 // senders all target node 0 (starts staggered)
};
std::string workload_name(WorkloadKind k);

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kManual;
  std::size_t n_flows = 1;
  std::uint64_t transfer_packets = 0;  // 0 = long-lived; kOnOff burst size
  double start_delay_s = 0.0;          // first start (kEnds/kRandomPairs)
  double stagger_s = 0.0;              // extra delay per flow (kEnds/kFanIn)
  double mean_interarrival_s = 400.0;  // kPoisson, per node
  double arrival_window_s = 1700.0;    // kPoisson/kOnOff: starts in window
  double mean_burst_gap_s = 60.0;      // kOnOff: mean gap between bursts
  std::size_t fan_in = 4;              // kFanIn: senders per sink
  double loss_tolerance = 0.0;         // applied to every created flow
};

struct ScenarioSpec {
  // --- substrate ---
  TopologyKind topology = TopologyKind::kLinear;
  std::size_t net_size = 5;
  std::size_t grid_cols = 7;     // kGrid row width
  double speed_mps = 0.0;        // > 0 => random-waypoint mobility
  bool fading = true;            // Gilbert–Elliott on/off
  // Loss probabilities per state. The paper fixes the bad-state share
  // (10%) and dwell (3 s) but not the pathloss levels; these are chosen
  // so bad dwells genuinely exceed the 5-attempt MAC budget (p^5 ≈ 8%),
  // exercising the end-to-end vs in-network recovery trade-off the
  // evaluation is about.
  double loss_good = 0.05;
  double loss_bad = 0.60;
  double bad_fraction = 0.10;    // share of time in the bad state
  // --- protocol & knobs ---
  Proto proto = Proto::kJtp;
  std::size_t cache_size_packets = 1000;  // Table 1
  std::size_t queue_capacity_packets = 50;
  double slot_duration_s = 0.035;
  double routing_refresh_s = 5.0;
  std::uint64_t seed = 1;
  // Parallel event-loop shards (net::NetworkConfig::shards). Results are
  // byte-identical for every value; > 1 requires speed=0 and mac!=csma.
  std::size_t shards = 1;
  // --- MAC discipline ---
  mac::Mac mac = mac::Mac::kTdma;
  // tdma_reuse only: interference range as a multiple of the radio range.
  double reuse_margin = 1.0;
  // csma only: 802.15.4-style contention knobs.
  std::size_t csma_min_be = 3;
  std::size_t csma_max_be = 5;
  std::size_t csma_max_backoffs = 4;
  // --- workload ---
  WorkloadSpec workload;
};

bool operator==(const WorkloadSpec& a, const WorkloadSpec& b);
inline bool operator!=(const WorkloadSpec& a, const WorkloadSpec& b) {
  return !(a == b);
}
bool operator==(const ScenarioSpec& a, const ScenarioSpec& b);
inline bool operator!=(const ScenarioSpec& a, const ScenarioSpec& b) {
  return !(a == b);
}

// The four paper presets ("linear", "random", "mobile", "testbed") plus
// the production-scale tier ("scale": large random fields, many-flow
// fan-in; meant to be swept over net_size 100/400/1000 — see
// bench/scale_sweep.cc). Throws std::invalid_argument on an unknown name.
ScenarioSpec preset(const std::string& name);
std::vector<std::string> preset_names();

// --- the key=value spec language -----------------------------------------
//
// A spec string is a comma-separated token list. The first token may be a
// bare preset name; every other token is key=value. Example:
//
//   "mobile,net_size=25,speed=5,proto=tcp,loss_good=0.1"
//
// Keys mirror the struct fields (topology, net_size, grid_cols, speed,
// fading, loss_good, loss_bad, bad_fraction, proto, cache_size,
// queue_capacity, slot_duration, routing_refresh, seed, shards, mac,
// reuse_margin,
// min_be, max_be, max_backoffs, workload, flows, transfer, start, stagger,
// interarrival, window, burst_gap, fan_in, loss_tolerance).
//
// MAC-family knobs are validated cross-key: reuse_margin differing from
// its default requires mac=tdma_reuse, and the csma knobs require
// mac=csma — a spec that tunes a discipline it does not select is a
// silent no-op the validation turns into a parse error.

// Applies tokens onto `spec` in order. Returns "" on success or a
// human-readable error (unknown key, malformed value, out-of-range);
// `spec` may be partially updated on error.
std::string apply_scenario_tokens(ScenarioSpec& spec,
                                  const std::string& text);

struct SpecParse {
  ScenarioSpec spec;
  std::string error;  // non-empty => parse failed
  bool ok() const { return error.empty(); }
};

// Parses a spec string starting from defaults (or from the named preset
// when the first token is bare).
SpecParse parse_scenario(const std::string& text);

// Canonical round-trip form: parse_scenario(to_string(s)).spec == s.
std::string to_string(const ScenarioSpec& spec);

// --- building -------------------------------------------------------------

// Node spacing/range used by all scenarios: range below 2× spacing keeps
// chains honest (no hop-skipping).
inline constexpr double kSpacingM = 30.0;
inline constexpr double kRangeM = 40.0;

// Field side for a random scenario of n nodes.
double random_field_side_m(std::size_t n);

// The NetworkConfig a spec implies (caching on/off follows the proto's
// TransportRegistry entry). Exposed for benches that need to tweak
// network knobs the spec does not cover before constructing the Network
// themselves.
net::NetworkConfig make_network_config(const ScenarioSpec& spec);

// The spec's topology alone (exposed for bespoke wiring).
phy::Topology make_topology(const ScenarioSpec& spec);

// A built scenario: the network plus its flow manager, with the spec's
// workload already attached (flows start at their scheduled times once
// run_until is called).
struct Scenario {
  std::unique_ptr<net::Network> network;
  std::unique_ptr<FlowManager> flows;
};

// Throws std::invalid_argument on specs that cannot be built (net_size
// < 2, unregistered proto).
Scenario build(const ScenarioSpec& spec);

}  // namespace jtp::exp
