// Flow management across the three transports under test.
//
// FlowManager attaches flows of a chosen protocol to a Network with
// consistent defaults, tracks them, and aggregates RunMetrics afterwards.
// Protocols (paper §6.1):
//   kJtp — the full protocol;
//   kJnc — JTP with in-network caching disabled (Fig. 4);
//   kTcp — rate-based TCP-SACK;
//   kAtp — ATP-like explicit-rate protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/metrics.h"
#include "net/network.h"

namespace jtp::exp {

enum class Proto { kJtp, kJnc, kTcp, kAtp };

std::string proto_name(Proto p);

// Per-flow knobs that individual experiments vary.
struct FlowOptions {
  double loss_tolerance = 0.0;
  double initial_rate_pps = 1.0;
  core::FeedbackMode feedback_mode = core::FeedbackMode::kVariable;
  double constant_feedback_rate_pps = 0.2;  // used in kConstant mode
  double t_lower_bound_s = 10.0;
  bool backoff_for_local_recovery = true;
  // β in e = β·eUCL (eq. 13). Must cover the worst legitimate delivery:
  // a packet that needs the full MAC attempt budget on several bad-state
  // links costs ~4-5x the typical path energy, so β below ~4 makes the
  // budget kill packets the reliability machinery then has to repair.
  double energy_beta = 5.0;
  double app_delivery_cap_pps = 1e6;
  core::Joules initial_energy_budget = 0.0;  // 0 = unbudgeted at start
  core::PathMonitorConfig monitor;           // flip-flop filter knobs
};

class FlowManager {
 public:
  FlowManager(net::Network& network, Proto proto);

  struct FlowHandle {
    Proto proto;
    core::NodeId src;
    core::NodeId dst;
    double start_time = 0.0;
    double completed_at = -1.0;  // < 0 until the transfer finishes
    std::uint64_t total_packets = 0;  // 0 = long-lived
    net::JtpFlow jtp;
    net::TcpFlow tcp;
    net::AtpFlow atp;

    double delivered_bits() const;
    std::uint64_t delivered_packets() const;
    std::uint64_t waived_packets() const;
    std::uint64_t data_sent() const;
    std::uint64_t source_rtx() const;
    std::uint64_t acks_sent() const;
    bool finished() const;
  };

  // Creates a flow and starts it after `start_delay_s` (sim time offset
  // from now). `total_packets` = 0 means a long-lived flow.
  FlowHandle& create(core::NodeId src, core::NodeId dst,
                     std::uint64_t total_packets, double start_delay_s = 0.0,
                     FlowOptions opt = {});

  const std::vector<std::unique_ptr<FlowHandle>>& flows() const {
    return flows_;
  }
  net::Network& network() { return net_; }
  Proto proto() const { return proto_; }

  // Aggregates all counters after (or during) a run.
  RunMetrics collect(double duration_s) const;

 private:
  net::Network& net_;
  Proto proto_;
  std::vector<std::unique_ptr<FlowHandle>> flows_;
};

}  // namespace jtp::exp
