// Flow management across the transports under test.
//
// FlowManager attaches flows of a chosen protocol to a Network through
// the unified Network::add_flow / net::FlowHandle API, schedules their
// start, tracks completion times, and aggregates RunMetrics afterwards.
// It contains no per-protocol code: protocol defaults live in the
// TransportRegistry factories (paper §6.1 protocols: kJtp, kJnc, kTcp,
// kAtp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/metrics.h"
#include "net/network.h"

namespace jtp::exp {

using net::FlowOptions;
using net::Proto;
using core::parse_proto;
using core::proto_name;

class FlowManager {
 public:
  // Throws std::invalid_argument when `proto` forbids in-network caching
  // (e.g. kJnc) but the network was built with caching enabled — the
  // scenario layer must build the network to match the protocol.
  FlowManager(net::Network& network, Proto proto);

  // One managed flow: the uniform transport handle plus the experiment
  // bookkeeping (start/completion times) goodput accounting needs.
  struct FlowHandle : net::FlowHandle {
    double start_time = 0.0;
    double completed_at = -1.0;  // < 0 until the transfer finishes
    std::uint64_t total_packets = 0;  // 0 = long-lived
  };

  // Creates a flow and starts it after `start_delay_s` (sim time offset
  // from now). `total_packets` = 0 means a long-lived flow.
  FlowHandle& create(core::NodeId src, core::NodeId dst,
                     std::uint64_t total_packets, double start_delay_s = 0.0,
                     FlowOptions opt = {});

  const std::vector<std::unique_ptr<FlowHandle>>& flows() const {
    return flows_;
  }
  net::Network& network() { return net_; }
  Proto proto() const { return proto_; }

  // Aggregates all counters after (or during) a run.
  RunMetrics collect(double duration_s) const;

 private:
  net::Network& net_;
  Proto proto_;
  std::vector<std::unique_ptr<FlowHandle>> flows_;
};

}  // namespace jtp::exp
