// Experiment metrics (paper §6.1): energy per delivered bit and goodput,
// plus the secondary counters individual figures need (source rtx, cache
// hits, queue drops, per-node energy).
#pragma once

#include <cstdint>
#include <vector>

namespace jtp::exp {

struct RunMetrics {
  double duration_s = 0.0;
  double total_energy_j = 0.0;
  double delivered_payload_bits = 0.0;
  double per_flow_goodput_kbps_mean = 0.0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t waived_packets = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t source_retransmissions = 0;
  std::uint64_t cache_retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t attempt_drops = 0;
  std::uint64_t energy_budget_drops = 0;
  std::uint64_t route_drops = 0;
  std::uint64_t transmissions = 0;
  std::vector<double> per_node_energy_j;

  // Per-flow distribution metrics (ROADMAP "metrics that matter"):
  // Jain's fairness index (Σx)²/(n·Σx²) over per-flow delivered packets
  // (1 = perfectly fair, 1/n = one flow starves the rest; 0 only when
  // nothing was delivered at all), and the p99 (nearest-rank) completion
  // latency over flows that finished their bounded transfer (0 when none
  // did — e.g. long-lived on_off/fan_in flows). Both are pure functions
  // of per-flow counters, hence K-invariant under sharding.
  double jain_fairness = 0.0;
  double p99_completion_s = 0.0;

  // µJ per delivered application bit; 0 when nothing was delivered.
  double energy_per_bit_uj() const {
    if (delivered_payload_bits <= 0.0) return 0.0;
    return total_energy_j / delivered_payload_bits * 1e6;
  }
  double energy_per_bit_mj() const {
    if (delivered_payload_bits <= 0.0) return 0.0;
    return total_energy_j / delivered_payload_bits * 1e3;
  }
  double delivered_kbit() const { return delivered_payload_bits / 1e3; }
};

}  // namespace jtp::exp
