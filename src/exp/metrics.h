// Experiment metrics (paper §6.1): energy per delivered bit and goodput,
// plus the secondary counters individual figures need (source rtx, cache
// hits, queue drops, per-node energy).
#pragma once

#include <cstdint>
#include <vector>

namespace jtp::exp {

struct RunMetrics {
  double duration_s = 0.0;
  double total_energy_j = 0.0;
  double delivered_payload_bits = 0.0;
  double per_flow_goodput_kbps_mean = 0.0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t waived_packets = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t source_retransmissions = 0;
  std::uint64_t cache_retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t attempt_drops = 0;
  std::uint64_t energy_budget_drops = 0;
  std::uint64_t route_drops = 0;
  std::uint64_t transmissions = 0;
  std::vector<double> per_node_energy_j;

  // µJ per delivered application bit; 0 when nothing was delivered.
  double energy_per_bit_uj() const {
    if (delivered_payload_bits <= 0.0) return 0.0;
    return total_energy_j / delivered_payload_bits * 1e6;
  }
  double energy_per_bit_mj() const {
    if (delivered_payload_bits <= 0.0) return 0.0;
    return total_energy_j / delivered_payload_bits * 1e3;
  }
  double delivered_kbit() const { return delivered_payload_bits / 1e3; }
};

}  // namespace jtp::exp
