#include "exp/scenario.h"

#include <cmath>

namespace jtp::exp {

net::NetworkConfig make_network_config(const ScenarioConfig& sc) {
  net::NetworkConfig cfg;
  cfg.seed = sc.seed;
  cfg.slot_duration_s = sc.slot_duration_s;
  cfg.channel.fading_enabled = sc.fading;
  cfg.channel.loss_good = sc.loss_good;
  cfg.channel.loss_bad = sc.loss_bad;
  cfg.channel.bad_fraction = sc.bad_fraction;
  cfg.mac.queue_capacity_packets = sc.queue_capacity_packets;
  cfg.routing.refresh_interval_s = sc.routing_refresh_s;
  cfg.node.ijtp.cache_capacity_packets = sc.cache_size_packets;
  cfg.node.ijtp.caching_enabled = (sc.proto != Proto::kJnc);
  return cfg;
}

std::unique_ptr<net::Network> make_linear(std::size_t net_size,
                                          const ScenarioConfig& sc) {
  auto topo = phy::Topology::linear(net_size, kSpacingM, kRangeM);
  return std::make_unique<net::Network>(std::move(topo),
                                        make_network_config(sc));
}

double random_field_side_m(std::size_t n) {
  // Density chosen so the range graph is connected w.h.p. but multi-hop:
  // ~5 nodes per range-disk area.
  const double disk = 3.14159265358979 * kRangeM * kRangeM;
  return std::sqrt(static_cast<double>(n) * disk / 5.0);
}

std::unique_ptr<net::Network> make_random(std::size_t net_size,
                                          const ScenarioConfig& sc) {
  sim::Rng rng(sc.seed);
  auto placement_rng = rng.derive("placement");
  auto topo = phy::Topology::random_connected(
      net_size, random_field_side_m(net_size), kRangeM, placement_rng);
  return std::make_unique<net::Network>(std::move(topo),
                                        make_network_config(sc));
}

std::unique_ptr<net::Network> make_mobile(std::size_t net_size,
                                          double speed_mps,
                                          const ScenarioConfig& sc) {
  sim::Rng rng(sc.seed);
  auto placement_rng = rng.derive("placement");
  const double field = random_field_side_m(net_size);
  auto topo = phy::Topology::random_connected(net_size, field, kRangeM,
                                              placement_rng);
  auto cfg = make_network_config(sc);
  phy::MobilityConfig mob;
  mob.speed_mps = speed_mps;
  mob.field_m = field;
  cfg.mobility = mob;
  return std::make_unique<net::Network>(std::move(topo), cfg);
}

std::unique_ptr<net::Network> make_testbed(const ScenarioConfig& sc) {
  // 14 nodes in a 7x2 indoor grid; links stable and good (Table 2: "the
  // links are more stable and their quality is much better").
  auto cfg = make_network_config(sc);
  cfg.channel.fading_enabled = false;
  cfg.channel.loss_good = 0.01;
  phy::Topology topo(14, kRangeM);
  for (core::NodeId i = 0; i < 14; ++i) {
    const double x = static_cast<double>(i % 7) * kSpacingM;
    const double y = static_cast<double>(i / 7) * kSpacingM;
    topo.set_position(i, {x, y});
  }
  return std::make_unique<net::Network>(std::move(topo), cfg);
}

}  // namespace jtp::exp
