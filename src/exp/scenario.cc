#include "exp/scenario.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace jtp::exp {

std::string topology_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kLinear: return "linear";
    case TopologyKind::kRandom: return "random";
    case TopologyKind::kGrid: return "grid";
  }
  return "?";
}

std::string workload_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kManual: return "manual";
    case WorkloadKind::kEnds: return "ends";
    case WorkloadKind::kRandomPairs: return "random_pairs";
    case WorkloadKind::kPoisson: return "poisson";
    case WorkloadKind::kOnOff: return "on_off";
    case WorkloadKind::kFanIn: return "fan_in";
  }
  return "?";
}

bool operator==(const WorkloadSpec& a, const WorkloadSpec& b) {
  return a.kind == b.kind && a.n_flows == b.n_flows &&
         a.transfer_packets == b.transfer_packets &&
         a.start_delay_s == b.start_delay_s && a.stagger_s == b.stagger_s &&
         a.mean_interarrival_s == b.mean_interarrival_s &&
         a.arrival_window_s == b.arrival_window_s &&
         a.mean_burst_gap_s == b.mean_burst_gap_s && a.fan_in == b.fan_in &&
         a.loss_tolerance == b.loss_tolerance;
}

bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
  return a.topology == b.topology && a.net_size == b.net_size &&
         a.grid_cols == b.grid_cols && a.speed_mps == b.speed_mps &&
         a.fading == b.fading && a.loss_good == b.loss_good &&
         a.loss_bad == b.loss_bad && a.bad_fraction == b.bad_fraction &&
         a.proto == b.proto &&
         a.cache_size_packets == b.cache_size_packets &&
         a.queue_capacity_packets == b.queue_capacity_packets &&
         a.slot_duration_s == b.slot_duration_s &&
         a.routing_refresh_s == b.routing_refresh_s && a.seed == b.seed &&
         a.shards == b.shards &&
         a.mac == b.mac && a.reuse_margin == b.reuse_margin &&
         a.csma_min_be == b.csma_min_be && a.csma_max_be == b.csma_max_be &&
         a.csma_max_backoffs == b.csma_max_backoffs &&
         a.workload == b.workload;
}

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

ScenarioSpec preset(const std::string& name) {
  ScenarioSpec s;  // defaults == the linear substrate
  if (name == "linear") {
    // §6.1.1: two competing full-reliability flows between the chain's
    // ends, staggered starts.
    s.workload.kind = WorkloadKind::kEnds;
    s.workload.n_flows = 2;
    s.workload.start_delay_s = 10.0;
    s.workload.stagger_s = 10.0;
    return s;
  }
  if (name == "random") {
    // §6.1.2: connected uniform placement, 5 random long-lived flows.
    s.topology = TopologyKind::kRandom;
    s.net_size = 20;
    s.workload.kind = WorkloadKind::kRandomPairs;
    s.workload.n_flows = 5;
    s.workload.start_delay_s = 10.0;
    return s;
  }
  if (name == "mobile") {
    // §6.1.2: 15-node random-waypoint field.
    s.topology = TopologyKind::kRandom;
    s.net_size = 15;
    s.speed_mps = 1.0;
    s.workload.kind = WorkloadKind::kRandomPairs;
    s.workload.n_flows = 5;
    s.workload.start_delay_s = 10.0;
    return s;
  }
  if (name == "testbed") {
    // Table 2: 14 nodes in a 7x2 indoor grid; links stable and good
    // ("the links are more stable and their quality is much better");
    // per-node Poisson flows, 100 KB = 125 packets, 30-minute horizon
    // (arrivals stop 100 s before it).
    s.topology = TopologyKind::kGrid;
    s.net_size = 14;
    s.grid_cols = 7;
    s.fading = false;
    s.loss_good = 0.01;
    s.workload.kind = WorkloadKind::kPoisson;
    s.workload.transfer_packets = 125;
    s.workload.mean_interarrival_s = 400.0;
    s.workload.arrival_window_s = 1700.0;
    return s;
  }
  if (name == "scale") {
    // Production-scale tier (not a paper family): a large connected
    // random field with many flows fanning into one sink. net_size is
    // meant to be swept (100/400/1000 in bench/scale_sweep.cc); add
    // speed=1 for the mobile variant. The slot is scaled down from the
    // paper's 35 ms because classic TDMA capacity is 1/(n*slot) per
    // node — at n = 1000 the paper slot would starve every flow to
    // 0.03 pkt/s. Add mac=tdma_reuse for the real fix: spatial slot
    // reuse makes the frame scale with local density, not n.
    s.topology = TopologyKind::kRandom;
    s.net_size = 100;
    s.slot_duration_s = 0.005;
    s.workload.kind = WorkloadKind::kFanIn;
    s.workload.fan_in = 8;
    s.workload.start_delay_s = 10.0;
    s.workload.stagger_s = 1.0;
    return s;
  }
  if (name == "scale_mobile") {
    // The scale tier under churn: same field, workload and slot as
    // "scale", with every node on a 1 m/s random waypoint. This is the
    // operating point the incremental route repair exists for — the
    // control plane must absorb continuous position change without
    // rebuilding the cached rows of the fan-in sources each refresh
    // (bench/scale_sweep.cc reports rows_kept/rows_repaired for it).
    s = preset("scale");
    s.speed_mps = 1.0;
    return s;
  }
  throw std::invalid_argument(
      "unknown scenario preset '" + name +
      "' (known: linear, random, mobile, testbed, scale, scale_mobile)");
}

std::vector<std::string> preset_names() {
  return {"linear", "random", "mobile", "testbed", "scale", "scale_mobile"};
}

// ---------------------------------------------------------------------------
// key=value parsing
// ---------------------------------------------------------------------------

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool parse_double(const std::string& v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size() || !std::isfinite(d)) return false;
  out = d;
  return true;
}

bool parse_u64(const std::string& v, std::uint64_t& out) {
  // Digits only: strtoull would silently wrap "-1" to 2^64-1.
  if (v.empty()) return false;
  for (char c : v)
    if (c < '0' || c > '9') return false;
  errno = 0;
  out = std::strtoull(v.c_str(), nullptr, 10);
  // Reject silent saturation to ULLONG_MAX on overflow.
  return errno != ERANGE;
}

bool parse_bool(const std::string& v, bool& out) {
  if (v == "1" || v == "true") {
    out = true;
    return true;
  }
  if (v == "0" || v == "false") {
    out = false;
    return true;
  }
  return false;
}

std::string bad_value(const std::string& key, const std::string& value,
                      const char* expected) {
  return "scenario: " + key + ": '" + value + "' is not " + expected;
}

// Applies one key=value pair; returns "" or an error.
std::string apply_pair(ScenarioSpec& spec, const std::string& key,
                       const std::string& value) {
  auto set_double = [&](double& field, double lo, double hi,
                        const char* expected) -> std::string {
    double d = 0.0;
    if (!parse_double(value, d) || d < lo || d > hi)
      return bad_value(key, value, expected);
    field = d;
    return "";
  };
  auto set_size = [&](std::size_t& field, std::uint64_t lo,
                      const char* expected) -> std::string {
    std::uint64_t u = 0;
    if (!parse_u64(value, u) || u < lo) return bad_value(key, value, expected);
    field = static_cast<std::size_t>(u);
    return "";
  };

  if (key == "topology") {
    for (auto k : {TopologyKind::kLinear, TopologyKind::kRandom,
                   TopologyKind::kGrid})
      if (value == topology_name(k)) {
        spec.topology = k;
        return "";
      }
    return bad_value(key, value, "a topology (linear, random, grid)");
  }
  if (key == "net_size") return set_size(spec.net_size, 2, "an integer >= 2");
  if (key == "grid_cols")
    return set_size(spec.grid_cols, 1, "an integer >= 1");
  if (key == "speed")
    return set_double(spec.speed_mps, 0.0, 1e3, "a speed in [0, 1000] m/s");
  if (key == "fading") {
    if (!parse_bool(value, spec.fading))
      return bad_value(key, value, "a boolean (0/1/true/false)");
    return "";
  }
  if (key == "loss_good")
    return set_double(spec.loss_good, 0.0, 1.0, "a probability in [0, 1]");
  if (key == "loss_bad")
    return set_double(spec.loss_bad, 0.0, 1.0, "a probability in [0, 1]");
  if (key == "bad_fraction")
    return set_double(spec.bad_fraction, 0.0, 1.0,
                      "a probability in [0, 1]");
  if (key == "proto") {
    const auto p = parse_proto(value);
    if (!p) return bad_value(key, value, "a protocol (jtp, jnc, tcp, atp, jtp_ff, jtp_dr, bbr)");
    spec.proto = *p;
    return "";
  }
  if (key == "cache_size")
    return set_size(spec.cache_size_packets, 1, "an integer >= 1");
  if (key == "queue_capacity")
    return set_size(spec.queue_capacity_packets, 1, "an integer >= 1");
  if (key == "slot_duration")
    return set_double(spec.slot_duration_s, 1e-6, 10.0,
                      "a duration in (0, 10] s");
  if (key == "routing_refresh")
    return set_double(spec.routing_refresh_s, 1e-3, 1e6,
                      "a positive duration in seconds");
  if (key == "seed") {
    if (!parse_u64(value, spec.seed))
      return bad_value(key, value, "a non-negative integer");
    return "";
  }
  if (key == "shards") return set_size(spec.shards, 1, "an integer >= 1");
  if (key == "mac") {
    const auto m = mac::parse_mac(value);
    if (!m) return bad_value(key, value, "a MAC (tdma, tdma_reuse, csma)");
    spec.mac = *m;
    return "";
  }
  if (key == "reuse_margin")
    return set_double(spec.reuse_margin, 1.0, 4.0,
                      "a range multiple in [1, 4]");
  if (key == "min_be") {
    const auto err = set_size(spec.csma_min_be, 0, "an integer in [0, 10]");
    if (!err.empty() || spec.csma_min_be > 10)
      return bad_value(key, value, "an integer in [0, 10]");
    return "";
  }
  if (key == "max_be") {
    const auto err = set_size(spec.csma_max_be, 0, "an integer in [0, 10]");
    if (!err.empty() || spec.csma_max_be > 10)
      return bad_value(key, value, "an integer in [0, 10]");
    return "";
  }
  if (key == "max_backoffs") {
    const auto err =
        set_size(spec.csma_max_backoffs, 0, "an integer in [0, 20]");
    if (!err.empty() || spec.csma_max_backoffs > 20)
      return bad_value(key, value, "an integer in [0, 20]");
    return "";
  }
  if (key == "workload") {
    for (auto k : {WorkloadKind::kManual, WorkloadKind::kEnds,
                   WorkloadKind::kRandomPairs, WorkloadKind::kPoisson,
                   WorkloadKind::kOnOff, WorkloadKind::kFanIn})
      if (value == workload_name(k)) {
        spec.workload.kind = k;
        return "";
      }
    return bad_value(key, value,
                     "a workload (manual, ends, random_pairs, poisson, "
                     "on_off, fan_in)");
  }
  if (key == "flows")
    return set_size(spec.workload.n_flows, 1, "an integer >= 1");
  if (key == "transfer") {
    if (!parse_u64(value, spec.workload.transfer_packets))
      return bad_value(key, value,
                       "a packet count (0 = long-lived flows)");
    return "";
  }
  if (key == "start")
    return set_double(spec.workload.start_delay_s, 0.0, 1e9,
                      "a non-negative delay in seconds");
  if (key == "stagger")
    return set_double(spec.workload.stagger_s, 0.0, 1e9,
                      "a non-negative delay in seconds");
  if (key == "interarrival")
    return set_double(spec.workload.mean_interarrival_s, 1e-3, 1e9,
                      "a positive duration in seconds");
  if (key == "window")
    return set_double(spec.workload.arrival_window_s, 0.0, 1e9,
                      "a non-negative duration in seconds");
  if (key == "burst_gap")
    return set_double(spec.workload.mean_burst_gap_s, 1e-3, 1e9,
                      "a positive duration in seconds");
  if (key == "fan_in")
    return set_size(spec.workload.fan_in, 1, "an integer >= 1");
  if (key == "loss_tolerance")
    return set_double(spec.workload.loss_tolerance, 0.0, 1.0,
                      "a fraction in [0, 1]");
  return "scenario: unknown key '" + key + "'";
}

std::string fmt_double(double v) {
  char buf[40];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

// Cross-key MAC-family validation: tuning a discipline the spec does not
// select would be a silent no-op, so it is an error instead. Triggers
// only on non-default values — to_string() always emits every key, and
// the round-trip contract must hold for every valid spec.
std::string validate_spec(const ScenarioSpec& s) {
  // "Non-default" is measured against the default-constructed spec, so
  // this check can never drift from the knobs' real defaults.
  const ScenarioSpec d;
  if (s.mac != mac::Mac::kTdmaReuse && s.reuse_margin != d.reuse_margin)
    return "scenario: reuse_margin requires mac=tdma_reuse";
  if (s.mac != mac::Mac::kCsma &&
      (s.csma_min_be != d.csma_min_be || s.csma_max_be != d.csma_max_be ||
       s.csma_max_backoffs != d.csma_max_backoffs))
    return "scenario: min_be/max_be/max_backoffs require mac=csma";
  if (s.csma_min_be > s.csma_max_be)
    return "scenario: min_be must be <= max_be";
  // shards combines with every MAC and with mobility (shard-aware
  // mobility + per-strip CSMA carrier domains); no cross-key limits.
  return "";
}

}  // namespace

std::string apply_scenario_tokens(ScenarioSpec& spec,
                                  const std::string& text) {
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const auto raw =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    const auto token = trim(raw);
    if (token.empty()) {
      if (first && text.empty()) return "";  // empty spec = no changes
      return "scenario: empty token";
    }
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      if (!first)
        return "scenario: bare token '" + token +
               "' (only the first token may name a preset)";
      try {
        spec = preset(token);
      } catch (const std::invalid_argument& e) {
        return e.what();
      }
    } else {
      const auto key = trim(token.substr(0, eq));
      const auto value = trim(token.substr(eq + 1));
      if (key.empty()) return "scenario: empty key in '" + token + "'";
      const auto err = apply_pair(spec, key, value);
      if (!err.empty()) return err;
    }
    first = false;
  }
  return validate_spec(spec);
}

SpecParse parse_scenario(const std::string& text) {
  SpecParse out;
  out.error = apply_scenario_tokens(out.spec, text);
  return out;
}

std::string to_string(const ScenarioSpec& s) {
  std::string out;
  auto kv = [&](const char* key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  kv("topology", topology_name(s.topology));
  kv("net_size", std::to_string(s.net_size));
  kv("grid_cols", std::to_string(s.grid_cols));
  kv("speed", fmt_double(s.speed_mps));
  kv("fading", s.fading ? "1" : "0");
  kv("loss_good", fmt_double(s.loss_good));
  kv("loss_bad", fmt_double(s.loss_bad));
  kv("bad_fraction", fmt_double(s.bad_fraction));
  kv("proto", proto_name(s.proto));
  kv("cache_size", std::to_string(s.cache_size_packets));
  kv("queue_capacity", std::to_string(s.queue_capacity_packets));
  kv("slot_duration", fmt_double(s.slot_duration_s));
  kv("routing_refresh", fmt_double(s.routing_refresh_s));
  kv("seed", std::to_string(s.seed));
  kv("shards", std::to_string(s.shards));
  kv("mac", mac::mac_name(s.mac));
  kv("reuse_margin", fmt_double(s.reuse_margin));
  kv("min_be", std::to_string(s.csma_min_be));
  kv("max_be", std::to_string(s.csma_max_be));
  kv("max_backoffs", std::to_string(s.csma_max_backoffs));
  kv("workload", workload_name(s.workload.kind));
  kv("flows", std::to_string(s.workload.n_flows));
  kv("transfer", std::to_string(s.workload.transfer_packets));
  kv("start", fmt_double(s.workload.start_delay_s));
  kv("stagger", fmt_double(s.workload.stagger_s));
  kv("interarrival", fmt_double(s.workload.mean_interarrival_s));
  kv("window", fmt_double(s.workload.arrival_window_s));
  kv("burst_gap", fmt_double(s.workload.mean_burst_gap_s));
  kv("fan_in", std::to_string(s.workload.fan_in));
  kv("loss_tolerance", fmt_double(s.workload.loss_tolerance));
  return out;
}

// ---------------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------------

double random_field_side_m(std::size_t n) {
  // Density chosen so the range graph is connected w.h.p. but multi-hop.
  // At paper scale (n <= 25) this is the paper's ~5 nodes per range-disk
  // area, kept verbatim for baseline compatibility. A random geometric
  // graph needs per-disk occupancy ~ ln n + c to stay connected, so for
  // the large-n scale tier the occupancy grows with ln(n/25) + 5 =
  // ln n + 1.78 (constant success margin c ~ 1.78 per placement attempt);
  // max() makes the two regimes meet exactly at n = 25.
  const double disk = 3.14159265358979 * kRangeM * kRangeM;
  const double per_disk =
      std::max(5.0, std::log(static_cast<double>(n) / 25.0) + 5.0);
  return std::sqrt(static_cast<double>(n) * disk / per_disk);
}

net::NetworkConfig make_network_config(const ScenarioSpec& spec) {
  net::NetworkConfig cfg;
  cfg.seed = spec.seed;
  cfg.slot_duration_s = spec.slot_duration_s;
  cfg.shards = spec.shards;
  cfg.channel.fading_enabled = spec.fading;
  cfg.channel.loss_good = spec.loss_good;
  cfg.channel.loss_bad = spec.loss_bad;
  cfg.channel.bad_fraction = spec.bad_fraction;
  cfg.mac_kind = spec.mac;
  cfg.mac.queue_capacity_packets = spec.queue_capacity_packets;
  cfg.mac.reuse_range_margin = spec.reuse_margin;
  cfg.mac.csma.min_be = static_cast<int>(spec.csma_min_be);
  cfg.mac.csma.max_be = static_cast<int>(spec.csma_max_be);
  cfg.mac.csma.max_backoffs = static_cast<int>(spec.csma_max_backoffs);
  cfg.routing.refresh_interval_s = spec.routing_refresh_s;
  cfg.node.ijtp.cache_capacity_packets = spec.cache_size_packets;
  cfg.node.ijtp.caching_enabled =
      net::TransportRegistry::instance().caching_enabled(spec.proto);
  return cfg;
}

phy::Topology make_topology(const ScenarioSpec& spec) {
  if (spec.net_size < 2)
    throw std::invalid_argument("scenario: net_size must be >= 2");
  switch (spec.topology) {
    case TopologyKind::kLinear:
      return phy::Topology::linear(spec.net_size, kSpacingM, kRangeM);
    case TopologyKind::kRandom: {
      sim::Rng rng(spec.seed);
      auto placement_rng = rng.derive("placement");
      return phy::Topology::random_connected(
          spec.net_size, random_field_side_m(spec.net_size), kRangeM,
          placement_rng);
    }
    case TopologyKind::kGrid: {
      phy::Topology topo(spec.net_size, kRangeM);
      const auto cols = std::max<std::size_t>(1, spec.grid_cols);
      for (core::NodeId i = 0; i < spec.net_size; ++i) {
        const double x = static_cast<double>(i % cols) * kSpacingM;
        const double y = static_cast<double>(i / cols) * kSpacingM;
        topo.set_position(i, {x, y});
      }
      return topo;
    }
  }
  throw std::invalid_argument("scenario: unknown topology kind");
}

namespace {

// The waypoint clip box: the random field's side, or the placed extent
// for deterministic layouts (mobile chains/grids are new combinations —
// no paper baseline constrains them).
double mobility_field_m(const ScenarioSpec& spec) {
  switch (spec.topology) {
    case TopologyKind::kRandom:
      return random_field_side_m(spec.net_size);
    case TopologyKind::kLinear:
      return kSpacingM * static_cast<double>(spec.net_size - 1);
    case TopologyKind::kGrid: {
      const auto cols = std::max<std::size_t>(1, spec.grid_cols);
      const auto rows = (spec.net_size + cols - 1) / cols;
      return kSpacingM * static_cast<double>(std::max(cols, rows) - 1);
    }
  }
  return random_field_side_m(spec.net_size);
}

void apply_workload(const ScenarioSpec& spec, FlowManager& fm) {
  const WorkloadSpec& w = spec.workload;
  FlowOptions opt;
  opt.loss_tolerance = w.loss_tolerance;
  const std::size_t n = spec.net_size;
  switch (w.kind) {
    case WorkloadKind::kManual:
      return;
    case WorkloadKind::kEnds: {
      const auto last = static_cast<core::NodeId>(n - 1);
      for (std::size_t i = 0; i < w.n_flows; ++i) {
        const bool forward = (i % 2 == 0);
        fm.create(forward ? 0 : last, forward ? last : 0, w.transfer_packets,
                  w.start_delay_s + static_cast<double>(i) * w.stagger_s,
                  opt);
      }
      return;
    }
    case WorkloadKind::kRandomPairs: {
      sim::Rng rng(spec.seed);
      auto fr = rng.derive("flow-endpoints");
      for (std::size_t i = 0; i < w.n_flows; ++i) {
        const auto a = static_cast<core::NodeId>(fr.integer(n));
        auto b = static_cast<core::NodeId>(fr.integer(n));
        if (a == b) b = static_cast<core::NodeId>((b + 1) % n);
        fm.create(a, b, w.transfer_packets, w.start_delay_s, opt);
      }
      return;
    }
    case WorkloadKind::kPoisson: {
      sim::Rng rng(spec.seed);
      auto arr = rng.derive("arrivals");
      for (core::NodeId src = 0; src < n; ++src) {
        double t = arr.exponential(w.mean_interarrival_s);
        while (t < w.arrival_window_s) {
          auto dst = static_cast<core::NodeId>(arr.integer(n));
          if (dst == src) dst = static_cast<core::NodeId>((dst + 1) % n);
          fm.create(src, dst, w.transfer_packets, t, opt);
          t += arr.exponential(w.mean_interarrival_s);
        }
      }
      return;
    }
    case WorkloadKind::kOnOff: {
      // Bursty sources: each of the n_flows sources holds one random
      // (src, dst) pair and fires a bounded `transfer`-packet burst at
      // exponential gaps — the off period is whatever remains of the gap
      // after the burst drains.
      if (w.transfer_packets == 0)
        throw std::invalid_argument(
            "scenario: on_off workload needs transfer > 0 "
            "(the burst size in packets)");
      sim::Rng rng(spec.seed);
      auto br = rng.derive("bursts");
      for (std::size_t i = 0; i < w.n_flows; ++i) {
        const auto a = static_cast<core::NodeId>(br.integer(n));
        auto b = static_cast<core::NodeId>(br.integer(n));
        if (a == b) b = static_cast<core::NodeId>((b + 1) % n);
        double t = w.start_delay_s + br.exponential(w.mean_burst_gap_s);
        while (t < w.start_delay_s + w.arrival_window_s) {
          fm.create(a, b, w.transfer_packets, t, opt);
          t += br.exponential(w.mean_burst_gap_s);
        }
      }
      return;
    }
    case WorkloadKind::kFanIn: {
      // Many-flow convergence: fan_in distinct random senders all target
      // node 0. The sink-side stack (MAC queue, SNACK service, cache) is
      // the bottleneck under test.
      if (w.fan_in > n - 1)
        throw std::invalid_argument(
            "scenario: fan_in must be at most net_size - 1");
      sim::Rng rng(spec.seed);
      auto fr = rng.derive("fan-in");
      std::vector<bool> used(n, false);
      used[0] = true;
      for (std::size_t i = 0; i < w.fan_in; ++i) {
        core::NodeId src;
        do {
          src = static_cast<core::NodeId>(fr.integer(n));
        } while (used[src]);
        used[src] = true;
        fm.create(src, 0, w.transfer_packets,
                  w.start_delay_s + static_cast<double>(i) * w.stagger_s,
                  opt);
      }
      return;
    }
  }
}

}  // namespace

Scenario build(const ScenarioSpec& spec) {
  // Programmatically assembled specs bypass the parser; re-validate.
  const auto verr = validate_spec(spec);
  if (!verr.empty()) throw std::invalid_argument(verr);
  auto cfg = make_network_config(spec);
  auto topo = make_topology(spec);
  if (spec.speed_mps > 0.0) {
    phy::MobilityConfig mob;
    mob.speed_mps = spec.speed_mps;
    mob.field_m = mobility_field_m(spec);
    cfg.mobility = mob;
  }
  Scenario s;
  s.network = std::make_unique<net::Network>(std::move(topo), cfg);
  s.flows = std::make_unique<FlowManager>(*s.network, spec.proto);
  apply_workload(spec, *s.flows);
  return s;
}

}  // namespace jtp::exp
