// PacketPool: freelist-recycled packet slots with RAII handles.
//
// The delivery pipeline moves packets by PacketPtr — a unique-ownership
// handle into a pool slot — instead of copying ~multi-hundred-byte
// Packet values through MAC queues and delivery events. Endpoints
// acquire a slot when they create a packet; the handle then rides the
// whole path (node send -> MAC transmit ring -> delivery event -> next
// node) untouched, and the slot returns to the freelist when the packet
// is consumed or dropped. In the steady state no packet on the pipeline
// touches the heap; PoolStats::high_water pins the claim.
//
// Threading/lifetime: a pool belongs to one simulation (one Network /
// one Env), which belongs to one thread — pools are never shared across
// threads. The pool must outlive every handle, including handles
// captured in still-pending simulator events; aggregates therefore
// declare the pool before the Simulator (see net::Network).
#pragma once

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "core/packet.h"
#include "sim/stats.h"

namespace jtp::core {

using sim::PoolStats;

class PacketPool;

// Unique handle to a pooled Packet. Move-only; releasing (destruction or
// reassignment) returns the slot to its pool.
class PacketPtr {
 public:
  PacketPtr() = default;
  PacketPtr(PacketPtr&& o) noexcept : p_(o.p_), pool_(o.pool_) {
    o.p_ = nullptr;
    o.pool_ = nullptr;
  }
  PacketPtr& operator=(PacketPtr&& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      pool_ = o.pool_;
      o.p_ = nullptr;
      o.pool_ = nullptr;
    }
    return *this;
  }
  PacketPtr(const PacketPtr&) = delete;
  PacketPtr& operator=(const PacketPtr&) = delete;
  ~PacketPtr() { release(); }

  explicit operator bool() const { return p_ != nullptr; }
  Packet& operator*() const { return *p_; }
  Packet* operator->() const { return p_; }
  Packet* get() const { return p_; }

  void reset() { release(); }

 private:
  friend class PacketPool;
  PacketPtr(Packet* p, PacketPool* pool) : p_(p), pool_(pool) {}
  inline void release();

  Packet* p_ = nullptr;
  PacketPool* pool_ = nullptr;
};

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool() {
    assert(stats_.in_use == 0 && "packet handles outlived their pool");
  }

  // A fresh default-initialized packet.
  PacketPtr make() {
    Packet* p = acquire();
    *p = Packet{};
    return PacketPtr(p, this);
  }
  // Move a stack-built packet into a pooled slot.
  PacketPtr make(Packet&& proto) {
    Packet* p = acquire();
    *p = std::move(proto);
    return PacketPtr(p, this);
  }
  // Clone (e.g. a cached header being re-sent).
  PacketPtr make(const Packet& proto) {
    Packet* p = acquire();
    *p = proto;
    return PacketPtr(p, this);
  }
  PacketPtr make(const PacketHeader& h) {
    Packet* p = acquire();
    static_cast<PacketHeader&>(*p) = h;
    p->ack.reset();
    return PacketPtr(p, this);
  }

  const PoolStats& stats() const { return stats_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  friend class PacketPtr;
  static constexpr std::size_t kChunkPackets = 64;

  Packet* acquire() {
    if (free_.empty()) {
      chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
      Packet* base = chunks_.back().get();
      free_.reserve(chunks_.size() * kChunkPackets);
      for (std::size_t i = 0; i < kChunkPackets; ++i)
        free_.push_back(base + i);
      stats_.capacity += kChunkPackets;
      ++stats_.heap_allocs;
    } else {
      ++stats_.reuses;
    }
    Packet* p = free_.back();
    free_.pop_back();
    ++stats_.in_use;
    if (stats_.in_use > stats_.high_water) stats_.high_water = stats_.in_use;
    return p;
  }

  void release(Packet* p) {
    assert(stats_.in_use > 0);
    --stats_.in_use;
    free_.push_back(p);
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  PoolStats stats_;
};

inline void PacketPtr::release() {
  if (p_ != nullptr) {
    pool_->release(p_);
    p_ = nullptr;
    pool_ = nullptr;
  }
}

}  // namespace jtp::core
