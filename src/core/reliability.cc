#include "core/reliability.h"

#include <cmath>
#include <stdexcept>

namespace jtp::core {

double per_link_success_target(double loss_tolerance, int remaining_hops) {
  if (remaining_hops < 1)
    throw std::invalid_argument("per_link_success_target: hops < 1");
  const double lt = detail::clamp01(loss_tolerance);
  // (1 - lt)^(1/H): with lt = 0 the target is full reliability on every link.
  return std::pow(1.0 - lt, 1.0 / static_cast<double>(remaining_hops));
}

int attempt_budget(double q_target, double p_link_loss, int max_attempts) {
  if (max_attempts < 1)
    throw std::invalid_argument("attempt_budget: max_attempts < 1");
  const double q = detail::clamp01(q_target);
  const double p = detail::clamp01(p_link_loss);
  if (p <= 0.0) return 1;               // lossless link: one attempt suffices
  if (q >= 1.0) return max_attempts;    // full reliability: spend the cap
  if (q <= 0.0) return 1;
  // M = log(1-q)/log(p); both logs are negative, ratio positive.
  const double m = std::log(1.0 - q) / std::log(p);
  const int up = static_cast<int>(std::ceil(m - 1e-12));
  return std::clamp(up, 1, max_attempts);
}

double achieved_link_success(double p_link_loss, int attempts) {
  if (attempts < 1)
    throw std::invalid_argument("achieved_link_success: attempts < 1");
  const double p = detail::clamp01(p_link_loss);
  return 1.0 - std::pow(p, static_cast<double>(attempts));
}

double update_loss_tolerance(double loss_tolerance, double q_achieved) {
  const double lt = detail::clamp01(loss_tolerance);
  if (q_achieved <= 0.0) return 1.0;  // link is hopeless; waive the rest
  // lt' = 1 - (1-lt)/q. When the link over-achieves (q > 1-lt), the raw
  // value goes negative: downstream owes *more* reliability than exists.
  // Clamp to 0 (full reliability downstream).
  return detail::clamp01(1.0 - (1.0 - lt) / q_achieved);
}

double end_to_end_success(double q_per_link, int hops) {
  if (hops < 0) throw std::invalid_argument("end_to_end_success: hops < 0");
  return std::pow(detail::clamp01(q_per_link), static_cast<double>(hops));
}

}  // namespace jtp::core
