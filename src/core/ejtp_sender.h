// eJTP sender (paper §2, §4.2, §5).
//
// The source is deliberately dumb: all transmission parameters — sending
// rate, retransmission requests, energy budget, feedback timeout — are
// dictated by the destination through ACKs. The sender:
//   * paces data packets at the advertised rate;
//   * buffers unacknowledged packets and releases them only on cumulative
//     acknowledgment (end-to-end principle: caches are an optimization,
//     the source keeps the authoritative copy);
//   * retransmits only sequence numbers still listed in SNACK.missing
//     after in-network caches had their chance;
//   * backs off for tb = Σ s_j / r(t) whenever the ACK reports N locally
//     recovered packets of sizes s_j (fairness, §4.2);
//   * multiplicatively backs off its rate when an expected ACK fails to
//     arrive (feedback-loss robustness, §2.1.2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "core/env.h"
#include "core/packet.h"
#include "core/transport.h"
#include "core/types.h"

namespace jtp::core {

struct SenderConfig {
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t payload_bytes = kDefaultPayloadBytes;
  double loss_tolerance = 0.0;        // application reliability target
  double initial_rate_pps = 1.0;
  Joules initial_energy_budget = 0.0; // 0 => unbudgeted until first ACK
  double kd = 0.75;                   // rate back-off on missing feedback
  double min_rate_pps = 0.1;
  // Tolerate this × the advertised feedback period of ACK silence before
  // backing the rate off. Must absorb ACK queueing delay across long
  // backlogged paths, or the watchdog punishes healthy connections.
  double watchdog_margin = 2.5;
  // Rate decreases are adopted verbatim; increases are bounded to this
  // factor per ACK. After a congestion collapse every competing sender
  // sees the same freshly-idle path — jumping straight to the advertised
  // rate re-congests it in lock-step.
  double max_increase_factor = 1.5;
  double default_timeout_s = 10.0;    // before the first ACK arrives
  std::uint64_t window_cap_packets = 4000;  // bound on unreleased buffer
  bool backoff_for_local_recovery = true;   // ablation switch (Fig. 5)
};

class EjtpSender final : public TransportSender {
 public:
  // `sink` outlives the sender; packets handed to it enter the node stack.
  EjtpSender(Env& env, PacketSink& sink, SenderConfig cfg);
  ~EjtpSender() override;
  EjtpSender(const EjtpSender&) = delete;
  EjtpSender& operator=(const EjtpSender&) = delete;

  // Starts a bulk transfer of `total_packets` (0 = unbounded/long-lived).
  void start(std::uint64_t total_packets) override;
  void stop() override;

  // Called by the node when an ACK for this flow reaches the source.
  void on_ack(const Packet& ack) override;

  bool finished() const override;
  void set_on_complete(std::function<void()> cb) override {
    on_complete_ = std::move(cb);
  }

  // --- instrumentation ---
  double rate_pps() const { return rate_pps_; }
  std::uint64_t data_packets_sent() const override { return data_sent_; }
  std::uint64_t source_retransmissions() const override {
    return source_rtx_;
  }
  std::uint64_t locally_recovered_reported() const { return local_recovered_; }
  std::uint64_t acks_received() const { return acks_received_; }
  std::uint64_t rate_backoffs() const { return watchdog_backoffs_; }
  std::uint64_t tail_retransmissions() const { return tail_rtx_; }
  double total_backoff_s() const { return total_backoff_s_; }
  SeqNo next_new_seq() const { return next_seq_; }
  SeqNo cumulative_ack() const { return cum_ack_; }

 private:
  void pace();                 // pacing-timer body: emit one packet
  void arm_pacing(double extra_delay = 0.0);
  void arm_watchdog();
  void watchdog_fire();
  PacketPtr next_packet();  // null when nothing is due
  PacketPtr make_data(SeqNo seq, bool is_rtx);
  void check_complete();

  Env& env_;
  PacketSink& sink_;
  SenderConfig cfg_;

  bool running_ = false;
  std::uint64_t total_packets_ = 0;  // 0 = unbounded
  SeqNo next_seq_ = 0;
  SeqNo cum_ack_ = 0;
  double rate_pps_;
  Joules energy_budget_;
  double ack_timeout_s_;
  double last_ack_time_ = -1.0;
  double last_progress_time_ = 0.0;
  double last_tail_rtx_ = 0.0;
  std::uint64_t last_ack_serial_ = 0;

  std::map<SeqNo, std::uint32_t> unacked_;  // seq -> payload bytes
  std::deque<SeqNo> rtx_queue_;             // SNACKed, pending retransmit
  double backoff_until_ = 0.0;

  TimerId pacing_timer_ = 0;
  bool pacing_armed_ = false;
  TimerId watchdog_timer_ = 0;
  bool watchdog_armed_ = false;

  std::function<void()> on_complete_;
  bool complete_reported_ = false;

  std::uint64_t data_sent_ = 0;
  std::uint64_t source_rtx_ = 0;
  std::uint64_t local_recovered_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t watchdog_backoffs_ = 0;
  std::uint64_t tail_rtx_ = 0;
  double total_backoff_s_ = 0.0;
  std::uint64_t packet_uid_seed_ = 0;
};

}  // namespace jtp::core
