#include "core/path_monitor.h"

#include <cmath>
#include <stdexcept>

namespace jtp::core {

PathMonitor::PathMonitor(PathMonitorConfig cfg) : cfg_(cfg) {
  if (cfg.alpha_stable <= 0 || cfg.alpha_stable > 1 || cfg.alpha_agile <= 0 ||
      cfg.alpha_agile > 1 || cfg.beta <= 0 || cfg.beta > 1)
    throw std::invalid_argument("PathMonitor: weights must be in (0,1]");
  if (cfg.outlier_run_to_trigger < 1)
    throw std::invalid_argument("PathMonitor: outlier run must be >= 1");
}

double PathMonitor::ucl() const {
  return mean_ + cfg_.limit_sigmas * range_ / cfg_.d2;
}

double PathMonitor::lcl() const {
  return mean_ - cfg_.limit_sigmas * range_ / cfg_.d2;
}

void PathMonitor::reset() {
  have_mean_ = false;
  agile_ = false;
  trigger_armed_ = true;
  outlier_run_ = 0;
  n_ = 0;
  mean_ = range_ = prev_sample_ = 0.0;
}

PathMonitor::Observation PathMonitor::add(double sample) {
  Observation obs;
  ++n_;
  last_sample_ = sample;
  if (!have_mean_) {
    // Paper: initially x̄ = x0 and R̄ = x0/2.
    mean_ = sample;
    range_ = std::abs(sample) / 2.0;
    prev_sample_ = sample;
    have_mean_ = true;
    obs.agile = agile_;
    return obs;
  }

  const bool outlier = sample > ucl() || sample < lcl();
  obs.outlier = outlier;

  // Filtering discipline:
  //  * in-control sample: blend with the current filter's weight, update
  //    the moving range (paper: R̄ "calculated only from samples within
  //    the control limits"), reset the outlier run, flop back to stable;
  //  * outlier while stable: do NOT pollute the mean — an isolated spike
  //    must leave the estimate intact. Count it toward the trigger run;
  //  * outlier while agile (post-trigger catch-up): blend with the agile
  //    weight so x̄ chases the new level quickly.
  if (!outlier) {
    const double alpha = agile_ ? cfg_.alpha_agile : cfg_.alpha_stable;
    mean_ = (1.0 - alpha) * mean_ + alpha * sample;
    range_ = (1.0 - cfg_.beta) * range_ +
             cfg_.beta * std::abs(sample - prev_sample_);
    prev_sample_ = sample;
    outlier_run_ = 0;
    agile_ = false;
    trigger_armed_ = true;  // excursion over: a new change may trigger again
    obs.agile = agile_;
    return obs;
  }

  if (agile_) {
    mean_ = (1.0 - cfg_.alpha_agile) * mean_ + cfg_.alpha_agile * sample;
    prev_sample_ = sample;
  }
  ++outlier_run_;
  if (outlier_run_ >= cfg_.outlier_run_to_trigger) {
    // One trigger per excursion: re-arms only after a sample falls back
    // inside the control limits (the flip-flop "flop" condition). This
    // keeps a long excursion from turning the early-feedback channel into
    // an ACK storm while the agile filter is still catching up.
    if (trigger_armed_) {
      obs.trigger = true;
      ++triggers_;
      trigger_armed_ = false;
    }
    if (!agile_) {
      // Flip to agile and seed the catch-up with this sample.
      agile_ = true;
      mean_ = (1.0 - cfg_.alpha_agile) * mean_ + cfg_.alpha_agile * sample;
      prev_sample_ = sample;
    }
    outlier_run_ = 0;
  }
  obs.agile = agile_;
  return obs;
}

}  // namespace jtp::core
