#include "core/analysis.h"

#include <cmath>
#include <stdexcept>

#include "sim/random.h"

namespace jtp::core {

namespace {
void check_args(int k, int hops, double p, int attempts = 1) {
  if (k < 0) throw std::invalid_argument("k < 0");
  if (hops < 1) throw std::invalid_argument("hops < 1");
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("p outside [0,1)");
  if (attempts < 1) throw std::invalid_argument("attempts < 1");
}
}  // namespace

double expected_tx_with_caching(int k, int hops, double p_loss) {
  check_args(k, hops, p_loss);
  return static_cast<double>(k) * hops / (1.0 - p_loss);
}

double expected_link_tx_capped(double p_loss, int attempts) {
  check_args(1, 1, p_loss, attempts);
  return (1.0 - std::pow(p_loss, attempts)) / (1.0 - p_loss);
}

double expected_tx_without_caching_exact(int k, int hops, double p_loss,
                                         int attempts) {
  check_args(k, hops, p_loss, attempts);
  const double q = 1.0 - std::pow(p_loss, attempts);  // per-link success
  const double q_e2e = std::pow(q, hops);
  const double e_s = static_cast<double>(k) / q_e2e;  // source sends (eq. E[S])
  const double e_tl = expected_link_tx_capped(p_loss, attempts);
  double sum_qi = 0.0;
  for (int i = 0; i < hops; ++i) sum_qi += std::pow(q, i);
  return e_s * sum_qi * e_tl;
}

double expected_tx_without_caching_approx(int k, int hops, double p_loss,
                                          int attempts) {
  check_args(k, hops, p_loss, attempts);
  const double q = 1.0 - std::pow(p_loss, attempts);
  return static_cast<double>(k) * hops /
         (std::pow(q, hops - 1) * (1.0 - p_loss));
}

double caching_gain(int hops, double p_loss, int attempts) {
  check_args(1, hops, p_loss, attempts);
  const double q = 1.0 - std::pow(p_loss, attempts);
  return 1.0 / std::pow(q, hops - 1);
}

double simulate_tx_without_caching(int k, int hops, double p_loss,
                                   int attempts, sim::Rng& rng) {
  check_args(k, hops, p_loss, attempts);
  std::uint64_t tx = 0;
  for (int pkt = 0; pkt < k; ++pkt) {
    bool delivered = false;
    while (!delivered) {
      delivered = true;
      for (int h = 0; h < hops; ++h) {
        bool hop_ok = false;
        for (int a = 0; a < attempts; ++a) {
          ++tx;
          if (!rng.bernoulli(p_loss)) {
            hop_ok = true;
            break;
          }
        }
        if (!hop_ok) {
          delivered = false;  // end-to-end retransmission from the source
          break;
        }
      }
    }
  }
  return static_cast<double>(tx);
}

double simulate_tx_with_caching(int k, int hops, double p_loss,
                                sim::Rng& rng) {
  check_args(k, hops, p_loss);
  std::uint64_t tx = 0;
  for (int pkt = 0; pkt < k; ++pkt) {
    for (int h = 0; h < hops; ++h) {
      // Ideal caching: the upstream node repairs until the hop succeeds.
      tx += static_cast<std::uint64_t>(rng.geometric(1.0 - p_loss));
    }
  }
  return static_cast<double>(tx);
}

}  // namespace jtp::core
