#include "core/ejtp_sender.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace jtp::core {

EjtpSender::EjtpSender(Env& env, PacketSink& sink, SenderConfig cfg)
    : env_(env),
      sink_(sink),
      cfg_(cfg),
      rate_pps_(std::max(cfg.initial_rate_pps, cfg.min_rate_pps)),
      energy_budget_(cfg.initial_energy_budget),
      ack_timeout_s_(cfg.default_timeout_s) {}

EjtpSender::~EjtpSender() { stop(); }

void EjtpSender::start(std::uint64_t total_packets) {
  running_ = true;
  total_packets_ = total_packets;
  complete_reported_ = false;
  arm_pacing();
  arm_watchdog();
}

void EjtpSender::stop() {
  running_ = false;
  if (pacing_armed_) {
    env_.cancel(pacing_timer_);
    pacing_armed_ = false;
  }
  if (watchdog_armed_) {
    env_.cancel(watchdog_timer_);
    watchdog_armed_ = false;
  }
}

void EjtpSender::arm_pacing(double extra_delay) {
  if (!running_ || pacing_armed_) return;
  double delay = 1.0 / rate_pps_ + extra_delay;
  // Honor a pending fairness back-off window (§4.2).
  const double now = env_.now();
  if (backoff_until_ > now + delay) delay = backoff_until_ - now;
  pacing_armed_ = true;
  pacing_timer_ = env_.schedule(delay, [this] {
    pacing_armed_ = false;
    pace();
  });
}

PacketPtr EjtpSender::make_data(SeqNo seq, bool is_rtx) {
  PacketPtr p = env_.packet_pool().make();
  p->type = PacketType::kData;
  p->flow = cfg_.flow;
  p->src = cfg_.src;
  p->dst = cfg_.dst;
  p->seq = seq;
  p->payload_bytes = cfg_.payload_bytes;
  p->loss_tolerance = cfg_.loss_tolerance;
  p->energy_budget = energy_budget_;
  p->energy_used = 0.0;
  p->available_rate_pps =
      std::numeric_limits<double>::infinity();  // stamped along the path
  p->is_source_retransmission = is_rtx;
  p->uid = (static_cast<std::uint64_t>(cfg_.flow) << 40) ^ ++packet_uid_seed_;
  return p;
}

PacketPtr EjtpSender::next_packet() {
  // Source retransmissions take priority: the receiver explicitly asked.
  while (!rtx_queue_.empty()) {
    const SeqNo seq = rtx_queue_.front();
    rtx_queue_.pop_front();
    auto it = unacked_.find(seq);
    if (it == unacked_.end()) continue;  // acked/waived meanwhile
    ++source_rtx_;
    return make_data(seq, /*is_rtx=*/true);
  }
  const bool more_new =
      (total_packets_ == 0 || next_seq_ < total_packets_) &&
      (next_seq_ - cum_ack_) < cfg_.window_cap_packets;
  if (!more_new) return {};
  const SeqNo seq = next_seq_++;
  unacked_.emplace(seq, cfg_.payload_bytes);
  return make_data(seq, /*is_rtx=*/false);
}

void EjtpSender::pace() {
  if (!running_) return;
  if (auto p = next_packet()) {
    ++data_sent_;
    sink_.send(std::move(p));
    arm_pacing();
    return;
  }
  if (finished()) {
    check_complete();
    return;
  }
  // Nothing new to send but the transfer is not acknowledged: this is the
  // tail-loss case. A lost *final* packet never enters the receiver's
  // sequence horizon, so no SNACK will ever name it — only the source can
  // notice. After ~2 feedback periods without cumulative progress,
  // retransmit the oldest outstanding packet.
  if (total_packets_ != 0 && next_seq_ >= total_packets_ &&
      !unacked_.empty()) {
    const double now = env_.now();
    const double stall = now - std::max(last_progress_time_, last_tail_rtx_);
    if (stall > 2.0 * ack_timeout_s_) {
      last_tail_rtx_ = now;
      if (std::find(rtx_queue_.begin(), rtx_queue_.end(),
                    unacked_.begin()->first) == rtx_queue_.end())
        rtx_queue_.push_back(unacked_.begin()->first);
      ++tail_rtx_;
    }
  }
  // Idle-poll at the pacing rate. Cheap in the simulator and keeps the
  // sender reactive without a separate wakeup channel.
  arm_pacing();
}

void EjtpSender::on_ack(const Packet& ack) {
  assert(ack.is_ack() && ack.ack);
  const AckHeader& h = *ack.ack;
  // ACKs can be reordered by retries along the reverse path; an older ACK
  // carries stale rate/energy/SNACK state and must not override a newer
  // one (its cumulative ack is monotone and harmless, but nothing else is).
  if (h.ack_serial != 0 && h.ack_serial <= last_ack_serial_) {
    cum_ack_ = std::max(cum_ack_, h.cumulative_ack);
    unacked_.erase(unacked_.begin(), unacked_.lower_bound(cum_ack_));
    check_complete();
    return;
  }
  last_ack_serial_ = h.ack_serial;
  ++acks_received_;
  last_ack_time_ = env_.now();

  // Release everything below the cumulative ack (delivered or waived).
  if (h.cumulative_ack > cum_ack_) {
    cum_ack_ = h.cumulative_ack;
    last_progress_time_ = env_.now();
  }
  unacked_.erase(unacked_.begin(), unacked_.lower_bound(cum_ack_));

  // Adopt destination-dictated parameters (decrease fast, increase slow).
  if (h.advertised_rate_pps > 0.0) {
    double target = h.advertised_rate_pps;
    if (target > rate_pps_)
      target = std::min(target, rate_pps_ * cfg_.max_increase_factor);
    rate_pps_ = std::max(target, cfg_.min_rate_pps);
  }
  if (h.energy_budget > 0.0) energy_budget_ = h.energy_budget;
  if (h.sender_timeout_s > 0.0) ack_timeout_s_ = h.sender_timeout_s;

  // Queue source retransmissions for seqs no cache could supply.
  for (SeqNo seq : h.snack.missing) {
    if (seq < cum_ack_ || !unacked_.count(seq)) continue;
    if (std::find(rtx_queue_.begin(), rtx_queue_.end(), seq) ==
        rtx_queue_.end())
      rtx_queue_.push_back(seq);
  }

  // Fairness back-off for in-network retransmissions made on our behalf:
  // tb = Σ s_j / r(t)  (§4.2).
  if (!h.snack.locally_recovered.empty()) {
    local_recovered_ += h.snack.locally_recovered.size();
    if (cfg_.backoff_for_local_recovery) {
      double bytes = 0.0;
      for (SeqNo seq : h.snack.locally_recovered) {
        auto it = unacked_.find(seq);
        bytes += (it != unacked_.end()) ? it->second : cfg_.payload_bytes;
      }
      const double tb = (bytes / cfg_.payload_bytes) / rate_pps_;
      backoff_until_ = std::max(backoff_until_, env_.now() + tb);
      total_backoff_s_ += tb;
    }
  }

  // Re-pace immediately at the new rate.
  if (pacing_armed_) {
    env_.cancel(pacing_timer_);
    pacing_armed_ = false;
  }
  arm_pacing();
  check_complete();
}

void EjtpSender::arm_watchdog() {
  if (!running_ || watchdog_armed_) return;
  watchdog_armed_ = true;
  watchdog_timer_ =
      env_.schedule(cfg_.watchdog_margin * ack_timeout_s_, [this] {
        watchdog_armed_ = false;
        watchdog_fire();
      });
}

void EjtpSender::watchdog_fire() {
  if (!running_) return;
  const double silence =
      last_ack_time_ < 0 ? env_.now() : env_.now() - last_ack_time_;
  if (silence >= cfg_.watchdog_margin * ack_timeout_s_ && data_sent_ > 0) {
    // Feedback went missing: rate-based control is vulnerable to this, so
    // back off multiplicatively until the receiver is heard again.
    rate_pps_ = std::max(rate_pps_ * cfg_.kd, cfg_.min_rate_pps);
    ++watchdog_backoffs_;
  }
  arm_watchdog();
}

bool EjtpSender::finished() const {
  return total_packets_ != 0 && cum_ack_ >= total_packets_;
}

void EjtpSender::check_complete() {
  if (!finished() || complete_reported_) return;
  complete_reported_ = true;
  if (on_complete_) on_complete_();
}

}  // namespace jtp::core
