#include "core/cache.h"

#include <stdexcept>

namespace jtp::core {

namespace {
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

PacketCache::PacketCache(std::size_t capacity_packets)
    : capacity_(capacity_packets) {
  if (capacity_packets == 0)
    throw std::invalid_argument("PacketCache: capacity must be >= 1");
  entries_.resize(capacity_);
  // Chain all entries into the freelist (via chain_next).
  for (std::size_t i = 0; i < capacity_; ++i)
    entries_[i].chain_next =
        i + 1 < capacity_ ? static_cast<std::uint32_t>(i + 1) : kNil;
  const std::size_t nbuckets = next_pow2(2 * capacity_);
  buckets_.assign(nbuckets, kNil);
  bucket_mask_ = nbuckets - 1;
}

std::uint32_t PacketCache::find(FlowId flow, SeqNo seq) const {
  for (std::uint32_t i = buckets_[bucket_of(flow, seq)]; i != kNil;
       i = entries_[i].chain_next) {
    const PacketHeader& p = entries_[i].packet;
    if (p.flow == flow && p.seq == seq) return i;
  }
  return kNil;
}

void PacketCache::lru_unlink(std::uint32_t idx) {
  Entry& e = entries_[idx];
  if (e.lru_prev != kNil)
    entries_[e.lru_prev].lru_next = e.lru_next;
  else
    lru_head_ = e.lru_next;
  if (e.lru_next != kNil)
    entries_[e.lru_next].lru_prev = e.lru_prev;
  else
    lru_tail_ = e.lru_prev;
  e.lru_prev = e.lru_next = kNil;
}

void PacketCache::lru_push_front(std::uint32_t idx) {
  Entry& e = entries_[idx];
  e.lru_prev = kNil;
  e.lru_next = lru_head_;
  if (lru_head_ != kNil) entries_[lru_head_].lru_prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == kNil) lru_tail_ = idx;
}

void PacketCache::chain_remove(std::uint32_t idx) {
  const Entry& e = entries_[idx];
  std::uint32_t* link = &buckets_[bucket_of(e.packet.flow, e.packet.seq)];
  while (*link != idx) link = &entries_[*link].chain_next;
  *link = e.chain_next;
}

void PacketCache::remove_entry(std::uint32_t idx) {
  chain_remove(idx);
  lru_unlink(idx);
  entries_[idx].chain_next = free_head_;
  free_head_ = idx;
  --live_;
}

void PacketCache::evict_one() {
  remove_entry(lru_tail_);
  ++evictions_;
}

void PacketCache::insert(const PacketHeader& p) {
  if (!p.is_data()) return;  // only data packets are cacheable
  ++insertions_;
  if (const std::uint32_t idx = find(p.flow, p.seq); idx != kNil) {
    Entry& e = entries_[idx];
    e.packet = p;
    e.packet.is_source_retransmission = false;
    e.packet.is_cache_retransmission = false;
    lru_unlink(idx);
    lru_push_front(idx);
    return;
  }
  if (live_ >= capacity_) evict_one();
  const std::uint32_t idx = free_head_;
  Entry& e = entries_[idx];
  free_head_ = e.chain_next;
  e.packet = p;
  e.packet.is_source_retransmission = false;
  e.packet.is_cache_retransmission = false;
  const std::size_t b = bucket_of(p.flow, p.seq);
  e.chain_next = buckets_[b];
  buckets_[b] = idx;
  lru_push_front(idx);
  ++live_;
}

const PacketHeader* PacketCache::lookup(FlowId flow, SeqNo seq) {
  const std::uint32_t idx = find(flow, seq);
  if (idx == kNil) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_unlink(idx);
  lru_push_front(idx);
  return &entries_[idx].packet;
}

bool PacketCache::contains(FlowId flow, SeqNo seq) const {
  return find(flow, seq) != kNil;
}

void PacketCache::erase_flow(FlowId flow) {
  std::uint32_t i = lru_head_;
  while (i != kNil) {
    const std::uint32_t next = entries_[i].lru_next;
    if (entries_[i].packet.flow == flow) remove_entry(i);
    i = next;
  }
}

}  // namespace jtp::core
