#include "core/cache.h"

#include <stdexcept>

namespace jtp::core {

PacketCache::PacketCache(std::size_t capacity_packets)
    : capacity_(capacity_packets) {
  if (capacity_packets == 0)
    throw std::invalid_argument("PacketCache: capacity must be >= 1");
}

void PacketCache::touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru_pos);
}

void PacketCache::evict_one() {
  const Key victim = lru_.back();
  lru_.pop_back();
  map_.erase(victim);
  ++evictions_;
}

void PacketCache::insert(const Packet& p) {
  if (!p.is_data()) return;  // only data packets are cacheable
  const Key key{p.flow, p.seq};
  ++insertions_;
  if (auto it = map_.find(key); it != map_.end()) {
    it->second.packet = p;
    it->second.packet.is_source_retransmission = false;
    it->second.packet.is_cache_retransmission = false;
    touch(it->second);
    return;
  }
  if (map_.size() >= capacity_) evict_one();
  lru_.push_front(key);
  Entry e{p, lru_.begin()};
  e.packet.is_source_retransmission = false;
  e.packet.is_cache_retransmission = false;
  map_.emplace(key, std::move(e));
}

std::optional<Packet> PacketCache::lookup(FlowId flow, SeqNo seq) {
  const Key key{flow, seq};
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  touch(it->second);
  return it->second.packet;
}

bool PacketCache::contains(FlowId flow, SeqNo seq) const {
  return map_.count(Key{flow, seq});
}

void PacketCache::erase_flow(FlowId flow) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->flow == flow) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace jtp::core
