// JTP-DR: the delivery-rate-adaptive JTP variant (Proto::kJtpDr).
//
// Classic JTP's PI²/MD controller runs at the destination and consumes
// the min-available-rate stamp the path writes into data headers. This
// variant keeps the entire eJTP machinery — SNACK recovery, energy
// budgets, fairness back-off, feedback watchdog — but swaps the
// controller's input Ā for a sender-side delivery-rate estimate built
// from per-ACK RateSamples (core/rate_sample.h): every data transmit is
// snapshotted, every fresh ACK's cumulative advance generates a
// bw = min(send_rate, ack_rate) sample, and a windowed max-filter turns
// the samples into Ā.
//
// Implementation is pure composition around the stock EjtpSender: data
// packets pass through a tap sink (transmit snapshots), and each fresh
// ACK has its destination-advertised rate rewritten to the local PI²/MD
// output before the inner sender adopts it. No eJTP code is modified;
// the variant is one TransportRegistry registration (net/transport.cc).
#pragma once

#include <cstdint>

#include "core/ejtp_sender.h"
#include "core/rate_controller.h"
#include "core/rate_sample.h"

namespace jtp::core {

struct JtpDrConfig {
  // PI²/MD knobs for the local controller. The registry factory sets
  // delta_pps low (a delivery-collapse guard, ~2% of the node share)
  // rather than classic JTP's 15% headroom target: delivery rate, unlike
  // the path's idle-rate stamp, does not shrink as utilization rises, so
  // a high δ would read normal sharing as congestion.
  RateControllerConfig rate;
  // For the same reason the controller's increase branch needs a
  // convergence point the input itself cannot provide: sending above
  // path capacity leaves the delivery rate pinned at capacity (Ā never
  // drops below δ), so PI² alone would ratchet to the static cap. The
  // controller rate is therefore re-capped every sample at
  // dr_gain × bw-estimate — the same "pace slightly above the measured
  // rate to probe" shape as BBR's probe gain — which makes competing
  // flows converge near their measured shares instead of all pinning at
  // node capacity.
  double dr_gain = 1.25;
  std::uint64_t bw_window_rounds = 10;
  double min_rtt_window_s = 30.0;
};

class JtpDrSender final : public TransportSender {
 public:
  JtpDrSender(Env& env, PacketSink& sink, SenderConfig cfg, JtpDrConfig dr);

  void start(std::uint64_t total_packets) override;
  void stop() override { inner_.stop(); }
  void on_ack(const Packet& ack) override;
  bool finished() const override { return inner_.finished(); }
  void set_on_complete(std::function<void()> cb) override {
    inner_.set_on_complete(std::move(cb));
  }

  std::uint64_t data_packets_sent() const override {
    return inner_.data_packets_sent();
  }
  std::uint64_t source_retransmissions() const override {
    return inner_.source_retransmissions();
  }

  // --- instrumentation ---
  double bw_estimate_pps() const { return bw_.bw_pps(); }
  bool has_bw_estimate() const { return bw_.has_estimate(); }
  double min_rtt_s() const { return rtt_.min_rtt_s(); }
  double controller_rate_pps() const { return ctl_.rate(); }
  std::uint64_t samples_taken() const { return sampler_.samples_taken(); }
  std::uint64_t delivery_rounds() const { return round_; }
  const EjtpSender& inner() const { return inner_; }

 private:
  // Interposed between the inner sender and the node: sees every data
  // packet at the instant it leaves, which is exactly when the sampler
  // must snapshot (delivered, delivered_time, first_sent_time,
  // app_limited).
  class TapSink final : public PacketSink {
   public:
    explicit TapSink(JtpDrSender& owner, PacketSink& out)
        : owner_(owner), out_(out) {}
    void send(PacketPtr p) override;

   private:
    JtpDrSender& owner_;
    PacketSink& out_;
  };

  void note_sent(SeqNo seq);

  Env& env_;
  JtpDrConfig dr_;
  RateSampler sampler_;
  BandwidthEstimator bw_;
  MinRttTracker rtt_;
  RateController ctl_;
  TapSink tap_;
  EjtpSender inner_;  // last: constructed against tap_

  std::uint64_t total_packets_ = 0;
  SeqNo cum_seen_ = 0;
  std::uint64_t last_serial_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t round_start_delivered_ = 0;
};

}  // namespace jtp::core
