// PI^2/MD sending-rate controller (paper §5.2.1, eqs. 9–10).
//
// Runs at the destination. Given the EWMA of the minimum available path
// rate Ā and a target headroom δ:
//   Ā > δ :  r <- r + KI·Ā/r        (inverse-proportional increase)
//   Ā ≤ δ :  r <- KD·r              (multiplicative decrease)
// Stability requires KI > 0 and KD < 1 (§5.2.2; Lyapunov argument).
// The output is additionally capped by the application's delivery rate.
#pragma once

namespace jtp::core {

struct RateControllerConfig {
  double ki = 0.5;             // 0 < KI < 1
  double kd = 0.75;            // 0 < KD < 1
  double delta_pps = 0.25;     // target available-rate headroom δ
  double min_rate_pps = 0.1;   // floor so a flow can always probe
  double max_rate_pps = 1e6;   // app/receiver delivery-rate cap
  double initial_rate_pps = 1.0;
  // The increase step KI·Ā/r explodes as r approaches the floor (a flow
  // coming out of back-off would leap from floor to cap in one update and
  // re-congest the path). The divisor is bounded below by this value,
  // capping a single step at KI·Ā/floor. Stability (§5.2.2) is
  // unaffected: the Lyapunov argument needs only a positive step below
  // capacity.
  double increase_divisor_floor = 1.0;
};

class RateController {
 public:
  explicit RateController(RateControllerConfig cfg = {});

  // One control iteration with the current available-rate estimate Ā.
  // Returns the new sending rate (pps).
  double update(double avg_available_pps);

  // Multiplicative back-off used when feedback goes missing (§2.1.2) —
  // same KD as the congestion branch.
  double backoff();

  double rate() const { return rate_; }
  void set_rate_cap(double cap_pps);
  const RateControllerConfig& config() const { return cfg_; }

 private:
  RateControllerConfig cfg_;
  double rate_;
};

}  // namespace jtp::core
