// Receiver-side sequence bookkeeping with loss-tolerance waiving.
//
// Tracks which sequence numbers have arrived, which are missing, and which
// missing ones the application has agreed to waive under its end-to-end
// loss tolerance (paper §3: the receiver requests retransmission "only for
// those missing packets that are important to the application").
//
// The waive policy is a running quota: a missing packet may be waived iff
// doing so keeps the waived fraction of all packets seen-or-waived at or
// below the tolerance. This is deterministic and keeps delivered data just
// above the application's requirement line (paper Fig. 3(b)).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/types.h"

namespace jtp::core {

class SeqTracker {
 public:
  explicit SeqTracker(double loss_tolerance = 0.0);

  // Records an arriving sequence number. Returns true if it was new
  // (not a duplicate, not already waived).
  bool receive(SeqNo seq);

  // Sequence numbers below this are all received or waived.
  SeqNo cumulative_ack() const { return base_; }

  // Highest sequence number received so far + 1 (0 if none).
  SeqNo horizon() const { return horizon_; }

  // Missing sequence numbers in [base_, horizon_) after applying the waive
  // quota: each gap is first considered for waiving; survivors are
  // returned (these go into the SNACK). Waived seqs advance the base as if
  // received. `max_count` caps the returned list (ACK header budget).
  //
  // `reorder_threshold` guards against requesting packets that are merely
  // still in flight: a gap is eligible only after at least that many
  // later packets have arrived since it appeared (0 = consider all gaps —
  // used for tail losses when the flow has gone quiet). Ineligible gaps
  // are neither waived nor returned.
  std::vector<SeqNo> missing_after_waive(std::size_t max_count,
                                         int reorder_threshold = 0);

  // Allocation-free variant for the feedback hot path: fills a
  // caller-owned buffer (cleared first; its capacity is reused).
  void missing_after_waive(std::vector<SeqNo>& out, std::size_t max_count,
                           int reorder_threshold = 0);

  // Missing without waiving anything (inspection / full-reliability mode).
  std::vector<SeqNo> missing() const;

  std::uint64_t received_count() const { return received_; }
  std::uint64_t waived_count() const { return waived_count_; }
  std::uint64_t duplicate_count() const { return duplicates_; }
  double loss_tolerance() const { return tolerance_; }

 private:
  bool can_waive_one() const;
  void advance_base();

  double tolerance_;
  SeqNo base_ = 0;     // all < base_ received or waived
  SeqNo horizon_ = 0;  // max received + 1
  std::set<SeqNo> out_of_order_;  // received, >= base_
  std::set<SeqNo> waived_;        // waived, >= base_
  std::uint64_t arrivals_ = 0;    // fresh receptions, for reorder gating
  std::map<SeqNo, std::uint64_t> gap_noticed_at_;  // gap -> arrivals_ then
  std::uint64_t received_ = 0;
  std::uint64_t waived_count_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace jtp::core
