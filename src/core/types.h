// Identifiers and small value types shared across the JTP stack.
#pragma once

#include <cstdint>
#include <limits>

namespace jtp::core {

using NodeId = std::uint32_t;
using FlowId = std::uint32_t;
using SeqNo = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Energy in joules.
using Joules = double;

// Rates are expressed in packets per second at the transport layer and in
// bits per second at the link layer; helpers below convert.
struct Bytes {
  std::uint32_t value = 0;
};

inline constexpr double bits(std::uint32_t bytes) { return 8.0 * bytes; }

}  // namespace jtp::core
