// Analytic models of in-network caching gain (paper §4.1, eqs. 5–6).
//
// E[T_tot^JTP]  = k·H/(1-p)                                  (eq. 5)
// E[T_tot^JNC] ≈ k·H / ((1-p^n)^{H-1} (1-p))                 (eq. 6)
// plus the exact (pre-approximation) JNC form and a Monte-Carlo
// cross-check used by tests and the analysis bench.
#pragma once

#include <cstdint>

namespace jtp::sim {
class Rng;
}

namespace jtp::core {

// Expected total node transmissions to deliver k packets over H hops with
// ideal in-network caching (infinite caches, symmetric path): eq. (5).
double expected_tx_with_caching(int k, int hops, double p_loss);

// Expected per-link transmissions when a packet enters a link with at most
// n attempts: E[T_l^JNC] = (1 - p^n)/(1 - p).
double expected_link_tx_capped(double p_loss, int attempts);

// Exact eq. (6) middle form: sum_{i=0}^{H-1} E[S]·q^i·E[T_l], with
// E[S] = k/q_e2e and q = 1 - p^n.
double expected_tx_without_caching_exact(int k, int hops, double p_loss,
                                         int attempts);

// The paper's closed-form approximation on the right of eq. (6).
double expected_tx_without_caching_approx(int k, int hops, double p_loss,
                                          int attempts);

// Ratio JNC/JTP ≈ 1/(1-p^n)^{H-1}: the factor caching saves.
double caching_gain(int hops, double p_loss, int attempts);

// Monte-Carlo estimate of total node transmissions without caching:
// each packet is attempted up to `attempts` times per hop; any hop failure
// restarts the packet from the source. Used to validate eq. (6).
double simulate_tx_without_caching(int k, int hops, double p_loss,
                                   int attempts, sim::Rng& rng);

// Monte-Carlo estimate with ideal caching: per-hop geometric repair.
double simulate_tx_with_caching(int k, int hops, double p_loss,
                                sim::Rng& rng);

}  // namespace jtp::core
