// In-network packet cache (paper §4).
//
// Every intermediate node keeps an LRU cache of traversing data packets so
// that a SNACK can be satisfied by the farthest-downstream node that still
// holds the packet, avoiding an end-to-end retransmission. "Recently
// manipulated" covers both insertion and a retransmission hit, so packets
// under active repair stay resident. Capacity is shared across flows.
//
// Storage: all entries live in a slab allocated once at construction —
// an intrusive doubly-linked LRU over slab indices plus a chained hash
// table (buckets sized 2× capacity, rounded to a power of two). Insert,
// lookup, and eviction perform no heap allocation; cached packets are
// bare PacketHeaders (only data packets are cacheable, and data packets
// carry no ack body).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/packet.h"
#include "core/types.h"

namespace jtp::core {

class PacketCache {
 public:
  explicit PacketCache(std::size_t capacity_packets);

  // Inserts (or refreshes) a copy of `p`. Duplicate (flow, seq) overwrites
  // and counts as a manipulation. Source/cache retransmission markers are
  // stripped: a cached copy is just a copy. Non-data packets are ignored.
  void insert(const PacketHeader& p);

  // Looks up (flow, seq); on hit, the entry is refreshed (LRU touch) and
  // a pointer to the cached header is returned (valid until the next
  // mutating call). Returns nullptr on miss.
  const PacketHeader* lookup(FlowId flow, SeqNo seq);

  // Non-refreshing probe, for tests/inspection.
  bool contains(FlowId flow, SeqNo seq) const;

  // Drops every entry of a flow (e.g. connection teardown).
  void erase_flow(FlowId flow);

  std::size_t size() const { return live_; }
  std::size_t capacity() const { return capacity_; }

  // Counters for the experiment harness.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t insertions() const { return insertions_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Entry {
    PacketHeader packet;
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
    std::uint32_t chain_next = kNil;  // hash chain; freelist link when free
  };

  static std::size_t hash_key(FlowId flow, SeqNo seq) {
    return static_cast<std::size_t>(
        std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(flow) << 32) ^
                                   (seq * 0x9e3779b97f4a7c15ULL)));
  }
  std::size_t bucket_of(FlowId flow, SeqNo seq) const {
    return hash_key(flow, seq) & bucket_mask_;
  }

  std::uint32_t find(FlowId flow, SeqNo seq) const;
  void lru_unlink(std::uint32_t idx);
  void lru_push_front(std::uint32_t idx);
  void chain_remove(std::uint32_t idx);
  void remove_entry(std::uint32_t idx);  // unlink + back to freelist
  void evict_one();

  std::size_t capacity_;
  std::vector<Entry> entries_;           // slab, size == capacity
  std::vector<std::uint32_t> buckets_;   // chain heads
  std::size_t bucket_mask_ = 0;
  std::uint32_t lru_head_ = kNil;  // most recently manipulated
  std::uint32_t lru_tail_ = kNil;  // eviction victim
  std::uint32_t free_head_ = 0;
  std::size_t live_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
};

}  // namespace jtp::core
