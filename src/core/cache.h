// In-network packet cache (paper §4).
//
// Every intermediate node keeps an LRU cache of traversing data packets so
// that a SNACK can be satisfied by the farthest-downstream node that still
// holds the packet, avoiding an end-to-end retransmission. "Recently
// manipulated" covers both insertion and a retransmission hit, so packets
// under active repair stay resident. Capacity is shared across flows.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>

#include "core/packet.h"
#include "core/types.h"

namespace jtp::core {

class PacketCache {
 public:
  explicit PacketCache(std::size_t capacity_packets);

  // Inserts (or refreshes) a copy of `p`. Duplicate (flow, seq) overwrites
  // and counts as a manipulation. Source/cache retransmission markers are
  // stripped: a cached copy is just a copy.
  void insert(const Packet& p);

  // Looks up (flow, seq); on hit, the entry is refreshed (LRU touch) and a
  // copy is returned.
  std::optional<Packet> lookup(FlowId flow, SeqNo seq);

  // Non-refreshing probe, for tests/inspection.
  bool contains(FlowId flow, SeqNo seq) const;

  // Drops every entry of a flow (e.g. connection teardown).
  void erase_flow(FlowId flow);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Counters for the experiment harness.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t insertions() const { return insertions_; }

 private:
  struct Key {
    FlowId flow;
    SeqNo seq;
    bool operator==(const Key& o) const { return flow == o.flow && seq == o.seq; }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.flow) << 32) ^
                                        (k.seq * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Entry {
    Packet packet;
    std::list<Key>::iterator lru_pos;
  };

  void touch(Entry& e);
  void evict_one();

  std::size_t capacity_;
  std::list<Key> lru_;  // front = most recently manipulated
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
};

}  // namespace jtp::core
