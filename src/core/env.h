// Environment interfaces for JTP's "shared code" (paper §1, §6).
//
// The paper runs identical protocol code under OPNET and on Linux/JAVeLEN
// radios via thin adaptation layers. We keep that property: everything in
// core/ talks to the outside world only through these interfaces; the
// simulator adapter lives in net/, and a different host (e.g. a real
// socket/timerfd backend) could be swapped in without touching core/.
#pragma once

#include <cstdint>
#include <functional>

#include "core/packet.h"

namespace jtp::core {

using TimerId = std::uint64_t;

// Clock + timer service.
class Env {
 public:
  virtual ~Env() = default;
  virtual double now() const = 0;
  virtual TimerId schedule(double delay_s, std::function<void()> fn) = 0;
  virtual void cancel(TimerId id) = 0;
};

// Where an end-point hands packets for transmission (the node's network
// layer / MAC queue).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void send(Packet p) = 0;
};

// What iJTP needs to know about the outgoing link, supplied by the MAC's
// link estimator (paper §2.2.2).
struct LinkView {
  double loss_rate = 0.0;           // estimated per-transmission loss prob
  double available_rate_pps = 0.0;  // idle capacity toward the next hop
  double avg_attempts = 1.0;        // mean MAC-level transmissions/packet
};

}  // namespace jtp::core
