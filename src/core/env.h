// Environment interfaces for JTP's "shared code" (paper §1, §6).
//
// The paper runs identical protocol code under OPNET and on Linux/JAVeLEN
// radios via thin adaptation layers. We keep that property: everything in
// core/ talks to the outside world only through these interfaces; the
// simulator adapter lives in net/, and a different host (e.g. a real
// socket/timerfd backend) could be swapped in without touching core/.
#pragma once

#include <cstdint>
#include <utility>

#include "core/packet.h"
#include "core/packet_pool.h"
#include "sim/small_fn.h"

namespace jtp::core {

using TimerId = std::uint64_t;

// Clock + timer + packet-slot service. The pool is part of the
// environment because packets belong to the simulation instance the
// endpoint is plugged into (one pool per Env, one Env per Simulator,
// one Simulator per thread).
class Env {
 public:
  virtual ~Env() = default;
  virtual double now() const = 0;
  // Timer callables used to cross this seam as std::function, whose
  // 16-byte small-object buffer forced a heap allocation for any timer
  // capturing more than `this` — before the event pool ever saw the
  // callable, invisibly to the pool stats. schedule() is now a template
  // forwarder: the callable is type-erased once, directly into the
  // host's sim::SmallFn storage (48 inline bytes, SpillPool behind it),
  // so every in-tree transport timer is allocation-free end to end.
  // The virtual seam underneath is schedule_fn().
  template <typename F>
  TimerId schedule(double delay_s, F&& fn) {
    return schedule_fn(delay_s,
                       sim::SmallFn(std::forward<F>(fn), spill_pool()));
  }
  virtual void cancel(TimerId id) = 0;
  virtual PacketPool& packet_pool() = 0;

  // The spill pool schedule() builds its SmallFn against; must be the
  // same pool the host's event storage releases into (the Simulator's
  // callback spill pool, for the simulator-backed Env).
  virtual sim::SpillPool& spill_pool() = 0;

  // Virtual seam under schedule(): host-specific timer arming for an
  // already-type-erased callable.
  virtual TimerId schedule_fn(double delay_s, sim::SmallFn fn) = 0;
};

// Where an end-point hands packets for transmission (the node's network
// layer / MAC queue). Packets move by pooled handle; a sink that drops
// the handle drops the packet (the slot is recycled automatically).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void send(PacketPtr p) = 0;
};

// What iJTP needs to know about the outgoing link, supplied by the MAC's
// link estimator (paper §2.2.2).
struct LinkView {
  double loss_rate = 0.0;           // estimated per-transmission loss prob
  double available_rate_pps = 0.0;  // idle capacity toward the next hop
  double avg_attempts = 1.0;        // mean MAC-level transmissions/packet
};

}  // namespace jtp::core
