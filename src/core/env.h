// Environment interfaces for JTP's "shared code" (paper §1, §6).
//
// The paper runs identical protocol code under OPNET and on Linux/JAVeLEN
// radios via thin adaptation layers. We keep that property: everything in
// core/ talks to the outside world only through these interfaces; the
// simulator adapter lives in net/, and a different host (e.g. a real
// socket/timerfd backend) could be swapped in without touching core/.
#pragma once

#include <cstdint>
#include <functional>

#include "core/packet.h"
#include "core/packet_pool.h"

namespace jtp::core {

using TimerId = std::uint64_t;

// Clock + timer + packet-slot service. The pool is part of the
// environment because packets belong to the simulation instance the
// endpoint is plugged into (one pool per Env, one Env per Simulator,
// one Simulator per thread).
class Env {
 public:
  virtual ~Env() = default;
  virtual double now() const = 0;
  // Hot-path convention: endpoint timer callables must capture no more
  // than `this` (every in-tree transport does). schedule() is a virtual
  // seam, so the callable is type-erased through std::function here; a
  // capture within its small-object buffer (16 bytes in libstdc++)
  // stays allocation-free end to end (the std::function itself then
  // fits the simulator's SmallFn inline storage), while a larger one
  // would heap-allocate per timer *before* the event pool ever sees it
  // — invisibly to the pool stats. Keep timer state in the endpoint
  // object, not the capture.
  virtual TimerId schedule(double delay_s, std::function<void()> fn) = 0;
  virtual void cancel(TimerId id) = 0;
  virtual PacketPool& packet_pool() = 0;
};

// Where an end-point hands packets for transmission (the node's network
// layer / MAC queue). Packets move by pooled handle; a sink that drops
// the handle drops the packet (the slot is recycled automatically).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void send(PacketPtr p) = 0;
};

// What iJTP needs to know about the outgoing link, supplied by the MAC's
// link estimator (paper §2.2.2).
struct LinkView {
  double loss_rate = 0.0;           // estimated per-transmission loss prob
  double available_rate_pps = 0.0;  // idle capacity toward the next hop
  double avg_attempts = 1.0;        // mean MAC-level transmissions/packet
};

}  // namespace jtp::core
