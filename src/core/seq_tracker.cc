#include "core/seq_tracker.h"

#include <algorithm>
#include <stdexcept>

namespace jtp::core {

SeqTracker::SeqTracker(double loss_tolerance) : tolerance_(loss_tolerance) {
  if (loss_tolerance < 0.0 || loss_tolerance > 1.0)
    throw std::invalid_argument("SeqTracker: tolerance outside [0,1]");
}

bool SeqTracker::receive(SeqNo seq) {
  if (seq < base_ || out_of_order_.count(seq) || waived_.count(seq)) {
    ++duplicates_;
    return false;
  }
  ++arrivals_;
  // Seqs skipped over by this arrival become gaps, stamped with the
  // current arrival count so reordering tolerance can be measured.
  if (seq > horizon_) {
    for (SeqNo s = horizon_; s < seq; ++s) gap_noticed_at_.emplace(s, arrivals_);
  }
  horizon_ = std::max(horizon_, seq + 1);
  gap_noticed_at_.erase(seq);  // a filled gap is no longer a gap
  out_of_order_.insert(seq);
  ++received_;
  advance_base();
  return true;
}

void SeqTracker::advance_base() {
  while (true) {
    if (auto it = out_of_order_.find(base_); it != out_of_order_.end()) {
      out_of_order_.erase(it);
      ++base_;
      continue;
    }
    if (auto it = waived_.find(base_); it != waived_.end()) {
      waived_.erase(it);
      ++base_;
      continue;
    }
    break;
  }
  gap_noticed_at_.erase(gap_noticed_at_.begin(),
                        gap_noticed_at_.lower_bound(base_));
}

bool SeqTracker::can_waive_one() const {
  // Waiving one more keeps waived/(received+waived+1) <= tolerance.
  const double total =
      static_cast<double>(received_ + waived_count_ + 1);
  return (static_cast<double>(waived_count_) + 1.0) <= tolerance_ * total;
}

void SeqTracker::missing_after_waive(std::vector<SeqNo>& out,
                                     std::size_t max_count,
                                     int reorder_threshold) {
  out.clear();  // capacity retained: a reused buffer never reallocates
  for (SeqNo s = base_; s < horizon_ && out.size() < max_count; ++s) {
    if (out_of_order_.count(s) || waived_.count(s)) continue;
    if (reorder_threshold > 0) {
      const auto it = gap_noticed_at_.find(s);
      const std::uint64_t since =
          it == gap_noticed_at_.end() ? arrivals_ : arrivals_ - it->second;
      // Too few later arrivals: the packet may simply still be in flight.
      if (since < static_cast<std::uint64_t>(reorder_threshold)) continue;
    }
    if (can_waive_one()) {
      waived_.insert(s);
      ++waived_count_;
      continue;
    }
    out.push_back(s);
  }
  advance_base();
}

std::vector<SeqNo> SeqTracker::missing_after_waive(std::size_t max_count,
                                                   int reorder_threshold) {
  std::vector<SeqNo> out;
  missing_after_waive(out, max_count, reorder_threshold);
  return out;
}

std::vector<SeqNo> SeqTracker::missing() const {
  std::vector<SeqNo> out;
  for (SeqNo s = base_; s < horizon_; ++s)
    if (!out_of_order_.count(s) && !waived_.count(s)) out.push_back(s);
  return out;
}

}  // namespace jtp::core
