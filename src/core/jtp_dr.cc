#include "core/jtp_dr.h"

#include <algorithm>
#include <utility>

namespace jtp::core {

JtpDrSender::JtpDrSender(Env& env, PacketSink& sink, SenderConfig cfg,
                         JtpDrConfig dr)
    : env_(env),
      dr_(dr),
      sampler_(),
      bw_(dr.bw_window_rounds),
      rtt_(dr.min_rtt_window_s),
      ctl_(dr.rate),
      tap_(*this, sink),
      inner_(env, tap_, cfg) {}

void JtpDrSender::start(std::uint64_t total_packets) {
  total_packets_ = total_packets;
  inner_.start(total_packets);
}

void JtpDrSender::TapSink::send(PacketPtr p) {
  if (p && p->is_data()) owner_.note_sent(p->seq);
  out_.send(std::move(p));
}

void JtpDrSender::note_sent(SeqNo seq) {
  sampler_.on_sent(seq, env_.now());
  // Bounded transfer with everything handed to the pacer: from here on
  // the sender is application-limited, and windows spanning this tail
  // must not be read as the path slowing down.
  if (total_packets_ != 0 && inner_.next_new_seq() >= total_packets_)
    sampler_.mark_app_limited(sampler_.packets_in_flight());
}

void JtpDrSender::on_ack(const Packet& ack) {
  if (!ack.is_ack() || !ack.ack.has_value()) {
    inner_.on_ack(ack);
    return;
  }
  const AckBody& body = *ack.ack;
  if (body.ack_serial <= last_serial_) {
    // Stale/duplicate feedback: the inner sender has its own serial
    // guard; nothing here to sample.
    inner_.on_ack(ack);
    return;
  }
  last_serial_ = body.ack_serial;
  const double now = env_.now();

  // Decode the feedback into per-seq deliveries. Cumulative advance
  // first, then SNACK-implied holes: everything between the cumulative
  // ACK and the highest listed missing seq that is NOT listed as missing
  // has reached the destination (partial-delivery credit; on_delivered
  // is idempotent, so later cumulative sweeps cannot double-count).
  for (SeqNo s = cum_seen_; s < body.cumulative_ack; ++s)
    sampler_.on_delivered(s, now);
  cum_seen_ = std::max(cum_seen_, body.cumulative_ack);
  if (!body.snack.missing.empty()) {
    SeqNo high = 0;
    for (SeqNo m : body.snack.missing) high = std::max(high, m);
    for (SeqNo s = body.cumulative_ack; s < high; ++s) {
      bool missing = false;
      for (SeqNo m : body.snack.missing) {
        if (m == s) {
          missing = true;
          break;
        }
      }
      if (!missing) sampler_.on_delivered(s, now);
    }
  }

  RateSample s = sampler_.take_sample(now);
  if (s.valid) {
    // BBR-style round accounting: the sample closes a round when its
    // probe packet was sent at-or-after the previous round's close.
    const std::uint64_t prior = sampler_.delivered_count() - s.delivered;
    if (prior >= round_start_delivered_) {
      ++round_;
      round_start_delivered_ = sampler_.delivered_count();
    }
    bw_.on_sample(s, round_);
    if (s.rtt_s > 0.0) rtt_.update(s.rtt_s, now);
  }

  if (bw_.has_estimate()) {
    // Local PI²/MD with Ā = the delivery-rate estimate, converging at
    // dr_gain × Ā (see JtpDrConfig), overriding whatever the destination
    // advertised. The inner sender still applies its own adoption rules
    // (bounded increase factor, serial guard).
    const double a_bar = bw_.bw_pps();
    ctl_.set_rate_cap(std::min(
        dr_.rate.max_rate_pps,
        std::max(dr_.rate.min_rate_pps, dr_.dr_gain * a_bar)));
    const double r = ctl_.update(a_bar);
    Packet rewritten = ack;
    rewritten.ack->advertised_rate_pps = r;
    inner_.on_ack(rewritten);
  } else {
    inner_.on_ack(ack);
  }

  // Records at-or-below the cumulative ACK whose seqs were waived (loss
  // tolerance) never see on_delivered; drop them so the in-flight view
  // stays honest.
  sampler_.discard_below(body.cumulative_ack);
}

}  // namespace jtp::core
