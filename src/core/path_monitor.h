// Flip-flop path monitor (paper §5.1, eqs. 7–8).
//
// Tracks one path metric (e.g. min available rate, per-packet energy used)
// with an EWMA mean and an EWMA of successive absolute differences (moving
// range R̄), and flags samples outside Shewhart-style control limits
//   UCL/LCL = x̄ ± 3·R̄/1.128.
// A run of consecutive outliers signals a persistent path change: the
// monitor reports `trigger` (the destination should send early feedback)
// and flips from the stable filter (small α) to an agile filter (large α)
// until samples re-enter the limits.
#pragma once

#include <cstddef>

namespace jtp::core {

struct PathMonitorConfig {
  double alpha_stable = 0.1;   // stable EWMA weight for x̄
  double alpha_agile = 0.6;    // agile EWMA weight for x̄
  double beta = 0.2;           // EWMA weight for the moving range R̄
  int outlier_run_to_trigger = 3;  // consecutive outliers => trigger
  double d2 = 1.128;           // control-chart constant for ranges of 2
  double limit_sigmas = 3.0;   // width of control band in R̄/d2 units
};

class PathMonitor {
 public:
  explicit PathMonitor(PathMonitorConfig cfg = {});

  struct Observation {
    bool outlier = false;   // sample fell outside [LCL, UCL]
    bool trigger = false;   // outlier run completed: send early feedback now
    bool agile = false;     // filter state after this sample
  };

  // Feeds one sample; updates x̄, R̄ and the filter mode.
  Observation add(double sample);

  bool initialized() const { return have_mean_; }
  double mean() const { return mean_; }
  double range() const { return range_; }
  double last_sample() const { return last_sample_; }
  double ucl() const;
  double lcl() const;
  bool agile() const { return agile_; }
  std::size_t samples() const { return n_; }
  std::size_t triggers() const { return triggers_; }

  void reset();

 private:
  PathMonitorConfig cfg_;
  double mean_ = 0.0;
  double range_ = 0.0;
  double prev_sample_ = 0.0;
  double last_sample_ = 0.0;
  bool have_mean_ = false;
  bool agile_ = false;
  bool trigger_armed_ = true;
  int outlier_run_ = 0;
  std::size_t n_ = 0;
  std::size_t triggers_ = 0;
};

}  // namespace jtp::core
