// JTP packet formats (paper Figure 2).
//
// The wire format carries, per data packet: available rate, loss
// tolerance, energy budget/used and a deadline; per ACK: cumulative ACK,
// SNACK set, locally-recovered set, advertised rate, energy budget and
// the sender timeout (the receiver's current feedback period T). In the
// simulator the header is a struct; serialized sizes follow the
// prototype's 28-byte data header and 200-byte ACK header (paper §6.1)
// so energy accounting is honest about header overhead.
//
// Hot-path layout: `PacketHeader` is the trivially-copyable part every
// hop reads and stamps; the ACK-only feedback rides in an `AckBody`
// whose SNACK sets use inline (SmallVec) storage sized for the
// protocols' per-ACK entry caps. A `Packet` is the header plus an
// optional-style ack slot, so building, forwarding and caching packets
// performs no heap allocation; in the simulation pipeline packets live
// in `PacketPool` slots and move by handle (see packet_pool.h).
#pragma once

#include <cstdint>
#include <limits>

#include "core/small_vec.h"
#include "core/types.h"

namespace jtp::core {

enum class PacketType : std::uint8_t { kData, kAck };

// Serialized header sizes, from the prototype implementation (§6.1).
inline constexpr std::uint32_t kDataHeaderBytes = 28;
inline constexpr std::uint32_t kAckHeaderBytes = 200;
inline constexpr std::uint32_t kDefaultPayloadBytes = 800;  // Table 1

// Inline SNACK capacity. eJTP caps SNACKs at max_snack_entries (32,
// Table 1's ACK budget) and TCP-SACK at 16; ATP's 64-hole cap can spill,
// which SmallVec handles (and counts).
inline constexpr std::size_t kSnackInlineEntries = 32;
using SeqList = SmallVec<SeqNo, kSnackInlineEntries>;

// Selective negative acknowledgment: sequence numbers the receiver still
// needs, plus the set already recovered by an in-network cache on this
// ACK's way upstream (paper §4).
struct Snack {
  SeqList missing;            // still wanted from upstream
  SeqList locally_recovered;  // satisfied by a cache en route

  bool empty() const { return missing.empty() && locally_recovered.empty(); }
};

// Feedback fields carried by an ACK (paper Figure 2(b)). Cold relative
// to the header: only endpoints and caching hops touch it.
struct AckBody {
  SeqNo cumulative_ack = 0;   // all seq < cumulative_ack delivered or waived
  Snack snack;
  double advertised_rate_pps = 0.0;  // PI^2/MD controller output
  Joules energy_budget = 0.0;        // energy-budget controller output
  double sender_timeout_s = 0.0;     // receiver's feedback period T
  std::uint64_t ack_serial = 0;      // monotone per-connection ACK counter

  // Used by the TCP/ATP baselines only: timestamp echo for the sender's
  // RTT estimator (-1 = absent).
  double echo_send_time = -1.0;
};
using AckHeader = AckBody;

// The hot, trivially-copyable part of a packet: what every hop's MAC,
// iJTP pre-xmit and cache touch. This is also the cache's storage unit —
// cached data packets carry no ack body.
struct PacketHeader {
  PacketType type = PacketType::kData;
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  SeqNo seq = 0;
  std::uint32_t payload_bytes = kDefaultPayloadBytes;

  // --- Novel JTP data-header fields (paper §2.1.1) ---
  // Min effective available rate stamped so far along the path. Starts at
  // +infinity ("no information"), and every node takes an unconditional
  // min — zero is a *meaningful* stamp (a saturated node) and must never
  // be mistaken for "unset".
  double available_rate_pps = std::numeric_limits<double>::infinity();
  double loss_tolerance = 0.0;      // remaining end-to-end loss tolerance
  Joules energy_budget = 0.0;       // max energy the network may spend
  Joules energy_used = 0.0;         // energy spent so far on this packet
  double deadline_s = 0.0;          // real-time traffic only (0 = none)

  // Baselines carry different (smaller/larger) headers; 0 = protocol
  // default sizes above.
  std::uint32_t header_override_bytes = 0;

  // Sender timestamp, echoed by baseline receivers for RTT estimation.
  double send_time = -1.0;

  // --- Simulator-side metadata (not on the wire) ---
  bool is_source_retransmission = false;
  bool is_cache_retransmission = false;
  std::uint64_t uid = 0;  // unique per created packet, for tracing

  std::uint32_t header_bytes() const {
    if (header_override_bytes != 0) return header_override_bytes;
    return type == PacketType::kData ? kDataHeaderBytes : kAckHeaderBytes;
  }
  std::uint32_t size_bytes() const { return header_bytes() + payload_bytes; }
  double size_bits() const { return 8.0 * size_bytes(); }
  bool is_data() const { return type == PacketType::kData; }
  bool is_ack() const { return type == PacketType::kAck; }
};

// Optional-style ack body with inline storage (no allocation, no
// indirection). Engage by assigning an AckBody or via emplace().
class AckSlot {
 public:
  AckSlot() = default;
  AckSlot(const AckSlot&) = default;
  AckSlot& operator=(const AckSlot&) = default;
  AckSlot(AckSlot&& o) noexcept
      : body_(std::move(o.body_)), engaged_(o.engaged_) {
    o.engaged_ = false;
  }
  AckSlot& operator=(AckSlot&& o) noexcept {
    if (this != &o) {
      body_ = std::move(o.body_);
      engaged_ = o.engaged_;
      o.engaged_ = false;
    }
    return *this;
  }

  AckSlot& operator=(AckBody&& b) {
    body_ = std::move(b);
    engaged_ = true;
    return *this;
  }
  AckSlot& operator=(const AckBody& b) {
    body_ = b;
    engaged_ = true;
    return *this;
  }

  AckBody& emplace() {
    body_ = AckBody{};
    engaged_ = true;
    return body_;
  }
  void reset() {
    body_ = AckBody{};
    engaged_ = false;
  }

  explicit operator bool() const { return engaged_; }
  bool has_value() const { return engaged_; }
  AckBody& operator*() { return body_; }
  const AckBody& operator*() const { return body_; }
  AckBody* operator->() { return &body_; }
  const AckBody* operator->() const { return &body_; }

 private:
  AckBody body_{};
  bool engaged_ = false;
};

// One transport-layer packet traversing the network. The same struct is
// used end-to-end; intermediate nodes mutate only the soft-state fields
// (available rate, loss tolerance, energy used), in the spirit of Dynamic
// Packet State.
struct Packet : PacketHeader {
  Packet() = default;
  // Rebuilds a packet from a cached header (cache retransmissions).
  explicit Packet(const PacketHeader& h) : PacketHeader(h) {}

  // --- ACK-only body ---
  AckSlot ack;
};

}  // namespace jtp::core
