#include "core/transport.h"

namespace jtp::core {

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::kJtp: return "jtp";
    case Proto::kJnc: return "jnc";
    case Proto::kTcp: return "tcp";
    case Proto::kAtp: return "atp";
  }
  return "?";
}

std::optional<Proto> parse_proto(std::string_view name) {
  if (name == "jtp") return Proto::kJtp;
  if (name == "jnc") return Proto::kJnc;
  if (name == "tcp") return Proto::kTcp;
  if (name == "atp") return Proto::kAtp;
  return std::nullopt;
}

}  // namespace jtp::core
