#include "core/transport.h"

namespace jtp::core {

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::kJtp: return "jtp";
    case Proto::kJnc: return "jnc";
    case Proto::kTcp: return "tcp";
    case Proto::kAtp: return "atp";
    case Proto::kJtpFf: return "jtp_ff";
    case Proto::kJtpDr: return "jtp_dr";
    case Proto::kBbr: return "bbr";
  }
  return "?";
}

std::optional<Proto> parse_proto(std::string_view name) {
  if (name == "jtp") return Proto::kJtp;
  if (name == "jnc") return Proto::kJnc;
  if (name == "tcp") return Proto::kTcp;
  if (name == "atp") return Proto::kAtp;
  if (name == "jtp_ff" || name == "jtp-ff") return Proto::kJtpFf;
  if (name == "jtp_dr" || name == "jtp-dr") return Proto::kJtpDr;
  if (name == "bbr") return Proto::kBbr;
  return std::nullopt;
}

}  // namespace jtp::core
