#include "core/transport.h"

namespace jtp::core {

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::kJtp: return "jtp";
    case Proto::kJnc: return "jnc";
    case Proto::kTcp: return "tcp";
    case Proto::kAtp: return "atp";
    case Proto::kJtpFf: return "jtp-ff";
  }
  return "?";
}

std::optional<Proto> parse_proto(std::string_view name) {
  if (name == "jtp") return Proto::kJtp;
  if (name == "jnc") return Proto::kJnc;
  if (name == "tcp") return Proto::kTcp;
  if (name == "atp") return Proto::kAtp;
  // kJtpFf is deliberately not CLI-parseable: it is only runnable after
  // an explicit TransportRegistry registration (see transport_test.cc),
  // and a parseable-but-unregistered name would turn bench flag errors
  // into uncaught exceptions.
  return std::nullopt;
}

}  // namespace jtp::core
