// Adjustable reliability for energy conservation (paper §3, eqs. 1–4).
//
// Given an application's end-to-end loss tolerance l_e2e and per-link raw
// loss probabilities p_i, JTP picks a per-link success target q and a
// per-link attempt budget M_i = log(1-q)/log(p_i), then rewrites the loss
// tolerance carried in the packet header so downstream nodes see only the
// remaining budget (eq. 3). All functions here are pure.
#pragma once

#include <algorithm>

namespace jtp::core {

inline constexpr int kDefaultMaxAttempts = 5;  // Table 1

// Equal per-link success target: q = (1 - lt)^(1/H)   (eq. 4).
// `remaining_hops` >= 1; lt in [0,1].
double per_link_success_target(double loss_tolerance, int remaining_hops);

// Attempt budget for raw link loss probability p to reach success target q:
// M = clamp(log(1-q)/log(p), 1, max_attempts)   (eq. 2).
// Edge cases: p ~ 0 -> 1 attempt; q ~ 1 (full reliability) -> max_attempts.
int attempt_budget(double q_target, double p_link_loss, int max_attempts);

// Achieved per-link success probability with M attempts: q = 1 - p^M.
double achieved_link_success(double p_link_loss, int attempts);

// Header rewrite before forwarding (eq. 3):
//   lt' = 1 - (1 - lt) / q_achieved, clamped to [0, 1].
// q_achieved is the success probability this node arranged on its own link;
// left-over budget is removed so it cannot be spent downstream.
double update_loss_tolerance(double loss_tolerance, double q_achieved);

// End-to-end success probability if every one of `hops` links achieves q.
double end_to_end_success(double q_per_link, int hops);

namespace detail {
inline double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
}  // namespace detail

}  // namespace jtp::core
