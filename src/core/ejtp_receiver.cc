#include "core/ejtp_receiver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jtp::core {

namespace {
// Per-packet energy is naturally bimodal (a retried packet costs a
// multiple of a clean one), so the energy monitor needs a longer outlier
// run than the rate monitor before it cries "persistent change".
PathMonitorConfig energy_monitor_config(const ReceiverConfig& cfg) {
  PathMonitorConfig m = cfg.monitor;
  m.outlier_run_to_trigger = std::max(5, m.outlier_run_to_trigger);
  return m;
}
}  // namespace

EjtpReceiver::EjtpReceiver(Env& env, PacketSink& sink, ReceiverConfig cfg)
    : env_(env),
      sink_(sink),
      cfg_(cfg),
      tracker_(cfg.loss_tolerance),
      rate_monitor_(cfg.monitor),
      energy_ctl_(cfg.energy_beta, energy_monitor_config(cfg)),
      controller_(cfg.rate) {
  controller_.set_rate_cap(
      std::min(cfg.app_delivery_cap_pps, cfg.rate.max_rate_pps));
}

EjtpReceiver::~EjtpReceiver() { stop(); }

void EjtpReceiver::start() {
  running_ = true;
  arm_regular_feedback();
}

void EjtpReceiver::stop() {
  running_ = false;
  if (feedback_armed_) {
    env_.cancel(feedback_timer_);
    feedback_armed_ = false;
  }
}

double EjtpReceiver::data_rate_estimate() const {
  // The sending rate the controller last advertised is the best local
  // estimate of the incoming data rate.
  return std::max(controller_.rate(), cfg_.rate.min_rate_pps);
}

double EjtpReceiver::current_feedback_period() const {
  if (cfg_.feedback_mode == FeedbackMode::kConstant)
    return 1.0 / cfg_.constant_feedback_rate_pps;
  const double rate = data_rate_estimate();
  // T = max(TLowerBound, n / rate), with TLowerBound additionally bounded
  // by cache pressure: feedback must arrive before a missing packet can be
  // evicted, i.e. TLowerBound <= C/rate - RTT (see DESIGN.md on the TR's
  // dimensional slip here).
  double t_lb = cfg_.t_lower_bound_s;
  const double cache_bound =
      static_cast<double>(cfg_.cache_size_packets) / rate -
      cfg_.rtt_estimate_s;
  if (cache_bound > 0.0) t_lb = std::min(t_lb, cache_bound);
  t_lb = std::max(t_lb, 1.0 / rate);  // never faster than the data rate
  return std::max(t_lb, cfg_.feedback_packets_per_period / rate);
}

void EjtpReceiver::arm_regular_feedback() {
  if (!running_ || feedback_armed_) return;
  feedback_armed_ = true;
  feedback_timer_ = env_.schedule(current_feedback_period(), [this] {
    feedback_armed_ = false;
    // Skip feedback for a connection that has seen no data at all yet;
    // re-arm to keep listening.
    if (last_data_time_ >= 0.0) send_feedback(/*triggered=*/false);
    arm_regular_feedback();
  });
}

void EjtpReceiver::on_data(const Packet& p) {
  assert(p.is_data() && p.flow == cfg_.flow);
  last_data_time_ = env_.now();

  const bool fresh = tracker_.receive(p.seq);
  if (fresh) {
    delivered_bits_ += bits(p.payload_bytes);
    if (on_deliver_) on_deliver_(p.seq, p.payload_bytes);
  }

  // Path monitoring (§5.1): available rate and per-packet energy.
  bool trigger = false;
  if (std::isfinite(p.available_rate_pps))
    trigger |= rate_monitor_.add(p.available_rate_pps).trigger;
  trigger |= energy_ctl_.observe(p.energy_used);

  if (trigger && running_) {
    // Early feedback, but rate-limited so a burst of outliers cannot turn
    // the ACK channel into the congestion it is trying to prevent.
    const double spacing =
        cfg_.min_trigger_spacing_factor * current_feedback_period();
    if (env_.now() - last_feedback_time_ >= spacing) {
      send_feedback(/*triggered=*/true);
      // Restart the regular cadence relative to this early ACK.
      if (feedback_armed_) {
        env_.cancel(feedback_timer_);
        feedback_armed_ = false;
      }
      arm_regular_feedback();
    }
  }
}

void EjtpReceiver::send_feedback(bool triggered) {
  // PI^2/MD iteration on the monitored available path rate (§5.2.1). Until
  // the monitor has a sample, advertise the controller's current rate.
  double advertised = controller_.rate();
  if (rate_monitor_.initialized())
    advertised = controller_.update(rate_monitor_.mean());

  PacketPtr ack = env_.packet_pool().make();
  ack->type = PacketType::kAck;
  ack->flow = cfg_.flow;
  ack->src = cfg_.dst;  // ACKs travel destination -> source
  ack->dst = cfg_.src;
  ack->payload_bytes = 0;
  ack->energy_budget = 0.0;  // ACKs are not energy-budgeted

  // Build the feedback in place in the pooled slot (no copies, and the
  // SNACK sets use the slot's inline storage).
  AckHeader& h = ack->ack.emplace();
  // SNACK only the missing seqs whose previous request (if any) has had a
  // chance to be answered; re-requesting every ACK would make the caches
  // retransmit duplicates of repairs already in flight.
  // Default retry spacing: generous enough for a repair to cross a path
  // of backlogged queues — at least two RTTs and 1.5 feedback periods.
  const double retry_interval =
      cfg_.snack_retry_interval_s > 0.0
          ? cfg_.snack_retry_interval_s
          : std::max(2.0 * cfg_.rtt_estimate_s,
                     1.5 * current_feedback_period());
  const double now = env_.now();
  // If data has stopped flowing (transfer tail), later packets will never
  // arrive to vouch for the gaps — consider every gap a loss.
  const double quiet_after =
      std::max(1.0, 3.0 / data_rate_estimate());
  const int reorder = (now - last_data_time_ > quiet_after)
                          ? 0
                          : cfg_.reorder_threshold;
  tracker_.missing_after_waive(snack_scratch_, 2 * cfg_.max_snack_entries,
                               reorder);
  for (SeqNo seq : snack_scratch_) {
    auto [it, fresh] = snack_requested_at_.try_emplace(seq, -1e18);
    if (!fresh && now - it->second < retry_interval) continue;
    it->second = now;
    h.snack.missing.push_back(seq);
    if (h.snack.missing.size() >= cfg_.max_snack_entries) break;
  }
  h.cumulative_ack = tracker_.cumulative_ack();
  // Prune bookkeeping below the cumulative ack (delivered or waived).
  for (auto it = snack_requested_at_.begin(); it != snack_requested_at_.end();) {
    if (it->first < h.cumulative_ack) {
      it = snack_requested_at_.erase(it);
    } else {
      ++it;
    }
  }
  h.advertised_rate_pps = advertised;
  h.energy_budget = energy_ctl_.budget();
  h.sender_timeout_s = current_feedback_period();
  h.ack_serial = ++ack_serial_;

  ++acks_sent_;
  if (triggered) ++triggered_acks_;
  last_feedback_time_ = env_.now();
  sink_.send(std::move(ack));
}

}  // namespace jtp::core
