// The polymorphic transport contract every protocol under test implements.
//
// A transport is a (sender, receiver) endpoint pair with one shared
// lifecycle — start / stop / finished / completion callback — and one
// shared counter vocabulary (delivered bits/packets, waived packets, data
// sent, source retransmissions, ACKs sent). Everything above the endpoints
// (Network wiring, FlowManager, metrics, benches) talks only to this
// interface; which concrete protocol sits behind a flow is decided once,
// at attachment time, through the net::TransportRegistry.
//
// Hot-path note: on_data/on_ack become virtual calls here. They were
// already dispatched through std::function handlers per packet, so the
// added cost is one indirect call; bench/micro_perf measures it
// (BM_TransportOnData{Direct,Virtual}).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "core/packet.h"

namespace jtp::core {

// The one protocol enum (paper §6.1); the single source of truth for
// which transport a flow runs (the exp and net layers alias it).
//   kJtp — the full protocol;
//   kJnc — JTP with in-network caching disabled (Fig. 4);
//   kTcp — rate-based TCP-SACK;
//   kAtp — ATP-like explicit-rate protocol;
//   kJtpFf — JTP with constant-rate ("fixed feedback") ACKing. Born as
//            the test-local proof that the registry seam is zero-edit;
//            now a permanent registrant (an ablation of the adaptive
//            feedback clock, paper §5.1).
//   kJtpDr — JTP whose PI²/MD available-rate input Ā is the sender-side
//            delivery-rate estimate (core/rate_sample.h) instead of the
//            path's per-hop idle-rate stamps (core/jtp_dr.h).
//   kBbr — BBR-style model-based pacing over the TCP-SACK feedback
//          channel (baselines/bbr.h).
enum class Proto : std::uint8_t { kJtp, kJnc, kTcp, kAtp, kJtpFf, kJtpDr,
                                  kBbr };

// Canonical lowercase CLI name ("jtp", "jnc", "tcp", "atp", "jtp_ff",
// "jtp_dr", "bbr").
std::string proto_name(Proto p);

// Inverse of proto_name; nullopt on an unknown name.
std::optional<Proto> parse_proto(std::string_view name);

// Source side: paces data packets and reacts to ACKs.
class TransportSender {
 public:
  virtual ~TransportSender() = default;

  // Starts a bulk transfer of `total_packets` (0 = unbounded/long-lived).
  virtual void start(std::uint64_t total_packets) = 0;
  virtual void stop() = 0;

  // Called by the node when an ACK for this flow reaches the source.
  virtual void on_ack(const Packet& ack) = 0;

  // True once a bounded transfer is fully acknowledged.
  virtual bool finished() const = 0;
  virtual void set_on_complete(std::function<void()> cb) = 0;

  // --- counters ---
  virtual std::uint64_t data_packets_sent() const = 0;
  virtual std::uint64_t source_retransmissions() const = 0;
};

// Destination side: consumes data packets and emits feedback.
class TransportReceiver {
 public:
  virtual ~TransportReceiver() = default;

  // Receivers with no feedback machinery of their own (e.g. TCP's
  // pure-reactive ACKing) keep these as no-ops.
  virtual void start() = 0;
  virtual void stop() = 0;

  // Called by the node when a data packet of this flow arrives.
  virtual void on_data(const Packet& p) = 0;

  // --- counters ---
  virtual double delivered_payload_bits() const = 0;
  virtual std::uint64_t delivered_packets() const = 0;
  // Packets the receiver's loss tolerance allowed it to give up on; only
  // adjustable-reliability transports have a non-zero notion of this.
  virtual std::uint64_t waived_packets() const { return 0; }
  virtual std::uint64_t acks_sent() const = 0;
};

}  // namespace jtp::core
