#include "core/fragmentation.h"

#include <stdexcept>

namespace jtp::core {

Fragmenter::Fragmenter(std::uint32_t max_payload_bytes) {
  if (max_payload_bytes <= kFragMetaBytes)
    throw std::invalid_argument("Fragmenter: payload too small for framing");
  max_app_bytes_ = max_payload_bytes - kFragMetaBytes;
}

std::vector<Fragment> Fragmenter::fragment(std::uint64_t message_id,
                                           std::uint64_t message_bytes) const {
  if (message_bytes == 0)
    throw std::invalid_argument("Fragmenter: empty message");
  const std::uint64_t n =
      (message_bytes + max_app_bytes_ - 1) / max_app_bytes_;
  std::vector<Fragment> out;
  out.reserve(n);
  std::uint64_t remaining = message_bytes;
  for (std::uint64_t i = 0; i < n; ++i) {
    Fragment f;
    f.message_id = message_id;
    f.index = static_cast<std::uint32_t>(i);
    f.count = static_cast<std::uint32_t>(n);
    f.payload_bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, max_app_bytes_));
    remaining -= f.payload_bytes;
    out.push_back(f);
  }
  return out;
}

std::optional<Reassembler::Completed> Reassembler::check_done(
    std::uint64_t id, Partial& p) {
  if (p.received + p.waived < p.count) return std::nullopt;
  Completed c{id, p.bytes, p.received, p.waived};
  partial_.erase(id);
  ++completed_;
  return c;
}

std::optional<Reassembler::Completed> Reassembler::add(const Fragment& f) {
  if (f.count == 0 || f.index >= f.count)
    throw std::invalid_argument("Reassembler: malformed fragment");
  auto& p = partial_[f.message_id];
  if (p.seen.empty()) {
    p.count = f.count;
    p.seen.assign(f.count, false);
  }
  if (p.count != f.count)
    throw std::invalid_argument("Reassembler: fragment count mismatch");
  if (p.seen[f.index]) return std::nullopt;  // duplicate
  p.seen[f.index] = true;
  ++p.received;
  p.bytes += f.payload_bytes;
  return check_done(f.message_id, p);
}

std::optional<Reassembler::Completed> Reassembler::waive(
    std::uint64_t message_id, std::uint32_t index, std::uint32_t count) {
  if (count == 0 || index >= count)
    throw std::invalid_argument("Reassembler: malformed waiver");
  auto& p = partial_[message_id];
  if (p.seen.empty()) {
    p.count = count;
    p.seen.assign(count, false);
  }
  if (p.seen[index]) return std::nullopt;
  p.seen[index] = true;
  ++p.waived;
  return check_done(message_id, p);
}

}  // namespace jtp::core
