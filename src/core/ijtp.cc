#include "core/ijtp.h"

#include <algorithm>

namespace jtp::core {

IjtpModule::IjtpModule(IjtpConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity_packets) {}

IjtpModule::PreXmitResult IjtpModule::pre_xmit(Packet& p, const LinkView& link,
                                               int remaining_hops,
                                               Joules tx_energy,
                                               bool first_attempt) {
  PreXmitResult res;

  // Algorithm 1, lines 1-3: charge energy, enforce the budget. A zero
  // budget means "unbudgeted" (e.g. ACKs, bootstrap packets).
  p.energy_used += tx_energy;
  if (p.energy_budget > 0.0 && p.energy_used > p.energy_budget) {
    ++energy_drops_;
    res.drop = true;
    return res;
  }

  if (p.is_data() && first_attempt) {
    // Lines 5-9: pick this link's attempt budget from the remaining loss
    // tolerance, then strip the spent budget from the header.
    const int hops = std::max(1, remaining_hops);
    const double q_target = per_link_success_target(p.loss_tolerance, hops);
    res.max_attempts =
        attempt_budget(q_target, link.loss_rate, cfg_.max_attempts);
    const double q_achieved =
        achieved_link_success(link.loss_rate, res.max_attempts);
    p.loss_tolerance = update_loss_tolerance(p.loss_tolerance, q_achieved);
  } else {
    res.max_attempts = cfg_.max_attempts;
  }

  // Lines 10-12: stamp the minimum effective available rate, normalized by
  // the average number of MAC-level transmissions per packet. The min is
  // unconditional: a zero stamp (saturated node) is information, not
  // absence of it.
  if (p.is_data()) {
    const double attempts = std::max(1.0, link.avg_attempts);
    const double effective = link.available_rate_pps / attempts;
    p.available_rate_pps = std::min(p.available_rate_pps, effective);
  }
  return res;
}

std::size_t IjtpModule::post_rcv(Packet& p, const ForwardFn& forward) {
  if (p.is_data()) {
    if (cfg_.caching_enabled) cache_.insert(p);
    return 0;
  }
  if (!p.is_ack() || !p.ack || !cfg_.caching_enabled) return 0;

  // Algorithm 2, ACK branch: satisfy SNACKed packets from the local cache
  // and rewrite the ACK so upstream nodes see them as locally recovered.
  auto& snack = p.ack->snack;
  SeqList still_missing;  // inline storage: the rewrite never allocates
  std::size_t served = 0;
  for (SeqNo seq : snack.missing) {
    if (served >= cfg_.max_cache_rtx_per_ack) {
      still_missing.push_back(seq);  // burst cap: leave for upstream
      continue;
    }
    const PacketHeader* hit = cache_.lookup(p.flow, seq);
    if (hit == nullptr) {
      still_missing.push_back(seq);
      continue;
    }
    Packet rtx(*hit);  // cached headers carry no ack body
    rtx.is_cache_retransmission = true;
    // The cached copy's soft-state fields describe the path it already
    // travelled; reset the rate stamp so the remaining path re-stamps it.
    rtx.available_rate_pps = std::numeric_limits<double>::infinity();
    if (!forward(std::move(rtx))) {
      // Local queue refused: the recovery never happened; the seq must
      // stay requested so upstream caches or the source repair it.
      still_missing.push_back(seq);
      continue;
    }
    ++served;
    ++cache_rtx_;
    if (cfg_.rewrite_locally_recovered)
      snack.locally_recovered.push_back(seq);
    else
      still_missing.push_back(seq);  // ablation: SNACK left intact
  }
  if (cfg_.rewrite_locally_recovered || served > 0)
    snack.missing = std::move(still_missing);
  return served;
}

}  // namespace jtp::core
