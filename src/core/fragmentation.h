// Application-specific module: fragmentation & reassembly (paper §2.2.1).
//
// eJTP's application module splits application messages into JTP payloads
// and reassembles them at the receiver. Message framing is carried in the
// first bytes of each fragment's payload (length-prefixed), so it needs no
// extra header fields. The module also holds the application's QoS
// expression: per-message loss tolerance and importance (β).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/types.h"

namespace jtp::core {

struct Fragment {
  std::uint64_t message_id = 0;
  std::uint32_t index = 0;       // fragment index within the message
  std::uint32_t count = 0;       // total fragments of the message
  std::uint32_t payload_bytes = 0;  // application bytes in this fragment
};

inline constexpr std::uint32_t kFragMetaBytes = 16;  // framing overhead

// Splits a message of `message_bytes` into fragments fitting
// `max_payload_bytes` (which includes the framing overhead).
class Fragmenter {
 public:
  explicit Fragmenter(std::uint32_t max_payload_bytes);

  std::vector<Fragment> fragment(std::uint64_t message_id,
                                 std::uint64_t message_bytes) const;

  std::uint32_t max_app_bytes_per_fragment() const { return max_app_bytes_; }

 private:
  std::uint32_t max_app_bytes_;
};

// Reassembles messages from fragments arriving in any order; tolerates
// waived fragments: a message completes when the non-waived fragments have
// all arrived and the waived fraction is within the message's tolerance.
class Reassembler {
 public:
  struct Completed {
    std::uint64_t message_id = 0;
    std::uint64_t bytes_received = 0;
    std::uint32_t fragments_received = 0;
    std::uint32_t fragments_waived = 0;
  };

  // Feeds a fragment; returns the completed message if this fragment (or
  // waiver) finished it.
  std::optional<Completed> add(const Fragment& f);

  // Marks a fragment as waived (lost but tolerated).
  std::optional<Completed> waive(std::uint64_t message_id, std::uint32_t index,
                                 std::uint32_t count);

  std::size_t messages_in_progress() const { return partial_.size(); }
  std::uint64_t messages_completed() const { return completed_; }

 private:
  struct Partial {
    std::uint32_t count = 0;
    std::uint32_t received = 0;
    std::uint32_t waived = 0;
    std::uint64_t bytes = 0;
    std::vector<bool> seen;
  };
  std::optional<Completed> check_done(std::uint64_t id, Partial& p);

  std::map<std::uint64_t, Partial> partial_;
  std::uint64_t completed_ = 0;
};

}  // namespace jtp::core
