#include "core/energy_controller.h"

#include <stdexcept>

namespace jtp::core {

EnergyBudgetController::EnergyBudgetController(double beta,
                                               PathMonitorConfig monitor_cfg)
    : beta_(beta), monitor_(monitor_cfg) {
  if (beta <= 1.0)
    throw std::invalid_argument("EnergyBudgetController: beta must be > 1");
}

bool EnergyBudgetController::observe(Joules energy_used) {
  return monitor_.add(energy_used).trigger;
}

Joules EnergyBudgetController::budget() const {
  if (!monitor_.initialized()) return 0.0;  // caller substitutes a default
  // eUCL can only be non-negative for a non-negative metric, but guard
  // against a tiny negative LCL-symmetric artifact anyway.
  const double ucl = monitor_.ucl();
  return beta_ * (ucl > 0.0 ? ucl : monitor_.mean());
}

}  // namespace jtp::core
