// Delivery-rate estimation (the modern-congestion-control substrate).
//
// The paper's rate controller (§5.2.1) reacts to explicit per-hop
// available-rate feedback; modern practice estimates the path's delivery
// capacity from per-ACK samples instead (Linux tcp_rate.c; Cardwell et
// al., "BBR: Congestion-Based Congestion Control"). This header provides
// that substrate, protocol-independently:
//
//   RateSampler         per-flow sender-side sampler. At transmit it
//                       snapshots (delivered, delivered_time,
//                       first_sent_time, app_limited); per ACK/SNACK it
//                       generates a RateSample whose interval is the MAX
//                       of the send interval and the ack interval —
//                       equivalently bw = min(send_rate, ack_rate) — so
//                       ACK compression can never fake a rate the path
//                       cannot sustain. Windows in which the sender had
//                       no data ready are marked app-limited.
//   BandwidthEstimator  windowed max-filter over samples, keyed by
//                       delivery rounds. App-limited samples never raise
//                       the estimate (they measure the application, not
//                       the path).
//   MinRttTracker       windowed min-filter over RTT samples, keyed by
//                       time.
//
// The sampler is transport-agnostic: eJTP's SNACK stream, TCP-SACK's
// hole lists and plain cumulative ACKs all reduce to "these sequence
// numbers were newly delivered at time t" (on_delivered), followed by
// one take_sample per feedback packet.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "core/types.h"

namespace jtp::core {

// One per-ACK delivery-rate sample.
struct RateSample {
  bool valid = false;         // false: no usable interval (ignore)
  double bw_pps = 0.0;        // delivered / interval = min(send, ack) rate
  double interval_s = 0.0;    // max(send interval, ack interval)
  double send_interval_s = 0.0;
  double ack_interval_s = 0.0;
  std::uint64_t delivered = 0;  // packets delivered over the interval
  double rtt_s = -1.0;          // send->delivery time of the probe packet
  bool app_limited = false;     // window overlapped app-limited sending
};

struct RateSamplerConfig {
  // Samples whose interval is below this are noise (a single ACK burst),
  // not a rate; they come back with valid=false.
  double min_interval_s = 1e-9;
};

class RateSampler {
 public:
  explicit RateSampler(RateSamplerConfig cfg = {}) : cfg_(cfg) {}

  // Transmit-time snapshot for `seq` (retransmissions overwrite the
  // record, so a later sample measures the latest flight — Karn's rule).
  // When nothing is in flight the sampling window restarts at `now`:
  // idle time must never be billed to the path as slowness.
  void on_sent(SeqNo seq, double now);

  // One newly delivered sequence number (cumulative-ack advance, SACK /
  // SNACK hole closure — the caller decodes its own feedback format).
  // Idempotent per seq (crediting consumes the transmit record), so a
  // hole closed by SNACK and later swept by a cumulative advance counts
  // once. Call before take_sample for every seq the ACK newly covers.
  void on_delivered(SeqNo seq, double now);

  // Finishes the ACK: the delivery-rate sample over the window of the
  // most recently sent packet this ACK delivered. Resets the per-ACK
  // accumulation; returns valid=false if the ACK delivered nothing new
  // or the interval is unusable.
  RateSample take_sample(double now);

  // The application had no data ready while `in_flight` packets were
  // outstanding: samples windowed over this period must not be allowed
  // to lower (or, in the estimator, raise) the path estimate. The mark
  // clears itself once everything outstanding at the mark is delivered.
  void mark_app_limited(std::uint64_t in_flight);

  // Drop transmit records below `seq` (cumulatively acknowledged or
  // waived — their flight is over even if no sample used them).
  void discard_below(SeqNo seq);

  // --- instrumentation ---
  std::uint64_t delivered_count() const { return delivered_; }
  std::uint64_t packets_in_flight() const { return records_.size(); }
  bool app_limited() const { return app_limited_until_ != 0; }
  std::uint64_t samples_taken() const { return samples_taken_; }

 private:
  struct TxRecord {
    double sent_time = 0.0;
    double first_sent_time = 0.0;  // window start when this packet left
    std::uint64_t delivered = 0;   // sampler delivered count at transmit
    double delivered_time = 0.0;   // sampler delivered_time at transmit
    bool app_limited = false;
  };

  RateSamplerConfig cfg_;
  std::map<SeqNo, TxRecord> records_;

  std::uint64_t delivered_ = 0;
  double delivered_time_ = 0.0;
  double first_sent_time_ = 0.0;
  // Non-zero: delivered count up to which samples are app-limited
  // (delivered + in-flight at the mark; 0 = not limited). The sentinel 1
  // covers "limited before anything was delivered".
  std::uint64_t app_limited_until_ = 0;

  // Per-ACK accumulation: the snapshot of the most recently *sent*
  // packet among those this ACK delivered (largest send time wins — its
  // window is the freshest view of the path).
  bool pending_ = false;
  TxRecord pending_probe_;
  double pending_probe_sent_ = -1.0;
  double pending_rtt_ = -1.0;
  std::uint64_t prior_delivered_ = 0;

  std::uint64_t samples_taken_ = 0;
};

// Windowed max-filter over bandwidth samples, keyed by delivery rounds
// (one round ~= one window's worth of deliveries), so a bandwidth spike
// ages out after `window_rounds` rounds without deliveries re-proving it.
class BandwidthEstimator {
 public:
  explicit BandwidthEstimator(std::uint64_t window_rounds = 10)
      : window_rounds_(window_rounds) {}

  // Feed one sample (invalid samples are ignored). `round` is the
  // caller's delivery-round counter (see BbrModel / JtpDrSender).
  void on_sample(const RateSample& s, std::uint64_t round);

  double bw_pps() const;
  bool has_estimate() const { return !window_.empty(); }
  std::uint64_t app_limited_discards() const { return app_limited_discards_; }

 private:
  std::uint64_t window_rounds_;
  // Monotonically decreasing (value) deque of (round, bw) maxima.
  std::deque<std::pair<std::uint64_t, double>> window_;
  std::uint64_t app_limited_discards_ = 0;
};

// Windowed min-filter over RTT samples, keyed by time.
class MinRttTracker {
 public:
  explicit MinRttTracker(double window_s = 10.0) : window_s_(window_s) {}

  void update(double rtt_s, double now);

  double min_rtt_s() const;
  bool has_estimate() const { return !window_.empty(); }

 private:
  double window_s_;
  // Monotonically increasing (value) deque of (time, rtt) minima.
  std::deque<std::pair<double, double>> window_;
};

}  // namespace jtp::core
