#include "core/rate_sample.h"

#include <algorithm>

namespace jtp::core {

void RateSampler::on_sent(SeqNo seq, double now) {
  if (records_.empty()) {
    // First packet of a new flight: restart the sampling window so idle
    // periods never inflate an interval (tcp_rate_skb_sent's "no packets
    // in flight" reset).
    first_sent_time_ = now;
    delivered_time_ = now;
  }
  TxRecord rec;
  rec.sent_time = now;
  rec.first_sent_time = first_sent_time_;
  rec.delivered = delivered_;
  rec.delivered_time = delivered_time_;
  rec.app_limited = app_limited_until_ != 0;
  records_[seq] = rec;  // a retransmission overwrites the stale flight
}

void RateSampler::on_delivered(SeqNo seq, double now) {
  auto it = records_.find(seq);
  // No snapshot: either never sent through this sampler (pre-attach seq)
  // or already credited by an earlier ACK (SNACK/SACK hole closure later
  // covered by a cumulative advance). Crediting is once-per-seq.
  if (it == records_.end()) return;
  ++delivered_;
  delivered_time_ = now;
  // The app-limited mark expires once every packet outstanding at the
  // mark has been delivered: later windows measure the path again.
  if (app_limited_until_ != 0 && delivered_ > app_limited_until_)
    app_limited_until_ = 0;

  const TxRecord& rec = it->second;
  // Most recently sent packet wins as the probe: its window is the
  // freshest complete view of the path (tcp_rate_skb_delivered).
  if (!pending_ || rec.sent_time >= pending_probe_sent_) {
    pending_ = true;
    pending_probe_ = rec;
    pending_probe_sent_ = rec.sent_time;
    pending_rtt_ = now - rec.sent_time;
    // The send phase of the next window starts at this probe's transmit.
    first_sent_time_ = rec.sent_time;
  }
  records_.erase(it);
}

RateSample RateSampler::take_sample(double now) {
  RateSample s;
  if (!pending_) return s;  // the ACK delivered nothing we had snapshotted
  pending_ = false;

  s.delivered = delivered_ - pending_probe_.delivered;
  s.send_interval_s = pending_probe_sent_ - pending_probe_.first_sent_time;
  s.ack_interval_s = now - pending_probe_.delivered_time;
  s.interval_s = std::max(s.send_interval_s, s.ack_interval_s);
  s.rtt_s = pending_rtt_;
  s.app_limited = pending_probe_.app_limited;
  if (s.delivered == 0 || s.interval_s < cfg_.min_interval_s) return s;
  s.bw_pps = static_cast<double>(s.delivered) / s.interval_s;
  s.valid = true;
  ++samples_taken_;
  return s;
}

void RateSampler::mark_app_limited(std::uint64_t in_flight) {
  // Everything delivered up to (delivered + in_flight) was sent across a
  // window that touched app-limited time; max(..., 1) keeps the mark
  // meaningful before the first delivery.
  app_limited_until_ = std::max<std::uint64_t>(delivered_ + in_flight, 1);
}

void RateSampler::discard_below(SeqNo seq) {
  records_.erase(records_.begin(), records_.lower_bound(seq));
}

// ---------------------------------------------------------------------------

void BandwidthEstimator::on_sample(const RateSample& s, std::uint64_t round) {
  if (!s.valid) return;
  // App-limited windows measure the application, not the path: they may
  // refresh or lower the estimate (keeping it honest when the path
  // degrades during a slack period) but must never raise it.
  if (s.app_limited && s.bw_pps > bw_pps() && has_estimate()) {
    ++app_limited_discards_;
    return;
  }
  while (!window_.empty() && window_.back().second <= s.bw_pps)
    window_.pop_back();
  window_.emplace_back(round, s.bw_pps);
  // Expire maxima older than the window.
  while (!window_.empty() &&
         window_.front().first + window_rounds_ < round)
    window_.pop_front();
}

double BandwidthEstimator::bw_pps() const {
  return window_.empty() ? 0.0 : window_.front().second;
}

// ---------------------------------------------------------------------------

void MinRttTracker::update(double rtt_s, double now) {
  if (rtt_s <= 0.0) return;
  while (!window_.empty() && window_.back().second >= rtt_s)
    window_.pop_back();
  window_.emplace_back(now, rtt_s);
  while (!window_.empty() && window_.front().first + window_s_ < now)
    window_.pop_front();
}

double MinRttTracker::min_rtt_s() const {
  return window_.empty() ? -1.0 : window_.front().second;
}

}  // namespace jtp::core
