// eJTP receiver: destination-based control (paper §5).
//
// The receiver owns every control decision of the connection:
//   * a flip-flop path monitor watches the min-available-rate samples
//     stamped into data headers; a second monitor (inside the energy-budget
//     controller) watches per-packet energy-used;
//   * a PI²/MD controller turns the monitored available rate into the
//     sending rate advertised to the source;
//   * feedback (ACK) packets are generated at a variable rate: regularly
//     every T = max(TLowerBound_eff, n/rate) seconds, immediately when a
//     monitor flags a persistent path change, and never faster than the
//     data rate;
//   * SNACKs list only the missing packets the application still needs
//     after applying its loss tolerance (SeqTracker's waive quota);
//   * the receiver's feedback period T is advertised to the sender (ACK
//     "sender timeout") so the sender can detect feedback loss.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/energy_controller.h"
#include "core/env.h"
#include "core/packet.h"
#include "core/path_monitor.h"
#include "core/rate_controller.h"
#include "core/seq_tracker.h"
#include "core/transport.h"
#include "core/types.h"

namespace jtp::core {

enum class FeedbackMode {
  kVariable,  // JTP: low-frequency regular + monitor-triggered early ACKs
  kConstant,  // fixed feedback rate (Fig. 7 comparison, ATP-style)
};

struct ReceiverConfig {
  FlowId flow = 0;
  NodeId src = kInvalidNode;  // data source (= ACK destination)
  NodeId dst = kInvalidNode;  // this node
  double loss_tolerance = 0.0;
  FeedbackMode feedback_mode = FeedbackMode::kVariable;
  double constant_feedback_rate_pps = 0.2;  // only in kConstant mode
  double t_lower_bound_s = 10.0;            // Table 1
  double feedback_packets_per_period = 4.0; // the "n" in T = n/rate
  double rtt_estimate_s = 2.0;              // for the cache-pressure bound
  std::size_t cache_size_packets = 1000;    // C, for TLowerBound <= C/r - RTT
  std::size_t max_snack_entries = 32;       // ACK header space budget
  // A missing seq is re-requested at most once per this interval, giving
  // an earlier recovery (cache copy or source rtx) time to arrive before
  // the request is repeated. 0 = derive from the RTT estimate.
  double snack_retry_interval_s = 0.0;
  // A gap becomes requestable only after this many later packets arrive
  // (in-flight packets behind deep queues are not losses). Bypassed when
  // the flow has gone quiet, so tail losses are still recovered.
  int reorder_threshold = 3;
  double min_trigger_spacing_factor = 0.25; // early ACKs >= this × T apart
  double energy_beta = 2.0;                 // β in e = β·eUCL (eq. 13)
  double app_delivery_cap_pps = 1e6;        // receiver up-stack rate limit
  PathMonitorConfig monitor;
  RateControllerConfig rate;
};

class EjtpReceiver final : public TransportReceiver {
 public:
  EjtpReceiver(Env& env, PacketSink& sink, ReceiverConfig cfg);
  ~EjtpReceiver() override;
  EjtpReceiver(const EjtpReceiver&) = delete;
  EjtpReceiver& operator=(const EjtpReceiver&) = delete;

  void start() override;
  void stop() override;

  // Called by the node when a data packet of this flow arrives.
  void on_data(const Packet& p) override;

  // --- instrumentation ---
  std::uint64_t acks_sent() const override { return acks_sent_; }
  std::uint64_t triggered_acks() const { return triggered_acks_; }
  std::uint64_t delivered_packets() const override {
    return tracker_.received_count();
  }
  std::uint64_t waived_packets() const override {
    return tracker_.waived_count();
  }
  std::uint64_t duplicates() const { return tracker_.duplicate_count(); }
  double delivered_payload_bits() const override { return delivered_bits_; }
  double current_feedback_period() const;
  double advertised_rate_pps() const { return controller_.rate(); }
  const PathMonitor& rate_monitor() const { return rate_monitor_; }
  const SeqTracker& tracker() const { return tracker_; }

  // Per-delivered-packet callback (seq, payload bytes), for app layers.
  void set_on_deliver(std::function<void(SeqNo, std::uint32_t)> cb) {
    on_deliver_ = std::move(cb);
  }

 private:
  void send_feedback(bool triggered);
  void arm_regular_feedback();
  double data_rate_estimate() const;

  Env& env_;
  PacketSink& sink_;
  ReceiverConfig cfg_;

  SeqTracker tracker_;
  PathMonitor rate_monitor_;
  EnergyBudgetController energy_ctl_;
  RateController controller_;

  std::unordered_map<SeqNo, double> snack_requested_at_;
  std::vector<SeqNo> snack_scratch_;  // reused per feedback; no realloc

  bool running_ = false;
  TimerId feedback_timer_ = 0;
  bool feedback_armed_ = false;
  double last_feedback_time_ = -1e18;
  double last_data_time_ = -1.0;
  double delivered_bits_ = 0.0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t triggered_acks_ = 0;
  std::uint64_t ack_serial_ = 0;

  std::function<void(SeqNo, std::uint32_t)> on_deliver_;
};

}  // namespace jtp::core
