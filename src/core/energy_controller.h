// Energy-budget controller (paper §5.2.4, eq. 13).
//
// The destination monitors the per-packet energy-used field with a flip-flop
// path monitor and reports back a budget e = β·eUCL, β > 1, where eUCL is
// the monitor's current upper control limit. β expresses per-packet
// importance: the extra effort the network may invest under transient
// surges or route failures.
#pragma once

#include "core/path_monitor.h"
#include "core/types.h"

namespace jtp::core {

class EnergyBudgetController {
 public:
  // `beta` must be > 1 so the monitor can still detect outliers.
  EnergyBudgetController(double beta, PathMonitorConfig monitor_cfg = {});

  // Feeds the energy-used value observed in an arriving data packet.
  // Returns true when the underlying monitor triggered (early feedback).
  bool observe(Joules energy_used);

  // Budget to advertise in the next ACK: β·eUCL(t)  (eq. 13).
  Joules budget() const;

  double beta() const { return beta_; }
  const PathMonitor& monitor() const { return monitor_; }

 private:
  double beta_;
  PathMonitor monitor_;
};

}  // namespace jtp::core
