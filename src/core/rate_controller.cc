#include "core/rate_controller.h"

#include <algorithm>
#include <stdexcept>

namespace jtp::core {

RateController::RateController(RateControllerConfig cfg)
    : cfg_(cfg), rate_(cfg.initial_rate_pps) {
  if (cfg.ki <= 0.0 || cfg.ki >= 1.0)
    throw std::invalid_argument("RateController: require 0 < KI < 1");
  if (cfg.kd <= 0.0 || cfg.kd >= 1.0)
    throw std::invalid_argument("RateController: require 0 < KD < 1");
  if (cfg.min_rate_pps <= 0.0 || cfg.max_rate_pps < cfg.min_rate_pps)
    throw std::invalid_argument("RateController: bad rate bounds");
  rate_ = std::clamp(rate_, cfg_.min_rate_pps, cfg_.max_rate_pps);
}

double RateController::update(double avg_available_pps) {
  if (avg_available_pps > cfg_.delta_pps) {
    rate_ += cfg_.ki * avg_available_pps /
             std::max(rate_, cfg_.increase_divisor_floor);
  } else {
    rate_ *= cfg_.kd;
  }
  rate_ = std::clamp(rate_, cfg_.min_rate_pps, cfg_.max_rate_pps);
  return rate_;
}

double RateController::backoff() {
  rate_ = std::clamp(rate_ * cfg_.kd, cfg_.min_rate_pps, cfg_.max_rate_pps);
  return rate_;
}

void RateController::set_rate_cap(double cap_pps) {
  if (cap_pps <= 0.0)
    throw std::invalid_argument("RateController: cap must be positive");
  cfg_.max_rate_pps = cap_pps;
  rate_ = std::min(rate_, cap_pps);
}

}  // namespace jtp::core
