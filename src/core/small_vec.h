// SmallVec: a vector of trivially-copyable elements with inline storage.
//
// The SNACK sets ride in every ACK header; as std::vectors they cost two
// heap allocations per ACK per hop. SmallVec keeps up to N elements
// inline (N is sized to the protocols' per-ACK entry caps, so in-tree
// traffic never spills) and falls back to a heap buffer beyond that. A
// spill is counted in a thread-local counter so tests can pin the
// zero-allocation claim without instrumenting the allocator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace jtp::core {

// Thread-local count of SmallVec spills-to-heap (per thread, monotone).
// One Simulator per thread, so per-thread deltas are per-run deltas.
inline std::uint64_t& small_vec_spill_count() {
  thread_local std::uint64_t n = 0;
  return n;
}

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for POD-like elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> il) { assign(il.begin(), il.size()); }
  SmallVec(const SmallVec& o) { assign(o.data_, o.size_); }
  SmallVec(SmallVec&& o) noexcept { steal(o); }
  ~SmallVec() { free_heap(); }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.data_, o.size_);
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      free_heap();
      steal(o);
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> il) {
    assign(il.begin(), il.size());
    return *this;
  }
  // std::vector interop (tests and migration seams).
  SmallVec& operator=(const std::vector<T>& v) {
    assign(v.data(), v.size());
    return *this;
  }
  SmallVec& operator=(std::vector<T>&& v) {
    assign(v.data(), v.size());
    return *this;
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  static constexpr std::size_t inline_capacity() { return N; }
  bool spilled() const { return data_ != inline_buf_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = v;
  }

  void pop_back() { --size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }
  friend bool operator==(const SmallVec& a, const std::vector<T>& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<T>& a, const SmallVec& b) {
    return b == a;
  }
  friend bool operator!=(const SmallVec& a, const std::vector<T>& b) {
    return !(a == b);
  }
  friend bool operator!=(const std::vector<T>& a, const SmallVec& b) {
    return !(b == a);
  }

 private:
  void assign(const T* src, std::size_t n) {
    clear();
    reserve(n);
    std::copy(src, src + n, data_);
    size_ = static_cast<std::uint32_t>(n);
  }

  // Take o's contents; o is left empty (inline). A spilled source moves
  // by pointer; an inline source copies its elements (trivial Ts).
  void steal(SmallVec& o) noexcept {
    if (o.spilled()) {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_buf_;
      o.cap_ = N;
    } else {
      data_ = inline_buf_;
      cap_ = N;
      size_ = o.size_;
      std::copy(o.inline_buf_, o.inline_buf_ + o.size_, inline_buf_);
    }
    o.size_ = 0;
  }

  void grow(std::size_t want) {
    const std::size_t new_cap = std::max<std::size_t>(want, N * 2);
    T* heap = new T[new_cap];
    std::copy(data_, data_ + size_, heap);
    free_heap();
    data_ = heap;
    cap_ = static_cast<std::uint32_t>(new_cap);
    ++small_vec_spill_count();
  }

  void free_heap() {
    if (spilled()) {
      delete[] data_;
      data_ = inline_buf_;
      cap_ = N;
    }
  }

  T* data_ = inline_buf_;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
  T inline_buf_[N];
};

}  // namespace jtp::core
