// iJTP: the hop-by-hop module (paper §2.2.2, Algorithms 1 and 2).
//
// iJTP is a MAC plug-in invoked just before every transmission over the air
// interface (PreXmit) and just after every reception (PostRcv). It keeps no
// per-flow state: everything it needs rides in packet headers (Dynamic
// Packet State) plus a shared LRU cache of traversing data packets.
//
// PreXmit (Algorithm 1):
//   1. charge the transmission's energy to the packet; drop if over budget;
//   2. on the packet's first transmission at this node, pick the per-link
//      attempt budget from the loss-tolerance field and the link's loss
//      estimate (eqs. 2–4) and rewrite the loss-tolerance field (eq. 3);
//   3. stamp the header with the min effective available rate so far.
//
// PostRcv (Algorithm 2):
//   - DATA: insert into the cache;
//   - ACK: retransmit any SNACKed packets found in the cache and move them
//     from the SNACK's missing set to its locally-recovered set, so
//     upstream caches and the source do not retransmit them again.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cache.h"
#include "core/env.h"
#include "core/packet.h"
#include "core/reliability.h"

namespace jtp::core {

struct IjtpConfig {
  std::size_t cache_capacity_packets = 1000;  // Table 1
  int max_attempts = kDefaultMaxAttempts;     // MAC cap, Table 1
  bool caching_enabled = true;                // false => JNC baseline
  bool rewrite_locally_recovered = true;      // ablation: duplicate rtx
  // Cap on cache retransmissions served from one traversing ACK, so a
  // large SNACK cannot burst-flood this node's transmit queue. Seqs
  // beyond the cap stay in SNACK.missing for upstream caches / the source.
  std::size_t max_cache_rtx_per_ack = 8;
};

class IjtpModule {
 public:
  explicit IjtpModule(IjtpConfig cfg = {});

  struct PreXmitResult {
    bool drop = false;        // energy budget exceeded: do not transmit
    int max_attempts = 1;     // attempt budget handed to the MAC
  };

  // `first_attempt` is true for the packet's first transmission at this
  // node (retries of the same packet skip the attempt-budget computation).
  // `tx_energy` is the energy this attempt will consume, `remaining_hops`
  // comes from the node's (possibly stale) routing view.
  PreXmitResult pre_xmit(Packet& p, const LinkView& link, int remaining_hops,
                         Joules tx_energy, bool first_attempt);

  // Processes a received packet (Algorithm 2). For ACKs, SNACKed packets
  // found in the cache are handed to `forward` (the node's transmit path,
  // toward the data destination); `forward` returns false when the local
  // queue refuses the packet. Only *successfully forwarded* packets are
  // moved from SNACK.missing to SNACK.locally_recovered — a recovery that
  // never left this node must stay visible upstream. Returns the number
  // of packets locally retransmitted.
  using ForwardFn = std::function<bool(Packet&&)>;
  std::size_t post_rcv(Packet& p, const ForwardFn& forward);

  // Convenience for data packets / tests: no forwarding needed.
  std::size_t post_rcv(Packet& p) {
    return post_rcv(p, [](Packet&&) { return true; });
  }

  PacketCache& cache() { return cache_; }
  const PacketCache& cache() const { return cache_; }
  const IjtpConfig& config() const { return cfg_; }

  std::uint64_t energy_drops() const { return energy_drops_; }
  std::uint64_t cache_retransmissions() const { return cache_rtx_; }

 private:
  IjtpConfig cfg_;
  PacketCache cache_;
  std::uint64_t energy_drops_ = 0;
  std::uint64_t cache_rtx_ = 0;
};

}  // namespace jtp::core
