#include "routing/link_state.h"

#include <limits>
#include <queue>
#include <stdexcept>

namespace jtp::routing {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max();
}

LinkStateRouting::LinkStateRouting(sim::Simulator& sim,
                                   const phy::Topology& topo,
                                   RoutingConfig cfg)
    : sim_(sim), topo_(topo), cfg_(cfg) {
  if (cfg.refresh_interval_s <= 0)
    throw std::invalid_argument("LinkStateRouting: bad refresh interval");
  recompute();
}

void LinkStateRouting::start() {
  if (started_) return;
  started_ = true;
  struct Rearm {
    LinkStateRouting* self;
    double period;
    void operator()() const {
      self->refresh();
      self->sim_.schedule(period, Rearm{self, period});
    }
  };
  sim_.schedule(cfg_.refresh_interval_s, Rearm{this, cfg_.refresh_interval_s});
}

void LinkStateRouting::refresh() { recompute(); }

void LinkStateRouting::recompute() {
  const std::size_t n = topo_.size();
  dist_.assign(n, std::vector<int>(n, kUnreachable));
  next_.assign(n, std::vector<core::NodeId>(n, core::kInvalidNode));
  // BFS from every source over the unit-cost range graph.
  for (core::NodeId s = 0; s < n; ++s) {
    auto& dist = dist_[s];
    auto& next = next_[s];
    dist[s] = 0;
    std::queue<core::NodeId> q;
    q.push(s);
    std::vector<core::NodeId> parent(n, core::kInvalidNode);
    while (!q.empty()) {
      const core::NodeId u = q.front();
      q.pop();
      for (core::NodeId v : topo_.neighbors(u)) {
        if (dist[v] != kUnreachable) continue;
        dist[v] = dist[u] + 1;
        parent[v] = u;
        q.push(v);
      }
    }
    // First hop toward each destination: walk parents back to s.
    for (core::NodeId d = 0; d < n; ++d) {
      if (d == s || dist[d] == kUnreachable) continue;
      core::NodeId hop = d;
      while (parent[hop] != s) hop = parent[hop];
      next[d] = hop;
    }
  }
  ++refreshes_;
}

void LinkStateRouting::maybe_oracle_refresh() const {
  if (cfg_.oracle) const_cast<LinkStateRouting*>(this)->recompute();
}

std::optional<core::NodeId> LinkStateRouting::next_hop(core::NodeId at,
                                                       core::NodeId dst) const {
  maybe_oracle_refresh();
  if (at >= next_.size() || dst >= next_.size()) return std::nullopt;
  if (at == dst) return std::nullopt;
  const core::NodeId h = next_[at][dst];
  if (h == core::kInvalidNode) return std::nullopt;
  return h;
}

std::optional<int> LinkStateRouting::hops(core::NodeId at,
                                          core::NodeId dst) const {
  maybe_oracle_refresh();
  if (at >= dist_.size() || dst >= dist_.size()) return std::nullopt;
  const int d = dist_[at][dst];
  if (d == kUnreachable) return std::nullopt;
  return d;
}

std::optional<std::vector<core::NodeId>> LinkStateRouting::path(
    core::NodeId src, core::NodeId dst) const {
  maybe_oracle_refresh();
  if (src >= next_.size() || dst >= next_.size()) return std::nullopt;
  std::vector<core::NodeId> p{src};
  core::NodeId cur = src;
  while (cur != dst) {
    const core::NodeId h = next_[cur][dst];
    if (h == core::kInvalidNode) return std::nullopt;
    p.push_back(h);
    cur = h;
    if (p.size() > next_.size()) return std::nullopt;  // defensive: loop
  }
  return p;
}

}  // namespace jtp::routing
