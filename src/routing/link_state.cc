#include "routing/link_state.h"

#include <limits>
#include <stdexcept>

namespace jtp::routing {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max();
}

LinkStateRouting::LinkStateRouting(sim::Simulator& sim,
                                   const phy::Topology& topo,
                                   RoutingConfig cfg)
    : sim_(sim),
      topo_(topo),
      cfg_(cfg),
      snapshot_(topo),
      snapshot_gen_(topo.generation()) {
  if (cfg.refresh_interval_s <= 0)
    throw std::invalid_argument("LinkStateRouting: bad refresh interval");
  const std::size_t n = topo_.size();
  dist_.assign(n * n, kUnreachable);
  next_.assign(n * n, core::kInvalidNode);
  row_epoch_.assign(n, 0);  // epoch_ starts at 1: no row is valid yet
  stats_.refreshes = 1;     // construction takes the first view
  stats_.snapshots = 1;
}

void LinkStateRouting::start() {
  if (started_) return;
  started_ = true;
  struct Rearm {
    LinkStateRouting* self;
    double period;
    void operator()() const {
      self->refresh();
      self->sim_.schedule(period, Rearm{self, period});
    }
  };
  sim_.schedule(cfg_.refresh_interval_s, Rearm{this, cfg_.refresh_interval_s});
}

void LinkStateRouting::refresh() {
  ++stats_.refreshes;
  sync_view();
}

void LinkStateRouting::sync_view() const {
  if (topo_.generation() == snapshot_gen_) return;  // view already current
  snapshot_ = topo_;
  snapshot_gen_ = topo_.generation();
  ++epoch_;  // invalidates every row without touching them
  ++stats_.snapshots;
}

void LinkStateRouting::maybe_oracle_refresh() const {
  if (!cfg_.oracle) return;
  if (topo_.generation() == snapshot_gen_) {
    ++stats_.oracle_skips;  // unchanged topology: nothing to recompute
    return;
  }
  ++stats_.refreshes;
  sync_view();
}

void LinkStateRouting::ensure_row(core::NodeId s) const {
  if (row_epoch_[s] == epoch_) {
    ++stats_.row_reuses;
    return;
  }
  const std::size_t n = snapshot_.size();
  int* dist = dist_.data() + static_cast<std::size_t>(s) * n;
  core::NodeId* next = next_.data() + static_cast<std::size_t>(s) * n;
  for (std::size_t d = 0; d < n; ++d) {
    dist[d] = kUnreachable;
    next[d] = core::kInvalidNode;
  }
  // BFS over the snapshot's unit-cost range graph, carrying the first hop
  // forward: next[v] inherits next[u] (or v itself when u is the source),
  // which walks out to the same first hop the old parent-chain walk found.
  dist[s] = 0;
  bfs_queue_.clear();
  bfs_queue_.push_back(s);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const core::NodeId u = bfs_queue_[head];
    snapshot_.neighbors_into(u, bfs_nbrs_);
    for (core::NodeId v : bfs_nbrs_) {
      if (dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      next[v] = (u == s) ? v : next[u];
      bfs_queue_.push_back(v);
    }
  }
  row_epoch_[s] = epoch_;
  ++stats_.rows_built;
}

std::optional<core::NodeId> LinkStateRouting::next_hop(core::NodeId at,
                                                       core::NodeId dst) const {
  maybe_oracle_refresh();
  const std::size_t n = topo_.size();
  if (at >= n || dst >= n) return std::nullopt;
  if (at == dst) return std::nullopt;
  ensure_row(at);
  const core::NodeId h = next_[static_cast<std::size_t>(at) * n + dst];
  if (h == core::kInvalidNode) return std::nullopt;
  return h;
}

std::optional<int> LinkStateRouting::hops(core::NodeId at,
                                          core::NodeId dst) const {
  maybe_oracle_refresh();
  const std::size_t n = topo_.size();
  if (at >= n || dst >= n) return std::nullopt;
  ensure_row(at);
  const int d = dist_[static_cast<std::size_t>(at) * n + dst];
  if (d == kUnreachable) return std::nullopt;
  return d;
}

std::optional<std::vector<core::NodeId>> LinkStateRouting::path(
    core::NodeId src, core::NodeId dst) const {
  maybe_oracle_refresh();
  const std::size_t n = topo_.size();
  if (src >= n || dst >= n) return std::nullopt;
  std::vector<core::NodeId> p{src};
  core::NodeId cur = src;
  while (cur != dst) {
    ensure_row(cur);
    const core::NodeId h = next_[static_cast<std::size_t>(cur) * n + dst];
    if (h == core::kInvalidNode) return std::nullopt;
    p.push_back(h);
    cur = h;
    if (p.size() > n) return std::nullopt;  // defensive: loop
  }
  return p;
}

}  // namespace jtp::routing
