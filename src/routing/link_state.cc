#include "routing/link_state.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace jtp::routing {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max();
}

LinkStateRouting::LinkStateRouting(sim::Simulator& sim,
                                   const phy::Topology& topo,
                                   RoutingConfig cfg)
    : sim_(sim),
      topo_(topo),
      cfg_(cfg),
      snapshot_(topo),
      snapshot_gen_(topo.generation()) {
  if (cfg.refresh_interval_s <= 0)
    throw std::invalid_argument("LinkStateRouting: bad refresh interval");
  if (cfg.repair_fraction < 0.0 || cfg.repair_fraction > 1.0)
    throw std::invalid_argument("LinkStateRouting: bad repair fraction");
  const std::size_t n = topo_.size();
  dist_.assign(n * n, kUnreachable);
  next_.assign(n * n, core::kInvalidNode);
  order_.assign(n * n, 0);
  row_epoch_.assign(n, 0);  // epoch_ starts at 1: no row is valid yet
  stats_.refreshes = 1;     // construction takes the first view
  stats_.snapshots = 1;
}

void LinkStateRouting::start() {
  if (started_) return;
  started_ = true;
  struct Rearm {
    LinkStateRouting* self;
    double period;
    void operator()() const {
      self->refresh();
      self->sim_.schedule(period, Rearm{self, period});
    }
  };
  sim_.schedule(cfg_.refresh_interval_s, Rearm{this, cfg_.refresh_interval_s});
}

void LinkStateRouting::refresh() {
  ++stats_.refreshes;
  sync_view();
}

void LinkStateRouting::sync_view() const {
  if (topo_.generation() == snapshot_gen_) return;  // view already current
  ++stats_.snapshots;
  if (cfg_.incremental && valid_rows_ > 0) {
    // The move log is a locator hint, not a correctness input: when the
    // ring has overflowed the window (a batched 5 s sync over a mobile
    // field logs more position writes than it holds), every node is a
    // candidate mover, and the changed-edge diff below still measures —
    // and gates on — the actual rewiring.
    if (!topo_.moved_since(snapshot_gen_, moved_scratch_)) {
      moved_scratch_.resize(snapshot_.size());
      std::iota(moved_scratch_.begin(), moved_scratch_.end(),
                core::NodeId{0});
    }
    if (sync_incremental(moved_scratch_)) return;
  }
  sync_full();
}

void LinkStateRouting::sync_full() const {
  snapshot_ = topo_;
  snapshot_gen_ = topo_.generation();
  ++epoch_;  // invalidates every row without touching them
  valid_rows_ = 0;
}

bool LinkStateRouting::sync_incremental(
    const std::vector<core::NodeId>& moved) const {
  const std::size_t n = snapshot_.size();
  // No mover-count gate here: a batched sync (one 5 s refresh over a
  // waypoint field) legitimately marks most nodes as moved while barely
  // touching adjacency. The fallback decision belongs to the edge diff,
  // computed below.

  // Old adjacency of every mover (against the all-old snapshot), then
  // apply the moves, then diff against the all-new adjacency. An edge can
  // only change if it is incident to a mover, so the union of per-mover
  // symmetric differences is exactly the changed-edge set.
  old_nbrs_flat_.clear();
  old_nbrs_offset_.clear();
  for (const core::NodeId m : moved) {
    old_nbrs_offset_.push_back(old_nbrs_flat_.size());
    snapshot_.neighbors_into(m, bfs_nbrs_);
    old_nbrs_flat_.insert(old_nbrs_flat_.end(), bfs_nbrs_.begin(),
                          bfs_nbrs_.end());
  }
  old_nbrs_offset_.push_back(old_nbrs_flat_.size());
  for (const core::NodeId m : moved)
    snapshot_.set_position(m, topo_.position(m));
  snapshot_gen_ = topo_.generation();

  changed_edges_.clear();
  for (std::size_t i = 0; i < moved.size(); ++i) {
    const core::NodeId m = moved[i];
    snapshot_.neighbors_into(m, bfs_nbrs_);
    const auto* old_begin = old_nbrs_flat_.data() + old_nbrs_offset_[i];
    const auto* old_end = old_nbrs_flat_.data() + old_nbrs_offset_[i + 1];
    const auto* nw = bfs_nbrs_.data();
    const auto* nw_end = nw + bfs_nbrs_.size();
    // Both lists ascending: linear merge, either side of the symmetric
    // difference is an edge that appeared or vanished. An edge between
    // two movers shows up twice ((m,x) and (x,m)) — harmless below.
    while (old_begin != old_end || nw != nw_end) {
      if (nw == nw_end || (old_begin != old_end && *old_begin < *nw)) {
        changed_edges_.emplace_back(m, *old_begin++);
      } else if (old_begin == old_end || *nw < *old_begin) {
        changed_edges_.emplace_back(m, *nw++);
      } else {
        ++old_begin;
        ++nw;
      }
    }
  }

  if (changed_edges_.empty()) {
    // Pure position wiggle: nobody crossed a range boundary, so the graph
    // — and every cached row — is untouched.
    stats_.rows_kept += valid_rows_;
    return true;
  }

  // Normalize, sort and deduplicate the raw pairs (a mover-mover edge
  // appears twice), then bucket them per lower endpoint — a CSR index
  // built once per sync, walked once per cached row below. The fallback
  // gate reads this deduplicated edge count: it measures actual
  // rewiring, which is what makes repair worthwhile or not.
  for (auto& e : changed_edges_)
    if (e.first > e.second) std::swap(e.first, e.second);
  std::sort(changed_edges_.begin(), changed_edges_.end());
  changed_edges_.erase(
      std::unique(changed_edges_.begin(), changed_edges_.end()),
      changed_edges_.end());
  if (static_cast<double>(changed_edges_.size()) >
      cfg_.repair_fraction * static_cast<double>(n))
    return false;  // mass rewiring: one big invalidation beats many patches
  edge_heads_.clear();
  edge_offsets_.clear();
  edge_partners_.clear();
  for (const auto& e : changed_edges_) {
    if (edge_heads_.empty() || edge_heads_.back() != e.first) {
      edge_heads_.push_back(e.first);
      edge_offsets_.push_back(edge_partners_.size());
    }
    edge_partners_.push_back(e.second);
  }
  edge_offsets_.push_back(edge_partners_.size());

  const auto reset_limit =
      static_cast<std::size_t>(cfg_.repair_fraction * static_cast<double>(n));
  for (core::NodeId s = 0; s < n; ++s) {
    if (row_epoch_[s] != epoch_) continue;  // stale anyway: rebuilt on demand
    const int* dist = dist_.data() + static_cast<std::size_t>(s) * n;
    // dmin: the closest the change comes to this source. No path of
    // length <= dmin can traverse a changed edge, so everything at
    // dist <= dmin (distance AND first hop) is provably unaffected.
    // Equal-level edges are no-ops for this row and don't lower the cut:
    // a level-d vertex is discovered while level d-1 is processed, so an
    // edge between two level-d vertices never carries a discovery — a
    // removed one was unused, and an added one cannot cause a first
    // divergence from the fresh build (both ends are already discovered,
    // identically, by the time either is processed).
    int dmin = kUnreachable;
    for (std::size_t h = 0; h < edge_heads_.size() && dmin > 0; ++h) {
      const int du = dist[edge_heads_[h]];
      for (std::size_t j = edge_offsets_[h]; j < edge_offsets_[h + 1]; ++j) {
        const int dv = dist[edge_partners_[j]];
        if (du == dv) continue;  // same level (or both unreachable): no-op
        const int lo = std::min(du, dv);
        if (lo < dmin) {
          dmin = lo;
          if (dmin == 0) break;  // cannot get closer to the source
        }
      }
    }
    if (dmin == kUnreachable) {
      // Every changed edge is a no-op for this row: equal-level, or
      // between unreachable vertices (reachability cannot grow from
      // those — reaching a new edge would require reaching an endpoint).
      ++stats_.rows_kept;
      continue;
    }
    // Repair cost estimate: the reachable vertices past dmin that must be
    // re-derived. Unreachable vertices don't count — if an inserted edge
    // connects a new region, visiting it is work a full rebuild would
    // have paid too.
    std::size_t reset = 0;
    for (std::size_t d = 0; d < n; ++d)
      if (dist[d] > dmin && dist[d] != kUnreachable) ++reset;
    if (reset > reset_limit) {
      row_epoch_[s] = 0;  // repair would approach a rebuild: drop the row
      --valid_rows_;
      continue;
    }
    stats_.repair_visits += repair_row(s, dmin);
    ++stats_.rows_repaired;
  }
  return true;
}

std::size_t LinkStateRouting::repair_row(core::NodeId s, int dmin) const {
  const std::size_t n = snapshot_.size();
  int* dist = dist_.data() + static_cast<std::size_t>(s) * n;
  core::NodeId* next = next_.data() + static_cast<std::size_t>(s) * n;
  std::uint32_t* order = order_.data() + static_cast<std::size_t>(s) * n;
  // Reset everything past dmin and gather the dist == dmin frontier in
  // stored discovery order — the exact order a fresh build would process
  // that level in, which is what makes repair bit-identical to rebuild.
  frontier_.clear();
  for (std::size_t d = 0; d < n; ++d) {
    if (dist[d] > dmin) {
      dist[d] = kUnreachable;
      next[d] = core::kInvalidNode;
    } else if (dist[d] == dmin) {
      frontier_.emplace_back(order[d], static_cast<core::NodeId>(d));
    }
  }
  std::sort(frontier_.begin(), frontier_.end());
  bfs_queue_.clear();
  for (const auto& f : frontier_) bfs_queue_.push_back(f.second);
  // Continue the level-order walk over the reset region. Discovery order
  // within each repaired level is assigned afresh; kept and repaired
  // vertices never share a level (kept <= dmin < repaired), so the
  // per-level single-pass invariant the next repair relies on holds.
  std::uint32_t ord = 0;
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const core::NodeId u = bfs_queue_[head];
    snapshot_.neighbors_into(u, bfs_nbrs_);
    for (core::NodeId v : bfs_nbrs_) {
      if (dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      next[v] = (u == s) ? v : next[u];
      order[v] = ord++;
      bfs_queue_.push_back(v);
    }
  }
  return bfs_queue_.size();  // frontier seeds + re-derived vertices
}

void LinkStateRouting::maybe_oracle_refresh() const {
  if (!cfg_.oracle) return;
  if (topo_.generation() == snapshot_gen_) {
    ++stats_.oracle_skips;  // unchanged topology: nothing to recompute
    return;
  }
  ++stats_.refreshes;
  sync_view();
}

void LinkStateRouting::ensure_row(core::NodeId s) const {
  if (row_epoch_[s] == epoch_) {
    ++stats_.row_reuses;
    return;
  }
  const std::size_t n = snapshot_.size();
  int* dist = dist_.data() + static_cast<std::size_t>(s) * n;
  core::NodeId* next = next_.data() + static_cast<std::size_t>(s) * n;
  std::uint32_t* order = order_.data() + static_cast<std::size_t>(s) * n;
  for (std::size_t d = 0; d < n; ++d) {
    dist[d] = kUnreachable;
    next[d] = core::kInvalidNode;
  }
  // BFS over the snapshot's unit-cost range graph, carrying the first hop
  // forward: next[v] inherits next[u] (or v itself when u is the source),
  // which walks out to the same first hop the old parent-chain walk found.
  // The discovery order is recorded per vertex so a later repair can
  // replay any level's frontier in exactly this order.
  dist[s] = 0;
  order[s] = 0;
  bfs_queue_.clear();
  bfs_queue_.push_back(s);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const core::NodeId u = bfs_queue_[head];
    snapshot_.neighbors_into(u, bfs_nbrs_);
    for (core::NodeId v : bfs_nbrs_) {
      if (dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      next[v] = (u == s) ? v : next[u];
      order[v] = static_cast<std::uint32_t>(bfs_queue_.size());
      bfs_queue_.push_back(v);
    }
  }
  row_epoch_[s] = epoch_;  // was invalid (checked on entry): one more valid
  ++valid_rows_;
  ++stats_.rows_built;
}

std::optional<core::NodeId> LinkStateRouting::next_hop(core::NodeId at,
                                                       core::NodeId dst) const {
  maybe_oracle_refresh();
  const std::size_t n = topo_.size();
  if (at >= n || dst >= n) return std::nullopt;
  if (at == dst) return std::nullopt;
  ensure_row(at);
  const core::NodeId h = next_[static_cast<std::size_t>(at) * n + dst];
  if (h == core::kInvalidNode) return std::nullopt;
  return h;
}

std::optional<int> LinkStateRouting::hops(core::NodeId at,
                                          core::NodeId dst) const {
  maybe_oracle_refresh();
  const std::size_t n = topo_.size();
  if (at >= n || dst >= n) return std::nullopt;
  ensure_row(at);
  const int d = dist_[static_cast<std::size_t>(at) * n + dst];
  if (d == kUnreachable) return std::nullopt;
  return d;
}

std::optional<std::vector<core::NodeId>> LinkStateRouting::path(
    core::NodeId src, core::NodeId dst) const {
  maybe_oracle_refresh();
  const std::size_t n = topo_.size();
  if (src >= n || dst >= n) return std::nullopt;
  std::vector<core::NodeId> p{src};
  core::NodeId cur = src;
  while (cur != dst) {
    ensure_row(cur);
    const core::NodeId h = next_[static_cast<std::size_t>(cur) * n + dst];
    if (h == core::kInvalidNode) return std::nullopt;
    p.push_back(h);
    cur = h;
    if (p.size() > n) return std::nullopt;  // defensive: loop
  }
  return p;
}

}  // namespace jtp::routing
