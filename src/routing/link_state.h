// Link-state routing with possibly-stale topology views (paper §2, [29]).
//
// JAVeLEN runs an energy-conserving link-state protocol that gives every
// node a local, *possibly inaccurate*, view of the topology. JTP consumes
// exactly three things from it: the next hop toward a destination, an
// estimate of the remaining path length H_i (used by the reliability math,
// eq. 4), and route symmetry (ACKs retrace the data path, which is what
// lets caches observe them).
//
// We model the protocol's outcome rather than its packet exchange: the
// service snapshots the real connectivity graph every `refresh_interval_s`
// and answers all queries from the latest snapshot. Between refreshes the
// view goes stale exactly the way a periodic link-state flood would. The
// flood's own traffic is excluded from energy accounting, consistent with
// the paper's metric ("we will not consider the energy consumed for
// network maintenance by the lower layers").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"
#include "phy/topology.h"
#include "sim/simulator.h"

namespace jtp::routing {

struct RoutingConfig {
  double refresh_interval_s = 5.0;  // staleness bound of the view
  bool oracle = false;              // true => refresh before every query
};

class LinkStateRouting {
 public:
  LinkStateRouting(sim::Simulator& sim, const phy::Topology& topo,
                   RoutingConfig cfg = {});

  // Starts periodic snapshot refreshes.
  void start();

  // Forces an immediate snapshot (tests, oracle mode, mobility hooks).
  void refresh();

  // Next hop from `at` toward `dst` per `at`'s current view.
  // nullopt if the view has no path.
  std::optional<core::NodeId> next_hop(core::NodeId at,
                                       core::NodeId dst) const;

  // Estimated remaining hops from `at` to `dst` (>= 1 when reachable).
  std::optional<int> hops(core::NodeId at, core::NodeId dst) const;

  // Full path per the current view (for tests and traces).
  std::optional<std::vector<core::NodeId>> path(core::NodeId src,
                                                core::NodeId dst) const;

  std::uint64_t refreshes() const { return refreshes_; }
  const RoutingConfig& config() const { return cfg_; }

 private:
  void maybe_oracle_refresh() const;
  void recompute();

  sim::Simulator& sim_;
  const phy::Topology& topo_;
  RoutingConfig cfg_;

  // dist_[u][v] = hop count, next_[u][v] = first hop on a shortest path.
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<core::NodeId>> next_;
  std::uint64_t refreshes_ = 0;
  bool started_ = false;
};

}  // namespace jtp::routing
