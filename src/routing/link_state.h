// Link-state routing with possibly-stale topology views (paper §2, [29]).
//
// JAVeLEN runs an energy-conserving link-state protocol that gives every
// node a local, *possibly inaccurate*, view of the topology. JTP consumes
// exactly three things from it: the next hop toward a destination, an
// estimate of the remaining path length H_i (used by the reliability math,
// eq. 4), and route symmetry (ACKs retrace the data path, which is what
// lets caches observe them).
//
// We model the protocol's outcome rather than its packet exchange: the
// service snapshots the real connectivity graph every `refresh_interval_s`
// and answers all queries from the latest snapshot. Between refreshes the
// view goes stale exactly the way a periodic link-state flood would. The
// flood's own traffic is excluded from energy accounting, consistent with
// the paper's metric ("we will not consider the energy consumed for
// network maintenance by the lower layers").
//
// Scale model: a refresh is an O(n) position snapshot, not an all-pairs
// recompute. Shortest-path rows are flat, contiguous and per-source, built
// lazily the first time a source is queried against the current snapshot
// and kept until the snapshot actually changes (tracked by the topology's
// generation counter). A static 1000-node field therefore pays BFS only
// for sources that carry flows, and pays it once — refreshes and oracle
// queries on an unchanged topology are no-ops. RoutingStats is the
// observable contract for that claim, mirroring sim::PoolStats for the
// data-plane pools.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"
#include "phy/topology.h"
#include "sim/simulator.h"

namespace jtp::routing {

struct RoutingConfig {
  double refresh_interval_s = 5.0;  // staleness bound of the view
  bool oracle = false;              // true => view synced before every query
};

// Control-plane work accounting. In steady state on a static topology,
// `snapshots` and `rows_built` stop moving while `row_reuses` keeps
// counting — a growing `rows_built` under an unchanged topology means
// some path recomputes needlessly (the pre-PR5 oracle bug).
struct RoutingStats {
  std::uint64_t refreshes = 0;     // view syncs (periodic + forced + ctor)
  std::uint64_t snapshots = 0;     // syncs that saw a new topology generation
                                   // and re-copied the position snapshot
  std::uint64_t rows_built = 0;    // per-source BFS row computations
  std::uint64_t row_reuses = 0;    // queries served from an existing row
  std::uint64_t oracle_skips = 0;  // oracle syncs skipped: generation
                                   // unchanged since the current snapshot
};

class LinkStateRouting {
 public:
  LinkStateRouting(sim::Simulator& sim, const phy::Topology& topo,
                   RoutingConfig cfg = {});

  // Starts periodic snapshot refreshes.
  void start();

  // Syncs the view to the live topology (tests, oracle mode, mobility
  // hooks). Cheap when the topology generation has not changed.
  void refresh();

  // Next hop from `at` toward `dst` per `at`'s current view.
  // nullopt if the view has no path.
  std::optional<core::NodeId> next_hop(core::NodeId at,
                                       core::NodeId dst) const;

  // Estimated remaining hops from `at` to `dst` (>= 1 when reachable).
  std::optional<int> hops(core::NodeId at, core::NodeId dst) const;

  // Full path per the current view (for tests and traces).
  std::optional<std::vector<core::NodeId>> path(core::NodeId src,
                                                core::NodeId dst) const;

  const RoutingStats& stats() const { return stats_; }
  std::uint64_t refreshes() const { return stats_.refreshes; }
  const RoutingConfig& config() const { return cfg_; }

 private:
  void maybe_oracle_refresh() const;
  void sync_view() const;
  // Builds the dist/next row for source `s` against the snapshot if it is
  // not already valid for the current view epoch.
  void ensure_row(core::NodeId s) const;

  sim::Simulator& sim_;
  const phy::Topology& topo_;
  RoutingConfig cfg_;

  // The view: a copy of the topology as of the last refresh that observed
  // a change. Queries never touch the live topology, so lazy row builds
  // see exactly what an eager refresh-time recompute would have seen.
  mutable phy::Topology snapshot_;
  mutable std::uint64_t snapshot_gen_;

  // Flat n*n rows: dist_[s*n + d] = hop count, next_[s*n + d] = first hop
  // on a shortest path. A row is valid iff row_epoch_[s] == epoch_.
  mutable std::vector<int> dist_;
  mutable std::vector<core::NodeId> next_;
  mutable std::vector<std::uint64_t> row_epoch_;
  mutable std::uint64_t epoch_ = 1;

  // BFS scratch (reused across row builds; no steady-state allocation).
  mutable std::vector<core::NodeId> bfs_queue_;
  mutable std::vector<core::NodeId> bfs_nbrs_;

  mutable RoutingStats stats_;
  bool started_ = false;
};

}  // namespace jtp::routing
