// Link-state routing with possibly-stale topology views (paper §2, [29]).
//
// JAVeLEN runs an energy-conserving link-state protocol that gives every
// node a local, *possibly inaccurate*, view of the topology. JTP consumes
// exactly three things from it: the next hop toward a destination, an
// estimate of the remaining path length H_i (used by the reliability math,
// eq. 4), and route symmetry (ACKs retrace the data path, which is what
// lets caches observe them).
//
// We model the protocol's outcome rather than its packet exchange: the
// service snapshots the real connectivity graph every `refresh_interval_s`
// and answers all queries from the latest snapshot. Between refreshes the
// view goes stale exactly the way a periodic link-state flood would. The
// flood's own traffic is excluded from energy accounting, consistent with
// the paper's metric ("we will not consider the energy consumed for
// network maintenance by the lower layers").
//
// Scale model: a refresh is an O(n) position snapshot, not an all-pairs
// recompute. Shortest-path rows are flat, contiguous and per-source, built
// lazily the first time a source is queried against the current snapshot
// and kept until the snapshot actually changes (tracked by the topology's
// generation counter). A static 1000-node field therefore pays BFS only
// for sources that carry flows, and pays it once — refreshes and oracle
// queries on an unchanged topology are no-ops. RoutingStats is the
// observable contract for that claim, mirroring sim::PoolStats for the
// data-plane pools.
//
// Churn model (incremental route repair): when the topology moves, the
// view syncs by *diffing* — Topology::moved_since names the moved nodes,
// and the changed edges are the symmetric difference of their old and
// new adjacencies. Rows provably untouched by any changed edge are kept
// verbatim (under small waypoint steps the common case is an empty edge
// diff: adjacency is range-based, so a node must cross a range boundary
// to change it). Affected rows are *repaired*, not rebuilt: with
// dmin = min old distance over endpoints of changed edges that straddle
// two BFS levels (equal-level edges never carry a discovery and are
// filtered out per row), every vertex at dist <= dmin keeps its
// dist/next (no path that short can touch a relevant changed edge), and
// the BFS restarts from the dist == dmin frontier
// over the reset region only — bounded-incremental SSSP in the dynamic-
// BFS spirit. A per-row discovery-order array lets the repair replay the
// frontier in exactly the order a from-scratch build would have used, so
// a repaired row is bit-identical to a fresh one (next-hop tie-breaks —
// and therefore the committed baselines — cannot drift). Oversized
// frontiers fall back to full rebuild; rows_kept/rows_repaired/
// repair_visits make the whole claim observable.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/types.h"
#include "phy/topology.h"
#include "sim/simulator.h"

namespace jtp::routing {

struct RoutingConfig {
  double refresh_interval_s = 5.0;  // staleness bound of the view
  bool oracle = false;              // true => view synced before every query
  // Incremental repair of cached rows on topology change. false restores
  // the PR 5 behavior (any generation bump discards every row); kept as
  // a knob so the before/after cost is measurable in-tree
  // (micro_perf BM_RouteRepairFullRebuild).
  bool incremental = true;
  // Fallback threshold, as a fraction of n: a sync whose *changed-edge*
  // set exceeds it invalidates everything (one big BFS beats many
  // patches), and a row whose reset region exceeds it is dropped and
  // lazily rebuilt instead of repaired. The gate reads the edge diff,
  // not the mover count: a batched sync over a slow waypoint field marks
  // nearly every node as moved while changing almost no adjacency, and
  // falling back there would forfeit exactly the syncs repair is for.
  double repair_fraction = 0.75;
};

// Control-plane work accounting. In steady state on a static topology,
// `snapshots` and `rows_built` stop moving while `row_reuses` keeps
// counting — a growing `rows_built` under an unchanged topology means
// some path recomputes needlessly (the pre-PR5 oracle bug).
struct RoutingStats {
  std::uint64_t refreshes = 0;     // view syncs (periodic + forced + ctor)
  std::uint64_t snapshots = 0;     // syncs that saw a new topology generation
                                   // (incremental diff or full re-copy)
  std::uint64_t rows_built = 0;    // per-source BFS row computations
  std::uint64_t row_reuses = 0;    // queries served from an existing row
  std::uint64_t oracle_skips = 0;  // oracle syncs skipped: generation
                                   // unchanged since the current snapshot
  // Incremental-repair accounting. Under mobility, rows_kept +
  // rows_repaired > 0 is the proof that topology change no longer
  // discards the whole cache; repair_visits / rows_repaired is the mean
  // patched-subtree size (vs n for a full rebuild).
  std::uint64_t rows_kept = 0;      // valid rows untouched by any changed
                                    // edge, survived a sync verbatim
  std::uint64_t rows_repaired = 0;  // valid rows patched below the change
  std::uint64_t repair_visits = 0;  // vertices visited across all repairs
};

class LinkStateRouting {
 public:
  LinkStateRouting(sim::Simulator& sim, const phy::Topology& topo,
                   RoutingConfig cfg = {});

  // Starts periodic snapshot refreshes.
  void start();

  // Syncs the view to the live topology (tests, oracle mode, mobility
  // hooks). Cheap when the topology generation has not changed.
  void refresh();

  // Next hop from `at` toward `dst` per `at`'s current view.
  // nullopt if the view has no path.
  std::optional<core::NodeId> next_hop(core::NodeId at,
                                       core::NodeId dst) const;

  // Estimated remaining hops from `at` to `dst` (>= 1 when reachable).
  std::optional<int> hops(core::NodeId at, core::NodeId dst) const;

  // Full path per the current view (for tests and traces).
  std::optional<std::vector<core::NodeId>> path(core::NodeId src,
                                                core::NodeId dst) const;

  const RoutingStats& stats() const { return stats_; }
  std::uint64_t refreshes() const { return stats_.refreshes; }
  const RoutingConfig& config() const { return cfg_; }

 private:
  void maybe_oracle_refresh() const;
  void sync_view() const;
  // Full-invalidation sync: re-copy the snapshot, bump the epoch.
  void sync_full() const;
  // Diff sync against `moved`: updates the snapshot in place, computes
  // the changed-edge endpoint set, and keeps/repairs/drops each valid
  // row. Returns false when the diff is too large to be worth it (the
  // caller falls back to sync_full).
  bool sync_incremental(const std::vector<core::NodeId>& moved) const;
  // Patches row `s` below the changed edges: keeps every vertex at
  // dist <= dmin, re-runs BFS over the reset region from the dist==dmin
  // frontier (in stored discovery order, so the result is bit-identical
  // to a fresh build). Returns the vertices visited.
  std::size_t repair_row(core::NodeId s, int dmin) const;
  // Builds the dist/next row for source `s` against the snapshot if it is
  // not already valid for the current view epoch.
  void ensure_row(core::NodeId s) const;

  sim::Simulator& sim_;
  const phy::Topology& topo_;
  RoutingConfig cfg_;

  // The view: a copy of the topology as of the last refresh that observed
  // a change. Queries never touch the live topology, so lazy row builds
  // see exactly what an eager refresh-time recompute would have seen.
  mutable phy::Topology snapshot_;
  mutable std::uint64_t snapshot_gen_;

  // Flat n*n rows: dist_[s*n + d] = hop count, next_[s*n + d] = first hop
  // on a shortest path. A row is valid iff row_epoch_[s] == epoch_.
  // order_[s*n + d] records the BFS discovery order of d within its
  // distance level — the state a repair needs to replay the frontier in
  // fresh-build order (within a level the order is always assigned by a
  // single build or repair pass, so values are comparable).
  mutable std::vector<int> dist_;
  mutable std::vector<core::NodeId> next_;
  mutable std::vector<std::uint32_t> order_;
  mutable std::vector<std::uint64_t> row_epoch_;
  mutable std::uint64_t epoch_ = 1;
  mutable std::size_t valid_rows_ = 0;  // rows with row_epoch_ == epoch_

  // BFS + diff scratch (reused across syncs; no steady-state allocation).
  mutable std::vector<core::NodeId> bfs_queue_;
  mutable std::vector<core::NodeId> bfs_nbrs_;
  mutable std::vector<core::NodeId> moved_scratch_;
  mutable std::vector<core::NodeId> old_nbrs_flat_;
  mutable std::vector<std::size_t> old_nbrs_offset_;
  // Edges added/removed by the last incremental sync. Kept as pairs: a
  // changed edge whose endpoints sit at the same BFS level of a row is a
  // no-op for that row (equal-level edges never carry a discovery), so
  // the keep/repair decision filters per row at edge granularity.
  mutable std::vector<std::pair<core::NodeId, core::NodeId>> changed_edges_;
  // The changed-edge set bucketed per endpoint (CSR over the deduplicated
  // normalized edges), rebuilt once per incremental sync. The per-row
  // dmin scan walks it endpoint-first — one dist load per endpoint, one
  // per partner — instead of re-deriving both endpoints of every
  // (duplicated) raw pair for every cached row.
  mutable std::vector<core::NodeId> edge_heads_;
  mutable std::vector<std::size_t> edge_offsets_;
  mutable std::vector<core::NodeId> edge_partners_;
  mutable std::vector<std::pair<std::uint32_t, core::NodeId>> frontier_;

  mutable RoutingStats stats_;
  bool started_ = false;
};

}  // namespace jtp::routing
