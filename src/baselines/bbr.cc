#include "baselines/bbr.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jtp::baselines {

// probe_bw gain cycle: one probing phase, one draining phase, six cruise
// phases. The cycle start is fixed (index 0) rather than randomized as in
// Linux BBR — determinism across shard counts and reruns is a repo-wide
// invariant worth more here than desynchronizing competing flows.
namespace {
constexpr double kCycleGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr std::uint64_t kCycleLen = 8;
}  // namespace

// --------------------------- Model ---------------------------

BbrModel::BbrModel(const BbrConfig& cfg)
    : cfg_(cfg), bw_(cfg.bw_window_rounds), rtt_(cfg.min_rtt_window_s) {}

void BbrModel::on_sample(const core::RateSample& s, double now,
                         std::uint64_t delivered_total,
                         std::uint64_t in_flight) {
  if (!s.valid) return;

  // Round accounting: the sample closes a round when its probe packet was
  // sent at-or-after the previous round's close (BBR's packet-timed
  // rounds — `delivered_total - s.delivered` is the probe's transmit-time
  // delivered snapshot).
  const std::uint64_t prior = delivered_total - s.delivered;
  bool round_advanced = false;
  if (prior >= round_start_delivered_) {
    ++round_;
    round_start_delivered_ = delivered_total;
    round_advanced = true;
  }

  bw_.on_sample(s, round_);
  if (s.rtt_s > 0.0) {
    rtt_.update(s.rtt_s, now);
    // Staleness is judged on the incoming samples, not the filter's
    // remembered output: only a *measurement* at-or-below the floor
    // proves the floor is still the path's propagation delay.
    if (min_rtt_seen_ < 0.0 || s.rtt_s <= min_rtt_seen_) {
      min_rtt_seen_ = s.rtt_s;
      min_rtt_stamp_ = now;
    }
  }

  // Full-pipe detection: bw must grow ≥ full_bw_thresh per round to keep
  // startup alive; app-limited rounds prove nothing about the pipe.
  if (!filled_pipe_ && round_advanced && !s.app_limited) {
    const double bw = bw_.bw_pps();
    if (bw >= full_bw_ * cfg_.full_bw_thresh) {
      full_bw_ = bw;
      full_bw_count_ = 0;
    } else if (++full_bw_count_ >= cfg_.full_bw_rounds) {
      filled_pipe_ = true;
    }
  }

  if (mode_ == Mode::kStartup && filled_pipe_) {
    mode_ = Mode::kDrain;
  }
  if (mode_ == Mode::kDrain) {
    // Drain is over once the startup queue is gone.
    if (static_cast<double>(in_flight) <= bdp_packets()) {
      mode_ = Mode::kProbeBw;
      cycle_index_ = 0;
      cycle_stamp_ = now;
    }
  }
  if (mode_ == Mode::kProbeBw) {
    const double rtt = rtt_.has_estimate() ? rtt_.min_rtt_s()
                                           : cfg_.initial_rtt_s;
    if (now - cycle_stamp_ >= rtt) {
      cycle_index_ = (cycle_index_ + 1) % kCycleLen;
      cycle_stamp_ = now;
    }
  }

  // probe_rtt: the RTT floor went a full window without any sample
  // matching it — every recent sample rode a standing queue, so the
  // model's min-RTT is (or is about to become) a queueing artifact.
  // Drop to the cwnd floor until in-flight drains, hold it there for
  // probe_rtt_duration_s so the path shows its propagation delay, then
  // trust whatever the probe measured.
  if (mode_ != Mode::kProbeRtt && rtt_.has_estimate() &&
      now - min_rtt_stamp_ > cfg_.min_rtt_window_s) {
    mode_ = Mode::kProbeRtt;
    probe_rtt_done_stamp_ = -1.0;
    ++probe_rtt_count_;
  }
  if (mode_ == Mode::kProbeRtt) {
    if (probe_rtt_done_stamp_ < 0.0 && in_flight <= cfg_.min_cwnd_packets)
      probe_rtt_done_stamp_ = now + cfg_.probe_rtt_duration_s;
    if (probe_rtt_done_stamp_ >= 0.0 && now >= probe_rtt_done_stamp_) {
      min_rtt_seen_ = rtt_.min_rtt_s();
      min_rtt_stamp_ = now;
      if (filled_pipe_) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = now;
      } else {
        mode_ = Mode::kStartup;
      }
    }
  }
}

double BbrModel::pacing_gain() const {
  switch (mode_) {
    case Mode::kStartup:
      return cfg_.startup_gain;
    case Mode::kDrain:
      return cfg_.drain_gain;
    case Mode::kProbeBw:
      return kCycleGains[cycle_index_ % kCycleLen];
    case Mode::kProbeRtt:
      return 1.0;  // no probing while the queue is meant to be empty
  }
  return 1.0;
}

double BbrModel::pacing_rate_pps() const {
  const double base =
      bw_.has_estimate() ? bw_.bw_pps() : cfg_.initial_rate_pps;
  return std::clamp(pacing_gain() * base, cfg_.min_rate_pps,
                    cfg_.max_rate_pps);
}

double BbrModel::bdp_packets() const {
  if (!bw_.has_estimate() || !rtt_.has_estimate()) return 0.0;
  return bw_.bw_pps() * rtt_.min_rtt_s();
}

std::uint64_t BbrModel::cwnd_packets() const {
  // The probe_rtt floor overrides the BDP cap: draining the pipe is the
  // whole point of the phase.
  if (mode_ == Mode::kProbeRtt) return cfg_.min_cwnd_packets;
  const double bdp = bdp_packets();
  if (bdp <= 0.0) return 0;  // no model yet: sender's static cap rules
  const double gain =
      mode_ == Mode::kStartup ? cfg_.startup_gain : cfg_.cwnd_gain;
  return std::max<std::uint64_t>(cfg_.min_cwnd_packets,
                                 static_cast<std::uint64_t>(gain * bdp) + 1);
}

// --------------------------- Sender ---------------------------

BbrSender::BbrSender(core::Env& env, core::PacketSink& sink, BbrConfig cfg)
    : env_(env),
      sink_(sink),
      cfg_(cfg),
      model_(cfg),
      srtt_(cfg.initial_rtt_s),
      rttvar_(cfg.initial_rtt_s / 2.0) {}

BbrSender::~BbrSender() { stop(); }

void BbrSender::start(std::uint64_t total_packets) {
  running_ = true;
  total_packets_ = total_packets;
  arm_pacing();
  arm_rto();
}

void BbrSender::stop() {
  running_ = false;
  if (pacing_armed_) {
    env_.cancel(pacing_timer_);
    pacing_armed_ = false;
  }
  if (rto_armed_) {
    env_.cancel(rto_timer_);
    rto_armed_ = false;
  }
}

std::uint64_t BbrSender::in_flight() const {
  return unacked_.size() - sacked_.size();
}

core::PacketPtr BbrSender::make_data(core::SeqNo seq, bool rtx) {
  core::PacketPtr p = env_.packet_pool().make();
  p->type = core::PacketType::kData;
  p->flow = cfg_.flow;
  p->src = cfg_.src;
  p->dst = cfg_.dst;
  p->seq = seq;
  p->payload_bytes = cfg_.payload_bytes;
  p->header_override_bytes = kTcpDataHeaderBytes;  // same wire as kTcp
  p->loss_tolerance = 0.0;
  p->energy_budget = 0.0;
  p->send_time = env_.now();
  p->is_source_retransmission = rtx;
  return p;
}

void BbrSender::arm_pacing() {
  if (!running_ || pacing_armed_) return;
  pacing_armed_ = true;
  pacing_timer_ = env_.schedule(1.0 / model_.pacing_rate_pps(), [this] {
    pacing_armed_ = false;
    pace();
  });
}

void BbrSender::pace() {
  if (!running_) return;
  const double now = env_.now();
  // Retransmissions first (SACK-driven), then new data.
  while (!rtx_queue_.empty()) {
    const core::SeqNo seq = rtx_queue_.front();
    rtx_queue_.pop_front();
    auto it = unacked_.find(seq);
    if (it == unacked_.end() || sacked_.count(seq)) continue;
    it->second = now;
    ++source_rtx_;
    ++data_sent_;
    sampler_.on_sent(seq, now);  // Karn: overwrites the stale flight
    sink_.send(make_data(seq, true));
    arm_pacing();
    return;
  }
  const std::uint64_t model_cwnd = model_.cwnd_packets();
  const std::uint64_t cwnd =
      model_cwnd == 0 ? cfg_.window_cap_packets
                      : std::min(cfg_.window_cap_packets, model_cwnd);
  const bool have_new = total_packets_ == 0 || next_seq_ < total_packets_;
  if (have_new && in_flight() < cwnd) {
    const core::SeqNo seq = next_seq_++;
    unacked_.emplace(seq, now);
    ++data_sent_;
    sampler_.on_sent(seq, now);
    sink_.send(make_data(seq, false));
  } else if (!have_new && in_flight() > 0) {
    // Out of application data with packets still outstanding: windows
    // sampled from here on measure the app, not the path.
    sampler_.mark_app_limited(in_flight());
  }
  if (!finished()) arm_pacing();
}

void BbrSender::on_ack(const core::Packet& ack) {
  assert(ack.is_ack() && ack.ack);
  const core::AckHeader& h = *ack.ack;
  const double now = env_.now();

  // Decode the feedback into per-seq deliveries for the sampler BEFORE
  // the bookkeeping below consumes it. Cumulative advance first …
  for (core::SeqNo s = cum_ack_; s < h.cumulative_ack; ++s)
    sampler_.on_delivered(s, now);
  // … then SACK-implied arrivals: seqs between the cumulative ACK and the
  // highest listed hole that are NOT holes reached the receiver.
  core::SeqNo high = h.cumulative_ack;
  for (core::SeqNo m : h.snack.missing) high = std::max(high, m);
  for (core::SeqNo s = h.cumulative_ack; s < high; ++s) {
    bool missing = false;
    for (core::SeqNo m : h.snack.missing) {
      if (m == s) {
        missing = true;
        break;
      }
    }
    if (!missing) {
      sampler_.on_delivered(s, now);
      if (s >= cum_ack_ && unacked_.count(s)) sacked_.insert(s);
    }
  }

  cum_ack_ = std::max(cum_ack_, h.cumulative_ack);
  unacked_.erase(unacked_.begin(), unacked_.lower_bound(cum_ack_));
  while (!sacked_.empty() && *sacked_.begin() < cum_ack_)
    sacked_.erase(sacked_.begin());
  sampler_.discard_below(cum_ack_);

  // SNACK.missing doubles as the SACK hole list → retransmit queue.
  for (core::SeqNo seq : h.snack.missing) {
    if (seq < cum_ack_ || !unacked_.count(seq) || sacked_.count(seq))
      continue;
    if (std::find(rtx_queue_.begin(), rtx_queue_.end(), seq) ==
        rtx_queue_.end())
      rtx_queue_.push_back(seq);
  }

  // One delivery-rate sample per ACK drives the model; its probe RTT also
  // feeds the RTO estimator (Karn-safe: retransmissions overwrite their
  // transmit record, so the sample always measures the latest flight).
  core::RateSample s = sampler_.take_sample(now);
  if (s.valid && s.rtt_s > 0.0) {
    const double err = s.rtt_s - srtt_;
    srtt_ += 0.125 * err;
    rttvar_ += 0.25 * (std::abs(err) - rttvar_);
  }
  model_.on_sample(s, now, sampler_.delivered_count(), in_flight());

  arm_rto();  // progress: push the timeout out
  if (finished() && !complete_reported_) {
    complete_reported_ = true;
    if (on_complete_) on_complete_();
  }
}

void BbrSender::arm_rto() {
  if (rto_armed_) {
    env_.cancel(rto_timer_);
    rto_armed_ = false;
  }
  if (!running_) return;
  const double rto = std::max(cfg_.rto_min_s, srtt_ + 4.0 * rttvar_);
  rto_armed_ = true;
  rto_timer_ = env_.schedule(rto, [this] {
    rto_armed_ = false;
    rto_fire();
  });
}

void BbrSender::rto_fire() {
  if (!running_ || finished()) return;
  if (!unacked_.empty()) {
    const core::SeqNo seq = unacked_.begin()->first;
    if (!sacked_.count(seq) &&
        std::find(rtx_queue_.begin(), rtx_queue_.end(), seq) ==
            rtx_queue_.end())
      rtx_queue_.push_front(seq);
    ++timeouts_;
  }
  arm_rto();
}

bool BbrSender::finished() const {
  return total_packets_ != 0 && cum_ack_ >= total_packets_;
}

}  // namespace jtp::baselines
