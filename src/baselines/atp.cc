#include "baselines/atp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jtp::baselines {

// --------------------------- Sender ---------------------------

AtpSender::AtpSender(core::Env& env, core::PacketSink& sink, AtpConfig cfg)
    : env_(env),
      sink_(sink),
      cfg_(cfg),
      rate_pps_(std::max(cfg.initial_rate_pps, cfg.min_rate_pps)) {}

AtpSender::~AtpSender() { stop(); }

void AtpSender::start(std::uint64_t total_packets) {
  running_ = true;
  total_packets_ = total_packets;
  arm_pacing();
  arm_silence_watchdog();
}

void AtpSender::stop() {
  running_ = false;
  if (pacing_armed_) {
    env_.cancel(pacing_timer_);
    pacing_armed_ = false;
  }
  if (silence_armed_) {
    env_.cancel(silence_timer_);
    silence_armed_ = false;
  }
}

core::PacketPtr AtpSender::make_data(core::SeqNo seq, bool rtx) {
  core::PacketPtr p = env_.packet_pool().make();
  p->type = core::PacketType::kData;
  p->flow = cfg_.flow;
  p->src = cfg_.src;
  p->dst = cfg_.dst;
  p->seq = seq;
  p->payload_bytes = cfg_.payload_bytes;
  p->header_override_bytes = kAtpDataHeaderBytes;
  p->loss_tolerance = 0.0;
  p->energy_budget = 0.0;
  p->available_rate_pps =
      std::numeric_limits<double>::infinity();  // stamped along the path
  p->send_time = env_.now();
  p->is_source_retransmission = rtx;
  return p;
}

void AtpSender::arm_pacing() {
  if (!running_ || pacing_armed_) return;
  pacing_armed_ = true;
  pacing_timer_ = env_.schedule(1.0 / rate_pps_, [this] {
    pacing_armed_ = false;
    pace();
  });
}

void AtpSender::pace() {
  if (!running_) return;
  while (!rtx_queue_.empty()) {
    const core::SeqNo seq = rtx_queue_.front();
    rtx_queue_.pop_front();
    if (!unacked_.count(seq)) continue;
    ++source_rtx_;
    ++data_sent_;
    sink_.send(make_data(seq, true));
    arm_pacing();
    return;
  }
  const bool more_new =
      (total_packets_ == 0 || next_seq_ < total_packets_) &&
      (next_seq_ - cum_ack_) < cfg_.window_cap_packets;
  if (more_new) {
    const core::SeqNo seq = next_seq_++;
    unacked_.emplace(seq, cfg_.payload_bytes);
    ++data_sent_;
    sink_.send(make_data(seq, false));
  }
  if (!finished()) arm_pacing();
}

void AtpSender::on_ack(const core::Packet& ack) {
  assert(ack.is_ack() && ack.ack);
  const core::AckHeader& h = *ack.ack;
  last_ack_time_ = env_.now();

  cum_ack_ = std::max(cum_ack_, h.cumulative_ack);
  unacked_.erase(unacked_.begin(), unacked_.lower_bound(cum_ack_));

  for (core::SeqNo seq : h.snack.missing) {
    if (seq < cum_ack_ || !unacked_.count(seq)) continue;
    if (std::find(rtx_queue_.begin(), rtx_queue_.end(), seq) ==
        rtx_queue_.end())
      rtx_queue_.push_back(seq);
  }

  // ATP rate rule: decrease to the network's reported rate immediately;
  // increase toward it only fractionally.
  const double reported = h.advertised_rate_pps;
  if (reported > 0.0) {
    if (reported < rate_pps_)
      rate_pps_ = reported;
    else
      rate_pps_ += cfg_.increase_fraction * (reported - rate_pps_);
    rate_pps_ = std::clamp(rate_pps_, cfg_.min_rate_pps, cfg_.max_rate_pps);
  }
  if (finished() && !complete_reported_) {
    complete_reported_ = true;
    if (on_complete_) on_complete_();
  }
}

void AtpSender::arm_silence_watchdog() {
  if (!running_ || silence_armed_) return;
  silence_armed_ = true;
  silence_timer_ = env_.schedule(
      cfg_.silence_margin * cfg_.feedback_period_s, [this] {
        silence_armed_ = false;
        if (!running_) return;
        const double silence = last_ack_time_ < 0
                                   ? env_.now()
                                   : env_.now() - last_ack_time_;
        if (silence >= cfg_.silence_margin * cfg_.feedback_period_s &&
            data_sent_ > 0)
          rate_pps_ = std::max(rate_pps_ * cfg_.silence_backoff,
                               cfg_.min_rate_pps);
        arm_silence_watchdog();
      });
}

bool AtpSender::finished() const {
  return total_packets_ != 0 && cum_ack_ >= total_packets_;
}

// --------------------------- Receiver ---------------------------

AtpReceiver::AtpReceiver(core::Env& env, core::PacketSink& sink, AtpConfig cfg)
    : env_(env), sink_(sink), cfg_(cfg) {}

AtpReceiver::~AtpReceiver() { stop(); }

void AtpReceiver::start() {
  running_ = true;
  if (!timer_armed_) {
    timer_armed_ = true;
    timer_ = env_.schedule(cfg_.feedback_period_s, [this] {
      timer_armed_ = false;
      feedback_tick();
    });
  }
}

void AtpReceiver::stop() {
  running_ = false;
  if (timer_armed_) {
    env_.cancel(timer_);
    timer_armed_ = false;
  }
}

void AtpReceiver::on_data(const core::Packet& p) {
  assert(p.is_data() && p.flow == cfg_.flow);
  saw_data_ = true;
  last_echo_time_ = p.send_time;
  horizon_ = std::max(horizon_, p.seq + 1);
  if (p.seq >= cum_ack_ && !out_of_order_.count(p.seq)) {
    out_of_order_.insert(p.seq);
    ++delivered_;
    delivered_bits_ += core::bits(p.payload_bytes);
    while (out_of_order_.count(cum_ack_)) out_of_order_.erase(cum_ack_++);
  }
  if (std::isfinite(p.available_rate_pps)) {
    if (!rate_init_) {
      rate_ewma_ = p.available_rate_pps;
      rate_init_ = true;
    } else {
      rate_ewma_ = (1.0 - cfg_.rate_ewma_alpha) * rate_ewma_ +
                   cfg_.rate_ewma_alpha * p.available_rate_pps;
    }
  }
}

void AtpReceiver::feedback_tick() {
  if (!running_) return;
  if (saw_data_) {
    core::PacketPtr ack = env_.packet_pool().make();
    ack->type = core::PacketType::kAck;
    ack->flow = cfg_.flow;
    ack->src = cfg_.dst;
    ack->dst = cfg_.src;
    ack->payload_bytes = 0;
    ack->header_override_bytes = kAtpAckHeaderBytes;

    core::AckHeader& h = ack->ack.emplace();
    h.cumulative_ack = cum_ack_;
    h.advertised_rate_pps = rate_init_ ? rate_ewma_ : 0.0;
    h.echo_send_time = last_echo_time_;
    h.sender_timeout_s = cfg_.feedback_period_s;
    h.ack_serial = ++ack_serial_;
    for (core::SeqNo s = cum_ack_;
         s < horizon_ && h.snack.missing.size() < cfg_.max_holes_per_ack; ++s)
      if (!out_of_order_.count(s)) h.snack.missing.push_back(s);

    ++acks_sent_;
    sink_.send(std::move(ack));
  }
  timer_armed_ = true;
  timer_ = env_.schedule(cfg_.feedback_period_s, [this] {
    timer_armed_ = false;
    feedback_tick();
  });
}

}  // namespace jtp::baselines
