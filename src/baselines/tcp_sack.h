// Rate-based TCP-SACK baseline (paper §6.1).
//
// The paper compares JTP against "a rate-based flavor of TCP-SACK, whereby
// the rate of each flow is set by the well-known throughput equation of
// TCP [Padhye et al.]", with delayed ACKs (one per two packets) and SACK
// selective retransmission. This removes window burstiness (a la TCP
// pacing) but keeps TCP's essential behaviours the paper is critiquing:
//   * loss-driven adaptation (needs drops to find the rate);
//   * frequent sender-directed feedback (ACK every other packet);
//   * end-to-end-only recovery (no MAC control, no caches);
//   * full reliability for everything.
// TCP headers: 40 bytes on data; 60 bytes on ACKs (SACK blocks).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "core/env.h"
#include "core/packet.h"
#include "core/transport.h"
#include "core/types.h"

namespace jtp::baselines {

inline constexpr std::uint32_t kTcpDataHeaderBytes = 40;
inline constexpr std::uint32_t kTcpAckHeaderBytes = 60;

struct TcpConfig {
  core::FlowId flow = 0;
  core::NodeId src = core::kInvalidNode;
  core::NodeId dst = core::kInvalidNode;
  std::uint32_t payload_bytes = core::kDefaultPayloadBytes;
  double initial_rate_pps = 1.0;
  double min_rate_pps = 0.1;
  double max_rate_pps = 50.0;       // pacing ceiling
  double initial_rtt_s = 2.0;
  double loss_alpha = 0.1;          // EWMA weight for the loss estimate
  double initial_loss = 0.05;       // prior until enough samples
  double delayed_ack_every = 2;     // one ACK per two data packets
  double rto_min_s = 1.0;
  std::uint64_t window_cap_packets = 4000;
};

// Padhye/PFTK steady-state TCP throughput in packets/s for loss rate p,
// round-trip time rtt, retransmission timeout t0 and b packets per ACK.
double pftk_rate_pps(double p, double rtt_s, double rto_s, double b = 2.0);

class TcpSackSender final : public core::TransportSender {
 public:
  TcpSackSender(core::Env& env, core::PacketSink& sink, TcpConfig cfg);
  ~TcpSackSender() override;
  TcpSackSender(const TcpSackSender&) = delete;
  TcpSackSender& operator=(const TcpSackSender&) = delete;

  void start(std::uint64_t total_packets) override;  // 0 = unbounded
  void stop() override;
  void on_ack(const core::Packet& ack) override;

  bool finished() const override;
  void set_on_complete(std::function<void()> cb) override {
    on_complete_ = std::move(cb);
  }
  double rate_pps() const { return rate_pps_; }
  double srtt() const { return srtt_; }
  double loss_estimate() const { return loss_est_; }
  std::uint64_t data_packets_sent() const override { return data_sent_; }
  std::uint64_t source_retransmissions() const override {
    return source_rtx_;
  }
  std::uint64_t timeouts() const { return timeouts_; }
  core::SeqNo cumulative_ack() const { return cum_ack_; }

 private:
  void pace();
  void arm_pacing();
  void arm_rto();
  void rto_fire();
  void update_rate();
  core::PacketPtr make_data(core::SeqNo seq, bool rtx);

  core::Env& env_;
  core::PacketSink& sink_;
  TcpConfig cfg_;

  bool running_ = false;
  std::uint64_t total_packets_ = 0;
  core::SeqNo next_seq_ = 0;
  core::SeqNo cum_ack_ = 0;
  std::map<core::SeqNo, double> unacked_;  // seq -> last send time
  std::deque<core::SeqNo> rtx_queue_;
  std::set<core::SeqNo> sacked_;           // above cum_ack, already received

  double rate_pps_;
  double srtt_;
  double rttvar_;
  double loss_est_;
  std::uint64_t loss_samples_ = 0;

  core::TimerId pacing_timer_ = 0;
  bool pacing_armed_ = false;
  core::TimerId rto_timer_ = 0;
  bool rto_armed_ = false;

  std::uint64_t data_sent_ = 0;
  std::uint64_t source_rtx_ = 0;
  std::uint64_t timeouts_ = 0;
  std::function<void()> on_complete_;
  bool complete_reported_ = false;
};

class TcpSackReceiver final : public core::TransportReceiver {
 public:
  TcpSackReceiver(core::Env& env, core::PacketSink& sink, TcpConfig cfg);

  // TCP's receiver is purely reactive (ACKs are clocked by data), so the
  // lifecycle hooks have nothing to arm or cancel.
  void start() override {}
  void stop() override {}

  void on_data(const core::Packet& p) override;

  std::uint64_t delivered_packets() const override { return delivered_; }
  double delivered_payload_bits() const override { return delivered_bits_; }
  std::uint64_t acks_sent() const override { return acks_sent_; }

 private:
  void send_ack(double echo_time);

  core::Env& env_;
  core::PacketSink& sink_;
  TcpConfig cfg_;

  core::SeqNo cum_ack_ = 0;
  core::SeqNo horizon_ = 0;
  std::set<core::SeqNo> out_of_order_;
  int unacked_data_ = 0;

  std::uint64_t delivered_ = 0;
  double delivered_bits_ = 0.0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t ack_serial_ = 0;
};

}  // namespace jtp::baselines
