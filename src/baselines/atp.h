// ATP-like baseline (paper §6.1, after Sundaresan et al. [34]).
//
// Representative of explicit rate-based transports for ad-hoc networks:
//   * intermediate nodes stamp the available path rate into data headers
//     (same stamping fabric JTP uses, minus attempt control and caching);
//   * the receiver feeds the smoothed rate back at a *constant* period D,
//     chosen larger than the RTT;
//   * recovery is end-to-end only: holes are reported in the feedback and
//     retransmitted by the source;
//   * full reliability; no MAC attempt control (fixed MAX_ATTEMPTS).
// Sender rate rule (ATP): if the reported rate is below the current rate,
// adopt it; if above, close a fraction of the gap per feedback epoch.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "core/env.h"
#include "core/packet.h"
#include "core/transport.h"
#include "core/types.h"

namespace jtp::baselines {

inline constexpr std::uint32_t kAtpDataHeaderBytes = 32;
inline constexpr std::uint32_t kAtpAckHeaderBytes = 100;

struct AtpConfig {
  core::FlowId flow = 0;
  core::NodeId src = core::kInvalidNode;
  core::NodeId dst = core::kInvalidNode;
  std::uint32_t payload_bytes = core::kDefaultPayloadBytes;
  double initial_rate_pps = 1.0;
  double min_rate_pps = 0.1;
  double max_rate_pps = 50.0;
  double feedback_period_s = 3.0;   // D, set > RTT as ATP recommends
  double rate_ewma_alpha = 0.2;     // receiver-side smoothing of stamps
  double increase_fraction = 0.5;   // close this share of the gap upward
  double silence_backoff = 0.75;    // no feedback => multiplicative backoff
  double silence_margin = 2.0;      // backoff after margin × D of silence
  std::size_t max_holes_per_ack = 64;
  std::uint64_t window_cap_packets = 4000;
};

class AtpSender final : public core::TransportSender {
 public:
  AtpSender(core::Env& env, core::PacketSink& sink, AtpConfig cfg);
  ~AtpSender() override;
  AtpSender(const AtpSender&) = delete;
  AtpSender& operator=(const AtpSender&) = delete;

  void start(std::uint64_t total_packets) override;
  void stop() override;
  void on_ack(const core::Packet& ack) override;

  bool finished() const override;
  void set_on_complete(std::function<void()> cb) override {
    on_complete_ = std::move(cb);
  }
  double rate_pps() const { return rate_pps_; }
  std::uint64_t data_packets_sent() const override { return data_sent_; }
  std::uint64_t source_retransmissions() const override {
    return source_rtx_;
  }
  core::SeqNo cumulative_ack() const { return cum_ack_; }

 private:
  void pace();
  void arm_pacing();
  void arm_silence_watchdog();
  core::PacketPtr make_data(core::SeqNo seq, bool rtx);

  core::Env& env_;
  core::PacketSink& sink_;
  AtpConfig cfg_;

  bool running_ = false;
  std::uint64_t total_packets_ = 0;
  core::SeqNo next_seq_ = 0;
  core::SeqNo cum_ack_ = 0;
  std::map<core::SeqNo, std::uint32_t> unacked_;
  std::deque<core::SeqNo> rtx_queue_;

  double rate_pps_;
  double last_ack_time_ = -1.0;

  core::TimerId pacing_timer_ = 0;
  bool pacing_armed_ = false;
  core::TimerId silence_timer_ = 0;
  bool silence_armed_ = false;

  std::uint64_t data_sent_ = 0;
  std::uint64_t source_rtx_ = 0;
  std::function<void()> on_complete_;
  bool complete_reported_ = false;
};

class AtpReceiver final : public core::TransportReceiver {
 public:
  AtpReceiver(core::Env& env, core::PacketSink& sink, AtpConfig cfg);
  ~AtpReceiver() override;
  AtpReceiver(const AtpReceiver&) = delete;
  AtpReceiver& operator=(const AtpReceiver&) = delete;

  void start() override;
  void stop() override;
  void on_data(const core::Packet& p) override;

  std::uint64_t delivered_packets() const override { return delivered_; }
  double delivered_payload_bits() const override { return delivered_bits_; }
  std::uint64_t acks_sent() const override { return acks_sent_; }
  double smoothed_rate_pps() const { return rate_ewma_; }

 private:
  void feedback_tick();

  core::Env& env_;
  core::PacketSink& sink_;
  AtpConfig cfg_;

  core::SeqNo cum_ack_ = 0;
  core::SeqNo horizon_ = 0;
  std::set<core::SeqNo> out_of_order_;
  double rate_ewma_ = 0.0;
  bool rate_init_ = false;
  bool saw_data_ = false;
  double last_echo_time_ = -1.0;

  bool running_ = false;
  core::TimerId timer_ = 0;
  bool timer_armed_ = false;

  std::uint64_t delivered_ = 0;
  double delivered_bits_ = 0.0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t ack_serial_ = 0;
};

}  // namespace jtp::baselines
