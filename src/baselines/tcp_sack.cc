#include "baselines/tcp_sack.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jtp::baselines {

double pftk_rate_pps(double p, double rtt_s, double rto_s, double b) {
  if (p <= 0.0) return 1e9;  // caller caps
  p = std::min(p, 0.99);
  const double term1 = rtt_s * std::sqrt(2.0 * b * p / 3.0);
  const double term2 = rto_s * std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0)) *
                       p * (1.0 + 32.0 * p * p);
  return 1.0 / (term1 + term2);
}

// --------------------------- Sender ---------------------------

TcpSackSender::TcpSackSender(core::Env& env, core::PacketSink& sink,
                             TcpConfig cfg)
    : env_(env),
      sink_(sink),
      cfg_(cfg),
      rate_pps_(std::max(cfg.initial_rate_pps, cfg.min_rate_pps)),
      srtt_(cfg.initial_rtt_s),
      rttvar_(cfg.initial_rtt_s / 2.0),
      loss_est_(cfg.initial_loss) {}

TcpSackSender::~TcpSackSender() { stop(); }

void TcpSackSender::start(std::uint64_t total_packets) {
  running_ = true;
  total_packets_ = total_packets;
  arm_pacing();
  arm_rto();
}

void TcpSackSender::stop() {
  running_ = false;
  if (pacing_armed_) {
    env_.cancel(pacing_timer_);
    pacing_armed_ = false;
  }
  if (rto_armed_) {
    env_.cancel(rto_timer_);
    rto_armed_ = false;
  }
}

core::PacketPtr TcpSackSender::make_data(core::SeqNo seq, bool rtx) {
  core::PacketPtr p = env_.packet_pool().make();
  p->type = core::PacketType::kData;
  p->flow = cfg_.flow;
  p->src = cfg_.src;
  p->dst = cfg_.dst;
  p->seq = seq;
  p->payload_bytes = cfg_.payload_bytes;
  p->header_override_bytes = kTcpDataHeaderBytes;
  p->loss_tolerance = 0.0;  // TCP: full reliability, always
  p->energy_budget = 0.0;   // and no notion of an energy budget
  p->send_time = env_.now();
  p->is_source_retransmission = rtx;
  return p;
}

void TcpSackSender::arm_pacing() {
  if (!running_ || pacing_armed_) return;
  pacing_armed_ = true;
  pacing_timer_ = env_.schedule(1.0 / rate_pps_, [this] {
    pacing_armed_ = false;
    pace();
  });
}

void TcpSackSender::pace() {
  if (!running_) return;
  // Retransmissions first (SACK-driven), then new data.
  while (!rtx_queue_.empty()) {
    const core::SeqNo seq = rtx_queue_.front();
    rtx_queue_.pop_front();
    auto it = unacked_.find(seq);
    if (it == unacked_.end() || sacked_.count(seq)) continue;
    it->second = env_.now();
    ++source_rtx_;
    ++data_sent_;
    sink_.send(make_data(seq, true));
    arm_pacing();
    return;
  }
  const bool more_new =
      (total_packets_ == 0 || next_seq_ < total_packets_) &&
      (next_seq_ - cum_ack_) < cfg_.window_cap_packets;
  if (more_new) {
    const core::SeqNo seq = next_seq_++;
    unacked_.emplace(seq, env_.now());
    ++data_sent_;
    sink_.send(make_data(seq, false));
  }
  if (!finished()) arm_pacing();
}

void TcpSackSender::update_rate() {
  const double rto = std::max(cfg_.rto_min_s, srtt_ + 4.0 * rttvar_);
  const double r = pftk_rate_pps(loss_est_, srtt_, rto);
  rate_pps_ = std::clamp(r, cfg_.min_rate_pps, cfg_.max_rate_pps);
}

void TcpSackSender::on_ack(const core::Packet& ack) {
  assert(ack.is_ack() && ack.ack);
  const core::AckHeader& h = *ack.ack;

  // RTT sample from the echoed timestamp (Karn's rule is approximated by
  // the receiver echoing the newest data packet's stamp).
  if (h.echo_send_time >= 0.0) {
    const double sample = env_.now() - h.echo_send_time;
    if (sample > 0.0) {
      const double err = sample - srtt_;
      srtt_ += 0.125 * err;
      rttvar_ += 0.25 * (std::abs(err) - rttvar_);
    }
  }

  const core::SeqNo old_cum = cum_ack_;
  cum_ack_ = std::max(cum_ack_, h.cumulative_ack);
  unacked_.erase(unacked_.begin(), unacked_.lower_bound(cum_ack_));
  while (!sacked_.empty() && *sacked_.begin() < cum_ack_)
    sacked_.erase(sacked_.begin());

  // SNACK.missing doubles as the SACK hole list.
  std::uint64_t newly_lost = 0;
  for (core::SeqNo seq : h.snack.missing) {
    if (seq < cum_ack_ || !unacked_.count(seq)) continue;
    if (std::find(rtx_queue_.begin(), rtx_queue_.end(), seq) ==
        rtx_queue_.end()) {
      rtx_queue_.push_back(seq);
      ++newly_lost;
    }
  }
  // Everything above the holes that the receiver implicitly covered is
  // SACKed; we approximate by marking acked ranges via cumulative only.
  const std::uint64_t progressed = cum_ack_ - old_cum;

  // Loss estimate: losses / (losses + progressed) blended by EWMA.
  const double denom = static_cast<double>(newly_lost + progressed);
  if (denom > 0) {
    const double sample = static_cast<double>(newly_lost) / denom;
    loss_est_ = (1.0 - cfg_.loss_alpha) * loss_est_ + cfg_.loss_alpha * sample;
    ++loss_samples_;
  }
  update_rate();
  arm_rto();  // progress: push the timeout out
  if (finished() && !complete_reported_) {
    complete_reported_ = true;
    if (on_complete_) on_complete_();
  }
}

void TcpSackSender::arm_rto() {
  if (rto_armed_) {
    env_.cancel(rto_timer_);
    rto_armed_ = false;
  }
  if (!running_) return;
  const double rto = std::max(cfg_.rto_min_s, srtt_ + 4.0 * rttvar_);
  rto_armed_ = true;
  rto_timer_ = env_.schedule(rto, [this] {
    rto_armed_ = false;
    rto_fire();
  });
}

void TcpSackSender::rto_fire() {
  if (!running_ || finished()) return;
  if (!unacked_.empty()) {
    // Timeout: retransmit the oldest outstanding packet and take the loss
    // on the chin in the estimator (this is what makes TCP's energy story
    // bad: it *needs* these events to steer).
    const core::SeqNo seq = unacked_.begin()->first;
    if (std::find(rtx_queue_.begin(), rtx_queue_.end(), seq) ==
        rtx_queue_.end())
      rtx_queue_.push_front(seq);
    ++timeouts_;
    loss_est_ = std::min(0.99, loss_est_ * 1.5 + 0.01);
    update_rate();
  }
  arm_rto();
}

bool TcpSackSender::finished() const {
  return total_packets_ != 0 && cum_ack_ >= total_packets_;
}

// --------------------------- Receiver ---------------------------

TcpSackReceiver::TcpSackReceiver(core::Env& env, core::PacketSink& sink,
                                 TcpConfig cfg)
    : env_(env), sink_(sink), cfg_(cfg) {}

void TcpSackReceiver::on_data(const core::Packet& p) {
  assert(p.is_data() && p.flow == cfg_.flow);
  horizon_ = std::max(horizon_, p.seq + 1);
  bool fresh = false;
  if (p.seq >= cum_ack_ && !out_of_order_.count(p.seq)) {
    out_of_order_.insert(p.seq);
    fresh = true;
    delivered_ += 1;
    delivered_bits_ += core::bits(p.payload_bytes);
    while (out_of_order_.count(cum_ack_)) out_of_order_.erase(cum_ack_++);
  }
  ++unacked_data_;
  const bool out_of_order_arrival = fresh && p.seq != cum_ack_ - 1;
  // Delayed ACK: every b-th packet; immediately on reordering (dup-ack
  // analogue) so the sender learns about holes fast.
  if (unacked_data_ >= cfg_.delayed_ack_every || out_of_order_arrival) {
    unacked_data_ = 0;
    send_ack(p.send_time);
  }
}

void TcpSackReceiver::send_ack(double echo_time) {
  core::PacketPtr ack = env_.packet_pool().make();
  ack->type = core::PacketType::kAck;
  ack->flow = cfg_.flow;
  ack->src = cfg_.dst;
  ack->dst = cfg_.src;
  ack->payload_bytes = 0;
  ack->header_override_bytes = kTcpAckHeaderBytes;

  core::AckHeader& h = ack->ack.emplace();
  h.cumulative_ack = cum_ack_;
  h.echo_send_time = echo_time;
  h.ack_serial = ++ack_serial_;
  // SACK holes: missing seqs between cum_ack_ and horizon_ (capped).
  for (core::SeqNo s = cum_ack_; s < horizon_ && h.snack.missing.size() < 16;
       ++s)
    if (!out_of_order_.count(s)) h.snack.missing.push_back(s);

  ++acks_sent_;
  sink_.send(std::move(ack));
}

}  // namespace jtp::baselines
