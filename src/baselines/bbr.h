// BBR-style congestion control baseline (Proto::kBbr).
//
// A model-based modern baseline to set against the paper's protocols:
// instead of loss-driven PFTK rate selection (tcp_sack.h) or explicit
// per-hop feedback (JTP), the sender builds a model of the path — max
// delivery rate × min RTT — from per-ACK RateSamples (core/rate_sample.h)
// and paces at gain × bottleneck-bw through a startup / drain / probe_bw
// state machine (Cardwell et al., "BBR: Congestion-Based Congestion
// Control", CACM 2017):
//   * startup: pacing_gain 2/ln2 ≈ 2.885 doubles the rate each RTT until
//     the bw filter plateaus (growth < 25% for 3 rounds → pipe full);
//   * drain: one inverse-gain phase bleeds the startup queue until
//     in-flight ≤ BDP;
//   * probe_bw: an 8-phase gain cycle {1.25, 0.75, 1, 1, 1, 1, 1, 1}
//     advanced once per min-RTT probes for more bandwidth, then drains
//     what the probe queued;
//   * probe_rtt: when the RTT floor goes a full min_rtt_window_s without
//     being matched or lowered (every sample rode a standing queue), the
//     cwnd drops to min_cwnd_packets for probe_rtt_duration_s once
//     in-flight has drained to the floor, so the next samples measure
//     propagation delay rather than queue; exits to probe_bw (pipe full)
//     or back to startup. Time-gated and phase-fixed — deterministic,
//     like the cycle start above.
// In-flight is additionally capped at cwnd_gain × BDP. Feedback rides
// the TCP-SACK receiver unchanged (delayed ACKs, SACK hole lists), so
// the comparison isolates the congestion-control model: same headers,
// same ACK cadence, same recovery channel as the kTcp baseline.
//
// BbrModel is deliberately Env-free (pure state machine over samples) so
// micro_perf can drive BM_BbrStateMachine without a simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "baselines/tcp_sack.h"
#include "core/env.h"
#include "core/packet.h"
#include "core/rate_sample.h"
#include "core/transport.h"
#include "core/types.h"

namespace jtp::baselines {

struct BbrConfig {
  core::FlowId flow = 0;
  core::NodeId src = core::kInvalidNode;
  core::NodeId dst = core::kInvalidNode;
  std::uint32_t payload_bytes = core::kDefaultPayloadBytes;

  double initial_rate_pps = 1.0;
  double min_rate_pps = 0.1;
  double max_rate_pps = 50.0;  // pacing ceiling (factory: 4 × capacity)
  double initial_rtt_s = 2.0;  // prior until the first RTT sample
  double rto_min_s = 1.0;
  std::uint64_t window_cap_packets = 4000;

  // --- model knobs ---
  double startup_gain = 2.885;       // 2/ln 2
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;            // in-flight cap, × BDP
  double full_bw_thresh = 1.25;      // growth below this …
  std::uint64_t full_bw_rounds = 3;  // … for this many rounds = pipe full
  std::uint64_t bw_window_rounds = 10;
  double min_rtt_window_s = 10.0;
  std::uint64_t min_cwnd_packets = 4;
  // probe_rtt hold: how long in-flight sits at the min_cwnd_packets
  // floor before the refreshed RTT floor is trusted and the mode exits.
  double probe_rtt_duration_s = 0.2;
};

// The pure BBR state machine: samples in, pacing rate / cwnd out.
class BbrModel {
 public:
  enum class Mode : std::uint8_t { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit BbrModel(const BbrConfig& cfg);

  // One delivery-rate sample; `delivered_total` is the sampler's running
  // delivered count, `in_flight` the sender's outstanding packets.
  void on_sample(const core::RateSample& s, double now,
                 std::uint64_t delivered_total, std::uint64_t in_flight);

  double pacing_rate_pps() const;
  // 0 = no cap yet (model has no RTT/bw estimate; the sender's static
  // window cap still applies).
  std::uint64_t cwnd_packets() const;

  Mode mode() const { return mode_; }
  bool filled_pipe() const { return filled_pipe_; }
  double pacing_gain() const;
  double bw_pps() const { return bw_.bw_pps(); }
  double min_rtt_s() const { return rtt_.min_rtt_s(); }
  std::uint64_t round_count() const { return round_; }
  std::uint64_t cycle_index() const { return cycle_index_; }
  std::uint64_t probe_rtt_count() const { return probe_rtt_count_; }

 private:
  double bdp_packets() const;

  const BbrConfig cfg_;
  core::BandwidthEstimator bw_;
  core::MinRttTracker rtt_;

  Mode mode_ = Mode::kStartup;
  std::uint64_t round_ = 0;
  std::uint64_t round_start_delivered_ = 0;

  double full_bw_ = 0.0;
  std::uint64_t full_bw_count_ = 0;
  bool filled_pipe_ = false;

  std::uint64_t cycle_index_ = 0;  // probe_bw phase
  double cycle_stamp_ = 0.0;       // time the current phase began

  // probe_rtt bookkeeping. The tracker's windowed min self-expires, so
  // staleness is judged here: min_rtt_stamp_ is the last time the filter
  // showed an RTT at-or-below every one seen before (a queue inflating
  // every sample stops refreshing it; BBR's min_rtt_stamp).
  double min_rtt_seen_ = -1.0;
  double min_rtt_stamp_ = 0.0;
  double probe_rtt_done_stamp_ = -1.0;  // <0: floor not yet reached
  std::uint64_t probe_rtt_count_ = 0;
};

class BbrSender final : public core::TransportSender {
 public:
  BbrSender(core::Env& env, core::PacketSink& sink, BbrConfig cfg);
  ~BbrSender() override;
  BbrSender(const BbrSender&) = delete;
  BbrSender& operator=(const BbrSender&) = delete;

  void start(std::uint64_t total_packets) override;  // 0 = unbounded
  void stop() override;
  void on_ack(const core::Packet& ack) override;

  bool finished() const override;
  void set_on_complete(std::function<void()> cb) override {
    on_complete_ = std::move(cb);
  }

  // --- instrumentation ---
  const BbrModel& model() const { return model_; }
  const core::RateSampler& sampler() const { return sampler_; }
  double rate_pps() const { return model_.pacing_rate_pps(); }
  std::uint64_t data_packets_sent() const override { return data_sent_; }
  std::uint64_t source_retransmissions() const override {
    return source_rtx_;
  }
  std::uint64_t timeouts() const { return timeouts_; }
  core::SeqNo cumulative_ack() const { return cum_ack_; }

 private:
  void pace();
  void arm_pacing();
  void arm_rto();
  void rto_fire();
  std::uint64_t in_flight() const;
  core::PacketPtr make_data(core::SeqNo seq, bool rtx);

  core::Env& env_;
  core::PacketSink& sink_;
  BbrConfig cfg_;

  core::RateSampler sampler_;
  BbrModel model_;

  bool running_ = false;
  std::uint64_t total_packets_ = 0;
  core::SeqNo next_seq_ = 0;
  core::SeqNo cum_ack_ = 0;
  std::map<core::SeqNo, double> unacked_;  // seq -> last send time
  std::deque<core::SeqNo> rtx_queue_;
  std::set<core::SeqNo> sacked_;           // above cum_ack, already received

  double srtt_;
  double rttvar_;

  core::TimerId pacing_timer_ = 0;
  bool pacing_armed_ = false;
  core::TimerId rto_timer_ = 0;
  bool rto_armed_ = false;

  std::uint64_t data_sent_ = 0;
  std::uint64_t source_rtx_ = 0;
  std::uint64_t timeouts_ = 0;
  std::function<void()> on_complete_;
  bool complete_reported_ = false;
};

}  // namespace jtp::baselines
