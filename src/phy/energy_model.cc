#include "phy/energy_model.h"

#include <algorithm>
#include <stdexcept>

namespace jtp::phy {

EnergyModel::EnergyModel(std::size_t n_nodes, RadioConfig cfg)
    : cfg_(cfg), per_node_(n_nodes, 0.0) {
  if (cfg.datarate_bps <= 0 || cfg.tx_power_w <= 0 || cfg.rx_power_w <= 0)
    throw std::invalid_argument("EnergyModel: non-positive radio parameter");
}

void EnergyModel::charge_tx(core::NodeId node, double bits) {
  const core::Joules e = tx_energy(bits);
  per_node_.at(node) += e;
  total_ += e;
}

void EnergyModel::charge_rx(core::NodeId node, double bits) {
  const core::Joules e = rx_energy(bits);
  per_node_.at(node) += e;
  total_ += e;
}

void EnergyModel::reset() {
  std::fill(per_node_.begin(), per_node_.end(), 0.0);
  total_ = 0.0;
}

}  // namespace jtp::phy
