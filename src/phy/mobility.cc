#include "phy/mobility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jtp::phy {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

RandomWaypoint::RandomWaypoint(sim::Simulator& sim, Topology& topo,
                               MobilityConfig cfg, sim::Rng rng)
    : sim_(sim), topo_(topo), cfg_(cfg), nodes_(topo.size()) {
  if (cfg.speed_mps <= 0) throw std::invalid_argument("RandomWaypoint: speed");
  if (cfg.update_interval_s <= 0)
    throw std::invalid_argument("RandomWaypoint: update interval");
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    nodes_[i].rng = rng.derive("rwp", i);
}

void RandomWaypoint::start() {
  for (core::NodeId id = 0; id < nodes_.size(); ++id) {
    // Stagger initial pauses so nodes don't move in lock-step.
    const double first_pause =
        nodes_[id].rng.exponential(std::max(1.0, cfg_.mean_pause_s / 4));
    sim_.schedule(first_pause, [this, id] { begin_leg(id); });
  }
}

void RandomWaypoint::begin_leg(core::NodeId id) {
  auto& st = nodes_[id];
  const double angle = st.rng.uniform(0.0, 2.0 * kPi);
  const double leg = st.rng.exponential(cfg_.mean_leg_m);
  const Position cur = topo_.position(id);
  Position tgt{cur.x + leg * std::cos(angle), cur.y + leg * std::sin(angle)};
  tgt.x = std::clamp(tgt.x, 0.0, cfg_.field_m);
  tgt.y = std::clamp(tgt.y, 0.0, cfg_.field_m);
  st.target = tgt;
  st.moving = true;
  sim_.schedule(cfg_.update_interval_s, [this, id] { step(id); });
}

void RandomWaypoint::step(core::NodeId id) {
  auto& st = nodes_[id];
  if (!st.moving) return;
  const Position cur = topo_.position(id);
  const double remaining = distance(cur, st.target);
  const double hop = cfg_.speed_mps * cfg_.update_interval_s;
  if (remaining <= hop) {
    topo_.set_position(id, st.target);
    st.moving = false;
    const double pause = st.rng.exponential(cfg_.mean_pause_s);
    sim_.schedule(pause, [this, id] { begin_leg(id); });
    return;
  }
  const double fx = (st.target.x - cur.x) / remaining;
  const double fy = (st.target.y - cur.y) / remaining;
  topo_.set_position(id, {cur.x + fx * hop, cur.y + fy * hop});
  sim_.schedule(cfg_.update_interval_s, [this, id] { step(id); });
}

}  // namespace jtp::phy
