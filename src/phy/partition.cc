#include "phy/partition.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace jtp::phy {

Partition partition_strips(const Topology& topo, std::size_t max_shards) {
  const std::size_t n = topo.size();
  Partition out;
  out.assignment.assign(n, 0);
  out.shard_count = 1;
  if (max_shards <= 1 || n == 0) return out;

  // Bin nodes into vertical strips one radio range wide — the same cell
  // side the topology's neighbor grid uses, so a strip boundary is also
  // an interference-locality boundary. std::map keeps strips ordered
  // left to right.
  const double side = topo.radio_range();
  std::map<std::int64_t, std::vector<core::NodeId>> strips;
  for (std::size_t id = 0; id < n; ++id) {
    const Position& p = topo.position(static_cast<core::NodeId>(id));
    strips[static_cast<std::int64_t>(std::floor(p.x / side))].push_back(
        static_cast<core::NodeId>(id));
  }

  const std::size_t k = std::min(max_shards, strips.size());
  if (k <= 1) return out;

  // Greedy balanced cut: walk strips left to right; before adding a
  // strip, close the current shard if overshooting the fair share (of
  // everything this and later shards must still absorb) would be worse
  // than undershooting it — or if each remaining shard needs one of the
  // remaining strips to stay non-empty.
  std::size_t shard = 0;
  std::size_t in_shard = 0;     // nodes in the shard being built
  std::size_t nodes_left = n;   // nodes not yet assigned (incl. this strip)
  std::size_t strips_left = strips.size();
  out.x_lo.assign(k, 0.0);
  out.x_hi.assign(k, 0.0);
  bool first_strip = true;
  for (const auto& [cx, ids] : strips) {
    if (shard + 1 < k && in_shard > 0) {
      const std::size_t shards_left = k - shard;
      const double ideal =
          static_cast<double>(in_shard + nodes_left) / shards_left;
      const bool overshoots =
          static_cast<double>(2 * in_shard + ids.size()) > 2.0 * ideal;
      if (overshoots || strips_left == shards_left) {
        ++shard;
        in_shard = 0;
      }
    }
    const double strip_lo = static_cast<double>(cx) * side;
    if (first_strip || in_shard == 0) out.x_lo[shard] = strip_lo;
    out.x_hi[shard] = strip_lo + side;
    first_strip = false;
    for (core::NodeId id : ids) out.assignment[id] = shard;
    in_shard += ids.size();
    nodes_left -= ids.size();
    --strips_left;
  }
  out.shard_count = shard + 1;
  out.x_lo.resize(out.shard_count);
  out.x_hi.resize(out.shard_count);
  return out;
}

}  // namespace jtp::phy
