#include "phy/topology.h"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "sim/random.h"

namespace jtp::phy {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Topology::Topology(std::size_t n_nodes, double radio_range_m)
    : pos_(n_nodes), range_(radio_range_m) {
  if (n_nodes == 0) throw std::invalid_argument("Topology: no nodes");
  if (radio_range_m <= 0) throw std::invalid_argument("Topology: bad range");
}

bool Topology::in_range(core::NodeId a, core::NodeId b) const {
  if (a == b) return false;
  return distance(pos_.at(a), pos_.at(b)) <= range_;
}

std::vector<core::NodeId> Topology::neighbors(core::NodeId id) const {
  std::vector<core::NodeId> out;
  for (core::NodeId j = 0; j < pos_.size(); ++j)
    if (in_range(id, j)) out.push_back(j);
  return out;
}

bool Topology::connected() const {
  std::vector<bool> seen(pos_.size(), false);
  std::queue<core::NodeId> q;
  q.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const core::NodeId u = q.front();
    q.pop();
    for (core::NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == pos_.size();
}

Topology Topology::linear(std::size_t n, double spacing_m, double range_m) {
  if (spacing_m >= range_m)
    throw std::invalid_argument("Topology::linear: spacing >= range");
  // Keep the chain strictly multi-hop: the range must not skip a neighbor.
  if (2 * spacing_m <= range_m)
    throw std::invalid_argument(
        "Topology::linear: range covers two hops; chain would short-cut");
  Topology t(n, range_m);
  for (std::size_t i = 0; i < n; ++i)
    t.pos_[i] = {static_cast<double>(i) * spacing_m, 0.0};
  return t;
}

Topology Topology::random_connected(std::size_t n, double field_m,
                                    double range_m, sim::Rng& rng,
                                    int max_tries) {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Topology t(n, range_m);
    for (std::size_t i = 0; i < n; ++i)
      t.pos_[i] = {rng.uniform(0.0, field_m), rng.uniform(0.0, field_m)};
    if (t.connected()) return t;
  }
  throw std::runtime_error(
      "Topology::random_connected: no connected placement found; "
      "shrink the field or raise the range");
}

}  // namespace jtp::phy
