#include "phy/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/random.h"

namespace jtp::phy {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Topology::Topology(std::size_t n_nodes, double radio_range_m)
    : pos_(n_nodes), range_(radio_range_m), cell_key_(n_nodes) {
  if (n_nodes == 0) throw std::invalid_argument("Topology: no nodes");
  if (radio_range_m <= 0) throw std::invalid_argument("Topology: bad range");
  // Sized so a consumer syncing every few seconds of simulated mobility
  // (routing refreshes every 5 s, waypoint updates every 1 s) never
  // overflows: even with every node moving, 4 generations per node of
  // slack covers the window.
  move_ring_.assign(std::max<std::size_t>(64, 4 * n_nodes),
                    core::kInvalidNode);
  const CellKey origin = cell_of(Position{});
  auto& cell = cells_[origin];
  cell.reserve(n_nodes);
  for (core::NodeId id = 0; id < n_nodes; ++id) {
    cell.push_back(id);
    cell_key_[id] = origin;
  }
}

Topology::CellKey Topology::pack_cell(std::int64_t cx, std::int64_t cy) {
  // The 32-bit wrap of the packed halves would only collide for positions
  // 2^32 cells apart.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

Topology::CellKey Topology::cell_of(const Position& p) const {
  // floor() keeps negative coordinates in distinct cells.
  return pack_cell(static_cast<std::int64_t>(std::floor(p.x / range_)),
                   static_cast<std::int64_t>(std::floor(p.y / range_)));
}

void Topology::set_position(core::NodeId id, Position p) {
  pos_.at(id) = p;
  ++generation_;
  move_ring_[generation_ % move_ring_.size()] = id;
  const CellKey to = cell_of(p);
  const CellKey from = cell_key_[id];
  if (to == from) return;
  auto& old_cell = cells_[from];
  // Swap-pop: cell vectors are unordered (queries sort their results).
  const auto it = std::find(old_cell.begin(), old_cell.end(), id);
  *it = old_cell.back();
  old_cell.pop_back();
  if (old_cell.empty()) cells_.erase(from);
  cells_[to].push_back(id);
  cell_key_[id] = to;
}

bool Topology::moved_since(std::uint64_t gen,
                           std::vector<core::NodeId>& out) const {
  out.clear();
  if (gen > generation_) return false;  // window from the future: no answer
  const std::uint64_t span = generation_ - gen;
  if (span == 0) return true;
  if (span > move_ring_.size()) return false;  // ring overflowed the window
  for (std::uint64_t g = gen + 1; g <= generation_; ++g)
    out.push_back(move_ring_[g % move_ring_.size()]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

bool Topology::in_range(core::NodeId a, core::NodeId b) const {
  if (a == b) return false;
  return distance(pos_.at(a), pos_.at(b)) <= range_;
}

void Topology::neighbors_into(core::NodeId id,
                              std::vector<core::NodeId>& out) const {
  out.clear();
  const Position& p = pos_.at(id);
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / range_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / range_));
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find(pack_cell(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (const core::NodeId j : it->second)
        if (j != id && distance(p, pos_[j]) <= range_) out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
}

std::vector<core::NodeId> Topology::neighbors(core::NodeId id) const {
  std::vector<core::NodeId> out;
  neighbors_into(id, out);
  return out;
}

bool Topology::connected() const {
  std::vector<bool> seen(pos_.size(), false);
  std::vector<core::NodeId> queue;
  std::vector<core::NodeId> nbrs;
  queue.reserve(pos_.size());
  queue.push_back(0);
  seen[0] = true;
  std::size_t visited = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const core::NodeId u = queue[head];
    neighbors_into(u, nbrs);
    for (core::NodeId v : nbrs) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        queue.push_back(v);
      }
    }
  }
  return visited == pos_.size();
}

Topology Topology::linear(std::size_t n, double spacing_m, double range_m) {
  if (spacing_m >= range_m)
    throw std::invalid_argument("Topology::linear: spacing >= range");
  // Keep the chain strictly multi-hop: the range must not skip a neighbor.
  if (2 * spacing_m <= range_m)
    throw std::invalid_argument(
        "Topology::linear: range covers two hops; chain would short-cut");
  Topology t(n, range_m);
  for (std::size_t i = 0; i < n; ++i)
    t.set_position(i, {static_cast<double>(i) * spacing_m, 0.0});
  return t;
}

Topology Topology::random_connected(std::size_t n, double field_m,
                                    double range_m, sim::Rng& rng,
                                    int max_tries) {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Topology t(n, range_m);
    for (std::size_t i = 0; i < n; ++i)
      t.set_position(i, {rng.uniform(0.0, field_m), rng.uniform(0.0, field_m)});
    if (t.connected()) return t;
  }
  throw std::runtime_error(
      "Topology::random_connected: no connected placement found; "
      "shrink the field or raise the range");
}

}  // namespace jtp::phy
