#include "phy/channel.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace jtp::phy {

Channel::Channel(ChannelConfig cfg, sim::Rng rng)
    : cfg_(cfg),
      master_(std::move(rng)),
      links_(cfg.expected_links),
      loss_(cfg.expected_links) {
  if (cfg.bad_fraction < 0.0 || cfg.bad_fraction >= 1.0)
    throw std::invalid_argument("Channel: bad_fraction outside [0,1)");
  if (cfg.mean_bad_dwell_s <= 0.0)
    throw std::invalid_argument("Channel: bad dwell must be positive");
}

double Channel::mean_good_dwell_s() const {
  if (cfg_.bad_fraction <= 0.0) return 1e18;
  // bad_fraction = bad / (bad + good)  =>  good = bad·(1-f)/f.
  return cfg_.mean_bad_dwell_s * (1.0 - cfg_.bad_fraction) / cfg_.bad_fraction;
}

Channel::LinkState& Channel::state_for(core::NodeId a, core::NodeId b) {
  const auto mm = std::minmax(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(mm.first) << 32) | mm.second;
  return links_.find_or_create(key, [&] {
    LinkState s;
    s.rng = master_.derive("link", key);
    s.bad = false;
    s.next_flip = s.rng.exponential(mean_good_dwell_s());
    return s;
  });
}

void Channel::advance(LinkState& s, sim::Time now) {
  if (!cfg_.fading_enabled || cfg_.bad_fraction <= 0.0) return;
  while (s.next_flip <= now) {
    s.bad = !s.bad;
    const double dwell = s.bad ? cfg_.mean_bad_dwell_s : mean_good_dwell_s();
    s.next_flip += s.rng.exponential(dwell);
  }
}

double Channel::loss_probability(core::NodeId a, core::NodeId b,
                                 sim::Time now) {
  if (!cfg_.fading_enabled) return cfg_.loss_good;
  LinkState& s = state_for(a, b);
  advance(s, now);
  return s.bad ? cfg_.loss_bad : cfg_.loss_good;
}

bool Channel::in_bad_state(core::NodeId a, core::NodeId b, sim::Time now) {
  if (!cfg_.fading_enabled) return false;
  LinkState& s = state_for(a, b);
  advance(s, now);
  return s.bad;
}

sim::Rng& Channel::loss_rng_for(core::NodeId a, core::NodeId b) {
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  return loss_.find_or_create(key,
                              [&] { return master_.derive("loss", key); });
}

void Channel::adopt_sender_streams(core::NodeId sender, Channel& from) {
  if (&from == this) return;
  // Collect-then-move, sorted by key: for_each walks bucket order, which
  // depends on table layout history, and the insert order below must not.
  std::vector<std::pair<std::uint64_t, sim::Rng>> moved;
  from.loss_.for_each([&](std::uint64_t key, sim::Rng& rng) {
    if ((key >> 32) == sender) moved.emplace_back(key, rng);
  });
  std::sort(moved.begin(), moved.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [key, rng] : moved) {
    sim::Rng& dst = loss_.find_or_create(key, [&] { return rng; });
    dst = rng;
    from.loss_.erase(key);
  }
}

bool Channel::transmission_lost(core::NodeId a, core::NodeId b,
                                sim::Time now) {
  LinkState& s = state_for(a, b);
  advance(s, now);
  const double p = (cfg_.fading_enabled && s.bad) ? cfg_.loss_bad : cfg_.loss_good;
  return loss_rng_for(a, b).bernoulli(p);
}

}  // namespace jtp::phy
