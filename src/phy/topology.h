// Node placement and range-based connectivity.
//
// Builders for the paper's three scenario families: linear chains (§6.1.1),
// connected random fields (§6.1.2), and the 14-node indoor testbed
// (Table 2). Positions are mutable to support mobility.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace jtp::sim {
class Rng;
}

namespace jtp::phy {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Position& a, const Position& b);

class Topology {
 public:
  Topology(std::size_t n_nodes, double radio_range_m);

  std::size_t size() const { return pos_.size(); }
  double radio_range() const { return range_; }

  const Position& position(core::NodeId id) const { return pos_.at(id); }
  void set_position(core::NodeId id, Position p) { pos_.at(id) = p; }

  bool in_range(core::NodeId a, core::NodeId b) const;
  std::vector<core::NodeId> neighbors(core::NodeId id) const;

  // True if the range graph is a single connected component.
  bool connected() const;

  // --- builders ---
  // Chain of n nodes spaced `spacing` apart (spacing < range).
  static Topology linear(std::size_t n, double spacing_m, double range_m);

  // Uniform random placement in a square field; resamples until connected
  // (the paper sizes the field so connectivity holds w.h.p.).
  static Topology random_connected(std::size_t n, double field_m,
                                   double range_m, sim::Rng& rng,
                                   int max_tries = 200);

 private:
  std::vector<Position> pos_;
  double range_;
};

}  // namespace jtp::phy
