// Node placement and range-based connectivity.
//
// Builders for the paper's three scenario families: linear chains (§6.1.1),
// connected random fields (§6.1.2), and the 14-node indoor testbed
// (Table 2). Positions are mutable to support mobility.
//
// Connectivity queries are served by a uniform spatial grid whose cell
// side equals the radio range: every neighbor of a node lies in the 3x3
// cell block around it, so neighbors()/connected() cost O(cell occupancy)
// per node instead of a full scan — the difference between paper-scale
// (n ~ 25) and production-scale (n ~ 1000) control planes. set_position
// updates the index incrementally and bumps a generation counter that
// consumers (the routing view) use to detect "topology unchanged" without
// comparing positions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace jtp::sim {
class Rng;
}

namespace jtp::phy {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Position& a, const Position& b);

class Topology {
 public:
  Topology(std::size_t n_nodes, double radio_range_m);

  std::size_t size() const { return pos_.size(); }
  double radio_range() const { return range_; }

  const Position& position(core::NodeId id) const { return pos_.at(id); }
  void set_position(core::NodeId id, Position p);

  // Monotonic change counter: bumped by every set_position. Two reads
  // returning the same value guarantee no position changed in between.
  std::uint64_t generation() const { return generation_; }

  // Fills `out` with the distinct nodes whose position changed in
  // (gen, generation()], ascending. The answer comes from a bounded ring
  // of recent moves (one entry per generation, capacity ~4n), so a
  // consumer that syncs regularly pays O(moves since last sync) instead
  // of re-snapshotting positions it already holds. Returns false when
  // the window is no longer covered by the ring — the caller must treat
  // that as "every node may have moved" and fall back to a full diff.
  bool moved_since(std::uint64_t gen, std::vector<core::NodeId>& out) const;

  // Capacity of the move ring (generations of history moved_since can
  // reconstruct). Exposed for tests pinning the overflow fallback.
  std::size_t move_history_capacity() const { return move_ring_.size(); }

  bool in_range(core::NodeId a, core::NodeId b) const;
  std::vector<core::NodeId> neighbors(core::NodeId id) const;

  // Allocation-free variant for hot loops (routing BFS): clears `out` and
  // fills it with the in-range ids in ascending order — the same order
  // the full-scan implementation produced, which the routing tie-breaks
  // (and therefore the committed baselines) depend on.
  void neighbors_into(core::NodeId id, std::vector<core::NodeId>& out) const;

  // True if the range graph is a single connected component.
  bool connected() const;

  // --- builders ---
  // Chain of n nodes spaced `spacing` apart (spacing < range).
  static Topology linear(std::size_t n, double spacing_m, double range_m);

  // Uniform random placement in a square field; resamples until connected
  // (the field must be sized so connectivity holds w.h.p. — see
  // exp::random_field_side_m).
  static Topology random_connected(std::size_t n, double field_m,
                                   double range_m, sim::Rng& rng,
                                   int max_tries = 200);

 private:
  // Packed (cell-x, cell-y) pair; cell side = radio range.
  using CellKey = std::uint64_t;
  static CellKey pack_cell(std::int64_t cx, std::int64_t cy);
  CellKey cell_of(const Position& p) const;

  std::vector<Position> pos_;
  double range_;
  std::uint64_t generation_ = 0;
  // Ring of recent movers, indexed by generation % capacity: generation
  // bumps exactly once per set_position, so the ring always holds the
  // movers of the last `capacity` generations with no head pointer.
  std::vector<core::NodeId> move_ring_;
  std::unordered_map<CellKey, std::vector<core::NodeId>> cells_;
  std::vector<CellKey> cell_key_;  // per node: the cell it is filed under
};

}  // namespace jtp::phy
