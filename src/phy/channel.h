// Per-link loss process: two-state Gilbert–Elliott model.
//
// The paper's linear-topology experiments alternate each link's average
// pathloss between a good state (low loss) and a bad state (high loss),
// with the link in the bad state ~10% of the time and a mean bad dwell of
// 3 s (§6.1.1). Dwell times are exponential; state is advanced lazily at
// query time, so idle links cost nothing.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/types.h"
#include "sim/random.h"
#include "sim/time.h"

namespace jtp::phy {

struct ChannelConfig {
  double loss_good = 0.02;      // per-transmission loss prob, good state
  double loss_bad = 0.45;       // per-transmission loss prob, bad state
  double bad_fraction = 0.10;   // long-run share of time in bad state
  double mean_bad_dwell_s = 3.0;
  bool fading_enabled = true;   // false => always good (testbed regime)
};

class Channel {
 public:
  Channel(ChannelConfig cfg, sim::Rng rng);

  // Current loss probability of directed link (a -> b) at time `now`.
  double loss_probability(core::NodeId a, core::NodeId b, sim::Time now);

  // True in the bad state (for tests/traces).
  bool in_bad_state(core::NodeId a, core::NodeId b, sim::Time now);

  // Draws the fate of one transmission attempt on (a -> b).
  bool transmission_lost(core::NodeId a, core::NodeId b, sim::Time now);

  const ChannelConfig& config() const { return cfg_; }
  double mean_good_dwell_s() const;

 private:
  // Dwell (fading) state of an undirected link. Its rng feeds *only*
  // the flip timeline, so the sequence of (state, next_flip) pairs is a
  // pure function of the link key and the clock — two Channel replicas
  // (one per shard, under the sharded runner) advancing lazily at
  // different query times still replay the identical timeline.
  struct LinkState {
    bool bad = false;
    sim::Time next_flip = 0.0;
    sim::Rng rng{0};
  };
  LinkState& state_for(core::NodeId a, core::NodeId b);
  void advance(LinkState& s, sim::Time now);

  // Per-attempt loss draws come from a separate stream keyed by the
  // *directed* link: only the sender's shard ever draws (a -> b), so
  // replicas never race on — or double-consume — a shared stream.
  sim::Rng& loss_rng_for(core::NodeId a, core::NodeId b);

  ChannelConfig cfg_;
  sim::Rng master_;
  // Links are undirected for fading purposes: the key packs the sorted
  // (low, high) pair into one word. transmission_lost() runs once per
  // MAC attempt, so the lookup is a hot-path O(1) hash instead of a
  // red-black-tree walk; per-link state is created lazily on first
  // query (idle links cost nothing) and derived from the master rng by
  // key, so creation order cannot perturb determinism.
  std::unordered_map<std::uint64_t, LinkState> links_;
  std::unordered_map<std::uint64_t, sim::Rng> loss_;  // directed key
};

}  // namespace jtp::phy
