// Per-link loss process: two-state Gilbert–Elliott model.
//
// The paper's linear-topology experiments alternate each link's average
// pathloss between a good state (low loss) and a bad state (high loss),
// with the link in the bad state ~10% of the time and a mean bad dwell of
// 3 s (§6.1.1). Dwell times are exponential; state is advanced lazily at
// query time, so idle links cost nothing.
#pragma once

#include <cstdint>

#include "core/types.h"
#include "phy/link_table.h"
#include "sim/random.h"
#include "sim/time.h"

namespace jtp::phy {

struct ChannelConfig {
  double loss_good = 0.02;      // per-transmission loss prob, good state
  double loss_bad = 0.45;       // per-transmission loss prob, bad state
  double bad_fraction = 0.10;   // long-run share of time in bad state
  double mean_bad_dwell_s = 3.0;
  bool fading_enabled = true;   // false => always good (testbed regime)
  // Expected live links, used to reserve the per-link state tables at
  // construction so steady state never reallocates or rehashes. 0 means
  // "small" (unit tests, testbed); the network sizes it from the node
  // count (~4 links/node in a connected random field).
  std::size_t expected_links = 0;
};

// Table health of the two per-link state tables (see LinkTableStats):
// rehashes > 0 or a probe high-water far above ~1 means expected_links
// under-sized the reserve.
struct ChannelStats {
  LinkTableStats dwell;        // undirected fading-state table
  LinkTableStats loss;         // directed loss-stream table
  std::size_t dwell_links = 0;
  std::size_t loss_streams = 0;
};

class Channel {
 public:
  Channel(ChannelConfig cfg, sim::Rng rng);

  // Current loss probability of directed link (a -> b) at time `now`.
  double loss_probability(core::NodeId a, core::NodeId b, sim::Time now);

  // True in the bad state (for tests/traces).
  bool in_bad_state(core::NodeId a, core::NodeId b, sim::Time now);

  // Draws the fate of one transmission attempt on (a -> b).
  bool transmission_lost(core::NodeId a, core::NodeId b, sim::Time now);

  const ChannelConfig& config() const { return cfg_; }
  double mean_good_dwell_s() const;

  // Shard-migration handoff: moves every directed loss stream whose
  // sender is `sender` out of `from` into this channel (overwriting any
  // stream this replica lazily created for the same link), erasing them
  // from the source. Loss draws happen once per MAC attempt on the
  // sender's shard only, so after the MAC state moves, the stream
  // positions must move with it — otherwise the adopting replica would
  // restart each stream from its key-derived seed and diverge from the
  // K = 1 draw sequence. Dwell (fading) state needs no handoff: its
  // timeline is a pure function of the link key and the clock, so any
  // replica replays it identically (see LinkState).
  void adopt_sender_streams(core::NodeId sender, Channel& from);

  ChannelStats stats() const {
    return {links_.stats(), loss_.stats(), links_.size(), loss_.size()};
  }

 private:
  // Dwell (fading) state of an undirected link. Its rng feeds *only*
  // the flip timeline, so the sequence of (state, next_flip) pairs is a
  // pure function of the link key and the clock — two Channel replicas
  // (one per shard, under the sharded runner) advancing lazily at
  // different query times still replay the identical timeline.
  struct LinkState {
    bool bad = false;
    sim::Time next_flip = 0.0;
    sim::Rng rng{0};
  };
  LinkState& state_for(core::NodeId a, core::NodeId b);
  void advance(LinkState& s, sim::Time now);

  // Per-attempt loss draws come from a separate stream keyed by the
  // *directed* link: only the sender's shard ever draws (a -> b), so
  // replicas never race on — or double-consume — a shared stream.
  sim::Rng& loss_rng_for(core::NodeId a, core::NodeId b);

  ChannelConfig cfg_;
  sim::Rng master_;
  // Links are undirected for fading purposes: the key packs the sorted
  // (low, high) pair into one word. transmission_lost() runs once per
  // MAC attempt, so the lookup runs against packed open-addressed
  // tables (see link_table.h) reserved for cfg.expected_links; per-link
  // state is created lazily on first query (idle links cost nothing)
  // and derived from the master rng by key, so neither creation order
  // nor table layout can perturb determinism.
  PackedLinkTable<LinkState> links_;
  PackedLinkTable<sim::Rng> loss_;  // directed key
};

}  // namespace jtp::phy
