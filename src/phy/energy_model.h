// Radio energy accounting (paper §6.1, "Energy per delivered bit").
//
// A monitor at the link layer charges, per transport-layer packet
// transmission, E = P_tx · bits/datarate at the transmitter and
// E = P_rx · bits/datarate at the receiver. Following the paper, network
// maintenance (routing beacons etc.) is excluded from the per-bit metric;
// JAVeLEN's TDMA keeps radios off outside scheduled slots, so idle energy
// is negligible by construction and is not modelled.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace jtp::phy {

struct RadioConfig {
  double datarate_bps = 250e3;  // low-power radio class
  double tx_power_w = 0.075;
  double rx_power_w = 0.030;
  // Fixed per-transmission radio overhead (wake-up, synchronization,
  // preamble), charged at the respective power on both sides. In
  // ultra-low-power radios this dominates short frames — it is why the
  // paper says an ACK "consumes roughly as much energy as a data
  // transmission" even though it carries fewer bytes.
  double fixed_overhead_s = 0.020;
};

class EnergyModel {
 public:
  EnergyModel(std::size_t n_nodes, RadioConfig cfg = {});

  // Airtime of a packet of `bits` at the configured datarate.
  double airtime_s(double bits) const { return bits / cfg_.datarate_bps; }

  // Energy one transmission of `bits` costs the sender.
  core::Joules tx_energy(double bits) const {
    return cfg_.tx_power_w * (cfg_.fixed_overhead_s + airtime_s(bits));
  }
  // Energy one reception of `bits` costs the receiver.
  core::Joules rx_energy(double bits) const {
    return cfg_.rx_power_w * (cfg_.fixed_overhead_s + airtime_s(bits));
  }

  // Charging: updates per-node and total tallies.
  void charge_tx(core::NodeId node, double bits);
  void charge_rx(core::NodeId node, double bits);

  // Overwrites a node's tally (the shard-migration handoff: the adopting
  // shard is set to the bit-exact source value, the source zeroed, so
  // the owning-shard read in Network::node_energy stays byte-identical
  // across any migration history). The total is adjusted by the delta.
  void set_node_energy(core::NodeId node, core::Joules j) {
    total_ += j - per_node_.at(node);
    per_node_.at(node) = j;
  }

  core::Joules node_energy(core::NodeId node) const { return per_node_.at(node); }
  core::Joules total_energy() const { return total_; }
  const std::vector<core::Joules>& per_node() const { return per_node_; }
  const RadioConfig& config() const { return cfg_; }

  void reset();

 private:
  RadioConfig cfg_;
  std::vector<core::Joules> per_node_;
  core::Joules total_ = 0.0;
};

}  // namespace jtp::phy
