// Spatial node partitioner for the sharded event loop.
//
// Shards must be spatially contiguous: the sharded runner's lookahead
// argument only bounds *cross-shard* traffic, and radio traffic is
// local, so cutting the field into strips of whole grid columns keeps
// almost all deliveries same-shard. We reuse the Topology's grid
// geometry (cell side = radio range): every node is binned by
// floor(x / range), occupied strips are cut into K contiguous runs with
// balanced node counts (greedy: close each shard once it reaches the
// ideal share of the remaining nodes), and the per-node assignment is a
// pure function of positions — identical on every call for a fixed
// topology, which the determinism contract requires.
//
// If fewer than K strips are occupied (e.g. a dense cluster narrower
// than the radio range), the effective shard count shrinks: callers
// must use shard_count(), not the K they asked for.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "phy/topology.h"

namespace jtp::phy {

struct Partition {
  // assignment[node] in [0, shard_count).
  std::vector<std::size_t> assignment;
  std::size_t shard_count = 1;

  std::size_t shard_of(core::NodeId id) const { return assignment.at(id); }
};

// Partitions `topo`'s nodes into at most `max_shards` spatially
// contiguous, size-balanced vertical strips. max_shards == 0 is treated
// as 1. Shard ids are ordered left to right, every shard is non-empty,
// and the result is deterministic in the topology alone.
Partition partition_strips(const Topology& topo, std::size_t max_shards);

}  // namespace jtp::phy
