// Spatial node partitioner for the sharded event loop.
//
// Shards must be spatially contiguous: the sharded runner's lookahead
// argument only bounds *cross-shard* traffic, and radio traffic is
// local, so cutting the field into strips of whole grid columns keeps
// almost all deliveries same-shard. We reuse the Topology's grid
// geometry (cell side = radio range): every node is binned by
// floor(x / range), occupied strips are cut into K contiguous runs with
// balanced node counts (greedy: close each shard once it reaches the
// ideal share of the remaining nodes), and the per-node assignment is a
// pure function of positions — identical on every call for a fixed
// topology, which the determinism contract requires.
//
// If fewer than K strips are occupied (e.g. a dense cluster narrower
// than the radio range), the effective shard count shrinks: callers
// must use shard_count(), not the K they asked for.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "phy/topology.h"

namespace jtp::phy {

struct Partition {
  // assignment[node] in [0, shard_count).
  std::vector<std::size_t> assignment;
  std::size_t shard_count = 1;
  // Home x-interval of each shard's strip run, [x_lo[s], x_hi[s]) in
  // meters (strip edges are multiples of the radio range). Under
  // mobility these are the fixed geographic homes: a node whose x
  // leaves its owner's interval is "in the halo" (or beyond), and the
  // migration layer hands it to the shard whose interval contains it.
  // Empty when shard_count == 1 (nothing to hand over).
  std::vector<double> x_lo;
  std::vector<double> x_hi;

  std::size_t shard_of(core::NodeId id) const { return assignment.at(id); }

  // The shard whose home interval contains `x` (clamped to the outer
  // shards beyond the field edges; gaps of empty strips between two
  // shards resolve to the right neighbor, consistently for every
  // caller).
  std::size_t shard_for_x(double x) const {
    for (std::size_t s = 0; s + 1 < shard_count; ++s)
      if (x < x_hi[s]) return s;
    return shard_count == 0 ? 0 : shard_count - 1;
  }
};

// Partitions `topo`'s nodes into at most `max_shards` spatially
// contiguous, size-balanced vertical strips. max_shards == 0 is treated
// as 1. Shard ids are ordered left to right, every shard is non-empty,
// and the result is deterministic in the topology alone.
Partition partition_strips(const Topology& topo, std::size_t max_shards);

}  // namespace jtp::phy
