// Random-waypoint mobility (paper §6.1.2).
//
// Each node repeatedly: picks a random direction, moves a random distance
// (mean 47 m) at its configured speed, then pauses (mean 100 s). Movement
// is discretized: positions are updated every `update_interval_s` so the
// routing layer sees smooth topology change. Legs are clipped to the field.
//
// There is no movement callback: every position update bumps the
// topology's generation counter, and consumers that care (the routing
// view, tests) observe that instead of being pushed a notification.
#pragma once

#include <vector>

#include "phy/topology.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace jtp::phy {

struct MobilityConfig {
  double speed_mps = 1.0;        // 0.1 / 1 / 5 in the paper
  double mean_leg_m = 47.0;
  double mean_pause_s = 100.0;
  double field_m = 300.0;        // clip box
  double update_interval_s = 1.0;
};

class RandomWaypoint {
 public:
  RandomWaypoint(sim::Simulator& sim, Topology& topo, MobilityConfig cfg,
                 sim::Rng rng);

  // Begins moving every node; callbacks fire forever (until sim horizon).
  void start();

  const MobilityConfig& config() const { return cfg_; }

 private:
  struct NodeState {
    Position target;
    bool moving = false;
    sim::Rng rng{0};
  };
  void begin_leg(core::NodeId id);
  void step(core::NodeId id);

  sim::Simulator& sim_;
  Topology& topo_;
  MobilityConfig cfg_;
  std::vector<NodeState> nodes_;
};

}  // namespace jtp::phy
