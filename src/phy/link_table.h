// Packed open-addressed table for per-link PHY state.
//
// The channel keeps lazily-created state per link (fading dwell, loss
// stream), keyed by a packed 64-bit node pair, and looks it up once per
// MAC attempt. Earlier revisions modeled that as unordered_map; at scale the
// map's node-per-entry layout costs an allocation per link and a pointer
// chase per attempt. This table stores values in one contiguous slab
// (reserved up front from the expected link count) and resolves keys
// through a power-of-two bucket array with linear probing — the hot-path
// lookup is one hash, a short probe run over a dense index array, and a
// single slab access.
//
// Layout invariants:
//  - Slots are trivially copyable and never referenced by buckets while
//    free; erased slots chain through an intrusive freelist threaded
//    through the key field, so reuse costs no allocation.
//  - The bucket array holds slot indices (kNil = empty) and is kept
//    tombstone-free by backward-shift deletion, so probe runs never
//    degrade as links churn.
//  - References returned by find/find_or_create stay valid only until
//    the next insert (the slab may grow); the channel holds them
//    transiently within one call.
//
// LinkTableStats is the observable contract, mirroring sim::PoolStats and
// routing::RoutingStats: a probe high-water near the bucket count or a
// rehash after construction means the expected-density reserve was wrong.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/random.h"

namespace jtp::phy {

struct LinkTableStats {
  std::uint64_t lookups = 0;   // find + find_or_create calls
  std::uint64_t inserts = 0;   // slots created (misses that materialized)
  std::uint64_t rehashes = 0;  // bucket-array doublings after construction
  std::uint64_t probe_hw = 0;  // longest single-operation probe run
};

template <typename V>
class PackedLinkTable {
  static_assert(std::is_trivially_copyable_v<V>,
                "PackedLinkTable slots must be trivially copyable");

 public:
  // `expected` sizes the slab and the bucket array so that steady state
  // neither reallocates nor rehashes; 0 means "small" (the testbed and
  // unit-test regime).
  explicit PackedLinkTable(std::size_t expected = 0) {
    if (expected < kMinExpected) expected = kMinExpected;
    slots_.reserve(expected);
    std::size_t b = kMinBuckets;
    // Keep the planned load factor under ~0.7: probe runs stay O(1).
    while (b * kMaxLoadNum < expected * kMaxLoadDen) b <<= 1;
    buckets_.assign(b, kNil);
  }

  std::size_t size() const { return live_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  const LinkTableStats& stats() const { return stats_; }

  // Visits every live (key, value) pair in bucket order. Bucket order is
  // layout-dependent — callers that need determinism (the migration path
  // collecting a node's loss streams) must sort what they collect by key
  // before acting on it.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (const std::uint32_t idx : buckets_) {
      if (idx == kNil) continue;
      fn(slots_[idx].key, slots_[idx].value);
    }
  }

  // Pointer to the value for `key`, or nullptr. Valid until next insert.
  V* find(std::uint64_t key) {
    ++stats_.lookups;
    const std::size_t pos = probe(key);
    if (buckets_[pos] == kNil) return nullptr;
    return &slots_[buckets_[pos]].value;
  }

  // The value for `key`, created via `make()` (returning V) on first
  // sight. Reference valid until the next insert.
  template <typename MakeFn>
  V& find_or_create(std::uint64_t key, MakeFn&& make) {
    ++stats_.lookups;
    std::size_t pos = probe(key);
    if (buckets_[pos] != kNil) return slots_[buckets_[pos]].value;
    ++stats_.inserts;
    if ((live_ + 1) * kMaxLoadDen > buckets_.size() * kMaxLoadNum) {
      rehash(buckets_.size() * 2);
      pos = probe(key);
    }
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = static_cast<std::uint32_t>(slots_[idx].key);
      slots_[idx].key = key;
      slots_[idx].value = make();
    } else {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{key, make()});
    }
    buckets_[pos] = idx;
    ++live_;
    return slots_[idx].value;
  }

  // Removes `key` if present. The bucket run is re-packed in place
  // (backward shift), so the table never accumulates tombstones.
  bool erase(std::uint64_t key) {
    ++stats_.lookups;
    std::size_t hole = probe(key);
    if (buckets_[hole] == kNil) return false;
    const std::uint32_t idx = buckets_[hole];
    slots_[idx].key = free_head_;  // intrusive freelist through the key
    free_head_ = idx;
    --live_;
    const std::size_t mask = buckets_.size() - 1;
    std::size_t j = (hole + 1) & mask;
    while (buckets_[j] != kNil) {
      const std::size_t ideal = home(slots_[buckets_[j]].key);
      // Entry at j may fill the hole iff the hole lies within its probe
      // run, i.e. no closer to its home than j is (cyclic distances).
      if (((j - ideal) & mask) >= ((j - hole) & mask)) {
        buckets_[hole] = buckets_[j];
        hole = j;
      }
      j = (j + 1) & mask;
    }
    buckets_[hole] = kNil;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key;
    V value;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kMinExpected = 64;
  static constexpr std::size_t kMinBuckets = 128;  // pow2 > kMinExpected/0.7
  static constexpr std::size_t kMaxLoadNum = 7;    // load <= 7/10
  static constexpr std::size_t kMaxLoadDen = 10;

  std::size_t home(std::uint64_t key) const {
    return static_cast<std::size_t>(sim::splitmix64(key)) &
           (buckets_.size() - 1);
  }

  // First bucket holding `key`, or the empty bucket that ends its run.
  std::size_t probe(std::uint64_t key) {
    const std::size_t mask = buckets_.size() - 1;
    std::size_t pos = home(key);
    std::uint64_t run = 1;
    while (buckets_[pos] != kNil && slots_[buckets_[pos]].key != key) {
      pos = (pos + 1) & mask;
      ++run;
    }
    if (run > stats_.probe_hw) stats_.probe_hw = run;
    return pos;
  }

  void rehash(std::size_t n_buckets) {
    ++stats_.rehashes;
    std::vector<std::uint32_t> old;
    old.swap(buckets_);
    buckets_.assign(n_buckets, kNil);
    const std::size_t mask = n_buckets - 1;
    for (const std::uint32_t idx : old) {
      if (idx == kNil) continue;
      std::size_t pos = home(slots_[idx].key);
      while (buckets_[pos] != kNil) pos = (pos + 1) & mask;
      buckets_[pos] = idx;
    }
  }

  std::vector<Slot> slots_;            // slab: live + freelisted values
  std::vector<std::uint32_t> buckets_; // pow2 index array, kNil = empty
  std::uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
  LinkTableStats stats_;
};

}  // namespace jtp::phy
