#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jtp::sim {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double t_quantile_975(std::size_t df) {
  // Table for small df, asymptote 1.96 beyond.
  static constexpr double table[] = {
      0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df < std::size(table)) return table[df];
  return 1.96;
}

double Summary::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return t_quantile_975(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("Ewma: alpha out of (0,1]");
}

void Ewma::set_alpha(double alpha) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("Ewma: alpha out of (0,1]");
  alpha_ = alpha;
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
    return;
  }
  value_ = (1.0 - alpha_) * value_ + alpha_ * x;
}

void TimeWeighted::update(Time now, double new_value) {
  if (!started_) {
    started_ = true;
    start_ = now;
  } else {
    area_ += value_ * (now - last_);
  }
  value_ = new_value;
  last_ = now;
}

double TimeWeighted::mean(Time now) const {
  if (!started_ || now <= start_) return value_;
  const double total = area_ + value_ * (now - last_);
  return total / (now - start_);
}

double TimeSeries::sum_in_window(Time t, Time window) const {
  double s = 0.0;
  for (auto it = points_.rbegin(); it != points_.rend(); ++it) {
    if (it->t > t) continue;
    if (it->t <= t - window) break;
    s += it->v;
  }
  return s;
}

std::vector<TimeSeries::Point> TimeSeries::bucket_rate(Time horizon,
                                                       Time bucket) const {
  if (bucket <= 0) throw std::invalid_argument("bucket_rate: bucket <= 0");
  std::vector<Point> out;
  const auto n_buckets = static_cast<std::size_t>(horizon / bucket) + 1;
  std::vector<double> sums(n_buckets, 0.0);
  for (const auto& p : points_) {
    if (p.t < 0 || p.t > horizon) continue;
    sums[static_cast<std::size_t>(p.t / bucket)] += p.v;
  }
  out.reserve(n_buckets);
  for (std::size_t i = 0; i < n_buckets; ++i)
    out.push_back({(static_cast<double>(i) + 0.5) * bucket, sums[i] / bucket});
  return out;
}

}  // namespace jtp::sim
