// Deterministic random-number utilities.
//
// Each component derives an independent stream from a master seed with
// derive(), so adding a consumer never perturbs the draws seen by others —
// essential for the paper's "all protocols under the same conditions in the
// same run" methodology (§6.1.2).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace jtp::sim {

// splitmix64: fast, well-mixed 64-bit hash used for stream derivation and
// for the TDMA pseudo-random schedule.
std::uint64_t splitmix64(std::uint64_t x);

// Stable 64-bit hash of a label, for name-derived streams.
std::uint64_t hash_label(std::string_view label);

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)), seed_(seed) {}

  // Derives an independent child stream; identical (seed, label, index)
  // always yields the same stream.
  Rng derive(std::string_view label, std::uint64_t index = 0) const;

  double uniform() { return uniform_(engine_); }                  // [0,1)
  double uniform(double lo, double hi);                           // [lo,hi)
  double exponential(double mean);
  double normal(double mean, double stddev);
  std::uint64_t integer(std::uint64_t bound);                     // [0,bound)
  int geometric(double p_success);  // trials until first success, >= 1
  bool bernoulli(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  Rng(std::mt19937_64 engine, std::uint64_t seed)
      : engine_(engine), seed_(seed) {}
  std::mt19937_64 engine_;
  std::uint64_t seed_ = 0;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};

  friend class RngFactory;
};

}  // namespace jtp::sim
