#include "sim/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace jtp::sim {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

namespace {

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

std::string Cell::table_text(int precision) const {
  switch (kind_) {
    case Kind::kText:
      return text_;
    case Kind::kNumber:
      return fmt_fixed(mean_, precision);
    case Kind::kCi:
      return fmt_fixed(mean_, precision) + " ±" + fmt_fixed(ci_, precision);
  }
  return {};
}

std::string Cell::csv_value(int precision) const {
  if (kind_ == Kind::kText) return csv_escape(text_);
  return fmt_fixed(mean_, precision);
}

std::string Cell::csv_ci_value(int precision) const {
  // A plain number in a CI column has zero half-width by definition.
  return fmt_fixed(kind_ == Kind::kCi ? ci_ : 0.0, precision);
}

Series::Series(std::vector<Column> cols) : cols_(std::move(cols)) {
  if (cols_.empty())
    throw std::invalid_argument("Series: at least one column required");
}

void Series::append(std::vector<Cell> row) {
  if (row.size() != cols_.size())
    throw std::invalid_argument("Series::append: column count mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].kind() == Cell::Kind::kCi && !cols_[i].ci)
      throw std::invalid_argument("Series::append: CI cell in plain column '" +
                                  cols_[i].name + "'");
  }
  rows_.push_back(std::move(row));
}

void Series::write_csv_header(std::ostream& os) const {
  bool first = true;
  for (const auto& c : cols_) {
    if (!first) os << ',';
    os << csv_escape(c.name);
    if (c.ci) os << ',' << csv_escape(c.name + "_ci95");
    first = false;
  }
  os << '\n';
}

void Series::write_csv_row(std::ostream& os,
                           const std::vector<Cell>& row) const {
  bool first = true;
  for (std::size_t i = 0; i < row.size() && i < cols_.size(); ++i) {
    if (!first) os << ',';
    os << row[i].csv_value(cols_[i].precision);
    if (cols_[i].ci) os << ',' << row[i].csv_ci_value(cols_[i].precision);
    first = false;
  }
  os << '\n';
}

void Series::write_csv(std::ostream& os) const {
  write_csv_header(os);
  for (const auto& row : rows_) write_csv_row(os, row);
}

bool Series::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  out.flush();
  return static_cast<bool>(out);
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> cols)
    : out_(path), n_cols_(cols.size()) {
  bool first = true;
  for (const auto& c : cols) {
    if (!first) out_ << ',';
    out_ << csv_escape(c);
    first = false;
  }
  out_ << '\n';
}

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string> cols)
    : CsvWriter(path, std::vector<std::string>(cols)) {}

void CsvWriter::row(std::initializer_list<double> values) {
  if (values.size() != n_cols_)
    throw std::invalid_argument("CsvWriter::row: column count mismatch");
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    out_ << v;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != n_cols_)
    throw std::invalid_argument("CsvWriter::row: column count mismatch");
  bool first = true;
  for (const auto& v : values) {
    if (!first) out_ << ',';
    out_ << csv_escape(v);
    first = false;
  }
  out_ << '\n';
}

}  // namespace jtp::sim
