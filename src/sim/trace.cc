#include "sim/trace.h"

#include <stdexcept>

namespace jtp::sim {

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string> cols)
    : out_(path), n_cols_(cols.size()) {
  bool first = true;
  for (const auto& c : cols) {
    if (!first) out_ << ',';
    out_ << c;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  if (values.size() != n_cols_)
    throw std::invalid_argument("CsvWriter::row: column count mismatch");
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    out_ << v;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != n_cols_)
    throw std::invalid_argument("CsvWriter::row: column count mismatch");
  bool first = true;
  for (const auto& v : values) {
    if (!first) out_ << ',';
    out_ << v;
    first = false;
  }
  out_ << '\n';
}

}  // namespace jtp::sim
